#include <gtest/gtest.h>

#include "estimation/estimators.h"
#include "graph/generators.h"
#include "restore/proposed.h"
#include "sampling/random_walk.h"

namespace sgr {
namespace {

SamplingList MakeWalk(const Graph& g, std::size_t budget,
                      std::uint64_t seed) {
  QueryOracle oracle(g);
  Rng rng(seed);
  return RandomWalkSample(oracle, 0, budget, rng);
}

TEST(EstimatorModesTest, HybridMatchesTeBelowThreshold) {
  Rng gen_rng(1);
  const Graph g = GeneratePowerlawCluster(1000, 3, 0.4, gen_rng);
  const SamplingList walk = MakeWalk(g, 200, 2);

  EstimatorOptions hybrid;
  EstimatorOptions te_only;
  te_only.joint_mode = JointEstimatorMode::kTraversedEdgesOnly;
  const LocalEstimates h = EstimateLocalProperties(walk, hybrid);
  const LocalEstimates t = EstimateLocalProperties(walk, te_only);

  const double threshold = 2.0 * h.average_degree;
  for (const auto& [key, value] : h.joint_dist.values()) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    if (static_cast<double>(k) + static_cast<double>(kp) < threshold) {
      EXPECT_DOUBLE_EQ(value, t.joint_dist.At(k, kp))
          << "(" << k << "," << kp << ")";
    }
  }
}

TEST(EstimatorModesTest, HybridMatchesIeAboveThreshold) {
  Rng gen_rng(3);
  const Graph g = GeneratePowerlawCluster(1000, 3, 0.4, gen_rng);
  const SamplingList walk = MakeWalk(g, 200, 4);

  EstimatorOptions hybrid;
  EstimatorOptions ie_only;
  ie_only.joint_mode = JointEstimatorMode::kInducedEdgesOnly;
  const LocalEstimates h = EstimateLocalProperties(walk, hybrid);
  const LocalEstimates i = EstimateLocalProperties(walk, ie_only);

  const double threshold = 2.0 * h.average_degree;
  for (const auto& [key, value] : h.joint_dist.values()) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    if (static_cast<double>(k) + static_cast<double>(kp) >= threshold) {
      EXPECT_DOUBLE_EQ(value, i.joint_dist.At(k, kp))
          << "(" << k << "," << kp << ")";
    }
  }
}

TEST(EstimatorModesTest, ModesShareMarginalEstimates) {
  // n̂, k̂̄, P̂(k), ĉ̄(k) are independent of the joint-estimator mode.
  Rng gen_rng(5);
  const Graph g = GeneratePowerlawCluster(800, 3, 0.4, gen_rng);
  const SamplingList walk = MakeWalk(g, 150, 6);
  EstimatorOptions a;
  EstimatorOptions b;
  b.joint_mode = JointEstimatorMode::kInducedEdgesOnly;
  const LocalEstimates ea = EstimateLocalProperties(walk, a);
  const LocalEstimates eb = EstimateLocalProperties(walk, b);
  EXPECT_DOUBLE_EQ(ea.num_nodes, eb.num_nodes);
  EXPECT_DOUBLE_EQ(ea.average_degree, eb.average_degree);
  EXPECT_EQ(ea.degree_dist, eb.degree_dist);
  EXPECT_EQ(ea.clustering, eb.clustering);
}

TEST(EstimatorModesTest, RestorationOptionsPlumbEstimatorOptions) {
  // The facade must forward estimator options: a collision fraction of
  // ~0.5 leaves almost no admissible pairs, driving n̂ to the fallback and
  // changing the generated size versus the default.
  Rng gen_rng(7);
  const Graph g = GeneratePowerlawCluster(900, 3, 0.4, gen_rng);
  const SamplingList walk = MakeWalk(g, 120, 8);

  RestorationOptions default_options;
  default_options.rewire.rewiring_coefficient = 0.0;
  RestorationOptions fallback_options = default_options;
  fallback_options.estimator.collision_threshold_fraction = 0.49;

  Rng rng1(9);
  Rng rng2(9);
  const RestorationResult a = RestoreProposed(walk, default_options, rng1);
  const RestorationResult b = RestoreProposed(walk, fallback_options, rng2);
  // Different collision thresholds -> different n̂ -> (almost surely)
  // different generated sizes.
  EXPECT_NE(a.estimates.num_nodes, b.estimates.num_nodes);
}

}  // namespace
}  // namespace sgr
