#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "estimation/estimators.h"
#include "graph/generators.h"
#include "restore/proposed.h"
#include "sampling/random_walk.h"
#include "util/rng.h"

namespace sgr {
namespace {

/// A walk long enough to span many estimator chunks, so the multi-chunk
/// reduction paths (not just the single-chunk degenerate case) are what
/// the bit-identity assertions exercise.
SamplingList MultiChunkWalk() {
  Rng rng(7);
  const Graph g = GeneratePowerlawCluster(4000, 3, 0.4, rng);
  QueryOracle oracle(g);
  return RandomWalkSample(
      oracle, static_cast<NodeId>(rng.NextIndex(g.NumNodes())),
      g.NumNodes() / 2, rng);
}

/// Bit-exact equality of two estimate sets, double fields included.
void ExpectSameEstimates(const LocalEstimates& a, const LocalEstimates& b,
                         const std::string& what) {
  EXPECT_EQ(a.num_nodes, b.num_nodes) << what;
  EXPECT_EQ(a.average_degree, b.average_degree) << what;
  ASSERT_EQ(a.degree_dist.size(), b.degree_dist.size()) << what;
  for (std::size_t k = 0; k < a.degree_dist.size(); ++k) {
    EXPECT_EQ(a.degree_dist[k], b.degree_dist[k]) << what << " P(" << k
                                                  << ")";
  }
  ASSERT_EQ(a.clustering.size(), b.clustering.size()) << what;
  for (std::size_t k = 0; k < a.clustering.size(); ++k) {
    EXPECT_EQ(a.clustering[k], b.clustering[k]) << what << " c(" << k
                                                << ")";
  }
  ASSERT_EQ(a.joint_dist.values().size(), b.joint_dist.values().size())
      << what;
  for (const auto& [key, value] : a.joint_dist.values()) {
    const auto it = b.joint_dist.values().find(key);
    ASSERT_NE(it, b.joint_dist.values().end()) << what;
    EXPECT_EQ(it->second, value) << what << " key " << key;
  }
}

TEST(ParallelEstimatorTest, LocalPropertiesBitIdenticalAcrossThreadCounts) {
  const SamplingList walk = MultiChunkWalk();
  ASSERT_GT(walk.Length(), 2 * kEstimatorChunkSize)
      << "walk too short to exercise the multi-chunk reduction";

  EstimatorOptions options;
  options.threads = 1;
  const LocalEstimates baseline = EstimateLocalProperties(walk, options);
  for (const std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    const LocalEstimates est = EstimateLocalProperties(walk, options);
    ExpectSameEstimates(baseline, est,
                        "threads = " + std::to_string(threads));
  }
  // The estimates carry real content (not a degenerate all-zero pass).
  EXPECT_GT(baseline.num_nodes, 0.0);
  EXPECT_GT(baseline.average_degree, 0.0);
  EXPECT_FALSE(baseline.joint_dist.values().empty());
}

TEST(ParallelEstimatorTest, EveryJointModeBitIdentical) {
  // The IE / TE / hybrid selection reads the chunk-merged accumulators
  // differently; each mode must be thread-count independent on its own.
  const SamplingList walk = MultiChunkWalk();
  for (const JointEstimatorMode mode :
       {JointEstimatorMode::kHybrid, JointEstimatorMode::kInducedEdgesOnly,
        JointEstimatorMode::kTraversedEdgesOnly}) {
    EstimatorOptions options;
    options.joint_mode = mode;
    options.threads = 1;
    const LocalEstimates baseline = EstimateLocalProperties(walk, options);
    options.threads = 8;
    const LocalEstimates est = EstimateLocalProperties(walk, options);
    ExpectSameEstimates(baseline, est,
                        "mode " + std::to_string(static_cast<int>(mode)));
  }
}

TEST(ParallelEstimatorTest, ScalarEstimatorsBitIdenticalAcrossThreads) {
  const SamplingList walk = MultiChunkWalk();
  const double degree_1 = EstimateAverageDegree(walk, 1);
  EXPECT_GT(degree_1, 0.0);
  EXPECT_EQ(EstimateAverageDegree(walk, 2), degree_1);
  EXPECT_EQ(EstimateAverageDegree(walk, 8), degree_1);

  EstimatorOptions options;
  options.threads = 1;
  const double nodes_1 = EstimateNumNodes(walk, -1.0, options);
  EXPECT_GT(nodes_1, 0.0);
  for (const std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    EXPECT_EQ(EstimateNumNodes(walk, -1.0, options), nodes_1)
        << "threads = " << threads;
  }
}

TEST(ParallelEstimatorTest, DegenerateInputsUnchangedByThreadKnob) {
  // The r < 3 fallback, the non-walk rejection, and the empty list never
  // reach the chunked paths — the knob must not change their contracts.
  SamplingList empty;
  empty.is_walk = true;
  EXPECT_EQ(EstimateAverageDegree(empty, 8), 0.0);

  SamplingList crawl;
  crawl.is_walk = false;
  crawl.visit_sequence = {0, 1, 2, 3};
  for (NodeId v : crawl.visit_sequence) crawl.neighbors[v] = {};
  EstimatorOptions options;
  options.threads = 8;
  EXPECT_THROW(EstimateLocalProperties(crawl, options),
               std::invalid_argument);
  EXPECT_EQ(EstimateNumNodes(crawl, 7.0, options), 7.0);
}

TEST(ParallelEstimatorTest, FullProposedPipelineBitIdenticalAcrossThreads) {
  // RestorationOptions::estimator.threads end to end: the restored graph
  // is a deterministic function of (sample, seed) no matter how many
  // workers scored the estimator chunks.
  Rng gen_rng(61);
  const Graph original = GeneratePowerlawCluster(500, 3, 0.4, gen_rng);
  QueryOracle oracle(original);
  Rng walk_rng(62);
  const SamplingList walk = RandomWalkSample(
      oracle, static_cast<NodeId>(walk_rng.NextIndex(original.NumNodes())),
      original.NumNodes() / 10, walk_rng);

  std::vector<Graph> runs;
  std::vector<double> final_distances;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    RestorationOptions options;
    options.rewire.rewiring_coefficient = 5.0;
    options.estimator.threads = threads;
    Rng rng(63);
    RestorationResult result = RestoreProposed(walk, options, rng);
    runs.push_back(std::move(result.graph));
    final_distances.push_back(result.rewire_stats.final_distance);
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].NumEdges(), runs[0].NumEdges());
    for (EdgeId e = 0; e < runs[0].NumEdges(); ++e) {
      ASSERT_EQ(runs[r].edge(e).u, runs[0].edge(e).u)
          << "edge " << e << " at variant " << r;
      ASSERT_EQ(runs[r].edge(e).v, runs[0].edge(e).v)
          << "edge " << e << " at variant " << r;
    }
    EXPECT_EQ(final_distances[r], final_distances[0]);
  }
}

}  // namespace
}  // namespace sgr
