#include "graph/snapshot_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/edge_list_reader.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace sgr {
namespace {

/// Fresh empty cache directory per test (removed on destruction).
class CacheDir {
 public:
  CacheDir() : path_(::testing::TempDir() + "sgr-cache-" +
                     std::to_string(reinterpret_cast<std::uintptr_t>(this))) {
    std::filesystem::remove_all(path_);
  }
  ~CacheDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CsrGraph SampleGraph() {
  Rng rng(23);
  return CsrGraph(GeneratePowerlawCluster(200, 3, 0.3, rng));
}

IngestStats SampleStats() {
  IngestStats stats;
  stats.file_bytes = 1234;
  stats.edge_lines = 99;
  stats.raw_nodes = 210;
  stats.self_loops_dropped = 3;
  stats.parallel_edges_collapsed = 7;
  stats.lcc_nodes = 200;
  stats.lcc_edges = 500;
  stats.canonical = true;
  stats.spilled = true;
  return stats;
}

TEST(SnapshotCacheTest, PathUsesSixteenHexDigits) {
  EXPECT_EQ(SnapshotCachePath("/tmp/cache", 0xabcULL),
            "/tmp/cache/sgr-snap-0000000000000abc.bin");
}

TEST(SnapshotCacheTest, RoundTripPreservesGraphAndStats) {
  const CacheDir dir;
  const CsrGraph g = SampleGraph();
  const std::string path = SnapshotCachePath(dir.path(), 1);
  SaveCsrSnapshot(path, g, SampleStats());

  CsrGraph loaded;
  IngestStats stats;
  ASSERT_TRUE(LoadCsrSnapshot(path, &loaded, &stats));
  EXPECT_EQ(loaded.raw_offsets(), g.raw_offsets());
  EXPECT_EQ(loaded.raw_neighbors(), g.raw_neighbors());
  EXPECT_EQ(stats.file_bytes, 1234u);
  EXPECT_EQ(stats.edge_lines, 99u);
  EXPECT_EQ(stats.raw_nodes, 210u);
  EXPECT_EQ(stats.self_loops_dropped, 3u);
  EXPECT_EQ(stats.parallel_edges_collapsed, 7u);
  EXPECT_EQ(stats.lcc_nodes, 200u);
  EXPECT_EQ(stats.lcc_edges, 500u);
  EXPECT_TRUE(stats.canonical);
  EXPECT_TRUE(stats.spilled);
}

TEST(SnapshotCacheTest, MissingFileIsSilentMiss) {
  CsrGraph loaded;
  IngestStats stats;
  EXPECT_FALSE(LoadCsrSnapshot("/nonexistent/sgr-snap.bin", &loaded,
                               &stats));
}

TEST(SnapshotCacheTest, BadMagicIsRejected) {
  const CacheDir dir;
  const std::string path = SnapshotCachePath(dir.path(), 2);
  SaveCsrSnapshot(path, SampleGraph(), SampleStats());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.write("BOGUS!!!", 8);
  }
  CsrGraph loaded;
  IngestStats stats;
  EXPECT_FALSE(LoadCsrSnapshot(path, &loaded, &stats));
}

TEST(SnapshotCacheTest, TruncatedFileIsRejected) {
  const CacheDir dir;
  const std::string path = SnapshotCachePath(dir.path(), 3);
  SaveCsrSnapshot(path, SampleGraph(), SampleStats());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  CsrGraph loaded;
  IngestStats stats;
  EXPECT_FALSE(LoadCsrSnapshot(path, &loaded, &stats));
}

TEST(SnapshotCacheTest, FlippedPayloadByteFailsChecksum) {
  const CacheDir dir;
  const std::string path = SnapshotCachePath(dir.path(), 4);
  SaveCsrSnapshot(path, SampleGraph(), SampleStats());
  const auto size = std::filesystem::file_size(path);
  {
    // Flip one byte in the neighbor array, well past the header: the
    // size checks pass, only the trailing checksum can catch it.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  }
  CsrGraph loaded;
  IngestStats stats;
  EXPECT_FALSE(LoadCsrSnapshot(path, &loaded, &stats));
}

TEST(SnapshotCacheTest, SaveCreatesParentDirectoryAndOverwrites) {
  const CacheDir dir;
  const std::string nested = dir.path() + "/deep/er";
  const std::string path = SnapshotCachePath(nested, 5);
  SaveCsrSnapshot(path, SampleGraph(), SampleStats());
  // Overwrite with a different graph; the new contents must win.
  Rng rng(99);
  const CsrGraph other(GeneratePowerlawCluster(50, 3, 0.3, rng));
  SaveCsrSnapshot(path, other, IngestStats{});
  CsrGraph loaded;
  IngestStats stats;
  ASSERT_TRUE(LoadCsrSnapshot(path, &loaded, &stats));
  EXPECT_EQ(loaded.NumNodes(), other.NumNodes());
  EXPECT_EQ(loaded.raw_neighbors(), other.raw_neighbors());
  EXPECT_FALSE(stats.canonical);
}

TEST(SnapshotCacheTest, IngestPopulatesAndHitsCache) {
  const CacheDir dir;
  Rng rng(31);
  const Graph g = GeneratePowerlawCluster(150, 3, 0.3, rng);
  const std::string file = ::testing::TempDir() + "sgr-cache-input.txt";
  {
    std::ofstream out(file);
    WriteEdgeList(g, out);
  }
  IngestOptions options;
  options.compress = IngestOptions::Compress::kOff;
  options.cache_dir = dir.path();
  const IngestResult cold = IngestEdgeListFile(file, options);
  EXPECT_FALSE(cold.from_cache);
  const IngestResult warm = IngestEdgeListFile(file, options);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.content_hash, cold.content_hash);
  EXPECT_EQ(warm.graph.raw_offsets(), cold.graph.raw_offsets());
  EXPECT_EQ(warm.graph.raw_neighbors(), cold.graph.raw_neighbors());
  // Stats are carried through the snapshot, so a hit still reports them.
  EXPECT_EQ(warm.stats.edge_lines, cold.stats.edge_lines);
  EXPECT_EQ(warm.stats.raw_nodes, cold.stats.raw_nodes);

  // A compressed load from the same cache decodes to the same content.
  options.compress = IngestOptions::Compress::kOn;
  const IngestResult packed = IngestEdgeListFile(file, options);
  EXPECT_TRUE(packed.from_cache);
  EXPECT_TRUE(packed.graph.compressed());
  EXPECT_EQ(CsrContentHash(packed.graph), CsrContentHash(cold.graph));

  // Corrupting the entry forces a rebuild (warn + miss), then re-caches.
  const std::string entry = SnapshotCachePath(
      dir.path(), 0);  // unknown key — find the real one by listing
  std::string real_entry;
  for (const auto& item : std::filesystem::directory_iterator(dir.path())) {
    real_entry = item.path().string();
  }
  ASSERT_FALSE(real_entry.empty());
  (void)entry;
  {
    std::ofstream out(real_entry, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  options.compress = IngestOptions::Compress::kOff;
  const IngestResult rebuilt = IngestEdgeListFile(file, options);
  EXPECT_FALSE(rebuilt.from_cache);
  EXPECT_EQ(rebuilt.graph.raw_neighbors(), cold.graph.raw_neighbors());
  std::remove(file.c_str());
}

TEST(SnapshotCacheTest, DifferentContentGetsDifferentKeys) {
  const CacheDir dir;
  const std::string a = ::testing::TempDir() + "sgr-key-a.txt";
  const std::string b = ::testing::TempDir() + "sgr-key-b.txt";
  {
    std::ofstream(a) << "0 1\n1 2\n";
    std::ofstream(b) << "0 1\n1 3\n";
  }
  IngestOptions options;
  options.compress = IngestOptions::Compress::kOff;
  options.cache_dir = dir.path();
  (void)IngestEdgeListFile(a, options);
  (void)IngestEdgeListFile(b, options);
  std::size_t entries = 0;
  for (const auto& item : std::filesystem::directory_iterator(dir.path())) {
    (void)item;
    ++entries;
  }
  EXPECT_EQ(entries, 2u);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

}  // namespace
}  // namespace sgr
