#include "analysis/properties.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.h"

namespace sgr {
namespace {

TEST(PropertiesTest, DegreeDistributionSumsToOne) {
  Rng rng(1);
  const Graph g = GeneratePowerlawCluster(300, 3, 0.4, rng);
  const std::vector<double> p = DegreeDistribution(g);
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
}

TEST(PropertiesTest, DegreeDistributionOfStar) {
  const std::vector<double> p = DegreeDistribution(GenerateStar(10));
  EXPECT_DOUBLE_EQ(p[1], 0.9);
  EXPECT_DOUBLE_EQ(p[9], 0.1);
}

TEST(PropertiesTest, NeighborConnectivityOfStar) {
  // Leaves (degree 1) neighbor only the hub (degree 9): knn(1) = 9.
  // Hub neighbors only leaves: knn(9) = 1.
  const std::vector<double> knn = NeighborConnectivity(GenerateStar(10));
  EXPECT_DOUBLE_EQ(knn[1], 9.0);
  EXPECT_DOUBLE_EQ(knn[9], 1.0);
}

TEST(PropertiesTest, NeighborConnectivityOfCycleIsTwo) {
  const std::vector<double> knn = NeighborConnectivity(GenerateCycle(20));
  EXPECT_DOUBLE_EQ(knn[2], 2.0);
}

TEST(PropertiesTest, ClusteringOfCompleteIsOne) {
  EXPECT_DOUBLE_EQ(NetworkClusteringCoefficient(GenerateComplete(6)), 1.0);
}

TEST(PropertiesTest, ClusteringOfTreeIsZero) {
  EXPECT_DOUBLE_EQ(NetworkClusteringCoefficient(GenerateStar(8)), 0.0);
  EXPECT_DOUBLE_EQ(NetworkClusteringCoefficient(GeneratePath(8)), 0.0);
}

TEST(PropertiesTest, EspOfCompleteGraph) {
  // Every edge of K5 has exactly 3 shared partners.
  const std::vector<double> esp = EdgewiseSharedPartners(GenerateComplete(5));
  ASSERT_EQ(esp.size(), 4u);
  EXPECT_DOUBLE_EQ(esp[3], 1.0);
  EXPECT_DOUBLE_EQ(esp[0], 0.0);
}

TEST(PropertiesTest, EspOfCycle) {
  // Cycle edges share no partners.
  const std::vector<double> esp = EdgewiseSharedPartners(GenerateCycle(10));
  ASSERT_GE(esp.size(), 1u);
  EXPECT_DOUBLE_EQ(esp[0], 1.0);
}

TEST(PropertiesTest, EspDistributionSumsToOneOnSimpleGraphs) {
  Rng rng(2);
  const Graph g = GeneratePowerlawCluster(200, 3, 0.5, rng);
  const std::vector<double> esp = EdgewiseSharedPartners(g);
  EXPECT_NEAR(std::accumulate(esp.begin(), esp.end(), 0.0), 1.0, 1e-12);
}

TEST(PropertiesTest, LargestEigenvalueOfCompleteGraph) {
  // λ1(K_n) = n - 1.
  EXPECT_NEAR(LargestEigenvalue(GenerateComplete(8)), 7.0, 1e-6);
}

TEST(PropertiesTest, LargestEigenvalueOfStar) {
  // λ1(S_n with n-1 leaves) = sqrt(n-1).
  EXPECT_NEAR(LargestEigenvalue(GenerateStar(17)), 4.0, 1e-6);
}

TEST(PropertiesTest, LargestEigenvalueOfCycle) {
  EXPECT_NEAR(LargestEigenvalue(GenerateCycle(12)), 2.0, 1e-6);
}

TEST(PropertiesTest, ShortestPathsOnPath) {
  const Graph g = GeneratePath(4);  // distances: 1x3 pairs... exact below
  const ShortestPathProperties sp = ComputeShortestPathProperties(g);
  // Pairs (ordered, 12 total): d=1: 6, d=2: 4, d=3: 2.
  EXPECT_DOUBLE_EQ(sp.average_length, (6 * 1 + 4 * 2 + 2 * 3) / 12.0);
  EXPECT_EQ(sp.diameter, 3u);
  ASSERT_EQ(sp.length_dist.size(), 4u);
  EXPECT_DOUBLE_EQ(sp.length_dist[1], 0.5);
  EXPECT_DOUBLE_EQ(sp.length_dist[2], 4.0 / 12.0);
  EXPECT_DOUBLE_EQ(sp.length_dist[3], 2.0 / 12.0);
}

TEST(PropertiesTest, PathLengthDistributionSumsToOne) {
  Rng rng(3);
  const Graph g = GeneratePowerlawCluster(150, 3, 0.4, rng);
  const ShortestPathProperties sp = ComputeShortestPathProperties(g);
  EXPECT_NEAR(std::accumulate(sp.length_dist.begin(), sp.length_dist.end(),
                              0.0),
              1.0, 1e-12);
}

TEST(PropertiesTest, BetweennessOfStarHub) {
  // Hub of S_n lies on every leaf-leaf shortest path: b_hub =
  // (n-1)(n-2) ordered pairs; leaves have 0.
  const Graph g = GenerateStar(8);
  const std::vector<double> b = BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(b[0], 7.0 * 6.0);
  for (NodeId v = 1; v < 8; ++v) EXPECT_DOUBLE_EQ(b[v], 0.0);
}

TEST(PropertiesTest, BetweennessOfPathMiddle) {
  // P4 = 0-1-2-3: node 1 carries pairs {0}x{2,3} = 2 unordered = 4
  // ordered.
  const Graph g = GeneratePath(4);
  const std::vector<double> b = BetweennessCentrality(g);
  EXPECT_DOUBLE_EQ(b[1], 4.0);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
}

TEST(PropertiesTest, BetweennessSplitShortestPaths) {
  // Square 0-1-2-3-0: pair (0,2) has two shortest paths through 1 and 3,
  // each carrying 1/2 per direction.
  const Graph g = GenerateCycle(4);
  const std::vector<double> b = BetweennessCentrality(g);
  for (NodeId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(b[v], 1.0);
}

TEST(PropertiesTest, BetweennessMatchesBruteForceOnRandomGraph) {
  Rng rng(4);
  const Graph g = GenerateErdosRenyiGnm(30, 60, rng);
  // Use only the LCC (brute force below assumes connectivity).
  const Graph lcc = [&] {
    return GeneratePowerlawCluster(30, 2, 0.3, rng);  // connected by design
  }();
  const std::vector<double> fast = BetweennessCentrality(lcc);
  // Brute force via repeated BFS path counting.
  const std::size_t n = lcc.NumNodes();
  std::vector<double> slow(n, 0.0);
  for (NodeId s = 0; s < n; ++s) {
    // BFS from s computing sigma and distances.
    std::vector<int> dist(n, -1);
    std::vector<double> sigma(n, 0.0);
    std::vector<NodeId> order;
    dist[s] = 0;
    sigma[s] = 1;
    std::vector<NodeId> queue = {s};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      order.push_back(v);
      for (NodeId w : lcc.adjacency(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
      }
    }
    std::vector<double> delta(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId w = *it;
      for (NodeId v : lcc.adjacency(w)) {
        if (dist[v] == dist[w] - 1) {
          delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      }
      if (w != s) slow[w] += delta[w];
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(fast[v], slow[v], 1e-9) << "node " << v;
  }
}

TEST(PropertiesTest, SampledSourcesApproximateExactPaths) {
  Rng rng(5);
  const Graph g = GeneratePowerlawCluster(500, 3, 0.4, rng);
  PropertyOptions exact;
  PropertyOptions sampled;
  sampled.max_path_sources = 150;
  const ShortestPathProperties e = ComputeShortestPathProperties(g, exact);
  const ShortestPathProperties s = ComputeShortestPathProperties(g, sampled);
  EXPECT_NEAR(s.average_length, e.average_length, 0.1 * e.average_length);
  EXPECT_LE(s.diameter, e.diameter);
  EXPECT_GE(s.diameter, e.diameter > 2 ? e.diameter - 2 : 0);
}

TEST(PropertiesTest, ShortestPathsUseLargestComponent) {
  Graph g(7);
  // Component A: triangle. Component B: path of 4 (larger).
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  const ShortestPathProperties sp = ComputeShortestPathProperties(g);
  EXPECT_EQ(sp.diameter, 3u);  // the path's diameter, not the triangle's
}

TEST(PropertiesTest, ComputePropertiesFillsAllTwelve) {
  Rng rng(6);
  const Graph g = GeneratePowerlawCluster(250, 3, 0.5, rng);
  const GraphProperties p = ComputeProperties(g);
  EXPECT_EQ(p.num_nodes, g.NumNodes());
  EXPECT_DOUBLE_EQ(p.average_degree, g.AverageDegree());
  EXPECT_FALSE(p.degree_dist.empty());
  EXPECT_FALSE(p.neighbor_connectivity.empty());
  EXPECT_GT(p.clustering_global, 0.0);
  EXPECT_FALSE(p.clustering_by_degree.empty());
  EXPECT_FALSE(p.esp_dist.empty());
  EXPECT_GT(p.average_path_length, 1.0);
  EXPECT_FALSE(p.path_length_dist.empty());
  EXPECT_GE(p.diameter, 2u);
  EXPECT_FALSE(p.betweenness_by_degree.empty());
  EXPECT_GT(p.largest_eigenvalue, p.average_degree);
}

TEST(PropertiesTest, MultigraphDegreesIncludeLoopsAndParallels) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  g.AddEdge(2, 2);
  const std::vector<double> p = DegreeDistribution(g);
  // Degrees: 2, 2, 2.
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
}

}  // namespace
}  // namespace sgr
