#include "exp/parallel.h"

#include <atomic>
#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "exp/runner.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"

namespace sgr {
namespace {

TEST(ParallelPrimitivesTest, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(3), 3u);
  EXPECT_GE(ResolveThreadCount(0), 1u);
}

TEST(ParallelPrimitivesTest, DeriveSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(DeriveSeed(42, 7), DeriveSeed(42, 7));
  EXPECT_NE(DeriveSeed(42, 7), DeriveSeed(42, 8));
  EXPECT_NE(DeriveSeed(42, 7), DeriveSeed(43, 7));
}

TEST(ParallelPrimitivesTest, ParallelForCoversEveryIndexOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(kCount, 4, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ParallelPrimitivesTest, ParallelForZeroAndInline) {
  int calls = 0;
  ParallelFor(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(5, 1, [&](std::size_t) { ++calls; });  // inline path
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] { ++done; });
    }
    pool.Wait();
    EXPECT_EQ(done.load(), 64);
  }
}

/// Experiment fixture: small social graph, light settings so the full
/// six-method pipeline stays fast.
class ParallelRunnerTest : public ::testing::Test {
 protected:
  ParallelRunnerTest() {
    Rng rng(11);
    original_ = GenerateSocialGraph(400, 3, 0.4, 0.3, rng);
    config_.query_fraction = 0.1;
    config_.restoration.rewire.rewiring_coefficient = 10.0;
    config_.property_options.max_path_sources = 40;
    config_.property_options.threads = 1;
    properties_ = ComputeProperties(original_, config_.property_options);
  }

  Graph original_;
  ExperimentConfig config_;
  GraphProperties properties_;
};

void ExpectSameResults(const std::vector<MethodRunResult>& a,
                       const std::vector<MethodRunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    for (std::size_t p = 0; p < kNumProperties; ++p) {
      EXPECT_DOUBLE_EQ(a[i].distances[p], b[i].distances[p])
          << "method " << i << " property " << p;
    }
    EXPECT_DOUBLE_EQ(a[i].average_distance, b[i].average_distance);
    EXPECT_EQ(a[i].restoration.graph.NumNodes(),
              b[i].restoration.graph.NumNodes());
    EXPECT_EQ(a[i].restoration.graph.NumEdges(),
              b[i].restoration.graph.NumEdges());
  }
}

TEST_F(ParallelRunnerTest, SnapshotOracleIsReproducible) {
  // The snapshot sorts neighbor lists, so a walk's index-based neighbor
  // picks can differ from the Graph overload's trajectory (same
  // distribution, different sample). What must hold: the snapshot path is
  // exactly reproducible, runs the same method set, and produces finite
  // distances.
  const CsrGraph snapshot(original_);
  const auto first =
      RunExperiment(snapshot, properties_, config_, /*run_seed=*/123);
  const auto second =
      RunExperiment(snapshot, properties_, config_, /*run_seed=*/123);
  ExpectSameResults(first, second);

  const auto from_graph =
      RunExperiment(original_, properties_, config_, /*run_seed=*/123);
  ASSERT_EQ(from_graph.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(from_graph[i].kind, first[i].kind);
    for (std::size_t p = 0; p < kNumProperties; ++p) {
      EXPECT_TRUE(std::isfinite(first[i].distances[p]));
    }
  }
}

TEST_F(ParallelRunnerTest, TrialsDeterministicAcrossThreadCounts) {
  constexpr std::size_t kTrials = 4;
  const auto sequential = RunExperiments(original_, properties_, config_,
                                         /*seed_base=*/900, kTrials,
                                         /*threads=*/1);
  const auto parallel = RunExperiments(original_, properties_, config_,
                                       /*seed_base=*/900, kTrials,
                                       /*threads=*/4);
  const auto oversubscribed = RunExperiments(original_, properties_,
                                             config_, /*seed_base=*/900,
                                             kTrials, /*threads=*/16);
  ASSERT_EQ(sequential.size(), kTrials);
  ASSERT_EQ(parallel.size(), kTrials);
  for (std::size_t t = 0; t < kTrials; ++t) {
    ExpectSameResults(sequential[t], parallel[t]);
    ExpectSameResults(sequential[t], oversubscribed[t]);
  }
}

TEST_F(ParallelRunnerTest, TrialsMatchSequentialRunExperimentCalls) {
  // RunExperiments(seed_base, i) must equal RunExperiment(snapshot,
  // seed_base + i): the parallel engine adds concurrency, not a new
  // seeding scheme.
  const auto trials = RunExperiments(original_, properties_, config_,
                                     /*seed_base=*/77, 3, /*threads=*/2);
  const CsrGraph snapshot(original_);
  for (std::size_t t = 0; t < trials.size(); ++t) {
    const auto expected =
        RunExperiment(snapshot, properties_, config_, 77 + t);
    ExpectSameResults(expected, trials[t]);
  }
}

}  // namespace
}  // namespace sgr
