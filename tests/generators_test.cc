#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/components.h"

namespace sgr {
namespace {

TEST(GeneratorsTest, ErdosRenyiHasExactEdgeCount) {
  Rng rng(1);
  const Graph g = GenerateErdosRenyiGnm(50, 100, rng);
  EXPECT_EQ(g.NumNodes(), 50u);
  EXPECT_EQ(g.NumEdges(), 100u);
  EXPECT_TRUE(g.IsSimple());
}

TEST(GeneratorsTest, ErdosRenyiZeroEdges) {
  Rng rng(2);
  const Graph g = GenerateErdosRenyiGnm(10, 0, rng);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GeneratorsTest, BarabasiAlbertIsSimpleAndConnected) {
  Rng rng(3);
  const Graph g = GenerateBarabasiAlbert(500, 3, rng);
  EXPECT_EQ(g.NumNodes(), 500u);
  EXPECT_TRUE(g.IsSimple());
  EXPECT_TRUE(IsConnected(g));
  // Each non-seed node adds exactly 3 edges; the seed clique adds 6.
  EXPECT_EQ(g.NumEdges(), 6u + (500u - 4u) * 3u);
}

TEST(GeneratorsTest, BarabasiAlbertMinimumDegree) {
  Rng rng(4);
  const Graph g = GenerateBarabasiAlbert(300, 2, rng);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_GE(g.Degree(v), 2u) << "node " << v;
  }
}

TEST(GeneratorsTest, PowerlawClusterHasHigherClusteringThanBa) {
  Rng rng1(5);
  Rng rng2(5);
  const Graph ba = GenerateBarabasiAlbert(2000, 4, rng1);
  const Graph hk = GeneratePowerlawCluster(2000, 4, 0.6, rng2);
  auto global_clustering = [](const Graph& g) {
    // Quick transitivity proxy via degree-dependent clustering weights.
    double total = 0.0;
    std::size_t count = 0;
    // (lazy: reuse analysis would create a dependency cycle in this test's
    // includes; a rough count of closed wedges suffices)
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      const auto& nbrs = g.adjacency(v);
      if (nbrs.size() < 2) continue;
      std::size_t closed = 0;
      std::size_t wedges = 0;
      for (std::size_t i = 0; i < nbrs.size() && i < 10; ++i) {
        for (std::size_t j = i + 1; j < nbrs.size() && j < 10; ++j) {
          ++wedges;
          if (g.HasEdge(nbrs[i], nbrs[j])) ++closed;
        }
      }
      if (wedges > 0) {
        total += static_cast<double>(closed) / static_cast<double>(wedges);
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };
  EXPECT_GT(global_clustering(hk), 2.0 * global_clustering(ba));
}

TEST(GeneratorsTest, PowerlawClusterConnectedSimple) {
  Rng rng(6);
  const Graph g = GeneratePowerlawCluster(1000, 5, 0.4, rng);
  EXPECT_TRUE(g.IsSimple());
  EXPECT_TRUE(IsConnected(g));
}

TEST(GeneratorsTest, PowerlawClusterHeavyTail) {
  Rng rng(7);
  const Graph g = GeneratePowerlawCluster(3000, 4, 0.3, rng);
  // A heavy-tailed graph has a hub far above the average degree.
  EXPECT_GT(g.MaxDegree(), 8 * static_cast<std::size_t>(g.AverageDegree()));
}

TEST(GeneratorsTest, SocialGraphHasPeripheryAndCore) {
  Rng rng(77);
  const Graph g = GenerateSocialGraph(3000, 5, 0.3, 0.4, rng);
  EXPECT_EQ(g.NumNodes(), 3000u);
  EXPECT_TRUE(g.IsSimple());
  EXPECT_TRUE(IsConnected(g));
  // The fringe produces a real low-degree periphery (like actual social
  // graphs), while the core keeps heavy-tailed hubs.
  std::size_t low = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (g.Degree(v) <= 2) ++low;
  }
  EXPECT_GT(low, g.NumNodes() / 5);
  EXPECT_GT(g.MaxDegree(), 20 * 5u);
}

TEST(GeneratorsTest, SocialGraphZeroFringeIsPureHolmeKim) {
  Rng rng1(78);
  Rng rng2(78);
  const Graph a = GenerateSocialGraph(500, 4, 0.3, 0.0, rng1);
  const Graph b = GeneratePowerlawCluster(500, 4, 0.3, rng2);
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
}

TEST(GeneratorsTest, WattsStrogatzDegreeSum) {
  Rng rng(8);
  const Graph g = GenerateWattsStrogatz(200, 6, 0.1, rng);
  EXPECT_EQ(g.NumNodes(), 200u);
  EXPECT_TRUE(g.IsSimple());
  // Rewiring keeps the edge count at most n*k/2 (saturated rewires fall
  // back, so the count is exact).
  EXPECT_EQ(g.NumEdges(), 200u * 6u / 2u);
}

TEST(GeneratorsTest, CommunityGraphCoversAllNodes) {
  Rng rng(9);
  const Graph g = GenerateCommunityGraph(600, 3, 3, 0.3, 30, rng);
  EXPECT_EQ(g.NumNodes(), 600u);
  EXPECT_TRUE(g.IsSimple());
  // With bridges the whole graph is (almost surely) connected.
  EXPECT_EQ(CountComponents(g), 1u);
}

TEST(GeneratorsTest, FixtureGraphs) {
  const Graph complete = GenerateComplete(5);
  EXPECT_EQ(complete.NumEdges(), 10u);
  EXPECT_EQ(complete.MaxDegree(), 4u);

  const Graph cycle = GenerateCycle(6);
  EXPECT_EQ(cycle.NumEdges(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(cycle.Degree(v), 2u);

  const Graph star = GenerateStar(7);
  EXPECT_EQ(star.Degree(0), 6u);
  EXPECT_EQ(star.NumEdges(), 6u);

  const Graph path = GeneratePath(4);
  EXPECT_EQ(path.NumEdges(), 3u);
  EXPECT_EQ(path.Degree(0), 1u);
  EXPECT_EQ(path.Degree(1), 2u);
}

class GeneratorSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(GeneratorSweepTest, PowerlawClusterInvariants) {
  const auto [n, m] = GetParam();
  Rng rng(n * 31 + m);
  const Graph g = GeneratePowerlawCluster(n, m, 0.5, rng);
  EXPECT_EQ(g.NumNodes(), n);
  EXPECT_TRUE(g.IsSimple());
  EXPECT_TRUE(IsConnected(g));
  for (NodeId v = 0; v < g.NumNodes(); ++v) EXPECT_GE(g.Degree(v), m);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorSweepTest,
    ::testing::Combine(::testing::Values(50, 200, 1000),
                       ::testing::Values(2, 3, 5)));

}  // namespace
}  // namespace sgr
