#include "dk/dk_construct.h"

#include <gtest/gtest.h>

#include "dk/dk_extract.h"
#include "graph/generators.h"

namespace sgr {
namespace {

TEST(DkConstructTest, RealizesExactTargetsFromEmpty) {
  // Extract (DV, JDM) from a real graph and rebuild from scratch: the
  // rebuilt graph must realize both exactly (the defining property of a
  // 2K-graph).
  Rng gen_rng(41);
  const Graph original = GeneratePowerlawCluster(300, 3, 0.4, gen_rng);
  const DegreeVector dv = ExtractDegreeVector(original);
  const JointDegreeMatrix jdm = ExtractJointDegreeMatrix(original);

  Rng rng(42);
  const Graph rebuilt = Construct2kGraph(dv, jdm, rng);
  EXPECT_EQ(rebuilt.NumNodes(), original.NumNodes());
  EXPECT_EQ(rebuilt.NumEdges(), original.NumEdges());
  EXPECT_EQ(ExtractDegreeVector(rebuilt), dv);
  // JDM equality entry by entry.
  const JointDegreeMatrix rebuilt_jdm = ExtractJointDegreeMatrix(rebuilt);
  for (const auto& [key, count] : jdm.counts()) {
    EXPECT_EQ(rebuilt_jdm.counts().at(key), count);
  }
  EXPECT_EQ(rebuilt_jdm.counts().size(), jdm.counts().size());
}

TEST(DkConstructTest, ExtendsSubgraphWithoutTouchingIt) {
  // Base: a path 0-1-2. Targets: grow it into a graph with 2 extra
  // degree-1 nodes and matching JDM.
  Graph base(3);
  base.AddEdge(0, 1);
  base.AddEdge(1, 2);
  const std::vector<std::uint32_t> targets = {2, 2, 2};
  // Final graph: cycle-ish with 2 added degree-1... keep it concrete:
  // n*(1) = 2, n*(2) = 3; m*(1,2) = 2, m*(2,2) = 2.
  DegreeVector n_star = {0, 2, 3};
  JointDegreeMatrix m_star;
  m_star.SetSymmetric(1, 2, 2);
  m_star.SetSymmetric(2, 2, 2);
  ASSERT_TRUE(m_star.SatisfiesJdm3(n_star));

  Rng rng(43);
  const Graph out = ConstructPreservingTargets(base, targets, n_star,
                                               m_star, rng);
  EXPECT_EQ(out.NumNodes(), 5u);
  EXPECT_EQ(out.NumEdges(), 4u);
  // Base edges survive with their ids.
  EXPECT_EQ(out.edge(0).u, 0u);
  EXPECT_EQ(out.edge(0).v, 1u);
  EXPECT_EQ(out.edge(1).u, 1u);
  EXPECT_EQ(out.edge(1).v, 2u);
  EXPECT_EQ(ExtractDegreeVector(out), n_star);
  const JointDegreeMatrix out_jdm = ExtractJointDegreeMatrix(out);
  EXPECT_EQ(out_jdm.At(1, 2), 2);
  EXPECT_EQ(out_jdm.At(2, 2), 2);
}

TEST(DkConstructTest, RejectsTargetBelowSubgraphDegree) {
  Graph base(2);
  base.AddEdge(0, 1);
  const std::vector<std::uint32_t> targets = {0, 1};  // node 0 target 0 < 1
  DegreeVector n_star = {1, 1};
  JointDegreeMatrix m_star;
  Rng rng(44);
  EXPECT_THROW(
      ConstructPreservingTargets(base, targets, n_star, m_star, rng),
      std::logic_error);
}

TEST(DkConstructTest, EmptyTargetsYieldEmptyGraph) {
  // A fully empty target set is a legal degenerate input: no nodes, no
  // edges, no stub pools. This used to read past the end of the (empty)
  // stub-pool vector in the leftover check.
  Rng rng(52);
  const Graph g = Construct2kGraph({}, JointDegreeMatrix{}, rng);
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  const Graph p = Construct2kGraphParallel({}, JointDegreeMatrix{},
                                           /*seed=*/53, 2);
  EXPECT_EQ(p.NumNodes(), 0u);
  EXPECT_EQ(p.NumEdges(), 0u);
}

TEST(DkConstructTest, RejectsInconsistentJdm) {
  // Stub counts cannot satisfy this JDM (JDM-3 violated).
  DegreeVector n_star = {0, 2};     // two degree-1 nodes
  JointDegreeMatrix m_star;
  m_star.SetSymmetric(1, 1, 3);     // needs 6 endpoint slots, only 2 exist
  Rng rng(45);
  EXPECT_THROW(Construct2kGraph(n_star, m_star, rng), std::logic_error);
}

TEST(DkConstructTest, RejectsDv3Violation) {
  Graph base(3);
  base.AddEdge(0, 1);
  base.AddEdge(1, 2);
  const std::vector<std::uint32_t> targets = {1, 2, 1};
  DegreeVector n_star = {0, 1, 1};  // fewer deg-1 targets than base has
  JointDegreeMatrix m_star;
  m_star.SetSymmetric(1, 2, 2);
  Rng rng(46);
  EXPECT_THROW(
      ConstructPreservingTargets(base, targets, n_star, m_star, rng),
      std::logic_error);
}

TEST(DkConstructTest, SubgraphClassEdgesCountsByTargetDegree) {
  Graph base(4);
  base.AddEdge(0, 1);
  base.AddEdge(2, 3);
  const std::vector<std::uint32_t> targets = {3, 5, 3, 3};
  const JointDegreeMatrix m_prime = SubgraphClassEdges(base, targets);
  EXPECT_EQ(m_prime.At(3, 5), 1);
  EXPECT_EQ(m_prime.At(3, 3), 1);
  EXPECT_EQ(m_prime.TotalEdges(), 2);
}

TEST(DkConstructTest, DiagonalPairsMayFormLoops) {
  // All stubs in one class: the constructor may wire loops/multi-edges,
  // which the problem definition allows; degree realization must still be
  // exact.
  DegreeVector n_star = {0, 0, 2};  // two degree-2 nodes
  JointDegreeMatrix m_star;
  m_star.SetSymmetric(2, 2, 2);
  Rng rng(47);
  const Graph g = Construct2kGraph(n_star, m_star, rng);
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(DkConstructTest, OneKRealizesDegreeVectorExactly) {
  Rng gen_rng(48);
  const Graph original = GeneratePowerlawCluster(400, 3, 0.4, gen_rng);
  const DegreeVector dv = ExtractDegreeVector(original);
  Rng rng(49);
  const Graph rebuilt = Construct1kGraph(dv, rng);
  EXPECT_EQ(ExtractDegreeVector(rebuilt), dv);
  EXPECT_EQ(rebuilt.NumEdges(), original.NumEdges());
}

TEST(DkConstructTest, OneKRejectsOddDegreeSum) {
  Rng rng(50);
  EXPECT_THROW(Construct1kGraph({0, 1, 1}, rng), std::logic_error);
}

TEST(DkConstructTest, ZeroKPreservesNodesAndEdges) {
  Rng rng(51);
  const Graph g = Construct0kGraph(100, 250, rng);
  EXPECT_EQ(g.NumNodes(), 100u);
  EXPECT_EQ(g.NumEdges(), 250u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 5.0);
}

class DkRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DkRoundTripTest, ExtractConstructRoundTrip) {
  Rng gen_rng(GetParam());
  const Graph original =
      GeneratePowerlawCluster(200 + 50 * (GetParam() % 5), 3, 0.5, gen_rng);
  const DegreeVector dv = ExtractDegreeVector(original);
  const JointDegreeMatrix jdm = ExtractJointDegreeMatrix(original);
  Rng rng(GetParam() * 7 + 1);
  const Graph rebuilt = Construct2kGraph(dv, jdm, rng);
  EXPECT_EQ(ExtractDegreeVector(rebuilt), dv);
  EXPECT_TRUE(ExtractJointDegreeMatrix(rebuilt).SatisfiesJdm3(dv));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DkRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sgr
