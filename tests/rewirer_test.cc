#include "restore/rewirer.h"

#include <gtest/gtest.h>

#include "analysis/l1.h"
#include "dk/dk_extract.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace sgr {
namespace {

TEST(RewirerTest, NoCandidatesIsNoOp) {
  Graph g = GenerateCycle(5);
  Rng rng(1);
  RewireOptions options;
  const RewireStats stats =
      RewireToClustering(g, g.NumEdges(), {0.0, 0.0, 1.0}, options, rng);
  EXPECT_EQ(stats.attempts, 0u);
  EXPECT_EQ(stats.accepted, 0u);
}

TEST(RewirerTest, PreservesDegreeVectorAndJdm) {
  Rng gen_rng(2);
  Graph g = GeneratePowerlawCluster(300, 3, 0.4, gen_rng);
  const DegreeVector dv_before = ExtractDegreeVector(g);
  const JointDegreeMatrix jdm_before = ExtractJointDegreeMatrix(g);

  std::vector<double> target(g.MaxDegree() + 1, 0.3);
  Rng rng(3);
  RewireOptions options;
  options.rewiring_coefficient = 20.0;
  RewireToClustering(g, 0, target, options, rng);

  EXPECT_EQ(ExtractDegreeVector(g), dv_before);
  const JointDegreeMatrix jdm_after = ExtractJointDegreeMatrix(g);
  for (const auto& [key, count] : jdm_before.counts()) {
    EXPECT_EQ(jdm_after.At(static_cast<std::uint32_t>(key >> 32),
                           static_cast<std::uint32_t>(key & 0xffffffffu)),
              count);
  }
}

TEST(RewirerTest, ProtectedEdgesAreNeverTouched) {
  Rng gen_rng(4);
  Graph g = GeneratePowerlawCluster(200, 3, 0.5, gen_rng);
  const std::size_t protected_count = g.NumEdges() / 2;
  std::vector<Edge> frozen(g.edges().begin(),
                           g.edges().begin() + protected_count);

  std::vector<double> target(g.MaxDegree() + 1, 0.0);  // push down
  Rng rng(5);
  RewireOptions options;
  options.rewiring_coefficient = 30.0;
  RewireToClustering(g, protected_count, target, options, rng);

  for (std::size_t e = 0; e < protected_count; ++e) {
    EXPECT_EQ(g.edge(e).u, frozen[e].u);
    EXPECT_EQ(g.edge(e).v, frozen[e].v);
  }
}

TEST(RewirerTest, ObjectiveNeverIncreases) {
  Rng gen_rng(6);
  Graph g = GeneratePowerlawCluster(300, 3, 0.2, gen_rng);
  // Target far from present: high clustering everywhere.
  std::vector<double> target(g.MaxDegree() + 1, 0.5);
  Rng rng(7);
  RewireOptions options;
  options.rewiring_coefficient = 50.0;
  const RewireStats stats = RewireToClustering(g, 0, target, options, rng);
  EXPECT_LE(stats.final_distance, stats.initial_distance + 1e-9);
}

TEST(RewirerTest, MovesClusteringTowardTarget) {
  // Start from a low-clustering graph, target the clustering of a
  // Holme-Kim graph with the same degree structure: rewiring should close
  // a substantial fraction of the gap.
  Rng gen_rng(8);
  Graph g = GeneratePowerlawCluster(400, 3, 0.6, gen_rng);
  const std::vector<double> target = ExtractDegreeDependentClustering(g);

  // Scramble: rewire toward a near-zero (but positive-mass) target first
  // to destroy clustering. An all-zero target would be a no-op: with
  // Σ ĉ̄ = 0 there is nothing to optimize.
  Rng rng(9);
  RewireOptions scramble;
  scramble.rewiring_coefficient = 30.0;
  std::vector<double> low(g.MaxDegree() + 1, 0.005);
  RewireToClustering(g, 0, low, scramble, rng);
  const double gap_before = NormalizedL1(
      target, ExtractDegreeDependentClustering(g));

  RewireOptions options;
  options.rewiring_coefficient = 100.0;
  const RewireStats stats = RewireToClustering(g, 0, target, options, rng);
  const double gap_after = NormalizedL1(
      target, ExtractDegreeDependentClustering(g));
  EXPECT_LT(gap_after, 0.7 * gap_before);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(RewirerTest, FinalDistanceMatchesFreshComputation) {
  Rng gen_rng(10);
  Graph g = GeneratePowerlawCluster(250, 3, 0.5, gen_rng);
  std::vector<double> target(g.MaxDegree() + 1, 0.25);
  Rng rng(11);
  RewireOptions options;
  options.rewiring_coefficient = 20.0;
  const RewireStats stats = RewireToClustering(g, 0, target, options, rng);

  // Recompute D from scratch and compare with the incrementally
  // maintained value.
  const std::vector<double> present = ExtractDegreeDependentClustering(g);
  const double expected = NormalizedL1(target, present);
  EXPECT_NEAR(stats.final_distance, expected, 1e-6);
}

TEST(RewirerTest, ToleratesLoopsAndMultiEdgesAmongCandidates) {
  // Generated graphs may contain self-loops and parallel edges (the
  // problem definition allows them); the rewirer must handle them without
  // corrupting degrees.
  Rng gen_rng(20);
  Graph g = GeneratePowerlawCluster(150, 3, 0.4, gen_rng);
  g.AddEdge(0, 0);
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);  // parallel
  g.AddEdge(5, 5);
  const DegreeVector dv_before = ExtractDegreeVector(g);

  std::vector<double> target(g.MaxDegree() + 1, 0.2);
  Rng rng(21);
  RewireOptions options;
  options.rewiring_coefficient = 40.0;
  const RewireStats stats = RewireToClustering(g, 0, target, options, rng);
  EXPECT_EQ(ExtractDegreeVector(g), dv_before);
  EXPECT_LE(stats.final_distance, stats.initial_distance + 1e-9);
}

TEST(RewirerTest, AttemptsFollowRcCoefficient) {
  Rng gen_rng(12);
  Graph g = GeneratePowerlawCluster(100, 3, 0.3, gen_rng);
  Rng rng(13);
  RewireOptions options;
  options.rewiring_coefficient = 7.0;
  const RewireStats stats =
      RewireToClustering(g, 0, {0.0, 0.0, 0.1}, options, rng);
  EXPECT_EQ(stats.attempts, static_cast<std::size_t>(
                                7.0 * static_cast<double>(g.NumEdges())));
}

}  // namespace
}  // namespace sgr
