// Release-mode edge-case sweep of all seven crawlers against degenerate
// oracles: isolated-node seeds, empty neighborhoods, disconnected
// graphs, an adversarial oracle that fails every query, and a spent API
// budget. The contract under test is purely defensive — no crash, no
// hang, no budget overrun — because the assert-only guards these paths
// used to rely on compile out under NDEBUG.

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sampling/bfs.h"
#include "sampling/forest_fire.h"
#include "sampling/frontier.h"
#include "sampling/metropolis_hastings.h"
#include "sampling/non_backtracking.h"
#include "sampling/perturbed_oracle.h"
#include "sampling/random_walk.h"
#include "sampling/snowball.h"

namespace sgr {
namespace {

/// Number of nodes whose query actually answered. BFS, snowball, and
/// forest fire record nodes that answered nothing with an empty neighbor
/// list (the query was spent), so NumQueried() alone can exceed an API
/// budget; the information the crawl extracted cannot.
std::size_t InformativeNodes(const SamplingList& list) {
  std::size_t n = 0;
  for (const auto& [node, nbrs] : list.neighbors) {
    if (!nbrs.empty()) ++n;
  }
  return n;
}

/// Two triangles (0-1-2 and 3-4-5) plus an isolated node 6: disconnected
/// components AND an empty neighborhood in one graph.
Graph DisconnectedGraph() {
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 3);
  return g;
}

/// Runs every crawler once against `oracle` from `seed`, with walks
/// bounded by max_steps (their documented safety valve — a degenerate
/// oracle can make the queried-node target unreachable). Returns the
/// sampling lists for caller-side assertions; the real test is that this
/// function returns at all.
std::vector<SamplingList> CrawlAll(QueryOracle& oracle, NodeId seed,
                                   std::size_t target,
                                   std::uint64_t rng_seed) {
  constexpr std::size_t kMaxSteps = 10000;
  std::vector<SamplingList> lists;
  Rng rng(rng_seed);
  lists.push_back(RandomWalkSample(oracle, seed, target, rng, kMaxSteps));
  lists.push_back(
      NonBacktrackingWalkSample(oracle, seed, target, rng, kMaxSteps));
  lists.push_back(
      MetropolisHastingsWalkSample(oracle, seed, target, rng, kMaxSteps));
  lists.push_back(FrontierSample(oracle, {seed}, target, rng, kMaxSteps));
  lists.push_back(BfsSample(oracle, seed, target));
  lists.push_back(SnowballSample(oracle, seed, target, 50, rng));
  lists.push_back(ForestFireSample(oracle, seed, target, 0.7, rng));
  return lists;
}

TEST(DegenerateOracleTest, IsolatedSeedTerminatesEveryCrawler) {
  const Graph g = DisconnectedGraph();
  QueryOracle oracle(g);
  const auto lists = CrawlAll(oracle, /*seed=*/6, /*target=*/5, 1);
  for (std::size_t i = 0; i < lists.size(); ++i) {
    // Walk crawlers record nothing (a seed with no neighbors cannot start
    // a walk); the non-walk crawlers record at most the isolated seed
    // itself with an empty neighbor list.
    EXPECT_LE(lists[i].NumQueried(), 1u) << "crawler " << i;
  }
}

TEST(DegenerateOracleTest, DisconnectedGraphCannotOverrunItsComponent) {
  const Graph g = DisconnectedGraph();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    QueryOracle oracle(g);
    // Target 6 exceeds the seed component's 3 nodes; every crawler must
    // stop at the component boundary instead of hanging or crashing.
    const auto lists = CrawlAll(oracle, /*seed=*/0, /*target=*/6, seed);
    for (std::size_t i = 0; i < lists.size(); ++i) {
      EXPECT_LE(lists[i].NumQueried(), 3u) << "crawler " << i;
      for (NodeId v : lists[i].visit_sequence) {
        EXPECT_LT(v, 3u) << "crawler " << i << " escaped its component";
      }
    }
  }
}

TEST(DegenerateOracleTest, TotalFailureOracleTerminatesEveryCrawler) {
  Rng gen(9);
  const Graph g = GeneratePowerlawCluster(200, 3, 0.4, gen);
  CrawlNoise noise;
  noise.failure = 1.0;  // every account is suspended
  PerturbedOracle oracle(g, noise, 77);
  const auto lists = CrawlAll(oracle, /*seed=*/0, /*target=*/50, 2);
  for (std::size_t i = 0; i < lists.size(); ++i) {
    EXPECT_LE(lists[i].NumQueried(), 1u) << "crawler " << i;
  }
}

TEST(DegenerateOracleTest, AllEdgesHiddenTerminatesEveryCrawler) {
  Rng gen(10);
  const Graph g = GeneratePowerlawCluster(200, 3, 0.4, gen);
  CrawlNoise noise;
  noise.hidden_edges = 1.0;  // every query answers, but lists nothing
  PerturbedOracle oracle(g, noise, 78);
  const auto lists = CrawlAll(oracle, /*seed=*/0, /*target=*/50, 3);
  for (std::size_t i = 0; i < lists.size(); ++i) {
    EXPECT_LE(lists[i].NumQueried(), 1u) << "crawler " << i;
  }
}

TEST(DegenerateOracleTest, SpentApiBudgetStopsEveryCrawler) {
  Rng gen(11);
  const Graph g = GeneratePowerlawCluster(200, 3, 0.4, gen);
  for (std::uint64_t budget : {std::uint64_t{1}, std::uint64_t{10}}) {
    CrawlNoise noise;
    noise.api_budget = budget;
    // A fresh oracle per crawler: the budget meters Query() calls, so a
    // shared one would let the first crawler starve the rest.
    constexpr std::size_t kMaxSteps = 10000;
    std::vector<SamplingList> lists;
    Rng rng(4);
    {
      PerturbedOracle o(g, noise, 5);
      lists.push_back(RandomWalkSample(o, 0, 50, rng, kMaxSteps));
      EXPECT_LE(o.api_calls(),
                budget + kMaxConsecutiveFailedMoves + 1);
    }
    {
      PerturbedOracle o(g, noise, 5);
      lists.push_back(
          NonBacktrackingWalkSample(o, 0, 50, rng, kMaxSteps));
    }
    {
      PerturbedOracle o(g, noise, 5);
      lists.push_back(
          MetropolisHastingsWalkSample(o, 0, 50, rng, kMaxSteps));
    }
    {
      PerturbedOracle o(g, noise, 5);
      lists.push_back(FrontierSample(o, {0}, 50, rng, kMaxSteps));
    }
    {
      PerturbedOracle o(g, noise, 5);
      lists.push_back(BfsSample(o, 0, 50));
    }
    {
      PerturbedOracle o(g, noise, 5);
      lists.push_back(SnowballSample(o, 0, 50, 50, rng));
    }
    {
      PerturbedOracle o(g, noise, 5);
      lists.push_back(ForestFireSample(o, 0, 50, 0.7, rng));
    }
    for (std::size_t i = 0; i < lists.size(); ++i) {
      // A crawl can never extract neighbor lists from more nodes than the
      // calls the platform answered. (NumQueried() may legitimately be
      // larger for the non-walk crawlers: spent queries are recorded with
      // empty lists.)
      EXPECT_LE(InformativeNodes(lists[i]),
                static_cast<std::size_t>(budget))
          << "crawler " << i << " at budget " << budget;
    }
  }
}

TEST(DegenerateOracleTest, ForestFireRejectsDegeneratePf) {
  const Graph g = GenerateCycle(10);
  Rng rng(1);
  QueryOracle oracle(g);
  EXPECT_THROW(ForestFireSample(oracle, 0, 5, 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(ForestFireSample(oracle, 0, 5, 1.5, rng),
               std::invalid_argument);
  EXPECT_THROW(ForestFireSample(oracle, 0, 5, -0.1, rng),
               std::invalid_argument);
  EXPECT_THROW(
      ForestFireSample(oracle, 0, 5,
                       std::numeric_limits<double>::quiet_NaN(), rng),
      std::invalid_argument);
  // pf = 0 stays valid: the fire spreads through revives alone.
  const SamplingList list = ForestFireSample(oracle, 0, 5, 0.0, rng);
  EXPECT_EQ(list.NumQueried(), 5u);
}

TEST(DegenerateOracleTest, FrontierRequiresSeeds) {
  const Graph g = GenerateCycle(10);
  Rng rng(1);
  QueryOracle oracle(g);
  EXPECT_THROW(FrontierSample(oracle, {}, 5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace sgr
