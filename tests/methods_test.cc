#include <gtest/gtest.h>

#include "graph/generators.h"
#include "restore/gjoka.h"
#include "restore/proposed.h"
#include "restore/subgraph_method.h"
#include "sampling/random_walk.h"
#include "sampling/subgraph.h"

namespace sgr {
namespace {

struct Sampled {
  Graph original;
  SamplingList walk;
};

Sampled MakeSample(std::uint64_t seed, std::size_t n = 600,
                   std::size_t budget = 60) {
  Sampled s;
  Rng gen_rng(seed);
  s.original = GeneratePowerlawCluster(n, 3, 0.4, gen_rng);
  QueryOracle oracle(s.original);
  Rng rng(seed + 999);
  s.walk = RandomWalkSample(oracle, 0, budget, rng);
  return s;
}

RestorationOptions FastOptions() {
  RestorationOptions options;
  options.rewire.rewiring_coefficient = 10.0;  // keep tests quick
  return options;
}

TEST(MethodsTest, MethodNamesMatchPaperColumns) {
  EXPECT_EQ(MethodName(MethodKind::kBfs), "BFS");
  EXPECT_EQ(MethodName(MethodKind::kSnowball), "Snowball");
  EXPECT_EQ(MethodName(MethodKind::kForestFire), "FF");
  EXPECT_EQ(MethodName(MethodKind::kRandomWalk), "RW");
  EXPECT_EQ(MethodName(MethodKind::kGjoka), "Gjoka et al.");
  EXPECT_EQ(MethodName(MethodKind::kProposed), "Proposed");
}

TEST(MethodsTest, SubgraphSamplingReturnsSubgraph) {
  const Sampled s = MakeSample(1);
  const RestorationResult r = RestoreBySubgraphSampling(s.walk);
  EXPECT_EQ(r.graph.NumNodes(), r.subgraph_nodes);
  EXPECT_EQ(r.graph.NumEdges(), r.subgraph_edges);
  EXPECT_EQ(r.subgraph_queried, s.walk.NumQueried());
  EXPECT_TRUE(r.graph.IsSimple());
}

TEST(MethodsTest, ProposedContainsSubgraphEdges) {
  const Sampled s = MakeSample(2);
  Rng rng(3);
  const RestorationResult r = RestoreProposed(s.walk, FastOptions(), rng);
  // The first |E'| edges of the generated graph are exactly the subgraph's
  // (Algorithm 5 starts from G', and rewiring never touches them).
  const Subgraph sub = BuildSubgraph(s.walk);
  ASSERT_GE(r.graph.NumEdges(), sub.graph.NumEdges());
  for (EdgeId e = 0; e < sub.graph.NumEdges(); ++e) {
    EXPECT_EQ(r.graph.edge(e).u, sub.graph.edge(e).u);
    EXPECT_EQ(r.graph.edge(e).v, sub.graph.edge(e).v);
  }
}

TEST(MethodsTest, ProposedNodeCountNearEstimate) {
  const Sampled s = MakeSample(4, 800, 120);
  Rng rng(5);
  const RestorationResult r = RestoreProposed(s.walk, FastOptions(), rng);
  // Generated n should be within a loose factor of n̂ (targets may grow
  // slightly during adjustment).
  EXPECT_GT(static_cast<double>(r.graph.NumNodes()),
            0.7 * r.estimates.num_nodes);
  EXPECT_LT(static_cast<double>(r.graph.NumNodes()),
            1.5 * r.estimates.num_nodes);
}

TEST(MethodsTest, ProposedQueriedDegreesAreExact) {
  const Sampled s = MakeSample(6);
  Rng rng(7);
  const RestorationResult r = RestoreProposed(s.walk, FastOptions(), rng);
  // Queried nodes keep their true degree in G~: subgraph node ids are the
  // first ids of the generated graph, in subgraph order.
  const Subgraph sub = BuildSubgraph(s.walk);
  for (NodeId v = 0; v < sub.graph.NumNodes(); ++v) {
    if (!sub.is_queried[v]) continue;
    EXPECT_EQ(r.graph.Degree(v), s.original.Degree(sub.to_original[v]))
        << "queried node " << v;
  }
}

TEST(MethodsTest, GjokaIgnoresSubgraphStructure) {
  const Sampled s = MakeSample(8);
  Rng rng(9);
  const RestorationResult r = RestoreGjoka(s.walk, FastOptions(), rng);
  EXPECT_GT(r.graph.NumNodes(), 0u);
  EXPECT_GT(r.graph.NumEdges(), 0u);
  // Diagnostics still report the subgraph sizes.
  EXPECT_EQ(r.subgraph_queried, s.walk.NumQueried());
}

TEST(MethodsTest, TimingFieldsArePopulated) {
  const Sampled s = MakeSample(10);
  Rng rng(11);
  const RestorationResult r = RestoreProposed(s.walk, FastOptions(), rng);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GE(r.total_seconds, r.rewiring_seconds);
  EXPECT_GT(r.rewire_stats.attempts, 0u);
}

TEST(MethodsTest, ProposedRewiresFewerCandidatesThanGjoka) {
  const Sampled s = MakeSample(12);
  Rng rng1(13);
  Rng rng2(13);
  const RestorationResult proposed =
      RestoreProposed(s.walk, FastOptions(), rng1);
  const RestorationResult gjoka = RestoreGjoka(s.walk, FastOptions(), rng2);
  // Same RC, but the proposed method excludes |E'| edges from the
  // candidate set, so it attempts strictly fewer swaps when graphs have
  // comparable size (Section IV-E's running-time claim).
  EXPECT_LT(static_cast<double>(proposed.rewire_stats.attempts),
            static_cast<double>(gjoka.rewire_stats.attempts) * 1.05);
}

TEST(MethodsTest, DeterministicGivenSeeds) {
  const Sampled s = MakeSample(14);
  Rng rng1(15);
  Rng rng2(15);
  const RestorationResult a = RestoreProposed(s.walk, FastOptions(), rng1);
  const RestorationResult b = RestoreProposed(s.walk, FastOptions(), rng2);
  ASSERT_EQ(a.graph.NumNodes(), b.graph.NumNodes());
  ASSERT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  for (EdgeId e = 0; e < a.graph.NumEdges(); ++e) {
    EXPECT_EQ(a.graph.edge(e).u, b.graph.edge(e).u);
    EXPECT_EQ(a.graph.edge(e).v, b.graph.edge(e).v);
  }
}

}  // namespace
}  // namespace sgr
