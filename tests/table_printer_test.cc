#include "exp/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sgr {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  std::ostringstream out;
  TablePrinter t(out, {"Method", "L1"});
  t.AddRow({"BFS", "0.272"});
  t.AddRow({"Proposed", "0.029"});
  t.Print();
  const std::string text = out.str();
  EXPECT_NE(text.find("Method"), std::string::npos);
  EXPECT_NE(text.find("Proposed"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Aligned: the "L1" column starts at the same offset on every line.
  std::istringstream lines(text);
  std::string header;
  std::string rule;
  std::string row1;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  EXPECT_EQ(header.find("L1"), row1.find("0.272"));
}

TEST(TablePrinterTest, CsvOutput) {
  std::ostringstream out;
  TablePrinter t(out, {"a", "b"});
  t.AddRow({"1", "2"});
  t.PrintCsv();
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FixedFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Fixed(0.12345, 3), "0.123");
  EXPECT_EQ(TablePrinter::Fixed(2.0, 1), "2.0");
}

TEST(TablePrinterTest, PlusMinus) {
  EXPECT_EQ(TablePrinter::PlusMinus(0.5, 0.1, 2), "0.50 +- 0.10");
}

}  // namespace
}  // namespace sgr
