#include "restore/target_degree_vector.h"

#include <gtest/gtest.h>

#include "estimation/estimators.h"
#include "graph/generators.h"
#include "sampling/random_walk.h"
#include "sampling/subgraph.h"

namespace sgr {
namespace {

LocalEstimates SimpleEstimates() {
  LocalEstimates est;
  est.num_nodes = 10.0;
  est.average_degree = 2.0;
  est.degree_dist = {0.0, 0.4, 0.4, 0.2};  // k = 1, 2, 3
  return est;
}

TEST(TargetDvTest, EstimatesOnlyInitialization) {
  const LocalEstimates est = SimpleEstimates();
  const TargetDegreeVectorResult r =
      BuildTargetDegreeVectorFromEstimates(est);
  // n̂(1) = 4, n̂(2) = 4, n̂(3) = 2 -> degree sum 4 + 8 + 6 = 18 even.
  EXPECT_EQ(r.n_star, (DegreeVector{0, 4, 4, 2}));
  EXPECT_TRUE(SatisfiesDv2(r.n_star));
  EXPECT_TRUE(r.subgraph_target_degrees.empty());
}

TEST(TargetDvTest, PositiveMassForcesAtLeastOneNode) {
  LocalEstimates est;
  est.num_nodes = 100.0;
  est.degree_dist = {0.0, 0.999, 0.001};  // n̂(2) = 0.1 -> still 1 node
  const TargetDegreeVectorResult r =
      BuildTargetDegreeVectorFromEstimates(est);
  EXPECT_GE(r.n_star[2], 1);
}

TEST(TargetDvTest, ParityAdjustmentMakesSumEven) {
  LocalEstimates est;
  est.num_nodes = 5.0;
  est.degree_dist = {0.0, 0.2, 0.0, 0.8};  // n̂(1)=1, n̂(3)=4 -> sum 13 odd
  const TargetDegreeVectorResult r =
      BuildTargetDegreeVectorFromEstimates(est);
  EXPECT_TRUE(SatisfiesDv2(r.n_star));
  EXPECT_TRUE(SatisfiesDv1(r.n_star));
  // The bump lands on the odd degree with the smaller relative error
  // increase: Δ+(1) = 1 (1 -> 2 against n̂(1) = 1) vs Δ+(3) = 0.25
  // (4 -> 5 against n̂(3) = 4), so degree 3 is bumped: 13 + 3 = 16.
  EXPECT_EQ(DegreeVectorTotalDegree(r.n_star), 16);
}

TEST(TargetDvTest, DeltaPlusInfiniteForZeroMass) {
  const LocalEstimates est = SimpleEstimates();
  EXPECT_TRUE(std::isinf(DegreeDeltaPlus(est, 7, 0)));
  EXPECT_FALSE(std::isinf(DegreeDeltaPlus(est, 2, 4)));
}

TEST(TargetDvTest, DeltaPlusSignReflectsDistanceToEstimate) {
  const LocalEstimates est = SimpleEstimates();  // n̂(2) = 4
  EXPECT_LT(DegreeDeltaPlus(est, 2, 2), 0.0);  // moving 2->3 approaches 4
  EXPECT_GT(DegreeDeltaPlus(est, 2, 5), 0.0);  // moving 5->6 recedes
}

class TargetDvWalkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TargetDvWalkTest, SatisfiesAllConditionsOnRealWalks) {
  Rng gen_rng(GetParam());
  const Graph g = GeneratePowerlawCluster(600, 3, 0.4, gen_rng);
  QueryOracle oracle(g);
  Rng rng(GetParam() + 1000);
  const SamplingList list = RandomWalkSample(oracle, 0, 60, rng);
  const Subgraph sub = BuildSubgraph(list);
  const LocalEstimates est = EstimateLocalProperties(list);
  const TargetDegreeVectorResult r =
      BuildTargetDegreeVector(sub, est, rng);

  // DV-1 and DV-2.
  EXPECT_TRUE(SatisfiesDv1(r.n_star));
  EXPECT_TRUE(SatisfiesDv2(r.n_star));

  // DV-3: n*(k) >= #subgraph nodes with target degree k.
  DegreeVector n_prime(r.n_star.size(), 0);
  ASSERT_EQ(r.subgraph_target_degrees.size(), sub.graph.NumNodes());
  for (NodeId v = 0; v < sub.graph.NumNodes(); ++v) {
    const std::uint32_t d = r.subgraph_target_degrees[v];
    ASSERT_LT(d, r.n_star.size());
    ++n_prime[d];
  }
  for (std::size_t k = 0; k < r.n_star.size(); ++k) {
    EXPECT_GE(r.n_star[k], n_prime[k]) << "degree " << k;
  }

  // Lemma 1 consistency: queried exact, visible lower-bounded.
  for (NodeId v = 0; v < sub.graph.NumNodes(); ++v) {
    if (sub.is_queried[v]) {
      EXPECT_EQ(r.subgraph_target_degrees[v], sub.graph.Degree(v));
    } else {
      EXPECT_GE(r.subgraph_target_degrees[v], sub.graph.Degree(v));
    }
  }

  // k*_max covers both sources.
  EXPECT_GE(r.k_star_max, est.MaxDegreeWithMass());
  EXPECT_GE(r.k_star_max + 0u, sub.graph.MaxDegree());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TargetDvWalkTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(TargetDvTest, VisibleHubGetsDegreeAtLeastSubgraphDegree) {
  // Construct a sampling list where a visible node has high subgraph
  // degree: a star queried at the leaves.
  SamplingList list;
  list.is_walk = true;
  // Star center 0 with leaves 1..6; query leaves 1, 2, 3 (walk hops
  // through the center but we only claim queried set semantics here).
  list.visit_sequence = {1, 2, 3};
  list.neighbors[1] = {0};
  list.neighbors[2] = {0};
  list.neighbors[3] = {0};
  const Subgraph sub = BuildSubgraph(list);
  LocalEstimates est;
  est.num_nodes = 7.0;
  est.degree_dist = {0.0, 6.0 / 7.0, 0.0, 0.0, 0.0, 0.0, 1.0 / 7.0};
  Rng rng(60);
  const TargetDegreeVectorResult r = BuildTargetDegreeVector(sub, est, rng);
  const NodeId center = sub.from_original.at(0);
  EXPECT_FALSE(sub.is_queried[center]);
  EXPECT_GE(r.subgraph_target_degrees[center], 3u);
}

}  // namespace
}  // namespace sgr
