#include <gtest/gtest.h>

#include "analysis/properties.h"
#include "graph/generators.h"

namespace sgr {
namespace {

TEST(ParallelPropertiesTest, ThreadCountDoesNotChangeResults) {
  Rng rng(1);
  const Graph g = GeneratePowerlawCluster(600, 3, 0.4, rng);
  PropertyOptions one;
  one.threads = 1;
  PropertyOptions many;
  many.threads = 8;
  const ShortestPathProperties a = ComputeShortestPathProperties(g, one);
  const ShortestPathProperties b = ComputeShortestPathProperties(g, many);
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_NEAR(a.average_length, b.average_length, 1e-9);
  ASSERT_EQ(a.length_dist.size(), b.length_dist.size());
  for (std::size_t l = 0; l < a.length_dist.size(); ++l) {
    EXPECT_NEAR(a.length_dist[l], b.length_dist[l], 1e-12) << "l=" << l;
  }
  ASSERT_EQ(a.betweenness_by_degree.size(),
            b.betweenness_by_degree.size());
  for (std::size_t k = 0; k < a.betweenness_by_degree.size(); ++k) {
    EXPECT_NEAR(a.betweenness_by_degree[k], b.betweenness_by_degree[k],
                1e-6 * (1.0 + a.betweenness_by_degree[k]))
        << "k=" << k;
  }
}

TEST(ParallelPropertiesTest, SampledSourcesIdenticalAcrossThreadCounts) {
  Rng rng(2);
  const Graph g = GeneratePowerlawCluster(800, 3, 0.4, rng);
  PropertyOptions one;
  one.threads = 1;
  one.max_path_sources = 100;
  PropertyOptions many = one;
  many.threads = 6;
  const ShortestPathProperties a = ComputeShortestPathProperties(g, one);
  const ShortestPathProperties b = ComputeShortestPathProperties(g, many);
  // Same seed -> same source set -> identical aggregates (up to FP
  // summation order).
  EXPECT_EQ(a.diameter, b.diameter);
  EXPECT_NEAR(a.average_length, b.average_length, 1e-9);
}

TEST(ParallelPropertiesTest, MoreThreadsThanSources) {
  const Graph g = GenerateCycle(6);
  PropertyOptions options;
  options.threads = 32;  // > n: must clamp, not crash
  const ShortestPathProperties sp = ComputeShortestPathProperties(g, options);
  EXPECT_EQ(sp.diameter, 3u);
}

}  // namespace
}  // namespace sgr
