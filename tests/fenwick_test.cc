#include "util/fenwick.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace sgr {
namespace {

TEST(FenwickTest, PrefixSums) {
  FenwickTree t(8);
  t.Add(0, 5);
  t.Add(3, 2);
  t.Add(7, 1);
  EXPECT_EQ(t.PrefixSum(0), 5);
  EXPECT_EQ(t.PrefixSum(2), 5);
  EXPECT_EQ(t.PrefixSum(3), 7);
  EXPECT_EQ(t.PrefixSum(7), 8);
  EXPECT_EQ(t.Total(), 8);
}

TEST(FenwickTest, RangeSum) {
  FenwickTree t(10);
  for (std::size_t i = 0; i < 10; ++i) t.Add(i, static_cast<int>(i));
  EXPECT_EQ(t.RangeSum(0, 9), 45);
  EXPECT_EQ(t.RangeSum(3, 5), 3 + 4 + 5);
  EXPECT_EQ(t.RangeSum(5, 3), 0);  // empty range
  EXPECT_EQ(t.RangeSum(9, 9), 9);
}

TEST(FenwickTest, FindByPrefixSelectsProportionally) {
  FenwickTree t(4);
  t.Add(1, 3);
  t.Add(2, 1);
  // Counts: [0,3,1,0]; prefix targets 0,1,2 -> index 1; 3 -> index 2.
  EXPECT_EQ(t.FindByPrefix(0), 1u);
  EXPECT_EQ(t.FindByPrefix(1), 1u);
  EXPECT_EQ(t.FindByPrefix(2), 1u);
  EXPECT_EQ(t.FindByPrefix(3), 2u);
}

TEST(FenwickTest, AddAndRemove) {
  FenwickTree t(5);
  t.Add(2, 4);
  t.Add(2, -3);
  EXPECT_EQ(t.RangeSum(2, 2), 1);
  t.Add(2, -1);
  EXPECT_EQ(t.Total(), 0);
}

TEST(FenwickTest, MatchesBruteForceUnderRandomOps) {
  Rng rng(77);
  const std::size_t size = 64;
  FenwickTree t(size);
  std::map<std::size_t, std::int64_t> reference;
  for (int op = 0; op < 2000; ++op) {
    const std::size_t idx = rng.NextIndex(size);
    const std::int64_t cur = reference.count(idx) ? reference[idx] : 0;
    // Keep counts non-negative.
    const std::int64_t delta =
        rng.NextBernoulli(0.6) ? 1 : (cur > 0 ? -1 : 1);
    reference[idx] = cur + delta;
    t.Add(idx, delta);
  }
  std::int64_t run = 0;
  for (std::size_t i = 0; i < size; ++i) {
    run += reference.count(i) ? reference[i] : 0;
    ASSERT_EQ(t.PrefixSum(i), run) << "prefix mismatch at " << i;
  }
  // Sampling returns only indices with positive count.
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t target = rng.NextInt(0, t.Total() - 1);
    const std::size_t idx = t.FindByPrefix(target);
    ASSERT_GT(t.RangeSum(idx, idx), 0);
  }
}

TEST(FenwickTest, SamplingDistributionIsProportional) {
  Rng rng(99);
  FenwickTree t(3);
  t.Add(0, 1);
  t.Add(2, 3);
  int hits0 = 0;
  int hits2 = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const std::size_t idx =
        t.FindByPrefix(rng.NextInt(0, t.Total() - 1));
    if (idx == 0) ++hits0;
    if (idx == 2) ++hits2;
  }
  EXPECT_EQ(hits0 + hits2, trials);
  EXPECT_NEAR(static_cast<double>(hits2) / hits0, 3.0, 0.3);
}

}  // namespace
}  // namespace sgr
