#include <gtest/gtest.h>

#include <numeric>
#include <unordered_map>

#include "estimation/estimators.h"
#include "graph/generators.h"
#include "sampling/frontier.h"
#include "sampling/metropolis_hastings.h"
#include "sampling/random_walk.h"
#include "sampling/subgraph.h"

namespace sgr {
namespace {

TEST(MetropolisHastingsTest, ReachesBudget) {
  Rng gen_rng(1);
  const Graph g = GeneratePowerlawCluster(500, 3, 0.4, gen_rng);
  QueryOracle oracle(g);
  Rng rng(2);
  const SamplingList list =
      MetropolisHastingsWalkSample(oracle, 0, 60, rng);
  EXPECT_GE(list.NumQueried(), 60u);
  EXPECT_TRUE(list.is_walk);
}

TEST(MetropolisHastingsTest, TrajectoryMovesOnlyAlongEdgesOrStays) {
  Rng gen_rng(3);
  const Graph g = GeneratePowerlawCluster(400, 3, 0.4, gen_rng);
  QueryOracle oracle(g);
  Rng rng(4);
  const SamplingList list =
      MetropolisHastingsWalkSample(oracle, 5, 50, rng);
  for (std::size_t i = 0; i + 1 < list.Length(); ++i) {
    const NodeId a = list.visit_sequence[i];
    const NodeId b = list.visit_sequence[i + 1];
    EXPECT_TRUE(a == b || g.HasEdge(a, b)) << "step " << i;
  }
}

TEST(MetropolisHastingsTest, StationaryDistributionIsUniform) {
  // On a strongly inhomogeneous graph (a star), an MH walk visits the hub
  // and each leaf equally often, while a simple walk spends half its time
  // on the hub. Compare visit shares on a long trajectory.
  const Graph g = GenerateStar(11);  // hub 0, 10 leaves
  QueryOracle oracle(g);
  Rng rng(5);
  const SamplingList list = MetropolisHastingsWalkSample(
      oracle, 0, /*unreachable*/ 12, rng, /*max_steps=*/60000);
  std::unordered_map<NodeId, std::size_t> visits;
  for (NodeId v : list.visit_sequence) ++visits[v];
  const double hub_share =
      static_cast<double>(visits[0]) /
      static_cast<double>(list.Length());
  // Uniform stationary distribution -> hub share ~ 1/11 = 0.0909.
  EXPECT_NEAR(hub_share, 1.0 / 11.0, 0.02);
}

TEST(MetropolisHastingsTest, PlainMeanDegreeIsUnbiased) {
  // Under the uniform stationary distribution, the plain average of
  // visited degrees estimates the true average degree (no re-weighting).
  Rng gen_rng(6);
  const Graph g = GeneratePowerlawCluster(1000, 4, 0.3, gen_rng);
  QueryOracle oracle(g);
  Rng rng(7);
  const SamplingList list = MetropolisHastingsWalkSample(
      oracle, 0, /*unreachable*/ g.NumNodes() + 1, rng,
      /*max_steps=*/40000);
  double mean = 0.0;
  for (NodeId v : list.visit_sequence) {
    mean += static_cast<double>(list.DegreeOf(v));
  }
  mean /= static_cast<double>(list.Length());
  EXPECT_NEAR(mean, g.AverageDegree(), 0.12 * g.AverageDegree());
}

TEST(FrontierTest, ReachesBudgetWithMultipleWalkers) {
  Rng gen_rng(8);
  const Graph g = GeneratePowerlawCluster(600, 3, 0.4, gen_rng);
  QueryOracle oracle(g);
  Rng rng(9);
  std::vector<NodeId> seeds = {0, 10, 20, 30, 40};
  const SamplingList list = FrontierSample(oracle, seeds, 80, rng);
  EXPECT_GE(list.NumQueried(), 80u);
}

TEST(FrontierTest, WorksAcrossDisconnectedComponents) {
  // Two disjoint cycles; a single walk would stay in its component, but
  // frontier sampling with seeds in both covers both.
  Graph g(20);
  for (NodeId v = 0; v < 10; ++v) {
    g.AddEdge(v, static_cast<NodeId>((v + 1) % 10));
  }
  for (NodeId v = 10; v < 20; ++v) {
    g.AddEdge(v, static_cast<NodeId>(10 + (v + 1 - 10) % 10));
  }
  QueryOracle oracle(g);
  Rng rng(10);
  const SamplingList list = FrontierSample(oracle, {0, 10}, 20, rng, 4000);
  bool low = false;
  bool high = false;
  for (const auto& [v, nbrs] : list.neighbors) {
    (void)nbrs;
    low |= (v < 10);
    high |= (v >= 10);
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(FrontierTest, AverageDegreeEstimatorApplies) {
  // Frontier sampling preserves the edge-sampling law, so the re-weighted
  // average-degree estimator stays consistent.
  Rng gen_rng(11);
  const Graph g = GeneratePowerlawCluster(1200, 4, 0.3, gen_rng);
  QueryOracle oracle(g);
  Rng rng(12);
  std::vector<NodeId> seeds;
  for (int i = 0; i < 10; ++i) {
    seeds.push_back(static_cast<NodeId>(rng.NextIndex(g.NumNodes())));
  }
  const SamplingList list = FrontierSample(oracle, seeds, 500, rng);
  EXPECT_NEAR(EstimateAverageDegree(list), g.AverageDegree(),
              0.15 * g.AverageDegree());
}

TEST(FrontierTest, SubgraphConstructionWorksOnFrontierSamples) {
  Rng gen_rng(13);
  const Graph g = GeneratePowerlawCluster(500, 3, 0.4, gen_rng);
  QueryOracle oracle(g);
  Rng rng(14);
  const SamplingList list = FrontierSample(oracle, {1, 2, 3}, 60, rng);
  const Subgraph sub = BuildSubgraph(list);
  EXPECT_GE(sub.NumQueried(), 60u);
  for (const Edge& e : sub.graph.edges()) {
    EXPECT_TRUE(g.HasEdge(sub.to_original[e.u], sub.to_original[e.v]));
  }
}

}  // namespace
}  // namespace sgr
