#include "analysis/extras.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace sgr {
namespace {

TEST(ExtrasTest, AssortativityOfStarIsMinusOne) {
  // Every edge joins the hub (high degree) to a leaf (degree 1): perfect
  // disassortativity.
  EXPECT_NEAR(DegreeAssortativity(GenerateStar(10)), -1.0, 1e-12);
}

TEST(ExtrasTest, AssortativityOfRegularGraphIsZeroByConvention) {
  // Zero degree variance: the coefficient is undefined; we return 0.
  EXPECT_DOUBLE_EQ(DegreeAssortativity(GenerateCycle(10)), 0.0);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(GenerateComplete(6)), 0.0);
}

TEST(ExtrasTest, AssortativityBounds) {
  Rng rng(1);
  const Graph g = GeneratePowerlawCluster(800, 3, 0.4, rng);
  const double r = DegreeAssortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
}

TEST(ExtrasTest, CoreNumbersOfComplete) {
  const std::vector<std::size_t> core = CoreNumbers(GenerateComplete(6));
  for (std::size_t c : core) EXPECT_EQ(c, 5u);
  EXPECT_EQ(Degeneracy(GenerateComplete(6)), 5u);
}

TEST(ExtrasTest, CoreNumbersOfStar) {
  const std::vector<std::size_t> core = CoreNumbers(GenerateStar(8));
  for (std::size_t c : core) EXPECT_EQ(c, 1u);
}

TEST(ExtrasTest, CoreNumbersOfCycleWithTail) {
  // Cycle of 4 with a pendant path: cycle nodes are 2-core, tail is
  // 1-core.
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  const std::vector<std::size_t> core = CoreNumbers(g);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 2u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
}

TEST(ExtrasTest, CoreNumbersNeverExceedDegree) {
  Rng rng(2);
  const Graph g = GeneratePowerlawCluster(500, 3, 0.5, rng);
  const std::vector<std::size_t> core = CoreNumbers(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_LE(core[v], g.Degree(v));
    EXPECT_GE(core[v], 3u);  // Holme-Kim minimum degree is m = 3
  }
}

TEST(ExtrasTest, PeripheryShareOfStar) {
  // 9 of 10 nodes have degree 1.
  EXPECT_DOUBLE_EQ(PeripheryShare(GenerateStar(10)), 0.9);
  EXPECT_DOUBLE_EQ(PeripheryShare(GenerateStar(10), 0), 0.0);
}

TEST(ExtrasTest, ComponentSizesSortedDescending) {
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  const std::vector<std::size_t> sizes = ComponentSizes(g);
  ASSERT_EQ(sizes.size(), 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 1u);
  EXPECT_EQ(sizes[3], 1u);
}

}  // namespace
}  // namespace sgr
