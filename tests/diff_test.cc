#include "scenario/diff.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "scenario/engine.h"
#include "scenario/report.h"
#include "scenario/spec.h"

namespace sgr {
namespace {

// ---------------------------------------------------------------------------
// Handcrafted documents (full control over every compared value)
// ---------------------------------------------------------------------------

/// One-cell report with a single Proposed method entry. `cell_extra` is
/// spliced into the cell object (e.g. R"("rc": 10,)") to exercise the
/// knob pairing; `config` into the top-level config echo; `method_extra`
/// into the method entry (e.g. a "convergence" block).
Json MakeDoc(double average, double wall_seconds, double restore_seconds,
             const std::string& cell_extra = "",
             const std::string& config = R"({"rc": 10})",
             const std::string& method_extra = "") {
  const std::string text = R"({
    "schema": "sgr-report/1",
    "tool": "sgr run",
    "config": )" + config + R"(,
    "environment": {"threads": 1},
    "cells": [
      {"dataset": "tiny", "nodes": 100, "edges": 300,
       "query_fraction": 0.1, )" + cell_extra + R"(
       "seed_base": 7, "trials": 2,
       "methods": [
         {"method": "Proposed",
          "sample_steps": 40, )" + method_extra + R"(
          "distances": {"per_property": {"n": )" +
                           std::to_string(average) + R"(, "m": 0.25},
                        "average": )" + std::to_string(average) + R"(,
                        "sd": 0.1},
          "timings": {"restore_seconds": )" +
                           std::to_string(restore_seconds) + R"(,
                      "rewiring_seconds": 0.2}}],
       "timings": {"wall_seconds": )" + std::to_string(wall_seconds) +
                           R"(}}
    ]
  })";
  return Json::Parse(text);
}

TEST(DiffSchemaTest, AcceptsAWellFormedReport) {
  EXPECT_NO_THROW(ValidateReportSchema(MakeDoc(0.5, 1.0, 0.5)));
}

TEST(DiffSchemaTest, RejectsMalformedReports) {
  const char* bad[] = {
      R"([1, 2])",                                    // not an object
      R"({"cells": []})",                             // missing schema
      R"({"schema": "sgr-report/2", "cells": []})",   // wrong schema
      R"({"schema": "sgr-report/1"})",                // missing cells
      R"({"schema": "sgr-report/1", "cells": [3]})",  // cell not object
      R"({"schema": "sgr-report/1",
          "cells": [{"dataset": "a"}]})",             // missing fraction
      R"({"schema": "sgr-report/1",
          "cells": [{"dataset": "a", "query_fraction": 0.1}]})",
      R"({"schema": "sgr-report/1",
          "cells": [{"dataset": "a", "query_fraction": 0.1,
                     "methods": [{"method": "Proposed"}]}]})",
      R"({"schema": "sgr-report/1",
          "cells": [{"dataset": "a", "query_fraction": 0.1,
                     "methods": [{"method": "Proposed",
                                  "distances": {"average": 1,
                                                "per_property":
                                                  {"n": "x"}}}]}]})",
  };
  for (const char* text : bad) {
    EXPECT_THROW(ValidateReportSchema(Json::Parse(text)),
                 std::runtime_error)
        << text;
  }
}

TEST(DiffReportsTest, IdenticalReportsAreClean) {
  const Json doc = MakeDoc(0.5, 1.0, 0.5);
  const DiffResult result = DiffReports(doc, doc);
  EXPECT_FALSE(result.HasRegression());
  EXPECT_EQ(result.cells_compared, 1u);
  EXPECT_EQ(result.methods_compared, 1u);
  EXPECT_DOUBLE_EQ(result.max_l1_drift, 0.0);
}

TEST(DiffReportsTest, L1DriftIsARegressionInEitherDirection) {
  const Json old_doc = MakeDoc(0.5, 1.0, 0.5);
  for (double new_average : {0.6, 0.4}) {
    const Json new_doc = MakeDoc(new_average, 1.0, 0.5);
    const DiffResult result = DiffReports(old_doc, new_doc);
    EXPECT_TRUE(result.HasRegression()) << new_average;
    EXPECT_GT(result.max_l1_drift, 0.05) << new_average;
  }
  // ...but drift within tolerance is clean.
  DiffOptions loose;
  loose.l1_tolerance = 0.5;
  EXPECT_FALSE(
      DiffReports(old_doc, MakeDoc(0.6, 1.0, 0.5), loose).HasRegression());
}

TEST(DiffReportsTest, TimingRegressionFlaggedAndSkippable) {
  const Json old_doc = MakeDoc(0.5, 1.0, 0.5);
  const Json slow = MakeDoc(0.5, 4.0, 2.0);  // 4x the wall clock
  DiffOptions options;
  options.time_tolerance = 0.5;
  const DiffResult result = DiffReports(old_doc, slow, options);
  EXPECT_TRUE(result.HasRegression());
  EXPECT_GT(result.max_time_ratio, 3.0);

  // The same comparison with timings disabled is clean (deterministic
  // content agrees), and a generous tolerance also passes.
  options.compare_timings = false;
  EXPECT_FALSE(DiffReports(old_doc, slow, options).HasRegression());
  options.compare_timings = true;
  options.time_tolerance = 10.0;
  EXPECT_FALSE(DiffReports(old_doc, slow, options).HasRegression());

  // Speedups are informational, never regressions.
  const Json fast = MakeDoc(0.5, 0.25, 0.125);
  options.time_tolerance = 0.5;
  EXPECT_FALSE(DiffReports(old_doc, fast, options).HasRegression());
}

TEST(DiffReportsTest, SubMillisecondBaselineDoesNotBlindTheTimingGate) {
  // A baseline that happened to record a 0.5 ms timing must still flag a
  // blow-up to seconds (the denominator clamps to the 1 ms noise floor
  // instead of skipping the cell)...
  const Json old_doc = MakeDoc(0.5, 5e-4, 4e-4);
  const Json blown_up = MakeDoc(0.5, 10.0, 8.0);
  DiffOptions options;
  options.time_tolerance = 0.5;
  const DiffResult result = DiffReports(old_doc, blown_up, options);
  EXPECT_TRUE(result.HasRegression());
  EXPECT_GT(result.max_time_ratio, 1000.0);
  // ...while two sub-millisecond reports stay below the noise floor.
  EXPECT_FALSE(
      DiffReports(old_doc, MakeDoc(0.5, 8e-4, 6e-4), options)
          .HasRegression());
}

TEST(DiffReportsTest, CoverageLossIsARegressionNewCellsAreNot) {
  const Json old_doc = MakeDoc(0.5, 1.0, 0.5, R"("rc": 10,)");
  const Json new_doc = MakeDoc(0.5, 1.0, 0.5, R"("rc": 250,)");
  // The old rc=10 cell has no partner in the new report: coverage lost.
  const DiffResult forward = DiffReports(old_doc, new_doc);
  EXPECT_TRUE(forward.HasRegression());
  EXPECT_EQ(forward.cells_compared, 0u);
  // A superset report only adds cells: informational.
  Json superset = MakeDoc(0.5, 1.0, 0.5, R"("rc": 10,)");
  superset.Find("cells")->Push(
      MakeDoc(0.7, 1.0, 0.5, R"("rc": 250,)").Find("cells")->Items()[0]);
  EXPECT_FALSE(DiffReports(old_doc, superset).HasRegression());
}

TEST(DiffReportsTest, PreAxisReportsPairViaTheConfigEcho) {
  // A report recorded before the axis schema has no per-cell "rc" — the
  // config echo supplies the pairing default, so it matches a new-schema
  // report whose cells carry the same rc explicitly.
  const Json old_doc =
      MakeDoc(0.5, 1.0, 0.5, /*cell_extra=*/"", R"({"rc": 10})");
  const Json new_doc = MakeDoc(0.5, 1.0, 0.5, R"("rc": 10,)");
  const DiffResult result = DiffReports(old_doc, new_doc);
  EXPECT_EQ(result.cells_compared, 1u);
  EXPECT_FALSE(result.HasRegression());
}

TEST(DiffReportsTest, PreAxisScalarKnobsPairViaTheConfigEcho) {
  // rewire_batch / frontier_walkers were scalar spec knobs before they
  // became axes: a report from that era carries them only in its config
  // echo, never per cell. It must still pair against a fresh run of the
  // same spec, whose cells echo the knob explicitly.
  const Json old_doc = MakeDoc(0.5, 1.0, 0.5, /*cell_extra=*/"",
                               R"({"rc": 10, "rewire_batch": 64,
                                   "frontier_walkers": 7})");
  const Json new_doc = MakeDoc(
      0.5, 1.0, 0.5,
      R"("rc": 10, "rewire_batch": 64, "frontier_walkers": 7,)");
  const DiffResult result = DiffReports(old_doc, new_doc);
  EXPECT_EQ(result.cells_compared, 1u);
  EXPECT_FALSE(result.HasRegression());
}

TEST(DiffReportsTest, NaNDriftIsARegressionNotATolerancePass) {
  // |NaN - x| is NaN and every NaN comparison is false, so without
  // explicit handling a NaN-corrupted report sails through the gate
  // with "max drift 0 / RESULT: OK". One-sided NaN must be a
  // regression; NaN on both sides is agreement (the writer emits NaN
  // literals for legitimately non-finite distances).
  const Json old_doc = MakeDoc(0.5, 1.0, 0.5);
  Json nan_doc = MakeDoc(0.5, 1.0, 0.5);
  Json& average = *nan_doc.Find("cells")
                       ->Items()[0]
                       .Find("methods")
                       ->Items()[0]
                       .Find("distances")
                       ->Find("average");
  average = Json::Number(std::nan(""));
  EXPECT_TRUE(DiffReports(old_doc, nan_doc).HasRegression());
  EXPECT_TRUE(DiffReports(nan_doc, old_doc).HasRegression());
  EXPECT_FALSE(DiffReports(nan_doc, nan_doc).HasRegression());
}

/// Convergence block with `points` samples. `objective0` sets the first
/// sample's objective so a test can inject deterministic drift into a
/// single point of the curve.
std::string ConvergenceExtra(std::size_t points, double objective0,
                             double stopped_early = 0.0) {
  std::ostringstream out;
  out << R"("convergence": {"stopped_early": )" << stopped_early
      << R"(, "samples": [)";
  for (std::size_t i = 0; i < points; ++i) {
    if (i > 0) out << ", ";
    const double objective = i == 0 ? objective0 : 0.5 / double(i + 1);
    out << R"({"attempts": )" << 100 * (i + 1)
        << R"(, "objective": )" << objective
        << R"(, "clustering_global": 0.3, "components": 2, "lcc": 90})";
  }
  out << "]},";
  return out.str();
}

TEST(DiffReportsTest, MatchingConvergenceCurvesAreClean) {
  const Json doc = MakeDoc(0.5, 1.0, 0.5, "", R"({"rc": 10})",
                           ConvergenceExtra(3, 0.9));
  const DiffResult result = DiffReports(doc, doc);
  EXPECT_FALSE(result.HasRegression());
  EXPECT_DOUBLE_EQ(result.max_l1_drift, 0.0);
}

TEST(DiffReportsTest, NewConvergenceCurveIsANoteNotARegression) {
  // A baseline recorded before property tracking existed has no
  // convergence block. Turning tracking on must not fail the gate — the
  // added curve is informational, exactly like a new cell.
  const Json old_doc = MakeDoc(0.5, 1.0, 0.5);
  const Json new_doc = MakeDoc(0.5, 1.0, 0.5, "", R"({"rc": 10})",
                               ConvergenceExtra(3, 0.9));
  const DiffResult result = DiffReports(old_doc, new_doc);
  EXPECT_FALSE(result.HasRegression());
  bool noted = false;
  for (const DiffFinding& finding : result.findings) {
    if (!finding.regression &&
        finding.message.find("convergence curve is new") !=
            std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
}

TEST(DiffReportsTest, LostConvergenceCurveIsARegression) {
  // The reverse direction is coverage loss: the old report tracked
  // properties and the new one silently stopped.
  const Json old_doc = MakeDoc(0.5, 1.0, 0.5, "", R"({"rc": 10})",
                               ConvergenceExtra(3, 0.9));
  const Json new_doc = MakeDoc(0.5, 1.0, 0.5);
  const DiffResult result = DiffReports(old_doc, new_doc);
  EXPECT_TRUE(result.HasRegression());
}

TEST(DiffReportsTest, ConvergenceDriftIsCaughtPointwise) {
  const Json base = MakeDoc(0.5, 1.0, 0.5, "", R"({"rc": 10})",
                            ConvergenceExtra(3, 0.9));
  const Json drifted = MakeDoc(0.5, 1.0, 0.5, "", R"({"rc": 10})",
                               ConvergenceExtra(3, 0.8));
  const DiffResult result = DiffReports(base, drifted);
  EXPECT_TRUE(result.HasRegression());
  bool attributed = false;
  for (const DiffFinding& finding : result.findings) {
    if (finding.regression &&
        finding.message.find("convergence[0] objective") !=
            std::string::npos) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed);
  // Within tolerance the same pair is clean.
  DiffOptions loose;
  loose.l1_tolerance = 0.5;
  EXPECT_FALSE(DiffReports(base, drifted, loose).HasRegression());
}

TEST(DiffReportsTest, ConvergenceLengthAndStopDriftAreRegressions) {
  const Json base = MakeDoc(0.5, 1.0, 0.5, "", R"({"rc": 10})",
                            ConvergenceExtra(3, 0.9));
  // A different sample count cannot be compared point by point.
  const Json shorter = MakeDoc(0.5, 1.0, 0.5, "", R"({"rc": 10})",
                               ConvergenceExtra(2, 0.9));
  EXPECT_TRUE(DiffReports(base, shorter).HasRegression());
  // The early-stop fraction is deterministic content too.
  const Json stopped = MakeDoc(0.5, 1.0, 0.5, "", R"({"rc": 10})",
                               ConvergenceExtra(3, 0.9, 1.0));
  EXPECT_TRUE(DiffReports(base, stopped).HasRegression());
}

TEST(DiffReportsTest, MissingMethodIsARegression) {
  const Json old_doc = MakeDoc(0.5, 1.0, 0.5);
  Json new_doc = MakeDoc(0.5, 1.0, 0.5);
  *new_doc.Find("cells")->Items()[0].Find("methods")->Items()[0].Find(
      "method") = Json::String("Gjoka et al.");
  EXPECT_TRUE(DiffReports(old_doc, new_doc).HasRegression());
}

// ---------------------------------------------------------------------------
// Markdown rendering (golden outputs over a checked-in report pair)
// ---------------------------------------------------------------------------

TEST(DiffMarkdownTest, CleanComparisonGolden) {
  const Json doc = MakeDoc(0.5, 1.0, 0.5);
  const DiffResult result = DiffReports(doc, doc);
  std::ostringstream out;
  PrintDiffMarkdown(result, "old.json", "new.json", out);
  EXPECT_EQ(out.str(),
            "## `sgr diff`: `old.json` → `new.json`\n"
            "\n"
            "| | |\n"
            "| --- | --- |\n"
            "| Result | OK |\n"
            "| Cells compared | 1 |\n"
            "| Method aggregates | 1 |\n"
            "| Max deterministic drift | 0 |\n"
            "| Max timing ratio | 1x |\n"
            "\n"
            "### Regressions\n"
            "\n"
            "None.\n"
            "\n"
            "### Notes\n"
            "\n"
            "None.\n");
}

TEST(DiffMarkdownTest, RegressionAndNoteGolden) {
  // One deterministic drift (regression) plus one added cell (note):
  // both must land verbatim in their sections, regressions first.
  const Json old_doc = MakeDoc(0.5, 1.0, 0.5);
  Json new_doc = MakeDoc(0.75, 1.0, 0.5);
  new_doc.Find("cells")->Push(
      MakeDoc(0.5, 1.0, 0.5, R"("rc": 250,)").Find("cells")->Items()[0]);
  DiffOptions options;
  options.compare_timings = false;
  const DiffResult result = DiffReports(old_doc, new_doc, options);
  ASSERT_TRUE(result.HasRegression());
  std::ostringstream out;
  PrintDiffMarkdown(result, "BENCH_scenarios.json", "fresh.json", out);
  EXPECT_EQ(out.str(),
            "## `sgr diff`: `BENCH_scenarios.json` → `fresh.json`\n"
            "\n"
            "| | |\n"
            "| --- | --- |\n"
            "| Result | **REGRESSION** |\n"
            "| Cells compared | 1 |\n"
            "| Method aggregates | 1 |\n"
            "| Max deterministic drift | 0.25 |\n"
            "| Max timing ratio | n/a (timings not compared) |\n"
            "\n"
            "### Regressions\n"
            "\n"
            "- tiny @ 10% / Proposed avg L1: 0.5 -> 0.75 (drift 0.25, "
            "tolerance 1e-09)\n"
            "- tiny @ 10% / Proposed n: 0.5 -> 0.75 (drift 0.25, "
            "tolerance 1e-09)\n"
            "\n"
            "### Notes\n"
            "\n"
            "- tiny @ 10% rc=250: new cell (not in the old report)\n");
}

// ---------------------------------------------------------------------------
// End to end against the real engine
// ---------------------------------------------------------------------------

ScenarioSpec TinyDiffSpec() {
  return ScenarioSpec::FromJson(Json::Parse(R"({
    "name": "tiny-diff",
    "datasets": [{"name": "tiny-powerlaw", "model": "powerlaw",
                  "nodes": 150, "edges_per_node": 3, "triad_p": 0.4,
                  "seed": 11}],
    "fractions": [0.1],
    "methods": ["rw", "proposed"],
    "rc": [5, 20],
    "trials": 2,
    "seed_base": 99,
    "path_sources": 20
  })"));
}

TEST(DiffReportsTest, TwoRunsOfTheSameScenarioDiffClean) {
  const Json a = ScenarioReportToJson(RunScenario(TinyDiffSpec(), 1));
  const Json b = ScenarioReportToJson(RunScenario(TinyDiffSpec(), 2));
  DiffOptions options;
  options.compare_timings = false;  // thread counts differ on purpose
  const DiffResult result = DiffReports(a, b, options);
  EXPECT_FALSE(result.HasRegression());
  EXPECT_EQ(result.cells_compared, 2u);   // the two rc cells
  EXPECT_EQ(result.methods_compared, 4u); // x {rw, proposed}
  EXPECT_DOUBLE_EQ(result.max_l1_drift, 0.0);
}

TEST(DiffReportsTest, TrackedRunsOfTheSameScenarioDiffClean) {
  ScenarioSpec spec = TinyDiffSpec();
  spec.track_properties = true;
  const Json a = ScenarioReportToJson(RunScenario(spec, 1));
  const Json b = ScenarioReportToJson(RunScenario(spec, 2));
  DiffOptions options;
  options.compare_timings = false;  // thread counts differ on purpose
  const DiffResult tracked = DiffReports(a, b, options);
  EXPECT_FALSE(tracked.HasRegression());
  EXPECT_DOUBLE_EQ(tracked.max_l1_drift, 0.0);
  // Against an untracked baseline of the same spec the added curve is
  // only a note: recorded reports keep passing after tracking lands.
  const Json untracked =
      ScenarioReportToJson(RunScenario(TinyDiffSpec(), 1));
  EXPECT_FALSE(DiffReports(untracked, a, options).HasRegression());
}

TEST(DiffReportsTest, InjectedDriftInARealReportIsCaught) {
  const Json a = ScenarioReportToJson(RunScenario(TinyDiffSpec(), 1));
  Json b = a;
  Json& average = *b.Find("cells")
                       ->Items()[1]
                       .Find("methods")
                       ->Items()[0]
                       .Find("distances")
                       ->Find("average");
  average = Json::Number(average.AsNumber() + 0.01);
  DiffOptions options;
  options.compare_timings = false;
  const DiffResult result = DiffReports(a, b, options);
  EXPECT_TRUE(result.HasRegression());
}

}  // namespace
}  // namespace sgr
