#include "analysis/l1.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sgr {
namespace {

TEST(L1Test, IdenticalVectorsAreZero) {
  EXPECT_DOUBLE_EQ(NormalizedL1({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(L1Test, NormalizesBySumOfOriginal) {
  // |2-1| + |2-3| = 2; Σx = 4 -> 0.5.
  EXPECT_DOUBLE_EQ(NormalizedL1({1.0, 3.0}, {2.0, 2.0}), 0.5);
}

TEST(L1Test, PadsShorterVectorWithZeros) {
  EXPECT_DOUBLE_EQ(NormalizedL1({1.0}, {1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedL1({1.0, 1.0}, {1.0}), 0.5);
}

TEST(L1Test, ScalarIsRelativeError) {
  EXPECT_DOUBLE_EQ(NormalizedL1(10.0, 12.0), 0.2);
  EXPECT_DOUBLE_EQ(NormalizedL1(10.0, 8.0), 0.2);
  EXPECT_DOUBLE_EQ(NormalizedL1(10.0, 10.0), 0.0);
}

TEST(L1Test, ZeroOriginalConventions) {
  EXPECT_DOUBLE_EQ(NormalizedL1(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(NormalizedL1(0.0, 1.0)));
  EXPECT_DOUBLE_EQ(NormalizedL1(std::vector<double>{}, {}), 0.0);
  EXPECT_TRUE(std::isinf(NormalizedL1({0.0}, {0.5})));
}

TEST(L1Test, PropertyNamesCoverTwelve) {
  const auto& names = PropertyNames();
  EXPECT_EQ(names.size(), kNumProperties);
  EXPECT_EQ(names.front(), "n");
  EXPECT_EQ(names.back(), "lambda1");
}

TEST(L1Test, PropertyDistancesPerField) {
  GraphProperties original;
  original.num_nodes = 100;
  original.average_degree = 4.0;
  original.degree_dist = {0.0, 0.5, 0.5};
  original.neighbor_connectivity = {0.0, 2.0};
  original.clustering_global = 0.2;
  original.clustering_by_degree = {0.0, 0.0, 0.4};
  original.esp_dist = {0.8, 0.2};
  original.average_path_length = 3.0;
  original.path_length_dist = {0.0, 0.5, 0.5};
  original.diameter = 6;
  original.betweenness_by_degree = {0.0, 10.0};
  original.largest_eigenvalue = 8.0;

  GraphProperties generated = original;
  generated.num_nodes = 90;
  generated.diameter = 9;

  const auto d = PropertyDistances(original, generated);
  EXPECT_DOUBLE_EQ(d[0], 0.1);   // n
  EXPECT_DOUBLE_EQ(d[1], 0.0);   // k̄
  EXPECT_DOUBLE_EQ(d[9], 0.5);   // diameter
  for (std::size_t i : {2, 3, 4, 5, 6, 7, 8, 10, 11}) {
    EXPECT_DOUBLE_EQ(d[i], 0.0) << "property " << i;
  }
}

TEST(L1Test, AverageAndSd) {
  std::array<double, kNumProperties> d{};
  d.fill(0.5);
  EXPECT_DOUBLE_EQ(AverageDistance(d), 0.5);
  EXPECT_DOUBLE_EQ(DistanceStandardDeviation(d), 0.0);

  d[0] = 1.1;
  d[1] = -0.1;  // not meaningful but exercises the arithmetic
  const double mean = AverageDistance(d);
  EXPECT_NEAR(mean, 0.5, 1e-12);
  EXPECT_GT(DistanceStandardDeviation(d), 0.0);
}

}  // namespace
}  // namespace sgr
