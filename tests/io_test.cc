#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace sgr {
namespace {

TEST(IoTest, ReadEdgeListBasic) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(IoTest, ReadEdgeListSkipsComments) {
  std::istringstream in("# header\n% another\n5 7\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(IoTest, ReadEdgeListRenumbersSparseIds) {
  std::istringstream in("100 200\n200 300\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));  // 100->0, 200->1
  EXPECT_TRUE(g.HasEdge(1, 2));  // 300->2
}

TEST(IoTest, ReadEdgeListRejectsMalformed) {
  std::istringstream in("0 1\nnot numbers\n");
  EXPECT_THROW(ReadEdgeList(in), std::runtime_error);
}

TEST(IoTest, ReadEdgeListRejectsNegative) {
  std::istringstream in("-1 2\n");
  EXPECT_THROW(ReadEdgeList(in), std::runtime_error);
}

TEST(IoTest, ReadEdgeListRejectsTrailingTokens) {
  // Regression: a third column used to be silently dropped, so weighted
  // or temporal files parsed as unweighted graphs without a complaint.
  std::istringstream weighted("0 1\n1 2 0.75\n");
  EXPECT_THROW(ReadEdgeList(weighted), std::runtime_error);
  std::istringstream temporal("0 1 1389394764\n");
  EXPECT_THROW(ReadEdgeList(temporal), std::runtime_error);
}

TEST(IoTest, ReadEdgeListToleratesCrlf) {
  // Regression: CRLF line endings used to leave "\r" glued to the second
  // id, which failed the full-token parse once trailing garbage was
  // rejected. Windows-edited SNAP files are routine, so '\r' is stripped.
  std::istringstream in("0\t1\r\n1 2\r\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(IoTest, CanonicalEdgeListHeaderAndBody) {
  Graph g(4);
  g.AddEdge(2, 0);
  g.AddEdge(0, 1);
  g.AddEdge(3, 3);  // loop: emitted once
  g.AddEdge(1, 2);
  const CsrGraph csr(g);
  std::ostringstream out;
  WriteCanonicalEdgeList(csr, out);
  EXPECT_EQ(out.str(),
            "# sgr-canonical 1\n"
            "# nodes 4 edges 4\n"
            "0 1\n"
            "0 2\n"
            "1 2\n"
            "3 3\n");
}

TEST(IoTest, CanonicalEdgeListEmitsParallelEdgesPerCopy) {
  Graph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  const CsrGraph csr(g);
  std::ostringstream out;
  WriteCanonicalEdgeList(csr, out);
  EXPECT_EQ(out.str(),
            "# sgr-canonical 1\n"
            "# nodes 2 edges 2\n"
            "0 1\n"
            "0 1\n");
}

TEST(IoTest, CanonicalEdgeListRoundTripsThroughReadEdgeList) {
  Rng rng(33);
  const Graph g = GeneratePowerlawCluster(150, 3, 0.4, rng);
  const CsrGraph csr(g);
  std::stringstream buffer;
  WriteCanonicalEdgeList(csr, buffer);
  // The simple reader renumbers by first appearance; since canonical
  // output is emitted in ascending (u, v) order from dense ids, first
  // appearance IS ascending order for a connected graph starting at 0 —
  // but not in general. Structure (not ids) must survive either way.
  const Graph back = ReadEdgeList(buffer);
  EXPECT_EQ(back.NumNodes(), g.NumNodes());
  EXPECT_EQ(back.NumEdges(), g.NumEdges());
}

TEST(IoTest, RoundTripPreservesStructure) {
  Rng rng(21);
  const Graph g = GeneratePowerlawCluster(200, 3, 0.4, rng);
  std::stringstream buffer;
  WriteEdgeList(g, buffer);
  const Graph back = ReadEdgeList(buffer);
  EXPECT_EQ(back.NumNodes(), g.NumNodes());
  EXPECT_EQ(back.NumEdges(), g.NumEdges());
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(back.HasEdge(e.u, e.v));
  }
}

TEST(IoTest, ReadMissingFileThrows) {
  EXPECT_THROW(ReadEdgeListFile("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

TEST(IoTest, GexfContainsNodesAndEdges) {
  Graph g(2);
  g.AddEdge(0, 1);
  std::ostringstream out;
  WriteGexf(g, out);
  const std::string xml = out.str();
  EXPECT_NE(xml.find("<gexf"), std::string::npos);
  EXPECT_NE(xml.find("<node id=\"0\""), std::string::npos);
  EXPECT_NE(xml.find("<node id=\"1\""), std::string::npos);
  EXPECT_NE(xml.find("source=\"0\" target=\"1\""), std::string::npos);
  // Degree attribute exported for Gephi sizing.
  EXPECT_NE(xml.find("value=\"1\""), std::string::npos);
}

}  // namespace
}  // namespace sgr
