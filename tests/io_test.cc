#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace sgr {
namespace {

TEST(IoTest, ReadEdgeListBasic) {
  std::istringstream in("0 1\n1 2\n2 0\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(IoTest, ReadEdgeListSkipsComments) {
  std::istringstream in("# header\n% another\n5 7\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(IoTest, ReadEdgeListRenumbersSparseIds) {
  std::istringstream in("100 200\n200 300\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));  // 100->0, 200->1
  EXPECT_TRUE(g.HasEdge(1, 2));  // 300->2
}

TEST(IoTest, ReadEdgeListRejectsMalformed) {
  std::istringstream in("0 1\nnot numbers\n");
  EXPECT_THROW(ReadEdgeList(in), std::runtime_error);
}

TEST(IoTest, ReadEdgeListRejectsNegative) {
  std::istringstream in("-1 2\n");
  EXPECT_THROW(ReadEdgeList(in), std::runtime_error);
}

TEST(IoTest, RoundTripPreservesStructure) {
  Rng rng(21);
  const Graph g = GeneratePowerlawCluster(200, 3, 0.4, rng);
  std::stringstream buffer;
  WriteEdgeList(g, buffer);
  const Graph back = ReadEdgeList(buffer);
  EXPECT_EQ(back.NumNodes(), g.NumNodes());
  EXPECT_EQ(back.NumEdges(), g.NumEdges());
  for (const Edge& e : g.edges()) {
    EXPECT_TRUE(back.HasEdge(e.u, e.v));
  }
}

TEST(IoTest, ReadMissingFileThrows) {
  EXPECT_THROW(ReadEdgeListFile("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

TEST(IoTest, GexfContainsNodesAndEdges) {
  Graph g(2);
  g.AddEdge(0, 1);
  std::ostringstream out;
  WriteGexf(g, out);
  const std::string xml = out.str();
  EXPECT_NE(xml.find("<gexf"), std::string::npos);
  EXPECT_NE(xml.find("<node id=\"0\""), std::string::npos);
  EXPECT_NE(xml.find("<node id=\"1\""), std::string::npos);
  EXPECT_NE(xml.find("source=\"0\" target=\"1\""), std::string::npos);
  // Degree attribute exported for Gephi sizing.
  EXPECT_NE(xml.find("value=\"1\""), std::string::npos);
}

}  // namespace
}  // namespace sgr
