#include "sampling/subgraph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sampling/random_walk.h"

namespace sgr {
namespace {

/// The paper's Fig. 1 example: a walk visiting v1, v3, v6, v3 on the
/// 10-node illustration graph. We reconstruct the graph from the figure's
/// visible edges plus the stated result: querying {v1, v3, v6} yields
/// V'vis = {v2, v4, v5, v8} and E' = {(1,3),(2,3),(3,4),(3,6),(5,6),(6,8)}.
/// (0-based below: nodes 0..9.)
SamplingList Fig1SamplingList() {
  SamplingList list;
  list.is_walk = true;
  list.visit_sequence = {0, 2, 5, 2};  // v1, v3, v6, v3
  list.neighbors[0] = {2};             // N(v1) = {v3}
  list.neighbors[2] = {0, 1, 3, 5};    // N(v3) = {v1, v2, v4, v6}
  list.neighbors[5] = {2, 4, 7};       // N(v6) = {v3, v5, v8}
  return list;
}

TEST(SubgraphTest, Fig1Example) {
  const Subgraph sub = BuildSubgraph(Fig1SamplingList());
  EXPECT_EQ(sub.NumQueried(), 3u);
  EXPECT_EQ(sub.NumVisible(), 4u);
  EXPECT_EQ(sub.graph.NumNodes(), 7u);
  EXPECT_EQ(sub.graph.NumEdges(), 6u);

  // Queried nodes keep their true degree (Lemma 1, first case).
  EXPECT_EQ(sub.graph.Degree(sub.from_original.at(0)), 1u);
  EXPECT_EQ(sub.graph.Degree(sub.from_original.at(2)), 4u);
  EXPECT_EQ(sub.graph.Degree(sub.from_original.at(5)), 3u);

  // Edge set matches the figure.
  auto has = [&sub](NodeId a, NodeId b) {
    return sub.graph.HasEdge(sub.from_original.at(a),
                             sub.from_original.at(b));
  };
  EXPECT_TRUE(has(0, 2));
  EXPECT_TRUE(has(1, 2));
  EXPECT_TRUE(has(2, 3));
  EXPECT_TRUE(has(2, 5));
  EXPECT_TRUE(has(4, 5));
  EXPECT_TRUE(has(5, 7));
}

TEST(SubgraphTest, QueriedFlagsAreCorrect) {
  const Subgraph sub = BuildSubgraph(Fig1SamplingList());
  for (const auto& [orig, sub_id] : sub.from_original) {
    const bool queried = (orig == 0 || orig == 2 || orig == 5);
    EXPECT_EQ(sub.is_queried[sub_id], queried) << "node " << orig;
  }
}

TEST(SubgraphTest, MappingsAreInverse) {
  const Subgraph sub = BuildSubgraph(Fig1SamplingList());
  for (NodeId v = 0; v < sub.graph.NumNodes(); ++v) {
    EXPECT_EQ(sub.from_original.at(sub.to_original[v]), v);
  }
}

TEST(SubgraphTest, NoDuplicateEdgesBetweenQueriedNodes) {
  // Both endpoints queried: the edge appears in both neighbor lists but
  // must be added exactly once.
  SamplingList list;
  list.is_walk = true;
  list.visit_sequence = {0, 1};
  list.neighbors[0] = {1};
  list.neighbors[1] = {0};
  const Subgraph sub = BuildSubgraph(list);
  EXPECT_EQ(sub.graph.NumNodes(), 2u);
  EXPECT_EQ(sub.graph.NumEdges(), 1u);
}

TEST(SubgraphTest, LemmaOneOnRealWalk) {
  Rng rng(200);
  const Graph g = GeneratePowerlawCluster(400, 3, 0.5, rng);
  QueryOracle oracle(g);
  const SamplingList list = RandomWalkSample(oracle, 0, 60, rng);
  const Subgraph sub = BuildSubgraph(list);
  for (NodeId v = 0; v < sub.graph.NumNodes(); ++v) {
    const NodeId orig = sub.to_original[v];
    if (sub.is_queried[v]) {
      EXPECT_EQ(sub.graph.Degree(v), g.Degree(orig));
    } else {
      EXPECT_LE(sub.graph.Degree(v), g.Degree(orig));
      EXPECT_GE(sub.graph.Degree(v), 1u);
    }
  }
}

TEST(SubgraphTest, SubgraphEdgesExistInOriginal) {
  Rng rng(201);
  const Graph g = GeneratePowerlawCluster(300, 4, 0.3, rng);
  QueryOracle oracle(g);
  const SamplingList list = RandomWalkSample(oracle, 5, 45, rng);
  const Subgraph sub = BuildSubgraph(list);
  for (const Edge& e : sub.graph.edges()) {
    EXPECT_TRUE(g.HasEdge(sub.to_original[e.u], sub.to_original[e.v]));
  }
  EXPECT_TRUE(sub.graph.IsSimple());
}

TEST(SubgraphTest, EveryEdgeTouchesAQueriedNode) {
  Rng rng(202);
  const Graph g = GeneratePowerlawCluster(300, 4, 0.3, rng);
  QueryOracle oracle(g);
  const SamplingList list = RandomWalkSample(oracle, 9, 30, rng);
  const Subgraph sub = BuildSubgraph(list);
  for (const Edge& e : sub.graph.edges()) {
    EXPECT_TRUE(sub.is_queried[e.u] || sub.is_queried[e.v]);
  }
}

TEST(SubgraphTest, CoversUnionOfNeighborLists) {
  Rng rng(203);
  const Graph g = GeneratePowerlawCluster(300, 4, 0.3, rng);
  QueryOracle oracle(g);
  const SamplingList list = RandomWalkSample(oracle, 11, 40, rng);
  const Subgraph sub = BuildSubgraph(list);
  // |E'| = |union of N(v) over queried v|.
  std::size_t expected_edges = 0;
  for (const auto& [u, nbrs] : list.neighbors) {
    for (NodeId w : nbrs) {
      if (list.neighbors.count(w) > 0) {
        if (u < w) ++expected_edges;  // counted once
      } else {
        ++expected_edges;
      }
    }
  }
  EXPECT_EQ(sub.graph.NumEdges(), expected_edges);
}

}  // namespace
}  // namespace sgr
