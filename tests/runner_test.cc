#include "exp/runner.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "graph/generators.h"

namespace sgr {
namespace {

ExperimentConfig FastConfig() {
  ExperimentConfig config;
  config.query_fraction = 0.1;
  config.restoration.rewire.rewiring_coefficient = 5.0;
  return config;
}

TEST(RunnerTest, RunsAllSixMethods) {
  Rng rng(1);
  const Graph g = GeneratePowerlawCluster(400, 3, 0.4, rng);
  const GraphProperties props = ComputeProperties(g);
  const auto results = RunExperiment(g, props, FastConfig(), 42);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].kind, MethodKind::kBfs);
  EXPECT_EQ(results[5].kind, MethodKind::kProposed);
  for (const auto& r : results) {
    EXPECT_GT(r.restoration.graph.NumNodes(), 0u) << MethodName(r.kind);
    EXPECT_GE(r.average_distance, 0.0);
  }
}

TEST(RunnerTest, MethodSubsetIsRespected) {
  Rng rng(2);
  const Graph g = GeneratePowerlawCluster(300, 3, 0.4, rng);
  const GraphProperties props = ComputeProperties(g);
  ExperimentConfig config = FastConfig();
  config.methods = {MethodKind::kRandomWalk, MethodKind::kProposed};
  const auto results = RunExperiment(g, props, config, 7);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].kind, MethodKind::kRandomWalk);
  EXPECT_EQ(results[1].kind, MethodKind::kProposed);
}

TEST(RunnerTest, ReproducibleWithSameSeed) {
  Rng rng(3);
  const Graph g = GeneratePowerlawCluster(300, 3, 0.4, rng);
  const GraphProperties props = ComputeProperties(g);
  ExperimentConfig config = FastConfig();
  config.methods = {MethodKind::kProposed};
  const auto a = RunExperiment(g, props, config, 11);
  const auto b = RunExperiment(g, props, config, 11);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].restoration.graph.NumEdges(),
            b[0].restoration.graph.NumEdges());
  EXPECT_DOUBLE_EQ(a[0].average_distance, b[0].average_distance);
}

TEST(RunnerTest, DifferentSeedsGiveDifferentSamples) {
  Rng rng(4);
  const Graph g = GeneratePowerlawCluster(300, 3, 0.4, rng);
  const GraphProperties props = ComputeProperties(g);
  ExperimentConfig config = FastConfig();
  config.methods = {MethodKind::kRandomWalk};
  const auto a = RunExperiment(g, props, config, 1);
  const auto b = RunExperiment(g, props, config, 2);
  // Subgraphs from different walks almost surely differ in edge count.
  EXPECT_NE(a[0].restoration.graph.NumEdges() * 1000003u +
                a[0].restoration.graph.NumNodes(),
            b[0].restoration.graph.NumEdges() * 1000003u +
                b[0].restoration.graph.NumNodes());
}

TEST(RunnerTest, BudgetFollowsQueryFraction) {
  Rng rng(5);
  const Graph g = GeneratePowerlawCluster(500, 3, 0.4, rng);
  const GraphProperties props = ComputeProperties(g);
  ExperimentConfig config = FastConfig();
  config.query_fraction = 0.06;
  config.methods = {MethodKind::kRandomWalk};
  const auto results = RunExperiment(g, props, config, 9);
  EXPECT_EQ(results[0].restoration.subgraph_queried, 30u);
}

TEST(RunnerTest, EnvOrParsesAndFallsBack) {
  setenv("SGR_TEST_ENV_VALUE", "2.5", 1);
  EXPECT_DOUBLE_EQ(EnvOr("SGR_TEST_ENV_VALUE", 1.0), 2.5);
  unsetenv("SGR_TEST_ENV_VALUE");
  EXPECT_DOUBLE_EQ(EnvOr("SGR_TEST_ENV_VALUE", 1.0), 1.0);
  setenv("SGR_TEST_ENV_VALUE", "garbage", 1);
  EXPECT_DOUBLE_EQ(EnvOr("SGR_TEST_ENV_VALUE", 3.0), 3.0);
  unsetenv("SGR_TEST_ENV_VALUE");
}

}  // namespace
}  // namespace sgr
