#include "restore/simplify.h"

#include <gtest/gtest.h>

#include "dk/dk_extract.h"
#include "graph/generators.h"
#include "restore/proposed.h"
#include "sampling/random_walk.h"

namespace sgr {
namespace {

TEST(SimplifyTest, AlreadySimpleIsUntouched) {
  Rng gen_rng(1);
  Graph g = GeneratePowerlawCluster(200, 3, 0.4, gen_rng);
  const std::size_t edges = g.NumEdges();
  Rng rng(2);
  const SimplifyStats stats = SimplifyByRewiring(g, 0, rng);
  EXPECT_EQ(stats.offending_before, 0u);
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(g.NumEdges(), edges);
}

TEST(SimplifyTest, RemovesParallelEdgesAndLoops) {
  // A dense simple substrate gives the repair swaps plenty of partners.
  Rng gen_rng(3);
  Graph g = GeneratePowerlawCluster(300, 4, 0.3, gen_rng);
  // Offenders at late (low-degree, populous-class) nodes: these always
  // have degree-matched swap partners.
  g.AddEdge(250, 251);
  g.AddEdge(250, 251);  // parallel bundle
  g.AddEdge(260, 260);  // loop
  g.AddEdge(270, 270);  // loop
  Rng rng(4);
  const SimplifyStats stats = SimplifyByRewiring(g, 0, rng);
  EXPECT_GT(stats.offending_before, 0u);
  EXPECT_EQ(stats.offending_after, 0u);
  EXPECT_TRUE(g.IsSimple());
}

TEST(SimplifyTest, PreservesDegreesAndJdm) {
  Rng gen_rng(5);
  Graph g = GeneratePowerlawCluster(300, 4, 0.3, gen_rng);
  g.AddEdge(2, 3);
  g.AddEdge(2, 3);
  g.AddEdge(11, 11);
  const DegreeVector dv = ExtractDegreeVector(g);
  const JointDegreeMatrix jdm = ExtractJointDegreeMatrix(g);
  Rng rng(6);
  SimplifyByRewiring(g, 0, rng);
  EXPECT_EQ(ExtractDegreeVector(g), dv);
  const JointDegreeMatrix after = ExtractJointDegreeMatrix(g);
  for (const auto& [key, count] : jdm.counts()) {
    EXPECT_EQ(after.counts().count(key) > 0 ? after.counts().at(key) : 0,
              count);
  }
}

TEST(SimplifyTest, ProtectedEdgesStayPut) {
  Rng gen_rng(7);
  Graph g = GeneratePowerlawCluster(200, 4, 0.3, gen_rng);
  const std::size_t protected_count = g.NumEdges();
  std::vector<Edge> frozen(g.edges().begin(), g.edges().end());
  g.AddEdge(4, 4);
  g.AddEdge(5, 6);
  g.AddEdge(5, 6);
  Rng rng(8);
  SimplifyByRewiring(g, protected_count, rng);
  for (std::size_t e = 0; e < protected_count; ++e) {
    EXPECT_EQ(g.edge(e).u, frozen[e].u);
    EXPECT_EQ(g.edge(e).v, frozen[e].v);
  }
}

TEST(SimplifyTest, FacadeFlagReducesOffensesSubstantially) {
  // The pass is best-effort: when the *estimated* JDM demands more
  // (k, k')-edges than distinct node pairs exist (a real occurrence with
  // noisy high-degree estimates — the relaxed realization conditions of
  // Section IV-C allow it), some multi-edges are fundamentally stuck.
  // Require a substantial reduction rather than simplicity.
  Rng gen_rng(9);
  const Graph original = GenerateSocialGraph(800, 4, 0.4, 0.4, gen_rng);
  QueryOracle oracle(original);
  Rng rng(10);
  const SamplingList walk = RandomWalkSample(oracle, 0, 80, rng);

  auto count_offenses = [](const Graph& g) {
    std::size_t total = 0;
    for (const Edge& e : g.edges()) {
      if (e.u == e.v || g.CountEdges(e.u, e.v) > 1) ++total;
    }
    return total;
  };

  RestorationOptions options;
  options.rewire.rewiring_coefficient = 10.0;
  Rng rng_plain(11);
  const RestorationResult plain =
      RestoreProposed(walk, options, rng_plain);
  options.simplify_output = true;
  Rng rng_simplified(11);
  const RestorationResult simplified =
      RestoreProposed(walk, options, rng_simplified);

  const std::size_t before = count_offenses(plain.graph);
  const std::size_t after = count_offenses(simplified.graph);
  ASSERT_GT(before, 0u);
  EXPECT_LT(after, (before + 1) / 2);  // at least halved
}

TEST(SimplifyTest, OffenseNeverIncreases) {
  Rng gen_rng(12);
  Graph g = GeneratePowerlawCluster(150, 3, 0.4, gen_rng);
  for (int i = 0; i < 10; ++i) {
    const NodeId v = static_cast<NodeId>(gen_rng.NextIndex(150));
    g.AddEdge(v, v);
  }
  Rng rng(13);
  const SimplifyStats stats = SimplifyByRewiring(g, 0, rng, /*threads=*/1, 3, 8);
  EXPECT_LE(stats.offending_after, stats.offending_before);
}

}  // namespace
}  // namespace sgr
