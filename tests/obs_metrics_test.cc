#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sgr {
namespace {

/// The registry is process-global; every test starts from a clean,
/// enabled registry and leaves it disabled and empty.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::ResetMetrics();
    obs::EnableMetrics(true);
  }
  void TearDown() override {
    obs::EnableMetrics(false);
    obs::ResetMetrics();
  }
};

TEST_F(ObsMetricsTest, CountersAccumulate) {
  obs::MetricAdd("a", 3);
  obs::MetricAdd("a", 4);
  obs::MetricAdd("b", 1);
  const obs::MetricsSnapshot counters = obs::SnapshotCounters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.at("a"), 7u);
  EXPECT_EQ(counters.at("b"), 1u);
}

TEST_F(ObsMetricsTest, DisabledCallsAreNoOps) {
  obs::EnableMetrics(false);
  EXPECT_FALSE(obs::MetricsEnabled());
  obs::MetricAdd("a", 5);
  obs::MetricMax("g", 5);
  EXPECT_TRUE(obs::SnapshotCounters().empty());
  EXPECT_TRUE(obs::SnapshotMaxMetrics().empty());
}

TEST_F(ObsMetricsTest, MaxKeepsTheHighWaterMark) {
  obs::MetricMax("depth", 3);
  obs::MetricMax("depth", 9);
  obs::MetricMax("depth", 5);
  EXPECT_EQ(obs::SnapshotMaxMetrics().at("depth"), 9u);
}

TEST_F(ObsMetricsTest, ResetMaxMetricsClearsOnlyGauges) {
  obs::MetricAdd("counter", 2);
  obs::MetricMax("gauge", 7);
  obs::ResetMaxMetrics();
  EXPECT_TRUE(obs::SnapshotMaxMetrics().empty());
  EXPECT_EQ(obs::SnapshotCounters().at("counter"), 2u);
}

TEST_F(ObsMetricsTest, CounterDeltaOmitsUnchangedAndCountsNewFromZero) {
  obs::MetricAdd("stale", 10);
  obs::MetricAdd("grown", 1);
  const obs::MetricsSnapshot before = obs::SnapshotCounters();
  obs::MetricAdd("grown", 4);
  obs::MetricAdd("fresh", 2);
  const obs::MetricsSnapshot delta =
      obs::CounterDelta(before, obs::SnapshotCounters());
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta.at("grown"), 4u);
  EXPECT_EQ(delta.at("fresh"), 2u);
  EXPECT_EQ(delta.count("stale"), 0u);
}

TEST_F(ObsMetricsTest, ConcurrentAddsSumExactly) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kAddsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kAddsPerThread; ++i) {
        obs::MetricAdd("shared", 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(obs::SnapshotCounters().at("shared"), kThreads * kAddsPerThread);
}

TEST_F(ObsMetricsTest, PeakRssIsPositiveOnSupportedPlatforms) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(obs::PeakRssBytes(), 0u);
#else
  EXPECT_EQ(obs::PeakRssBytes(), 0u);
#endif
}

}  // namespace
}  // namespace sgr
