#include <gtest/gtest.h>

#include <tuple>

#include "dk/dk_construct.h"
#include "dk/dk_extract.h"
#include "estimation/estimators.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "restore/proposed.h"
#include "restore/rewirer.h"
#include "restore/target_degree_vector.h"
#include "restore/target_jdm.h"
#include "sampling/random_walk.h"
#include "sampling/subgraph.h"

namespace sgr {
namespace {

/// Property-based sweep: the full restoration invariant set across graph
/// families, sizes, and query budgets. Every combination must satisfy
/// every realization condition and the structural containment guarantees
/// of Sections IV-B..IV-E.
class RestorationInvariantsTest
    : public ::testing::TestWithParam<
          std::tuple<int /*family*/, std::size_t /*n*/,
                     double /*fraction*/, std::uint64_t /*seed*/>> {
 protected:
  static Graph MakeGraph(int family, std::size_t n, Rng& rng) {
    switch (family) {
      case 0:
        return GeneratePowerlawCluster(n, 3, 0.5, rng);
      case 1:
        return GenerateBarabasiAlbert(n, 3, rng);
      default:
        return GenerateCommunityGraph(n, 3, 3, 0.4, n / 20 + 2, rng);
    }
  }
};

TEST_P(RestorationInvariantsTest, FullInvariantSuite) {
  const auto [family, n, fraction, seed] = GetParam();
  Rng gen_rng(seed * 1313 + family);
  Graph original = MakeGraph(family, n, gen_rng);
  // Community graphs may be disconnected in rare seeds; walk inside the
  // LCC to satisfy the access model's connectivity assumption.
  original = LargestConnectedComponent(original);

  QueryOracle oracle(original);
  Rng rng(seed);
  const auto budget = static_cast<std::size_t>(std::max(
      8.0, fraction * static_cast<double>(original.NumNodes())));
  const SamplingList walk = RandomWalkSample(
      oracle, static_cast<NodeId>(rng.NextIndex(original.NumNodes())),
      budget, rng);

  const Subgraph sub = BuildSubgraph(walk);
  const LocalEstimates est = EstimateLocalProperties(walk);

  // Phase 1 invariants.
  TargetDegreeVectorResult dv = BuildTargetDegreeVector(sub, est, rng);
  ASSERT_TRUE(SatisfiesDv1(dv.n_star));
  ASSERT_TRUE(SatisfiesDv2(dv.n_star));

  // Phase 2 invariants.
  const JointDegreeMatrix m_prime =
      SubgraphClassEdges(sub.graph, dv.subgraph_target_degrees);
  const JointDegreeMatrix m_star =
      BuildTargetJdm(est, dv.n_star, m_prime, rng);
  ASSERT_TRUE(m_star.SatisfiesJdm1());
  ASSERT_TRUE(m_star.SatisfiesJdm2());
  ASSERT_TRUE(m_star.SatisfiesJdm3(dv.n_star));
  ASSERT_TRUE(m_star.Dominates(m_prime));
  ASSERT_TRUE(SatisfiesDv2(dv.n_star));  // still even after growth

  // Phase 3 invariants: exact realization + subgraph containment.
  Graph built = ConstructPreservingTargets(
      sub.graph, dv.subgraph_target_degrees, dv.n_star, m_star, rng);
  ASSERT_EQ(ExtractDegreeVector(built), dv.n_star);
  {
    const JointDegreeMatrix built_jdm = ExtractJointDegreeMatrix(built);
    for (const auto& [key, count] : m_star.counts()) {
      ASSERT_EQ(built_jdm.counts().count(key) > 0
                    ? built_jdm.counts().at(key)
                    : 0,
                count);
    }
  }
  for (EdgeId e = 0; e < sub.graph.NumEdges(); ++e) {
    ASSERT_EQ(built.edge(e).u, sub.graph.edge(e).u);
    ASSERT_EQ(built.edge(e).v, sub.graph.edge(e).v);
  }

  // Phase 4 invariants: rewiring preserves DV, JDM, and E'.
  RewireOptions options;
  options.rewiring_coefficient = 10.0;
  RewireToClustering(built, sub.graph.NumEdges(), est.clustering, options,
                     rng);
  ASSERT_EQ(ExtractDegreeVector(built), dv.n_star);
  ASSERT_TRUE(ExtractJointDegreeMatrix(built).SatisfiesJdm3(dv.n_star));
  for (EdgeId e = 0; e < sub.graph.NumEdges(); ++e) {
    ASSERT_EQ(built.edge(e).u, sub.graph.edge(e).u);
    ASSERT_EQ(built.edge(e).v, sub.graph.edge(e).v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RestorationInvariantsTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(300, 800),
                       ::testing::Values(0.05, 0.15),
                       ::testing::Values(1, 2, 3)));

/// Estimator consistency sweep: as the walk covers the whole graph, the
/// re-weighted estimates converge to the truth.
class EstimatorConsistencyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimatorConsistencyTest, NearFullWalkRecoversLocalProperties) {
  Rng gen_rng(GetParam());
  const Graph g = GeneratePowerlawCluster(400, 3, 0.5, gen_rng);
  QueryOracle oracle(g);
  Rng rng(GetParam() + 31);
  // Query 95% of nodes: estimates should be close to exact.
  const SamplingList walk = RandomWalkSample(
      oracle, 0, static_cast<std::size_t>(0.95 * g.NumNodes()), rng);
  const LocalEstimates est = EstimateLocalProperties(walk);
  EXPECT_NEAR(est.average_degree, g.AverageDegree(),
              0.05 * g.AverageDegree());
  EXPECT_NEAR(est.num_nodes, static_cast<double>(g.NumNodes()),
              0.15 * static_cast<double>(g.NumNodes()));
  // Degree distribution L1 below 0.2.
  const DegreeVector dv = ExtractDegreeVector(g);
  double l1 = 0.0;
  for (std::size_t k = 0;
       k < std::max(dv.size(), est.degree_dist.size()); ++k) {
    const double truth =
        k < dv.size() ? static_cast<double>(dv[k]) /
                            static_cast<double>(g.NumNodes())
                      : 0.0;
    const double guess = k < est.degree_dist.size() ? est.degree_dist[k]
                                                    : 0.0;
    l1 += std::abs(truth - guess);
  }
  EXPECT_LT(l1, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorConsistencyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace sgr
