#include "exp/datasets.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "graph/components.h"
#include "graph/edge_list_reader.h"

namespace sgr {
namespace {

TEST(DatasetsTest, RegistryHasSixStandardDatasets) {
  const auto specs = StandardDatasets();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "anybeat");
  EXPECT_EQ(specs[5].name, "livemocha");
  // Paper reference sizes from Table I.
  EXPECT_EQ(specs[0].paper_nodes, 12645u);
  EXPECT_EQ(specs[5].paper_edges, 2193083u);
}

TEST(DatasetsTest, YoutubeIsLargest) {
  const DatasetSpec yt = YoutubeDataset();
  EXPECT_EQ(yt.name, "youtube");
  for (const auto& spec : StandardDatasets()) {
    EXPECT_GT(yt.num_nodes, spec.num_nodes);
  }
}

TEST(DatasetsTest, DatasetByNameFindsAll) {
  EXPECT_EQ(DatasetByName("gowalla").name, "gowalla");
  EXPECT_EQ(DatasetByName("youtube").name, "youtube");
  EXPECT_THROW(DatasetByName("facebook"), std::out_of_range);
}

TEST(DatasetsTest, LoadedDatasetsAreSimpleConnected) {
  // Generated stand-ins must satisfy the paper's preprocessing contract.
  unsetenv("SGR_DATASET_DIR");
  setenv("SGR_DATASET_SCALE", "0.2", 1);  // keep the test fast
  for (const auto& spec : StandardDatasets()) {
    const Graph g = LoadDataset(spec);
    EXPECT_TRUE(g.IsSimple()) << spec.name;
    EXPECT_TRUE(IsConnected(g)) << spec.name;
    EXPECT_GT(g.NumNodes(), spec.num_nodes / 10) << spec.name;
  }
  unsetenv("SGR_DATASET_SCALE");
}

TEST(DatasetsTest, ScaleEnvControlsSize) {
  unsetenv("SGR_DATASET_DIR");
  const DatasetSpec spec = DatasetByName("anybeat");
  setenv("SGR_DATASET_SCALE", "0.1", 1);
  const Graph small = LoadDataset(spec);
  setenv("SGR_DATASET_SCALE", "0.3", 1);
  const Graph big = LoadDataset(spec);
  unsetenv("SGR_DATASET_SCALE");
  EXPECT_LT(small.NumNodes(), big.NumNodes());
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  unsetenv("SGR_DATASET_DIR");
  setenv("SGR_DATASET_SCALE", "0.1", 1);
  const DatasetSpec spec = DatasetByName("epinions");
  const Graph a = LoadDataset(spec);
  const Graph b = LoadDataset(spec);
  unsetenv("SGR_DATASET_SCALE");
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(DatasetsTest, MissingDatasetFileFailsLoudly) {
  // Regression: a set SGR_DATASET_DIR with a missing file used to fall
  // back silently to the synthetic generator — experiments claiming to
  // run on real data were running on stand-ins. Now it is a hard error
  // naming the resolved path.
  const std::string dir =
      ::testing::TempDir() + "sgr-empty-dataset-dir";
  std::filesystem::create_directories(dir);
  setenv("SGR_DATASET_DIR", dir.c_str(), 1);
  const DatasetSpec spec = DatasetByName("anybeat");
  try {
    (void)LoadDataset(spec);
    unsetenv("SGR_DATASET_DIR");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("anybeat.txt"), std::string::npos) << message;
    EXPECT_NE(message.find("refusing"), std::string::npos) << message;
  }
  EXPECT_THROW((void)LoadDatasetCsr(spec), std::runtime_error);
  unsetenv("SGR_DATASET_DIR");
}

TEST(DatasetsTest, MalformedScaleRejected) {
  // Regression: strtod's result used to be taken without checking the end
  // pointer, so "0.x5" ran at scale 0 and "nan" at NaN. Every malformed,
  // non-finite, or non-positive value must now throw.
  unsetenv("SGR_DATASET_DIR");
  const DatasetSpec spec = DatasetByName("anybeat");
  for (const char* bad :
       {"0.x5", "abc", "1.5extra", "inf", "-inf", "nan", "0", "-1", " "}) {
    setenv("SGR_DATASET_SCALE", bad, 1);
    EXPECT_THROW((void)LoadDataset(spec), std::runtime_error) << bad;
    EXPECT_THROW((void)LoadDatasetCsr(spec), std::runtime_error) << bad;
  }
  unsetenv("SGR_DATASET_SCALE");
}

TEST(DatasetsTest, ScaleRoundingNodeCountToZeroRejected) {
  unsetenv("SGR_DATASET_DIR");
  const DatasetSpec spec = DatasetByName("anybeat");  // 3000 nodes
  setenv("SGR_DATASET_SCALE", "0.0000001", 1);
  EXPECT_THROW((void)LoadDataset(spec), std::runtime_error);
  unsetenv("SGR_DATASET_SCALE");
  // The explicit override takes the same validation path.
  EXPECT_THROW((void)LoadDataset(spec, 0.0000001), std::runtime_error);
}

TEST(DatasetsTest, LoadDatasetCsrMatchesGraphPathForGenerator) {
  unsetenv("SGR_DATASET_DIR");
  unsetenv("SGR_DATASET_SCALE");
  const DatasetSpec spec = DatasetByName("anybeat");
  DatasetProvenance provenance;
  const CsrGraph direct = LoadDatasetCsr(spec, 0.2, &provenance);
  const CsrGraph via_graph(LoadDataset(spec, 0.2));
  EXPECT_EQ(direct.raw_offsets(), via_graph.raw_offsets());
  EXPECT_EQ(direct.raw_neighbors(), via_graph.raw_neighbors());
  EXPECT_EQ(provenance.name, "anybeat");
  EXPECT_EQ(provenance.source, "generator");
  EXPECT_TRUE(provenance.path.empty());
  EXPECT_TRUE(provenance.content_hash.empty());
  EXPECT_DOUBLE_EQ(provenance.scale, 0.2);
}

TEST(DatasetsTest, FileBackedLoadRecordsProvenanceAndMatchesReference) {
  const std::string dir = ::testing::TempDir() + "sgr-dataset-dir";
  std::filesystem::create_directories(dir);
  const std::string file = dir + "/anybeat.txt";
  {
    std::ofstream out(file);
    out << "# tiny stand-in\n0 1\n1 2\n2 0\n2 3\n9 9\n";
  }
  setenv("SGR_DATASET_DIR", dir.c_str(), 1);
  const DatasetSpec spec = DatasetByName("anybeat");
  DatasetProvenance provenance;
  const CsrGraph csr = LoadDatasetCsr(spec, 0.0, &provenance);
  const CsrGraph reference(LoadDataset(spec));
  unsetenv("SGR_DATASET_DIR");
  EXPECT_EQ(csr.raw_offsets(), reference.raw_offsets());
  EXPECT_EQ(csr.raw_neighbors(), reference.raw_neighbors());
  EXPECT_EQ(provenance.source, "file");
  EXPECT_EQ(provenance.path, file);
  EXPECT_EQ(provenance.content_hash.size(), 16u);
  EXPECT_EQ(provenance.content_hash,
            HashToHex(HashFileContents(file)));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sgr
