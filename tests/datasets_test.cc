#include "exp/datasets.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "graph/components.h"

namespace sgr {
namespace {

TEST(DatasetsTest, RegistryHasSixStandardDatasets) {
  const auto specs = StandardDatasets();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "anybeat");
  EXPECT_EQ(specs[5].name, "livemocha");
  // Paper reference sizes from Table I.
  EXPECT_EQ(specs[0].paper_nodes, 12645u);
  EXPECT_EQ(specs[5].paper_edges, 2193083u);
}

TEST(DatasetsTest, YoutubeIsLargest) {
  const DatasetSpec yt = YoutubeDataset();
  EXPECT_EQ(yt.name, "youtube");
  for (const auto& spec : StandardDatasets()) {
    EXPECT_GT(yt.num_nodes, spec.num_nodes);
  }
}

TEST(DatasetsTest, DatasetByNameFindsAll) {
  EXPECT_EQ(DatasetByName("gowalla").name, "gowalla");
  EXPECT_EQ(DatasetByName("youtube").name, "youtube");
  EXPECT_THROW(DatasetByName("facebook"), std::out_of_range);
}

TEST(DatasetsTest, LoadedDatasetsAreSimpleConnected) {
  // Generated stand-ins must satisfy the paper's preprocessing contract.
  unsetenv("SGR_DATASET_DIR");
  setenv("SGR_DATASET_SCALE", "0.2", 1);  // keep the test fast
  for (const auto& spec : StandardDatasets()) {
    const Graph g = LoadDataset(spec);
    EXPECT_TRUE(g.IsSimple()) << spec.name;
    EXPECT_TRUE(IsConnected(g)) << spec.name;
    EXPECT_GT(g.NumNodes(), spec.num_nodes / 10) << spec.name;
  }
  unsetenv("SGR_DATASET_SCALE");
}

TEST(DatasetsTest, ScaleEnvControlsSize) {
  unsetenv("SGR_DATASET_DIR");
  const DatasetSpec spec = DatasetByName("anybeat");
  setenv("SGR_DATASET_SCALE", "0.1", 1);
  const Graph small = LoadDataset(spec);
  setenv("SGR_DATASET_SCALE", "0.3", 1);
  const Graph big = LoadDataset(spec);
  unsetenv("SGR_DATASET_SCALE");
  EXPECT_LT(small.NumNodes(), big.NumNodes());
}

TEST(DatasetsTest, GenerationIsDeterministic) {
  unsetenv("SGR_DATASET_DIR");
  setenv("SGR_DATASET_SCALE", "0.1", 1);
  const DatasetSpec spec = DatasetByName("epinions");
  const Graph a = LoadDataset(spec);
  const Graph b = LoadDataset(spec);
  unsetenv("SGR_DATASET_SCALE");
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

}  // namespace
}  // namespace sgr
