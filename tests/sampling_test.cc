#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/generators.h"
#include "sampling/bfs.h"
#include "sampling/forest_fire.h"
#include "sampling/random_walk.h"
#include "sampling/snowball.h"

namespace sgr {
namespace {

Graph TestGraph() {
  Rng rng(100);
  return GeneratePowerlawCluster(500, 3, 0.4, rng);
}

TEST(QueryOracleTest, CountsUniqueQueries) {
  const Graph g = GenerateCycle(5);
  QueryOracle oracle(g);
  oracle.Query(0);
  oracle.Query(0);
  oracle.Query(1);
  EXPECT_EQ(oracle.unique_queries(), 2u);
  EXPECT_EQ(oracle.HiddenNumNodes(), 5u);
}

TEST(RandomWalkTest, ReachesQueryBudget) {
  const Graph g = TestGraph();
  QueryOracle oracle(g);
  Rng rng(1);
  const SamplingList list = RandomWalkSample(oracle, 0, 50, rng);
  EXPECT_TRUE(list.is_walk);
  EXPECT_EQ(list.NumQueried(), 50u);
  EXPECT_GE(list.Length(), 50u);
}

TEST(RandomWalkTest, ConsecutiveStepsAreNeighbors) {
  const Graph g = TestGraph();
  QueryOracle oracle(g);
  Rng rng(2);
  const SamplingList list = RandomWalkSample(oracle, 3, 40, rng);
  for (std::size_t i = 0; i + 1 < list.Length(); ++i) {
    EXPECT_TRUE(
        g.HasEdge(list.visit_sequence[i], list.visit_sequence[i + 1]))
        << "walk step " << i << " is not an edge";
  }
}

TEST(RandomWalkTest, NeighborListsMatchGraph) {
  const Graph g = TestGraph();
  QueryOracle oracle(g);
  Rng rng(3);
  const SamplingList list = RandomWalkSample(oracle, 7, 30, rng);
  for (const auto& [v, nbrs] : list.neighbors) {
    EXPECT_EQ(nbrs.size(), g.Degree(v));
  }
}

TEST(RandomWalkTest, MaxStepsCapStopsEarly) {
  const Graph g = GenerateCycle(10);
  QueryOracle oracle(g);
  Rng rng(4);
  const SamplingList list = RandomWalkSample(oracle, 0, 1000, rng, 25);
  EXPECT_EQ(list.Length(), 25u);
}

TEST(BfsTest, ExploresByLayers) {
  const Graph g = GeneratePath(10);
  QueryOracle oracle(g);
  const SamplingList list = BfsSample(oracle, 0, 4);
  ASSERT_EQ(list.NumQueried(), 4u);
  // From the path end, BFS queries 0,1,2,3 in order.
  EXPECT_EQ(list.visit_sequence,
            (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(BfsTest, QueriesAreDistinct) {
  const Graph g = TestGraph();
  QueryOracle oracle(g);
  const SamplingList list = BfsSample(oracle, 5, 100);
  std::unordered_set<NodeId> unique(list.visit_sequence.begin(),
                                    list.visit_sequence.end());
  EXPECT_EQ(unique.size(), list.visit_sequence.size());
  EXPECT_EQ(list.NumQueried(), 100u);
}

TEST(BfsTest, StopsWhenComponentExhausted) {
  const Graph g = GenerateCycle(6);
  QueryOracle oracle(g);
  const SamplingList list = BfsSample(oracle, 0, 100);
  EXPECT_EQ(list.NumQueried(), 6u);
}

TEST(SnowballTest, RespectsBudget) {
  const Graph g = TestGraph();
  QueryOracle oracle(g);
  Rng rng(5);
  const SamplingList list = SnowballSample(oracle, 0, 60, 50, rng);
  EXPECT_EQ(list.NumQueried(), 60u);
  EXPECT_FALSE(list.is_walk);
}

TEST(SnowballTest, NeighborCapLimitsFanout) {
  // On a star, snowball with cap 2 from the hub can still revive through
  // discovered leaves, but each queried node records its true neighbors.
  const Graph g = GenerateStar(20);
  QueryOracle oracle(g);
  Rng rng(6);
  const SamplingList list = SnowballSample(oracle, 0, 3, 2, rng);
  EXPECT_EQ(list.NumQueried(), 3u);
  EXPECT_EQ(list.DegreeOf(0), 19u);
}

TEST(SnowballTest, ExhaustsSmallGraph) {
  const Graph g = GenerateComplete(8);
  QueryOracle oracle(g);
  Rng rng(7);
  const SamplingList list = SnowballSample(oracle, 0, 100, 3, rng);
  EXPECT_EQ(list.NumQueried(), 8u);
}

TEST(ForestFireTest, RespectsBudget) {
  const Graph g = TestGraph();
  QueryOracle oracle(g);
  Rng rng(8);
  const SamplingList list = ForestFireSample(oracle, 0, 80, 0.7, rng);
  EXPECT_EQ(list.NumQueried(), 80u);
}

TEST(ForestFireTest, RevivesAfterBurnout) {
  // pf = 0 means the fire never spreads; every step must revive, and the
  // budget must still be reached on a connected graph.
  const Graph g = TestGraph();
  QueryOracle oracle(g);
  Rng rng(9);
  const SamplingList list = ForestFireSample(oracle, 0, 20, 0.0, rng);
  EXPECT_EQ(list.NumQueried(), 20u);
}

TEST(ForestFireTest, ExhaustsSmallGraph) {
  const Graph g = GenerateComplete(5);
  QueryOracle oracle(g);
  Rng rng(10);
  const SamplingList list = ForestFireSample(oracle, 0, 50, 0.7, rng);
  EXPECT_EQ(list.NumQueried(), 5u);
}

class CrawlBudgetTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrawlBudgetTest, AllCrawlersHitExactBudget) {
  const std::size_t budget = GetParam();
  const Graph g = TestGraph();
  Rng rng(budget);
  {
    QueryOracle oracle(g);
    EXPECT_EQ(BfsSample(oracle, 1, budget).NumQueried(), budget);
  }
  {
    QueryOracle oracle(g);
    EXPECT_EQ(SnowballSample(oracle, 1, budget, 50, rng).NumQueried(),
              budget);
  }
  {
    QueryOracle oracle(g);
    EXPECT_EQ(ForestFireSample(oracle, 1, budget, 0.7, rng).NumQueried(),
              budget);
  }
  {
    QueryOracle oracle(g);
    EXPECT_EQ(RandomWalkSample(oracle, 1, budget, rng).NumQueried(), budget);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, CrawlBudgetTest,
                         ::testing::Values(5, 25, 100, 250));

}  // namespace
}  // namespace sgr
