#include "graph/edge_list_reader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/components.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace sgr {
namespace {

/// Writes `contents` to a fresh file under the gtest temp dir and returns
/// its path. Each call uses a distinct name, so fixtures never collide
/// across tests or repeated runs within one process.
std::string WriteFixture(const std::string& tag,
                         const std::string& contents) {
  static int counter = 0;
  const std::string path = ::testing::TempDir() + "sgr-ingest-" + tag +
                           "-" + std::to_string(counter++) + ".txt";
  std::ofstream out(path, std::ios::binary);
  out << contents;
  out.close();
  return path;
}

/// The reference pipeline the ingester must reproduce byte for byte.
CsrGraph Reference(const std::string& path) {
  return CsrGraph(PreprocessDataset(ReadEdgeListFile(path)));
}

IngestOptions NoCompress() {
  IngestOptions options;
  options.compress = IngestOptions::Compress::kOff;
  return options;
}

void ExpectSameCsr(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_FALSE(a.compressed());
  ASSERT_FALSE(b.compressed());
  EXPECT_EQ(a.raw_offsets(), b.raw_offsets());
  EXPECT_EQ(a.raw_neighbors(), b.raw_neighbors());
}

TEST(EdgeListReaderTest, MatchesReferencePipelineOnBasicFile) {
  const std::string path = WriteFixture(
      "basic", "# a comment\n% another header style\n0 1\n1 2\n2 0\n2 3\n");
  const IngestResult result = IngestEdgeListFile(path, NoCompress());
  ExpectSameCsr(result.graph, Reference(path));
  EXPECT_EQ(result.stats.edge_lines, 4u);
  EXPECT_EQ(result.stats.raw_nodes, 4u);
  EXPECT_FALSE(result.stats.canonical);
  EXPECT_FALSE(result.from_cache);
}

TEST(EdgeListReaderTest, HandlesTabsCrlfAndTrailingBlankLines) {
  const std::string path = WriteFixture(
      "crlf", "0\t1\r\n1\t2\r\n2 0\r\n\r\n\n");
  const IngestResult result = IngestEdgeListFile(path, NoCompress());
  ExpectSameCsr(result.graph, Reference(path));
  EXPECT_EQ(result.graph.NumNodes(), 3u);
  EXPECT_EQ(result.graph.NumEdges(), 3u);
}

TEST(EdgeListReaderTest, LastLineWithoutNewlineIsParsed) {
  const std::string path = WriteFixture("noeol", "0 1\n1 2");
  const IngestResult result = IngestEdgeListFile(path, NoCompress());
  EXPECT_EQ(result.graph.NumNodes(), 3u);
  EXPECT_EQ(result.graph.NumEdges(), 2u);
  ExpectSameCsr(result.graph, Reference(path));
}

TEST(EdgeListReaderTest, DropsSelfLoopsAndCollapsesParallelEdges) {
  const std::string path = WriteFixture(
      "policy", "0 0\n0 1\n1 0\n0 1\n1 2\n2 2\n");
  const IngestResult result = IngestEdgeListFile(path, NoCompress());
  ExpectSameCsr(result.graph, Reference(path));
  EXPECT_EQ(result.stats.self_loops_dropped, 2u);
  // 0-1 appears three times (once reversed): two copies collapsed.
  EXPECT_EQ(result.stats.parallel_edges_collapsed, 2u);
  EXPECT_EQ(result.graph.NumEdges(), 2u);
}

TEST(EdgeListReaderTest, KeepsLargestComponentWithFirstMaxTiebreak) {
  // Two components of equal size 3: {0,1,2} and {3,4,5}. The reference
  // pipeline keeps the first-encountered maximum; the ingester must too.
  const std::string path = WriteFixture(
      "tie", "0 1\n1 2\n3 4\n4 5\n2 0\n5 3\n");
  const IngestResult result = IngestEdgeListFile(path, NoCompress());
  ExpectSameCsr(result.graph, Reference(path));
  EXPECT_EQ(result.graph.NumNodes(), 3u);
  EXPECT_EQ(result.stats.lcc_nodes, 3u);
  EXPECT_EQ(result.stats.lcc_edges, 3u);
}

TEST(EdgeListReaderTest, OutOfOrderAndSparseIdsRenumberLikeReference) {
  const std::string path = WriteFixture(
      "sparse", "900 100\n100 500\n500 900\n500 42\n");
  const IngestResult result = IngestEdgeListFile(path, NoCompress());
  ExpectSameCsr(result.graph, Reference(path));
  EXPECT_EQ(result.graph.NumNodes(), 4u);
}

TEST(EdgeListReaderTest, Interns64BitIdsBeyondDenseLimit) {
  // Ids past the dense-intern threshold (2^26) exercise the hash-map
  // fallback, including one beyond 2^32.
  const std::string path = WriteFixture(
      "wide",
      "123456789012345 1\n1 99999999999\n99999999999 123456789012345\n"
      "1 70000000\n");
  const IngestResult result = IngestEdgeListFile(path, NoCompress());
  ExpectSameCsr(result.graph, Reference(path));
  EXPECT_EQ(result.graph.NumNodes(), 4u);
}

TEST(EdgeListReaderTest, ResultIsIdenticalAcrossThreadCounts) {
  Rng rng(7);
  const Graph g = GeneratePowerlawCluster(600, 4, 0.3, rng);
  std::ostringstream text;
  WriteEdgeList(g, text);
  const std::string path = WriteFixture("threads", text.str());

  IngestOptions options = NoCompress();
  const IngestResult one = IngestEdgeListFile(path, options);
  options.threads = 2;
  const IngestResult two = IngestEdgeListFile(path, options);
  options.threads = 8;
  const IngestResult eight = IngestEdgeListFile(path, options);
  ExpectSameCsr(one.graph, two.graph);
  ExpectSameCsr(one.graph, eight.graph);
  EXPECT_EQ(CsrContentHash(one.graph), CsrContentHash(eight.graph));
  ExpectSameCsr(one.graph, Reference(path));
}

TEST(EdgeListReaderTest, SpillPathProducesIdenticalResult) {
  Rng rng(11);
  const Graph g = GeneratePowerlawCluster(300, 3, 0.2, rng);
  std::ostringstream text;
  WriteEdgeList(g, text);
  const std::string path = WriteFixture("spill", text.str());

  IngestOptions options = NoCompress();
  const IngestResult in_memory = IngestEdgeListFile(path, options);
  EXPECT_FALSE(in_memory.stats.spilled);
  options.spill_edges = 4;  // force the temp-file path immediately
  options.chunk_bytes = 64;  // and tiny read chunks with carried lines
  options.threads = 3;
  const IngestResult spilled = IngestEdgeListFile(path, options);
  EXPECT_TRUE(spilled.stats.spilled);
  ExpectSameCsr(in_memory.graph, spilled.graph);
}

TEST(EdgeListReaderTest, CompressedAndUncompressedHashIdentically) {
  Rng rng(13);
  const Graph g = GeneratePowerlawCluster(400, 3, 0.3, rng);
  std::ostringstream text;
  WriteEdgeList(g, text);
  const std::string path = WriteFixture("compress", text.str());

  const IngestResult plain = IngestEdgeListFile(path, NoCompress());
  IngestOptions on;
  on.compress = IngestOptions::Compress::kOn;
  const IngestResult packed = IngestEdgeListFile(path, on);
  EXPECT_FALSE(plain.graph.compressed());
  EXPECT_TRUE(packed.graph.compressed());
  EXPECT_EQ(CsrContentHash(plain.graph), CsrContentHash(packed.graph));
  EXPECT_LT(packed.graph.NeighborStorageBytes(),
            plain.graph.NeighborStorageBytes());
}

TEST(EdgeListReaderTest, CanonicalExportReingestsToIdenticalIds) {
  Rng rng(17);
  const CsrGraph g(PreprocessDataset(GeneratePowerlawCluster(250, 4,
                                                             0.4, rng)));
  const std::string path = ::testing::TempDir() + "sgr-canonical-rt.txt";
  WriteCanonicalEdgeListFile(g, path);
  const IngestResult back = IngestEdgeListFile(path, NoCompress());
  EXPECT_TRUE(back.stats.canonical);
  ExpectSameCsr(back.graph, g);
  std::remove(path.c_str());
}

TEST(EdgeListReaderTest, CanonicalMarkerPreservesVerbatimIds) {
  // First-appearance renumbering would map 0->0, 2->1, 1->2 here; the
  // canonical marker must keep the declared dense ids instead.
  const std::string path = WriteFixture(
      "canon", "# sgr-canonical 1\n# nodes 3 edges 2\n0 2\n1 2\n");
  const IngestResult result = IngestEdgeListFile(path, NoCompress());
  ASSERT_EQ(result.graph.NumNodes(), 3u);
  const NeighborSpan n0 = result.graph.neighbors(0);
  ASSERT_EQ(n0.size(), 1u);
  EXPECT_EQ(n0[0], 2u);
  const NeighborSpan n2 = result.graph.neighbors(2);
  ASSERT_EQ(n2.size(), 2u);
  EXPECT_EQ(n2[0], 0u);
  EXPECT_EQ(n2[1], 1u);
}

TEST(EdgeListReaderTest, CanonicalMarkerAfterEdgeLineIsIgnored) {
  // The marker is a file-format declaration: only honored before data.
  const std::string path = WriteFixture(
      "canonlate", "5 7\n# sgr-canonical 1\n7 9\n");
  const IngestResult result = IngestEdgeListFile(path, NoCompress());
  EXPECT_FALSE(result.stats.canonical);
  ExpectSameCsr(result.graph, Reference(path));
}

TEST(EdgeListReaderTest, RejectsTrailingTokenWithLineNumber) {
  const std::string path = WriteFixture("weighted", "0 1\n1 2 0.5\n");
  try {
    IngestEdgeListFile(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(path + ":2:"), std::string::npos) << message;
    EXPECT_NE(message.find("not supported"), std::string::npos) << message;
  }
}

TEST(EdgeListReaderTest, RejectsMalformedAndNegativeIds) {
  EXPECT_THROW(
      IngestEdgeListFile(WriteFixture("words", "0 1\nnot numbers\n")),
      std::runtime_error);
  EXPECT_THROW(IngestEdgeListFile(WriteFixture("neg", "-1 2\n")),
               std::runtime_error);
  EXPECT_THROW(IngestEdgeListFile(WriteFixture("lonely", "42\n")),
               std::runtime_error);
  EXPECT_THROW(
      IngestEdgeListFile(WriteFixture(
          "overflow", "99999999999999999999999999 1\n")),
      std::runtime_error);
}

TEST(EdgeListReaderTest, RejectsCanonicalIdOutOfDeclaredRange) {
  const std::string path = WriteFixture(
      "canonbad", "# sgr-canonical 1\n# nodes 2 edges 1\n0 5\n");
  EXPECT_THROW(IngestEdgeListFile(path), std::runtime_error);
}

TEST(EdgeListReaderTest, MissingFileThrowsWithPath) {
  try {
    IngestEdgeListFile("/nonexistent/sgr/graph.txt");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/sgr/graph.txt"),
              std::string::npos);
  }
}

TEST(EdgeListReaderTest, EmptyAndCommentOnlyFilesMatchReference) {
  // PreprocessDataset of an empty graph is the 0-node graph; both
  // degenerate inputs must reproduce the reference pipeline exactly.
  for (const std::string contents : {std::string(""),
                                     std::string("# only comments\n")}) {
    const std::string path = WriteFixture("empty", contents);
    const IngestResult result = IngestEdgeListFile(path, NoCompress());
    ExpectSameCsr(result.graph, Reference(path));
    EXPECT_EQ(result.graph.NumNodes(), 0u);
    EXPECT_EQ(result.graph.NumEdges(), 0u);
  }
}

TEST(EdgeListReaderTest, HashFileContentsTracksBytes) {
  const std::string a = WriteFixture("hasha", "0 1\n");
  const std::string b = WriteFixture("hashb", "0 1\n");
  const std::string c = WriteFixture("hashc", "0 2\n");
  EXPECT_EQ(HashFileContents(a), HashFileContents(b));
  EXPECT_NE(HashFileContents(a), HashFileContents(c));
  EXPECT_THROW(HashFileContents("/nonexistent/sgr/graph.txt"),
               std::runtime_error);
}

TEST(EdgeListReaderTest, HashToHexIsSixteenLowercaseDigits) {
  EXPECT_EQ(HashToHex(0), "0000000000000000");
  EXPECT_EQ(HashToHex(0xabcdef0123456789ULL), "abcdef0123456789");
  EXPECT_EQ(HashToHex(~std::uint64_t{0}), "ffffffffffffffff");
}

}  // namespace
}  // namespace sgr
