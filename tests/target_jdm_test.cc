#include "restore/target_jdm.h"

#include <gtest/gtest.h>

#include "dk/dk_construct.h"
#include "estimation/estimators.h"
#include "graph/generators.h"
#include "restore/target_degree_vector.h"
#include "sampling/random_walk.h"
#include "sampling/subgraph.h"

namespace sgr {
namespace {

TEST(TargetJdmTest, DeltaInfiniteWithoutMass) {
  LocalEstimates est;
  est.num_nodes = 10;
  est.average_degree = 2;
  EXPECT_TRUE(std::isinf(JdmDelta(est, 2, 3, 0, +1)));
}

TEST(TargetJdmTest, DeltaSignsTrackEstimate) {
  LocalEstimates est;
  est.num_nodes = 10;
  est.average_degree = 2;
  est.joint_dist.SetSymmetric(1, 2, 0.5);  // m̂(1,2) = 10
  EXPECT_LT(JdmDelta(est, 1, 2, 5, +1), 0.0);   // 5 -> 6 approaches 10
  EXPECT_GT(JdmDelta(est, 1, 2, 15, +1), 0.0);  // 15 -> 16 recedes
  EXPECT_LT(JdmDelta(est, 1, 2, 15, -1), 0.0);  // 15 -> 14 approaches
  EXPECT_GT(JdmDelta(est, 1, 2, 5, -1), 0.0);   // 5 -> 4 recedes
}

TEST(TargetJdmTest, EstimatesOnlySatisfiesJdm123) {
  // Hand-built consistent estimates.
  LocalEstimates est;
  est.num_nodes = 12.0;
  est.average_degree = 2.0;
  est.degree_dist = {0.0, 0.5, 0.25, 0.25};
  est.joint_dist.SetSymmetric(1, 2, 0.25);
  est.joint_dist.SetSymmetric(1, 3, 0.25);
  est.joint_dist.SetSymmetric(2, 3, 0.25);
  est.joint_dist.SetSymmetric(3, 3, 0.125);
  est.joint_dist.SetSymmetric(2, 2, 0.125);
  TargetDegreeVectorResult dv = BuildTargetDegreeVectorFromEstimates(est);
  Rng rng(70);
  const JointDegreeMatrix m_star =
      BuildTargetJdmFromEstimates(est, dv.n_star, rng);
  EXPECT_TRUE(m_star.SatisfiesJdm1());
  EXPECT_TRUE(m_star.SatisfiesJdm2());
  EXPECT_TRUE(m_star.SatisfiesJdm3(dv.n_star));
}

class TargetJdmWalkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TargetJdmWalkTest, FullPipelineSatisfiesAllConditions) {
  Rng gen_rng(GetParam());
  const Graph g = GeneratePowerlawCluster(700, 3, 0.4, gen_rng);
  QueryOracle oracle(g);
  Rng rng(GetParam() + 5000);
  const SamplingList list = RandomWalkSample(oracle, 0, 70, rng);
  const Subgraph sub = BuildSubgraph(list);
  const LocalEstimates est = EstimateLocalProperties(list);
  TargetDegreeVectorResult dv = BuildTargetDegreeVector(sub, est, rng);
  const JointDegreeMatrix m_prime =
      SubgraphClassEdges(sub.graph, dv.subgraph_target_degrees);
  const JointDegreeMatrix m_star =
      BuildTargetJdm(est, dv.n_star, m_prime, rng);

  EXPECT_TRUE(m_star.SatisfiesJdm1());
  EXPECT_TRUE(m_star.SatisfiesJdm2());
  EXPECT_TRUE(m_star.SatisfiesJdm3(dv.n_star));
  EXPECT_TRUE(m_star.Dominates(m_prime)) << "JDM-4 violated";

  // The degree vector still satisfies its own conditions after any growth
  // by Algorithm 3.
  EXPECT_TRUE(SatisfiesDv1(dv.n_star));
  EXPECT_TRUE(SatisfiesDv2(dv.n_star));

  // And the full target pair must be realizable around the subgraph (the
  // ultimate acceptance test: Algorithm 5 succeeds).
  EXPECT_NO_THROW({
    const Graph built = ConstructPreservingTargets(
        sub.graph, dv.subgraph_target_degrees, dv.n_star, m_star, rng);
    (void)built;
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, TargetJdmWalkTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(TargetJdmTest, GjokaVariantRealizableFromEmpty) {
  Rng gen_rng(71);
  const Graph g = GeneratePowerlawCluster(600, 3, 0.4, gen_rng);
  QueryOracle oracle(g);
  Rng rng(72);
  const SamplingList list = RandomWalkSample(oracle, 0, 80, rng);
  const LocalEstimates est = EstimateLocalProperties(list);
  TargetDegreeVectorResult dv = BuildTargetDegreeVectorFromEstimates(est);
  const JointDegreeMatrix m_star =
      BuildTargetJdmFromEstimates(est, dv.n_star, rng);
  EXPECT_NO_THROW({
    const Graph built = Construct2kGraph(dv.n_star, m_star, rng);
    EXPECT_EQ(static_cast<std::int64_t>(built.NumNodes()),
              DegreeVectorNodes(dv.n_star));
  });
}

TEST(TargetJdmTest, EdgeTotalsStayNearEstimate) {
  Rng gen_rng(73);
  const Graph g = GeneratePowerlawCluster(800, 4, 0.3, gen_rng);
  QueryOracle oracle(g);
  Rng rng(74);
  const SamplingList list = RandomWalkSample(oracle, 0, 200, rng);
  const LocalEstimates est = EstimateLocalProperties(list);
  TargetDegreeVectorResult dv = BuildTargetDegreeVectorFromEstimates(est);
  const JointDegreeMatrix m_star =
      BuildTargetJdmFromEstimates(est, dv.n_star, rng);
  const double m_hat = est.num_nodes * est.average_degree / 2.0;
  EXPECT_NEAR(static_cast<double>(m_star.TotalEdges()), m_hat,
              0.5 * m_hat);
}

}  // namespace
}  // namespace sgr
