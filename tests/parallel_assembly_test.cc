#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dk/dk_construct.h"
#include "dk/dk_extract.h"
#include "estimation/estimators.h"
#include "graph/generators.h"
#include "restore/proposed.h"
#include "restore/target_degree_vector.h"
#include "restore/target_jdm.h"
#include "sampling/random_walk.h"
#include "sampling/subgraph.h"
#include "util/rng.h"

namespace sgr {
namespace {

/// Byte-level edge-list equality: same edges, same ids, same endpoint
/// order — the assembly engines' determinism currency.
void ExpectSameEdgeList(const Graph& a, const Graph& b,
                        const std::string& what) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes()) << what;
  ASSERT_EQ(a.NumEdges(), b.NumEdges()) << what;
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    ASSERT_EQ(a.edge(e).u, b.edge(e).u) << what << " edge " << e;
    ASSERT_EQ(a.edge(e).v, b.edge(e).v) << what << " edge " << e;
  }
}

/// The invariants Algorithm 5 must realize regardless of engine: the
/// base survives verbatim under its original edge ids, and the targets
/// are hit exactly.
void ExpectAssemblyInvariants(const Graph& base, const Graph& out,
                              const DegreeVector& n_star,
                              const JointDegreeMatrix& m_star,
                              const std::string& what) {
  for (EdgeId e = 0; e < base.NumEdges(); ++e) {
    EXPECT_EQ(out.edge(e).u, base.edge(e).u) << what << " edge " << e;
    EXPECT_EQ(out.edge(e).v, base.edge(e).v) << what << " edge " << e;
  }
  EXPECT_EQ(ExtractDegreeVector(out), n_star) << what;
  const JointDegreeMatrix out_jdm = ExtractJointDegreeMatrix(out);
  for (const auto& [key, count] : m_star.counts()) {
    EXPECT_EQ(out_jdm.counts().count(key) > 0 ? out_jdm.counts().at(key)
                                              : 0,
              count)
        << what;
  }
  EXPECT_EQ(out_jdm.TotalEdges(), m_star.TotalEdges()) << what;
}

/// Realistic pipeline inputs: a crawl of a generated graph and the
/// targets the proposed method would build from it.
struct PipelineInputs {
  Subgraph sub;
  TargetDegreeVectorResult targets;
  JointDegreeMatrix m_star;
};

PipelineInputs BuildInputs(std::uint64_t seed) {
  Rng rng(seed);
  const Graph original = GeneratePowerlawCluster(600, 3, 0.4, rng);
  QueryOracle oracle(original);
  const SamplingList walk = RandomWalkSample(
      oracle, static_cast<NodeId>(rng.NextIndex(original.NumNodes())),
      original.NumNodes() / 10, rng);
  PipelineInputs inputs{BuildSubgraph(walk), {}, {}};
  const LocalEstimates est = EstimateLocalProperties(walk);
  inputs.targets = BuildTargetDegreeVector(inputs.sub, est, rng);
  const JointDegreeMatrix m_prime = SubgraphClassEdges(
      inputs.sub.graph, inputs.targets.subgraph_target_degrees);
  inputs.m_star =
      BuildTargetJdm(est, inputs.targets.n_star, m_prime, rng);
  return inputs;
}

TEST(ParallelAssemblyTest, ByteIdenticalAcrossThreadCounts) {
  const PipelineInputs inputs = BuildInputs(11);
  std::vector<Graph> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    runs.push_back(ConstructPreservingTargetsParallel(
        inputs.sub.graph, inputs.targets.subgraph_target_degrees,
        inputs.targets.n_star, inputs.m_star, /*seed=*/0xD0C5, threads));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ExpectSameEdgeList(runs[0], runs[r],
                       "threads variant " + std::to_string(r));
  }
  // The run must add real work for the comparison to mean anything.
  EXPECT_GT(runs[0].NumEdges(), inputs.sub.graph.NumEdges());
}

TEST(ParallelAssemblyTest, RealizesTargetsAndPreservesSubgraph) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const PipelineInputs inputs = BuildInputs(seed);
    const Graph out = ConstructPreservingTargetsParallel(
        inputs.sub.graph, inputs.targets.subgraph_target_degrees,
        inputs.targets.n_star, inputs.m_star, /*seed=*/seed * 31, 2);
    ExpectAssemblyInvariants(inputs.sub.graph, out, inputs.targets.n_star,
                             inputs.m_star,
                             "seed " + std::to_string(seed));
  }
}

TEST(ParallelAssemblyTest, TwoKFromEmptyRealizesExtractedTargets) {
  // The Gjoka baseline's path: rebuild a real graph's (DV, JDM) from an
  // empty base through the parallel engine.
  Rng gen_rng(41);
  const Graph original = GeneratePowerlawCluster(300, 3, 0.4, gen_rng);
  const DegreeVector dv = ExtractDegreeVector(original);
  const JointDegreeMatrix jdm = ExtractJointDegreeMatrix(original);
  const Graph rebuilt = Construct2kGraphParallel(dv, jdm, /*seed=*/42, 2);
  EXPECT_EQ(rebuilt.NumNodes(), original.NumNodes());
  EXPECT_EQ(rebuilt.NumEdges(), original.NumEdges());
  EXPECT_EQ(ExtractDegreeVector(rebuilt), dv);
  const JointDegreeMatrix rebuilt_jdm = ExtractJointDegreeMatrix(rebuilt);
  for (const auto& [key, count] : jdm.counts()) {
    EXPECT_EQ(rebuilt_jdm.counts().at(key), count);
  }
  EXPECT_EQ(rebuilt_jdm.counts().size(), jdm.counts().size());
}

TEST(ParallelAssemblyTest, DifferentSeedsDifferentRealizations) {
  // The seed drives all randomness: two seeds give two (equally valid)
  // realizations, and the same seed reproduces bit-for-bit.
  const PipelineInputs inputs = BuildInputs(31);
  const auto build = [&](std::uint64_t seed) {
    return ConstructPreservingTargetsParallel(
        inputs.sub.graph, inputs.targets.subgraph_target_degrees,
        inputs.targets.n_star, inputs.m_star, seed, 2);
  };
  const Graph a = build(1);
  const Graph b = build(1);
  ExpectSameEdgeList(a, b, "same seed");
  const Graph c = build(2);
  ASSERT_EQ(a.NumEdges(), c.NumEdges());
  bool any_difference = false;
  for (EdgeId e = 0; e < a.NumEdges() && !any_difference; ++e) {
    any_difference =
        a.edge(e).u != c.edge(e).u || a.edge(e).v != c.edge(e).v;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ParallelAssemblyTest, RejectsSameViolationsAsSequential) {
  // JDM-3 violated: stub counts cannot satisfy the matrix.
  {
    DegreeVector n_star = {0, 2};  // two degree-1 nodes
    JointDegreeMatrix m_star;
    m_star.SetSymmetric(1, 1, 3);  // needs 6 endpoint slots, only 2 exist
    EXPECT_THROW(Construct2kGraphParallel(n_star, m_star, /*seed=*/45, 2),
                 std::logic_error);
  }
  // DV-3 violated: fewer degree-1 targets than the base already has.
  {
    Graph base(3);
    base.AddEdge(0, 1);
    base.AddEdge(1, 2);
    const std::vector<std::uint32_t> targets = {1, 2, 1};
    DegreeVector n_star = {0, 1, 1};
    JointDegreeMatrix m_star;
    m_star.SetSymmetric(1, 2, 2);
    EXPECT_THROW(
        ConstructPreservingTargetsParallel(base, targets, n_star, m_star,
                                           /*seed=*/46, 2),
        std::logic_error);
  }
  // Target below the base degree.
  {
    Graph base(2);
    base.AddEdge(0, 1);
    const std::vector<std::uint32_t> targets = {0, 1};
    DegreeVector n_star = {1, 1};
    JointDegreeMatrix m_star;
    EXPECT_THROW(
        ConstructPreservingTargetsParallel(base, targets, n_star, m_star,
                                           /*seed=*/47, 2),
        std::logic_error);
  }
}

TEST(ParallelAssemblyTest, FullProposedPipelineByteIdenticalAcrossThreads) {
  // RestorationOptions::parallel_assembly end to end: the restored graph
  // and every deterministic stat must be bit-identical for every
  // assembly worker count (the estimator and rewirer stay at their
  // defaults, so only the assembly threads vary).
  Rng gen_rng(51);
  const Graph original = GeneratePowerlawCluster(500, 3, 0.4, gen_rng);
  QueryOracle oracle(original);
  Rng walk_rng(52);
  const SamplingList walk = RandomWalkSample(
      oracle, static_cast<NodeId>(walk_rng.NextIndex(original.NumNodes())),
      original.NumNodes() / 10, walk_rng);

  struct Run {
    Graph graph;
    RewireStats stats;
    double final_distance = 0.0;
  };
  std::vector<Run> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    RestorationOptions options;
    options.rewire.rewiring_coefficient = 5.0;
    options.parallel_assembly.enabled = true;
    options.parallel_assembly.threads = threads;
    Rng rng(53);
    RestorationResult result = RestoreProposed(walk, options, rng);
    runs.push_back(Run{std::move(result.graph), result.rewire_stats,
                       result.rewire_stats.final_distance});
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ExpectSameEdgeList(runs[0].graph, runs[r].graph,
                       "assembly threads variant " + std::to_string(r));
    EXPECT_EQ(runs[r].stats.accepted, runs[0].stats.accepted);
    EXPECT_EQ(runs[r].stats.attempts, runs[0].stats.attempts);
    EXPECT_EQ(runs[r].final_distance, runs[0].final_distance);
  }

  // The engine knob itself changes the realization: the sequential
  // assembly (engine off, same seed) produces a different graph.
  RestorationOptions sequential;
  sequential.rewire.rewiring_coefficient = 5.0;
  Rng rng(53);
  const RestorationResult seq = RestoreProposed(walk, sequential, rng);
  ASSERT_EQ(seq.graph.NumEdges(), runs[0].graph.NumEdges());
  bool any_difference = false;
  for (EdgeId e = 0; e < seq.graph.NumEdges() && !any_difference; ++e) {
    any_difference = seq.graph.edge(e).u != runs[0].graph.edge(e).u ||
                     seq.graph.edge(e).v != runs[0].graph.edge(e).v;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace sgr
