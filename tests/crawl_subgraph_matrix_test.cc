// Cross-crawler subgraph invariants: every crawler's sampling list must
// produce a valid induced subgraph with the same structural guarantees
// (queried-degree exactness, edge membership, queried-endpoint coverage),
// regardless of the crawl order statistics.

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.h"
#include "sampling/bfs.h"
#include "sampling/forest_fire.h"
#include "sampling/frontier.h"
#include "sampling/metropolis_hastings.h"
#include "sampling/non_backtracking.h"
#include "sampling/random_walk.h"
#include "sampling/snowball.h"
#include "sampling/subgraph.h"

namespace sgr {
namespace {

enum class Crawler { kRw, kNbrw, kMhrw, kBfs, kSnowball, kFf, kFrontier };

SamplingList Crawl(Crawler crawler, const Graph& g, std::size_t budget,
                   Rng& rng) {
  QueryOracle oracle(g);
  const NodeId seed = static_cast<NodeId>(rng.NextIndex(g.NumNodes()));
  switch (crawler) {
    case Crawler::kRw:
      return RandomWalkSample(oracle, seed, budget, rng);
    case Crawler::kNbrw:
      return NonBacktrackingWalkSample(oracle, seed, budget, rng);
    case Crawler::kMhrw:
      return MetropolisHastingsWalkSample(oracle, seed, budget, rng);
    case Crawler::kBfs:
      return BfsSample(oracle, seed, budget);
    case Crawler::kSnowball:
      return SnowballSample(oracle, seed, budget, 50, rng);
    case Crawler::kFf:
      return ForestFireSample(oracle, seed, budget, 0.7, rng);
    case Crawler::kFrontier:
      return FrontierSample(oracle, {seed, 0, 1}, budget, rng);
  }
  return {};
}

class CrawlerSubgraphTest
    : public ::testing::TestWithParam<std::tuple<Crawler, std::uint64_t>> {
};

TEST_P(CrawlerSubgraphTest, SubgraphInvariantsHold) {
  const auto [crawler, seed] = GetParam();
  Rng gen_rng(seed);
  const Graph g = GenerateSocialGraph(600, 4, 0.4, 0.4, gen_rng);
  Rng rng(seed + 404);
  const SamplingList list = Crawl(crawler, g, 60, rng);
  ASSERT_GE(list.NumQueried(), 60u);

  const Subgraph sub = BuildSubgraph(list);
  // Every recorded neighbor list matches the oracle's graph.
  for (const auto& [v, nbrs] : list.neighbors) {
    EXPECT_EQ(nbrs.size(), g.Degree(v));
  }
  // Queried nodes keep exact degrees; visible nodes are bounded (Lemma 1).
  for (NodeId v = 0; v < sub.graph.NumNodes(); ++v) {
    const NodeId orig = sub.to_original[v];
    if (sub.is_queried[v]) {
      EXPECT_EQ(sub.graph.Degree(v), g.Degree(orig));
    } else {
      EXPECT_LE(sub.graph.Degree(v), g.Degree(orig));
      EXPECT_GE(sub.graph.Degree(v), 1u);
    }
  }
  // Edges exist in the original and touch a queried endpoint.
  for (const Edge& e : sub.graph.edges()) {
    EXPECT_TRUE(g.HasEdge(sub.to_original[e.u], sub.to_original[e.v]));
    EXPECT_TRUE(sub.is_queried[e.u] || sub.is_queried[e.v]);
  }
  EXPECT_TRUE(sub.graph.IsSimple());
}

INSTANTIATE_TEST_SUITE_P(
    AllCrawlers, CrawlerSubgraphTest,
    ::testing::Combine(::testing::Values(Crawler::kRw, Crawler::kNbrw,
                                         Crawler::kMhrw, Crawler::kBfs,
                                         Crawler::kSnowball, Crawler::kFf,
                                         Crawler::kFrontier),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace sgr
