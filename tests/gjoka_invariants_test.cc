#include <gtest/gtest.h>

#include "analysis/l1.h"
#include "analysis/properties.h"
#include "dk/dk_extract.h"
#include "graph/generators.h"
#include "restore/gjoka.h"
#include "restore/proposed.h"
#include "restore/subgraph_method.h"
#include "sampling/random_walk.h"

namespace sgr {
namespace {

SamplingList Walk(const Graph& g, std::size_t budget, std::uint64_t seed) {
  QueryOracle oracle(g);
  Rng rng(seed);
  return RandomWalkSample(
      oracle, static_cast<NodeId>(rng.NextIndex(g.NumNodes())), budget,
      rng);
}

RestorationOptions FastOptions() {
  RestorationOptions options;
  options.rewire.rewiring_coefficient = 10.0;
  return options;
}

class GjokaInvariantsTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GjokaInvariantsTest, OutputRealizesConsistentTargets) {
  Rng gen_rng(GetParam());
  const Graph g = GenerateSocialGraph(800, 4, 0.4, 0.4, gen_rng);
  const SamplingList walk = Walk(g, 80, GetParam() + 77);
  Rng rng(GetParam());
  const RestorationResult r = RestoreGjoka(walk, FastOptions(), rng);

  // The generated graph must be internally consistent: its own extracted
  // degree vector and joint degree matrix satisfy JDM-3 (they always do
  // for a real graph) and the degree sum is even.
  const DegreeVector dv = ExtractDegreeVector(r.graph);
  EXPECT_TRUE(SatisfiesDv1(dv));
  EXPECT_TRUE(SatisfiesDv2(dv));
  EXPECT_TRUE(ExtractJointDegreeMatrix(r.graph).SatisfiesJdm3(dv));

  // Scale tracks the estimates.
  EXPECT_NEAR(static_cast<double>(r.graph.NumNodes()),
              r.estimates.num_nodes, 0.4 * r.estimates.num_nodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GjokaInvariantsTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RegimeTest, SubgraphSamplingWinsAtHugeBudgets) {
  // Paper conclusion (Section VII): if >= 50% of nodes can be queried,
  // subgraph sampling is (at least) competitive because G' is nearly the
  // whole graph. Check that the subgraph's average L1 becomes small in
  // that regime.
  Rng gen_rng(11);
  const Graph g = GenerateSocialGraph(800, 4, 0.4, 0.4, gen_rng);
  const GraphProperties truth = ComputeProperties(g);

  const SamplingList big_walk = Walk(g, 640, 12);  // 80% queried
  const RestorationResult sub = RestoreBySubgraphSampling(big_walk);
  const double l1 = AverageDistance(
      PropertyDistances(truth, ComputeProperties(sub.graph)));
  EXPECT_LT(l1, 0.12);
}

TEST(RegimeTest, SubgraphErrorShrinksWithBudget) {
  Rng gen_rng(13);
  const Graph g = GenerateSocialGraph(800, 4, 0.4, 0.4, gen_rng);
  const GraphProperties truth = ComputeProperties(g);
  double previous = 1e9;
  for (const std::size_t budget : {40u, 160u, 640u}) {
    const RestorationResult sub =
        RestoreBySubgraphSampling(Walk(g, budget, 14));
    const double l1 = AverageDistance(
        PropertyDistances(truth, ComputeProperties(sub.graph)));
    EXPECT_LT(l1, previous) << "budget " << budget;
    previous = l1;
  }
}

TEST(BoundaryTest, TinyWalkStillRestores) {
  // Minimal viable sample: a handful of queried nodes. The pipeline must
  // not crash and must produce a connected-ish usable graph.
  Rng gen_rng(15);
  const Graph g = GenerateSocialGraph(500, 4, 0.4, 0.4, gen_rng);
  const SamplingList walk = Walk(g, 5, 16);
  Rng rng(17);
  const RestorationResult r = RestoreProposed(walk, FastOptions(), rng);
  EXPECT_GT(r.graph.NumNodes(), 5u);
  EXPECT_GT(r.graph.NumEdges(), 0u);
}

TEST(BoundaryTest, WalkOnTinyGraphs) {
  // Smallest supported structures.
  for (std::size_t n : {3u, 4u, 5u}) {
    const Graph g = GenerateComplete(n);
    QueryOracle oracle(g);
    Rng rng(n);
    const SamplingList walk = RandomWalkSample(oracle, 0, n, rng);
    Rng method_rng(n + 1);
    const RestorationResult r =
        RestoreProposed(walk, FastOptions(), method_rng);
    EXPECT_GE(r.graph.NumNodes(), n);
  }
}

TEST(BoundaryTest, ProposedOnStarGraph) {
  // Extreme disassortativity: one hub, all leaves. Queried leaves pin the
  // hub's visible degree; the pipeline must respect Lemma 1 throughout.
  const Graph g = GenerateStar(60);
  QueryOracle oracle(g);
  Rng rng(18);
  const SamplingList walk = RandomWalkSample(oracle, 1, 12, rng);
  Rng method_rng(19);
  const RestorationResult r =
      RestoreProposed(walk, FastOptions(), method_rng);
  // The generated graph must contain a hub at least as large as the
  // subgraph showed.
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < r.graph.NumNodes(); ++v) {
    max_deg = std::max(max_deg, r.graph.Degree(v));
  }
  EXPECT_GE(max_deg, 11u);
}

}  // namespace
}  // namespace sgr
