#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/properties.h"
#include "analysis/property_tracker.h"
#include "dk/dk_extract.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "restore/rewirer.h"
#include "util/rng.h"

namespace sgr {
namespace {

/// Seeded adversarial swap-sequence fuzzer (json_fuzz_test.cc style):
/// draws ARBITRARY orientations of two distinct edges — unlike the
/// rewiring engines it does not require deg(i) == deg(a), because
/// removing any two edges and adding their recombination preserves every
/// degree. That widens the sequence space to the nasty configurations:
/// self-swaps (i == a), loop creation (i == b), loop destruction (a loop
/// drawn as (i, i)), repeated parallel edges, and component merge/split
/// churn.
class SwapFuzzer {
 public:
  explicit SwapFuzzer(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  /// Applies one fuzzed swap to graph and tracker; returns false when
  /// the draw was degenerate (same edge twice).
  bool Step(Graph& g, PropertyTracker& tracker) {
    if (g.NumEdges() < 2) return false;
    const EdgeId e1 = rng_.NextIndex(g.NumEdges());
    const EdgeId e2 = rng_.NextIndex(g.NumEdges());
    if (e1 == e2) return false;
    const Edge first = g.edge(e1);
    const Edge second = g.edge(e2);
    const bool flip1 = rng_.NextBernoulli(0.5);
    const bool flip2 = rng_.NextBernoulli(0.5);
    const NodeId i = flip1 ? first.v : first.u;
    const NodeId j = flip1 ? first.u : first.v;
    const NodeId a = flip2 ? second.v : second.u;
    const NodeId b = flip2 ? second.u : second.v;
    g.ReplaceEdge(e1, i, b);
    g.ReplaceEdge(e2, a, j);
    tracker.ApplySwap(i, j, a, b);
    return true;
  }

  std::string Label() const {
    return "fuzz seed " + std::to_string(seed_);
  }

 private:
  std::uint64_t seed_;
  Rng rng_;
};

void ExpectVectorsNear(const std::vector<double>& expected,
                       const std::vector<double>& actual,
                       const std::string& what, const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label << ": " << what;
  for (std::size_t k = 0; k < expected.size(); ++k) {
    ASSERT_NEAR(expected[k], actual[k], 1e-12)
        << label << ": " << what << "[" << k << "]";
  }
}

void ExpectMatchesFromScratch(const Graph& g,
                              const PropertyTracker& tracker,
                              const std::string& label) {
  const GraphProperties snapshot = tracker.Snapshot();
  ASSERT_EQ(g.NumNodes(), snapshot.num_nodes) << label;
  ExpectVectorsNear(DegreeDistribution(g), snapshot.degree_dist, "P(k)",
                    label);
  ExpectVectorsNear(NeighborConnectivity(g),
                    snapshot.neighbor_connectivity, "knn(k)", label);
  ASSERT_NEAR(NetworkClusteringCoefficient(g), snapshot.clustering_global,
              1e-12)
      << label;
  ExpectVectorsNear(ExtractDegreeDependentClustering(g),
                    snapshot.clustering_by_degree, "c(k)", label);
  ExpectVectorsNear(EdgewiseSharedPartners(g), snapshot.esp_dist, "P(s)",
                    label);
  const ComponentsResult components = ConnectedComponents(g);
  ASSERT_EQ(components.sizes.size(), tracker.NumComponents()) << label;
  ASSERT_EQ(components.sizes.empty()
                ? 0u
                : components.sizes[components.largest],
            tracker.LccSize())
      << label;
}

/// The three fixture regimes the fuzzer cycles through: a dense
/// multigraph where swaps constantly create/destroy loops and parallel
/// edges, a heavy-tailed clustered graph, and a sparse cycle whose swaps
/// shatter and rejoin components.
Graph FuzzFixture(std::uint64_t seed) {
  switch (seed % 3) {
    case 0: {
      Graph g = GenerateComplete(10);
      g.AddEdge(0, 0);
      g.AddEdge(1, 1);
      g.AddEdge(2, 3);
      g.AddEdge(2, 3);
      return g;
    }
    case 1: {
      Rng rng(seed);
      Graph g = GeneratePowerlawCluster(60, 3, 0.5, rng);
      g.AddEdge(4, 4);
      const Edge doubled = g.edge(9);
      g.AddEdge(doubled.u, doubled.v);
      return g;
    }
    default:
      return GenerateCycle(40);
  }
}

TEST(PropertyTrackerFuzzTest, AdversarialSequencesCrossValidate) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Graph g = FuzzFixture(seed);
    PropertyTracker tracker(g);
    SwapFuzzer fuzzer(seed);
    std::size_t applied = 0;
    for (std::size_t step = 0; step < 2000 && applied < 200; ++step) {
      if (fuzzer.Step(g, tracker)) ++applied;
      if (applied > 0 && applied % 50 == 0) {
        ExpectMatchesFromScratch(g, tracker,
                                 fuzzer.Label() + " after " +
                                     std::to_string(applied) + " swaps");
        if (::testing::Test::HasFailure()) return;
      }
    }
    ASSERT_GE(applied, 150u) << fuzzer.Label();
    ExpectMatchesFromScratch(g, tracker, fuzzer.Label() + " final");
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(PropertyTrackerFuzzTest, CycleChurnSplitsAndMergesComponents) {
  // Swaps on a cycle fragment it into disjoint cycles and splice them
  // back — the component merge/split paths under constant churn, with
  // the component count cross-checked after every single swap.
  Graph g = GenerateCycle(48);
  PropertyTracker tracker(g);
  SwapFuzzer fuzzer(0xC0C0);
  std::size_t max_components = 1;
  std::size_t applied = 0;
  for (std::size_t step = 0; step < 4000 && applied < 400; ++step) {
    if (!fuzzer.Step(g, tracker)) continue;
    ++applied;
    ASSERT_EQ(CountComponents(g), tracker.NumComponents())
        << fuzzer.Label() << " after " << applied << " swaps";
    max_components = std::max(max_components, tracker.NumComponents());
  }
  ASSERT_GE(applied, 300u);
  // The churn must actually have split the cycle for this test to mean
  // anything.
  EXPECT_GT(max_components, 1u);
  ExpectMatchesFromScratch(g, tracker, "cycle churn final");
}

TEST(PropertyTrackerFuzzTest,
     TrackedParallelRewireByteIdenticalAcrossThreads) {
  Rng gen_rng(7);
  const Graph before = GeneratePowerlawCluster(300, 3, 0.5, gen_rng);
  std::vector<double> target(before.MaxDegree() + 1, 0.25);
  RewireOptions options;
  options.rewiring_coefficient = 25.0;
  options.track_properties = true;
  ParallelRewireOptions parallel;
  parallel.batch_size = 128;

  struct Run {
    Graph graph;
    RewireStats stats;
  };
  std::vector<Run> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel.threads = threads;
    Run run{before, {}};
    run.stats = RewireToClusteringParallel(run.graph, 0, target, options,
                                           parallel, /*seed=*/0xD00D);
    runs.push_back(std::move(run));
  }
  ASSERT_EQ(kConvergenceSamples, runs[0].stats.curve.size());
  EXPECT_GT(runs[0].stats.accepted, 0u);
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].graph.NumEdges(), runs[0].graph.NumEdges());
    for (EdgeId e = 0; e < runs[0].graph.NumEdges(); ++e) {
      ASSERT_EQ(runs[r].graph.edge(e).u, runs[0].graph.edge(e).u)
          << "edge " << e << " at run " << r;
      ASSERT_EQ(runs[r].graph.edge(e).v, runs[0].graph.edge(e).v)
          << "edge " << e << " at run " << r;
    }
    EXPECT_EQ(runs[r].stats.attempts, runs[0].stats.attempts);
    EXPECT_EQ(runs[r].stats.accepted, runs[0].stats.accepted);
    EXPECT_EQ(runs[r].stats.initial_distance,
              runs[0].stats.initial_distance);
    EXPECT_EQ(runs[r].stats.final_distance, runs[0].stats.final_distance);
    EXPECT_EQ(runs[r].stats.stopped_early, runs[0].stats.stopped_early);
    // The convergence curve must agree bit-for-bit, doubles included.
    ASSERT_EQ(runs[r].stats.curve.size(), runs[0].stats.curve.size());
    for (std::size_t s = 0; s < runs[0].stats.curve.size(); ++s) {
      EXPECT_EQ(runs[r].stats.curve[s].attempts,
                runs[0].stats.curve[s].attempts)
          << "sample " << s;
      EXPECT_EQ(runs[r].stats.curve[s].objective,
                runs[0].stats.curve[s].objective)
          << "sample " << s;
      EXPECT_EQ(runs[r].stats.curve[s].clustering_global,
                runs[0].stats.curve[s].clustering_global)
          << "sample " << s;
      EXPECT_EQ(runs[r].stats.curve[s].components,
                runs[0].stats.curve[s].components)
          << "sample " << s;
      EXPECT_EQ(runs[r].stats.curve[s].lcc, runs[0].stats.curve[s].lcc)
          << "sample " << s;
    }
  }
}

TEST(PropertyTrackerFuzzTest, TrackingIsPureObservationSequential) {
  Rng gen_rng(12);
  const Graph before = GeneratePowerlawCluster(200, 3, 0.5, gen_rng);
  std::vector<double> target(before.MaxDegree() + 1, 0.2);
  RewireOptions plain;
  plain.rewiring_coefficient = 20.0;
  RewireOptions tracked = plain;
  tracked.track_properties = true;

  Graph g_plain = before;
  Rng rng_plain(0xABC);
  const RewireStats stats_plain =
      RewireToClustering(g_plain, 0, target, plain, rng_plain);

  Graph g_tracked = before;
  Rng rng_tracked(0xABC);
  const RewireStats stats_tracked =
      RewireToClustering(g_tracked, 0, target, tracked, rng_tracked);

  // Identical proposal stream, decisions, and output: tracking is pure
  // observation.
  ASSERT_EQ(g_plain.NumEdges(), g_tracked.NumEdges());
  for (EdgeId e = 0; e < g_plain.NumEdges(); ++e) {
    ASSERT_EQ(g_plain.edge(e).u, g_tracked.edge(e).u) << "edge " << e;
    ASSERT_EQ(g_plain.edge(e).v, g_tracked.edge(e).v) << "edge " << e;
  }
  EXPECT_EQ(stats_plain.attempts, stats_tracked.attempts);
  EXPECT_EQ(stats_plain.accepted, stats_tracked.accepted);
  EXPECT_EQ(stats_plain.initial_distance, stats_tracked.initial_distance);
  EXPECT_EQ(stats_plain.final_distance, stats_tracked.final_distance);
  // Only the curve differs: absent untracked, 16 samples tracked.
  EXPECT_TRUE(stats_plain.curve.empty());
  EXPECT_FALSE(stats_plain.stopped_early);
  ASSERT_EQ(kConvergenceSamples, stats_tracked.curve.size());
  EXPECT_FALSE(stats_tracked.stopped_early);
  EXPECT_EQ(stats_tracked.attempts, stats_tracked.curve.back().attempts);
  // The curve's objective is non-increasing (only improving swaps
  // commit) and ends at the final distance, modulo incremental FP drift.
  for (std::size_t s = 1; s < stats_tracked.curve.size(); ++s) {
    EXPECT_LE(stats_tracked.curve[s].objective,
              stats_tracked.curve[s - 1].objective + 1e-9)
        << "sample " << s;
  }
  EXPECT_NEAR(stats_tracked.curve.back().objective,
              stats_tracked.final_distance, 1e-6);
}

TEST(PropertyTrackerFuzzTest, TrackingIsPureObservationBatched) {
  Rng gen_rng(13);
  const Graph before = GeneratePowerlawCluster(200, 3, 0.5, gen_rng);
  std::vector<double> target(before.MaxDegree() + 1, 0.2);
  RewireOptions plain;
  plain.rewiring_coefficient = 20.0;
  RewireOptions tracked = plain;
  tracked.track_properties = true;
  ParallelRewireOptions parallel;
  parallel.batch_size = 64;
  parallel.threads = 2;

  Graph g_plain = before;
  const RewireStats stats_plain = RewireToClusteringParallel(
      g_plain, 0, target, plain, parallel, /*seed=*/0xBEE);
  Graph g_tracked = before;
  const RewireStats stats_tracked = RewireToClusteringParallel(
      g_tracked, 0, target, tracked, parallel, /*seed=*/0xBEE);

  ASSERT_EQ(g_plain.NumEdges(), g_tracked.NumEdges());
  for (EdgeId e = 0; e < g_plain.NumEdges(); ++e) {
    ASSERT_EQ(g_plain.edge(e).u, g_tracked.edge(e).u) << "edge " << e;
    ASSERT_EQ(g_plain.edge(e).v, g_tracked.edge(e).v) << "edge " << e;
  }
  EXPECT_EQ(stats_plain.attempts, stats_tracked.attempts);
  EXPECT_EQ(stats_plain.accepted, stats_tracked.accepted);
  EXPECT_EQ(stats_plain.rounds, stats_tracked.rounds);
  EXPECT_EQ(stats_plain.evaluated, stats_tracked.evaluated);
  EXPECT_EQ(stats_plain.conflicts, stats_tracked.conflicts);
  EXPECT_EQ(stats_plain.reevaluated, stats_tracked.reevaluated);
  EXPECT_EQ(stats_plain.initial_distance, stats_tracked.initial_distance);
  EXPECT_EQ(stats_plain.final_distance, stats_tracked.final_distance);
  EXPECT_TRUE(stats_plain.curve.empty());
  ASSERT_EQ(kConvergenceSamples, stats_tracked.curve.size());
  // The batched engine scores against exact integer triangle state, so
  // the curve's last objective equals the recomputed final distance to
  // full precision.
  EXPECT_NEAR(stats_tracked.curve.back().objective,
              stats_tracked.final_distance, 1e-9);
}

TEST(PropertyTrackerFuzzTest, AdaptiveStopHaltsSequential) {
  Rng gen_rng(14);
  const Graph before = GeneratePowerlawCluster(250, 3, 0.6, gen_rng);
  std::vector<double> target(before.MaxDegree() + 1, 0.05);
  RewireOptions reference;
  reference.rewiring_coefficient = 30.0;
  reference.track_properties = true;

  Graph g_ref = before;
  Rng rng_ref(0x5709);
  const RewireStats ref =
      RewireToClustering(g_ref, 0, target, reference, rng_ref);
  ASSERT_GT(ref.initial_distance, ref.final_distance);
  ASSERT_FALSE(ref.stopped_early);

  // An epsilon strictly between the final and initial distance must be
  // crossed mid-run: the stop fires with attempts genuinely saved.
  RewireOptions stopping = reference;
  stopping.stop_epsilon =
      0.5 * (ref.initial_distance + ref.final_distance);
  Graph g_stop = before;
  Rng rng_stop(0x5709);
  const RewireStats stopped =
      RewireToClustering(g_stop, 0, target, stopping, rng_stop);
  EXPECT_TRUE(stopped.stopped_early);
  EXPECT_GT(stopped.attempts, 0u);
  EXPECT_LT(stopped.attempts, ref.attempts);
  ASSERT_EQ(kConvergenceSamples, stopped.curve.size());
  EXPECT_LE(stopped.final_distance, stopping.stop_epsilon + 1e-6);

  // Epsilon already satisfied at the start: zero attempts.
  RewireOptions trivial = reference;
  trivial.stop_epsilon = 1e6;
  Graph g_trivial = before;
  Rng rng_trivial(0x5709);
  const RewireStats none =
      RewireToClustering(g_trivial, 0, target, trivial, rng_trivial);
  EXPECT_TRUE(none.stopped_early);
  EXPECT_EQ(0u, none.attempts);
  EXPECT_EQ(0u, none.accepted);
  for (EdgeId e = 0; e < before.NumEdges(); ++e) {
    ASSERT_EQ(before.edge(e).u, g_trivial.edge(e).u) << "edge " << e;
    ASSERT_EQ(before.edge(e).v, g_trivial.edge(e).v) << "edge " << e;
  }
}

TEST(PropertyTrackerFuzzTest, AdaptiveStopHaltsBatched) {
  Rng gen_rng(15);
  const Graph before = GeneratePowerlawCluster(250, 3, 0.6, gen_rng);
  std::vector<double> target(before.MaxDegree() + 1, 0.05);
  RewireOptions reference;
  reference.rewiring_coefficient = 30.0;
  reference.track_properties = true;
  ParallelRewireOptions parallel;
  parallel.batch_size = 64;

  Graph g_ref = before;
  const RewireStats ref = RewireToClusteringParallel(
      g_ref, 0, target, reference, parallel, /*seed=*/0x57A7);
  ASSERT_GT(ref.initial_distance, ref.final_distance);
  ASSERT_FALSE(ref.stopped_early);

  RewireOptions stopping = reference;
  stopping.stop_epsilon =
      0.5 * (ref.initial_distance + ref.final_distance);

  // The stop decision happens between rounds, so the halted run is
  // byte-identical for every worker count too.
  std::vector<RewireStats> stopped_stats;
  std::vector<Graph> stopped_graphs;
  for (const std::size_t threads : {1u, 4u}) {
    parallel.threads = threads;
    Graph g_stop = before;
    stopped_stats.push_back(RewireToClusteringParallel(
        g_stop, 0, target, stopping, parallel, /*seed=*/0x57A7));
    stopped_graphs.push_back(std::move(g_stop));
  }
  const RewireStats& stopped = stopped_stats[0];
  EXPECT_TRUE(stopped.stopped_early);
  EXPECT_GT(stopped.attempts, 0u);
  EXPECT_LT(stopped.attempts, ref.attempts);
  ASSERT_EQ(kConvergenceSamples, stopped.curve.size());
  EXPECT_LE(stopped.final_distance, stopping.stop_epsilon + 1e-9);

  EXPECT_EQ(stopped_stats[1].stopped_early, stopped.stopped_early);
  EXPECT_EQ(stopped_stats[1].attempts, stopped.attempts);
  EXPECT_EQ(stopped_stats[1].final_distance, stopped.final_distance);
  for (EdgeId e = 0; e < stopped_graphs[0].NumEdges(); ++e) {
    ASSERT_EQ(stopped_graphs[0].edge(e).u, stopped_graphs[1].edge(e).u)
        << "edge " << e;
    ASSERT_EQ(stopped_graphs[0].edge(e).v, stopped_graphs[1].edge(e).v)
        << "edge " << e;
  }
}

}  // namespace
}  // namespace sgr
