// Golden-fixture tests for the sgr-check determinism lint (util/srccheck).
//
// Each rule gets three fixtures: a violating snippet (asserting the exact
// rule id and position), an allow-annotated snippet (suppressed and
// summarized), and a clean snippet. The fixtures are fed to the checker as
// in-memory strings under paths chosen to exercise the per-rule path
// sanctions. A final test lints the real src/ tree with the checked-in
// baseline, so the suite fails the moment a contract violation lands.

#include "util/srccheck.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sgr {
namespace {

CheckResult CheckOne(const std::string& path, const std::string& content,
                     std::vector<std::string> baseline = {}) {
  SourceChecker checker;
  checker.SetBaseline(std::move(baseline));
  checker.Check(path, content);
  return checker.TakeResult();
}

std::string Describe(const CheckResult& result) {
  std::ostringstream out;
  PrintCheckReport(result, out);
  return out.str();
}

// ---------------------------------------------------------------------------
// nondet-random
// ---------------------------------------------------------------------------

TEST(SgrCheckRandomTest, FlagsRandCallWithPosition) {
  const CheckResult result = CheckOne("src/util/fixture.cc",
                                      "void f() {\n"
                                      "  rand();\n"
                                      "}\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "nondet-random");
  EXPECT_EQ(result.violations[0].line, 2u);
  EXPECT_EQ(result.violations[0].column, 3u);
  EXPECT_FALSE(result.Clean());
}

TEST(SgrCheckRandomTest, FlagsRandomDeviceAndSrand) {
  const CheckResult result = CheckOne("src/util/fixture.cc",
                                      "void f() {\n"
                                      "  std::random_device rd;\n"
                                      "  srand(7);\n"
                                      "}\n");
  ASSERT_EQ(result.violations.size(), 2u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "nondet-random");
  EXPECT_EQ(result.violations[0].line, 2u);
  EXPECT_EQ(result.violations[1].rule, "nondet-random");
  EXPECT_EQ(result.violations[1].line, 3u);
}

TEST(SgrCheckRandomTest, AllowOnLineAboveSuppressesAndIsSummarized) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "void f() {\n"
               "  // sgr-check: allow(nondet-random) demo reason\n"
               "  rand();\n"
               "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
  ASSERT_EQ(result.allows.size(), 1u);
  EXPECT_EQ(result.allows[0].rule, "nondet-random");
  EXPECT_EQ(result.allows[0].line, 2u);
  EXPECT_EQ(result.allows[0].reason, "demo reason");
  EXPECT_EQ(result.allows[0].suppressed, 1u);
}

TEST(SgrCheckRandomTest, AllowOnSameLineSuppresses) {
  const CheckResult result = CheckOne(
      "src/util/fixture.cc",
      "void f() {\n"
      "  rand();  // sgr-check: allow(nondet-random) same-line form\n"
      "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
  ASSERT_EQ(result.allows.size(), 1u);
  EXPECT_EQ(result.allows[0].suppressed, 1u);
}

TEST(SgrCheckRandomTest, MemberRandAndOtherNamespacesAreClean) {
  const CheckResult result = CheckOne("src/util/fixture.cc",
                                      "void f(Widget& w) {\n"
                                      "  w.rand();\n"
                                      "  mylib::rand();\n"
                                      "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
}

// ---------------------------------------------------------------------------
// nondet-clock
// ---------------------------------------------------------------------------

TEST(SgrCheckClockTest, FlagsTimeAndChronoClocksOutsideObs) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "void f() {\n"
               "  time(nullptr);\n"
               "  auto t = std::chrono::steady_clock::now();\n"
               "}\n");
  ASSERT_EQ(result.violations.size(), 2u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "nondet-clock");
  EXPECT_EQ(result.violations[0].line, 2u);
  EXPECT_EQ(result.violations[1].rule, "nondet-clock");
  EXPECT_EQ(result.violations[1].line, 3u);
}

TEST(SgrCheckClockTest, ObsOwnsTheClock) {
  const CheckResult result =
      CheckOne("src/obs/timer.cc",
               "void f() {\n"
               "  auto t = std::chrono::steady_clock::now();\n"
               "  clock();\n"
               "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
}

// ---------------------------------------------------------------------------
// nondet-env
// ---------------------------------------------------------------------------

TEST(SgrCheckEnvTest, FlagsGetenvOutsideRunnerEntryPoints) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "void f() { const char* v = getenv(\"SGR_X\"); (void)v; }\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "nondet-env");
}

TEST(SgrCheckEnvTest, RunnerEntryPointsMayReadEnv) {
  const std::string content =
      "void f() { const char* v = getenv(\"SGR_X\"); (void)v; }\n";
  EXPECT_TRUE(CheckOne("src/exp/runner.cc", content).Clean());
  EXPECT_TRUE(CheckOne("src/exp/datasets.cc", content).Clean());
}

// ---------------------------------------------------------------------------
// raw-rng
// ---------------------------------------------------------------------------

TEST(SgrCheckRawRngTest, FlagsEngineOutsideSanctionedHomes) {
  const CheckResult result = CheckOne("src/analysis/fixture.cc",
                                      "void f() {\n"
                                      "  std::mt19937 gen(42);\n"
                                      "  (void)gen;\n"
                                      "}\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "raw-rng");
  EXPECT_EQ(result.violations[0].line, 2u);
}

TEST(SgrCheckRawRngTest, UtilRngAndExpParallelAreSanctioned) {
  const std::string content = "void f() { std::mt19937_64 g(1); (void)g; }\n";
  EXPECT_TRUE(CheckOne("src/util/rng.cc", content).Clean());
  EXPECT_TRUE(CheckOne("src/util/rng.h", content).Clean());
  EXPECT_TRUE(CheckOne("src/exp/parallel.cc", content).Clean());
}

// ---------------------------------------------------------------------------
// global-state
// ---------------------------------------------------------------------------

TEST(SgrCheckGlobalStateTest, FlagsMutableNamespaceScopeVariable) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc", "int counter = 0;\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "global-state");
  EXPECT_EQ(result.violations[0].line, 1u);
}

TEST(SgrCheckGlobalStateTest, FlagsMutableStaticLocal) {
  const CheckResult result = CheckOne("src/util/fixture.cc",
                                      "int f() {\n"
                                      "  static int calls = 0;\n"
                                      "  return ++calls;\n"
                                      "}\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "global-state");
  EXPECT_EQ(result.violations[0].line, 2u);
}

TEST(SgrCheckGlobalStateTest, ConstGlobalsAndFunctionsAreClean) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "const int kLimit = 8;\n"
               "constexpr double kScale = 0.5;\n"
               "int Twice(int x) { return 0; }\n"
               "int g() {\n"
               "  static const int kTable = 3;\n"
               "  return kTable;\n"
               "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
}

TEST(SgrCheckGlobalStateTest, ObsRegistriesAreSanctioned) {
  const CheckResult result = CheckOne("src/obs/metrics.cc",
                                      "int f() {\n"
                                      "  static int calls = 0;\n"
                                      "  return ++calls;\n"
                                      "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
}

// ---------------------------------------------------------------------------
// float-drift
// ---------------------------------------------------------------------------

TEST(SgrCheckFloatTest, FlagsFloatInDoubleOnlyLayers) {
  const std::string content = "void f() { float x = 0; (void)x; }\n";
  for (const char* path :
       {"src/analysis/fixture.cc", "src/estimation/fixture.cc",
        "src/restore/fixture.cc", "src/dk/fixture.cc"}) {
    const CheckResult result = CheckOne(path, content);
    ASSERT_EQ(result.violations.size(), 1u) << path << "\n"
                                            << Describe(result);
    EXPECT_EQ(result.violations[0].rule, "float-drift") << path;
  }
}

TEST(SgrCheckFloatTest, DoubleIsCleanAndOtherLayersMayFloat) {
  EXPECT_TRUE(CheckOne("src/estimation/fixture.cc",
                       "void f() { double x = 0; (void)x; }\n")
                  .Clean());
  EXPECT_TRUE(
      CheckOne("src/util/fixture.cc", "void f() { float x = 0; (void)x; }\n")
          .Clean());
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

TEST(SgrCheckUnorderedTest, FlagsOrderDependentRangeFor) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "void f(std::vector<int>& out) {\n"
               "  std::unordered_map<int, int> counts;\n"
               "  for (const auto& [k, v] : counts) {\n"
               "    out.push_back(k);\n"
               "  }\n"
               "}\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "unordered-iter");
  EXPECT_EQ(result.violations[0].line, 3u);
  EXPECT_EQ(result.violations[0].column, 3u);
}

TEST(SgrCheckUnorderedTest, FlagsClassicIteratorLoop) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "void f(std::vector<int>& out) {\n"
               "  std::unordered_set<int> seen;\n"
               "  for (auto it = seen.begin(); it != seen.end(); ++it) {\n"
               "    out.push_back(*it);\n"
               "  }\n"
               "}\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "unordered-iter");
}

TEST(SgrCheckUnorderedTest, OrderIndependentBodyPassesAutomatically) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "int f(const std::unordered_map<int, int>& counts) {\n"
               "  int sum = 0;\n"
               "  int top = 0;\n"
               "  for (const auto& [k, v] : counts) {\n"
               "    sum += v;\n"
               "    top = std::max(top, v);\n"
               "    if (v == 0) continue;\n"
               "  }\n"
               "  return sum + top;\n"
               "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
}

TEST(SgrCheckUnorderedTest, UniformPredicateReturnPasses) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "bool f(const std::unordered_map<int, int>& counts) {\n"
               "  for (const auto& [k, v] : counts) {\n"
               "    if (v < 0) return true;\n"
               "  }\n"
               "  return false;\n"
               "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
}

TEST(SgrCheckUnorderedTest, ReturnAfterAccumulationIsFlagged) {
  // An early return after partial accumulation exposes iteration order.
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "bool f(const std::unordered_map<int, int>& counts) {\n"
               "  int sum = 0;\n"
               "  for (const auto& [k, v] : counts) {\n"
               "    sum += v;\n"
               "    if (sum > 10) return true;\n"
               "  }\n"
               "  return false;\n"
               "}\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "unordered-iter");
}

TEST(SgrCheckUnorderedTest, SortedKeysRangeIsSanctioned) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "void f(const std::unordered_map<int, int>& counts,\n"
               "       std::vector<int>& out) {\n"
               "  for (const int k : SortedKeys(counts)) {\n"
               "    out.push_back(k);\n"
               "  }\n"
               "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
}

TEST(SgrCheckUnorderedTest, AccessorReturningUnorderedIsTracked) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "struct Est {\n"
               "  const std::unordered_map<int, double>& values() const;\n"
               "};\n"
               "void f(const Est& e, std::vector<int>& out) {\n"
               "  for (const auto& [k, v] : e.values()) {\n"
               "    out.push_back(k);\n"
               "  }\n"
               "}\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "unordered-iter");
  EXPECT_EQ(result.violations[0].line, 5u);
}

TEST(SgrCheckUnorderedTest, AccessorNameDoesNotTaintPlainVariables) {
  // `values` is registered as an accessor (declarator followed by `(`):
  // an unrelated vector of the same name must not trip the rule.
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "struct Est {\n"
               "  const std::unordered_map<int, double>& values() const;\n"
               "};\n"
               "void f(const std::vector<int>& values,\n"
               "       std::vector<int>& out) {\n"
               "  for (const int v : values) {\n"
               "    out.push_back(v);\n"
               "  }\n"
               "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
}

TEST(SgrCheckUnorderedTest, AliasOfUnorderedIsTracked) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "using NodeMap = std::unordered_map<int, int>;\n"
               "void f(const NodeMap& m, std::vector<int>& out) {\n"
               "  for (const auto& [k, v] : m) {\n"
               "    out.push_back(k);\n"
               "  }\n"
               "}\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "unordered-iter");
}

TEST(SgrCheckUnorderedTest, ContainerOfUnorderedIsTrackedOnSubscript) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "void f(const std::vector<std::unordered_map<int, int> >& adj,\n"
               "       std::vector<int>& out) {\n"
               "  for (const auto& [k, v] : adj[0]) {\n"
               "    out.push_back(k);\n"
               "  }\n"
               "}\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "unordered-iter");
}

TEST(SgrCheckUnorderedTest, DeclarationsResolveAcrossFiles) {
  // The accessor is declared in a header preloaded first; the loop lives
  // in another translation unit.
  SourceChecker checker;
  checker.Preload("src/estimation/est.h",
                  "struct Est {\n"
                  "  const std::unordered_map<int, double>& values() const;\n"
                  "};\n");
  checker.Check("src/restore/user.cc",
                "void f(const Est& e, std::vector<int>& out) {\n"
                "  for (const auto& [k, v] : e.values()) {\n"
                "    out.push_back(k);\n"
                "  }\n"
                "}\n");
  const CheckResult result = checker.TakeResult();
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "unordered-iter");
  EXPECT_EQ(result.violations[0].file, "src/restore/user.cc");
}

TEST(SgrCheckUnorderedTest, OrderedContainersAreClean) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "void f(const std::map<int, int>& counts,\n"
               "       std::vector<int>& out) {\n"
               "  for (const auto& [k, v] : counts) {\n"
               "    out.push_back(k);\n"
               "  }\n"
               "}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
}

// ---------------------------------------------------------------------------
// Escape hatch bookkeeping: unused allows, wrong-rule allows
// ---------------------------------------------------------------------------

TEST(SgrCheckAllowTest, UnusedAllowIsItselfAViolation) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "// sgr-check: allow(nondet-random) nothing here\n"
               "void f() {}\n");
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "unused-allow");
  EXPECT_EQ(result.violations[0].line, 1u);
  ASSERT_EQ(result.allows.size(), 1u);
  EXPECT_EQ(result.allows[0].suppressed, 0u);
}

TEST(SgrCheckAllowTest, WrongRuleAllowDoesNotSuppress) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "void f() {\n"
               "  // sgr-check: allow(nondet-clock) wrong rule id\n"
               "  rand();\n"
               "}\n");
  // Both the original finding and the stale annotation are reported.
  ASSERT_EQ(result.violations.size(), 2u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "unused-allow");
  EXPECT_EQ(result.violations[0].line, 2u);
  EXPECT_EQ(result.violations[1].rule, "nondet-random");
  EXPECT_EQ(result.violations[1].line, 3u);
}

TEST(SgrCheckAllowTest, ProseMentioningTheSyntaxIsNotAnAnnotation) {
  // The marker must be the first thing in the comment; doc prose that
  // merely quotes the syntax (like srccheck.h itself) is ignored.
  const CheckResult result = CheckOne(
      "src/util/fixture.cc",
      "// Escape hatch: write // sgr-check: allow(<rule>) <reason> above.\n"
      "void f() {}\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
  EXPECT_TRUE(result.allows.empty());
}

// ---------------------------------------------------------------------------
// Baseline: grandfathering, suffix matching, stale entries
// ---------------------------------------------------------------------------

TEST(SgrCheckBaselineTest, BaselineEntryGrandfathersFinding) {
  const CheckResult result =
      CheckOne("src/util/legacy.cc", "void f() { rand(); }\n",
               {"util/legacy.cc:nondet-random"});
  EXPECT_TRUE(result.Clean()) << Describe(result);
  ASSERT_EQ(result.grandfathered.size(), 1u);
  EXPECT_EQ(result.grandfathered[0].rule, "nondet-random");
  EXPECT_TRUE(result.stale_baseline.empty());
}

TEST(SgrCheckBaselineTest, SuffixMatchRespectsComponentBoundaries) {
  // "legacy.cc" must not match "mylegacy.cc".
  const CheckResult result =
      CheckOne("src/util/mylegacy.cc", "void f() { rand(); }\n",
               {"legacy.cc:nondet-random"});
  ASSERT_EQ(result.violations.size(), 1u) << Describe(result);
  EXPECT_EQ(result.violations[0].rule, "nondet-random");
  ASSERT_EQ(result.stale_baseline.size(), 1u);
  EXPECT_EQ(result.stale_baseline[0], "legacy.cc:nondet-random");
}

TEST(SgrCheckBaselineTest, StaleEntryIsWarnedButNonFatal) {
  const CheckResult result = CheckOne("src/util/fixture.cc", "void f() {}\n",
                                      {"util/nothing.cc:nondet-clock"});
  EXPECT_TRUE(result.Clean()) << Describe(result);
  ASSERT_EQ(result.stale_baseline.size(), 1u);
  EXPECT_EQ(result.stale_baseline[0], "util/nothing.cc:nondet-clock");
}

TEST(SgrCheckBaselineTest, MissingBaselineFileIsEmpty) {
  EXPECT_TRUE(LoadCheckBaseline("/nonexistent/sgr-baseline.txt").empty());
}

// ---------------------------------------------------------------------------
// Lexer immunity: strings, comments, preprocessor
// ---------------------------------------------------------------------------

TEST(SgrCheckLexerTest, StringsCommentsAndPreprocessorProduceNoFindings) {
  const CheckResult result = CheckOne(
      "src/util/fixture.cc",
      "#include <ctime>  // time() lives here\n"
      "// rand() in a comment\n"
      "/* srand(1); getenv(\"X\"); std::mt19937 g; */\n"
      "const char* kMsg = \"rand() time(nullptr) float\";\n"
      "const char* kRaw = R\"(std::random_device rd; clock();)\";\n");
  EXPECT_TRUE(result.Clean()) << Describe(result);
}

// ---------------------------------------------------------------------------
// Report formatting
// ---------------------------------------------------------------------------

TEST(SgrCheckReportTest, PrintsDiagnosticsAllowsAndSummary) {
  const CheckResult result =
      CheckOne("src/util/fixture.cc",
               "void f() {\n"
               "  rand();\n"
               "  // sgr-check: allow(nondet-clock) metered by hand\n"
               "  clock();\n"
               "}\n");
  const std::string report = Describe(result);
  EXPECT_NE(report.find("src/util/fixture.cc:2:3: nondet-random:"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("sanctioned exceptions"), std::string::npos);
  EXPECT_NE(report.find("allow(nondet-clock): metered by hand"),
            std::string::npos);
  EXPECT_NE(report.find("sgr-check: 1 violation(s), 0 baselined, "
                        "1 sanctioned exception(s)"),
            std::string::npos)
      << report;
}

// ---------------------------------------------------------------------------
// The self-test: the real source tree is clean under the checked-in
// baseline. This is the same gate CI's static-analysis job enforces.
// ---------------------------------------------------------------------------

TEST(SgrCheckTreeTest, RealSourceTreeIsClean) {
  const std::vector<std::string> baseline =
      LoadCheckBaseline(SGR_SOURCE_DIR "/tools/sgr_check_baseline.txt");
  const CheckResult result =
      CheckSourceTree({SGR_SOURCE_DIR "/src"}, baseline);
  EXPECT_TRUE(result.Clean()) << Describe(result);
  EXPECT_TRUE(result.stale_baseline.empty()) << Describe(result);
  // The sweep left a deliberate catalogue of sanctioned exceptions; every
  // one of them must still be suppressing something (no rot).
  for (const CheckAllow& allow : result.allows) {
    EXPECT_GT(allow.suppressed, 0u)
        << allow.file << ":" << allow.line << " allow(" << allow.rule << ")";
  }
}

}  // namespace
}  // namespace sgr
