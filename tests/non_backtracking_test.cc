#include "sampling/non_backtracking.h"

#include <gtest/gtest.h>

#include "estimation/estimators.h"
#include "graph/generators.h"
#include "sampling/random_walk.h"

namespace sgr {
namespace {

TEST(NonBacktrackingTest, NeverBacktracksOnDegreeTwoPlus) {
  Rng gen_rng(1);
  const Graph g = GeneratePowerlawCluster(400, 3, 0.4, gen_rng);
  // Minimum degree 3: no backtracking should ever occur.
  QueryOracle oracle(g);
  Rng rng(2);
  const SamplingList list =
      NonBacktrackingWalkSample(oracle, 0, 100, rng);
  for (std::size_t i = 2; i < list.Length(); ++i) {
    EXPECT_NE(list.visit_sequence[i], list.visit_sequence[i - 2])
        << "backtracked at step " << i;
  }
}

TEST(NonBacktrackingTest, BacktracksOnlyAtLeaves) {
  // On a path, interior nodes force forward motion; the walk must sweep
  // to an end before turning around.
  const Graph g = GeneratePath(10);
  QueryOracle oracle(g);
  Rng rng(3);
  const SamplingList list =
      NonBacktrackingWalkSample(oracle, 5, 10, rng, 200);
  for (std::size_t i = 2; i < list.Length(); ++i) {
    if (list.visit_sequence[i] == list.visit_sequence[i - 2]) {
      // Turning around is only legal at the path's endpoints.
      const NodeId turn = list.visit_sequence[i - 1];
      EXPECT_EQ(g.Degree(turn), 1u) << "illegal backtrack at step " << i;
    }
  }
}

TEST(NonBacktrackingTest, ReachesBudget) {
  Rng gen_rng(4);
  const Graph g = GeneratePowerlawCluster(500, 3, 0.4, gen_rng);
  QueryOracle oracle(g);
  Rng rng(5);
  const SamplingList list =
      NonBacktrackingWalkSample(oracle, 0, 80, rng);
  EXPECT_EQ(list.NumQueried(), 80u);
  EXPECT_TRUE(list.is_walk);
}

TEST(NonBacktrackingTest, CoversFasterThanSimpleWalk) {
  // Query efficiency is NBRW's selling point: to query the same number of
  // distinct nodes it needs (on average) fewer steps than the simple walk.
  Rng gen_rng(6);
  const Graph g = GeneratePowerlawCluster(1000, 3, 0.4, gen_rng);
  double srw_steps = 0.0;
  double nbrw_steps = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    {
      QueryOracle oracle(g);
      Rng rng(100 + seed);
      srw_steps += static_cast<double>(
          RandomWalkSample(oracle, 0, 200, rng).Length());
    }
    {
      QueryOracle oracle(g);
      Rng rng(100 + seed);
      nbrw_steps += static_cast<double>(
          NonBacktrackingWalkSample(oracle, 0, 200, rng).Length());
    }
  }
  EXPECT_LT(nbrw_steps, srw_steps);
}

TEST(NonBacktrackingTest, DegreeEstimatorStillUnbiased) {
  // The node-level stationary distribution of NBRW is still
  // degree-proportional, so k̂̄ converges to the true average degree.
  Rng gen_rng(7);
  const Graph g = GeneratePowerlawCluster(1500, 4, 0.3, gen_rng);
  QueryOracle oracle(g);
  Rng rng(8);
  const SamplingList list =
      NonBacktrackingWalkSample(oracle, 0, 700, rng);
  EXPECT_NEAR(EstimateAverageDegree(list), g.AverageDegree(),
              0.15 * g.AverageDegree());
}

TEST(NonBacktrackingTest, CorrectedClusteringEstimatorConverges) {
  // With the NBRW normalizer (divide by k instead of k-1) the clustering
  // estimate converges to the truth; on K_7 that is exactly 1, while the
  // uncorrected SRW normalizer would report (k-1)/k * ... a biased value.
  const Graph g = GenerateComplete(7);
  QueryOracle oracle(g);
  Rng rng(9);
  const SamplingList list = NonBacktrackingWalkSample(
      oracle, 0, /*unreachable*/ 8, rng, /*max_steps=*/40000);
  EstimatorOptions corrected;
  corrected.walk_type = WalkType::kNonBacktracking;
  const LocalEstimates est = EstimateLocalProperties(list, corrected);
  ASSERT_GE(est.clustering.size(), 7u);
  EXPECT_NEAR(est.clustering[6], 1.0, 0.03);

  EstimatorOptions uncorrected;  // defaults to kSimple
  const LocalEstimates biased = EstimateLocalProperties(list, uncorrected);
  // Uncorrected: off by k/(k-1) = 6/5.
  EXPECT_NEAR(biased.clustering[6], 1.2, 0.05);
}

}  // namespace
}  // namespace sgr
