// Fuzz-style robustness suite for the JSON layer (util/json.h) and the
// sgr-report/1 documents built on it: seeded-random document generation
// (deterministic, so failures reproduce), parse -> serialize -> re-parse
// byte-equality, and regression tests for the parser's rejection of
// truncated / deep-nested / duplicate-key inputs with line:column
// assertions.

#include "util/json.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sgr {
namespace {

/// Deterministic pseudo-random document generator. Depth-bounded,
/// reachable kinds cover the full value space the report writer emits:
/// null, bools, finite and non-finite numbers, strings with escapes and
/// multi-byte UTF-8, nested arrays and objects (unique keys — the parser
/// rejects duplicates by design).
class DocumentFuzzer {
 public:
  explicit DocumentFuzzer(std::uint64_t seed) : rng_(seed) {}

  Json Value(int depth) {
    // Leaves only at the depth limit; containers get rarer deeper down.
    const std::size_t kind =
        rng_.NextIndex(depth >= 4 ? 4 : 6);
    switch (kind) {
      case 0: return Json::Null();
      case 1: return Json::Bool(rng_.NextIndex(2) == 0);
      case 2: return Json::Number(Number());
      case 3: return Json::String(String());
      case 4: {
        Json array = Json::Array();
        const std::size_t size = rng_.NextIndex(4);
        for (std::size_t i = 0; i < size; ++i) {
          array.Push(Value(depth + 1));
        }
        return array;
      }
      default: {
        Json object = Json::Object();
        const std::size_t size = rng_.NextIndex(4);
        for (std::size_t i = 0; i < size; ++i) {
          object.Set(String() + "#" + std::to_string(i), Value(depth + 1));
        }
        return object;
      }
    }
  }

  Json Document() {
    // Roots are always containers, so every strict prefix of the dump is
    // malformed — which is what the truncation test relies on.
    Json root = Json::Object();
    const std::size_t size = 1 + rng_.NextIndex(4);
    for (std::size_t i = 0; i < size; ++i) {
      root.Set("k" + std::to_string(i), Value(1));
    }
    return root;
  }

 private:
  double Number() {
    switch (rng_.NextIndex(8)) {
      case 0: return 0.0;
      case 1: return -0.0;
      case 2: return std::numeric_limits<double>::infinity();
      case 3: return -std::numeric_limits<double>::infinity();
      case 4: return std::nan("");
      case 5: return static_cast<double>(rng_.NextIndex(1 << 30)) *
                     (rng_.NextIndex(2) == 0 ? 1.0 : -1.0);
      case 6: return 5e-324 * static_cast<double>(1 + rng_.NextIndex(100));
      default:
        // A full-entropy finite double via mantissa/exponent dice.
        return std::ldexp(static_cast<double>(rng_.NextIndex(1ULL << 53)),
                          static_cast<int>(rng_.NextIndex(60)) - 30) *
               (rng_.NextIndex(2) == 0 ? 1.0 : -1.0);
    }
  }

  std::string String() {
    static const char* kPieces[] = {"a",  "\"", "\\", "\n", "\t",
                                    "é",  "€",  "😀", " ",  "\x01",
                                    "nested", "/"};
    std::string out;
    const std::size_t size = rng_.NextIndex(6);
    for (std::size_t i = 0; i < size; ++i) {
      out += kPieces[rng_.NextIndex(sizeof(kPieces) / sizeof(*kPieces))];
    }
    return out;
  }

  Rng rng_;
};

TEST(JsonFuzzTest, RandomDocumentsRoundTripByteIdentically) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    DocumentFuzzer fuzzer(seed);
    const Json document = fuzzer.Document();
    for (const int indent : {0, 2, 4}) {
      const std::string dumped = document.Dump(indent);
      Json reparsed;
      try {
        reparsed = Json::Parse(dumped);
      } catch (const JsonError& e) {
        FAIL() << "seed " << seed << " indent " << indent
               << ": writer emitted unparseable bytes: " << e.what()
               << "\n" << dumped;
      }
      // parse -> serialize -> re-parse: byte equality both hops. (NaN
      // != NaN under operator==, so the byte-level check is the one
      // that covers every generated document.)
      EXPECT_EQ(reparsed.Dump(indent), dumped)
          << "seed " << seed << " indent " << indent;
      EXPECT_EQ(Json::Parse(reparsed.Dump(indent)).Dump(indent), dumped)
          << "seed " << seed << " indent " << indent;
    }
  }
}

TEST(JsonFuzzTest, TruncatedDocumentsAlwaysRejectedNeverCrash) {
  // Every strict prefix of a container-rooted document is malformed: the
  // parser must throw JsonError (with a location) rather than return a
  // value or crash. Dense sweep on a small document, sampled sweep on
  // larger fuzzed ones.
  const std::string small =
      R"({"a": [1, true, "x\n"], "b": {"c": NaN}})";
  for (std::size_t cut = 0; cut < small.size(); ++cut) {
    try {
      Json::Parse(small.substr(0, cut));
      FAIL() << "prefix of length " << cut << " parsed";
    } catch (const JsonError& e) {
      EXPECT_NE(std::string(e.what()).find("JSON parse error at "),
                std::string::npos)
          << e.what();
    }
  }
  for (std::uint64_t seed = 300; seed < 320; ++seed) {
    DocumentFuzzer fuzzer(seed);
    const std::string dumped = fuzzer.Document().Dump(2);
    for (std::size_t cut = 0; cut < dumped.size();
         cut += 1 + cut / 7) {  // sampled cuts, denser near the front
      EXPECT_THROW(Json::Parse(dumped.substr(0, cut)), JsonError)
          << "seed " << seed << " cut " << cut;
    }
  }
}

TEST(JsonFuzzTest, DeepNestingRejectedWithLocation) {
  // The depth guard fires while *entering* a value: the root sits at
  // depth 0, so 257 brackets still parse and the 258th is the first one
  // rejected. The error must point at the line and column of that
  // bracket — line 1, column 258.
  std::string ok(257, '[');
  ok += std::string(257, ']');
  EXPECT_NO_THROW(Json::Parse(ok));

  std::string too_deep(258, '[');
  too_deep += std::string(258, ']');
  try {
    Json::Parse(too_deep);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nesting deeper than 256 levels"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("at 1:258"), std::string::npos) << what;
  }
}

TEST(JsonFuzzTest, DuplicateKeysRejectedWithLocation) {
  // The duplicate sits on line 3; the parser names the key and the
  // line:column right after the offending key string.
  const std::string text = "{\n  \"a\": 1,\n  \"a\": 2\n}";
  try {
    Json::Parse(text);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate object key 'a'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("at 3:"), std::string::npos) << what;
  }
  // Same check in compact form, nested one level down.
  try {
    Json::Parse(R"({"outer": {"k": 1, "k": 2}})");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key 'k'"),
              std::string::npos)
        << e.what();
  }
}

TEST(JsonFuzzTest, FuzzedReportDocumentsRoundTripThroughTheReportShape) {
  // sgr-report/1-shaped documents with fuzzed numeric payloads: the
  // shape the scenario engine writes and `sgr diff` reads must round
  // trip byte-identically, non-finite distances included.
  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    DocumentFuzzer fuzzer(seed);
    Json report = Json::Object();
    report.Set("schema", Json::String("sgr-report/1"));
    report.Set("tool", Json::String("fuzz"));
    report.Set("config", fuzzer.Document());
    Json cells = Json::Array();
    for (int c = 0; c < 3; ++c) {
      Json cell = Json::Object();
      cell.Set("dataset", Json::String("d" + std::to_string(c)));
      cell.Set("query_fraction", Json::Number(0.1 * (c + 1)));
      cell.Set("metrics", fuzzer.Value(2));
      cells.Push(std::move(cell));
    }
    report.Set("cells", std::move(cells));
    const std::string dumped = report.Dump(2);
    EXPECT_EQ(Json::Parse(dumped).Dump(2), dumped) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sgr
