#include "util/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace sgr {
namespace {

TEST(JsonParseTest, Primitives) {
  EXPECT_TRUE(Json::Parse("null").IsNull());
  EXPECT_TRUE(Json::Parse("true").AsBool());
  EXPECT_FALSE(Json::Parse("false").AsBool());
  EXPECT_DOUBLE_EQ(Json::Parse("0").AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(Json::Parse("-42").AsNumber(), -42.0);
  EXPECT_DOUBLE_EQ(Json::Parse("3.5").AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e-3").AsNumber(), 1e-3);
  EXPECT_DOUBLE_EQ(Json::Parse("2E+2").AsNumber(), 200.0);
  EXPECT_EQ(Json::Parse("\"hi\"").AsString(), "hi");
}

TEST(JsonParseTest, NonFiniteLiterals) {
  EXPECT_TRUE(std::isinf(Json::Parse("Infinity").AsNumber()));
  EXPECT_GT(Json::Parse("Infinity").AsNumber(), 0.0);
  EXPECT_LT(Json::Parse("-Infinity").AsNumber(), 0.0);
  EXPECT_TRUE(std::isnan(Json::Parse("NaN").AsNumber()));
}

TEST(JsonParseTest, Structures) {
  const Json doc = Json::Parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(doc.IsObject());
  ASSERT_EQ(doc.Size(), 2u);
  const Json* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->IsArray());
  ASSERT_EQ(a->Size(), 3u);
  EXPECT_DOUBLE_EQ(a->Items()[0].AsNumber(), 1.0);
  EXPECT_TRUE(a->Items()[2].Find("b")->AsBool());
  EXPECT_TRUE(doc.Find("c")->IsNull());
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonParseTest, ObjectOrderPreserved) {
  const Json doc = Json::Parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(doc.ObjectMembers().size(), 3u);
  EXPECT_EQ(doc.ObjectMembers()[0].first, "z");
  EXPECT_EQ(doc.ObjectMembers()[1].first, "a");
  EXPECT_EQ(doc.ObjectMembers()[2].first, "m");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Json::Parse(R"("a\"b\\c\/d")").AsString(), "a\"b\\c/d");
  EXPECT_EQ(Json::Parse(R"("\b\f\n\r\t")").AsString(), "\b\f\n\r\t");
  EXPECT_EQ(Json::Parse(R"("A")").AsString(), "A");
  EXPECT_EQ(Json::Parse(R"("é")").AsString(), "\xc3\xa9");
  EXPECT_EQ(Json::Parse(R"("€")").AsString(), "\xe2\x82\xac");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::Parse(R"("😀")").AsString(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, MalformedRejected) {
  const char* cases[] = {
      "",             // empty input
      "{",            // unterminated object
      "[1,",          // unterminated array
      "[1,]",         // trailing comma
      R"({"a":})",    // missing value
      R"({"a" 1})",   // missing colon
      "tru",          // bad literal
      "\"abc",        // unterminated string
      R"("\x")",      // invalid escape
      R"("\u12")",    // truncated \u escape
      R"("\ud83d")",  // lone high surrogate
      R"("\ude00")",  // lone low surrogate
      "01",           // leading zero
      "1.",           // digit required after '.'
      "1e",           // digit required in exponent
      "-",            // bare minus
      "1 2",          // trailing garbage
      "{} x",         // trailing garbage after object
      "infinity",     // wrong case
      R"({"a":1,"a":2})",  // duplicate key
      "\"a\tb\"",     // unescaped control character
  };
  for (const char* text : cases) {
    EXPECT_THROW(Json::Parse(text), JsonError) << "input: " << text;
  }
}

TEST(JsonParseTest, DepthLimit) {
  std::string deep_ok(100, '[');
  deep_ok += std::string(100, ']');
  EXPECT_NO_THROW(Json::Parse(deep_ok));

  std::string too_deep(300, '[');
  too_deep += std::string(300, ']');
  EXPECT_THROW(Json::Parse(too_deep), JsonError);
}

TEST(JsonParseTest, ErrorsCarryLocation) {
  try {
    Json::Parse("{\n  \"a\": tru\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos)
        << e.what();
  }
}

TEST(JsonDumpTest, CompactAndPretty) {
  Json doc = Json::Object();
  doc.Set("a", Json::Number(1.0));
  Json arr = Json::Array();
  arr.Push(Json::Bool(true));
  arr.Push(Json::Null());
  doc.Set("b", std::move(arr));
  EXPECT_EQ(doc.Dump(0), R"({"a":1,"b":[true,null]})");
  EXPECT_EQ(doc.Dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}");
}

TEST(JsonDumpTest, EscapesControlCharacters) {
  EXPECT_EQ(Json::String("a\"b\\c\nd\x01").Dump(0),
            "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(JsonDumpTest, IntegersPrintWithoutExponent) {
  EXPECT_EQ(Json::Number(0.0).Dump(0), "0");
  EXPECT_EQ(Json::Number(-7.0).Dump(0), "-7");
  EXPECT_EQ(Json::Number(123456789.0).Dump(0), "123456789");
}

TEST(JsonDumpTest, NonFiniteLiterals) {
  EXPECT_EQ(Json::Number(std::numeric_limits<double>::infinity()).Dump(0),
            "Infinity");
  EXPECT_EQ(Json::Number(-std::numeric_limits<double>::infinity()).Dump(0),
            "-Infinity");
  EXPECT_EQ(Json::Number(std::nan("")).Dump(0), "NaN");
}

TEST(JsonRoundTripTest, DocumentSurvivesDumpParse) {
  const std::string text =
      R"({"name":"x","values":[0.1,-2.5e-7,3,true,null,"s\n\"t\""],)"
      R"("nested":{"inf":Infinity,"empty":[],"eobj":{}}})";
  const Json parsed = Json::Parse(text);
  const Json reparsed = Json::Parse(parsed.Dump(2));
  EXPECT_EQ(parsed, reparsed);
  // Serialization is deterministic: dumping again yields the same bytes.
  EXPECT_EQ(parsed.Dump(2), reparsed.Dump(2));
}

TEST(JsonRoundTripTest, SeventeenDigitsRoundTripExactly) {
  for (double value : {0.1, 1.0 / 3.0, 0.1 + 0.2, 6.02214076e23,
                       -1.7976931348623157e308, 5e-324}) {
    const Json parsed = Json::Parse(Json::Number(value).Dump(0));
    EXPECT_EQ(parsed.AsNumber(), value);
  }
}

TEST(JsonMutationTest, SetFindRemove) {
  Json doc = Json::Object();
  doc.Set("a", Json::Number(1.0));
  doc.Set("b", Json::Number(2.0));
  doc.Set("a", Json::Number(3.0));  // replace keeps position
  ASSERT_EQ(doc.Size(), 2u);
  EXPECT_EQ(doc.ObjectMembers()[0].first, "a");
  EXPECT_DOUBLE_EQ(doc.Find("a")->AsNumber(), 3.0);
  EXPECT_TRUE(doc.Remove("a"));
  EXPECT_FALSE(doc.Remove("a"));
  EXPECT_EQ(doc.Find("a"), nullptr);
}

TEST(JsonMutationTest, KindMismatchThrows) {
  const Json number = Json::Number(1.0);
  EXPECT_THROW(number.AsBool(), JsonError);
  EXPECT_THROW(number.AsString(), JsonError);
  EXPECT_THROW(number.Items(), JsonError);
  EXPECT_THROW(number.ObjectMembers(), JsonError);
  Json array = Json::Array();
  EXPECT_THROW(array.Set("k", Json::Null()), JsonError);
  Json object = Json::Object();
  EXPECT_THROW(object.Push(Json::Null()), JsonError);
}

TEST(JsonEqualityTest, OrderSensitiveObjects) {
  const Json a = Json::Parse(R"({"x":1,"y":2})");
  const Json b = Json::Parse(R"({"y":2,"x":1})");
  const Json c = Json::Parse(R"({"x":1,"y":2})");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace sgr
