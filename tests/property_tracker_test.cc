#include "analysis/property_tracker.h"

#include <array>
#include <cstdint>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/properties.h"
#include "dk/dk_extract.h"
#include "graph/components.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace sgr {
namespace {

/// A degree-preserving 2-swap in the rewiring engines' convention:
/// remove (i, j) and (a, b), add (i, b) and (a, j).
struct Swap {
  EdgeId e1 = 0;
  EdgeId e2 = 0;
  NodeId i = 0;
  NodeId j = 0;
  NodeId a = 0;
  NodeId b = 0;
};

/// Draws one candidate swap the way the rewirer does: two distinct edge
/// ids, then a uniformly random endpoint orientation with deg(i) ==
/// deg(a). Returns nullopt when the draw yields no degree-matched
/// orientation (or a no-op swap, which the engines also filter).
std::optional<Swap> DrawSwap(const Graph& g, Rng& rng) {
  if (g.NumEdges() < 2) return std::nullopt;
  const EdgeId e1 = rng.NextIndex(g.NumEdges());
  const EdgeId e2 = rng.NextIndex(g.NumEdges());
  if (e1 == e2) return std::nullopt;
  const Edge first = g.edge(e1);
  const Edge second = g.edge(e2);
  std::array<Swap, 4> options{};
  std::size_t count = 0;
  for (int flip1 = 0; flip1 < 2; ++flip1) {
    for (int flip2 = 0; flip2 < 2; ++flip2) {
      Swap swap;
      swap.e1 = e1;
      swap.e2 = e2;
      swap.i = flip1 != 0 ? first.v : first.u;
      swap.j = flip1 != 0 ? first.u : first.v;
      swap.a = flip2 != 0 ? second.v : second.u;
      swap.b = flip2 != 0 ? second.u : second.v;
      if (g.Degree(swap.i) != g.Degree(swap.a)) continue;
      options[count++] = swap;
    }
  }
  if (count == 0) return std::nullopt;
  const Swap swap = options[rng.NextIndex(count)];
  if (swap.i == swap.a || swap.j == swap.b) return std::nullopt;
  return swap;
}

/// Mirrors one committed swap into both the graph and the tracker.
void CommitSwap(Graph& g, PropertyTracker& tracker, const Swap& swap) {
  g.ReplaceEdge(swap.e1, swap.i, swap.b);
  g.ReplaceEdge(swap.e2, swap.a, swap.j);
  tracker.ApplySwap(swap.i, swap.j, swap.a, swap.b);
}

void ExpectVectorsEqual(const std::vector<double>& expected,
                        const std::vector<double>& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what << " size";
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_NEAR(expected[k], actual[k], 1e-12)
        << what << "[" << k << "]";
  }
}

/// The full cross-validation: every tracked quantity against the
/// from-scratch analyzers on the current graph.
void ExpectMatchesFromScratch(const Graph& g,
                              const PropertyTracker& tracker,
                              const std::string& where) {
  SCOPED_TRACE(where);
  const GraphProperties snapshot = tracker.Snapshot();
  EXPECT_EQ(g.NumNodes(), snapshot.num_nodes);
  const CsrGraph csr(g);
  EXPECT_EQ(csr.AverageDegree(), snapshot.average_degree);
  ExpectVectorsEqual(DegreeDistribution(g), snapshot.degree_dist, "P(k)");
  ExpectVectorsEqual(NeighborConnectivity(g),
                     snapshot.neighbor_connectivity, "knn(k)");
  EXPECT_NEAR(NetworkClusteringCoefficient(g), snapshot.clustering_global,
              1e-12);
  EXPECT_NEAR(snapshot.clustering_global, tracker.ClusteringGlobal(),
              1e-12);
  ExpectVectorsEqual(ExtractDegreeDependentClustering(g),
                     snapshot.clustering_by_degree, "c(k)");
  ExpectVectorsEqual(EdgewiseSharedPartners(g), snapshot.esp_dist, "P(s)");
  const ComponentsResult components = ConnectedComponents(g);
  EXPECT_EQ(components.sizes.size(), tracker.NumComponents());
  EXPECT_EQ(components.sizes.empty()
                ? 0u
                : components.sizes[components.largest],
            tracker.LccSize());
}

/// Runs >= `min_swaps` committed swaps on `g`, cross-validating the
/// tracker against the from-scratch analyzers every `check_interval`
/// commits.
void RunSwapCrossValidation(Graph g, std::uint64_t seed,
                            std::size_t min_swaps,
                            std::size_t check_interval) {
  PropertyTracker tracker(g);
  ExpectMatchesFromScratch(g, tracker, "initial state");
  Rng rng(seed);
  std::size_t applied = 0;
  for (std::size_t draw = 0; draw < 80 * min_swaps && applied < min_swaps;
       ++draw) {
    const std::optional<Swap> swap = DrawSwap(g, rng);
    if (!swap) continue;
    CommitSwap(g, tracker, *swap);
    ++applied;
    if (applied % check_interval == 0) {
      ExpectMatchesFromScratch(g, tracker,
                               "after " + std::to_string(applied) +
                                   " swaps");
      if (::testing::Test::HasFailure()) return;
    }
  }
  ASSERT_GE(applied, min_swaps) << "swap sampling starved";
  ExpectMatchesFromScratch(g, tracker, "final state");
}

/// A heavy-tailed clustered graph plus handmade self-loops and parallel
/// edges: the multigraph regime the dK construction and rewiring phases
/// actually produce.
Graph MakeMultigraphFixture(std::uint64_t seed) {
  Rng rng(seed);
  Graph g = GeneratePowerlawCluster(90, 3, 0.5, rng);
  g.AddEdge(3, 3);
  g.AddEdge(7, 7);
  g.AddEdge(7, 7);
  const Edge duplicated = g.edge(5);
  g.AddEdge(duplicated.u, duplicated.v);
  const Edge tripled = g.edge(11);
  g.AddEdge(tripled.u, tripled.v);
  g.AddEdge(tripled.u, tripled.v);
  return g;
}

TEST(PropertyTrackerTest, SnapshotMatchesAnalyzersOnFixtures) {
  Rng rng(91);
  const Graph fixtures[] = {
      GenerateComplete(8),       GenerateCycle(12),
      GenerateStar(9),           GeneratePath(7),
      GeneratePowerlawCluster(80, 3, 0.6, rng),
      MakeMultigraphFixture(17),
  };
  for (std::size_t f = 0; f < std::size(fixtures); ++f) {
    const PropertyTracker tracker(fixtures[f]);
    ExpectMatchesFromScratch(fixtures[f], tracker,
                             "fixture " + std::to_string(f));
  }
}

TEST(PropertyTrackerTest, SnapshotMatchesComputePropertiesLocally) {
  Rng rng(301);
  const Graph g = GeneratePowerlawCluster(70, 3, 0.5, rng);
  const PropertyTracker tracker(g);
  const GraphProperties snapshot = tracker.Snapshot();
  PropertyOptions options;
  options.max_path_sources = 4;  // globals are not under test
  const GraphProperties expected = ComputeProperties(g, options);
  EXPECT_EQ(expected.num_nodes, snapshot.num_nodes);
  EXPECT_EQ(expected.average_degree, snapshot.average_degree);
  ExpectVectorsEqual(expected.degree_dist, snapshot.degree_dist, "P(k)");
  ExpectVectorsEqual(expected.neighbor_connectivity,
                     snapshot.neighbor_connectivity, "knn(k)");
  EXPECT_NEAR(expected.clustering_global, snapshot.clustering_global,
              1e-12);
  ExpectVectorsEqual(expected.clustering_by_degree,
                     snapshot.clustering_by_degree, "c(k)");
  ExpectVectorsEqual(expected.esp_dist, snapshot.esp_dist, "P(s)");
}

TEST(PropertyTrackerTest, CrossValidatesUnderSwapsOnErdosRenyi) {
  Rng rng(1001);
  Graph g = GenerateErdosRenyiGnm(120, 420, rng);
  RunSwapCrossValidation(std::move(g), /*seed=*/0xE21,
                         /*min_swaps=*/520, /*check_interval=*/20);
}

TEST(PropertyTrackerTest, CrossValidatesUnderSwapsOnBarabasiAlbert) {
  Rng rng(1002);
  Graph g = GenerateBarabasiAlbert(140, 3, rng);
  RunSwapCrossValidation(std::move(g), /*seed=*/0xBA2,
                         /*min_swaps=*/520, /*check_interval=*/20);
}

TEST(PropertyTrackerTest, CrossValidatesUnderSwapsOnMultigraph) {
  RunSwapCrossValidation(MakeMultigraphFixture(23), /*seed=*/0x3D1,
                         /*min_swaps=*/520, /*check_interval=*/20);
}

TEST(PropertyTrackerTest, ApplyUndoRoundTripRestoresState) {
  Graph g = MakeMultigraphFixture(31);
  PropertyTracker tracker(g);
  const GraphProperties before = tracker.Snapshot();
  const std::size_t components_before = tracker.NumComponents();
  const std::size_t lcc_before = tracker.LccSize();

  Rng rng(0x0DD);
  std::size_t round_trips = 0;
  while (round_trips < 50) {
    const std::optional<Swap> swap = DrawSwap(g, rng);
    if (!swap) continue;
    // Apply on the tracker only (the graph must stay put so the next
    // round trip draws from the same edge list), then undo: the inverse
    // of ApplySwap(i, j, a, b) is ApplySwap(i, b, a, j).
    tracker.ApplySwap(swap->i, swap->j, swap->a, swap->b);
    tracker.ApplySwap(swap->i, swap->b, swap->a, swap->j);
    ++round_trips;
  }

  const GraphProperties after = tracker.Snapshot();
  EXPECT_EQ(before.num_nodes, after.num_nodes);
  EXPECT_EQ(before.average_degree, after.average_degree);
  EXPECT_EQ(before.degree_dist, after.degree_dist);
  EXPECT_EQ(before.neighbor_connectivity, after.neighbor_connectivity);
  EXPECT_EQ(before.clustering_global, after.clustering_global);
  EXPECT_EQ(before.clustering_by_degree, after.clustering_by_degree);
  EXPECT_EQ(before.esp_dist, after.esp_dist);
  EXPECT_EQ(components_before, tracker.NumComponents());
  EXPECT_EQ(lcc_before, tracker.LccSize());
  ExpectMatchesFromScratch(g, tracker, "after 50 apply/undo round trips");
}

TEST(PropertyTrackerTest, FromScratchModeAgreesWithIncremental) {
  Graph g = MakeMultigraphFixture(41);
  PropertyTracker incremental(g, PropertyAnalysisMode::kIncremental);
  PropertyTracker from_scratch(g, PropertyAnalysisMode::kFromScratch);
  EXPECT_EQ(PropertyAnalysisMode::kIncremental, incremental.mode());
  EXPECT_EQ(PropertyAnalysisMode::kFromScratch, from_scratch.mode());

  Rng rng(0xF5);
  std::size_t applied = 0;
  while (applied < 120) {
    const std::optional<Swap> swap = DrawSwap(g, rng);
    if (!swap) continue;
    CommitSwap(g, incremental, *swap);
    from_scratch.ApplySwap(swap->i, swap->j, swap->a, swap->b);
    ++applied;
  }

  const GraphProperties lazy = from_scratch.Snapshot();
  const GraphProperties tracked = incremental.Snapshot();
  EXPECT_EQ(lazy.num_nodes, tracked.num_nodes);
  EXPECT_EQ(lazy.average_degree, tracked.average_degree);
  ExpectVectorsEqual(lazy.degree_dist, tracked.degree_dist, "P(k)");
  ExpectVectorsEqual(lazy.neighbor_connectivity,
                     tracked.neighbor_connectivity, "knn(k)");
  EXPECT_NEAR(lazy.clustering_global, tracked.clustering_global, 1e-12);
  ExpectVectorsEqual(lazy.clustering_by_degree,
                     tracked.clustering_by_degree, "c(k)");
  ExpectVectorsEqual(lazy.esp_dist, tracked.esp_dist, "P(s)");
  EXPECT_EQ(from_scratch.NumComponents(), incremental.NumComponents());
  EXPECT_EQ(from_scratch.LccSize(), incremental.LccSize());
  EXPECT_NEAR(from_scratch.ClusteringGlobal(),
              incremental.ClusteringGlobal(), 1e-12);
}

TEST(PropertyTrackerTest, MultiplicityMatchesCountEdges) {
  Graph g = MakeMultigraphFixture(53);
  PropertyTracker tracker(g);
  Rng rng(0x517);
  std::size_t applied = 0;
  while (applied < 200) {
    const std::optional<Swap> swap = DrawSwap(g, rng);
    if (!swap) continue;
    CommitSwap(g, tracker, *swap);
    ++applied;
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const NodeId v : g.adjacency(u)) {
      EXPECT_EQ(static_cast<std::int64_t>(g.CountEdges(u, v)),
                tracker.Multiplicity(u, v))
          << "pair (" << u << ", " << v << ")";
    }
    // Spot-check some non-adjacent pairs too.
    const NodeId w = static_cast<NodeId>((u * 7 + 3) % g.NumNodes());
    EXPECT_EQ(static_cast<std::int64_t>(g.CountEdges(u, w)),
              tracker.Multiplicity(u, w))
        << "pair (" << u << ", " << w << ")";
  }
}

TEST(PropertyTrackerTest, MaterializeGraphReproducesTrackedMultigraph) {
  Graph g = MakeMultigraphFixture(67);
  PropertyTracker tracker(g);
  Rng rng(0x3A7);
  std::size_t applied = 0;
  while (applied < 150) {
    const std::optional<Swap> swap = DrawSwap(g, rng);
    if (!swap) continue;
    CommitSwap(g, tracker, *swap);
    ++applied;
  }
  const Graph materialized = tracker.MaterializeGraph();
  ASSERT_EQ(g.NumNodes(), materialized.NumNodes());
  ASSERT_EQ(g.NumEdges(), materialized.NumEdges());
  EXPECT_EQ(g.TotalDegree(), materialized.TotalDegree());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(g.Degree(v), materialized.Degree(v)) << "node " << v;
  }
  EXPECT_EQ(NetworkClusteringCoefficient(g),
            NetworkClusteringCoefficient(materialized));
  EXPECT_EQ(EdgewiseSharedPartners(g),
            EdgewiseSharedPartners(materialized));
}

TEST(PropertyTrackerTest, ComponentsTrackMergeAndSplit) {
  // Two disjoint triangles; the swap (0,1),(3,4) -> (0,4),(3,1) splices
  // them into one 6-cycle, and its inverse restores the two triangles.
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 3);
  PropertyTracker tracker(g);
  EXPECT_EQ(2u, tracker.NumComponents());
  EXPECT_EQ(3u, tracker.LccSize());

  tracker.ApplySwap(0, 1, 3, 4);
  g.ReplaceEdge(0, 0, 4);
  g.ReplaceEdge(3, 3, 1);
  EXPECT_EQ(1u, tracker.NumComponents());
  EXPECT_EQ(6u, tracker.LccSize());
  ExpectMatchesFromScratch(g, tracker, "after merge swap");

  tracker.ApplySwap(0, 4, 3, 1);
  g.ReplaceEdge(0, 0, 1);
  g.ReplaceEdge(3, 3, 4);
  EXPECT_EQ(2u, tracker.NumComponents());
  EXPECT_EQ(3u, tracker.LccSize());
  ExpectMatchesFromScratch(g, tracker, "after split swap");
}

TEST(PropertyTrackerTest, LoopCreatingSwapsStayConsistent) {
  // A swap with j == i creates a loop at i: removing (i, i) ... adding
  // (i, b) pairs are still degree-preserving. Exercise the loop
  // creation/destruction paths explicitly on a dense fixture.
  Graph g = GenerateComplete(6);
  g.AddEdge(0, 0);
  g.AddEdge(1, 2);
  PropertyTracker tracker(g);
  ExpectMatchesFromScratch(g, tracker, "initial");

  // Destroy the loop at 0 against edge (1, 2): remove (0,0), (1,2); add
  // (0,2), (1,0). Degrees: 0 loses 2 (loop) gains... (0,2) and (1,0)
  // both touch 0 -> net degree preserved for everyone.
  EXPECT_EQ(2, tracker.Multiplicity(0, 0));
  tracker.ApplySwap(0, 0, 1, 2);
  const EdgeId loop_edge = 15;   // AddEdge order: C(6,2)=15 edges first
  const EdgeId extra_edge = 16;
  g.ReplaceEdge(loop_edge, 0, 2);
  g.ReplaceEdge(extra_edge, 1, 0);
  EXPECT_EQ(0, tracker.Multiplicity(0, 0));
  ExpectMatchesFromScratch(g, tracker, "after loop-destroying swap");

  // And back: remove (0,2), (1,0); add (0,0), (1,2).
  tracker.ApplySwap(0, 2, 1, 0);
  g.ReplaceEdge(loop_edge, 0, 0);
  g.ReplaceEdge(extra_edge, 1, 2);
  EXPECT_EQ(2, tracker.Multiplicity(0, 0));
  ExpectMatchesFromScratch(g, tracker, "after loop-recreating swap");
}

}  // namespace
}  // namespace sgr
