#include "dk/triangle_tracker.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dk/dk_extract.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace sgr {
namespace {

TEST(TriangleTrackerTest, InitialCountsMatchExtractor) {
  Rng rng(51);
  const Graph g = GeneratePowerlawCluster(200, 3, 0.6, rng);
  TriangleTracker tracker(g, {});
  const std::vector<std::int64_t> expected = CountTrianglesPerNode(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_EQ(tracker.triangles(v), expected[v]) << "node " << v;
  }
}

TEST(TriangleTrackerTest, AddEdgeCreatesTriangles) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  TriangleTracker tracker(g, {});
  EXPECT_EQ(tracker.triangles(1), 0);
  tracker.AddEdge(0, 2);  // closes the triangle
  EXPECT_EQ(tracker.triangles(0), 1);
  EXPECT_EQ(tracker.triangles(1), 1);
  EXPECT_EQ(tracker.triangles(2), 1);
}

TEST(TriangleTrackerTest, RemoveEdgeDestroysTriangles) {
  const Graph g = GenerateComplete(4);
  TriangleTracker tracker(g, {});
  EXPECT_EQ(tracker.triangles(0), 3);
  tracker.RemoveEdge(0, 1);
  // 0 keeps only triangle {0,2,3}.
  EXPECT_EQ(tracker.triangles(0), 1);
  EXPECT_EQ(tracker.triangles(1), 1);
  EXPECT_EQ(tracker.triangles(2), 2);
  EXPECT_EQ(tracker.triangles(3), 2);
}

TEST(TriangleTrackerTest, LoopsAreTriangleNeutral) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  TriangleTracker tracker(g, {});
  tracker.AddEdge(1, 1);
  EXPECT_EQ(tracker.triangles(1), 1);
  EXPECT_EQ(tracker.Multiplicity(1, 1), 2);
  tracker.RemoveEdge(1, 1);
  EXPECT_EQ(tracker.Multiplicity(1, 1), 0);
  EXPECT_EQ(tracker.triangles(1), 1);
}

TEST(TriangleTrackerTest, MultiEdgeWeights) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  TriangleTracker tracker(g, {});
  tracker.AddEdge(0, 1);  // double one side: triangle weight doubles
  EXPECT_EQ(tracker.triangles(2), 2);
  EXPECT_EQ(tracker.triangles(0), 2);
  tracker.RemoveEdge(0, 1);
  EXPECT_EQ(tracker.triangles(2), 1);
}

TEST(TriangleTrackerTest, ClassTrianglesTrackDegrees) {
  const Graph g = GenerateComplete(4);  // all degree 3, 4 triangles total
  TriangleTracker tracker(g, {});
  EXPECT_EQ(tracker.ClassTriangles(3), 4 * 3);
  EXPECT_EQ(tracker.ClassTriangles(2), 0);
}

TEST(TriangleTrackerTest, PresentClusteringOfComplete) {
  const Graph g = GenerateComplete(5);
  TriangleTracker tracker(g, {});
  EXPECT_DOUBLE_EQ(tracker.PresentClustering(4), 1.0);
}

TEST(TriangleTrackerTest, ObjectiveMatchesDefinition) {
  const Graph g = GenerateComplete(4);
  // Target: ĉ̄(3) = 0.5; present 1.0; mass = 0.5 -> D = |1-0.5|/0.5 = 1.
  TriangleTracker tracker(g, {0.0, 0.0, 0.0, 0.5});
  EXPECT_DOUBLE_EQ(tracker.Objective(), 1.0);
}

TEST(TriangleTrackerTest, ObjectiveZeroWhenTargetEmpty) {
  const Graph g = GenerateComplete(4);
  TriangleTracker tracker(g, {});
  EXPECT_DOUBLE_EQ(tracker.Objective(), 0.0);
}

TEST(TriangleTrackerTest, ObjectiveRespondsToRewires) {
  // Square with a diagonal: removing the diagonal lowers clustering.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  g.AddEdge(0, 2);
  std::vector<double> target = ExtractDegreeDependentClustering(g);
  TriangleTracker tracker(g, target);
  EXPECT_NEAR(tracker.Objective(), 0.0, 1e-12);
  tracker.RemoveEdge(0, 2);
  EXPECT_GT(tracker.Objective(), 0.0);
  tracker.AddEdge(0, 2);
  tracker.RecomputeObjective();
  EXPECT_NEAR(tracker.Objective(), 0.0, 1e-12);
}

TEST(TriangleTrackerTest, EvaluateSwapDeltaMatchesApplyAndMeasure) {
  // The const speculative score must agree with actually performing the
  // four operations and measuring the objective change — including swaps
  // whose endpoints coincide (j == a, i == b) and swaps that create
  // loops or parallel edges.
  Rng gen_rng(60);
  Graph g = GeneratePowerlawCluster(150, 3, 0.5, gen_rng);
  g.AddEdge(2, 3);
  g.AddEdge(2, 3);  // parallel bundle
  g.AddEdge(4, 4);  // loop
  std::vector<double> target(g.MaxDegree() + 1, 0.3);
  TriangleTracker tracker(g, target);

  Rng rng(61);
  std::size_t scored = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const EdgeId id1 = rng.NextIndex(g.NumEdges());
    const EdgeId id2 = rng.NextIndex(g.NumEdges());
    if (id1 == id2) continue;
    const Edge e1 = g.edge(id1);
    const Edge e2 = g.edge(id2);
    const NodeId i = e1.u, j = e1.v;
    const NodeId a = rng.NextBernoulli(0.5) ? e2.u : e2.v;
    const NodeId b = (a == e2.u) ? e2.v : e2.u;
    if (i == a || j == b) continue;  // no-op swap family

    tracker.RecomputeObjective();
    const double before = tracker.Objective();
    std::vector<std::uint32_t> touched;
    const double delta = tracker.EvaluateSwapDelta(i, j, a, b, &touched);

    // Ground truth: mutate, recompute from scratch, revert.
    tracker.RemoveEdge(i, j);
    tracker.RemoveEdge(a, b);
    tracker.AddEdge(i, b);
    tracker.AddEdge(a, j);
    tracker.RecomputeObjective();
    const double after = tracker.Objective();
    tracker.RemoveEdge(i, b);
    tracker.RemoveEdge(a, j);
    tracker.AddEdge(i, j);
    tracker.AddEdge(a, b);

    // Objective() normalizes by the target mass; the delta is on the
    // numerator.
    double mass = 0.0;
    for (double c : target) mass += c;
    ASSERT_NEAR(delta / mass, after - before, 1e-9)
        << "swap (" << i << "," << j << ")x(" << a << "," << b << ")";
    ++scored;
  }
  EXPECT_GT(scored, 100u);  // the trial filter must not eat the test
}

TEST(TriangleTrackerTest, ApplySwapMatchesManualOpsAndReportsClasses) {
  Rng gen_rng(62);
  Graph g = GeneratePowerlawCluster(100, 3, 0.5, gen_rng);
  std::vector<double> target(g.MaxDegree() + 1, 0.2);
  TriangleTracker tracker(g, target);
  TriangleTracker manual(g, target);

  // A degree-matched swap drawn from the graph.
  const Edge e1 = g.edge(3);
  const Edge e2 = g.edge(40);
  const NodeId i = e1.u, j = e1.v, a = e2.u, b = e2.v;
  std::vector<std::uint32_t> touched;
  tracker.ApplySwap(i, j, a, b, &touched);
  manual.RemoveEdge(i, j);
  manual.RemoveEdge(a, b);
  manual.AddEdge(i, b);
  manual.AddEdge(a, j);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_EQ(tracker.triangles(v), manual.triangles(v)) << "node " << v;
  }
  // Every class whose T(k) changed must be reported (the commit-time
  // dirty set of the batched engine depends on it).
  const TriangleTracker fresh(g, target);
  for (std::uint32_t k = 0; k <= g.MaxDegree(); ++k) {
    if (tracker.ClassTriangles(k) == fresh.ClassTriangles(k)) continue;
    EXPECT_NE(std::find(touched.begin(), touched.end(), k), touched.end())
        << "class " << k << " changed but was not reported";
  }
}

TEST(TriangleTrackerTest, RandomChurnStaysConsistent) {
  Rng rng(52);
  Graph g = GeneratePowerlawCluster(120, 3, 0.5, rng);
  TriangleTracker tracker(g, {});
  // Random add/remove churn mirrored on the graph; counts must match a
  // fresh recount at the end.
  std::vector<std::pair<NodeId, NodeId>> added;
  for (int step = 0; step < 300; ++step) {
    if (!added.empty() && rng.NextBernoulli(0.4)) {
      const std::size_t idx = rng.NextIndex(added.size());
      const auto [u, v] = added[idx];
      tracker.RemoveEdge(u, v);
      // remove from g: find edge id
      for (EdgeId e = 0; e < g.NumEdges(); ++e) {
        const Edge& ed = g.edge(e);
        if ((ed.u == u && ed.v == v) || (ed.u == v && ed.v == u)) {
          g.ReplaceEdge(e, u, u);  // park as loop, then drop from tracker
          tracker.AddEdge(u, u);
          break;
        }
      }
      added[idx] = added.back();
      added.pop_back();
    } else {
      const NodeId u = static_cast<NodeId>(rng.NextIndex(g.NumNodes()));
      const NodeId v = static_cast<NodeId>(rng.NextIndex(g.NumNodes()));
      if (u == v) continue;
      g.AddEdge(u, v);
      tracker.AddEdge(u, v);
      added.push_back({u, v});
    }
  }
  const std::vector<std::int64_t> expected = CountTrianglesPerNode(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_EQ(tracker.triangles(v), expected[v]) << "node " << v;
  }
}

}  // namespace
}  // namespace sgr
