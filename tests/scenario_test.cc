#include "scenario/engine.h"
#include "scenario/report.h"
#include "scenario/spec.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/generators.h"
#include "restore/rewirer.h"

namespace sgr {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing and validation
// ---------------------------------------------------------------------------

TEST(ScenarioSpecTest, DefaultsMatchExperimentConfig) {
  const ScenarioSpec spec =
      ScenarioSpec::FromJson(Json::Parse(R"({"datasets": ["anybeat"]})"));
  const ExperimentConfig defaults;
  const ExperimentConfig from_spec = spec.ToExperimentConfig(0.1);
  EXPECT_EQ(from_spec.query_fraction, defaults.query_fraction);
  EXPECT_EQ(from_spec.methods, defaults.methods);
  EXPECT_EQ(from_spec.snowball_k, defaults.snowball_k);
  EXPECT_DOUBLE_EQ(from_spec.forest_fire_pf, defaults.forest_fire_pf);
  EXPECT_DOUBLE_EQ(from_spec.restoration.rewire.rewiring_coefficient,
                   defaults.restoration.rewire.rewiring_coefficient);
  EXPECT_EQ(from_spec.restoration.simplify_output,
            defaults.restoration.simplify_output);
  EXPECT_EQ(from_spec.property_options.max_path_sources,
            defaults.property_options.max_path_sources);
  // The one deliberate difference: per-trial property evaluation is pinned
  // to one thread for report determinism.
  EXPECT_EQ(from_spec.property_options.threads, 1u);
}

TEST(ScenarioSpecTest, ParsesFullDocument) {
  const ScenarioSpec spec = ScenarioSpec::FromJson(Json::Parse(R"({
    "name": "mine",
    "datasets": ["anybeat",
                 {"name": "tiny", "model": "powerlaw", "nodes": 200,
                  "edges_per_node": 3, "triad_p": 0.3, "seed": 7}],
    "fractions": [0.05, 0.1],
    "methods": ["rw", "proposed"],
    "trials": 4,
    "threads": 2,
    "seed_base": 99,
    "walk": ["simple", "non-backtracking"],
    "crawler": "rw",
    "estimator": [{"joint_mode": "hybrid"},
                  {"joint_mode": "te", "collision_fraction": 0.05}],
    "rc": [25, 50],
    "protect_subgraph": [true, false],
    "frontier_walkers": 12,
    "rewire_batch": 64,
    "rewire_threads": 3,
    "path_sources": 30,
    "snowball_k": 10,
    "forest_fire_pf": 0.5,
    "simplify_output": true,
    "dataset_scale": 0.5,
    "track_properties": true,
    "stop_epsilon": 0.25
  })"));
  EXPECT_EQ(spec.name, "mine");
  ASSERT_EQ(spec.datasets.size(), 2u);
  EXPECT_EQ(spec.datasets[0].name, "anybeat");
  EXPECT_FALSE(spec.datasets[0].generator.has_value());
  EXPECT_EQ(spec.datasets[1].name, "tiny");
  ASSERT_TRUE(spec.datasets[1].generator.has_value());
  EXPECT_EQ(spec.datasets[1].generator->nodes, 200u);
  EXPECT_EQ(spec.datasets[1].generator->seed, 7u);
  EXPECT_EQ(spec.fractions, (std::vector<double>{0.05, 0.1}));
  EXPECT_EQ(spec.methods,
            (std::vector<MethodKind>{MethodKind::kRandomWalk,
                                     MethodKind::kProposed}));
  EXPECT_EQ(spec.trials, 4u);
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_EQ(spec.seed_base, 99u);
  EXPECT_EQ(spec.walks, (std::vector<WalkKind>{
                            WalkKind::kSimple, WalkKind::kNonBacktracking}));
  EXPECT_EQ(spec.crawlers, (std::vector<CrawlerKind>{CrawlerKind::kRw}));
  ASSERT_EQ(spec.estimators.size(), 2u);
  EXPECT_EQ(spec.estimators[0].joint_mode, JointEstimatorMode::kHybrid);
  EXPECT_DOUBLE_EQ(spec.estimators[0].collision_fraction, 0.025);
  EXPECT_EQ(spec.estimators[1].joint_mode,
            JointEstimatorMode::kTraversedEdgesOnly);
  EXPECT_DOUBLE_EQ(spec.estimators[1].collision_fraction, 0.05);
  EXPECT_EQ(spec.rcs, (std::vector<double>{25.0, 50.0}));
  EXPECT_EQ(spec.protects, (std::vector<bool>{true, false}));
  EXPECT_EQ(spec.frontier_walkers, (std::vector<std::size_t>{12}));
  EXPECT_EQ(spec.rewire_batches, (std::vector<std::size_t>{64}));
  EXPECT_EQ(spec.rewire_threads, 3u);
  const ExperimentConfig config = spec.ToExperimentConfig(0.1);
  EXPECT_EQ(config.restoration.parallel_rewire.batch_size, 64u);
  EXPECT_EQ(config.restoration.parallel_rewire.threads, 3u);
  EXPECT_EQ(config.walk, WalkKind::kSimple);       // first axis value
  EXPECT_EQ(config.crawler, CrawlerKind::kRw);
  EXPECT_EQ(config.frontier_walkers, 12u);
  EXPECT_DOUBLE_EQ(config.restoration.rewire.rewiring_coefficient, 25.0);
  EXPECT_TRUE(config.restoration.protect_subgraph);
  EXPECT_EQ(spec.path_sources, 30u);
  EXPECT_EQ(spec.snowball_k, 10u);
  EXPECT_DOUBLE_EQ(spec.forest_fire_pf, 0.5);
  EXPECT_TRUE(spec.simplify_output);
  EXPECT_DOUBLE_EQ(spec.dataset_scale, 0.5);
  EXPECT_TRUE(spec.track_properties);
  EXPECT_DOUBLE_EQ(spec.stop_epsilon, 0.25);
  EXPECT_TRUE(config.restoration.track_properties);
  EXPECT_DOUBLE_EQ(config.restoration.stop_epsilon, 0.25);
  // 2 fractions x 2 walks x 2 estimators x 2 rcs x 2 protects
  // (track_properties / stop_epsilon are scalars, never axes).
  EXPECT_EQ(spec.ExpandKnobs().size(), 32u);
}

TEST(ScenarioSpecTest, AxesAcceptScalarAndArrayForms) {
  const ScenarioSpec scalar = ScenarioSpec::FromJson(Json::Parse(R"({
    "datasets": ["anybeat"],
    "walk": "non-backtracking",
    "crawler": "rw",
    "estimator": {"joint_mode": "ie"},
    "rc": 75,
    "protect_subgraph": false,
    "methods": ["proposed"]
  })"));
  EXPECT_EQ(scalar.walks,
            (std::vector<WalkKind>{WalkKind::kNonBacktracking}));
  ASSERT_EQ(scalar.estimators.size(), 1u);
  EXPECT_EQ(scalar.estimators[0].joint_mode,
            JointEstimatorMode::kInducedEdgesOnly);
  EXPECT_EQ(scalar.rcs, (std::vector<double>{75.0}));
  EXPECT_EQ(scalar.protects, (std::vector<bool>{false}));
  // The NBRW walk axis derives the estimator normalizer in the config.
  EXPECT_EQ(scalar.ToExperimentConfig(0.1).restoration.estimator.walk_type,
            WalkType::kNonBacktracking);

  const ScenarioSpec array = ScenarioSpec::FromJson(Json::Parse(R"({
    "datasets": ["anybeat"],
    "crawler": ["rw", "frontier", "mhrw"],
    "methods": ["rw", "gjoka", "proposed"]
  })"));
  EXPECT_EQ(array.crawlers,
            (std::vector<CrawlerKind>{CrawlerKind::kRw,
                                      CrawlerKind::kFrontier,
                                      CrawlerKind::kMhrw}));
  EXPECT_EQ(array.ExpandKnobs().size(), 3u);
}

TEST(ScenarioSpecTest, RewireBatchAndFrontierWalkersAxes) {
  // Scalar form (the historical document shape) still parses to a
  // single-value axis...
  const ScenarioSpec scalar = ScenarioSpec::FromJson(Json::Parse(R"({
    "datasets": ["anybeat"],
    "rewire_batch": 128,
    "frontier_walkers": 7,
    "crawler": "frontier",
    "methods": ["rw"]
  })"));
  EXPECT_EQ(scalar.rewire_batches, (std::vector<std::size_t>{128}));
  EXPECT_EQ(scalar.frontier_walkers, (std::vector<std::size_t>{7}));
  EXPECT_EQ(scalar.ExpandKnobs().size(), 1u);

  // ...and the array form sweeps. Expansion order: protects-major,
  // rewire_batch, then frontier_walkers innermost.
  const ScenarioSpec array = ScenarioSpec::FromJson(Json::Parse(R"({
    "datasets": ["anybeat"],
    "rewire_batch": [0, 64],
    "frontier_walkers": [2, 10, 50],
    "crawler": "frontier",
    "methods": ["rw"]
  })"));
  EXPECT_EQ(array.rewire_batches, (std::vector<std::size_t>{0, 64}));
  EXPECT_EQ(array.frontier_walkers,
            (std::vector<std::size_t>{2, 10, 50}));
  const std::vector<CellKnobs> knobs = array.ExpandKnobs();
  ASSERT_EQ(knobs.size(), 6u);
  EXPECT_EQ(knobs[0].rewire_batch, 0u);
  EXPECT_EQ(knobs[0].frontier_walkers, 2u);
  EXPECT_EQ(knobs[1].rewire_batch, 0u);
  EXPECT_EQ(knobs[1].frontier_walkers, 10u);
  EXPECT_EQ(knobs[3].rewire_batch, 64u);
  EXPECT_EQ(knobs[3].frontier_walkers, 2u);

  // The axis values reach the per-cell config.
  ExperimentConfig config = array.ToExperimentConfig(knobs[3]);
  EXPECT_EQ(config.restoration.parallel_rewire.batch_size, 64u);
  EXPECT_EQ(config.frontier_walkers, 2u);

  // Canonical round trip: scalar stays scalar, array stays array,
  // byte-for-byte through show -> parse -> show.
  for (const ScenarioSpec* spec : {&scalar, &array}) {
    const std::string shown = spec->ToJson().Dump(2);
    EXPECT_EQ(shown,
              ScenarioSpec::FromJson(Json::Parse(shown)).ToJson().Dump(2));
  }
}

TEST(ScenarioSpecTest, ParallelAssemblyAndThreadKnobsParse) {
  const ScenarioSpec spec = ScenarioSpec::FromJson(Json::Parse(R"({
    "datasets": ["anybeat"],
    "parallel_assembly": true,
    "assembly_threads": 4,
    "estimator_threads": 3
  })"));
  EXPECT_TRUE(spec.parallel_assembly);
  EXPECT_EQ(spec.assembly_threads, 4u);
  EXPECT_EQ(spec.estimator_threads, 3u);
  const ExperimentConfig config = spec.ToExperimentConfig(0.1);
  EXPECT_TRUE(config.restoration.parallel_assembly.enabled);
  EXPECT_EQ(config.restoration.parallel_assembly.threads, 4u);
  EXPECT_EQ(config.restoration.estimator.threads, 3u);
  const std::string shown = spec.ToJson().Dump(2);
  EXPECT_EQ(shown,
            ScenarioSpec::FromJson(Json::Parse(shown)).ToJson().Dump(2));
}

TEST(ScenarioSpecTest, CrossAxisRulesEnforced) {
  // A non-walk crawler cannot feed the generative methods...
  EXPECT_THROW(ScenarioSpec::FromJson(Json::Parse(R"({
    "datasets": ["anybeat"], "crawler": "bfs"
  })")),
               ScenarioError);
  EXPECT_THROW(ScenarioSpec::FromJson(Json::Parse(R"({
    "datasets": ["anybeat"], "crawler": ["rw", "ff"],
    "methods": ["rw", "proposed"]
  })")),
               ScenarioError);
  // ...but is fine for the subgraph-sampling methods.
  const ScenarioSpec subgraph_only = ScenarioSpec::FromJson(Json::Parse(R"({
    "datasets": ["anybeat"], "crawler": ["bfs", "snowball", "ff"],
    "methods": ["rw"]
  })"));
  EXPECT_EQ(subgraph_only.crawlers.size(), 3u);
  // A non-simple walk only applies to the rw crawler.
  EXPECT_THROW(ScenarioSpec::FromJson(Json::Parse(R"({
    "datasets": ["anybeat"], "walk": "non-backtracking",
    "crawler": "frontier", "methods": ["rw"]
  })")),
               ScenarioError);
}

TEST(ScenarioSpecTest, RoundTripsThroughJson) {
  const ScenarioSpec spec = BuiltinScenario("fig3-sweep");
  const ScenarioSpec reparsed = ScenarioSpec::FromJson(spec.ToJson());
  EXPECT_EQ(spec.ToJson(), reparsed.ToJson());
}

TEST(ScenarioSpecTest, EveryBuiltinRoundTripsToAnEqualSpec) {
  // `sgr scenarios show <name>` prints ToJson().Dump(2); a user must be
  // able to feed that document straight back to `sgr run`. Lock the full
  // cycle for every built-in (including the multi-axis ablation specs):
  // parse(show output) -> serialize -> re-parse -> byte-equal documents,
  // and the axis fields survive intact.
  for (const std::string& name : BuiltinScenarioNames()) {
    const ScenarioSpec spec = BuiltinScenario(name);
    EXPECT_NO_THROW(spec.Validate()) << name;
    const std::string shown = spec.ToJson().Dump(2);
    const ScenarioSpec reparsed = ScenarioSpec::FromJson(Json::Parse(shown));
    EXPECT_EQ(shown, reparsed.ToJson().Dump(2)) << name;
    EXPECT_EQ(spec.walks, reparsed.walks) << name;
    EXPECT_EQ(spec.crawlers, reparsed.crawlers) << name;
    EXPECT_EQ(spec.rcs, reparsed.rcs) << name;
    EXPECT_EQ(spec.protects, reparsed.protects) << name;
    EXPECT_EQ(spec.estimators.size(), reparsed.estimators.size()) << name;
    for (std::size_t i = 0; i < spec.estimators.size(); ++i) {
      EXPECT_TRUE(spec.estimators[i] == reparsed.estimators[i]) << name;
    }
  }
}

TEST(ScenarioSpecTest, AblationBuiltinsSweepTheirAxes) {
  EXPECT_EQ(BuiltinScenario("ablation-walk").walks,
            (std::vector<WalkKind>{WalkKind::kSimple,
                                   WalkKind::kNonBacktracking}));
  EXPECT_EQ(BuiltinScenario("ablation-rc").rcs,
            (std::vector<double>{0.0, 10.0, 50.0, 100.0, 250.0, 500.0}));
  const ScenarioSpec jdm = BuiltinScenario("ablation-jdm");
  ASSERT_EQ(jdm.estimators.size(), 3u);
  EXPECT_EQ(jdm.estimators[0].joint_mode, JointEstimatorMode::kHybrid);
  EXPECT_EQ(jdm.estimators[1].joint_mode,
            JointEstimatorMode::kInducedEdgesOnly);
  EXPECT_EQ(jdm.estimators[2].joint_mode,
            JointEstimatorMode::kTraversedEdgesOnly);
  EXPECT_EQ(BuiltinScenario("ablation-rewire").protects,
            (std::vector<bool>{true, false}));
  const ScenarioSpec batch = BuiltinScenario("ablation-batch");
  EXPECT_EQ(batch.rewire_batches, (std::vector<std::size_t>{0, 64, 256}));
  EXPECT_TRUE(batch.parallel_assembly);
  const ScenarioSpec frontier = BuiltinScenario("ablation-frontier");
  EXPECT_EQ(frontier.frontier_walkers,
            (std::vector<std::size_t>{2, 10, 50}));
  EXPECT_EQ(frontier.crawlers,
            (std::vector<CrawlerKind>{CrawlerKind::kFrontier}));
  // Each ablation pins the method list to the proposed pipeline.
  for (const char* name :
       {"ablation-walk", "ablation-rc", "ablation-jdm", "ablation-rewire",
        "ablation-batch", "ablation-frontier"}) {
    EXPECT_EQ(BuiltinScenario(name).methods,
              (std::vector<MethodKind>{MethodKind::kProposed}))
        << name;
  }
}

TEST(ScenarioSpecTest, ValidationErrors) {
  const char* cases[] = {
      R"({})",                                        // datasets required
      R"({"datasets": []})",                          // empty datasets
      R"({"datasets": ["nope"]})",                    // unknown dataset
      R"({"datasets": [3]})",                         // wrong entry type
      R"({"datasets": ["anybeat", "anybeat"]})",      // duplicate dataset
      R"({"datasets": [{"model": "m6"}]})",           // unknown model
      R"({"datasets": [{"nodes": 2}]})",              // too few nodes
      R"({"datasets": [{"typo": 1}]})",               // unknown generator key
      R"({"datasets": ["anybeat"], "fractions": []})",
      R"({"datasets": ["anybeat"], "fractions": [0]})",
      R"({"datasets": ["anybeat"], "fractions": [1.5]})",
      R"({"datasets": ["anybeat"], "fractions": ["x"]})",
      R"({"datasets": ["anybeat"], "methods": []})",
      R"({"datasets": ["anybeat"], "methods": ["warp"]})",
      R"({"datasets": ["anybeat"], "methods": ["rw", "rw"]})",
      R"({"datasets": ["anybeat"], "trials": 0})",
      R"({"datasets": ["anybeat"], "trials": 2.5})",
      R"({"datasets": ["anybeat"], "trials": -1})",
      R"({"datasets": ["anybeat"], "rc": -5})",
      R"({"datasets": ["anybeat"], "rc": []})",
      R"({"datasets": ["anybeat"], "rc": [10, 10]})",
      R"({"datasets": ["anybeat"], "walk": "warp"})",
      R"({"datasets": ["anybeat"], "walk": []})",
      R"({"datasets": ["anybeat"], "walk": ["simple", "simple"]})",
      R"({"datasets": ["anybeat"], "walk": 3})",
      R"({"datasets": ["anybeat"], "crawler": "warp"})",
      R"({"datasets": ["anybeat"], "crawler": ["rw", "rw"]})",
      R"({"datasets": ["anybeat"], "estimator": "hybrid"})",
      R"({"datasets": ["anybeat"], "estimator": {"joint_mode": "warp"}})",
      R"({"datasets": ["anybeat"], "estimator": {"typo": 1}})",
      R"({"datasets": ["anybeat"],
          "estimator": [{"joint_mode": "ie"}, {"joint_mode": "ie"}]})",
      R"({"datasets": ["anybeat"],
          "estimator": {"collision_fraction": 0}})",
      R"({"datasets": ["anybeat"],
          "estimator": {"collision_fraction": 1}})",
      R"({"datasets": ["anybeat"], "protect_subgraph": []})",
      R"({"datasets": ["anybeat"], "protect_subgraph": [true, true]})",
      R"({"datasets": ["anybeat"], "protect_subgraph": 1})",
      R"({"datasets": ["anybeat"], "frontier_walkers": 0})",
      R"({"datasets": ["anybeat"], "frontier_walkers": []})",
      R"({"datasets": ["anybeat"], "crawler": "frontier",
          "methods": ["rw"], "frontier_walkers": [5, 5]})",
      // A walker sweep without the frontier crawler duplicates cells —
      // as does a sweep on a mixed crawler axis (the rw cells would run
      // once per walker value).
      R"({"datasets": ["anybeat"], "frontier_walkers": [2, 10]})",
      R"({"datasets": ["anybeat"], "crawler": ["rw", "frontier"],
          "methods": ["rw"], "frontier_walkers": [2, 10]})",
      R"({"datasets": ["anybeat"], "rewire_batch": []})",
      R"({"datasets": ["anybeat"], "rewire_batch": [64, 64]})",
      R"({"datasets": ["anybeat"], "rewire_batch": "big"})",
      R"({"datasets": ["anybeat"], "parallel_assembly": 1})",
      R"({"datasets": ["anybeat"], "snowball_k": 0})",
      R"({"datasets": ["anybeat"], "forest_fire_pf": 1})",
      R"({"datasets": ["anybeat"], "simplify_output": "yes"})",
      R"({"datasets": ["anybeat"], "dataset_scale": -1})",
      R"({"datasets": ["anybeat"], "track_properties": "yes"})",
      R"({"datasets": ["anybeat"], "track_properties": true,
          "stop_epsilon": -0.5})",
      // The adaptive stop reads the tracked distance: epsilon without
      // tracking is a contradiction, not a silent no-op.
      R"({"datasets": ["anybeat"], "stop_epsilon": 0.5})",
      R"({"datasets": ["anybeat"], "surprise": 1})",  // unknown key
      R"([1, 2, 3])",                                 // not an object
  };
  for (const char* text : cases) {
    EXPECT_THROW(ScenarioSpec::FromJson(Json::Parse(text)), ScenarioError)
        << "spec: " << text;
  }
}

TEST(ScenarioSpecTest, NonFiniteNumbersRejectedForEveryNumericKnob) {
  // The JSON layer deliberately admits Infinity/NaN literals (the writer
  // emits them for round-trip fidelity), so every numeric knob must
  // reject them during spec parsing — otherwise NaN flows silently into
  // ExperimentConfig. One regression case per field and literal.
  const char* templates[] = {
      R"({"datasets": ["anybeat"], "fractions": [%]})",
      R"({"datasets": ["anybeat"], "trials": %})",
      R"({"datasets": ["anybeat"], "threads": %})",
      R"({"datasets": ["anybeat"], "seed_base": %})",
      R"({"datasets": ["anybeat"], "rc": %})",
      R"({"datasets": ["anybeat"], "rc": [%]})",
      R"({"datasets": ["anybeat"],
          "estimator": {"collision_fraction": %}})",
      R"({"datasets": ["anybeat"], "frontier_walkers": %})",
      R"({"datasets": ["anybeat"], "frontier_walkers": [%]})",
      R"({"datasets": ["anybeat"], "rewire_batch": %})",
      R"({"datasets": ["anybeat"], "rewire_batch": [%]})",
      R"({"datasets": ["anybeat"], "rewire_threads": %})",
      R"({"datasets": ["anybeat"], "assembly_threads": %})",
      R"({"datasets": ["anybeat"], "estimator_threads": %})",
      R"({"datasets": ["anybeat"], "path_sources": %})",
      R"({"datasets": ["anybeat"], "snowball_k": %})",
      R"({"datasets": ["anybeat"], "forest_fire_pf": %})",
      R"({"datasets": ["anybeat"], "dataset_scale": %})",
      R"({"datasets": ["anybeat"], "track_properties": true,
          "stop_epsilon": %})",
      R"({"datasets": [{"nodes": %}]})",
      R"({"datasets": [{"edges_per_node": %}]})",
      R"({"datasets": [{"triad_p": %}]})",
      R"({"datasets": [{"fringe_fraction": %}]})",
      R"({"datasets": [{"model": "er", "edges": %}]})",
      R"({"datasets": [{"model": "community", "communities": %}]})",
      R"({"datasets": [{"model": "community", "bridges": %}]})",
      R"({"datasets": [{"seed": %}]})",
  };
  for (const char* tmpl : templates) {
    for (const char* literal : {"NaN", "Infinity", "-Infinity"}) {
      std::string text(tmpl);
      text.replace(text.find('%'), 1, literal);
      EXPECT_THROW(ScenarioSpec::FromJson(Json::Parse(text)),
                   ScenarioError)
          << "spec: " << text;
    }
  }
}

TEST(ScenarioSpecTest, ValidateCatchesProgrammaticallyBuiltBadSpecs) {
  // Specs built in C++ never pass through FromJson; Validate (called by
  // RunScenario) is their only gate. Non-finite values and empty axes
  // must throw rather than reach the engine.
  const auto valid = [] {
    ScenarioSpec spec;
    spec.datasets.push_back({"anybeat", {}});
    return spec;
  };
  EXPECT_NO_THROW(valid().Validate());

  ScenarioSpec nan_fraction = valid();
  nan_fraction.fractions = {std::nan("")};
  EXPECT_THROW(nan_fraction.Validate(), ScenarioError);

  ScenarioSpec inf_rc = valid();
  inf_rc.rcs = {std::numeric_limits<double>::infinity()};
  EXPECT_THROW(inf_rc.Validate(), ScenarioError);

  ScenarioSpec nan_pf = valid();
  nan_pf.forest_fire_pf = std::nan("");
  EXPECT_THROW(nan_pf.Validate(), ScenarioError);

  ScenarioSpec nan_scale = valid();
  nan_scale.dataset_scale = std::nan("");
  EXPECT_THROW(nan_scale.Validate(), ScenarioError);

  ScenarioSpec nan_epsilon = valid();
  nan_epsilon.track_properties = true;
  nan_epsilon.stop_epsilon = std::nan("");
  EXPECT_THROW(nan_epsilon.Validate(), ScenarioError);

  ScenarioSpec untracked_epsilon = valid();
  untracked_epsilon.stop_epsilon = 0.1;  // without track_properties
  EXPECT_THROW(untracked_epsilon.Validate(), ScenarioError);

  ScenarioSpec nan_collision = valid();
  nan_collision.estimators[0].collision_fraction = std::nan("");
  EXPECT_THROW(nan_collision.Validate(), ScenarioError);

  ScenarioSpec empty_walks = valid();
  empty_walks.walks.clear();
  EXPECT_THROW(empty_walks.Validate(), ScenarioError);

  ScenarioSpec no_methods = valid();
  no_methods.methods.clear();
  EXPECT_THROW(no_methods.Validate(), ScenarioError);

  // RunScenario refuses the same specs before loading any dataset.
  EXPECT_THROW(RunScenario(nan_fraction, 1), ScenarioError);
}

TEST(ScenarioSpecTest, GeneratorPreconditionsRejectedNotCrashed) {
  // Schema-valid but infeasible generators must throw ScenarioError from
  // BuildGeneratorGraph — the generators' asserts vanish under NDEBUG, so
  // without this gate these specs SIGFPE / hang / SIGSEGV in Release.
  GeneratorSpec er;
  er.model = "er";
  er.nodes = 10;
  er.edges = 100;  // > n(n-1)/2 = 45: the G(n,m) sampler can never finish
  EXPECT_THROW(BuildGeneratorGraph(er), ScenarioError);

  GeneratorSpec community;
  community.model = "community";
  community.nodes = 100;
  community.communities = 0;  // division by zero
  EXPECT_THROW(BuildGeneratorGraph(community), ScenarioError);

  GeneratorSpec tiny_communities;
  tiny_communities.model = "community";
  tiny_communities.nodes = 20;
  tiny_communities.communities = 10;  // community size 2 <= edges_per_node
  tiny_communities.edges_per_node = 4;
  EXPECT_THROW(BuildGeneratorGraph(tiny_communities), ScenarioError);

  GeneratorSpec social;
  social.model = "social";
  social.nodes = 12;
  social.fringe_fraction = 0.9;  // core 1 <= edges_per_node
  EXPECT_THROW(BuildGeneratorGraph(social), ScenarioError);

  GeneratorSpec zero_epn;
  zero_epn.model = "powerlaw";
  zero_epn.nodes = 100;
  zero_epn.edges_per_node = 0;
  EXPECT_THROW(BuildGeneratorGraph(zero_epn), ScenarioError);

  // A feasible spec of every model still builds.
  for (const char* model : {"powerlaw", "ba", "er", "community", "social"}) {
    GeneratorSpec ok;
    ok.model = model;
    ok.nodes = 100;
    EXPECT_GT(BuildGeneratorGraph(ok).NumNodes(), 0u) << model;
  }
}

TEST(ScenarioSpecTest, MethodTokensRoundTrip) {
  for (MethodKind kind :
       {MethodKind::kBfs, MethodKind::kSnowball, MethodKind::kForestFire,
        MethodKind::kRandomWalk, MethodKind::kGjoka,
        MethodKind::kProposed}) {
    EXPECT_EQ(MethodKindFromToken(MethodToken(kind)), kind);
  }
  EXPECT_THROW(MethodKindFromToken("warp"), ScenarioError);
}

TEST(ScenarioSpecTest, BuiltinsAreValidAndListed) {
  const auto names = BuiltinScenarioNames();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    EXPECT_TRUE(IsBuiltinScenario(name));
    const ScenarioSpec spec = BuiltinScenario(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.datasets.empty());
    EXPECT_FALSE(BuiltinScenarioDescription(name).empty());
    // Every built-in must survive its own serialization.
    EXPECT_NO_THROW(ScenarioSpec::FromJson(spec.ToJson()));
  }
  EXPECT_FALSE(IsBuiltinScenario("no-such-scenario"));
  EXPECT_THROW(BuiltinScenario("no-such-scenario"), ScenarioError);
}

// ---------------------------------------------------------------------------
// Report document
// ---------------------------------------------------------------------------

TEST(ScenarioReportTest, StripVolatileRemovesEnvironmentAndTimings) {
  const Json report = Json::Parse(R"({
    "schema": "sgr-report/1",
    "environment": {"threads": 4},
    "cells": [
      {"dataset": "a",
       "methods": [{"method": "Proposed", "timings": {"restore_seconds": 1}}],
       "timings": {"wall_seconds": 2}}
    ]
  })");
  const Json stripped = StripVolatile(report);
  EXPECT_EQ(stripped.Find("environment"), nullptr);
  const Json& cell = stripped.Find("cells")->Items()[0];
  EXPECT_EQ(cell.Find("timings"), nullptr);
  EXPECT_EQ(cell.Find("methods")->Items()[0].Find("timings"), nullptr);
  EXPECT_NE(cell.Find("dataset"), nullptr);
  EXPECT_EQ(stripped.Find("schema")->AsString(), "sgr-report/1");
}

TEST(ScenarioReportTest, EnvironmentCaptureIsPopulated) {
  const RunEnvironment environment = CaptureEnvironment(3);
  EXPECT_EQ(environment.threads, 3u);
  const Json json = EnvironmentToJson(environment);
  EXPECT_DOUBLE_EQ(json.Find("threads")->AsNumber(), 3.0);
  EXPECT_NE(json.Find("build"), nullptr);
  EXPECT_NE(json.Find("hardware_concurrency"), nullptr);
  // No datasets recorded -> no "datasets" key: callers that never load
  // datasets keep their historical environment layout.
  EXPECT_EQ(json.Find("datasets"), nullptr);
}

TEST(ScenarioReportTest, EnvironmentEchoesDatasetProvenance) {
  RunEnvironment environment = CaptureEnvironment(1);
  DatasetProvenance file_backed;
  file_backed.name = "anybeat";
  file_backed.source = "file";
  file_backed.path = "/data/anybeat.txt";
  file_backed.content_hash = "28301d34262df120";
  file_backed.scale = 1.0;
  DatasetProvenance generated;
  generated.name = "gowalla";
  generated.source = "generator";
  generated.scale = 0.25;
  environment.datasets = {file_backed, generated};
  const Json json = EnvironmentToJson(environment);
  const Json* datasets = json.Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_EQ(datasets->Items().size(), 2u);
  const Json& first = datasets->Items()[0];
  EXPECT_EQ(first.Find("name")->AsString(), "anybeat");
  EXPECT_EQ(first.Find("source")->AsString(), "file");
  EXPECT_EQ(first.Find("path")->AsString(), "/data/anybeat.txt");
  EXPECT_EQ(first.Find("content_hash")->AsString(), "28301d34262df120");
  const Json& second = datasets->Items()[1];
  EXPECT_EQ(second.Find("source")->AsString(), "generator");
  EXPECT_EQ(second.Find("path"), nullptr);
  EXPECT_EQ(second.Find("content_hash"), nullptr);
  EXPECT_DOUBLE_EQ(second.Find("scale")->AsNumber(), 0.25);
}

TEST(ScenarioReportTest, ProvenanceLivesInVolatileEnvironmentBlock) {
  // The same spec legitimately runs on real data on one machine and the
  // synthetic stand-in on another — provenance must not break the
  // determinism contract, i.e. StripVolatile removes it with the rest of
  // the environment.
  RunEnvironment environment = CaptureEnvironment(1);
  DatasetProvenance p;
  p.name = "anybeat";
  p.source = "file";
  environment.datasets = {p};
  const Json report =
      MakeReport("sgr run", Json::Object(), Json::Array(), environment);
  ASSERT_NE(report.Find("environment")->Find("datasets"), nullptr);
  const Json stripped = StripVolatile(report);
  EXPECT_EQ(stripped.Find("environment"), nullptr);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// A hermetic, CI-sized scenario: generator datasets (no environment
/// dependence), tiny graphs, all six methods.
ScenarioSpec TinySpec() {
  return ScenarioSpec::FromJson(Json::Parse(R"({
    "name": "tiny",
    "datasets": [{"name": "tiny-powerlaw", "model": "powerlaw",
                  "nodes": 150, "edges_per_node": 3, "triad_p": 0.4,
                  "seed": 11}],
    "fractions": [0.1, 0.2],
    "trials": 2,
    "seed_base": 1234,
    "rc": 5,
    "path_sources": 20
  })"));
}

TEST(ScenarioEngineTest, RunsTheFullMatrix) {
  const ScenarioRunResult result = RunScenario(TinySpec(), 1);
  ASSERT_EQ(result.cells.size(), 2u);  // 1 dataset x 2 fractions
  EXPECT_EQ(result.threads, 1u);
  std::uint64_t expected_seed = 1234;
  for (const ScenarioCell& cell : result.cells) {
    EXPECT_EQ(cell.dataset, "tiny-powerlaw");
    EXPECT_GT(cell.nodes, 0u);
    EXPECT_GT(cell.edges, 0u);
    EXPECT_EQ(cell.trials, 2u);
    EXPECT_EQ(cell.seed_base, expected_seed);
    expected_seed += 2;  // trials per cell
    ASSERT_EQ(cell.methods.size(), 6u);
    for (const auto& [kind, aggregate] : cell.methods) {
      (void)kind;
      const DistanceSummary summary = aggregate.distances.Summarize();
      EXPECT_EQ(summary.runs, 2u);
      EXPECT_GE(summary.mean_average, 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(result.cells[0].query_fraction, 0.1);
  EXPECT_DOUBLE_EQ(result.cells[1].query_fraction, 0.2);
}

TEST(ScenarioEngineTest, RunRecordsDatasetProvenance) {
  const ScenarioRunResult result = RunScenario(TinySpec(), 1);
  ASSERT_EQ(result.datasets.size(), 1u);
  EXPECT_EQ(result.datasets[0].name, "tiny-powerlaw");
  EXPECT_EQ(result.datasets[0].source, "generator");
  const Json report = ScenarioReportToJson(result);
  const Json* datasets = report.Find("environment")->Find("datasets");
  ASSERT_NE(datasets, nullptr);
  ASSERT_EQ(datasets->Items().size(), 1u);
  EXPECT_EQ(datasets->Items()[0].Find("source")->AsString(), "generator");
}

TEST(ScenarioEngineTest, ReportJsonHasTheTwelveProperties) {
  const ScenarioRunResult result = RunScenario(TinySpec(), 1);
  const Json report = ScenarioReportToJson(result);
  EXPECT_EQ(report.Find("schema")->AsString(), "sgr-report/1");
  EXPECT_EQ(report.Find("tool")->AsString(), "sgr run");
  EXPECT_NE(report.Find("environment"), nullptr);
  EXPECT_EQ(report.Find("config")->Find("name")->AsString(), "tiny");
  const auto& cells = report.Find("cells")->Items();
  ASSERT_EQ(cells.size(), 2u);
  for (const Json& cell : cells) {
    EXPECT_NE(cell.Find("timings")->Find("wall_seconds"), nullptr);
    const auto& methods = cell.Find("methods")->Items();
    ASSERT_EQ(methods.size(), 6u);
    for (const Json& method : methods) {
      const Json* per_property =
          method.Find("distances")->Find("per_property");
      ASSERT_NE(per_property, nullptr);
      EXPECT_EQ(per_property->Size(), kNumProperties);
      for (const std::string& name : PropertyNames()) {
        EXPECT_NE(per_property->Find(name), nullptr) << name;
      }
      EXPECT_NE(method.Find("distances")->Find("average"), nullptr);
      EXPECT_NE(method.Find("timings")->Find("restore_seconds"), nullptr);
    }
  }
}

TEST(ScenarioEngineTest, ReportIsByteIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = TinySpec();
  const ScenarioRunResult sequential = RunScenario(spec, 1);
  const ScenarioRunResult concurrent = RunScenario(spec, 4);
  EXPECT_EQ(concurrent.threads, 4u);
  const std::string a =
      StripVolatile(ScenarioReportToJson(sequential)).Dump(2);
  const std::string b =
      StripVolatile(ScenarioReportToJson(concurrent)).Dump(2);
  EXPECT_EQ(a, b);
  // The stripped report still carries the scientific content.
  EXPECT_NE(a.find("per_property"), std::string::npos);
  EXPECT_NE(a.find("\"average\""), std::string::npos);
}

TEST(ScenarioEngineTest,
     RewireKnobReportByteIdenticalAcrossRewireThreadCounts) {
  // A spec that turns on the batched rewiring engine must produce the
  // same StripVolatile'd report no matter how many rewire workers score
  // its proposal batches — the intra-trial extension of the engine's
  // determinism contract. The spec pins trials to one engine thread so
  // only the rewire worker count varies.
  ScenarioSpec spec = TinySpec();
  spec.rewire_batches = {32};
  ASSERT_EQ(spec.rewire_threads, 1u);  // the default the override beats

  const ScenarioRunResult one =
      RunScenario(spec, 1, nullptr, /*rewire_threads_override=*/1);
  const ScenarioRunResult two =
      RunScenario(spec, 1, nullptr, /*rewire_threads_override=*/2);
  const ScenarioRunResult eight =
      RunScenario(spec, 1, nullptr, /*rewire_threads_override=*/8);
  EXPECT_EQ(two.rewire_threads, 2u);
  EXPECT_EQ(eight.rewire_threads, 8u);

  const std::string a = StripVolatile(ScenarioReportToJson(one)).Dump(2);
  const std::string b = StripVolatile(ScenarioReportToJson(two)).Dump(2);
  const std::string c = StripVolatile(ScenarioReportToJson(eight)).Dump(2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  // The override never leaks into the deterministic spec echo, and the
  // per-method rewire statistics survive the strip (they are content,
  // not timings).
  EXPECT_NE(a.find("\"rewire_threads\": 1"), std::string::npos);
  EXPECT_NE(a.find("\"rewire_batch\": 32"), std::string::npos);
  EXPECT_NE(a.find("\"rewire\""), std::string::npos);
  EXPECT_NE(a.find("\"rounds\""), std::string::npos);

  // The batched engine actually ran: the generative methods report
  // nonzero round counts in the report JSON.
  const Json report = ScenarioReportToJson(one);
  bool saw_rounds = false;
  for (const Json& cell : report.Find("cells")->Items()) {
    for (const Json& method : cell.Find("methods")->Items()) {
      const Json* rewire = method.Find("rewire");
      ASSERT_NE(rewire, nullptr);
      if (rewire->Find("rounds")->AsNumber() > 0.0) saw_rounds = true;
    }
  }
  EXPECT_TRUE(saw_rounds);
}

TEST(ScenarioEngineTest,
     TrackedReportByteIdenticalAcrossRewireThreadCounts) {
  // track_properties adds the per-round convergence block to the report.
  // The tracker observes committed swaps only, and those are sequenced
  // deterministically, so the block — double fields included — must be
  // byte-identical no matter how many rewire workers score batches.
  ScenarioSpec spec = TinySpec();
  spec.rewire_batches = {32};
  spec.track_properties = true;

  const ScenarioRunResult one =
      RunScenario(spec, 1, nullptr, /*rewire_threads_override=*/1);
  const ScenarioRunResult two =
      RunScenario(spec, 1, nullptr, /*rewire_threads_override=*/2);
  const ScenarioRunResult eight =
      RunScenario(spec, 1, nullptr, /*rewire_threads_override=*/8);
  const std::string a = StripVolatile(ScenarioReportToJson(one)).Dump(2);
  const std::string b = StripVolatile(ScenarioReportToJson(two)).Dump(2);
  const std::string c = StripVolatile(ScenarioReportToJson(eight)).Dump(2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  // The convergence curve is deterministic content, not a timing — it
  // survives the strip, and the knob echoes in the config block.
  EXPECT_NE(a.find("\"convergence\""), std::string::npos);
  EXPECT_NE(a.find("\"samples\""), std::string::npos);
  EXPECT_NE(a.find("\"track_properties\": true"), std::string::npos);

  // Every method that actually rewires carries a full fixed-length
  // curve; sampling-only methods emit no convergence block at all.
  const Json report = ScenarioReportToJson(one);
  bool saw_curve = false;
  for (const Json& cell : report.Find("cells")->Items()) {
    for (const Json& method : cell.Find("methods")->Items()) {
      const Json* convergence = method.Find("convergence");
      if (convergence == nullptr) continue;
      saw_curve = true;
      EXPECT_NE(convergence->Find("stopped_early"), nullptr);
      const Json* samples = convergence->Find("samples");
      ASSERT_NE(samples, nullptr);
      EXPECT_EQ(samples->Size(), kConvergenceSamples);
      for (const Json& sample : samples->Items()) {
        for (const char* field : {"attempts", "objective",
                                  "clustering_global", "components",
                                  "lcc"}) {
          EXPECT_NE(sample.Find(field), nullptr) << field;
        }
      }
    }
  }
  EXPECT_TRUE(saw_curve);

  // The very same spec with tracking off reproduces the historical
  // report layout byte for byte: no convergence key anywhere, so
  // recorded baselines (BENCH_scenarios.json) stay drift-0.
  spec.track_properties = false;
  const ScenarioRunResult off =
      RunScenario(spec, 1, nullptr, /*rewire_threads_override=*/1);
  const std::string d = StripVolatile(ScenarioReportToJson(off)).Dump(2);
  EXPECT_EQ(d.find("\"convergence\""), std::string::npos);
}

/// Downsized ablation-style spec: every new axis active at once on a
/// hermetic generator dataset, methods pinned to the walk-based trio.
ScenarioSpec TinyAxisSpec() {
  return ScenarioSpec::FromJson(Json::Parse(R"({
    "name": "tiny-axes",
    "datasets": [{"name": "tiny-powerlaw", "model": "powerlaw",
                  "nodes": 150, "edges_per_node": 3, "triad_p": 0.4,
                  "seed": 11}],
    "fractions": [0.15],
    "methods": ["rw", "gjoka", "proposed"],
    "walk": ["simple", "non-backtracking"],
    "estimator": [{"joint_mode": "hybrid"}, {"joint_mode": "te"}],
    "rc": [5, 20],
    "protect_subgraph": [true, false],
    "trials": 2,
    "seed_base": 4321,
    "path_sources": 20
  })"));
}

TEST(ScenarioEngineTest, CellsEchoTheirKnobCoordinates) {
  const ScenarioSpec spec = TinyAxisSpec();
  const ScenarioRunResult result = RunScenario(spec, 1);
  // 1 dataset x 1 fraction x 2 walks x 2 estimators x 2 rcs x 2 protects.
  ASSERT_EQ(result.cells.size(), 16u);
  std::uint64_t expected_seed = 4321;
  std::size_t index = 0;
  for (WalkKind walk : {WalkKind::kSimple, WalkKind::kNonBacktracking}) {
    for (JointEstimatorMode joint :
         {JointEstimatorMode::kHybrid,
          JointEstimatorMode::kTraversedEdgesOnly}) {
      for (double rc : {5.0, 20.0}) {
        for (bool protect : {true, false}) {
          const ScenarioCell& cell = result.cells[index];
          EXPECT_EQ(cell.walk, walk) << index;
          EXPECT_EQ(cell.crawler, CrawlerKind::kRw) << index;
          EXPECT_EQ(cell.joint_mode, joint) << index;
          EXPECT_DOUBLE_EQ(cell.rc, rc) << index;
          EXPECT_EQ(cell.protect_subgraph, protect) << index;
          EXPECT_EQ(cell.seed_base, expected_seed) << index;
          // The walk-based trio shares one sample: identical steps.
          const double rw_steps =
              cell.methods.at(MethodKind::kRandomWalk).sample_steps;
          EXPECT_GT(rw_steps, 0.0) << index;
          EXPECT_DOUBLE_EQ(
              cell.methods.at(MethodKind::kGjoka).sample_steps, rw_steps)
              << index;
          EXPECT_DOUBLE_EQ(
              cell.methods.at(MethodKind::kProposed).sample_steps,
              rw_steps)
              << index;
          expected_seed += 2;  // trials per cell
          ++index;
        }
      }
    }
  }
  // The knob echo reaches the report JSON (outside "timings", so it
  // survives StripVolatile and `sgr diff` can pair on it).
  const Json report = StripVolatile(ScenarioReportToJson(result));
  const Json& first = report.Find("cells")->Items()[0];
  EXPECT_EQ(first.Find("walk")->AsString(), "simple");
  EXPECT_EQ(first.Find("crawler")->AsString(), "rw");
  EXPECT_EQ(first.Find("estimator")->Find("joint_mode")->AsString(),
            "hybrid");
  EXPECT_DOUBLE_EQ(first.Find("rc")->AsNumber(), 5.0);
  EXPECT_TRUE(first.Find("protect_subgraph")->AsBool());
  EXPECT_NE(first.Find("methods")->Items()[0].Find("sample_steps"),
            nullptr);
}

TEST(ScenarioEngineTest, AxisSweepsActuallyChangeTheWorkload) {
  const ScenarioRunResult result = RunScenario(TinyAxisSpec(), 1);
  ASSERT_EQ(result.cells.size(), 16u);
  // NBRW needs fewer steps than SRW for the same query budget (its
  // query efficiency — the walk ablation's headline).
  const double srw_steps =
      result.cells[0].methods.at(MethodKind::kProposed).sample_steps;
  const double nbrw_steps =
      result.cells[8].methods.at(MethodKind::kProposed).sample_steps;
  EXPECT_LT(nbrw_steps, srw_steps);
  // The unprotected candidate set must differ from the protected one in
  // the rewire trajectory (same seeds otherwise).
  const RewireAggregate& protected_rewire =
      result.cells[0].methods.at(MethodKind::kProposed).rewire;
  const RewireAggregate& unprotected_rewire =
      result.cells[1].methods.at(MethodKind::kProposed).rewire;
  EXPECT_NE(protected_rewire.accepted, unprotected_rewire.accepted);
}

TEST(ScenarioEngineTest, MultiAxisReportByteIdenticalAcrossThreadCounts) {
  // The determinism contract extended to the full axis matrix: every
  // cell of the ablation-style spec reproduces byte-identically at any
  // trial thread count.
  const ScenarioSpec spec = TinyAxisSpec();
  const std::string a =
      StripVolatile(ScenarioReportToJson(RunScenario(spec, 1))).Dump(2);
  const std::string b =
      StripVolatile(ScenarioReportToJson(RunScenario(spec, 4))).Dump(2);
  EXPECT_EQ(a, b);
}

TEST(ScenarioEngineTest,
     ReportByteIdenticalAcrossAssemblyAndEstimatorThreads) {
  // The intra-trial engines this PR parallelizes: a spec that enables
  // the parallel assembly and sweeps the rewire_batch axis must produce
  // the same StripVolatile'd report no matter how many workers score the
  // assembly draws or the estimator chunks.
  ScenarioSpec spec = TinySpec();
  spec.parallel_assembly = true;
  spec.rewire_batches = {0, 16};
  ASSERT_EQ(spec.assembly_threads, 1u);
  ASSERT_EQ(spec.estimator_threads, 1u);

  const ScenarioRunResult one = RunScenario(
      spec, 1, nullptr, kThreadsFromSpec, /*assembly_threads_override=*/1,
      /*estimator_threads_override=*/1);
  const ScenarioRunResult many = RunScenario(
      spec, 1, nullptr, kThreadsFromSpec, /*assembly_threads_override=*/8,
      /*estimator_threads_override=*/8);
  EXPECT_EQ(many.assembly_threads, 8u);
  EXPECT_EQ(many.estimator_threads, 8u);

  const std::string a = StripVolatile(ScenarioReportToJson(one)).Dump(2);
  const std::string b = StripVolatile(ScenarioReportToJson(many)).Dump(2);
  EXPECT_EQ(a, b);
  // The overrides never leak into the deterministic spec echo; the new
  // knobs do appear there and in the cell echo.
  EXPECT_NE(a.find("\"assembly_threads\": 1"), std::string::npos);
  EXPECT_NE(a.find("\"estimator_threads\": 1"), std::string::npos);
  EXPECT_NE(a.find("\"parallel_assembly\": true"), std::string::npos);
  EXPECT_NE(a.find("\"rewire_batch\": 0"), std::string::npos);
  EXPECT_NE(a.find("\"rewire_batch\": 16"), std::string::npos);
  EXPECT_NE(a.find("\"frontier_walkers\": 10"), std::string::npos);

  // The batch axis doubled the matrix, and the cells echo their batch
  // coordinate (cells expand batch-minor within each fraction).
  ASSERT_EQ(one.cells.size(), 4u);  // 2 fractions x 2 batches
  EXPECT_EQ(one.cells[0].rewire_batch, 0u);
  EXPECT_EQ(one.cells[1].rewire_batch, 16u);
  EXPECT_EQ(one.cells[0].frontier_walkers, 10u);
  // The two batch coordinates select different rewiring trajectories for
  // the same seeds (batch is an algorithm knob).
  EXPECT_NE(
      one.cells[0].methods.at(MethodKind::kProposed).rewire.rounds,
      one.cells[1].methods.at(MethodKind::kProposed).rewire.rounds);
}

TEST(ScenarioEngineTest, FrontierWalkerSweepChangesTheSample) {
  ScenarioSpec spec = ScenarioSpec::FromJson(Json::Parse(R"({
    "name": "walkers",
    "datasets": [{"name": "tiny-powerlaw", "model": "powerlaw",
                  "nodes": 200, "edges_per_node": 3, "triad_p": 0.4,
                  "seed": 11}],
    "fractions": [0.2],
    "methods": ["rw"],
    "crawler": "frontier",
    "frontier_walkers": [2, 25],
    "trials": 2,
    "seed_base": 99,
    "path_sources": 20
  })"));
  const ScenarioRunResult result = RunScenario(spec, 1);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].frontier_walkers, 2u);
  EXPECT_EQ(result.cells[1].frontier_walkers, 25u);
  // More coupled walkers spread the same budget differently — the walk
  // length (a deterministic function of the sample) must differ.
  EXPECT_NE(
      result.cells[0].methods.at(MethodKind::kRandomWalk).sample_steps,
      result.cells[1].methods.at(MethodKind::kRandomWalk).sample_steps);
}

TEST(ScenarioEngineTest, NonWalkCrawlerRunsSubgraphMethods) {
  // A bfs/snowball/ff crawler is valid without generative methods; the
  // rw method then means "subgraph of that crawl".
  ScenarioSpec spec = ScenarioSpec::FromJson(Json::Parse(R"({
    "name": "crawlers",
    "datasets": [{"name": "tiny-powerlaw", "model": "powerlaw",
                  "nodes": 150, "edges_per_node": 3, "triad_p": 0.4,
                  "seed": 11}],
    "fractions": [0.2],
    "methods": ["rw"],
    "crawler": ["rw", "frontier", "mhrw", "bfs", "snowball", "ff"],
    "trials": 2,
    "seed_base": 77,
    "path_sources": 20
  })"));
  const ScenarioRunResult result = RunScenario(spec, 1);
  ASSERT_EQ(result.cells.size(), 6u);
  for (const ScenarioCell& cell : result.cells) {
    const MethodAggregate& aggregate =
        cell.methods.at(MethodKind::kRandomWalk);
    EXPECT_GT(aggregate.sample_steps, 0.0)
        << CrawlerToken(cell.crawler);
    EXPECT_EQ(aggregate.distances.Summarize().runs, 2u)
        << CrawlerToken(cell.crawler);
  }
  // Different crawlers produce different samples: the bfs cell's steps
  // differ from the rw cell's (queried-node count vs walk length).
  EXPECT_NE(
      result.cells[0].methods.at(MethodKind::kRandomWalk).sample_steps,
      result.cells[3].methods.at(MethodKind::kRandomWalk).sample_steps);
}

TEST(ScenarioEngineTest, CellSeedingWrapsDeterministicallyNearUint64Max) {
  // The seeding contract (engine.h): seed_base + c * trials + i wraps
  // modulo 2^64 by design. A spec whose seed_base sits 1 trial short of
  // UINT64_MAX must run, wrap, and reproduce byte-identically.
  ScenarioSpec spec = ScenarioSpec::FromJson(Json::Parse(R"({
    "name": "wrap",
    "datasets": [{"name": "tiny-powerlaw", "model": "powerlaw",
                  "nodes": 150, "edges_per_node": 3, "triad_p": 0.4,
                  "seed": 11}],
    "fractions": [0.1, 0.2],
    "methods": ["proposed"],
    "trials": 2,
    "rc": 5,
    "path_sources": 20
  })"));
  spec.seed_base = std::numeric_limits<std::uint64_t>::max() - 1;
  const ScenarioRunResult result = RunScenario(spec, 1);
  ASSERT_EQ(result.cells.size(), 2u);
  // Cell 0 spans seeds {2^64-2, 2^64-1}; cell 1 wraps to base 0.
  EXPECT_EQ(result.cells[0].seed_base,
            std::numeric_limits<std::uint64_t>::max() - 1);
  EXPECT_EQ(result.cells[1].seed_base, 0u);
  // Deterministic across repetitions and thread counts, wrap included.
  const std::string a =
      StripVolatile(ScenarioReportToJson(result)).Dump(2);
  const std::string b =
      StripVolatile(ScenarioReportToJson(RunScenario(spec, 2))).Dump(2);
  EXPECT_EQ(a, b);
}

TEST(ScenarioEngineTest, RunScenarioCellMatchesDirectRunExperiments) {
  // The engine's cell aggregation must be exactly the benches' historical
  // RunDataset reduction: trial i seeded seed_base + i, reduced in trial
  // order, timing means divided by the trial count.
  const ScenarioSpec spec = TinySpec();
  Rng rng(spec.datasets[0].generator->seed);
  const Graph dataset = PreprocessDataset(GeneratePowerlawCluster(
      spec.datasets[0].generator->nodes,
      spec.datasets[0].generator->edges_per_node,
      spec.datasets[0].generator->triad_p, rng));
  const ExperimentConfig config = spec.ToExperimentConfig(0.1);
  const GraphProperties properties =
      ComputeProperties(dataset, config.property_options);
  const ScenarioCell cell = RunScenarioCell(
      "x", dataset, properties, config, spec.trials, spec.seed_base, 1);
  const auto trials = RunExperiments(dataset, properties, config,
                                     spec.seed_base, spec.trials, 1);
  DistanceAccumulator expected;
  for (const auto& trial : trials) {
    for (const MethodRunResult& r : trial) {
      if (r.kind == MethodKind::kProposed) expected.Add(r.distances);
    }
  }
  EXPECT_DOUBLE_EQ(
      cell.methods.at(MethodKind::kProposed).distances.Summarize()
          .mean_average,
      expected.Summarize().mean_average);
}

}  // namespace
}  // namespace sgr
