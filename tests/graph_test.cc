#include "graph/graph.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace sgr {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
  EXPECT_TRUE(g.IsSimple());
}

TEST(GraphTest, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.NumNodes(), 3u);
  const EdgeId e = g.AddEdge(0, 1);
  EXPECT_EQ(e, 0u);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, AddNodeReturnsDenseIds) {
  Graph g;
  EXPECT_EQ(g.AddNode(), 0u);
  EXPECT_EQ(g.AddNode(), 1u);
  g.AddNodes(3);
  EXPECT_EQ(g.NumNodes(), 5u);
}

TEST(GraphTest, SelfLoopCountsTwiceInDegree) {
  Graph g(2);
  g.AddEdge(0, 0);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  // A_vv equals twice the loop count.
  EXPECT_EQ(g.CountEdges(0, 0), 2u);
  EXPECT_FALSE(g.IsSimple());
}

TEST(GraphTest, MultiEdgesAreCounted) {
  Graph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.CountEdges(0, 1), 2u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_FALSE(g.IsSimple());
}

TEST(GraphTest, AverageDegreeMatchesHandshake) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0 * 3 / 4);
  EXPECT_EQ(g.TotalDegree(), 2 * g.NumEdges());
}

TEST(GraphTest, AdjacencyContainsLoopTwice) {
  Graph g(1);
  g.AddEdge(0, 0);
  const auto& adj = g.adjacency(0);
  EXPECT_EQ(adj.size(), 2u);
  EXPECT_EQ(adj[0], 0u);
  EXPECT_EQ(adj[1], 0u);
}

TEST(GraphTest, ReplaceEdgeMovesEndpoints) {
  Graph g(4);
  const EdgeId e = g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  g.ReplaceEdge(e, 0, 2);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(1), 0u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_EQ(g.edge(e).u, 0u);
  EXPECT_EQ(g.edge(e).v, 2u);
}

TEST(GraphTest, ReplaceEdgeHandlesLoopToRegular) {
  Graph g(3);
  const EdgeId e = g.AddEdge(1, 1);
  EXPECT_EQ(g.Degree(1), 2u);
  g.ReplaceEdge(e, 1, 2);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphTest, ReplaceEdgeHandlesRegularToLoop) {
  Graph g(3);
  const EdgeId e = g.AddEdge(1, 2);
  g.ReplaceEdge(e, 0, 0);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 0u);
  EXPECT_EQ(g.Degree(2), 0u);
  EXPECT_EQ(g.CountEdges(0, 0), 2u);
}

TEST(GraphTest, SimplifiedDropsLoopsAndParallels) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // parallel
  g.AddEdge(2, 2);  // loop
  g.AddEdge(1, 2);
  const Graph s = g.Simplified();
  EXPECT_TRUE(s.IsSimple());
  EXPECT_EQ(s.NumNodes(), 3u);
  EXPECT_EQ(s.NumEdges(), 2u);
  EXPECT_TRUE(s.HasEdge(0, 1));
  EXPECT_TRUE(s.HasEdge(1, 2));
}

TEST(GraphTest, CountEdgesScansSmallerSide) {
  Graph g(5);
  for (NodeId v = 1; v < 5; ++v) g.AddEdge(0, v);
  EXPECT_EQ(g.CountEdges(0, 3), 1u);
  EXPECT_EQ(g.CountEdges(3, 0), 1u);
  EXPECT_EQ(g.CountEdges(1, 2), 0u);
}

TEST(GraphTest, EdgesAreStableUnderReplace) {
  Graph g(4);
  g.AddEdge(0, 1);
  const EdgeId e1 = g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.ReplaceEdge(e1, 0, 3);
  ASSERT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.edge(0).u, 0u);
  EXPECT_EQ(g.edge(2).u, 2u);
}

}  // namespace
}  // namespace sgr
