#include "graph/components.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace sgr {
namespace {

TEST(ComponentsTest, SingleComponent) {
  const Graph g = GenerateCycle(5);
  const ComponentsResult r = ConnectedComponents(g);
  EXPECT_EQ(r.sizes.size(), 1u);
  EXPECT_EQ(r.sizes[0], 5u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ComponentsTest, DisconnectedPieces) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  // node 5 isolated
  const ComponentsResult r = ConnectedComponents(g);
  EXPECT_EQ(r.sizes.size(), 3u);
  EXPECT_EQ(CountComponents(g), 3u);
  EXPECT_FALSE(IsConnected(g));
  EXPECT_EQ(r.sizes[r.largest], 3u);
}

TEST(ComponentsTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(CountComponents(g), 0u);
  EXPECT_FALSE(IsConnected(g));
  const Graph lcc = LargestConnectedComponent(g);
  EXPECT_EQ(lcc.NumNodes(), 0u);
}

TEST(ComponentsTest, LargestComponentExtraction) {
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(3, 4);
  g.AddEdge(5, 6);
  std::vector<NodeId> mapping;
  const Graph lcc = LargestConnectedComponent(g, &mapping);
  EXPECT_EQ(lcc.NumNodes(), 3u);
  EXPECT_EQ(lcc.NumEdges(), 3u);
  EXPECT_NE(mapping[0], kNotInLcc);
  EXPECT_NE(mapping[1], kNotInLcc);
  EXPECT_NE(mapping[2], kNotInLcc);
  EXPECT_EQ(mapping[3], kNotInLcc);
  EXPECT_EQ(mapping[5], kNotInLcc);
}

TEST(ComponentsTest, LccPreservesMultiEdgesWithin) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const Graph lcc = LargestConnectedComponent(g);
  EXPECT_EQ(lcc.NumNodes(), 2u);
  EXPECT_EQ(lcc.NumEdges(), 2u);
}

TEST(ComponentsTest, PreprocessMatchesPaperPipeline) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);  // parallel -> collapses
  g.AddEdge(1, 1);  // loop -> dropped
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);  // smaller component -> dropped
  const Graph p = PreprocessDataset(g);
  EXPECT_TRUE(p.IsSimple());
  EXPECT_EQ(p.NumNodes(), 3u);
  EXPECT_EQ(p.NumEdges(), 2u);
  EXPECT_TRUE(IsConnected(p));
}

TEST(ComponentsTest, ComponentOfIsConsistentWithSizes) {
  Rng rng(11);
  Graph g = GenerateErdosRenyiGnm(60, 40, rng);  // likely disconnected
  const ComponentsResult r = ConnectedComponents(g);
  std::vector<std::size_t> recount(r.sizes.size(), 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_LT(r.component_of[v], r.sizes.size());
    ++recount[r.component_of[v]];
  }
  EXPECT_EQ(recount, r.sizes);
}

}  // namespace
}  // namespace sgr
