#include "dk/degree_vector.h"

#include <gtest/gtest.h>

namespace sgr {
namespace {

TEST(DegreeVectorTest, NodeAndDegreeSums) {
  const DegreeVector dv = {0, 3, 2, 1};  // 3 deg-1, 2 deg-2, 1 deg-3
  EXPECT_EQ(DegreeVectorNodes(dv), 6);
  EXPECT_EQ(DegreeVectorTotalDegree(dv), 3 + 4 + 3);
}

TEST(DegreeVectorTest, EmptyVector) {
  const DegreeVector dv;
  EXPECT_EQ(DegreeVectorNodes(dv), 0);
  EXPECT_EQ(DegreeVectorTotalDegree(dv), 0);
  EXPECT_TRUE(SatisfiesDv1(dv));
  EXPECT_TRUE(SatisfiesDv2(dv));
}

TEST(DegreeVectorTest, Dv1DetectsNegative) {
  EXPECT_TRUE(SatisfiesDv1({0, 1, 2}));
  EXPECT_FALSE(SatisfiesDv1({0, -1, 2}));
}

TEST(DegreeVectorTest, Dv2Parity) {
  EXPECT_TRUE(SatisfiesDv2({0, 2, 1}));   // 2 + 2 = 4 even
  EXPECT_FALSE(SatisfiesDv2({0, 1, 1}));  // 1 + 2 = 3 odd
  EXPECT_TRUE(SatisfiesDv2({0, 0, 5}));   // 10 even
}

}  // namespace
}  // namespace sgr
