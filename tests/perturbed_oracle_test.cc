// Contract tests of the adversarial oracle (sampling/perturbed_oracle.h):
// every perturbation decision is a pure hash of (seed, ids), so answers
// are consistent under repetition, agree across both endpoints of an
// edge, and are independent of query order — and an inactive noise
// config is bit-for-bit the cooperative QueryOracle.

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sampling/perturbed_oracle.h"

namespace sgr {
namespace {

Graph TestGraph() {
  Rng rng(42);
  return GeneratePowerlawCluster(300, 3, 0.4, rng);
}

std::vector<NodeId> Snapshot(NeighborSpan span) {
  return std::vector<NodeId>(span.begin(), span.end());
}

TEST(PerturbedOracleTest, InactiveNoiseMatchesCooperativeOracle) {
  const Graph g = TestGraph();
  QueryOracle base(g);
  PerturbedOracle perturbed(g, CrawlNoise{}, 1234);
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(Snapshot(base.Query(v)), Snapshot(perturbed.Query(v)))
        << "node " << v;
  }
  // The zero-noise fast path never touches the perturbation counters.
  EXPECT_EQ(perturbed.api_calls(), 0u);
  EXPECT_EQ(perturbed.failed_queries(), 0u);
  EXPECT_EQ(perturbed.suppressed_edges(), 0u);
  EXPECT_EQ(perturbed.unique_queries(), 50u);
}

TEST(PerturbedOracleTest, FailureIsPersistentPerNode) {
  const Graph g = TestGraph();
  CrawlNoise noise;
  noise.failure = 0.5;
  PerturbedOracle oracle(g, noise, 99);
  std::vector<bool> failed_first(100);
  for (NodeId v = 0; v < 100; ++v) {
    failed_first[v] = oracle.Query(v).empty();
  }
  std::size_t failures = 0;
  for (NodeId v = 0; v < 100; ++v) {
    // A suspended account stays suspended; a live one stays live.
    EXPECT_EQ(oracle.Query(v).empty(), failed_first[v]) << "node " << v;
    if (failed_first[v]) ++failures;
  }
  // At failure = 0.5 over 100 nodes, both outcomes must occur (each tail
  // has probability 2^-100).
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, 100u);
  EXPECT_EQ(oracle.failed_queries(), 2 * failures);
}

TEST(PerturbedOracleTest, NoiseFailsNodePredictsTheOracle) {
  const Graph g = TestGraph();
  CrawlNoise noise;
  noise.failure = 0.4;
  const std::uint64_t seed = 777;
  PerturbedOracle oracle(g, noise, seed);
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_EQ(oracle.Query(v).empty(), NoiseFailsNode(noise, seed, v))
        << "node " << v;
  }
}

TEST(PerturbedOracleTest, HiddenEdgesAgreeAcrossEndpoints) {
  const Graph g = TestGraph();
  CrawlNoise noise;
  noise.hidden_edges = 0.5;
  PerturbedOracle oracle(g, noise, 2024);
  std::size_t visible = 0, hidden = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const std::vector<NodeId> nbrs = Snapshot(oracle.Query(v));
    for (NodeId w : g.adjacency(v)) {
      const bool sees =
          std::find(nbrs.begin(), nbrs.end(), w) != nbrs.end();
      // The reverse direction must agree: the edge hashes on its
      // canonical endpoint pair, not on the queried side.
      const std::vector<NodeId> back = Snapshot(oracle.Query(w));
      const bool seen_back =
          std::find(back.begin(), back.end(), v) != back.end();
      EXPECT_EQ(sees, seen_back) << "edge " << v << "-" << w;
      (sees ? visible : hidden) += 1;
    }
    if (v >= 40) break;  // enough edges; the loop above is quadratic-ish
  }
  EXPECT_GT(visible, 0u);
  EXPECT_GT(hidden, 0u);
  EXPECT_GT(oracle.suppressed_edges(), 0u);
}

TEST(PerturbedOracleTest, HiddenEdgesAreIndependentOfQueryOrder) {
  const Graph g = TestGraph();
  CrawlNoise noise;
  noise.hidden_edges = 0.3;
  PerturbedOracle forward(g, noise, 5);
  PerturbedOracle backward(g, noise, 5);
  std::vector<std::vector<NodeId>> forward_answers(60);
  for (NodeId v = 0; v < 60; ++v) {
    forward_answers[v] = Snapshot(forward.Query(v));
  }
  for (NodeId v = 60; v-- > 0;) {
    EXPECT_EQ(Snapshot(backward.Query(v)), forward_answers[v])
        << "node " << v;
  }
}

TEST(PerturbedOracleTest, ChurnIsDeterministicInTheCallSequence) {
  const Graph g = TestGraph();
  CrawlNoise noise;
  noise.churn = 0.3;
  PerturbedOracle a(g, noise, 11);
  PerturbedOracle b(g, noise, 11);
  bool any_flicker = false;
  std::vector<NodeId> first;
  for (NodeId v = 0; v < 40; ++v) {
    // Same seed + same call sequence => identical answers, call by call.
    const std::vector<NodeId> answer = Snapshot(a.Query(v));
    EXPECT_EQ(answer, Snapshot(b.Query(v))) << "node " << v;
    if (v == 0) first = answer;
  }
  // Churn redraws per API call: the same node's answer may change
  // between calls (that is the point). Probe a few repeat calls.
  for (int i = 0; i < 20 && !any_flicker; ++i) {
    any_flicker = Snapshot(a.Query(0)) != first;
    (void)b.Query(0);
  }
  EXPECT_TRUE(any_flicker) << "churn 0.3 never changed an answer";
}

TEST(PerturbedOracleTest, ApiBudgetExhaustionAnswersEmpty) {
  const Graph g = TestGraph();
  CrawlNoise noise;
  noise.api_budget = 10;
  PerturbedOracle oracle(g, noise, 3);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_FALSE(oracle.Query(v).empty()) << "call " << v << " (in budget)";
  }
  EXPECT_TRUE(oracle.BudgetExhausted());
  for (NodeId v = 10; v < 20; ++v) {
    EXPECT_TRUE(oracle.Query(v).empty()) << "call " << v << " (spent)";
  }
  EXPECT_EQ(oracle.api_calls(), 20u);
  EXPECT_EQ(oracle.failed_queries(), 10u);
}

TEST(PerturbedOracleTest, SpanSurvivesOneSubsequentQuery) {
  const Graph g = TestGraph();
  CrawlNoise noise;
  noise.hidden_edges = 0.2;  // force the scratch-backed filter path
  PerturbedOracle oracle(g, noise, 8);
  const NeighborSpan held = oracle.Query(0);
  const std::vector<NodeId> copy = Snapshot(held);
  // One more query lands in the other scratch slot; the held span must
  // still read the same data (the documented two-slot contract MHRW
  // relies on while it holds the current node across a proposal query).
  (void)oracle.Query(1);
  EXPECT_EQ(Snapshot(held), copy);
}

TEST(PerturbedOracleTest, RejectsOutOfRangeKnobs) {
  const Graph g = GenerateCycle(10);
  const auto expect_throws = [&](CrawlNoise noise) {
    EXPECT_THROW(PerturbedOracle(g, noise, 1), std::invalid_argument);
  };
  CrawlNoise noise;
  noise.failure = 1.5;
  expect_throws(noise);
  noise.failure = -0.1;
  expect_throws(noise);
  noise = {};
  noise.hidden_edges = std::numeric_limits<double>::quiet_NaN();
  expect_throws(noise);
  noise = {};
  noise.churn = std::numeric_limits<double>::infinity();
  expect_throws(noise);
  // The full-range extremes are legal at the oracle level (the spec layer
  // caps at 0.9, the oracle itself accepts [0, 1]).
  noise = {};
  noise.failure = 1.0;
  PerturbedOracle all_fail(g, noise, 1);
  EXPECT_TRUE(all_fail.Query(0).empty());
}

TEST(PerturbedOracleTest, CsrOverloadMatchesGraphOverload) {
  const Graph g = TestGraph();
  const CsrGraph csr(g);
  CrawlNoise noise;
  noise.failure = 0.3;
  noise.hidden_edges = 0.3;
  PerturbedOracle from_graph(g, noise, 21);
  PerturbedOracle from_csr(csr, noise, 21);
  for (NodeId v = 0; v < 50; ++v) {
    std::vector<NodeId> a = Snapshot(from_graph.Query(v));
    std::vector<NodeId> b = Snapshot(from_csr.Query(v));
    // CSR stores neighbors sorted; compare as sets.
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "node " << v;
  }
}

}  // namespace
}  // namespace sgr
