#include "estimation/estimators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "graph/generators.h"
#include "sampling/random_walk.h"

namespace sgr {
namespace {

/// Walks `target` queried nodes on `g` and returns the estimates.
LocalEstimates EstimateOn(const Graph& g, std::size_t target,
                          std::uint64_t seed) {
  QueryOracle oracle(g);
  Rng rng(seed);
  const SamplingList list = RandomWalkSample(
      oracle, static_cast<NodeId>(rng.NextIndex(g.NumNodes())), target, rng);
  return EstimateLocalProperties(list);
}

TEST(EstimatorsTest, AverageDegreeOnRegularGraphIsExact) {
  // On a k-regular graph 1/Φ̄ = k for every walk.
  const Graph g = GenerateCycle(100);
  QueryOracle oracle(g);
  Rng rng(1);
  const SamplingList list = RandomWalkSample(oracle, 0, 20, rng);
  EXPECT_DOUBLE_EQ(EstimateAverageDegree(list), 2.0);
}

TEST(EstimatorsTest, AverageDegreeConvergesOnHeavyTail) {
  Rng gen_rng(2);
  const Graph g = GeneratePowerlawCluster(2000, 4, 0.3, gen_rng);
  const LocalEstimates est = EstimateOn(g, 600, 3);
  EXPECT_NEAR(est.average_degree, g.AverageDegree(),
              0.15 * g.AverageDegree());
}

TEST(EstimatorsTest, NumNodesConvergesWithLargeSample) {
  Rng gen_rng(4);
  const Graph g = GeneratePowerlawCluster(1500, 4, 0.3, gen_rng);
  const LocalEstimates est = EstimateOn(g, 700, 5);
  EXPECT_NEAR(est.num_nodes, static_cast<double>(g.NumNodes()),
              0.30 * static_cast<double>(g.NumNodes()));
}

TEST(EstimatorsTest, NumNodesFallbackWhenNoCollision) {
  // A 3-step walk on a huge cycle has no lag-M collision; the estimator
  // must fall back to the number of distinct seen nodes.
  const Graph g = GenerateCycle(1000);
  SamplingList list;
  list.is_walk = true;
  list.visit_sequence = {0, 1, 2};
  list.neighbors[0] = {999, 1};
  list.neighbors[1] = {0, 2};
  list.neighbors[2] = {1, 3};
  const double n_hat = EstimateNumNodes(list, 123.0);
  EXPECT_DOUBLE_EQ(n_hat, 123.0);
}

TEST(EstimatorsTest, DegreeDistributionSumsToOne) {
  Rng gen_rng(6);
  const Graph g = GeneratePowerlawCluster(1000, 3, 0.4, gen_rng);
  const LocalEstimates est = EstimateOn(g, 300, 7);
  double total = 0.0;
  for (double p : est.degree_dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EstimatorsTest, DegreeDistributionUnbiasedOnRegularGraph) {
  const Graph g = GenerateCycle(50);
  const LocalEstimates est = EstimateOn(g, 25, 8);
  ASSERT_GE(est.degree_dist.size(), 3u);
  EXPECT_DOUBLE_EQ(est.degree_dist[2], 1.0);
}

TEST(EstimatorsTest, DegreeDistributionCloseOnHeavyTail) {
  Rng gen_rng(9);
  const Graph g = GeneratePowerlawCluster(2000, 4, 0.3, gen_rng);
  const LocalEstimates est = EstimateOn(g, 800, 10);
  // Compare the mass at the minimum degree (the largest class).
  std::vector<std::size_t> count(g.MaxDegree() + 1, 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) ++count[g.Degree(v)];
  const double true_p4 =
      static_cast<double>(count[4]) / static_cast<double>(g.NumNodes());
  ASSERT_GT(est.degree_dist.size(), 4u);
  EXPECT_NEAR(est.degree_dist[4], true_p4, 0.25 * true_p4);
}

TEST(EstimatorsTest, JointDistributionIsSymmetric) {
  Rng gen_rng(11);
  const Graph g = GeneratePowerlawCluster(800, 3, 0.5, gen_rng);
  const LocalEstimates est = EstimateOn(g, 250, 12);
  for (const auto& [key, p] : est.joint_dist.values()) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    EXPECT_DOUBLE_EQ(est.joint_dist.At(kp, k), p);
  }
}

TEST(EstimatorsTest, JointDistributionMassIsReasonable) {
  Rng gen_rng(13);
  const Graph g = GeneratePowerlawCluster(1500, 4, 0.3, gen_rng);
  const LocalEstimates est = EstimateOn(g, 700, 14);
  // The hybrid estimator is unbiased (Appendix A); the full ordered mass
  // Σ_k Σ_k' P̂(k,k') should be near 1.
  EXPECT_NEAR(est.joint_dist.TotalMass(), 1.0, 0.35);
}

TEST(EstimatorsTest, JointDistributionExactOnCompleteGraph) {
  // K_6: all nodes have degree 5, all edges join (5,5); all mass sits on
  // (5,5). A long walk is needed because the hybrid picks the (noisier)
  // induced-edge estimator for this high-degree pair.
  const Graph g = GenerateComplete(6);
  QueryOracle oracle(g);
  Rng rng(15);
  const SamplingList list =
      RandomWalkSample(oracle, 0, /*unreachable*/ 7, rng,
                       /*max_steps=*/20000);
  const LocalEstimates est = EstimateLocalProperties(list);
  EXPECT_NEAR(est.joint_dist.At(5, 5), 1.0, 0.05);
}

TEST(EstimatorsTest, ClusteringZeroOnTriangleFree) {
  const Graph g = GenerateCycle(60);
  const LocalEstimates est = EstimateOn(g, 30, 16);
  for (double c : est.clustering) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(EstimatorsTest, ClusteringOneOnCompleteGraph) {
  // ĉ̄(k) is unbiased, not exact: on K_7 the interior term A_{prev,next}
  // is 0 exactly when the walk backtracks (probability 1/6 per step), and
  // the (k-1) normalizer assumes that rate. A long walk converges to 1.
  const Graph g = GenerateComplete(7);
  QueryOracle oracle(g);
  Rng rng(17);
  const SamplingList list =
      RandomWalkSample(oracle, 0, /*unreachable*/ 8, rng,
                       /*max_steps=*/40000);
  const LocalEstimates est = EstimateLocalProperties(list);
  ASSERT_GE(est.clustering.size(), 7u);
  EXPECT_NEAR(est.clustering[6], 1.0, 0.03);
}

TEST(EstimatorsTest, ClusteringTracksHolmeKimLevel) {
  Rng gen_rng(18);
  const Graph g = GeneratePowerlawCluster(2000, 4, 0.6, gen_rng);
  const LocalEstimates est = EstimateOn(g, 800, 19);
  // ĉ̄(4) should be positive and within a loose band of the true c̄(4).
  std::vector<double> sums(g.MaxDegree() + 1, 0.0);
  std::vector<std::size_t> counts(g.MaxDegree() + 1, 0);
  // True c̄(4) via wedge checks.
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (g.Degree(v) != 4) continue;
    const auto& nbrs = g.adjacency(v);
    std::size_t closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.HasEdge(nbrs[i], nbrs[j])) ++closed;
      }
    }
    sums[4] += static_cast<double>(closed) / 6.0;  // C(4,2) = 6 wedges
    ++counts[4];
  }
  const double true_c4 = sums[4] / static_cast<double>(counts[4]);
  ASSERT_GT(est.clustering.size(), 4u);
  EXPECT_GT(est.clustering[4], 0.0);
  EXPECT_NEAR(est.clustering[4], true_c4, 0.5 * true_c4);
}

TEST(EstimatorsTest, MaxDegreeWithMassMatchesWalk) {
  Rng gen_rng(20);
  const Graph g = GeneratePowerlawCluster(500, 3, 0.3, gen_rng);
  QueryOracle oracle(g);
  Rng rng(21);
  const SamplingList list = RandomWalkSample(oracle, 0, 100, rng);
  const LocalEstimates est = EstimateLocalProperties(list);
  std::size_t max_walked = 0;
  for (NodeId v : list.visit_sequence) {
    max_walked = std::max(max_walked, list.DegreeOf(v));
  }
  EXPECT_EQ(est.MaxDegreeWithMass(), max_walked);
}

TEST(EstimatorsTest, EstimatedEdgeCountUsesHandshake) {
  LocalEstimates est;
  est.num_nodes = 100.0;
  est.average_degree = 4.0;
  est.degree_dist = {0.0, 0.0, 0.0, 0.0, 1.0};
  est.joint_dist.SetSymmetric(4, 4, 1.0);
  // m(4,4) = n k̄ P / µ = 100*4*1/2 = 200 edges.
  EXPECT_DOUBLE_EQ(est.EstimatedEdgeCount(4, 4), 200.0);
  est.joint_dist.SetSymmetric(3, 4, 0.5);
  EXPECT_DOUBLE_EQ(est.EstimatedEdgeCount(3, 4), 200.0);
}

TEST(EstimatorsTest, GlobalClusteringWeightsByDegreeDistribution) {
  LocalEstimates est;
  est.degree_dist = {0.0, 0.5, 0.3, 0.2};
  est.clustering = {0.0, 0.0, 0.4, 0.9};
  // Degree-1 nodes contribute 0; ĉ̄ = 0.3*0.4 + 0.2*0.9.
  EXPECT_DOUBLE_EQ(est.EstimatedGlobalClustering(), 0.3 * 0.4 + 0.2 * 0.9);
}

TEST(EstimatorsTest, GlobalClusteringNearOneOnCompleteGraph) {
  const Graph g = GenerateComplete(7);
  QueryOracle oracle(g);
  Rng rng(23);
  const SamplingList list =
      RandomWalkSample(oracle, 0, /*unreachable*/ 8, rng,
                       /*max_steps=*/30000);
  const LocalEstimates est = EstimateLocalProperties(list);
  EXPECT_NEAR(est.EstimatedGlobalClustering(), 1.0, 0.05);
}

// ---------------------------------------------------------------------------
// Degenerate inputs: defined sentinels instead of UB / NaN propagation
// ---------------------------------------------------------------------------

TEST(EstimatorsEdgeCaseTest, EmptyListYieldsZeroEstimates) {
  SamplingList empty;
  empty.is_walk = true;
  const LocalEstimates est = EstimateLocalProperties(empty);
  EXPECT_DOUBLE_EQ(est.num_nodes, 0.0);
  EXPECT_DOUBLE_EQ(est.average_degree, 0.0);
  EXPECT_TRUE(est.degree_dist.empty());
  EXPECT_TRUE(est.clustering.empty());
  EXPECT_TRUE(est.joint_dist.values().empty());
  EXPECT_DOUBLE_EQ(EstimateAverageDegree(empty), 0.0);
  EXPECT_DOUBLE_EQ(EstimateNumNodes(empty, 42.0), 42.0);
}

TEST(EstimatorsEdgeCaseTest, SingleNodeCrawlYieldsPlainStatistics) {
  // A budget of one queried node produces a length-1 walk: too short for
  // any re-weighted estimator, so the defined fallback is plain counts.
  SamplingList list;
  list.is_walk = true;
  list.visit_sequence = {5};
  list.neighbors[5] = {1, 2, 3};
  const LocalEstimates est = EstimateLocalProperties(list);
  EXPECT_DOUBLE_EQ(est.num_nodes, 4.0);  // 5 plus its three neighbors
  EXPECT_DOUBLE_EQ(est.average_degree, 3.0);
  ASSERT_EQ(est.degree_dist.size(), 4u);
  EXPECT_DOUBLE_EQ(est.degree_dist[3], 1.0);
  for (double c : est.clustering) EXPECT_DOUBLE_EQ(c, 0.0);
  for (double value : est.degree_dist) EXPECT_TRUE(std::isfinite(value));
}

TEST(EstimatorsEdgeCaseTest, TwoStepWalkYieldsPlainStatistics) {
  SamplingList list;
  list.is_walk = true;
  list.visit_sequence = {0, 1};
  list.neighbors[0] = {1, 2};
  list.neighbors[1] = {0};
  const LocalEstimates est = EstimateLocalProperties(list);
  EXPECT_DOUBLE_EQ(est.num_nodes, 3.0);  // {0, 1, 2}
  EXPECT_DOUBLE_EQ(est.average_degree, 1.5);
  ASSERT_EQ(est.degree_dist.size(), 3u);
  EXPECT_DOUBLE_EQ(est.degree_dist[1], 0.5);
  EXPECT_DOUBLE_EQ(est.degree_dist[2], 0.5);
  EXPECT_DOUBLE_EQ(EstimateNumNodes(list, 9.0), 9.0);  // r < 3
}

TEST(EstimatorsEdgeCaseTest, ZeroEdgeCrawlYieldsZeroAverageDegree) {
  // Every queried node isolated (a zero-edge CrawlCsr): no harmonic mean
  // exists; the documented sentinel is zero estimates, never NaN/inf.
  SamplingList list;
  list.is_walk = true;
  list.visit_sequence = {0, 1, 2, 0};
  list.neighbors[0] = {};
  list.neighbors[1] = {};
  list.neighbors[2] = {};
  EXPECT_DOUBLE_EQ(EstimateAverageDegree(list), 0.0);
  const LocalEstimates est = EstimateLocalProperties(list);
  EXPECT_DOUBLE_EQ(est.average_degree, 0.0);
  EXPECT_TRUE(std::isfinite(est.num_nodes));
  for (double value : est.degree_dist) EXPECT_TRUE(std::isfinite(value));
  for (double value : est.clustering) EXPECT_TRUE(std::isfinite(value));
}

TEST(EstimatorsEdgeCaseTest, NonWalkSampleIsRejectedNotMisestimated) {
  // Re-weighting a BFS/snowball crawl silently produces biased numbers;
  // the contract is an exception, not garbage.
  SamplingList crawl;
  crawl.is_walk = false;
  crawl.visit_sequence = {0, 1, 2, 3};
  crawl.neighbors[0] = {1, 2};
  crawl.neighbors[1] = {0, 3};
  crawl.neighbors[2] = {0};
  crawl.neighbors[3] = {1};
  EXPECT_THROW(EstimateLocalProperties(crawl), std::invalid_argument);
  EXPECT_DOUBLE_EQ(EstimateAverageDegree(crawl), 0.0);
  EXPECT_DOUBLE_EQ(EstimateNumNodes(crawl, 7.0), 7.0);
}

TEST(EstimatorsEdgeCaseTest, ThreeStepWalkUsesTheRealEstimators) {
  // r = 3 is the smallest length the re-weighted machinery accepts; all
  // outputs must be finite.
  SamplingList list;
  list.is_walk = true;
  list.visit_sequence = {0, 1, 0};
  list.neighbors[0] = {1, 2};
  list.neighbors[1] = {0, 2};
  list.neighbors[2] = {0, 1};
  const LocalEstimates est = EstimateLocalProperties(list);
  EXPECT_TRUE(std::isfinite(est.num_nodes));
  EXPECT_TRUE(std::isfinite(est.average_degree));
  EXPECT_GT(est.average_degree, 0.0);
  for (double value : est.degree_dist) EXPECT_TRUE(std::isfinite(value));
  for (double value : est.clustering) EXPECT_TRUE(std::isfinite(value));
  for (const auto& [key, value] : est.joint_dist.values()) {
    (void)key;
    EXPECT_TRUE(std::isfinite(value));
  }
}

TEST(EstimatorsTest, EstimatesImproveWithWalkLength) {
  Rng gen_rng(22);
  const Graph g = GeneratePowerlawCluster(2000, 4, 0.3, gen_rng);
  double short_err = 0.0;
  double long_err = 0.0;
  const double n = static_cast<double>(g.NumNodes());
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    short_err += std::abs(EstimateOn(g, 100, 100 + seed).num_nodes - n) / n;
    long_err += std::abs(EstimateOn(g, 1000, 200 + seed).num_nodes - n) / n;
  }
  EXPECT_LT(long_err, short_err);
}

}  // namespace
}  // namespace sgr
