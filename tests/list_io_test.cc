#include "sampling/list_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "sampling/random_walk.h"

namespace sgr {
namespace {

TEST(ListIoTest, RoundTripPreservesEverything) {
  Rng gen_rng(1);
  const Graph g = GeneratePowerlawCluster(300, 3, 0.4, gen_rng);
  QueryOracle oracle(g);
  Rng rng(2);
  const SamplingList list = RandomWalkSample(oracle, 0, 40, rng);

  std::stringstream buffer;
  WriteSamplingList(list, buffer);
  const SamplingList back = ReadSamplingList(buffer);

  EXPECT_EQ(back.is_walk, list.is_walk);
  EXPECT_EQ(back.visit_sequence, list.visit_sequence);
  ASSERT_EQ(back.neighbors.size(), list.neighbors.size());
  for (const auto& [v, nbrs] : list.neighbors) {
    ASSERT_TRUE(back.neighbors.count(v) > 0) << "node " << v;
    EXPECT_EQ(back.neighbors.at(v), nbrs);
  }
}

TEST(ListIoTest, RejectsMissingHeader) {
  std::istringstream in("walk 1\nseq 0\n");
  EXPECT_THROW(ReadSamplingList(in), std::runtime_error);
}

TEST(ListIoTest, RejectsTruncatedSeq) {
  std::istringstream in("# sgr-sampling-list v1\nwalk 1\nseq 3 1 2\n");
  EXPECT_THROW(ReadSamplingList(in), std::runtime_error);
}

TEST(ListIoTest, RejectsTruncatedNodeRecord) {
  std::istringstream in(
      "# sgr-sampling-list v1\nwalk 1\nseq 1 5\nnode 5 3 1 2\n");
  EXPECT_THROW(ReadSamplingList(in), std::runtime_error);
}

TEST(ListIoTest, RejectsTrajectoryWithoutNeighborRecord) {
  std::istringstream in("# sgr-sampling-list v1\nwalk 1\nseq 1 7\n");
  EXPECT_THROW(ReadSamplingList(in), std::runtime_error);
}

TEST(ListIoTest, RejectsUnknownRecord) {
  std::istringstream in("# sgr-sampling-list v1\nbogus 1\n");
  EXPECT_THROW(ReadSamplingList(in), std::runtime_error);
}

TEST(ListIoTest, NonWalkFlagSurvives) {
  SamplingList list;
  list.is_walk = false;
  list.visit_sequence = {3};
  list.neighbors[3] = {4, 5};
  list.neighbors[4] = {3};
  std::stringstream buffer;
  WriteSamplingList(list, buffer);
  const SamplingList back = ReadSamplingList(buffer);
  EXPECT_FALSE(back.is_walk);
  EXPECT_EQ(back.neighbors.at(3), (std::vector<NodeId>{4, 5}));
}

TEST(ListIoTest, FileRoundTrip) {
  SamplingList list;
  list.is_walk = true;
  list.visit_sequence = {1, 2, 1};
  list.neighbors[1] = {2};
  list.neighbors[2] = {1};
  const std::string path = ::testing::TempDir() + "/sgr_list_io_test.txt";
  WriteSamplingListFile(list, path);
  const SamplingList back = ReadSamplingListFile(path);
  EXPECT_EQ(back.visit_sequence, list.visit_sequence);
  EXPECT_THROW(ReadSamplingListFile("/nonexistent/list.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace sgr
