// The noise scenario axis: spec parsing/round-trip/validation of the
// "noise" knob, expansion order, the per-cell echo in reports, diff
// pairing against pre-axis reports, and the engine-level determinism
// contract (noise off is byte-identical to a spec with no noise key;
// any noise setting is byte-identical across thread counts).

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/diff.h"
#include "scenario/engine.h"
#include "scenario/report.h"
#include "scenario/spec.h"

namespace sgr {
namespace {

/// CI-sized hermetic spec (generator dataset, no files) with a noise
/// axis: cooperative baseline plus one cell per fault family.
ScenarioSpec NoisySpec() {
  return ScenarioSpec::FromJson(Json::Parse(R"({
    "name": "noisy",
    "datasets": [{"name": "tiny-powerlaw", "model": "powerlaw",
                  "nodes": 150, "edges_per_node": 3, "triad_p": 0.4,
                  "seed": 11}],
    "fractions": [0.1],
    "trials": 2,
    "seed_base": 1234,
    "rc": 5,
    "path_sources": 20,
    "noise": [{},
              {"failure": 0.2},
              {"hidden_edges": 0.3},
              {"churn": 0.2},
              {"api_budget": 10}]
  })"));
}

// ---------------------------------------------------------------------------
// Spec layer
// ---------------------------------------------------------------------------

TEST(ScenarioNoiseSpecTest, ParsesScalarAndArrayForms) {
  const ScenarioSpec scalar = ScenarioSpec::FromJson(Json::Parse(R"({
    "datasets": ["anybeat"],
    "noise": {"failure": 0.1, "hidden_edges": 0.2, "churn": 0.3,
              "api_budget": 500}
  })"));
  ASSERT_EQ(scalar.noises.size(), 1u);
  EXPECT_DOUBLE_EQ(scalar.noises[0].failure, 0.1);
  EXPECT_DOUBLE_EQ(scalar.noises[0].hidden_edges, 0.2);
  EXPECT_DOUBLE_EQ(scalar.noises[0].churn, 0.3);
  EXPECT_EQ(scalar.noises[0].api_budget, 500u);
  EXPECT_TRUE(scalar.noises[0].Active());

  const ScenarioSpec array = NoisySpec();
  ASSERT_EQ(array.noises.size(), 5u);
  EXPECT_FALSE(array.noises[0].Active());  // {} is the cooperative oracle
  EXPECT_DOUBLE_EQ(array.noises[1].failure, 0.2);
  EXPECT_DOUBLE_EQ(array.noises[2].hidden_edges, 0.3);
  EXPECT_DOUBLE_EQ(array.noises[3].churn, 0.2);
  EXPECT_EQ(array.noises[4].api_budget, 10u);
}

TEST(ScenarioNoiseSpecTest, OmittedNoiseIsTheCooperativeOracle) {
  const ScenarioSpec spec =
      ScenarioSpec::FromJson(Json::Parse(R"({"datasets": ["anybeat"]})"));
  ASSERT_EQ(spec.noises.size(), 1u);
  EXPECT_FALSE(spec.noises[0].Active());
  // ...and an inactive default axis stays out of the canonical form, so
  // pre-axis documents round-trip unchanged.
  EXPECT_EQ(spec.ToJson().Find("noise"), nullptr);
}

TEST(ScenarioNoiseSpecTest, RoundTripsThroughJson) {
  const ScenarioSpec spec = NoisySpec();
  const ScenarioSpec reparsed = ScenarioSpec::FromJson(spec.ToJson());
  ASSERT_EQ(reparsed.noises.size(), spec.noises.size());
  for (std::size_t i = 0; i < spec.noises.size(); ++i) {
    EXPECT_TRUE(reparsed.noises[i] == spec.noises[i]) << "variant " << i;
  }
  // Canonical form is a fixed point.
  EXPECT_EQ(spec.ToJson().Dump(2), reparsed.ToJson().Dump(2));
}

TEST(ScenarioNoiseSpecTest, ValidationErrors) {
  const char* cases[] = {
      // Probabilities capped at 0.9: a sweep should degrade the crawl,
      // not erase it.
      R"({"datasets": ["anybeat"], "noise": {"failure": 0.95}})",
      R"({"datasets": ["anybeat"], "noise": {"hidden_edges": 1.0}})",
      R"({"datasets": ["anybeat"], "noise": {"churn": 2}})",
      R"({"datasets": ["anybeat"], "noise": {"failure": -0.1}})",
      R"({"datasets": ["anybeat"], "noise": {"failure": null}})",
      R"({"datasets": ["anybeat"], "noise": {"api_budget": -5}})",
      R"({"datasets": ["anybeat"], "noise": {"api_budget": 1.5}})",
      R"({"datasets": ["anybeat"], "noise": {"typo_knob": 0.1}})",
      R"({"datasets": ["anybeat"], "noise": []})",
      R"({"datasets": ["anybeat"], "noise": 0.3})",  // must be an object
      // Duplicate variants would run identical cells.
      R"({"datasets": ["anybeat"],
          "noise": [{"failure": 0.2}, {"failure": 0.2}]})",
      R"({"datasets": ["anybeat"], "noise": [{}, {}]})",
  };
  for (const char* text : cases) {
    EXPECT_THROW(ScenarioSpec::FromJson(Json::Parse(text)), ScenarioError)
        << text;
  }
}

TEST(ScenarioNoiseSpecTest, ExpandsInnermost) {
  // Noise is the innermost axis so that adding noise variants leaves the
  // (dataset, fraction, ...) -> cell_seed schedule of the leading cells'
  // knob combinations in the same relative order as without them.
  ScenarioSpec spec = NoisySpec();
  spec.fractions = {0.1, 0.2};
  const std::vector<CellKnobs> knobs = spec.ExpandKnobs();
  ASSERT_EQ(knobs.size(), 10u);  // 2 fractions x 5 noise variants
  for (std::size_t i = 0; i < knobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(knobs[i].fraction, i < 5 ? 0.1 : 0.2);
    EXPECT_TRUE(knobs[i].noise == spec.noises[i % 5]) << "cell " << i;
  }
}

TEST(ScenarioNoiseSpecTest, KnobsReachTheExperimentConfig) {
  const ScenarioSpec spec = NoisySpec();
  const std::vector<CellKnobs> knobs = spec.ExpandKnobs();
  const ExperimentConfig failure_cell = spec.ToExperimentConfig(knobs[1]);
  EXPECT_DOUBLE_EQ(failure_cell.noise.failure, 0.2);
  EXPECT_TRUE(failure_cell.noise.Active());
  const ExperimentConfig clean_cell = spec.ToExperimentConfig(knobs[0]);
  EXPECT_FALSE(clean_cell.noise.Active());
}

TEST(ScenarioNoiseSpecTest, AblationNoiseBuiltinSweepsEveryFaultFamily) {
  const ScenarioSpec spec = BuiltinScenario("ablation-noise");
  ASSERT_EQ(spec.noises.size(), 5u);
  EXPECT_FALSE(spec.noises[0].Active());  // cooperative baseline first
  bool failure = false, hidden = false, churn = false, budget = false;
  for (const CrawlNoise& noise : spec.noises) {
    failure |= noise.failure > 0.0;
    hidden |= noise.hidden_edges > 0.0;
    churn |= noise.churn > 0.0;
    budget |= noise.api_budget > 0;
  }
  EXPECT_TRUE(failure && hidden && churn && budget);
}

// ---------------------------------------------------------------------------
// Engine and report
// ---------------------------------------------------------------------------

TEST(ScenarioNoiseEngineTest, CellsEchoOnlyActiveNoise) {
  const ScenarioRunResult result = RunScenario(NoisySpec(), 1);
  ASSERT_EQ(result.cells.size(), 5u);
  const Json report = ScenarioReportToJson(result);
  const auto& cells = report.Find("cells")->Items();
  ASSERT_EQ(cells.size(), 5u);
  // The cooperative cell carries no noise block (pre-axis report shape);
  // each noisy cell echoes its full coordinate.
  EXPECT_EQ(cells[0].Find("noise"), nullptr);
  for (std::size_t i = 1; i < 5; ++i) {
    const Json* noise = cells[i].Find("noise");
    ASSERT_NE(noise, nullptr) << "cell " << i;
    EXPECT_NE(noise->Find("failure"), nullptr);
    EXPECT_NE(noise->Find("hidden_edges"), nullptr);
    EXPECT_NE(noise->Find("churn"), nullptr);
    EXPECT_NE(noise->Find("api_budget"), nullptr);
  }
  EXPECT_DOUBLE_EQ(cells[1].Find("noise")->Find("failure")->AsNumber(),
                   0.2);
  EXPECT_DOUBLE_EQ(cells[4].Find("noise")->Find("api_budget")->AsNumber(),
                   10.0);
}

TEST(ScenarioNoiseEngineTest, NoiseCellsStillProduceRestorations) {
  // Under every fault family the full pipeline (crawl -> estimate ->
  // restore -> properties) must complete with finite distances.
  const ScenarioRunResult result = RunScenario(NoisySpec(), 1);
  for (const ScenarioCell& cell : result.cells) {
    ASSERT_EQ(cell.methods.size(), 6u);
    for (const auto& [kind, aggregate] : cell.methods) {
      (void)kind;
      const DistanceSummary summary = aggregate.distances.Summarize();
      EXPECT_EQ(summary.runs, 2u);
      EXPECT_TRUE(std::isfinite(summary.mean_average));
      EXPECT_GE(summary.mean_average, 0.0);
    }
  }
}

TEST(ScenarioNoiseEngineTest, ReportByteIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = NoisySpec();
  const std::string a =
      StripVolatile(ScenarioReportToJson(RunScenario(spec, 1))).Dump(2);
  const std::string b =
      StripVolatile(ScenarioReportToJson(RunScenario(spec, 4))).Dump(2);
  EXPECT_EQ(a, b);
}

TEST(ScenarioNoiseEngineTest, NoiseOffIsByteIdenticalToNoNoiseKey) {
  // The entire perturbation layer must be invisible when inactive: a spec
  // that lists the cooperative oracle explicitly produces the same
  // stripped report as one that never mentions noise. (This is the
  // engine-level half of the drift-0 guarantee against pre-axis
  // baselines.)
  ScenarioSpec with_default = NoisySpec();
  with_default.noises = {{}};
  ScenarioSpec without_key = NoisySpec();
  without_key.noises = {{}};
  // Sanity: both canonical forms omit the knob entirely.
  EXPECT_EQ(with_default.ToJson().Find("noise"), nullptr);
  const std::string a =
      StripVolatile(ScenarioReportToJson(RunScenario(with_default, 1)))
          .Dump(2);
  const std::string b =
      StripVolatile(ScenarioReportToJson(RunScenario(without_key, 2)))
          .Dump(2);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Diff pairing
// ---------------------------------------------------------------------------

std::string Rendered(const DiffResult& diff) {
  std::ostringstream out;
  PrintDiff(diff, out);
  return out.str();
}

TEST(ScenarioNoiseDiffTest, SameNoisyScenarioDiffsClean) {
  const ScenarioSpec spec = NoisySpec();
  const Json a = ScenarioReportToJson(RunScenario(spec, 1));
  const Json b = ScenarioReportToJson(RunScenario(spec, 2));
  // Timings off: the two runs share a machine but not a wall clock; the
  // deterministic content is what must pair and reproduce.
  DiffOptions options;
  options.compare_timings = false;
  const DiffResult diff = DiffReports(a, b, options);
  EXPECT_FALSE(diff.HasRegression()) << Rendered(diff);
  // Every (fraction, noise) coordinate paired: 5 cells x 6 methods.
  EXPECT_EQ(diff.cells_compared, 5u);
  EXPECT_EQ(diff.methods_compared, 30u);
}

TEST(ScenarioNoiseDiffTest, NoiseCellsPairByCoordinateNotByOrder) {
  // Two single-variant runs with different noise settings must NOT pair
  // with each other: the noise block is part of the cell key, so the
  // disjoint coordinates show up as coverage notes, not silent drift.
  ScenarioSpec failure_spec = NoisySpec();
  failure_spec.noises = {{0.2, 0.0, 0.0, 0}};
  ScenarioSpec churn_spec = NoisySpec();
  churn_spec.noises = {{0.0, 0.0, 0.2, 0}};
  const Json a = ScenarioReportToJson(RunScenario(failure_spec, 1));
  const Json b = ScenarioReportToJson(RunScenario(churn_spec, 1));
  const DiffResult diff = DiffReports(a, b);
  EXPECT_EQ(diff.methods_compared, 0u);
}

TEST(ScenarioNoiseDiffTest, PreAxisReportsPairWithNoiseOffCells) {
  // A baseline recorded before the noise axis existed has no noise block
  // anywhere; a new noise-off run emits none either. The two must pair
  // and diff clean — this is what lets CI keep its checked-in baseline.
  ScenarioSpec spec = NoisySpec();
  spec.noises = {{}};
  const Json a = ScenarioReportToJson(RunScenario(spec, 1));
  const Json b = ScenarioReportToJson(RunScenario(spec, 1));
  ASSERT_EQ(a.Find("cells")->Items()[0].Find("noise"), nullptr);
  DiffOptions options;
  options.compare_timings = false;
  const DiffResult diff = DiffReports(a, b, options);
  EXPECT_FALSE(diff.HasRegression()) << Rendered(diff);
  EXPECT_EQ(diff.methods_compared, 6u);
}

}  // namespace
}  // namespace sgr
