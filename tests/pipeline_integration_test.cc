#include <gtest/gtest.h>

#include "analysis/l1.h"
#include "analysis/properties.h"
#include "dk/dk_extract.h"
#include "graph/generators.h"
#include "restore/gjoka.h"
#include "restore/proposed.h"
#include "restore/subgraph_method.h"
#include "sampling/random_walk.h"
#include "sampling/subgraph.h"

namespace sgr {
namespace {

/// End-to-end checks of the paper's headline claims on a mid-size
/// synthetic social graph. Thresholds are deliberately loose so the tests
/// are robust across seeds; the benchmark harness reports the precise
/// numbers.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng gen_rng(0xFEED);
    original_ = new Graph(GeneratePowerlawCluster(1200, 4, 0.5, gen_rng));
    properties_ = new GraphProperties(ComputeProperties(*original_));
  }
  static void TearDownTestSuite() {
    delete original_;
    delete properties_;
    original_ = nullptr;
    properties_ = nullptr;
  }

  static SamplingList Walk(std::uint64_t seed, double fraction) {
    QueryOracle oracle(*original_);
    Rng rng(seed);
    const auto budget = static_cast<std::size_t>(
        fraction * static_cast<double>(original_->NumNodes()));
    return RandomWalkSample(
        oracle, static_cast<NodeId>(rng.NextIndex(original_->NumNodes())),
        budget, rng);
  }

  static RestorationOptions Options() {
    RestorationOptions options;
    options.rewire.rewiring_coefficient = 50.0;
    return options;
  }

  static Graph* original_;
  static GraphProperties* properties_;
};

Graph* PipelineTest::original_ = nullptr;
GraphProperties* PipelineTest::properties_ = nullptr;

TEST_F(PipelineTest, ProposedPreservesTargetsExactly) {
  const SamplingList walk = Walk(1, 0.1);
  Rng rng(2);
  const RestorationResult r = RestoreProposed(walk, Options(), rng);

  // The generated graph realizes its own extracted DV/JDM consistently
  // (sanity: extraction is the inverse of construction).
  const DegreeVector dv = ExtractDegreeVector(r.graph);
  const JointDegreeMatrix jdm = ExtractJointDegreeMatrix(r.graph);
  EXPECT_TRUE(jdm.SatisfiesJdm3(dv));

  // Node and edge counts stay within a loose band of the estimates.
  EXPECT_NEAR(static_cast<double>(r.graph.NumNodes()), r.estimates.num_nodes,
              0.35 * r.estimates.num_nodes);
}

TEST_F(PipelineTest, ProposedBeatsSubgraphSamplingOnAverageL1) {
  // The headline claim of the paper (Fig. 3 / Table III): lower average L1
  // than raw subgraph sampling at 10% queried. Averaged over 3 seeds to be
  // robust.
  double proposed_total = 0.0;
  double subgraph_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const SamplingList walk = Walk(seed * 100, 0.1);
    Rng rng(seed);
    const RestorationResult proposed =
        RestoreProposed(walk, Options(), rng);
    const RestorationResult subgraph = RestoreBySubgraphSampling(walk);
    proposed_total += AverageDistance(PropertyDistances(
        *properties_, ComputeProperties(proposed.graph)));
    subgraph_total += AverageDistance(PropertyDistances(
        *properties_, ComputeProperties(subgraph.graph)));
  }
  EXPECT_LT(proposed_total, subgraph_total);
}

TEST_F(PipelineTest, ProposedEstimatesGlobalSizeBetterThanSubgraph) {
  const SamplingList walk = Walk(7, 0.1);
  Rng rng(8);
  const RestorationResult proposed = RestoreProposed(walk, Options(), rng);
  const RestorationResult subgraph = RestoreBySubgraphSampling(walk);
  const double n = static_cast<double>(original_->NumNodes());
  const double err_proposed =
      std::abs(static_cast<double>(proposed.graph.NumNodes()) - n) / n;
  const double err_subgraph =
      std::abs(static_cast<double>(subgraph.graph.NumNodes()) - n) / n;
  EXPECT_LT(err_proposed, err_subgraph);
}

TEST_F(PipelineTest, GjokaAndProposedMatchNodeCounts) {
  // Both generative methods consume the same estimates, so their sizes
  // should roughly agree (they differ in structure, not scale).
  const SamplingList walk = Walk(9, 0.1);
  Rng rng1(10);
  Rng rng2(10);
  const RestorationResult p = RestoreProposed(walk, Options(), rng1);
  const RestorationResult g = RestoreGjoka(walk, Options(), rng2);
  const double ratio = static_cast<double>(p.graph.NumNodes()) /
                       static_cast<double>(g.graph.NumNodes());
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST_F(PipelineTest, ProposedRewiringFasterThanGjoka) {
  // Section IV-E / Table IV: the proposed method's rewiring is faster
  // because |E~ \ E'| < |E~|. Compare attempts (deterministic) rather than
  // wall time (noisy).
  const SamplingList walk = Walk(11, 0.1);
  Rng rng1(12);
  Rng rng2(12);
  const RestorationResult p = RestoreProposed(walk, Options(), rng1);
  const RestorationResult g = RestoreGjoka(walk, Options(), rng2);
  EXPECT_LT(p.rewire_stats.attempts, g.rewire_stats.attempts);
}

TEST_F(PipelineTest, ProposedReproducesClusteringShape) {
  const SamplingList walk = Walk(13, 0.1);
  Rng rng(14);
  RestorationOptions options;
  options.rewire.rewiring_coefficient = 200.0;
  const RestorationResult r = RestoreProposed(walk, options, rng);
  // After rewiring, the distance to the *estimated* clustering must have
  // decreased from its post-construction value.
  EXPECT_LE(r.rewire_stats.final_distance,
            r.rewire_stats.initial_distance);
  // And the global clustering of the generated graph is in the right
  // ballpark (within 50% relative error of the original).
  const double c_gen = NetworkClusteringCoefficient(r.graph);
  EXPECT_NEAR(c_gen, properties_->clustering_global,
              0.5 * properties_->clustering_global);
}

TEST_F(PipelineTest, LowQueryBudgetStillWorks) {
  // 1% queried (the YouTube regime): everything must still run and
  // produce a usable graph.
  const SamplingList walk = Walk(15, 0.01);
  Rng rng(16);
  const RestorationResult r = RestoreProposed(walk, Options(), rng);
  EXPECT_GT(r.graph.NumNodes(), walk.NumQueried());
  EXPECT_GT(r.graph.NumEdges(), 0u);
}

}  // namespace
}  // namespace sgr
