#include "obs/trace.h"

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/timer.h"
#include "obs/trace_summary.h"

namespace sgr {
namespace {

/// Tracing state is process-global; every test brackets its own
/// recording and leaves the tracer stopped.
class ObsTraceTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::StopTracing(); }
};

TEST_F(ObsTraceTest, DisabledByDefaultAndSpansAreDropped) {
  ASSERT_FALSE(obs::TracingEnabled());
  { obs::Span span("ignored"); }
  // Nothing recorded, and whatever an earlier run left behind is cleared
  // by the next StartTracing — exercised below.
}

TEST_F(ObsTraceTest, RecordsNestedSpansInParentFirstOrder) {
  obs::StartTracing();
  {
    obs::Span outer("outer");
    { obs::Span inner("inner"); }
    { obs::Span inner2("inner2"); }
  }
  obs::StopTracing();
  const std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
  ASSERT_EQ(events.size(), 3u);
  // The enclosing span sorts first; its children follow. Sibling order
  // within one clock tick is ambiguous, so only the set is asserted.
  EXPECT_EQ(events[0].name, "outer");
  const std::set<std::string> children{events[1].name, events[2].name};
  EXPECT_EQ(children, (std::set<std::string>{"inner", "inner2"}));
  // Containment holds on the recorded timestamps.
  EXPECT_LE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
  // All on the recording (main) thread.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[1].tid, events[2].tid);
}

TEST_F(ObsTraceTest, EndRecordsEarlyAndMakesTheDestructorANoOp) {
  obs::StartTracing();
  {
    obs::Span span("phase");
    span.End();
    span.End();  // idempotent
  }
  obs::StopTracing();
  EXPECT_EQ(obs::CollectTraceEvents().size(), 1u);
}

TEST_F(ObsTraceTest, StartTracingClearsPreviousEvents) {
  obs::StartTracing();
  { obs::Span span("first-run"); }
  obs::StopTracing();
  ASSERT_EQ(obs::CollectTraceEvents().size(), 1u);

  obs::StartTracing();
  obs::StopTracing();
  EXPECT_TRUE(obs::CollectTraceEvents().empty());
}

class ObsTraceThreadTest : public ObsTraceTest,
                           public ::testing::WithParamInterface<std::size_t> {
};

TEST_P(ObsTraceThreadTest, MergesPerThreadBuffersWithDistinctTids) {
  const std::size_t num_threads = GetParam();
  constexpr std::size_t kSpansPerThread = 50;
  obs::StartTracing();
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([t] {
      for (std::size_t i = 0; i < kSpansPerThread; ++i) {
        obs::Span span("worker-" + std::to_string(t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  obs::StopTracing();

  const std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
  ASSERT_EQ(events.size(), num_threads * kSpansPerThread);
  std::set<std::uint32_t> tids;
  for (const obs::TraceEvent& event : events) tids.insert(event.tid);
  // Concurrently-live threads never share a buffer, so the merged trace
  // carries exactly one tid per worker.
  EXPECT_EQ(tids.size(), num_threads);
  // The merge is globally sorted by start time.
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const obs::TraceEvent& a,
                                const obs::TraceEvent& b) {
                               return a.start_us < b.start_us;
                             }));
  for (std::size_t t = 0; t < num_threads; ++t) {
    const std::string name = "worker-" + std::to_string(t);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count_if(events.begin(), events.end(),
                                [&](const obs::TraceEvent& e) {
                                  return e.name == name;
                                })),
              kSpansPerThread);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ObsTraceThreadTest,
                         ::testing::Values(1, 2, 8));

TEST_F(ObsTraceTest, TraceJsonIsValidChromeTraceEventFormat) {
  obs::StartTracing();
  {
    obs::Span outer("outer");
    obs::Span inner("inner", "pool");
  }
  obs::StopTracing();
  const Json trace = obs::TraceToJson();

  EXPECT_EQ(trace.Find("displayTimeUnit")->AsString(), "ms");
  const Json* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->Items().size(), 2u);
  for (const Json& event : events->Items()) {
    EXPECT_EQ(event.Find("ph")->AsString(), "X");
    EXPECT_DOUBLE_EQ(event.Find("pid")->AsNumber(), 1.0);
    EXPECT_GE(event.Find("ts")->AsNumber(), 0.0);
    EXPECT_GE(event.Find("dur")->AsNumber(), 0.0);
  }
  // The strict summarizer accepts our own writer's output — the CI gate.
  const auto summary = obs::SummarizeTrace(trace);
  ASSERT_EQ(summary.size(), 2u);
  std::set<std::string> names;
  for (const auto& phase : summary) names.insert(phase.name);
  EXPECT_EQ(names, (std::set<std::string>{"outer", "inner"}));
}

Json MakeEvent(const std::string& name, double ts, double dur, double tid) {
  Json event = Json::Object();
  event.Set("name", Json::String(name));
  event.Set("cat", Json::String("pipeline"));
  event.Set("ph", Json::String("X"));
  event.Set("ts", Json::Number(ts));
  event.Set("dur", Json::Number(dur));
  event.Set("pid", Json::Number(1.0));
  event.Set("tid", Json::Number(tid));
  return event;
}

Json MakeTrace(std::vector<Json> events) {
  Json array = Json::Array();
  for (Json& event : events) array.Push(std::move(event));
  Json trace = Json::Object();
  trace.Set("displayTimeUnit", Json::String("ms"));
  trace.Set("traceEvents", std::move(array));
  return trace;
}

TEST(TraceSummaryTest, AttributesSelfTimeByIntervalContainment) {
  // A [0, 100) contains B [10, 40) and C [50, 70): A's self time is
  // 100 - 30 - 20 = 50 us.
  const Json trace = MakeTrace({MakeEvent("A", 0, 100, 1),
                                MakeEvent("B", 10, 30, 1),
                                MakeEvent("C", 50, 20, 1)});
  const auto summary = obs::SummarizeTrace(trace);
  ASSERT_EQ(summary.size(), 3u);
  // Sorted by descending total time.
  EXPECT_EQ(summary[0].name, "A");
  EXPECT_DOUBLE_EQ(summary[0].total_ms, 0.1);
  EXPECT_DOUBLE_EQ(summary[0].self_ms, 0.05);
  EXPECT_EQ(summary[1].name, "B");
  EXPECT_DOUBLE_EQ(summary[1].self_ms, 0.03);
  EXPECT_EQ(summary[2].name, "C");
  EXPECT_DOUBLE_EQ(summary[2].self_ms, 0.02);
}

TEST(TraceSummaryTest, SameIntervalsOnDifferentThreadsDoNotNest) {
  const Json trace = MakeTrace(
      {MakeEvent("A", 0, 100, 1), MakeEvent("B", 10, 30, 2)});
  const auto summary = obs::SummarizeTrace(trace);
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_DOUBLE_EQ(summary[0].self_ms, 0.1);   // A keeps its full time
  EXPECT_DOUBLE_EQ(summary[1].self_ms, 0.03);  // B is not A's child
}

TEST(TraceSummaryTest, AggregatesRepeatedSpanNames) {
  const Json trace = MakeTrace({MakeEvent("round", 0, 10, 1),
                                MakeEvent("round", 20, 10, 1),
                                MakeEvent("round", 40, 10, 1)});
  const auto summary = obs::SummarizeTrace(trace);
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].count, 3u);
  EXPECT_DOUBLE_EQ(summary[0].total_ms, 0.03);
}

TEST(TraceSummaryTest, RejectsMalformedDocuments) {
  EXPECT_THROW(obs::SummarizeTrace(Json::Parse("[]")), std::runtime_error);
  EXPECT_THROW(obs::SummarizeTrace(Json::Parse("{}")), std::runtime_error);
  EXPECT_THROW(
      obs::SummarizeTrace(Json::Parse(R"({"traceEvents": 3})")),
      std::runtime_error);

  // An event missing "name" (built directly — Json has no erase).
  Json bad = Json::Object();
  bad.Set("cat", Json::String("pipeline"));
  bad.Set("ph", Json::String("X"));
  bad.Set("ts", Json::Number(0));
  bad.Set("dur", Json::Number(1));
  bad.Set("pid", Json::Number(1));
  bad.Set("tid", Json::Number(1));
  EXPECT_THROW(obs::SummarizeTrace(MakeTrace({std::move(bad)})),
               std::runtime_error);

  Json begin_phase = MakeEvent("x", 0, 1, 1);
  begin_phase.Set("ph", Json::String("B"));
  EXPECT_THROW(obs::SummarizeTrace(MakeTrace({std::move(begin_phase)})),
               std::runtime_error);

  Json negative = MakeEvent("x", 0, 1, 1);
  negative.Set("dur", Json::Number(-5));
  EXPECT_THROW(obs::SummarizeTrace(MakeTrace({std::move(negative)})),
               std::runtime_error);

  Json string_ts = MakeEvent("x", 0, 1, 1);
  string_ts.Set("ts", Json::String("soon"));
  EXPECT_THROW(obs::SummarizeTrace(MakeTrace({std::move(string_ts)})),
               std::runtime_error);
}

TEST_F(ObsTraceTest, DisabledSpansAreCheapAndRecordNothing) {
  ASSERT_FALSE(obs::TracingEnabled());
  obs::StartTracing();
  obs::StopTracing();  // clear any leftovers, end disabled
  constexpr std::size_t kSpans = 1'000'000;
  Timer timer;
  for (std::size_t i = 0; i < kSpans; ++i) {
    obs::Span span("never-recorded");
  }
  const double seconds = timer.Seconds();
  // The null-sink path is one relaxed load — microseconds per million
  // spans in practice. The bound is deliberately generous (sanitizer and
  // debug builds run this too); it exists to catch the fast path
  // accidentally acquiring a lock or copying the name.
  EXPECT_LT(seconds, 5.0);
  EXPECT_TRUE(obs::CollectTraceEvents().empty());
}

// ---------------------------------------------------------------------------
// Timer (obs/timer.h) — the shared clock source
// ---------------------------------------------------------------------------

TEST(ObsTimerTest, LapsPartitionTheTotal) {
  Timer timer;
  const double lap1 = timer.LapSeconds();
  const double lap2 = timer.LapSeconds();
  const double total = timer.Seconds();
  EXPECT_GE(lap1, 0.0);
  EXPECT_GE(lap2, 0.0);
  // Laps are consecutive sub-intervals of [start, now].
  EXPECT_LE(lap1 + lap2, total + 1e-9);
}

TEST(ObsTimerTest, ResetRestartsBothStopwatchAndLap) {
  Timer timer;
  (void)timer.LapSeconds();
  timer.Reset();
  EXPECT_GE(timer.Seconds(), 0.0);
  EXPECT_GE(timer.LapSeconds(), 0.0);
}

TEST(ObsTimerTest, SteadyNowMicrosIsMonotonic) {
  const std::uint64_t a = obs::SteadyNowMicros();
  const std::uint64_t b = obs::SteadyNowMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace sgr
