#include "graph/csr_graph.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace sgr {
namespace {

/// A multigraph exercising every convention: loops, parallel edges,
/// isolated nodes.
Graph MessyMultigraph() {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // parallel edge, reversed orientation
  g.AddEdge(1, 2);
  g.AddEdge(2, 2);  // loop
  g.AddEdge(2, 2);  // second loop at the same node
  g.AddEdge(3, 0);
  // node 4 isolated, node 5 only a loop
  g.AddEdge(5, 5);
  return g;
}

/// Random multigraph: `num_edges` endpoints drawn uniformly (loops and
/// parallel edges arise naturally).
Graph RandomMultigraph(std::size_t num_nodes, std::size_t num_edges,
                       Rng& rng) {
  Graph g(num_nodes);
  for (std::size_t e = 0; e < num_edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.NextIndex(num_nodes)),
              static_cast<NodeId>(rng.NextIndex(num_nodes)));
  }
  return g;
}

void ExpectParity(const Graph& g, const CsrGraph& csr) {
  ASSERT_EQ(csr.NumNodes(), g.NumNodes());
  EXPECT_EQ(csr.NumEdges(), g.NumEdges());
  EXPECT_EQ(csr.TotalDegree(), g.TotalDegree());
  EXPECT_EQ(csr.MaxDegree(), g.MaxDegree());
  EXPECT_DOUBLE_EQ(csr.AverageDegree(), g.AverageDegree());
  EXPECT_EQ(csr.IsSimple(), g.IsSimple());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_EQ(csr.Degree(v), g.Degree(v)) << "v=" << v;
    // Neighbor multisets must match; CSR additionally guarantees sorted
    // order.
    std::vector<NodeId> expected(g.adjacency(v).begin(),
                                 g.adjacency(v).end());
    std::sort(expected.begin(), expected.end());
    const NeighborSpan nbrs = csr.neighbors(v);
    ASSERT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end())) << "v=" << v;
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(), nbrs.begin(),
                           nbrs.end()))
        << "v=" << v;
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(csr.CountEdges(u, v), g.CountEdges(u, v))
          << "u=" << u << " v=" << v;
      EXPECT_EQ(csr.HasEdge(u, v), g.HasEdge(u, v));
    }
  }
}

TEST(CsrGraphTest, EmptyGraph) {
  const CsrGraph csr((Graph()));
  EXPECT_EQ(csr.NumNodes(), 0u);
  EXPECT_EQ(csr.NumEdges(), 0u);
  EXPECT_EQ(csr.MaxDegree(), 0u);
  EXPECT_DOUBLE_EQ(csr.AverageDegree(), 0.0);
  EXPECT_TRUE(csr.IsSimple());
}

TEST(CsrGraphTest, MessyMultigraphParity) {
  const Graph g = MessyMultigraph();
  const CsrGraph csr(g);
  ExpectParity(g, csr);
  // Spot checks of the conventions.
  EXPECT_EQ(csr.Degree(2), 5u);           // 1 plain edge + 2 loops * 2
  EXPECT_EQ(csr.CountEdges(2, 2), 4u);    // A_vv = 2 * loops
  EXPECT_EQ(csr.CountEdges(0, 1), 2u);    // parallel edges
  EXPECT_EQ(csr.Degree(4), 0u);
  EXPECT_FALSE(csr.IsSimple());
}

TEST(CsrGraphTest, RandomMultigraphParity) {
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    const Graph g = RandomMultigraph(40, 120, rng);
    ExpectParity(g, CsrGraph(g));
  }
}

TEST(CsrGraphTest, SimpleGeneratedGraphParity) {
  Rng rng(5);
  const Graph g = GeneratePowerlawCluster(300, 3, 0.4, rng);
  const CsrGraph csr(g);
  ExpectParity(g, csr);
  EXPECT_TRUE(csr.IsSimple());
}

TEST(CsrGraphTest, FromAdjacencyUnsortedInput) {
  // Path 0-1-2 plus a loop at 2, given with unsorted neighbor ranges.
  std::vector<std::size_t> offsets = {0, 1, 3, 6};
  std::vector<NodeId> neighbors = {1, 2, 0, 2, 2, 1};
  const CsrGraph csr =
      CsrGraph::FromAdjacency(std::move(offsets), std::move(neighbors));
  EXPECT_EQ(csr.NumNodes(), 3u);
  EXPECT_EQ(csr.NumEdges(), 3u);  // 0-1, 1-2, loop at 2
  EXPECT_EQ(csr.Degree(2), 3u);
  EXPECT_EQ(csr.CountEdges(2, 2), 2u);
  EXPECT_EQ(csr.CountEdges(1, 2), 1u);
  EXPECT_FALSE(csr.IsSimple());
  const NeighborSpan nbrs = csr.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

}  // namespace
}  // namespace sgr
