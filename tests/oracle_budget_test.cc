#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.h"
#include "sampling/bfs.h"
#include "sampling/forest_fire.h"
#include "sampling/frontier.h"
#include "sampling/metropolis_hastings.h"
#include "sampling/non_backtracking.h"
#include "sampling/random_walk.h"
#include "sampling/snowball.h"
#include "scenario/spec.h"

namespace sgr {
namespace {

Graph TestGraph() {
  GeneratorSpec spec;
  spec.model = "powerlaw";
  spec.nodes = 300;
  spec.edges_per_node = 3;
  spec.triad_p = 0.4;
  spec.seed = 7;
  return BuildGeneratorGraph(spec);
}

/// Every crawler's node-budget contract: a crawl with budget B queries at
/// most B distinct nodes from the oracle — that is the cost model the
/// paper's "x% of nodes queried" axis (and the report's oracle_queries
/// field) is built on.
TEST(OracleBudgetTest, EveryCrawlerRespectsTheNodeBudget) {
  const Graph g = TestGraph();
  const std::size_t budget = 30;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const NodeId start = static_cast<NodeId>(rng.NextIndex(g.NumNodes()));

    struct Crawl {
      const char* name;
      std::size_t queries;
    };
    std::vector<Crawl> crawls;
    {
      QueryOracle oracle(g);
      RandomWalkSample(oracle, start, budget, rng);
      crawls.push_back({"rw", oracle.unique_queries()});
    }
    {
      QueryOracle oracle(g);
      NonBacktrackingWalkSample(oracle, start, budget, rng);
      crawls.push_back({"nbrw", oracle.unique_queries()});
    }
    {
      QueryOracle oracle(g);
      MetropolisHastingsWalkSample(oracle, start, budget, rng);
      crawls.push_back({"mhrw", oracle.unique_queries()});
    }
    {
      QueryOracle oracle(g);
      BfsSample(oracle, start, budget);
      crawls.push_back({"bfs", oracle.unique_queries()});
    }
    {
      QueryOracle oracle(g);
      SnowballSample(oracle, start, budget, /*k=*/50, rng);
      crawls.push_back({"snowball", oracle.unique_queries()});
    }
    {
      QueryOracle oracle(g);
      ForestFireSample(oracle, start, budget, /*pf=*/0.7, rng);
      crawls.push_back({"ff", oracle.unique_queries()});
    }
    {
      QueryOracle oracle(g);
      std::vector<NodeId> seeds;
      for (std::size_t i = 0; i < 5; ++i) {
        seeds.push_back(static_cast<NodeId>(rng.NextIndex(g.NumNodes())));
      }
      FrontierSample(oracle, seeds, budget, rng);
      crawls.push_back({"frontier", oracle.unique_queries()});
    }

    for (const Crawl& crawl : crawls) {
      EXPECT_LE(crawl.queries, budget)
          << crawl.name << " overspent with seed " << seed;
      EXPECT_GT(crawl.queries, 0u)
          << crawl.name << " queried nothing with seed " << seed;
    }
  }
}

TEST(OracleBudgetTest, RunExperimentEchoesOracleQueriesWithinBudget) {
  const Graph g = TestGraph();
  ExperimentConfig config;
  config.query_fraction = 0.1;
  config.restoration.rewire.rewiring_coefficient = 5.0;
  config.property_options.max_path_sources = 20;
  const auto budget = static_cast<std::size_t>(
      config.query_fraction * static_cast<double>(g.NumNodes()));

  const GraphProperties properties =
      ComputeProperties(g, config.property_options);
  const auto results = RunExperiment(g, properties, config, /*run_seed=*/42);
  ASSERT_EQ(results.size(), 6u);
  for (const MethodRunResult& result : results) {
    EXPECT_LE(result.oracle_queries, budget);
    EXPECT_GT(result.oracle_queries, 0u);
    // A crawl can't have queried more distinct nodes than it took steps.
    EXPECT_LE(static_cast<double>(result.oracle_queries),
              result.sample_steps);
  }
  // The walk-based trio shares one sample, hence one query count.
  EXPECT_EQ(results[3].oracle_queries, results[4].oracle_queries);
  EXPECT_EQ(results[4].oracle_queries, results[5].oracle_queries);

  // oracle_queries is a deterministic function of (config, seed).
  const auto replay = RunExperiment(g, properties, config, /*run_seed=*/42);
  ASSERT_EQ(replay.size(), results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(replay[i].oracle_queries, results[i].oracle_queries);
  }
}

}  // namespace
}  // namespace sgr
