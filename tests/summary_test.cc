#include "analysis/summary.h"

#include <gtest/gtest.h>

namespace sgr {
namespace {

TEST(SummaryTest, EmptyAccumulator) {
  DistanceAccumulator acc;
  const DistanceSummary s = acc.Summarize();
  EXPECT_EQ(s.runs, 0u);
  EXPECT_DOUBLE_EQ(s.mean_average, 0.0);
}

TEST(SummaryTest, SingleRunPassesThrough) {
  DistanceAccumulator acc;
  std::array<double, kNumProperties> d{};
  d.fill(0.25);
  acc.Add(d);
  const DistanceSummary s = acc.Summarize();
  EXPECT_EQ(s.runs, 1u);
  EXPECT_DOUBLE_EQ(s.mean_average, 0.25);
  EXPECT_DOUBLE_EQ(s.mean_sd, 0.0);
  for (double m : s.mean_per_property) EXPECT_DOUBLE_EQ(m, 0.25);
}

TEST(SummaryTest, AveragesAcrossRuns) {
  DistanceAccumulator acc;
  std::array<double, kNumProperties> lo{};
  lo.fill(0.1);
  std::array<double, kNumProperties> hi{};
  hi.fill(0.3);
  acc.Add(lo);
  acc.Add(hi);
  const DistanceSummary s = acc.Summarize();
  EXPECT_EQ(s.runs, 2u);
  EXPECT_DOUBLE_EQ(s.mean_average, 0.2);
  EXPECT_DOUBLE_EQ(s.mean_per_property[5], 0.2);
}

TEST(SummaryTest, MeanSdAveragesPerRunSds) {
  DistanceAccumulator acc;
  // Run 1: constant vector -> sd 0. Run 2: half 0, half 0.2 -> sd 0.1.
  std::array<double, kNumProperties> flat{};
  flat.fill(0.4);
  std::array<double, kNumProperties> split{};
  for (std::size_t i = 0; i < kNumProperties; ++i) {
    split[i] = (i % 2 == 0) ? 0.0 : 0.2;
  }
  acc.Add(flat);
  acc.Add(split);
  const DistanceSummary s = acc.Summarize();
  EXPECT_NEAR(s.mean_sd, 0.05, 1e-12);
}

}  // namespace
}  // namespace sgr
