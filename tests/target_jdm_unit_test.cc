// Surgical unit tests of the target-JDM machinery (Algorithms 3-4) on
// hand-crafted estimates, complementing the randomized sweeps in
// target_jdm_test.cc: each case isolates one branch of the adjustment /
// modification logic.

#include <gtest/gtest.h>

#include "restore/target_jdm.h"

namespace sgr {
namespace {

/// Estimates describing an exactly realizable world: 4 nodes of degree 1,
/// 2 of degree 2 (n = 6, 2m = 8, k̄ = 4/3), edges (1,2) x 4... built so
/// initialization lands exactly on a consistent matrix.
LocalEstimates ConsistentEstimates() {
  LocalEstimates est;
  est.num_nodes = 6.0;
  est.average_degree = 8.0 / 6.0;
  est.degree_dist = {0.0, 4.0 / 6.0, 2.0 / 6.0};
  // Graph: two paths 1-2-1: m(1,2) = 4. P(1,2) = m/2m = 0.5 per ordering.
  est.joint_dist.SetSymmetric(1, 2, 0.5);
  return est;
}

TEST(TargetJdmUnitTest, ConsistentEstimatesPassUnchanged) {
  LocalEstimates est = ConsistentEstimates();
  DegreeVector n_star = {0, 4, 2};
  Rng rng(1);
  const JointDegreeMatrix m_star =
      BuildTargetJdmFromEstimates(est, n_star, rng);
  EXPECT_EQ(m_star.At(1, 2), 4);
  EXPECT_EQ(m_star.TotalEdges(), 4);
  EXPECT_EQ(n_star, (DegreeVector{0, 4, 2}));  // untouched
  EXPECT_TRUE(m_star.SatisfiesJdm3(n_star));
}

TEST(TargetJdmUnitTest, RowDeficitFilledViaDegreeOne) {
  // Degree-3 row underfilled: the adjuster must raise it using the
  // always-available degree-1 column (D'+ contains 1).
  LocalEstimates est;
  est.num_nodes = 8.0;
  est.average_degree = 1.5;  // 2m = 12
  est.degree_dist = {0.0, 5.0 / 8.0, 0.0, 3.0 / 8.0};
  // Deliberately too-small joint mass on (1,3).
  est.joint_dist.SetSymmetric(1, 3, 0.2);  // m̂(1,3) = 12*0.2 = 2.4 -> 2
  DegreeVector n_star = {0, 5, 0, 3};      // s*(1) = 5, s*(3) = 9
  Rng rng(2);
  const JointDegreeMatrix m_star =
      BuildTargetJdmFromEstimates(est, n_star, rng);
  EXPECT_TRUE(m_star.SatisfiesJdm1());
  EXPECT_TRUE(m_star.SatisfiesJdm2());
  EXPECT_TRUE(m_star.SatisfiesJdm3(n_star));
  // The degree vector may have grown, but never shrunk.
  EXPECT_GE(n_star[1], 5);
  EXPECT_GE(n_star[3], 3);
}

TEST(TargetJdmUnitTest, DegreeOneParityHandledByGrowth) {
  // Only degree 1 exists and the initial s(1) has odd distance to s*(1):
  // lines 2-3 of Algorithm 3 must grow n*(1) to make the gap even, then
  // close it via m(1,1).
  LocalEstimates est;
  est.num_nodes = 5.0;
  est.average_degree = 1.0;
  est.degree_dist = {0.0, 1.0};
  est.joint_dist.SetSymmetric(1, 1, 1.0);  // m̂(1,1) = 5*1/2 = 2.5 -> 2
  DegreeVector n_star = {0, 5};            // s*(1) = 5, s(1) = 4: odd gap
  Rng rng(3);
  const JointDegreeMatrix m_star =
      BuildTargetJdmFromEstimates(est, n_star, rng);
  EXPECT_TRUE(m_star.SatisfiesJdm3(n_star));
  EXPECT_EQ(n_star[1] % 2, 0);  // grown to even total degree
}

TEST(TargetJdmUnitTest, ModificationLiftsEntriesToSubgraphFloor) {
  // The estimates see no (2,3) edges but the subgraph contains two: the
  // modification step must lift m*(2,3) to >= 2 while keeping JDM-1/2 and
  // restoring JDM-3 via the re-adjustment.
  LocalEstimates est;
  est.num_nodes = 12.0;
  est.average_degree = 2.5;  // 2m = 30
  est.degree_dist = {0.0, 0.25, 0.375, 0.375};
  est.joint_dist.SetSymmetric(1, 2, 0.2);
  est.joint_dist.SetSymmetric(1, 3, 0.2);
  est.joint_dist.SetSymmetric(2, 2, 0.1);
  est.joint_dist.SetSymmetric(3, 3, 0.2);
  DegreeVector n_star = {0, 3, 5, 4};

  JointDegreeMatrix m_prime;
  m_prime.SetSymmetric(2, 3, 2);

  Rng rng(4);
  const JointDegreeMatrix m_star =
      BuildTargetJdm(est, n_star, m_prime, rng);
  EXPECT_GE(m_star.At(2, 3), 2);
  EXPECT_TRUE(m_star.SatisfiesJdm1());
  EXPECT_TRUE(m_star.SatisfiesJdm2());
  EXPECT_TRUE(m_star.SatisfiesJdm3(n_star));
  EXPECT_TRUE(m_star.Dominates(m_prime));
}

TEST(TargetJdmUnitTest, LowerLimitsRespectedDuringReadjustment) {
  // Force the re-adjustment path with a large subgraph floor on the
  // diagonal: the floor must survive (JDM-4) even while row sums are
  // rebalanced.
  LocalEstimates est;
  est.num_nodes = 10.0;
  est.average_degree = 2.0;  // 2m = 20
  est.degree_dist = {0.0, 0.5, 0.5};
  est.joint_dist.SetSymmetric(1, 2, 0.3);
  est.joint_dist.SetSymmetric(2, 2, 0.4);
  DegreeVector n_star = {0, 5, 5};

  JointDegreeMatrix m_prime;
  m_prime.SetSymmetric(2, 2, 5);  // well above the estimate's ~2

  Rng rng(5);
  const JointDegreeMatrix m_star =
      BuildTargetJdm(est, n_star, m_prime, rng);
  EXPECT_GE(m_star.At(2, 2), 5);
  EXPECT_TRUE(m_star.SatisfiesJdm3(n_star));
  EXPECT_TRUE(m_star.Dominates(m_prime));
}

TEST(TargetJdmUnitTest, InitializationGuaranteesPositiveEntries) {
  // P̂(k,k') > 0 forces m*(k,k') >= 1 even when the rounded estimate is 0
  // (Section IV-C initialization: a positive estimate certifies at least
  // one such edge exists).
  LocalEstimates est;
  est.num_nodes = 100.0;
  est.average_degree = 2.0;
  est.degree_dist = {0.0, 0.99, 0.01};
  est.joint_dist.SetSymmetric(1, 1, 0.995);
  est.joint_dist.SetSymmetric(2, 2, 0.005);  // m̂ = 0.5 -> rounds to 1
  DegreeVector n_star = {0, 99, 1};
  Rng rng(6);
  const JointDegreeMatrix m_star =
      BuildTargetJdmFromEstimates(est, n_star, rng);
  EXPECT_GE(m_star.At(2, 2), 1);
}

}  // namespace
}  // namespace sgr
