#include "util/rng.h"

#include <gtest/gtest.h>

namespace sgr {
namespace {

TEST(RngTest, DeterministicWithSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextIndex(1000), b.NextIndex(1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 32 && !any_diff; ++i) {
    any_diff = a.NextIndex(1 << 30) != b.NextIndex(1 << 30);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextIndexWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextIndex(17), 17u);
  }
  EXPECT_EQ(rng.NextIndex(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextRealInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextReal();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(10);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-0.5));
  EXPECT_TRUE(rng.NextBernoulli(1.5));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, GeometricMean) {
  Rng rng(12);
  // Geometric(p = 0.3) has mean (1-p)/p = 7/3.
  double total = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(rng.NextGeometric(0.3));
  }
  EXPECT_NEAR(total / trials, 7.0 / 3.0, 0.1);
}

TEST(RngTest, ChoicePicksUniformly) {
  Rng rng(13);
  const std::vector<int> items = {10, 20, 30};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) {
    const int v = rng.Choice(items);
    counts[v / 10 - 1]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

}  // namespace
}  // namespace sgr
