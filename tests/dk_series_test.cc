#include "dk/dk_series.h"

#include <gtest/gtest.h>

#include "analysis/l1.h"
#include "analysis/properties.h"
#include "dk/dk_extract.h"
#include "graph/generators.h"

namespace sgr {
namespace {

class DkSeriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(0xDC);
    original_ = new Graph(GenerateSocialGraph(1000, 4, 0.5, 0.4, rng));
  }
  static void TearDownTestSuite() {
    delete original_;
    original_ = nullptr;
  }
  static Graph* original_;
};

Graph* DkSeriesTest::original_ = nullptr;

TEST_F(DkSeriesTest, ZeroKPreservesSizeOnly) {
  Rng rng(1);
  const Graph g = GenerateDkGraph(*original_, DkOrder::k0, rng);
  EXPECT_EQ(g.NumNodes(), original_->NumNodes());
  EXPECT_EQ(g.NumEdges(), original_->NumEdges());
  // Degree distribution is Poisson-like, far from the heavy tail.
  EXPECT_GT(NormalizedL1(DegreeDistribution(*original_),
                         DegreeDistribution(g)),
            0.4);
}

TEST_F(DkSeriesTest, OneKPreservesDegreeVector) {
  Rng rng(2);
  const Graph g = GenerateDkGraph(*original_, DkOrder::k1, rng);
  EXPECT_EQ(ExtractDegreeVector(g), ExtractDegreeVector(*original_));
}

TEST_F(DkSeriesTest, TwoKPreservesJointDegreeMatrix) {
  Rng rng(3);
  const Graph g = GenerateDkGraph(*original_, DkOrder::k2, rng);
  EXPECT_EQ(ExtractDegreeVector(g), ExtractDegreeVector(*original_));
  const JointDegreeMatrix expected = ExtractJointDegreeMatrix(*original_);
  const JointDegreeMatrix actual = ExtractJointDegreeMatrix(g);
  for (const auto& [key, count] : expected.counts()) {
    EXPECT_EQ(actual.counts().count(key) > 0 ? actual.counts().at(key) : 0,
              count);
  }
}

TEST_F(DkSeriesTest, LadderImprovesDegreeDistribution) {
  Rng rng(4);
  const std::vector<double> truth = DegreeDistribution(*original_);
  const double e0 = NormalizedL1(
      truth,
      DegreeDistribution(GenerateDkGraph(*original_, DkOrder::k0, rng)));
  const double e1 = NormalizedL1(
      truth,
      DegreeDistribution(GenerateDkGraph(*original_, DkOrder::k1, rng)));
  EXPECT_LT(e1, e0);
  EXPECT_NEAR(e1, 0.0, 1e-12);  // 1K is exact on P(k)
}

TEST_F(DkSeriesTest, TwoPointFiveKImprovesClustering) {
  Rng rng(5);
  const std::vector<double> truth =
      ExtractDegreeDependentClustering(*original_);
  const double e2 = NormalizedL1(
      truth, ExtractDegreeDependentClustering(
                 GenerateDkGraph(*original_, DkOrder::k2, rng)));
  const double e25 = NormalizedL1(
      truth, ExtractDegreeDependentClustering(GenerateDkGraph(
                 *original_, DkOrder::k2_5, rng, /*rc=*/100.0)));
  EXPECT_LT(e25, 0.8 * e2);
}

TEST_F(DkSeriesTest, TwoPointFiveKTracksGlobalProperties) {
  // Gjoka et al.'s headline (inherited by the paper): 2.5K-graphs
  // reproduce global properties they never target, e.g. the mean shortest
  // path.
  Rng rng(6);
  PropertyOptions options;
  options.max_path_sources = 200;
  const GraphProperties truth = ComputeProperties(*original_, options);
  const GraphProperties got = ComputeProperties(
      GenerateDkGraph(*original_, DkOrder::k2_5, rng, 100.0), options);
  EXPECT_NEAR(got.average_path_length, truth.average_path_length,
              0.25 * truth.average_path_length);
}

}  // namespace
}  // namespace sgr
