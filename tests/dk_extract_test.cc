#include "dk/dk_extract.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace sgr {
namespace {

TEST(DkExtractTest, DegreeVectorOfStar) {
  const Graph g = GenerateStar(6);
  const DegreeVector dv = ExtractDegreeVector(g);
  ASSERT_EQ(dv.size(), 6u);
  EXPECT_EQ(dv[1], 5);
  EXPECT_EQ(dv[5], 1);
  EXPECT_EQ(DegreeVectorNodes(dv), 6);
}

TEST(DkExtractTest, DegreeVectorHandshake) {
  Rng rng(31);
  const Graph g = GeneratePowerlawCluster(400, 3, 0.4, rng);
  const DegreeVector dv = ExtractDegreeVector(g);
  EXPECT_EQ(DegreeVectorTotalDegree(dv),
            2 * static_cast<std::int64_t>(g.NumEdges()));
}

TEST(DkExtractTest, JdmOfPath) {
  const Graph g = GeneratePath(4);  // degrees 1,2,2,1
  const JointDegreeMatrix jdm = ExtractJointDegreeMatrix(g);
  EXPECT_EQ(jdm.At(1, 2), 2);
  EXPECT_EQ(jdm.At(2, 2), 1);
  EXPECT_EQ(jdm.TotalEdges(), 3);
}

TEST(DkExtractTest, JdmRowSumsMatchDegreeVector) {
  Rng rng(32);
  const Graph g = GeneratePowerlawCluster(500, 4, 0.3, rng);
  const JointDegreeMatrix jdm = ExtractJointDegreeMatrix(g);
  const DegreeVector dv = ExtractDegreeVector(g);
  EXPECT_TRUE(jdm.SatisfiesJdm3(dv));
  EXPECT_TRUE(jdm.SatisfiesJdm2());
}

TEST(DkExtractTest, JdmSelfLoopGoesToDiagonal) {
  Graph g(2);
  g.AddEdge(0, 0);  // degree(0) = 2
  g.AddEdge(0, 1);  // degree(0) = 3, degree(1) = 1
  const JointDegreeMatrix jdm = ExtractJointDegreeMatrix(g);
  EXPECT_EQ(jdm.At(3, 3), 1);  // the loop
  EXPECT_EQ(jdm.At(3, 1), 1);
}

TEST(DkExtractTest, TrianglesOfComplete) {
  const Graph g = GenerateComplete(5);
  const std::vector<std::int64_t> t = CountTrianglesPerNode(g);
  // Each node of K5 is in C(4,2) = 6 triangles.
  for (std::int64_t tv : t) EXPECT_EQ(tv, 6);
}

TEST(DkExtractTest, TrianglesOfCycleAreZero) {
  const Graph g = GenerateCycle(8);
  for (std::int64_t tv : CountTrianglesPerNode(g)) EXPECT_EQ(tv, 0);
}

TEST(DkExtractTest, TrianglesWithMultiEdges) {
  // Triangle with one doubled side: t counts multiplicities.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  const std::vector<std::int64_t> t = CountTrianglesPerNode(g);
  // t_2 = A_01 * A_02 * ... : pairs (0,1): A_20 A_21 A_01 = 1*1*2 = 2.
  EXPECT_EQ(t[2], 2);
  EXPECT_EQ(t[0], 2);
  EXPECT_EQ(t[1], 2);
}

TEST(DkExtractTest, LoopsFormNoTriangles) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(0, 0);  // loop must not add triangles
  const std::vector<std::int64_t> t = CountTrianglesPerNode(g);
  EXPECT_EQ(t[0], 1);
  EXPECT_EQ(t[1], 1);
  EXPECT_EQ(t[2], 1);
}

TEST(DkExtractTest, SimpleAndMultigraphCountersAgree) {
  Rng rng(33);
  const Graph g = GeneratePowerlawCluster(300, 3, 0.6, rng);
  ASSERT_TRUE(g.IsSimple());
  const std::vector<std::int64_t> fast = CountTrianglesPerNode(g);
  // Force the multigraph path by adding and removing nothing: rebuild an
  // identical multigraph via a loop-free copy with one extra loop that
  // does not affect triangles.
  Graph h = g;
  h.AddEdge(0, 0);
  const std::vector<std::int64_t> slow = CountTrianglesPerNode(h);
  EXPECT_EQ(fast, slow);
}

TEST(DkExtractTest, ClusteringOfComplete) {
  const Graph g = GenerateComplete(6);
  const std::vector<double> c = ExtractDegreeDependentClustering(g);
  ASSERT_EQ(c.size(), 6u);
  EXPECT_DOUBLE_EQ(c[5], 1.0);
}

TEST(DkExtractTest, ClusteringLowDegreesAreZero) {
  const Graph g = GenerateStar(5);
  const std::vector<double> c = ExtractDegreeDependentClustering(g);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
  EXPECT_DOUBLE_EQ(c[4], 0.0);
}

}  // namespace
}  // namespace sgr
