#include <set>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_summary.h"
#include "scenario/engine.h"
#include "scenario/report.h"
#include "scenario/spec.h"

namespace sgr {
namespace {

/// Same hermetic CI-sized scenario the engine tests use: generator
/// dataset, tiny graphs, all six methods, two fractions x two trials.
ScenarioSpec TinySpec() {
  return ScenarioSpec::FromJson(Json::Parse(R"({
    "name": "tiny",
    "datasets": [{"name": "tiny-powerlaw", "model": "powerlaw",
                  "nodes": 150, "edges_per_node": 3, "triad_p": 0.4,
                  "seed": 11}],
    "fractions": [0.1, 0.2],
    "trials": 2,
    "seed_base": 1234,
    "rc": 5,
    "path_sources": 20
  })"));
}

/// Observability state is process-global; leave both subsystems off.
class ObsIntegrationTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::StopTracing();
    obs::EnableMetrics(false);
    obs::ResetMetrics();
  }
};

TEST_F(ObsIntegrationTest, MetricsBlockIsVolatileAndPureObservation) {
  const ScenarioSpec spec = TinySpec();
  const Json off = ScenarioReportToJson(RunScenario(spec, 2));

  obs::ResetMetrics();
  obs::EnableMetrics(true);
  const Json on = ScenarioReportToJson(RunScenario(spec, 2));
  obs::EnableMetrics(false);

  // The raw reports differ exactly by the per-cell "metrics" blocks.
  for (const Json& cell : off.Find("cells")->Items()) {
    EXPECT_EQ(cell.Find("metrics"), nullptr);
  }
  for (const Json& cell : on.Find("cells")->Items()) {
    const Json* metrics = cell.Find("metrics");
    ASSERT_NE(metrics, nullptr);
    // Every cell crawls and rewires, on every platform this CI runs on.
    EXPECT_GT(metrics->Find("oracle.queries")->AsNumber(), 0.0);
    EXPECT_GT(metrics->Find("rewire.attempts")->AsNumber(), 0.0);
    EXPECT_GT(metrics->Find("peak_rss_bytes")->AsNumber(), 0.0);
  }

  // Metrics are pure observation: post-strip bytes are identical.
  EXPECT_EQ(StripVolatile(off).Dump(2), StripVolatile(on).Dump(2));
}

TEST_F(ObsIntegrationTest, TraceCoversThePipelineAndPerturbsNothing) {
  const ScenarioSpec spec = TinySpec();
  const Json off = ScenarioReportToJson(RunScenario(spec, 2));

  obs::StartTracing();
  const Json on = ScenarioReportToJson(RunScenario(spec, 2));
  obs::StopTracing();

  // The acceptance contract: one trace of one scenario run covers every
  // pipeline phase.
  std::set<std::string> names;
  for (const obs::TraceEvent& event : obs::CollectTraceEvents()) {
    names.insert(event.name);
  }
  for (const char* phase :
       {"crawl", "estimate", "dk_extract", "assemble", "rewire", "trial",
        "cell", "evaluate"}) {
    EXPECT_TRUE(names.count(phase)) << "no '" << phase << "' span recorded";
  }

  // The recorded trace round-trips through the strict validator.
  const auto summary = obs::SummarizeTrace(obs::TraceToJson());
  EXPECT_GE(summary.size(), 8u);

  // Tracing is pure observation: post-strip bytes are identical.
  EXPECT_EQ(StripVolatile(off).Dump(2), StripVolatile(on).Dump(2));
}

TEST_F(ObsIntegrationTest, OracleQueriesAreReportedAndDeterministic) {
  const ScenarioSpec spec = TinySpec();
  const Json first = ScenarioReportToJson(RunScenario(spec, 1));
  const Json second = ScenarioReportToJson(RunScenario(spec, 4));
  for (const Json& cell : first.Find("cells")->Items()) {
    const double budget =
        cell.Find("query_fraction")->AsNumber() *
        cell.Find("nodes")->AsNumber();
    for (const Json& method : cell.Find("methods")->Items()) {
      const Json* queries = method.Find("oracle_queries");
      ASSERT_NE(queries, nullptr);
      EXPECT_GT(queries->AsNumber(), 0.0);
      EXPECT_LE(queries->AsNumber(), budget);
      // The crawl cost sits next to sample_steps and never exceeds it.
      EXPECT_LE(queries->AsNumber(),
                method.Find("sample_steps")->AsNumber());
    }
  }
  // Deterministic content: it survives the strip and matches across
  // thread counts, byte for byte.
  const std::string a = StripVolatile(first).Dump(2);
  EXPECT_NE(a.find("oracle_queries"), std::string::npos);
  EXPECT_EQ(a, StripVolatile(second).Dump(2));
}

}  // namespace
}  // namespace sgr
