#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/l1.h"
#include "dk/dk_extract.h"
#include "graph/generators.h"
#include "restore/rewirer.h"
#include "util/rng.h"

namespace sgr {
namespace {

/// The invariants every rewiring run must keep (shared by the sequential
/// and the batched engine): degree sequence untouched, protected edge
/// ids untouched, monotone objective, accepted <= attempts.
void ExpectRewireInvariants(const Graph& before, const Graph& after,
                            std::size_t num_protected,
                            const RewireStats& stats) {
  ASSERT_EQ(after.NumNodes(), before.NumNodes());
  ASSERT_EQ(after.NumEdges(), before.NumEdges());
  for (NodeId v = 0; v < before.NumNodes(); ++v) {
    ASSERT_EQ(after.Degree(v), before.Degree(v)) << "node " << v;
  }
  for (std::size_t e = 0; e < num_protected && e < before.NumEdges(); ++e) {
    EXPECT_EQ(after.edge(e).u, before.edge(e).u) << "edge " << e;
    EXPECT_EQ(after.edge(e).v, before.edge(e).v) << "edge " << e;
  }
  EXPECT_LE(stats.accepted, stats.attempts);
  EXPECT_LE(stats.final_distance, stats.initial_distance + 1e-9);
}

/// Seeded generator matrix the property suite runs over: three models x
/// two protection regimes, all CI-sized.
struct MatrixCase {
  const char* model;
  std::uint64_t seed;
  double protect_fraction;
};

Graph BuildCase(const MatrixCase& c) {
  Rng rng(c.seed);
  if (std::string(c.model) == "powerlaw") {
    return GeneratePowerlawCluster(250, 3, 0.4, rng);
  }
  if (std::string(c.model) == "er") {
    return GenerateErdosRenyiGnm(250, 900, rng);
  }
  return GenerateCommunityGraph(240, 4, 3, 0.4, 6, rng);
}

TEST(ParallelRewireTest, PropertyMatrixKeepsInvariantsBothEngines) {
  const std::array<MatrixCase, 6> matrix = {
      MatrixCase{"powerlaw", 101, 0.0}, MatrixCase{"powerlaw", 102, 0.5},
      MatrixCase{"er", 103, 0.0},       MatrixCase{"er", 104, 0.3},
      MatrixCase{"community", 105, 0.0}, MatrixCase{"community", 106, 0.4}};
  for (const MatrixCase& c : matrix) {
    const Graph before = BuildCase(c);
    const auto num_protected = static_cast<std::size_t>(
        c.protect_fraction * static_cast<double>(before.NumEdges()));
    std::vector<double> target(before.MaxDegree() + 1, 0.3);

    RewireOptions options;
    options.rewiring_coefficient = 15.0;

    {
      Graph g = before;
      Rng rng(c.seed + 1000);
      const RewireStats stats =
          RewireToClustering(g, num_protected, target, options, rng);
      ExpectRewireInvariants(before, g, num_protected, stats);
      // The degree-matched 2-swap family preserves the JDM exactly.
      const JointDegreeMatrix jdm_before =
          ExtractJointDegreeMatrix(before);
      const JointDegreeMatrix jdm_after = ExtractJointDegreeMatrix(g);
      EXPECT_EQ(jdm_before.counts(), jdm_after.counts())
          << c.model << " seed " << c.seed << " (sequential)";
    }
    {
      Graph g = before;
      ParallelRewireOptions parallel;
      parallel.batch_size = 64;
      const RewireStats stats = RewireToClusteringParallel(
          g, num_protected, target, options, parallel, c.seed + 2000);
      ExpectRewireInvariants(before, g, num_protected, stats);
      const JointDegreeMatrix jdm_before =
          ExtractJointDegreeMatrix(before);
      const JointDegreeMatrix jdm_after = ExtractJointDegreeMatrix(g);
      EXPECT_EQ(jdm_before.counts(), jdm_after.counts())
          << c.model << " seed " << c.seed << " (batched)";
      EXPECT_EQ(stats.rounds,
                (stats.attempts + 63) / 64);  // ceil(R / batch)
      EXPECT_LE(stats.evaluated, stats.attempts);
    }
  }
}

TEST(ParallelRewireTest, ByteIdenticalAcrossThreadCounts) {
  Rng gen_rng(7);
  const Graph before = GeneratePowerlawCluster(300, 3, 0.5, gen_rng);
  std::vector<double> target(before.MaxDegree() + 1, 0.25);
  RewireOptions options;
  options.rewiring_coefficient = 25.0;
  ParallelRewireOptions parallel;
  parallel.batch_size = 128;

  struct Run {
    Graph graph;
    RewireStats stats;
  };
  std::vector<Run> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel.threads = threads;
    Run run{before, {}};
    run.stats = RewireToClusteringParallel(run.graph, 0, target, options,
                                           parallel, /*seed=*/0xD00D);
    runs.push_back(std::move(run));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    // Byte-identical edge lists: same edges, same ids, same endpoint
    // order.
    ASSERT_EQ(runs[r].graph.NumEdges(), runs[0].graph.NumEdges());
    for (EdgeId e = 0; e < runs[0].graph.NumEdges(); ++e) {
      ASSERT_EQ(runs[r].graph.edge(e).u, runs[0].graph.edge(e).u)
          << "edge " << e << " at thread count " << r;
      ASSERT_EQ(runs[r].graph.edge(e).v, runs[0].graph.edge(e).v)
          << "edge " << e << " at thread count " << r;
    }
    // Identical stats, bit-for-bit (the distances are doubles).
    EXPECT_EQ(runs[r].stats.attempts, runs[0].stats.attempts);
    EXPECT_EQ(runs[r].stats.accepted, runs[0].stats.accepted);
    EXPECT_EQ(runs[r].stats.rounds, runs[0].stats.rounds);
    EXPECT_EQ(runs[r].stats.evaluated, runs[0].stats.evaluated);
    EXPECT_EQ(runs[r].stats.conflicts, runs[0].stats.conflicts);
    EXPECT_EQ(runs[r].stats.reevaluated, runs[0].stats.reevaluated);
    EXPECT_EQ(runs[r].stats.initial_distance,
              runs[0].stats.initial_distance);
    EXPECT_EQ(runs[r].stats.final_distance, runs[0].stats.final_distance);
  }
  // The run must do real work for the comparison to mean anything.
  EXPECT_GT(runs[0].stats.accepted, 0u);
}

TEST(ParallelRewireTest, MovesClusteringTowardTarget) {
  // Mirror of the sequential engine's quality test: scramble first, then
  // rewire back toward the original clustering profile.
  Rng gen_rng(8);
  Graph g = GeneratePowerlawCluster(400, 3, 0.6, gen_rng);
  const std::vector<double> target = ExtractDegreeDependentClustering(g);

  RewireOptions scramble;
  scramble.rewiring_coefficient = 30.0;
  std::vector<double> low(g.MaxDegree() + 1, 0.005);
  Rng rng(9);
  RewireToClustering(g, 0, low, scramble, rng);
  const double gap_before =
      NormalizedL1(target, ExtractDegreeDependentClustering(g));

  RewireOptions options;
  options.rewiring_coefficient = 100.0;
  ParallelRewireOptions parallel;
  parallel.batch_size = 256;
  parallel.threads = 2;
  const RewireStats stats = RewireToClusteringParallel(
      g, 0, target, options, parallel, /*seed=*/0xC0FFEE);
  const double gap_after =
      NormalizedL1(target, ExtractDegreeDependentClustering(g));
  EXPECT_LT(gap_after, 0.7 * gap_before);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(ParallelRewireTest, FinalDistanceMatchesFreshComputation) {
  Rng gen_rng(10);
  Graph g = GeneratePowerlawCluster(250, 3, 0.5, gen_rng);
  std::vector<double> target(g.MaxDegree() + 1, 0.25);
  RewireOptions options;
  options.rewiring_coefficient = 20.0;
  ParallelRewireOptions parallel;
  parallel.batch_size = 32;
  const RewireStats stats = RewireToClusteringParallel(
      g, 0, target, options, parallel, /*seed=*/77);
  const double expected =
      NormalizedL1(target, ExtractDegreeDependentClustering(g));
  EXPECT_NEAR(stats.final_distance, expected, 1e-6);
}

TEST(ParallelRewireTest, ConflictPathIsExercisedAndCounted) {
  // A small dense graph with a huge batch maximizes intra-round
  // collisions: commits must invalidate or re-derive later proposals of
  // the same round. Deterministic by construction, so the expectation is
  // stable.
  Rng gen_rng(11);
  Graph g = GeneratePowerlawCluster(80, 4, 0.6, gen_rng);
  std::vector<double> target(g.MaxDegree() + 1, 0.02);
  RewireOptions options;
  options.rewiring_coefficient = 50.0;
  ParallelRewireOptions parallel;
  parallel.batch_size = 2048;
  const RewireStats stats = RewireToClusteringParallel(
      g, 0, target, options, parallel, /*seed=*/0xFACE);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.reevaluated, 0u);
  EXPECT_LE(stats.accepted, stats.attempts);
}

TEST(ParallelRewireTest, ToleratesLoopsAndMultiEdgesAmongCandidates) {
  Rng gen_rng(20);
  Graph g = GeneratePowerlawCluster(150, 3, 0.4, gen_rng);
  g.AddEdge(0, 0);
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);  // parallel
  g.AddEdge(5, 5);
  const Graph before = g;

  std::vector<double> target(g.MaxDegree() + 1, 0.2);
  RewireOptions options;
  options.rewiring_coefficient = 40.0;
  ParallelRewireOptions parallel;
  parallel.batch_size = 64;
  parallel.threads = 2;
  const RewireStats stats = RewireToClusteringParallel(
      g, 0, target, options, parallel, /*seed=*/21);
  ExpectRewireInvariants(before, g, 0, stats);
}

TEST(ParallelRewireTest, ZeroBatchFallsBackToDefault) {
  Rng gen_rng(30);
  Graph g = GeneratePowerlawCluster(120, 3, 0.3, gen_rng);
  std::vector<double> target(g.MaxDegree() + 1, 0.1);
  RewireOptions options;
  options.rewiring_coefficient = 5.0;
  ParallelRewireOptions parallel;  // batch_size = 0
  const RewireStats stats = RewireToClusteringParallel(
      g, 0, target, options, parallel, /*seed=*/3);
  EXPECT_EQ(stats.rounds, (stats.attempts + kDefaultRewireBatch - 1) /
                              kDefaultRewireBatch);
}

// ---------------------------------------------------------------------------
// Regression tests for the satellite fixes (both engines).
// ---------------------------------------------------------------------------

TEST(ParallelRewireTest, ResyncIntervalZeroMeansNeverResync) {
  // A modulo by zero here used to be undefined behavior in the
  // sequential loop.
  Rng gen_rng(40);
  Graph g = GeneratePowerlawCluster(100, 3, 0.4, gen_rng);
  std::vector<double> target(g.MaxDegree() + 1, 0.2);
  RewireOptions options;
  options.rewiring_coefficient = 5.0;
  options.resync_interval = 0;
  {
    Graph copy = g;
    Rng rng(41);
    const RewireStats stats =
        RewireToClustering(copy, 0, target, options, rng);
    EXPECT_EQ(stats.attempts, static_cast<std::size_t>(
                                  5.0 * static_cast<double>(g.NumEdges())));
    EXPECT_LE(stats.final_distance, stats.initial_distance + 1e-9);
  }
  {
    Graph copy = g;
    ParallelRewireOptions parallel;
    parallel.batch_size = 32;
    const RewireStats stats = RewireToClusteringParallel(
        copy, 0, target, options, parallel, /*seed=*/42);
    EXPECT_GT(stats.rounds, 0u);
    EXPECT_LE(stats.final_distance, stats.initial_distance + 1e-9);
  }
}

TEST(ParallelRewireTest, ProtectingMoreEdgesThanExistIsANoOp) {
  // num_protected_edges > |E~| used to underflow the candidate count and
  // request ~2^64 attempts.
  Rng gen_rng(50);
  Graph g = GeneratePowerlawCluster(60, 3, 0.3, gen_rng);
  const Graph before = g;
  std::vector<double> target(g.MaxDegree() + 1, 0.5);
  RewireOptions options;
  for (const std::size_t num_protected :
       {g.NumEdges(), g.NumEdges() + 1, g.NumEdges() + 1000}) {
    {
      Graph copy = g;
      Rng rng(51);
      const RewireStats stats = RewireToClustering(
          copy, num_protected, target, options, rng);
      EXPECT_EQ(stats.attempts, 0u);
      EXPECT_EQ(stats.accepted, 0u);
      EXPECT_EQ(stats.initial_distance, 0.0);
    }
    {
      Graph copy = g;
      ParallelRewireOptions parallel;
      parallel.batch_size = 16;
      const RewireStats stats = RewireToClusteringParallel(
          copy, num_protected, target, options, parallel, /*seed=*/52);
      EXPECT_EQ(stats.attempts, 0u);
      EXPECT_EQ(stats.accepted, 0u);
      EXPECT_EQ(stats.rounds, 0u);
    }
  }
  // The graph is untouched either way.
  for (EdgeId e = 0; e < before.NumEdges(); ++e) {
    EXPECT_EQ(g.edge(e).u, before.edge(e).u);
    EXPECT_EQ(g.edge(e).v, before.edge(e).v);
  }
}

}  // namespace
}  // namespace sgr
