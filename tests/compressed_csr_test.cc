#include <gtest/gtest.h>

#include <vector>

#include "analysis/properties.h"
#include "exp/runner.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "sampling/sampling_list.h"

namespace sgr {
namespace {

CsrGraph TestSnapshot(std::uint64_t seed, std::size_t n = 300) {
  Rng rng(seed);
  return CsrGraph(GeneratePowerlawCluster(n, 3, 0.4, rng));
}

TEST(CompressedCsrTest, CompressPreservesEveryNeighborList) {
  const CsrGraph plain = TestSnapshot(1);
  CsrGraph packed = TestSnapshot(1);
  packed.Compress();
  ASSERT_TRUE(packed.compressed());
  ASSERT_EQ(packed.NumNodes(), plain.NumNodes());
  EXPECT_EQ(packed.NumEdges(), plain.NumEdges());
  EXPECT_EQ(packed.TotalDegree(), plain.TotalDegree());
  EXPECT_EQ(packed.MaxDegree(), plain.MaxDegree());
  NeighborCursor cursor(packed);
  for (NodeId v = 0; v < plain.NumNodes(); ++v) {
    ASSERT_EQ(packed.Degree(v), plain.Degree(v)) << "node " << v;
    const NeighborSpan reference = plain.neighbors(v);
    const NeighborSpan decoded = cursor.Load(v);
    ASSERT_EQ(decoded.size(), reference.size()) << "node " << v;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(decoded[i], reference[i]) << "node " << v << " slot " << i;
    }
  }
}

TEST(CompressedCsrTest, CompressHandlesLoopsAndIsolatedNodes) {
  Graph g(5);
  g.AddEdge(0, 0);  // loop: appears twice in neighbors(0)
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);  // parallel edge: delta 0 in the varint stream
  g.AddEdge(3, 4);  // node 2 stays isolated (empty list)
  const CsrGraph plain(g);
  CsrGraph packed(g);
  packed.Compress();
  NeighborCursor cursor(packed);
  for (NodeId v = 0; v < 5; ++v) {
    const NeighborSpan reference = plain.neighbors(v);
    const NeighborSpan decoded = cursor.Load(v);
    ASSERT_EQ(decoded.size(), reference.size()) << "node " << v;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(decoded[i], reference[i]);
    }
  }
  EXPECT_EQ(packed.Degree(0), 4u);   // loop counts twice
  EXPECT_EQ(packed.Degree(2), 0u);
  EXPECT_EQ(packed.NumEdges(), plain.NumEdges());
}

TEST(CompressedCsrTest, DecodeNeighborsMatchesCursor) {
  CsrGraph packed = TestSnapshot(2, 150);
  packed.Compress();
  std::vector<NodeId> scratch(packed.MaxDegree());
  NeighborCursor cursor(packed);
  for (NodeId v = 0; v < packed.NumNodes(); ++v) {
    packed.DecodeNeighbors(v, scratch.data());
    const NeighborSpan span = cursor.Load(v);
    for (std::size_t i = 0; i < span.size(); ++i) {
      ASSERT_EQ(scratch[i], span[i]);
    }
  }
}

TEST(CompressedCsrTest, CountEdgesAgreesWithUncompressed) {
  const CsrGraph plain = TestSnapshot(3, 200);
  CsrGraph packed = TestSnapshot(3, 200);
  packed.Compress();
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = 0; v < packed.NumNodes(); v += 17) {
      EXPECT_EQ(packed.CountEdges(u, v), plain.CountEdges(u, v))
          << u << "-" << v;
    }
  }
}

TEST(CompressedCsrTest, CompressionShrinksNeighborStorage) {
  const CsrGraph plain = TestSnapshot(4, 2000);
  CsrGraph packed = TestSnapshot(4, 2000);
  packed.Compress();
  EXPECT_LT(packed.NeighborStorageBytes(), plain.NeighborStorageBytes());
}

TEST(CompressedCsrTest, CursorOnUncompressedGraphIsZeroCopy) {
  const CsrGraph plain = TestSnapshot(5, 50);
  NeighborCursor cursor(plain);
  for (NodeId v = 0; v < plain.NumNodes(); ++v) {
    const NeighborSpan direct = plain.neighbors(v);
    const NeighborSpan loaded = cursor.Load(v);
    EXPECT_EQ(loaded.data(), direct.data());  // same backing storage
    EXPECT_EQ(loaded.size(), direct.size());
  }
}

TEST(CompressedCsrTest, OracleSpanSurvivesOneSubsequentQuery) {
  // The QueryOracle contract: a span stays valid until the second-next
  // Query. The compressed backend's two-slot decode ring must honor it.
  CsrGraph packed = TestSnapshot(6, 100);
  packed.Compress();
  const CsrGraph plain = TestSnapshot(6, 100);
  QueryOracle oracle(packed);
  for (NodeId v = 0; v + 1 < 40; ++v) {
    const NeighborSpan first = oracle.Query(v);
    const NeighborSpan second = oracle.Query(v + 1);
    // `first` must still read correctly after the interleaved query.
    const NeighborSpan ref_first = plain.neighbors(v);
    const NeighborSpan ref_second = plain.neighbors(v + 1);
    ASSERT_EQ(first.size(), ref_first.size());
    ASSERT_EQ(second.size(), ref_second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      ASSERT_EQ(first[i], ref_first[i]) << "stale span at node " << v;
    }
    for (std::size_t i = 0; i < second.size(); ++i) {
      ASSERT_EQ(second[i], ref_second[i]);
    }
  }
}

TEST(CompressedCsrTest, PropertiesAreIdenticalCompressedOrNot) {
  const CsrGraph plain = TestSnapshot(7, 400);
  CsrGraph packed = TestSnapshot(7, 400);
  packed.Compress();
  const GraphProperties a = ComputeProperties(plain);
  const GraphProperties b = ComputeProperties(packed);
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_DOUBLE_EQ(a.average_degree, b.average_degree);
  EXPECT_DOUBLE_EQ(a.clustering_global, b.clustering_global);
  ASSERT_EQ(a.degree_dist.size(), b.degree_dist.size());
  for (std::size_t i = 0; i < a.degree_dist.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.degree_dist[i], b.degree_dist[i]);
  }
  ASSERT_EQ(a.neighbor_connectivity.size(), b.neighbor_connectivity.size());
  for (std::size_t i = 0; i < a.neighbor_connectivity.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.neighbor_connectivity[i],
                     b.neighbor_connectivity[i]);
  }
  ASSERT_EQ(a.esp_dist.size(), b.esp_dist.size());
  for (std::size_t i = 0; i < a.esp_dist.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.esp_dist[i], b.esp_dist[i]);
  }
}

TEST(CompressedCsrTest, ExperimentTrialsAreIdenticalCompressedOrNot) {
  // End-to-end determinism across the representation switch: the whole
  // crawl -> estimate -> restore -> evaluate pipeline must not observe
  // whether the snapshot is compressed.
  const CsrGraph plain = TestSnapshot(8, 350);
  CsrGraph packed = TestSnapshot(8, 350);
  packed.Compress();
  const GraphProperties props = ComputeProperties(plain);
  ExperimentConfig config;
  config.query_fraction = 0.1;
  config.restoration.rewire.rewiring_coefficient = 5.0;
  config.methods = {MethodKind::kBfs, MethodKind::kRandomWalk,
                    MethodKind::kProposed};
  const auto a = RunExperiment(plain, props, config, 42);
  const auto b = RunExperiment(packed, props, config, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].oracle_queries, b[i].oracle_queries);
    EXPECT_DOUBLE_EQ(a[i].sample_steps, b[i].sample_steps);
    EXPECT_DOUBLE_EQ(a[i].average_distance, b[i].average_distance);
    for (std::size_t p = 0; p < kNumProperties; ++p) {
      EXPECT_DOUBLE_EQ(a[i].distances[p], b[i].distances[p])
          << MethodName(a[i].kind) << " property " << p;
    }
    EXPECT_EQ(a[i].restoration.graph.NumEdges(),
              b[i].restoration.graph.NumEdges());
  }
}

}  // namespace
}  // namespace sgr
