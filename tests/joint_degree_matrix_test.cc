#include "dk/joint_degree_matrix.h"

#include <gtest/gtest.h>

namespace sgr {
namespace {

TEST(JdmTest, AddSymmetricMaintainsBothOrderings) {
  JointDegreeMatrix m;
  m.AddSymmetric(2, 5, 3);
  EXPECT_EQ(m.At(2, 5), 3);
  EXPECT_EQ(m.At(5, 2), 3);
  EXPECT_EQ(m.At(5, 5), 0);
}

TEST(JdmTest, DiagonalIsSingleEntry) {
  JointDegreeMatrix m;
  m.AddSymmetric(4, 4, 2);
  EXPECT_EQ(m.At(4, 4), 2);
  EXPECT_EQ(m.counts().size(), 1u);
}

TEST(JdmTest, ZeroEntriesAreErased) {
  JointDegreeMatrix m;
  m.AddSymmetric(1, 2, 2);
  m.AddSymmetric(1, 2, -2);
  EXPECT_TRUE(m.counts().empty());
}

TEST(JdmTest, SetSymmetricOverwrites) {
  JointDegreeMatrix m;
  m.SetSymmetric(3, 7, 5);
  m.SetSymmetric(3, 7, 1);
  EXPECT_EQ(m.At(7, 3), 1);
  m.SetSymmetric(3, 7, 0);
  EXPECT_TRUE(m.counts().empty());
}

TEST(JdmTest, RowSumUsesMuFactor) {
  JointDegreeMatrix m;
  m.AddSymmetric(2, 2, 3);  // diagonal: µ = 2
  m.AddSymmetric(2, 5, 4);  // off-diagonal: µ = 1
  EXPECT_EQ(m.RowSum(2), 2 * 3 + 4);
  EXPECT_EQ(m.RowSum(5), 4);
  EXPECT_EQ(m.RowSum(9), 0);
}

TEST(JdmTest, TotalEdgesCountsUnorderedPairs) {
  JointDegreeMatrix m;
  m.AddSymmetric(1, 2, 3);
  m.AddSymmetric(2, 2, 5);
  EXPECT_EQ(m.TotalEdges(), 8);
}

TEST(JdmTest, MaxDegree) {
  JointDegreeMatrix m;
  EXPECT_EQ(m.MaxDegree(), 0u);
  m.AddSymmetric(3, 11, 1);
  EXPECT_EQ(m.MaxDegree(), 11u);
}

TEST(JdmTest, Jdm3AgainstDegreeVector) {
  // Path P3: degrees 1,2,1. m(1,2) = 2.
  JointDegreeMatrix m;
  m.AddSymmetric(1, 2, 2);
  const DegreeVector dv = {0, 2, 1};
  EXPECT_TRUE(m.SatisfiesJdm3(dv));
  // Wrong vector: fails.
  const DegreeVector bad = {0, 3, 1};
  EXPECT_FALSE(m.SatisfiesJdm3(bad));
}

TEST(JdmTest, Jdm3WithDiagonal) {
  // Triangle K3: degrees 2,2,2; m(2,2) = 3; s(2) = 6 = 2 * 3.
  JointDegreeMatrix m;
  m.AddSymmetric(2, 2, 3);
  EXPECT_TRUE(m.SatisfiesJdm3({0, 0, 3}));
}

TEST(JdmTest, DominatesComparesEntrywise) {
  JointDegreeMatrix hi;
  hi.AddSymmetric(1, 2, 3);
  hi.AddSymmetric(2, 2, 1);
  JointDegreeMatrix lo;
  lo.AddSymmetric(1, 2, 2);
  EXPECT_TRUE(hi.Dominates(lo));
  EXPECT_FALSE(lo.Dominates(hi));
  lo.AddSymmetric(3, 3, 1);
  EXPECT_FALSE(hi.Dominates(lo));
}

TEST(JdmTest, SymmetryInvariant) {
  JointDegreeMatrix m;
  m.AddSymmetric(1, 4, 2);
  m.AddSymmetric(4, 4, 1);
  m.AddSymmetric(1, 1, 7);
  EXPECT_TRUE(m.SatisfiesJdm1());
  EXPECT_TRUE(m.SatisfiesJdm2());
}

}  // namespace
}  // namespace sgr
