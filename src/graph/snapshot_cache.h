#ifndef SGR_GRAPH_SNAPSHOT_CACHE_H_
#define SGR_GRAPH_SNAPSHOT_CACHE_H_

#include <cstdint>
#include <string>

#include "graph/csr_graph.h"

namespace sgr {

struct IngestStats;

/// Binary snapshot cache for ingested CSR graphs.
///
/// Parsing a multi-gigabyte edge list dominates cold-start time at paper
/// scale, so the ingester (graph/edge_list_reader.h) can persist the
/// preprocessed CSR arrays keyed by the *content hash* of the source file
/// (plus the ingest format version): re-running an experiment on an
/// unchanged dataset then loads the arrays straight from disk, and any
/// edit to the file — or to the ingest pipeline — changes the key and
/// misses. Snapshots always store the uncompressed arrays; compression
/// policy is applied per load, after the cache layer.
///
/// Format (little-endian, native field widths):
///   "SGRSNAP1" magic, u64 node count, u64 total degree,
///   u64 ingest-stat fields, u64 offsets[n + 1], u32 neighbors[2m],
///   trailing FNV-1a-64 checksum over everything before it.
/// Writes go to a temp file in the cache directory and are renamed into
/// place, so a crashed or concurrent writer never publishes a torn file.

/// Path of the cache entry for `key_hash` under `cache_dir`
/// (sgr-snap-<16 hex digits>.bin).
std::string SnapshotCachePath(const std::string& cache_dir,
                              std::uint64_t key_hash);

/// Loads the snapshot at `path` into `*graph` / `*stats`. Returns false
/// if the file does not exist; a file that exists but fails validation
/// (bad magic, truncation, checksum mismatch) also returns false after
/// printing a warning to stderr — the caller rebuilds and overwrites.
bool LoadCsrSnapshot(const std::string& path, CsrGraph* graph,
                     IngestStats* stats);

/// Writes `graph` (which must be uncompressed) and `stats` to `path`
/// atomically, creating the parent directory if needed. Throws
/// std::runtime_error on I/O failure.
void SaveCsrSnapshot(const std::string& path, const CsrGraph& graph,
                     const IngestStats& stats);

}  // namespace sgr

#endif  // SGR_GRAPH_SNAPSHOT_CACHE_H_
