#include "graph/csr_graph.h"

#include <algorithm>
#include <cassert>

namespace sgr {

namespace {

/// Appends `value` to `out` as an LEB128 varint (7 data bits per byte,
/// high bit = continuation). At most 5 bytes for a 32-bit value.
inline void AppendVarint(std::uint32_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Decodes one LEB128 varint starting at `p`; advances `p` past it.
inline std::uint32_t ReadVarint(const std::uint8_t*& p) {
  std::uint32_t value = *p & 0x7Fu;
  unsigned shift = 7;
  while ((*p & 0x80u) != 0) {
    ++p;
    value |= static_cast<std::uint32_t>(*p & 0x7Fu) << shift;
    shift += 7;
  }
  ++p;
  return value;
}

}  // namespace

CsrGraph::CsrGraph(const Graph& g) {
  const std::size_t n = g.NumNodes();
  offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.Degree(v);
  }
  neighbors_.resize(offsets_[n]);
  // Counting-sort pass: visiting sources u in ascending order and appending
  // u to each neighbor's range yields every range sorted, in O(n + m).
  // A loop (u, u) appears twice in adjacency(u), so u is appended to its
  // own range twice — exactly the doubled-entry convention.
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId w : g.adjacency(u)) {
      neighbors_[cursor[w]++] = u;
    }
  }
  FinalizeFromSortedArrays();
}

CsrGraph CsrGraph::FromAdjacency(std::vector<std::size_t> offsets,
                                 std::vector<NodeId> neighbors) {
  CsrGraph csr;
  csr.offsets_ = std::move(offsets);
  csr.neighbors_ = std::move(neighbors);
  assert(!csr.offsets_.empty());
  assert(csr.offsets_.back() == csr.neighbors_.size());
  const std::size_t n = csr.NumNodes();
  for (NodeId v = 0; v < n; ++v) {
    auto* first = csr.neighbors_.data() + csr.offsets_[v];
    auto* last = csr.neighbors_.data() + csr.offsets_[v + 1];
    if (!std::is_sorted(first, last)) std::sort(first, last);
  }
  csr.FinalizeFromSortedArrays();
  return csr;
}

void CsrGraph::FinalizeFromSortedArrays() {
  max_degree_ = 0;
  is_simple_ = true;
  const std::size_t n = NumNodes();
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t d = Degree(v);
    max_degree_ = std::max(max_degree_, d);
    const NeighborSpan nbrs = neighbors(v);
    for (std::size_t i = 0; i < d && is_simple_; ++i) {
      if (nbrs[i] == v || (i + 1 < d && nbrs[i] == nbrs[i + 1])) {
        is_simple_ = false;
      }
    }
  }
}

void CsrGraph::Compress() {
  if (compressed_) return;
  const std::size_t n = NumNodes();
  byte_offsets_.assign(n + 1, 0);
  packed_.clear();
  // Sorted lists make every delta non-negative (0 for a parallel edge),
  // and social-graph locality keeps most deltas in one varint byte. The
  // first entry of each list is its delta from 0, so the decoder needs no
  // special case.
  for (NodeId v = 0; v < n; ++v) {
    NodeId prev = 0;
    for (const NodeId w :
         NeighborSpan(neighbors_.data() + offsets_[v], Degree(v))) {
      AppendVarint(w - prev, packed_);
      prev = w;
    }
    byte_offsets_[v + 1] = packed_.size();
  }
  packed_.shrink_to_fit();
  neighbors_ = std::vector<NodeId>();  // release the flat array
  compressed_ = true;
}

std::size_t CsrGraph::DecodeNeighbors(NodeId v, NodeId* out) const {
  const std::size_t d = Degree(v);
  if (!compressed_) {
    std::copy_n(neighbors_.data() + offsets_[v], d, out);
    return d;
  }
  const std::uint8_t* p = packed_.data() + byte_offsets_[v];
  NodeId value = 0;
  for (std::size_t i = 0; i < d; ++i) {
    value += ReadVarint(p);
    out[i] = value;
  }
  return d;
}

double CsrGraph::AverageDegree() const {
  if (NumNodes() == 0) return 0.0;
  return static_cast<double>(TotalDegree()) /
         static_cast<double>(NumNodes());
}

std::size_t CsrGraph::CountEdges(NodeId u, NodeId v) const {
  const NodeId probe_from = Degree(u) <= Degree(v) ? u : v;
  const NodeId target = (probe_from == u) ? v : u;
  if (!compressed_) {
    const NeighborSpan nbrs = neighbors(probe_from);
    const auto range = std::equal_range(nbrs.begin(), nbrs.end(), target);
    return static_cast<std::size_t>(range.second - range.first);
  }
  // Decode scan of the smaller sorted list, stopping past the target.
  const std::uint8_t* p = packed_.data() + byte_offsets_[probe_from];
  const std::size_t d = Degree(probe_from);
  std::size_t count = 0;
  NodeId value = 0;
  for (std::size_t i = 0; i < d; ++i) {
    value += ReadVarint(p);
    if (value == target) ++count;
    if (value > target) break;
  }
  return count;
}

}  // namespace sgr
