#include "graph/csr_graph.h"

#include <algorithm>
#include <cassert>

namespace sgr {

CsrGraph::CsrGraph(const Graph& g) {
  const std::size_t n = g.NumNodes();
  offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.Degree(v);
  }
  neighbors_.resize(offsets_[n]);
  // Counting-sort pass: visiting sources u in ascending order and appending
  // u to each neighbor's range yields every range sorted, in O(n + m).
  // A loop (u, u) appears twice in adjacency(u), so u is appended to its
  // own range twice — exactly the doubled-entry convention.
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId w : g.adjacency(u)) {
      neighbors_[cursor[w]++] = u;
    }
  }
  FinalizeFromSortedArrays();
}

CsrGraph CsrGraph::FromAdjacency(std::vector<std::size_t> offsets,
                                 std::vector<NodeId> neighbors) {
  CsrGraph csr;
  csr.offsets_ = std::move(offsets);
  csr.neighbors_ = std::move(neighbors);
  assert(!csr.offsets_.empty());
  assert(csr.offsets_.back() == csr.neighbors_.size());
  const std::size_t n = csr.NumNodes();
  for (NodeId v = 0; v < n; ++v) {
    auto* first = csr.neighbors_.data() + csr.offsets_[v];
    auto* last = csr.neighbors_.data() + csr.offsets_[v + 1];
    if (!std::is_sorted(first, last)) std::sort(first, last);
  }
  csr.FinalizeFromSortedArrays();
  return csr;
}

void CsrGraph::FinalizeFromSortedArrays() {
  max_degree_ = 0;
  is_simple_ = true;
  const std::size_t n = NumNodes();
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t d = Degree(v);
    max_degree_ = std::max(max_degree_, d);
    const NeighborSpan nbrs = neighbors(v);
    for (std::size_t i = 0; i < d && is_simple_; ++i) {
      if (nbrs[i] == v || (i + 1 < d && nbrs[i] == nbrs[i + 1])) {
        is_simple_ = false;
      }
    }
  }
}

double CsrGraph::AverageDegree() const {
  if (NumNodes() == 0) return 0.0;
  return static_cast<double>(TotalDegree()) /
         static_cast<double>(NumNodes());
}

std::size_t CsrGraph::CountEdges(NodeId u, NodeId v) const {
  const NodeId probe_from = Degree(u) <= Degree(v) ? u : v;
  const NodeId target = (probe_from == u) ? v : u;
  const NeighborSpan nbrs = neighbors(probe_from);
  const auto range = std::equal_range(nbrs.begin(), nbrs.end(), target);
  return static_cast<std::size_t>(range.second - range.first);
}

}  // namespace sgr
