#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>

namespace sgr {

Graph GenerateErdosRenyiGnm(std::size_t num_nodes, std::size_t num_edges,
                            Rng& rng) {
  assert(num_nodes >= 2 || num_edges == 0);
  const std::size_t max_edges = num_nodes * (num_nodes - 1) / 2;
  assert(num_edges <= max_edges);
  (void)max_edges;
  Graph g(num_nodes);
  std::set<std::pair<NodeId, NodeId>> chosen;
  while (chosen.size() < num_edges) {
    NodeId u = static_cast<NodeId>(rng.NextIndex(num_nodes));
    NodeId v = static_cast<NodeId>(rng.NextIndex(num_nodes));
    if (u == v) continue;
    auto key = std::minmax(u, v);
    if (chosen.insert({key.first, key.second}).second) {
      g.AddEdge(key.first, key.second);
    }
  }
  return g;
}

namespace {

/// Shared growth loop for Barabási–Albert and Holme–Kim. `repeated_nodes`
/// holds one entry per edge endpoint, so uniform draws from it implement
/// preferential attachment.
Graph GrowPreferential(std::size_t num_nodes, std::size_t edges_per_node,
                       double triad_probability, Rng& rng) {
  assert(edges_per_node >= 1);
  assert(num_nodes > edges_per_node);
  Graph g(num_nodes);
  std::vector<NodeId> repeated_nodes;
  repeated_nodes.reserve(2 * num_nodes * edges_per_node);

  // Seed: a clique on the first (edges_per_node + 1) nodes guarantees every
  // new node can find `edges_per_node` distinct targets.
  const std::size_t seed_size = edges_per_node + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      g.AddEdge(u, v);
      repeated_nodes.push_back(u);
      repeated_nodes.push_back(v);
    }
  }

  for (NodeId source = static_cast<NodeId>(seed_size); source < num_nodes;
       ++source) {
    std::set<NodeId> targets;
    while (targets.size() < edges_per_node) {
      NodeId target = repeated_nodes[rng.NextIndex(repeated_nodes.size())];
      if (target == source || targets.count(target) > 0) continue;
      targets.insert(target);
      g.AddEdge(source, target);
      repeated_nodes.push_back(source);
      repeated_nodes.push_back(target);

      // Holme–Kim triad closure: with probability `triad_probability`, also
      // link `source` to a random neighbor of `target` (skipping choices
      // that would create loops or parallel edges).
      if (triad_probability > 0.0 && rng.NextBernoulli(triad_probability) &&
          targets.size() < edges_per_node) {
        const auto& nbrs = g.adjacency(target);
        NodeId candidate = nbrs[rng.NextIndex(nbrs.size())];
        if (candidate != source && targets.count(candidate) == 0) {
          targets.insert(candidate);
          g.AddEdge(source, candidate);
          repeated_nodes.push_back(source);
          repeated_nodes.push_back(candidate);
        }
      }
    }
  }
  return g;
}

}  // namespace

Graph GenerateBarabasiAlbert(std::size_t num_nodes,
                             std::size_t edges_per_node, Rng& rng) {
  return GrowPreferential(num_nodes, edges_per_node, 0.0, rng);
}

Graph GeneratePowerlawCluster(std::size_t num_nodes,
                              std::size_t edges_per_node,
                              double triad_probability, Rng& rng) {
  return GrowPreferential(num_nodes, edges_per_node, triad_probability, rng);
}

Graph GenerateSocialGraph(std::size_t num_nodes, std::size_t edges_per_node,
                          double triad_probability, double fringe_fraction,
                          Rng& rng) {
  assert(fringe_fraction >= 0.0 && fringe_fraction < 1.0);
  const auto core_nodes = static_cast<std::size_t>(
      static_cast<double>(num_nodes) * (1.0 - fringe_fraction));
  assert(core_nodes > edges_per_node);
  Graph g = GrowPreferential(core_nodes, edges_per_node, triad_probability,
                             rng);
  g.AddNodes(num_nodes - core_nodes);

  // Preferential-attachment pool over edge endpoints of the growing graph.
  std::vector<NodeId> repeated;
  repeated.reserve(2 * g.NumEdges() + 4 * (num_nodes - core_nodes));
  for (const Edge& e : g.edges()) {
    repeated.push_back(e.u);
    repeated.push_back(e.v);
  }
  for (NodeId fringe = static_cast<NodeId>(core_nodes); fringe < num_nodes;
       ++fringe) {
    // Mostly degree 1-2: 1 + Geometric(0.6) capped at 3.
    const std::size_t degree =
        1 + std::min<std::size_t>(rng.NextGeometric(0.6), 2);
    std::set<NodeId> targets;
    while (targets.size() < degree) {
      const NodeId target = repeated[rng.NextIndex(repeated.size())];
      if (target == fringe || targets.count(target) > 0) continue;
      targets.insert(target);
      g.AddEdge(fringe, target);
      repeated.push_back(fringe);
      repeated.push_back(target);
    }
  }
  return g;
}

Graph GenerateWattsStrogatz(std::size_t num_nodes, std::size_t k_neighbors,
                            double rewire_probability, Rng& rng) {
  assert(k_neighbors % 2 == 0 && k_neighbors >= 2);
  assert(num_nodes > k_neighbors);
  Graph g(num_nodes);
  std::set<std::pair<NodeId, NodeId>> present;
  auto add = [&](NodeId u, NodeId v) {
    auto key = std::minmax(u, v);
    if (u != v && present.insert({key.first, key.second}).second) {
      g.AddEdge(key.first, key.second);
      return true;
    }
    return false;
  };
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (std::size_t hop = 1; hop <= k_neighbors / 2; ++hop) {
      NodeId v = static_cast<NodeId>((u + hop) % num_nodes);
      if (rng.NextBernoulli(rewire_probability)) {
        // Rewire to a uniformly random non-neighbor; fall back to the
        // lattice edge if the node is saturated.
        bool placed = false;
        for (int attempt = 0; attempt < 32 && !placed; ++attempt) {
          NodeId w = static_cast<NodeId>(rng.NextIndex(num_nodes));
          placed = add(u, w);
        }
        if (!placed) add(u, v);
      } else {
        add(u, v);
      }
    }
  }
  return g;
}

Graph GenerateCommunityGraph(std::size_t num_nodes,
                             std::size_t num_communities,
                             std::size_t edges_per_node,
                             double triad_probability,
                             std::size_t bridge_edges, Rng& rng) {
  assert(num_communities >= 1);
  const std::size_t base = num_nodes / num_communities;
  assert(base > edges_per_node);
  Graph g;
  std::vector<std::pair<NodeId, NodeId>> community_ranges;
  for (std::size_t c = 0; c < num_communities; ++c) {
    const std::size_t size =
        (c + 1 == num_communities) ? num_nodes - base * (num_communities - 1)
                                   : base;
    Graph community =
        GeneratePowerlawCluster(size, edges_per_node, triad_probability, rng);
    const NodeId offset = static_cast<NodeId>(g.NumNodes());
    g.AddNodes(size);
    for (const Edge& e : community.edges()) {
      g.AddEdge(offset + e.u, offset + e.v);
    }
    community_ranges.push_back(
        {offset, static_cast<NodeId>(offset + size - 1)});
  }
  for (std::size_t b = 0; b < bridge_edges; ++b) {
    const std::size_t c1 = rng.NextIndex(num_communities);
    std::size_t c2 = rng.NextIndex(num_communities);
    if (num_communities > 1) {
      while (c2 == c1) c2 = rng.NextIndex(num_communities);
    }
    const auto [lo1, hi1] = community_ranges[c1];
    const auto [lo2, hi2] = community_ranges[c2];
    NodeId u = static_cast<NodeId>(lo1 + rng.NextIndex(hi1 - lo1 + 1));
    NodeId v = static_cast<NodeId>(lo2 + rng.NextIndex(hi2 - lo2 + 1));
    if (u != v && !g.HasEdge(u, v)) g.AddEdge(u, v);
  }
  return g;
}

Graph GenerateComplete(std::size_t num_nodes) {
  Graph g(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = u + 1; v < num_nodes; ++v) g.AddEdge(u, v);
  }
  return g;
}

Graph GenerateCycle(std::size_t num_nodes) {
  assert(num_nodes >= 3);
  Graph g(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    g.AddEdge(u, static_cast<NodeId>((u + 1) % num_nodes));
  }
  return g;
}

Graph GenerateStar(std::size_t num_nodes) {
  assert(num_nodes >= 2);
  Graph g(num_nodes);
  for (NodeId v = 1; v < num_nodes; ++v) g.AddEdge(0, v);
  return g;
}

Graph GeneratePath(std::size_t num_nodes) {
  assert(num_nodes >= 2);
  Graph g(num_nodes);
  for (NodeId u = 0; u + 1 < num_nodes; ++u) {
    g.AddEdge(u, static_cast<NodeId>(u + 1));
  }
  return g;
}

}  // namespace sgr
