#ifndef SGR_GRAPH_GENERATORS_H_
#define SGR_GRAPH_GENERATORS_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace sgr {

/// Synthetic graph generators.
///
/// The paper evaluates on seven public social graphs (Table I). In an
/// offline environment we substitute synthetic graphs with the structural
/// features that drive the paper's phenomena: heavy-tailed degree
/// distributions, positive clustering, and a single giant component (see
/// DESIGN.md, "Substitutions"). The generators below cover that need plus
/// simple null models used by the test suite.

/// Erdős–Rényi G(n, m): `num_edges` edges drawn uniformly without
/// replacement among unordered pairs (no loops / multi-edges). Used as a
/// low-clustering null model in tests and ablations.
Graph GenerateErdosRenyiGnm(std::size_t num_nodes, std::size_t num_edges,
                            Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches
/// `edges_per_node` edges to existing nodes chosen proportionally to degree.
/// Produces a power-law degree distribution with exponent ~3 and vanishing
/// clustering.
Graph GenerateBarabasiAlbert(std::size_t num_nodes,
                             std::size_t edges_per_node, Rng& rng);

/// Holme–Kim power-law cluster model: Barabási–Albert growth where, after
/// each preferential attachment, a triad-closing step links the new node to
/// a random neighbor of the just-linked target with probability
/// `triad_probability`. Produces heavy-tailed degrees *and* tunable
/// clustering — our stand-in for real social graphs.
Graph GeneratePowerlawCluster(std::size_t num_nodes,
                              std::size_t edges_per_node,
                              double triad_probability, Rng& rng);

/// Social-graph stand-in: a Holme–Kim power-law-cluster core on
/// (1 - fringe_fraction) of the nodes, plus a low-degree fringe — each
/// fringe node attaches preferentially to the existing graph with a small
/// random degree (1 + capped geometric, mostly 1-2). Real social graphs
/// carry a heavy share of degree-1/2 users; the fringe reproduces that
/// periphery, which drives the paper's visualization argument (Fig. 4)
/// and the crawl's edge-coverage behaviour. The result is connected and
/// simple.
Graph GenerateSocialGraph(std::size_t num_nodes, std::size_t edges_per_node,
                          double triad_probability, double fringe_fraction,
                          Rng& rng);

/// Watts–Strogatz small world: ring lattice with `k_neighbors` (even) links
/// per node, each rewired with probability `rewire_probability`. High
/// clustering, narrow degree distribution; used in tests.
Graph GenerateWattsStrogatz(std::size_t num_nodes, std::size_t k_neighbors,
                            double rewire_probability, Rng& rng);

/// Two-level community graph: `num_communities` Holme–Kim communities of
/// equal size joined by `bridge_edges` uniformly random inter-community
/// edges. Exercises the methods on modular topologies (the structure that
/// makes Fig. 4's core/periphery visualization interesting).
Graph GenerateCommunityGraph(std::size_t num_nodes,
                             std::size_t num_communities,
                             std::size_t edges_per_node,
                             double triad_probability,
                             std::size_t bridge_edges, Rng& rng);

/// Complete graph K_n (test fixture).
Graph GenerateComplete(std::size_t num_nodes);

/// Cycle C_n (test fixture).
Graph GenerateCycle(std::size_t num_nodes);

/// Star S_n: node 0 joined to nodes 1..n-1 (test fixture).
Graph GenerateStar(std::size_t num_nodes);

/// Path P_n (test fixture).
Graph GeneratePath(std::size_t num_nodes);

}  // namespace sgr

#endif  // SGR_GRAPH_GENERATORS_H_
