#include "graph/io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace sgr {

Graph ReadEdgeList(std::istream& in) {
  Graph g;
  std::unordered_map<long long, NodeId> renumber;
  auto intern = [&](long long raw) {
    auto [it, inserted] = renumber.try_emplace(raw, NodeId{0});
    if (inserted) it->second = g.AddNode();
    return it->second;
  };
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    long long raw_u = 0;
    long long raw_v = 0;
    if (!(fields >> raw_u >> raw_v) || raw_u < 0 || raw_v < 0) {
      throw std::runtime_error("ReadEdgeList: malformed line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    // A third column means a weighted/temporal file this unweighted
    // reader would silently misread — reject instead of dropping it.
    std::string trailing;
    if (fields >> trailing) {
      throw std::runtime_error(
          "ReadEdgeList: trailing token '" + trailing + "' on line " +
          std::to_string(line_no) + ": '" + line +
          "' (weighted/temporal edge lists are not supported)");
    }
    // Sequence the interning explicitly: first-appearance numbering must
    // not depend on argument evaluation order.
    const NodeId u = intern(raw_u);
    const NodeId v = intern(raw_v);
    g.AddEdge(u, v);
  }
  return g;
}

Graph ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ReadEdgeListFile: cannot open '" + path + "'");
  }
  return ReadEdgeList(in);
}

void WriteEdgeList(const Graph& g, std::ostream& out) {
  out << "# nodes " << g.NumNodes() << " edges " << g.NumEdges() << "\n";
  for (const Edge& e : g.edges()) out << e.u << " " << e.v << "\n";
}

void WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("WriteEdgeListFile: cannot open '" + path + "'");
  }
  WriteEdgeList(g, out);
}

void WriteCanonicalEdgeList(const CsrGraph& g, std::ostream& out) {
  out << "# sgr-canonical 1\n";
  out << "# nodes " << g.NumNodes() << " edges " << g.NumEdges() << "\n";
  NeighborCursor cursor(g);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const NeighborSpan nbrs = cursor.Load(v);
    std::size_t i = 0;
    while (i < nbrs.size()) {
      const NodeId w = nbrs[i];
      std::size_t run = 1;
      while (i + run < nbrs.size() && nbrs[i + run] == w) ++run;
      i += run;
      if (w < v) continue;  // each edge once, off the lower endpoint
      // A loop contributes two doubled entries per copy — emit one line
      // per copy, so the round trip preserves multiplicity exactly.
      const std::size_t copies = (w == v) ? run / 2 : run;
      for (std::size_t c = 0; c < copies; ++c) {
        out << v << " " << w << "\n";
      }
    }
  }
}

void WriteCanonicalEdgeListFile(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("WriteCanonicalEdgeListFile: cannot open '" +
                             path + "'");
  }
  WriteCanonicalEdgeList(g, out);
  out.flush();
  if (!out) {
    throw std::runtime_error("WriteCanonicalEdgeListFile: write to '" +
                             path + "' failed");
  }
}

void WriteGexf(const Graph& g, std::ostream& out) {
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<gexf xmlns=\"http://www.gexf.net/1.2draft\" version=\"1.2\">\n"
      << "  <graph mode=\"static\" defaultedgetype=\"undirected\">\n"
      << "    <attributes class=\"node\">\n"
      << "      <attribute id=\"0\" title=\"degree\" type=\"integer\"/>\n"
      << "    </attributes>\n"
      << "    <nodes>\n";
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    out << "      <node id=\"" << v << "\"><attvalues>"
        << "<attvalue for=\"0\" value=\"" << g.Degree(v)
        << "\"/></attvalues></node>\n";
  }
  out << "    </nodes>\n    <edges>\n";
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    out << "      <edge id=\"" << e << "\" source=\"" << g.edge(e).u
        << "\" target=\"" << g.edge(e).v << "\"/>\n";
  }
  out << "    </edges>\n  </graph>\n</gexf>\n";
}

void WriteGexfFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("WriteGexfFile: cannot open '" + path + "'");
  }
  WriteGexf(g, out);
}

}  // namespace sgr
