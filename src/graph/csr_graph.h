#ifndef SGR_GRAPH_CSR_GRAPH_H_
#define SGR_GRAPH_CSR_GRAPH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace sgr {

/// Non-owning view of a node's neighbor list. Mirrors the read-only slice of
/// std::vector<NodeId> the crawlers and analyzers use, so the same code can
/// run against Graph's per-node vectors or CsrGraph's flat arrays.
class NeighborSpan {
 public:
  constexpr NeighborSpan() = default;
  constexpr NeighborSpan(const NodeId* data, std::size_t size)
      : data_(data), size_(size) {}

  /// Implicit view of a whole vector (Graph adjacency lists).
  NeighborSpan(const std::vector<NodeId>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  const NodeId* begin() const { return data_; }
  const NodeId* end() const { return data_ + size_; }
  const NodeId* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  NodeId operator[](std::size_t i) const { return data_[i]; }
  NodeId front() const { return data_[0]; }
  NodeId back() const { return data_[size_ - 1]; }

 private:
  const NodeId* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Immutable compressed-sparse-row snapshot of a Graph.
///
/// Graph stores one std::vector per node — ideal for the mutating phases
/// (assembly, rewiring) but cache-hostile for the read-only hot paths:
/// property analyzers, triangle counting, BFS/Brandes sweeps, and the
/// Monte Carlo restoration trials that crawl the same original graph
/// thousands of times. CsrGraph packs the same multigraph into two flat
/// arrays (offsets + neighbors, the classic CSR layout), with neighbor
/// lists sorted ascending so that edge-multiplicity queries are binary
/// searches and triangle counting is a linear merge.
///
/// The snapshot is deliberately immutable: it can be shared by any number
/// of reader threads without synchronization, which is what the parallel
/// trial runner (exp/parallel.h) relies on.
///
/// Conventions match Graph exactly (Section III-A of the paper):
///   * one neighbor entry per incident edge endpoint,
///   * a self-loop at v contributes two entries equal to v,
///   * Degree(v) counts a loop twice, NumEdges() counts it once,
///   * CountEdges(v, v) equals twice the loop count (A_vv).
///
/// Compressed mode (paper-scale graphs): Compress() re-encodes every
/// neighbor list as LEB128 varints of the deltas between consecutive
/// sorted entries (≈1 byte per entry on social graphs instead of 4), so
/// hundreds of millions of edges fit in bounded memory. The logical
/// offsets stay resident, so NumNodes/NumEdges/Degree/MaxDegree remain
/// O(1); `neighbors()` however is only valid on uncompressed snapshots —
/// readers that must work in both modes go through a NeighborCursor,
/// which decodes into caller-owned scratch and is zero-copy when the
/// snapshot is uncompressed. A compressed snapshot is still immutable and
/// freely shared across reader threads (each reader owns its cursor).
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds the snapshot from `g` in O(n + m). Neighbor lists come out
  /// sorted ascending via a counting-sort pass (no comparison sort).
  explicit CsrGraph(const Graph& g);

  /// Builds from raw CSR arrays: `offsets` has NumNodes()+1 entries and
  /// `neighbors[offsets[v] .. offsets[v+1])` lists v's neighbors (loop
  /// entries doubled, per the conventions above). Neighbor ranges are
  /// sorted in place if needed. Used to snapshot crawled neighborhoods
  /// that never materialize as a Graph.
  static CsrGraph FromAdjacency(std::vector<std::size_t> offsets,
                                std::vector<NodeId> neighbors);

  std::size_t NumNodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Number of edges (loops count once, parallel edges separately).
  std::size_t NumEdges() const { return TotalDegree() / 2; }

  /// Degree of `v`; a self-loop contributes 2.
  std::size_t Degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Maximum degree over all nodes (precomputed at build time).
  std::size_t MaxDegree() const { return max_degree_; }

  /// Average degree 2m / n. 0 for an empty graph.
  double AverageDegree() const;

  /// Total degree 2m (loops counted twice).
  std::size_t TotalDegree() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  /// Neighbors of `v`, sorted ascending, one entry per incident edge
  /// endpoint (a loop at `v` appears twice). Only valid on uncompressed
  /// snapshots — mode-agnostic readers use a NeighborCursor instead.
  NeighborSpan neighbors(NodeId v) const {
    assert(!compressed_ && "neighbors() on a compressed CsrGraph; "
                           "use NeighborCursor");
    return NeighborSpan(neighbors_.data() + offsets_[v], Degree(v));
  }

  /// A_uv: edge multiplicity between `u` and `v` (twice the loop count for
  /// u == v). Binary search over the smaller neighbor list for
  /// uncompressed snapshots (O(log min(deg u, deg v))); a bounded decode
  /// scan of the smaller list when compressed.
  std::size_t CountEdges(NodeId u, NodeId v) const;

  /// True if at least one edge joins `u` and `v`.
  bool HasEdge(NodeId u, NodeId v) const { return CountEdges(u, v) > 0; }

  /// True if the snapshot has no multi-edges and no self-loops
  /// (precomputed at build time).
  bool IsSimple() const { return is_simple_; }

  /// Re-encodes every neighbor list as varint deltas and releases the
  /// flat array (see class comment). Idempotent; O(m). After this,
  /// `neighbors()` is invalid — readers go through NeighborCursor.
  void Compress();

  /// True once Compress() has run.
  bool compressed() const { return compressed_; }

  /// Decodes v's neighbor list into `out`, which must have room for
  /// Degree(v) entries; returns Degree(v). Valid in both modes (plain
  /// copy when uncompressed). Prefer NeighborCursor, which manages the
  /// scratch and skips the copy on uncompressed snapshots.
  std::size_t DecodeNeighbors(NodeId v, NodeId* out) const;

  /// Bytes held by the neighbor storage (flat array or varint stream,
  /// whichever is live) — the quantity Compress() shrinks.
  std::size_t NeighborStorageBytes() const {
    return compressed_ ? packed_.size() : neighbors_.size() * sizeof(NodeId);
  }

  /// Raw CSR arrays of an uncompressed snapshot, for binary
  /// serialization (graph/snapshot_cache.h). Invalid after Compress().
  const std::vector<std::size_t>& raw_offsets() const {
    assert(!compressed_);
    return offsets_;
  }
  const std::vector<NodeId>& raw_neighbors() const {
    assert(!compressed_);
    return neighbors_;
  }

 private:
  void FinalizeFromSortedArrays();

  std::vector<std::size_t> offsets_;  ///< size NumNodes() + 1 (logical)
  std::vector<NodeId> neighbors_;     ///< size 2m, sorted within each node
                                      ///  (empty once compressed)
  /// Compressed mode: per-node varint-delta byte stream and its offsets.
  std::vector<std::uint8_t> packed_;
  std::vector<std::size_t> byte_offsets_;  ///< size NumNodes() + 1
  std::size_t max_degree_ = 0;
  bool is_simple_ = true;
  bool compressed_ = false;
};

/// Mode-agnostic reader of one CsrGraph's neighbor lists. On an
/// uncompressed snapshot, Load() is the zero-copy `neighbors()` span; on a
/// compressed one it decodes into this cursor's scratch buffer. The span
/// returned by Load() is invalidated by the next Load() on the SAME
/// cursor — callers that hold several lists at once (e.g. the
/// shared-partner merge) own one cursor per simultaneously-live span.
/// Cursors are cheap; they are per-caller (and per-thread) state, so the
/// underlying snapshot stays shareable without synchronization.
class NeighborCursor {
 public:
  NeighborCursor() = default;
  explicit NeighborCursor(const CsrGraph& g) : g_(&g) {}

  NeighborSpan Load(NodeId v) {
    if (!g_->compressed()) return g_->neighbors(v);
    const std::size_t d = g_->Degree(v);
    if (scratch_.size() < d) scratch_.resize(d);
    g_->DecodeNeighbors(v, scratch_.data());
    return NeighborSpan(scratch_.data(), d);
  }

 private:
  const CsrGraph* g_ = nullptr;
  std::vector<NodeId> scratch_;
};

}  // namespace sgr

#endif  // SGR_GRAPH_CSR_GRAPH_H_
