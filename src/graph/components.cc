#include "graph/components.h"

#include <algorithm>
#include <queue>

namespace sgr {

ComponentsResult ConnectedComponents(const Graph& g) {
  ComponentsResult result;
  result.component_of.assign(g.NumNodes(), static_cast<std::size_t>(-1));
  for (NodeId start = 0; start < g.NumNodes(); ++start) {
    if (result.component_of[start] != static_cast<std::size_t>(-1)) continue;
    const std::size_t comp = result.sizes.size();
    result.sizes.push_back(0);
    std::queue<NodeId> frontier;
    frontier.push(start);
    result.component_of[start] = comp;
    while (!frontier.empty()) {
      NodeId v = frontier.front();
      frontier.pop();
      ++result.sizes[comp];
      for (NodeId w : g.adjacency(v)) {
        if (result.component_of[w] == static_cast<std::size_t>(-1)) {
          result.component_of[w] = comp;
          frontier.push(w);
        }
      }
    }
  }
  if (!result.sizes.empty()) {
    result.largest = static_cast<std::size_t>(
        std::max_element(result.sizes.begin(), result.sizes.end()) -
        result.sizes.begin());
  }
  return result;
}

std::size_t CountComponents(const Graph& g) {
  return ConnectedComponents(g).sizes.size();
}

bool IsConnected(const Graph& g) {
  return g.NumNodes() > 0 && CountComponents(g) == 1;
}

Graph LargestConnectedComponent(const Graph& g,
                                std::vector<NodeId>* old_to_new) {
  const ComponentsResult comps = ConnectedComponents(g);
  std::vector<NodeId> mapping(g.NumNodes(), kNotInLcc);
  Graph lcc;
  if (!comps.sizes.empty()) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (comps.component_of[v] == comps.largest) {
        mapping[v] = static_cast<NodeId>(lcc.AddNode());
      }
    }
    for (const Edge& e : g.edges()) {
      if (mapping[e.u] != kNotInLcc && mapping[e.v] != kNotInLcc) {
        lcc.AddEdge(mapping[e.u], mapping[e.v]);
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return lcc;
}

Graph PreprocessDataset(const Graph& g) {
  return LargestConnectedComponent(g.Simplified());
}

}  // namespace sgr
