#ifndef SGR_GRAPH_GRAPH_H_
#define SGR_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sgr {

/// Node identifier. Nodes are dense integers [0, NumNodes()).
using NodeId = std::uint32_t;

/// Edge identifier: index into Graph::edges().
using EdgeId = std::size_t;

/// An undirected edge. Endpoints are stored as given; (u, v) and (v, u)
/// denote the same edge. u == v denotes a self-loop.
struct Edge {
  NodeId u;
  NodeId v;
};

/// Undirected multigraph with self-loops.
///
/// This is the substrate shared by every component of the library: the
/// original social graph, the subgraph sampled by a random walk, and the
/// graphs produced by the restoration methods. Following the paper's
/// conventions (Section III-A):
///   * multiple edges and self-loops are allowed,
///   * the degree of a node counts a self-loop twice (A_ii equals twice the
///     number of loops),
///   * adjacency lists store one entry per incident edge endpoint, so
///     `adjacency(v).size() == Degree(v)` and a loop at v appears twice in
///     `adjacency(v)`.
///
/// The class supports in-place edge replacement (`ReplaceEdge`), which is the
/// primitive the 2K-preserving rewiring phase (Algorithm 6) builds on.
class Graph {
 public:
  Graph() = default;

  /// Creates a graph with `num_nodes` isolated nodes.
  explicit Graph(std::size_t num_nodes) : adjacency_(num_nodes) {}

  /// Adds one isolated node and returns its id.
  NodeId AddNode();

  /// Adds `count` isolated nodes.
  void AddNodes(std::size_t count);

  /// Adds an undirected edge between `u` and `v` (u == v adds a loop).
  /// Returns the id of the new edge. Endpoints must be existing nodes.
  EdgeId AddEdge(NodeId u, NodeId v);

  /// Replaces the endpoints of edge `e` with (`new_u`, `new_v`), updating
  /// adjacency lists. Degrees of the four affected endpoints change
  /// accordingly; callers that must preserve degrees (rewiring) are
  /// responsible for choosing degree-matched replacements.
  void ReplaceEdge(EdgeId e, NodeId new_u, NodeId new_v);

  /// Number of nodes.
  std::size_t NumNodes() const { return adjacency_.size(); }

  /// Number of edges (loops count once, parallel edges count separately).
  std::size_t NumEdges() const { return edges_.size(); }

  /// Degree of `v`; a self-loop contributes 2.
  std::size_t Degree(NodeId v) const { return adjacency_[v].size(); }

  /// Maximum degree over all nodes (0 for an empty graph).
  std::size_t MaxDegree() const;

  /// Average degree 2m / n (Eq. (1) of the paper). 0 for an empty graph.
  double AverageDegree() const;

  /// Neighbors of `v`, one entry per incident edge endpoint. A loop at `v`
  /// contributes two entries equal to `v`. Order is unspecified.
  const std::vector<NodeId>& adjacency(NodeId v) const {
    return adjacency_[v];
  }

  /// All edges, indexed by EdgeId.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edge with id `e`.
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Number of edges between `u` and `v` (A_uv; for u == v this is twice the
  /// number of loops, matching the adjacency-matrix convention). Scans the
  /// smaller adjacency list: O(min(deg u, deg v)).
  std::size_t CountEdges(NodeId u, NodeId v) const;

  /// True if at least one edge joins `u` and `v`.
  bool HasEdge(NodeId u, NodeId v) const { return CountEdges(u, v) > 0; }

  /// True if the graph has no multi-edges and no self-loops.
  bool IsSimple() const;

  /// Returns a copy with self-loops removed and parallel edges collapsed to
  /// a single edge. Node ids are preserved. This mirrors the preprocessing
  /// of Section V-A applied to every dataset.
  Graph Simplified() const;

  /// Total degree (2m, counting loops twice). Useful for invariant checks.
  std::size_t TotalDegree() const;

 private:
  void Attach(NodeId u, NodeId v);
  void Detach(NodeId u, NodeId v);

  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace sgr

#endif  // SGR_GRAPH_GRAPH_H_
