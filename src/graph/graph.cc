#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>

namespace sgr {

NodeId Graph::AddNode() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Graph::AddNodes(std::size_t count) {
  adjacency_.resize(adjacency_.size() + count);
}

EdgeId Graph::AddEdge(NodeId u, NodeId v) {
  assert(u < NumNodes() && v < NumNodes());
  edges_.push_back(Edge{u, v});
  Attach(u, v);
  return edges_.size() - 1;
}

void Graph::ReplaceEdge(EdgeId e, NodeId new_u, NodeId new_v) {
  assert(e < edges_.size());
  assert(new_u < NumNodes() && new_v < NumNodes());
  const Edge old = edges_[e];
  Detach(old.u, old.v);
  edges_[e] = Edge{new_u, new_v};
  Attach(new_u, new_v);
}

std::size_t Graph::MaxDegree() const {
  std::size_t best = 0;
  for (const auto& nbrs : adjacency_) best = std::max(best, nbrs.size());
  return best;
}

double Graph::AverageDegree() const {
  if (NumNodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(NumEdges()) /
         static_cast<double>(NumNodes());
}

std::size_t Graph::CountEdges(NodeId u, NodeId v) const {
  const std::vector<NodeId>& smaller =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const NodeId other = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return static_cast<std::size_t>(
      std::count(smaller.begin(), smaller.end(), other));
}

bool Graph::IsSimple() const {
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : edges_) {
    if (e.u == e.v) return false;
    auto key = std::minmax(e.u, e.v);
    if (!seen.insert({key.first, key.second}).second) return false;
  }
  return true;
}

Graph Graph::Simplified() const {
  Graph out(NumNodes());
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : edges_) {
    if (e.u == e.v) continue;
    auto key = std::minmax(e.u, e.v);
    if (seen.insert({key.first, key.second}).second) {
      out.AddEdge(e.u, e.v);
    }
  }
  return out;
}

std::size_t Graph::TotalDegree() const {
  std::size_t total = 0;
  for (const auto& nbrs : adjacency_) total += nbrs.size();
  return total;
}

void Graph::Attach(NodeId u, NodeId v) {
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
}

void Graph::Detach(NodeId u, NodeId v) {
  auto remove_one = [this](NodeId from, NodeId target) {
    auto& nbrs = adjacency_[from];
    auto it = std::find(nbrs.begin(), nbrs.end(), target);
    assert(it != nbrs.end() && "edge endpoint missing from adjacency");
    *it = nbrs.back();
    nbrs.pop_back();
  };
  remove_one(u, v);
  remove_one(v, u);
}

}  // namespace sgr
