#ifndef SGR_GRAPH_COMPONENTS_H_
#define SGR_GRAPH_COMPONENTS_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace sgr {

/// Result of a connected-components decomposition.
struct ComponentsResult {
  /// component_of[v] is the 0-based component index of node v.
  std::vector<std::size_t> component_of;
  /// sizes[c] is the number of nodes in component c.
  std::vector<std::size_t> sizes;
  /// Index into `sizes` of the largest component (0 if the graph is empty).
  std::size_t largest = 0;
};

/// Computes connected components via BFS over the (multi)graph.
ComponentsResult ConnectedComponents(const Graph& g);

/// Number of connected components.
std::size_t CountComponents(const Graph& g);

/// True if the graph is connected (and non-empty).
bool IsConnected(const Graph& g);

/// Extracts the largest connected component as a new graph with densely
/// renumbered nodes. `old_to_new` (optional) receives the node mapping;
/// nodes outside the LCC map to `kNotInLcc`.
inline constexpr NodeId kNotInLcc = static_cast<NodeId>(-1);
Graph LargestConnectedComponent(const Graph& g,
                                std::vector<NodeId>* old_to_new = nullptr);

/// Applies the paper's dataset preprocessing (Section V-A): collapse
/// multi-edges, drop loops, then keep the largest connected component.
Graph PreprocessDataset(const Graph& g);

}  // namespace sgr

#endif  // SGR_GRAPH_COMPONENTS_H_
