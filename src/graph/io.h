#ifndef SGR_GRAPH_IO_H_
#define SGR_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/csr_graph.h"
#include "graph/graph.h"

namespace sgr {

/// Graph serialization.
///
/// Edge-list format: one `u v` pair per line; `#` and `%` lines are
/// comments. This matches the format of the SNAP / networkrepository
/// datasets the paper uses, so real data drops in directly. GEXF export
/// supports the Fig. 4 visualization workflow (the files open in Gephi).

/// Reads an edge list from `in`. Node ids may be arbitrary non-negative
/// integers; they are densely renumbered in first-appearance order.
/// Throws std::runtime_error on malformed input — including an edge line
/// with trailing tokens ("1 2 3"): a third column means a weighted or
/// temporal file this unweighted reader would silently misread, so it is
/// rejected rather than dropped. Lines may end in CRLF.
Graph ReadEdgeList(std::istream& in);

/// Reads an edge list from the file at `path`.
/// Throws std::runtime_error if the file cannot be opened.
Graph ReadEdgeListFile(const std::string& path);

/// Writes `g` as an edge list (one edge per line) to `out`.
void WriteEdgeList(const Graph& g, std::ostream& out);

/// Writes `g` as an edge list to the file at `path`.
void WriteEdgeListFile(const Graph& g, const std::string& path);

/// Writes `g` in the *canonical* edge-list form understood by the
/// out-of-core ingester (graph/edge_list_reader.h): a `# sgr-canonical 1`
/// marker, a `# nodes N edges M` header, then one `u v` line per edge
/// with u <= v, emitted in ascending (u, v) order straight off the CSR
/// ranges. The marker declares that ids are already dense [0, N) — the
/// ingester preserves them verbatim instead of renumbering by first
/// appearance, which is what makes export -> re-ingest an exact identity
/// (first-appearance renumbering alone cannot reproduce arbitrary id
/// assignments; e.g. the edge set {0-2, 1-2} admits no edge order whose
/// first appearances are 0, 1, 2). Loops are emitted once per loop,
/// parallel edges once per copy.
void WriteCanonicalEdgeList(const CsrGraph& g, std::ostream& out);

/// Writes the canonical form to the file at `path`.
void WriteCanonicalEdgeListFile(const CsrGraph& g, const std::string& path);

/// Writes `g` in GEXF 1.2 format with node degrees exported as a
/// visualization attribute (size by degree reproduces the look of Fig. 4
/// in Gephi).
void WriteGexf(const Graph& g, std::ostream& out);

/// Writes GEXF to the file at `path`.
void WriteGexfFile(const Graph& g, const std::string& path);

}  // namespace sgr

#endif  // SGR_GRAPH_IO_H_
