#ifndef SGR_GRAPH_IO_H_
#define SGR_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace sgr {

/// Graph serialization.
///
/// Edge-list format: one `u v` pair per line; `#` and `%` lines are
/// comments. This matches the format of the SNAP / networkrepository
/// datasets the paper uses, so real data drops in directly. GEXF export
/// supports the Fig. 4 visualization workflow (the files open in Gephi).

/// Reads an edge list from `in`. Node ids may be arbitrary non-negative
/// integers; they are densely renumbered in first-appearance order.
/// Throws std::runtime_error on malformed input.
Graph ReadEdgeList(std::istream& in);

/// Reads an edge list from the file at `path`.
/// Throws std::runtime_error if the file cannot be opened.
Graph ReadEdgeListFile(const std::string& path);

/// Writes `g` as an edge list (one edge per line) to `out`.
void WriteEdgeList(const Graph& g, std::ostream& out);

/// Writes `g` as an edge list to the file at `path`.
void WriteEdgeListFile(const Graph& g, const std::string& path);

/// Writes `g` in GEXF 1.2 format with node degrees exported as a
/// visualization attribute (size by degree reproduces the look of Fig. 4
/// in Gephi).
void WriteGexf(const Graph& g, std::ostream& out);

/// Writes GEXF to the file at `path`.
void WriteGexfFile(const Graph& g, const std::string& path);

}  // namespace sgr

#endif  // SGR_GRAPH_IO_H_
