#ifndef SGR_GRAPH_EDGE_LIST_READER_H_
#define SGR_GRAPH_EDGE_LIST_READER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/csr_graph.h"

namespace sgr {

/// Out-of-core SNAP/edge-list ingestion (the paper-scale alternative to
/// ReadEdgeListFile + CsrGraph, which materializes an intermediate
/// adjacency Graph and parses through istringstream).
///
/// The ingester builds a CsrGraph directly from the file in two passes:
///
///   Pass 1 (sequential, streaming): large-buffer chunked reads with a
///   manual integer scanner (no istream machinery), first-appearance
///   renumbering identical to ReadEdgeList's, and the renumbered
///   (u, v) pairs appended to an edge buffer that spills to a binary
///   temp file once it exceeds `spill_edges` — the file never has to fit
///   in memory as text.
///
///   Pass 2: degree count, CSR scatter sharded by node range over the
///   existing ThreadPool (each worker scans the shared edge chunk and
///   scatters only the endpoints in its node range, so no two workers
///   touch one node), then per-node sort + duplicate collapse, largest-
///   connected-component extraction, and a monotone dense relabel.
///
/// Edge policy (matches PreprocessDataset, Section V-A): self-loops are
/// dropped, parallel edges are collapsed, and only the largest connected
/// component is kept, densely renumbered in ascending-id order. The
/// result is byte-identical to
/// CsrGraph(PreprocessDataset(ReadEdgeListFile(path))) for every input
/// both readers accept, at any worker count (the per-node sort makes the
/// scatter order irrelevant). Lines may be '#'/'%' comments, use spaces
/// or tabs, and end in CRLF; ids may exceed 32 bits (renumbering interns
/// them). Trailing tokens on an edge line are rejected — a third column
/// means a weighted/temporal file this reader would silently misread.
///
/// Canonical files: a leading `# sgr-canonical 1` marker (written by
/// WriteCanonicalEdgeList) declares ids already dense [0, N); the
/// ingester then preserves them verbatim instead of renumbering, which
/// makes export -> re-ingest an exact identity — the property the CI
/// ingest-determinism gate diffs end to end.
struct IngestOptions {
  /// Worker threads for the CSR scatter and per-node sort (0 = hardware
  /// concurrency). The result is identical for every value.
  std::size_t threads = 1;

  /// Neighbor-array compression of the returned snapshot (csr_graph.h):
  /// kAuto compresses only when the preprocessed graph has at least
  /// `compress_min_edges` edges (small graphs keep the uncompressed
  /// zero-copy fast path).
  enum class Compress { kAuto, kOn, kOff };
  Compress compress = Compress::kAuto;
  std::size_t compress_min_edges = std::size_t{1} << 22;  // ~4M edges

  /// Content-hash-keyed snapshot cache directory (empty = no cache). On
  /// a hit the CSR arrays are loaded directly from the binary snapshot
  /// (graph/snapshot_cache.h) and the text file is never re-parsed; a
  /// corrupt entry is reported to stderr and rebuilt.
  std::string cache_dir;

  /// Read granularity of the streaming passes.
  std::size_t chunk_bytes = std::size_t{1} << 22;  // 4 MiB

  /// In-memory edge budget of pass 1; beyond it, renumbered edges spill
  /// to a binary temp file that pass 2 re-streams.
  std::size_t spill_edges = std::size_t{1} << 26;  // 64M edges (512 MiB)

  /// Directory for the spill file (empty = std::filesystem's temp dir).
  std::string temp_dir;
};

/// Ingestion counters, reported by `sgr datasets ingest` and recorded in
/// the snapshot cache so a cache hit still attributes its numbers.
struct IngestStats {
  std::size_t file_bytes = 0;        ///< bytes read from the text file
  std::size_t edge_lines = 0;        ///< non-comment lines parsed
  std::size_t raw_nodes = 0;         ///< distinct ids before preprocessing
  std::size_t self_loops_dropped = 0;
  std::size_t parallel_edges_collapsed = 0;
  std::size_t lcc_nodes = 0;         ///< nodes of the returned snapshot
  std::size_t lcc_edges = 0;         ///< edges of the returned snapshot
  bool canonical = false;            ///< `# sgr-canonical 1` marker seen
  bool spilled = false;              ///< pass 1 used the temp file
};

struct IngestResult {
  CsrGraph graph;
  /// FNV-1a-64 over the raw file bytes — the provenance hash echoed into
  /// sgr-report/1 environment blocks and the snapshot-cache key.
  std::uint64_t content_hash = 0;
  IngestStats stats;
  bool from_cache = false;
};

/// Ingests the edge list at `path` (see IngestOptions for the knobs and
/// the determinism contract). Throws std::runtime_error on an unreadable
/// file or malformed content, with the path and line number in the
/// message.
IngestResult IngestEdgeListFile(const std::string& path,
                                const IngestOptions& options = {});

/// FNV-1a-64 over the raw bytes of the file at `path`. Throws
/// std::runtime_error if the file cannot be read.
std::uint64_t HashFileContents(const std::string& path);

/// Order-independent-of-representation hash of a snapshot's logical
/// content: FNV-1a-64 over node count and every (degree, neighbor list)
/// in node order, decoded through a cursor — so a compressed and an
/// uncompressed snapshot of the same graph hash identically. This is the
/// value the CI ingest gate compares across worker counts.
std::uint64_t CsrContentHash(const CsrGraph& g);

/// 16-digit lowercase hex of `hash` (the provenance echo format).
std::string HashToHex(std::uint64_t hash);

}  // namespace sgr

#endif  // SGR_GRAPH_EDGE_LIST_READER_H_
