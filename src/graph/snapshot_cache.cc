#include "graph/snapshot_cache.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "graph/edge_list_reader.h"

namespace sgr {

namespace {

constexpr char kMagic[8] = {'S', 'G', 'R', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

static_assert(sizeof(std::size_t) == 8,
              "snapshot format assumes 64-bit size_t offsets");
static_assert(sizeof(NodeId) == 4, "snapshot format assumes 32-bit NodeId");

inline void FnvMixBytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

/// Fixed-size header after the magic: node count, total degree, then the
/// ingest stats a cache hit must still be able to report.
struct SnapshotHeader {
  std::uint64_t num_nodes = 0;
  std::uint64_t total_degree = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t edge_lines = 0;
  std::uint64_t raw_nodes = 0;
  std::uint64_t self_loops_dropped = 0;
  std::uint64_t parallel_edges_collapsed = 0;
  std::uint64_t lcc_nodes = 0;
  std::uint64_t lcc_edges = 0;
  std::uint64_t flags = 0;  // bit 0: canonical, bit 1: spilled
};

bool WarnCorrupt(const std::string& path, const char* what) {
  std::cerr << "warning: snapshot cache entry '" << path << "' is corrupt ("
            << what << "); rebuilding from the source file\n";
  return false;
}

}  // namespace

std::string SnapshotCachePath(const std::string& cache_dir,
                              std::uint64_t key_hash) {
  return (std::filesystem::path(cache_dir) /
          ("sgr-snap-" + HashToHex(key_hash) + ".bin"))
      .string();
}

bool LoadCsrSnapshot(const std::string& path, CsrGraph* graph,
                     IngestStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;  // plain miss: no warning

  std::uint64_t checksum = kFnvOffset;
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return WarnCorrupt(path, "bad magic");
  }
  FnvMixBytes(checksum, magic, sizeof(magic));

  SnapshotHeader header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in) return WarnCorrupt(path, "truncated header");
  FnvMixBytes(checksum, &header, sizeof(header));

  // Validate the declared sizes against the actual file length before
  // allocating anything — a corrupt header must not drive allocation.
  std::error_code ec;
  const auto file_size =
      static_cast<std::uint64_t>(std::filesystem::file_size(path, ec));
  const std::uint64_t expected = sizeof(kMagic) + sizeof(header) +
                                 (header.num_nodes + 1) * 8 +
                                 header.total_degree * 4 + 8;
  if (ec || file_size != expected) {
    return WarnCorrupt(path, "size mismatch");
  }

  std::vector<std::size_t> offsets(header.num_nodes + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(std::size_t)));
  if (!in) return WarnCorrupt(path, "truncated offsets");
  FnvMixBytes(checksum, offsets.data(), offsets.size() * sizeof(std::size_t));

  std::vector<NodeId> neighbors(header.total_degree);
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(neighbors.size() * sizeof(NodeId)));
  if (!in) return WarnCorrupt(path, "truncated neighbors");
  FnvMixBytes(checksum, neighbors.data(), neighbors.size() * sizeof(NodeId));

  std::uint64_t stored_checksum = 0;
  in.read(reinterpret_cast<char*>(&stored_checksum), sizeof(stored_checksum));
  if (!in || stored_checksum != checksum) {
    return WarnCorrupt(path, "checksum mismatch");
  }
  if (offsets.back() != header.total_degree) {
    return WarnCorrupt(path, "inconsistent offsets");
  }

  *graph = CsrGraph::FromAdjacency(std::move(offsets), std::move(neighbors));
  *stats = IngestStats{};
  stats->file_bytes = header.file_bytes;
  stats->edge_lines = header.edge_lines;
  stats->raw_nodes = header.raw_nodes;
  stats->self_loops_dropped = header.self_loops_dropped;
  stats->parallel_edges_collapsed = header.parallel_edges_collapsed;
  stats->lcc_nodes = header.lcc_nodes;
  stats->lcc_edges = header.lcc_edges;
  stats->canonical = (header.flags & 1u) != 0;
  stats->spilled = (header.flags & 2u) != 0;
  return true;
}

void SaveCsrSnapshot(const std::string& path, const CsrGraph& graph,
                     const IngestStats& stats) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
  }
  // pid + stack address uniquify the temp name across concurrent savers;
  // the final rename is atomic, so the last writer wins cleanly.
  SnapshotHeader header;
  const fs::path tmp =
      target.string() + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(reinterpret_cast<std::uintptr_t>(&header));

  const std::vector<std::size_t>& offsets = graph.raw_offsets();
  const std::vector<NodeId>& neighbors = graph.raw_neighbors();
  header.num_nodes = graph.NumNodes();
  header.total_degree = graph.TotalDegree();
  header.file_bytes = stats.file_bytes;
  header.edge_lines = stats.edge_lines;
  header.raw_nodes = stats.raw_nodes;
  header.self_loops_dropped = stats.self_loops_dropped;
  header.parallel_edges_collapsed = stats.parallel_edges_collapsed;
  header.lcc_nodes = stats.lcc_nodes;
  header.lcc_edges = stats.lcc_edges;
  header.flags = (stats.canonical ? 1u : 0u) | (stats.spilled ? 2u : 0u);

  std::uint64_t checksum = kFnvOffset;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("SaveCsrSnapshot: cannot create '" +
                               tmp.string() + "'");
    }
    const auto write_block = [&](const void* data, std::size_t len) {
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(len));
      FnvMixBytes(checksum, data, len);
    };
    write_block(kMagic, sizeof(kMagic));
    write_block(&header, sizeof(header));
    write_block(offsets.data(), offsets.size() * sizeof(std::size_t));
    write_block(neighbors.data(), neighbors.size() * sizeof(NodeId));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw std::runtime_error("SaveCsrSnapshot: write to '" + tmp.string() +
                               "' failed (disk full?)");
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    std::error_code rm_ec;
    fs::remove(tmp, rm_ec);
    throw std::runtime_error("SaveCsrSnapshot: cannot rename '" +
                             tmp.string() + "' to '" + path +
                             "': " + ec.message());
  }
}

}  // namespace sgr
