#include "graph/edge_list_reader.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exp/parallel.h"
#include "graph/snapshot_cache.h"

namespace sgr {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Bump the cache key version whenever the ingest pipeline's output for
/// an unchanged input file could change (preprocessing policy, snapshot
/// format) — stale snapshot-cache entries then miss instead of lying.
constexpr std::uint64_t kIngestFormatVersion = 1;

inline void FnvMixBytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

inline void FnvMixU64(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= value & 0xFFu;
    h *= kFnvPrime;
    value >>= 8;
  }
}

/// First-appearance renumbering, identical to ReadEdgeList's: the k-th
/// distinct raw id becomes NodeId k. Small raw ids (the overwhelmingly
/// common SNAP case) go through a direct-indexed table; larger (up to
/// 64-bit) ids fall back to a hash map. The map is only ever probed,
/// never iterated, so determinism does not depend on its bucket order.
class Interner {
 public:
  NodeId Intern(std::uint64_t raw) {
    if (raw < kDenseLimit) {
      if (raw >= dense_.size()) {
        std::size_t grown = std::max<std::size_t>(dense_.size() * 2, 1024);
        grown = std::max<std::size_t>(grown, raw + 1);
        dense_.resize(std::min<std::size_t>(grown, kDenseLimit), kUnset);
      }
      NodeId& slot = dense_[raw];
      if (slot == kUnset) slot = NextId();
      return slot;
    }
    auto [it, inserted] = sparse_.try_emplace(raw, NodeId{0});
    if (inserted) it->second = NextId();
    return it->second;
  }

  std::size_t count() const { return next_; }

 private:
  NodeId NextId() {
    if (next_ == kUnset) {
      throw std::runtime_error(
          "IngestEdgeListFile: more than 2^32 - 1 distinct node ids");
    }
    return next_++;
  }

  static constexpr NodeId kUnset = 0xFFFFFFFFu;
  static constexpr std::uint64_t kDenseLimit = std::uint64_t{1} << 26;

  std::vector<NodeId> dense_;
  std::unordered_map<std::uint64_t, NodeId> sparse_;
  NodeId next_ = 0;
};

/// Renumbered (u, v) pairs from pass 1, spilling to a binary temp file
/// once the in-memory buffer exceeds the configured budget. ForEachChunk
/// re-streams the pairs (from memory or the spill file) for each pass-2
/// sweep. The temp file is removed on destruction.
class EdgeSink {
 public:
  EdgeSink(std::size_t spill_edges, std::size_t chunk_bytes,
           std::string temp_dir)
      : spill_limit_entries_(std::max<std::size_t>(spill_edges, 1) * 2),
        chunk_entries_(std::max<std::size_t>(chunk_bytes / sizeof(NodeId), 2)),
        temp_dir_(std::move(temp_dir)) {}

  ~EdgeSink() {
    reader_.close();
    writer_.close();
    if (!spill_path_.empty()) {
      std::error_code ec;
      std::filesystem::remove(spill_path_, ec);
    }
  }

  EdgeSink(const EdgeSink&) = delete;
  EdgeSink& operator=(const EdgeSink&) = delete;

  void Push(NodeId u, NodeId v) {
    buffer_.push_back(u);
    buffer_.push_back(v);
    ++total_edges_;
    if (buffer_.size() >= spill_limit_entries_) Spill();
  }

  /// Flushes any buffered tail to the spill file (if one was started) and
  /// switches to read mode. Call once, after the last Push.
  void FinishWriting() {
    if (!spill_path_.empty() && !buffer_.empty()) Spill();
    if (writer_.is_open()) {
      writer_.flush();
      if (!writer_) {
        throw std::runtime_error("IngestEdgeListFile: write to spill file '" +
                                 spill_path_ + "' failed (disk full?)");
      }
      writer_.close();
    }
  }

  std::size_t total_edges() const { return total_edges_; }
  bool spilled() const { return !spill_path_.empty(); }

  /// Invokes `fn(data, entries)` over every stored pair, in insertion
  /// order, `entries` always even (u at data[i], v at data[i+1]).
  void ForEachChunk(
      const std::function<void(const NodeId*, std::size_t)>& fn) {
    if (!spilled()) {
      if (!buffer_.empty()) fn(buffer_.data(), buffer_.size());
      return;
    }
    reader_.open(spill_path_, std::ios::binary);
    if (!reader_) {
      throw std::runtime_error("IngestEdgeListFile: cannot reopen spill file '" +
                               spill_path_ + "'");
    }
    std::vector<NodeId> chunk(chunk_entries_ - chunk_entries_ % 2);
    while (reader_) {
      reader_.read(reinterpret_cast<char*>(chunk.data()),
                   static_cast<std::streamsize>(chunk.size() * sizeof(NodeId)));
      const std::size_t got =
          static_cast<std::size_t>(reader_.gcount()) / sizeof(NodeId);
      if (got == 0) break;
      fn(chunk.data(), got);
    }
    reader_.close();
  }

 private:
  void Spill() {
    if (spill_path_.empty()) {
      namespace fs = std::filesystem;
      const fs::path base =
          temp_dir_.empty() ? fs::temp_directory_path() : fs::path(temp_dir_);
      // pid + object address uniquify concurrent ingests without any
      // global counter state.
      spill_path_ =
          (base / ("sgr-ingest-" + std::to_string(::getpid()) + "-" +
                   std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
                   ".spill"))
              .string();
      writer_.open(spill_path_, std::ios::binary | std::ios::trunc);
      if (!writer_) {
        throw std::runtime_error(
            "IngestEdgeListFile: cannot create spill file '" + spill_path_ +
            "'");
      }
    }
    writer_.write(reinterpret_cast<const char*>(buffer_.data()),
                  static_cast<std::streamsize>(buffer_.size() * sizeof(NodeId)));
    if (!writer_) {
      throw std::runtime_error("IngestEdgeListFile: write to spill file '" +
                               spill_path_ + "' failed (disk full?)");
    }
    buffer_.clear();
  }

  std::vector<NodeId> buffer_;
  std::size_t total_edges_ = 0;
  const std::size_t spill_limit_entries_;
  const std::size_t chunk_entries_;
  const std::string temp_dir_;
  std::string spill_path_;
  std::ofstream writer_;
  std::ifstream reader_;
};

/// Parses an unsigned decimal integer at `*p`, advancing past it.
/// Returns false if no digit is present or the value overflows 64 bits.
inline bool ParseUint(const char*& p, const char* end, std::uint64_t* out) {
  const char* start = p;
  std::uint64_t value = 0;
  while (p < end && *p >= '0' && *p <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) return false;
    value = value * 10 + digit;
    ++p;
  }
  if (p == start) return false;
  *out = value;
  return true;
}

inline bool IsBlank(char c) { return c == ' ' || c == '\t'; }

/// Degree-balanced partition of [0, n) into `slices` contiguous node
/// ranges: returns `slices + 1` boundaries such that each range covers
/// roughly total_degree / slices neighbor entries. Used both for the
/// race-free CSR scatter (one range per worker) and the per-node sort.
std::vector<NodeId> DegreeBalancedBounds(const std::vector<std::size_t>& offsets,
                                         std::size_t n, std::size_t slices) {
  std::vector<NodeId> bounds(slices + 1, static_cast<NodeId>(n));
  bounds[0] = 0;
  const std::size_t total = offsets[n];
  for (std::size_t t = 1; t < slices; ++t) {
    const std::size_t target = total / slices * t;
    const auto it =
        std::lower_bound(offsets.begin(), offsets.begin() + n + 1, target);
    const auto node = static_cast<NodeId>(it - offsets.begin());
    bounds[t] = std::max(bounds[t - 1], std::min(node, static_cast<NodeId>(n)));
  }
  return bounds;
}

std::uint64_t SnapshotCacheKey(std::uint64_t content_hash) {
  std::uint64_t h = kFnvOffset;
  FnvMixU64(h, kIngestFormatVersion);
  FnvMixU64(h, content_hash);
  return h;
}

void ApplyCompression(CsrGraph* g, const IngestOptions& options) {
  switch (options.compress) {
    case IngestOptions::Compress::kOff:
      break;
    case IngestOptions::Compress::kOn:
      g->Compress();
      break;
    case IngestOptions::Compress::kAuto:
      if (g->NumEdges() >= options.compress_min_edges) g->Compress();
      break;
  }
}

}  // namespace

std::uint64_t HashFileContents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("HashFileContents: cannot open '" + path + "'");
  }
  std::uint64_t h = kFnvOffset;
  std::vector<char> chunk(std::size_t{1} << 20);
  while (in) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    FnvMixBytes(h, chunk.data(), got);
  }
  return h;
}

std::uint64_t CsrContentHash(const CsrGraph& g) {
  std::uint64_t h = kFnvOffset;
  const std::size_t n = g.NumNodes();
  FnvMixU64(h, n);
  NeighborCursor cursor(g);
  for (NodeId v = 0; v < n; ++v) {
    const NeighborSpan nbrs = cursor.Load(v);
    FnvMixU64(h, nbrs.size());
    for (const NodeId w : nbrs) FnvMixU64(h, w);
  }
  return h;
}

std::string HashToHex(std::uint64_t hash) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xFu];
    hash >>= 4;
  }
  return out;
}

IngestResult IngestEdgeListFile(const std::string& path,
                                const IngestOptions& options) {
  IngestResult result;
  result.content_hash = HashFileContents(path);

  std::string cache_path;
  if (!options.cache_dir.empty()) {
    cache_path = SnapshotCachePath(options.cache_dir,
                                   SnapshotCacheKey(result.content_hash));
    CsrGraph cached;
    IngestStats cached_stats;
    if (LoadCsrSnapshot(cache_path, &cached, &cached_stats)) {
      result.graph = std::move(cached);
      result.stats = cached_stats;
      result.from_cache = true;
      ApplyCompression(&result.graph, options);
      return result;
    }
  }

  IngestStats stats;
  const std::size_t chunk_bytes =
      std::max<std::size_t>(options.chunk_bytes, std::size_t{64} * 1024);
  EdgeSink sink(options.spill_edges, chunk_bytes, options.temp_dir);
  Interner interner;
  bool canonical = false;
  bool any_edge = false;
  bool have_declared_nodes = false;
  std::uint64_t declared_nodes = 0;
  std::uint64_t max_canonical_id = 0;
  std::size_t line_no = 0;

  const auto fail = [&](const std::string& message) -> std::runtime_error {
    return std::runtime_error("IngestEdgeListFile: " + path + ":" +
                              std::to_string(line_no) + ": " + message);
  };

  const auto handle_comment = [&](const char* b, const char* e) {
    const std::string_view sv(b, static_cast<std::size_t>(e - b));
    if (!any_edge && sv == "# sgr-canonical 1") {
      canonical = true;
      stats.canonical = true;
      return;
    }
    constexpr std::string_view kNodesPrefix = "# nodes ";
    if (canonical && !have_declared_nodes &&
        sv.substr(0, kNodesPrefix.size()) == kNodesPrefix) {
      const char* p = b + kNodesPrefix.size();
      std::uint64_t n = 0;
      if (ParseUint(p, e, &n)) {
        declared_nodes = n;
        have_declared_nodes = true;
      }
    }
  };

  const auto handle_line = [&](const char* b, const char* e) {
    ++line_no;
    if (e > b && e[-1] == '\r') --e;  // CRLF
    if (b == e) return;
    if (*b == '#' || *b == '%') {
      handle_comment(b, e);
      return;
    }
    const char* p = b;
    while (p < e && IsBlank(*p)) ++p;
    std::uint64_t raw_u = 0;
    std::uint64_t raw_v = 0;
    if (!ParseUint(p, e, &raw_u)) {
      throw fail("malformed line: '" + std::string(b, e) + "'");
    }
    if (p == e || !IsBlank(*p)) {
      throw fail("malformed line: '" + std::string(b, e) + "'");
    }
    while (p < e && IsBlank(*p)) ++p;
    if (!ParseUint(p, e, &raw_v)) {
      throw fail("malformed line: '" + std::string(b, e) + "'");
    }
    while (p < e && IsBlank(*p)) ++p;
    if (p != e) {
      // A third column means a weighted/temporal file this unweighted
      // reader would silently misread — reject, matching ReadEdgeList.
      const char* t = p;
      while (t < e && !IsBlank(*t)) ++t;
      throw fail("trailing token '" + std::string(p, t) + "' on line '" +
                 std::string(b, e) +
                 "' (weighted/temporal edge lists are not supported)");
    }
    ++stats.edge_lines;
    any_edge = true;
    NodeId u;
    NodeId v;
    if (canonical) {
      if (have_declared_nodes &&
          (raw_u >= declared_nodes || raw_v >= declared_nodes)) {
        throw fail("canonical id out of declared range [0, " +
                   std::to_string(declared_nodes) + ")");
      }
      if (raw_u > 0xFFFFFFFFull || raw_v > 0xFFFFFFFFull) {
        throw fail("canonical ids must fit in 32 bits");
      }
      max_canonical_id = std::max({max_canonical_id, raw_u, raw_v});
      u = static_cast<NodeId>(raw_u);
      v = static_cast<NodeId>(raw_v);
    } else {
      // Intern u before v: first-appearance numbering must match
      // ReadEdgeList's explicit sequencing exactly.
      u = interner.Intern(raw_u);
      v = interner.Intern(raw_v);
    }
    if (u == v) {
      ++stats.self_loops_dropped;  // dropped by PreprocessDataset anyway
      return;
    }
    sink.Push(u, v);
  };

  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("IngestEdgeListFile: cannot open '" + path +
                               "'");
    }
    std::vector<char> chunk(chunk_bytes);
    std::string carry;
    while (in) {
      in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      const auto got = static_cast<std::size_t>(in.gcount());
      if (got == 0) break;
      stats.file_bytes += got;
      const char* p = chunk.data();
      const char* end = p + got;
      while (p < end) {
        const char* nl = static_cast<const char*>(
            std::memchr(p, '\n', static_cast<std::size_t>(end - p)));
        if (nl == nullptr) {
          carry.append(p, end);
          break;
        }
        if (!carry.empty()) {
          carry.append(p, nl);
          handle_line(carry.data(), carry.data() + carry.size());
          carry.clear();
        } else {
          handle_line(p, nl);
        }
        p = nl + 1;
      }
    }
    if (!carry.empty()) {
      handle_line(carry.data(), carry.data() + carry.size());
    }
  }
  sink.FinishWriting();
  stats.spilled = sink.spilled();

  std::size_t n;
  if (canonical) {
    const std::uint64_t derived =
        have_declared_nodes ? declared_nodes
                            : (any_edge ? max_canonical_id + 1 : 0);
    if (derived > 0xFFFFFFFFull) {
      line_no = 0;
      throw fail("canonical node count " + std::to_string(derived) +
                 " exceeds 2^32 - 1");
    }
    n = static_cast<std::size_t>(derived);
  } else {
    n = interner.count();
  }
  stats.raw_nodes = n;

  if (n == 0) {
    result.stats = stats;
    result.graph = CsrGraph::FromAdjacency({0}, {});
    return result;
  }

  // ---- Pass 2: degree count, sharded scatter, sort/dedupe, LCC. ----

  std::vector<std::size_t> offsets(n + 1, 0);
  sink.ForEachChunk([&](const NodeId* data, std::size_t entries) {
    for (std::size_t i = 0; i < entries; i += 2) {
      ++offsets[data[i] + 1];
      ++offsets[data[i + 1] + 1];
    }
  });
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<NodeId> neighbors(offsets[n]);
  // cursor[v] = next write slot in v's range; doubles as the per-node
  // deduplicated-degree array after the sort pass.
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);

  const std::size_t threads = ResolveThreadCount(options.threads);
  if (threads <= 1) {
    sink.ForEachChunk([&](const NodeId* data, std::size_t entries) {
      for (std::size_t i = 0; i < entries; i += 2) {
        const NodeId u = data[i];
        const NodeId v = data[i + 1];
        neighbors[cursor[u]++] = v;
        neighbors[cursor[v]++] = u;
      }
    });
    for (std::size_t v = 0; v < n; ++v) {
      NodeId* first = neighbors.data() + offsets[v];
      NodeId* last = neighbors.data() + offsets[v + 1];
      std::sort(first, last);
      cursor[v] = static_cast<std::size_t>(std::unique(first, last) - first);
    }
  } else {
    // One contiguous node range per worker: a node's range is written by
    // exactly one worker, so the scatter is race-free, and the per-node
    // sort below makes the resulting lists independent of the sharding.
    const std::vector<NodeId> bounds = DegreeBalancedBounds(offsets, n, threads);
    ThreadPool pool(threads);
    sink.ForEachChunk([&](const NodeId* data, std::size_t entries) {
      PoolFor(pool, threads, [&](std::size_t t) {
        const NodeId lo = bounds[t];
        const NodeId hi = bounds[t + 1];
        for (std::size_t i = 0; i < entries; i += 2) {
          const NodeId u = data[i];
          const NodeId v = data[i + 1];
          if (u >= lo && u < hi) neighbors[cursor[u]++] = v;
          if (v >= lo && v < hi) neighbors[cursor[v]++] = u;
        }
      });
    });
    const std::vector<NodeId> sort_bounds =
        DegreeBalancedBounds(offsets, n, threads * 8);
    PoolFor(pool, threads * 8, [&](std::size_t t) {
      for (NodeId v = sort_bounds[t]; v < sort_bounds[t + 1]; ++v) {
        NodeId* first = neighbors.data() + offsets[v];
        NodeId* last = neighbors.data() + offsets[v + 1];
        std::sort(first, last);
        cursor[v] = static_cast<std::size_t>(std::unique(first, last) - first);
      }
    });
  }

  // Sequential in-place compaction to the deduplicated degrees. Loops
  // were dropped at parse time, so every duplicate removed by unique()
  // above was a parallel-edge copy.
  {
    std::size_t write = 0;
    std::size_t kept_entries = 0;
    std::vector<std::size_t> compact_offsets(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t d = cursor[v];
      if (write != offsets[v] && d > 0) {
        std::memmove(neighbors.data() + write, neighbors.data() + offsets[v],
                     d * sizeof(NodeId));
      }
      write += d;
      compact_offsets[v + 1] = write;
      kept_entries += d;
    }
    stats.parallel_edges_collapsed = (offsets[n] - kept_entries) / 2;
    neighbors.resize(write);
    offsets = std::move(compact_offsets);
  }

  // Largest connected component, sequential BFS. Ties break to the
  // first-discovered component (= smallest start id), matching
  // ConnectedComponents + max_element in analysis/components.cc.
  {
    constexpr NodeId kNoComp = 0xFFFFFFFFu;
    std::vector<NodeId> comp(n, kNoComp);
    std::vector<std::size_t> comp_size;
    std::vector<NodeId> queue;
    for (NodeId s = 0; s < n; ++s) {
      if (comp[s] != kNoComp) continue;
      const auto c = static_cast<NodeId>(comp_size.size());
      comp[s] = c;
      comp_size.push_back(1);
      queue.clear();
      queue.push_back(s);
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const NodeId v = queue[qi];
        for (std::size_t i = offsets[v]; i < offsets[v + 1]; ++i) {
          const NodeId w = neighbors[i];
          if (comp[w] == kNoComp) {
            comp[w] = c;
            ++comp_size[c];
            queue.push_back(w);
          }
        }
      }
    }
    const auto best = static_cast<NodeId>(
        std::max_element(comp_size.begin(), comp_size.end()) -
        comp_size.begin());
    if (comp_size[best] != n) {
      // Monotone dense relabel of the kept component: ascending old ids
      // map to ascending new ids, so sorted ranges stay sorted and the
      // in-place compaction below never overtakes its read position.
      std::vector<NodeId> relabel(n, kNoComp);
      NodeId next = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (comp[v] == best) relabel[v] = next++;
      }
      std::size_t write = 0;
      std::vector<std::size_t> lcc_offsets;
      lcc_offsets.reserve(static_cast<std::size_t>(next) + 1);
      lcc_offsets.push_back(0);
      for (NodeId v = 0; v < n; ++v) {
        if (comp[v] != best) continue;
        for (std::size_t i = offsets[v]; i < offsets[v + 1]; ++i) {
          neighbors[write++] = relabel[neighbors[i]];
        }
        lcc_offsets.push_back(write);
      }
      neighbors.resize(write);
      offsets = std::move(lcc_offsets);
      n = next;
    }
  }
  neighbors.shrink_to_fit();

  stats.lcc_nodes = n;
  stats.lcc_edges = offsets[n] / 2;
  result.stats = stats;
  result.graph = CsrGraph::FromAdjacency(std::move(offsets),
                                         std::move(neighbors));

  if (!cache_path.empty()) {
    SaveCsrSnapshot(cache_path, result.graph, result.stats);
  }
  ApplyCompression(&result.graph, options);
  return result;
}

}  // namespace sgr
