#ifndef SGR_ESTIMATION_ESTIMATORS_H_
#define SGR_ESTIMATION_ESTIMATORS_H_

#include <cstddef>

#include "estimation/estimates.h"
#include "sampling/sampling_list.h"

namespace sgr {

/// Which walk produced the sampling list. The node-level stationary
/// distribution is degree-proportional for both, so n̂, k̂̄, P̂(k) and
/// P̂(k,k') carry over unchanged; only the clustering estimator's interior
/// term differs: under a simple walk x_{i+1} is uniform over all k
/// neighbors (so Φ_c divides by k-1 after conditioning), while a
/// non-backtracking walk picks uniformly among the k-1 non-returning
/// neighbors (so the correct normalizer is k).
enum class WalkType {
  kSimple,           ///< simple random walk (the paper's setting)
  kNonBacktracking,  ///< Lee et al.'s NBRW (extension)
};

/// Which joint-degree-distribution estimator to use. The paper's method is
/// the hybrid; the pure variants exist for the ablation benches.
enum class JointEstimatorMode {
  kHybrid,             ///< IE above the 2 k̂̄ threshold, TE below (paper)
  kInducedEdgesOnly,   ///< P̂IE everywhere
  kTraversedEdgesOnly, ///< P̂TE everywhere
};

/// Fixed chunk width of the estimator pass: every accumulation over the
/// walk (and over the crawled adjacency) is split into partial sums over
/// consecutive index ranges of this size and reduced in ascending chunk
/// order. The grid depends only on the walk length — never on the worker
/// count — so every estimate is bit-identical for every
/// `EstimatorOptions::threads` value (including the double-valued fields,
/// whose summation order is the canonical chunk order). A walk shorter
/// than one chunk reduces to the historical single-pass accumulation
/// exactly.
inline constexpr std::size_t kEstimatorChunkSize = 1024;

/// Options for the re-weighted random walk estimators.
struct EstimatorOptions {
  /// Collision-pair threshold as a fraction of the walk length: pairs
  /// (i, j) participate only when |i - j| >= max(1, round(fraction * r)).
  /// The paper (following Hardiman & Katzir / Katzir et al.) uses 0.025.
  double collision_threshold_fraction = 0.025;

  /// Joint-degree estimator selection (ablation knob).
  JointEstimatorMode joint_mode = JointEstimatorMode::kHybrid;

  /// Walk type of the sampling list (selects the clustering-estimator
  /// normalizer; see WalkType).
  WalkType walk_type = WalkType::kSimple;

  /// Worker threads scoring the per-chunk partial sums concurrently
  /// (0 = hardware concurrency, 1 = fully inline). A pure execution knob:
  /// the chunk grid and the reduction order are fixed by the walk length
  /// alone, so every estimate is bit-identical for every value — see
  /// kEstimatorChunkSize.
  std::size_t threads = 1;
};

/// Computes the five local-property estimates of Section III-E from a
/// random-walk sampling list:
///   * number of nodes n̂ (collision estimator with lag threshold M),
///   * average degree k̂̄ = 1 / Φ̄,
///   * degree distribution P̂(k) = Φ(k) / Φ̄,
///   * joint degree distribution P̂(k, k') — the hybrid IE/TE estimator with
///     threshold k + k' >= 2 k̂̄ (proved unbiased in the paper's Appendix A),
///   * degree-dependent clustering coefficient ĉ̄(k) = Φ_c(k) / Φ(k).
///
/// Complexity: O(r log r + Σ_i d(x_i) log r). The quadratic pair sums of
/// the definitions are evaluated exactly using prefix sums over 1/d and
/// per-node sorted position lists (see DESIGN.md, "Faithfulness notes").
/// The dominant passes (crawl-snapshot build, degree/Φ accumulation, the
/// induced-edge scan, the clustering indicator, and the collision sums)
/// are chunked over the fixed kEstimatorChunkSize grid and scored on up
/// to `options.threads` workers, then reduced in canonical chunk order —
/// the estimates are bit-identical for every thread count.
///
/// `list.is_walk` must be true: the estimators rely on the Markov property
/// of the sequence — a non-walk sample (BFS / snowball / forest fire)
/// throws std::invalid_argument, since re-weighting such a crawl would
/// silently produce biased numbers.
///
/// Degenerate-but-legal inputs return defined values instead of NaN/UB:
/// walks shorter than 3 steps (a budget of one queried node, or an empty
/// hand-built list) fall back to plain small-sample statistics — n̂ = the
/// number of distinct nodes seen, k̂̄ = the plain mean degree of the
/// visited nodes, P̂(k) = the visit frequencies, empty P̂(k, k') and
/// ĉ̄(k) ≡ 0 — and a crawl whose queried nodes all have degree 0 yields
/// k̂̄ = 0 with zero distributions.
LocalEstimates EstimateLocalProperties(const SamplingList& list,
                                       const EstimatorOptions& options = {});

/// The collision estimator n̂ alone (exposed for tests and ablations).
/// Returns `fallback` when no collision pair exists at lag >= M, when the
/// walk is shorter than 3 steps, or when `list` is not a walk.
double EstimateNumNodes(const SamplingList& list, double fallback,
                        const EstimatorOptions& options = {});

/// The average-degree estimator k̂̄ alone. Returns 0 for an empty list, a
/// non-walk list, or a list whose visited nodes all have degree 0 (no
/// finite harmonic mean exists). `threads` workers score the chunked
/// harmonic sum concurrently; the result is bit-identical for every
/// value (see kEstimatorChunkSize).
double EstimateAverageDegree(const SamplingList& list,
                             std::size_t threads = 1);

}  // namespace sgr

#endif  // SGR_ESTIMATION_ESTIMATORS_H_
