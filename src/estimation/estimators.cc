#include "estimation/estimators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/csr_graph.h"

namespace sgr {

namespace {

/// Compact CSR snapshot of the crawled neighborhood. The sampling list
/// stores neighbors in per-node hash maps — convenient to build during the
/// crawl, but the estimator's inner loops (induced-edge counting and the
/// clustering indicator) perform O(Σ_i d(x_i)) lookups, and hash probes
/// dominate their runtime. The snapshot renumbers the queried nodes
/// densely, flattens their neighbor lists into offset + neighbor arrays
/// (sorted by original id, so adjacency tests are binary searches), and
/// pre-resolves each neighbor entry to its compact id once, so the hot
/// loops below are pure array traversals.
struct CrawlCsr {
  static constexpr std::uint32_t kNotQueried =
      static_cast<std::uint32_t>(-1);

  std::vector<NodeId> original_id;     ///< compact -> original
  std::vector<std::size_t> offsets;    ///< per compact node, size q+1
  std::vector<NodeId> neighbors;       ///< original ids, sorted per node
  std::vector<std::uint32_t> compact_neighbors;  ///< aligned with neighbors
  std::vector<std::uint32_t> degree;   ///< per compact node
  std::unordered_map<NodeId, std::uint32_t> to_compact;  ///< original -> compact

  explicit CrawlCsr(const SamplingList& list) {
    const std::size_t q = list.neighbors.size();
    original_id.reserve(q);
    to_compact.reserve(q * 2);
    for (const auto& [u, nbrs] : list.neighbors) {
      (void)nbrs;
      to_compact.emplace(u, static_cast<std::uint32_t>(original_id.size()));
      original_id.push_back(u);
    }
    offsets.assign(q + 1, 0);
    for (std::size_t c = 0; c < q; ++c) {
      offsets[c + 1] =
          offsets[c] + list.neighbors.at(original_id[c]).size();
    }
    neighbors.resize(offsets[q]);
    compact_neighbors.resize(offsets[q]);
    degree.resize(q);
    for (std::size_t c = 0; c < q; ++c) {
      const std::vector<NodeId>& nbrs = list.neighbors.at(original_id[c]);
      degree[c] = static_cast<std::uint32_t>(nbrs.size());
      std::copy(nbrs.begin(), nbrs.end(), neighbors.begin() + offsets[c]);
      std::sort(neighbors.begin() + offsets[c],
                neighbors.begin() + offsets[c + 1]);
      for (std::size_t e = offsets[c]; e < offsets[c + 1]; ++e) {
        auto it = to_compact.find(neighbors[e]);
        compact_neighbors[e] =
            it == to_compact.end() ? kNotQueried : it->second;
      }
    }
  }

  /// True if `original` (an original id) is adjacent to compact node `c`.
  bool Adjacent(std::uint32_t c, NodeId original) const {
    return std::binary_search(neighbors.begin() + offsets[c],
                              neighbors.begin() + offsets[c + 1], original);
  }

  /// Number of distinct nodes seen anywhere in the crawl (queried nodes
  /// plus their neighbors) — the lower-bound fallback for n̂.
  std::size_t DistinctSeen() const {
    std::vector<NodeId> all(neighbors);
    all.insert(all.end(), original_id.begin(), original_id.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all.size();
  }
};

/// Lag threshold M = max(1, round(fraction * r)).
std::size_t LagThreshold(std::size_t r, double fraction) {
  const auto rounded = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(r)));
  return std::max<std::size_t>(1, rounded);
}

/// Positions of each node in the walk, sorted ascending.
std::unordered_map<NodeId, std::vector<std::size_t>> PositionsByNode(
    const std::vector<NodeId>& walk) {
  std::unordered_map<NodeId, std::vector<std::size_t>> positions;
  for (std::size_t i = 0; i < walk.size(); ++i) {
    positions[walk[i]].push_back(i);
  }
  return positions;
}

/// Number of ordered index pairs (i, j), i != j, with |i - j| >= M.
double CountOrderedPairs(std::size_t r, std::size_t m) {
  // Ordered pairs with |i-j| >= M: for each lag d in [M, r-1] there are
  // (r - d) unordered pairs, times 2 orientations.
  double total = 0.0;
  for (std::size_t d = m; d < r; ++d) {
    total += 2.0 * static_cast<double>(r - d);
  }
  return total;
}

/// Number of positions of `positions` inside the open window
/// (center - M, center + M); `positions` must be sorted.
std::size_t CountWithinWindow(const std::vector<std::size_t>& positions,
                              std::size_t center, std::size_t m) {
  const std::size_t lo = center >= m - 1 ? center - (m - 1) : 0;
  const std::size_t hi = center + (m - 1);  // inclusive
  auto first = std::lower_bound(positions.begin(), positions.end(), lo);
  auto last = std::upper_bound(positions.begin(), positions.end(), hi);
  return static_cast<std::size_t>(last - first);
}

/// Defined fallback for walks too short for the re-weighted machinery
/// (r < 3; including the empty list): plain small-sample statistics. The
/// interesting estimators all need lagged pairs (n̂) or interior positions
/// (ĉ̄), so visit frequencies are the best defined answer.
LocalEstimates SmallSampleEstimates(const SamplingList& list) {
  LocalEstimates est;
  const std::size_t r = list.Length();
  std::vector<NodeId> seen;
  for (const auto& [node, nbrs] : list.neighbors) {
    seen.push_back(node);
    seen.insert(seen.end(), nbrs.begin(), nbrs.end());
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  est.num_nodes = static_cast<double>(seen.size());
  if (r == 0) return est;  // empty list: zero estimates, empty dists

  std::size_t max_degree = 0;
  double degree_sum = 0.0;
  for (NodeId v : list.visit_sequence) {
    const std::size_t d = list.DegreeOf(v);
    max_degree = std::max(max_degree, d);
    degree_sum += static_cast<double>(d);
  }
  est.average_degree = degree_sum / static_cast<double>(r);
  est.degree_dist.assign(max_degree + 1, 0.0);
  for (NodeId v : list.visit_sequence) {
    est.degree_dist[list.DegreeOf(v)] += 1.0 / static_cast<double>(r);
  }
  est.clustering.assign(max_degree + 1, 0.0);
  return est;
}

}  // namespace

double EstimateAverageDegree(const SamplingList& list) {
  if (!list.is_walk || list.Length() == 0) return 0.0;
  double inv_sum = 0.0;
  for (NodeId v : list.visit_sequence) {
    const auto degree = static_cast<double>(list.DegreeOf(v));
    if (degree > 0.0) inv_sum += 1.0 / degree;
  }
  // A walk pinned to zero-degree nodes (only possible for hand-built
  // lists) has no finite harmonic mean; 0 is the documented sentinel.
  if (inv_sum <= 0.0) return 0.0;
  return static_cast<double>(list.Length()) / inv_sum;
}

double EstimateNumNodes(const SamplingList& list, double fallback,
                        const EstimatorOptions& options) {
  if (!list.is_walk) return fallback;
  const std::size_t r = list.Length();
  if (r < 3) return fallback;
  const std::size_t m = LagThreshold(r, options.collision_threshold_fraction);
  const std::vector<NodeId>& walk = list.visit_sequence;

  // Denominator: ordered collision pairs at lag >= M, computed per node via
  // two-pointer over the sorted position list.
  double collisions = 0.0;
  const auto positions = PositionsByNode(walk);
  for (const auto& [node, pos] : positions) {
    (void)node;
    // For each a, count b > a with pos[b] - pos[a] >= M (then double).
    std::size_t b = 0;
    for (std::size_t a = 0; a < pos.size(); ++a) {
      if (b < a + 1) b = a + 1;
      while (b < pos.size() && pos[b] - pos[a] < m) ++b;
      collisions += 2.0 * static_cast<double>(pos.size() - b);
    }
  }
  if (collisions == 0.0) return fallback;

  // Numerator: sum over ordered far pairs of d_{x_i} / d_{x_j}
  //   = Σ_i d_{x_i} * (Σ_j 1/d_{x_j} - Σ_{j in window(i)} 1/d_{x_j}),
  // with the window handled by a prefix-sum array.
  std::vector<double> inv_prefix(r + 1, 0.0);
  for (std::size_t i = 0; i < r; ++i) {
    const auto degree = static_cast<double>(list.DegreeOf(walk[i]));
    // Zero-degree entries (hand-built lists only) contribute no weight —
    // an infinite term here would turn the window subtraction below into
    // inf - inf = NaN.
    inv_prefix[i + 1] = inv_prefix[i] + (degree > 0.0 ? 1.0 / degree : 0.0);
  }
  const double inv_total = inv_prefix[r];
  double numerator = 0.0;
  for (std::size_t i = 0; i < r; ++i) {
    const std::size_t lo = i >= m - 1 ? i - (m - 1) : 0;
    const std::size_t hi = std::min(r - 1, i + (m - 1));
    const double window = inv_prefix[hi + 1] - inv_prefix[lo];
    numerator +=
        static_cast<double>(list.DegreeOf(walk[i])) * (inv_total - window);
  }
  return numerator / collisions;
}

LocalEstimates EstimateLocalProperties(const SamplingList& list,
                                       const EstimatorOptions& options) {
  if (!list.is_walk) {
    throw std::invalid_argument(
        "EstimateLocalProperties: re-weighted estimators require a walk "
        "sample (list.is_walk); BFS/snowball/forest-fire crawls would "
        "yield biased estimates");
  }
  const std::size_t r = list.Length();
  if (r < 3) return SmallSampleEstimates(list);
  const std::vector<NodeId>& walk = list.visit_sequence;
  const std::size_t m = LagThreshold(r, options.collision_threshold_fraction);

  // Immutable snapshot of the crawled neighborhood; every lookup below is
  // an array access instead of a hash probe.
  const CrawlCsr crawl(list);
  std::vector<std::uint32_t> walk_compact(r);
  for (std::size_t i = 0; i < r; ++i) {
    walk_compact[i] = crawl.to_compact.at(walk[i]);
  }
  auto degree_at = [&](std::size_t i) {
    return static_cast<std::size_t>(crawl.degree[walk_compact[i]]);
  };

  LocalEstimates est;

  // --- Degrees, Φ̄, Φ(k). ---
  std::size_t max_degree = 0;
  for (std::size_t i = 0; i < r; ++i) {
    max_degree = std::max(max_degree, degree_at(i));
  }
  std::vector<double> degree_count(max_degree + 1, 0.0);
  double phi_bar = 0.0;
  for (std::size_t i = 0; i < r; ++i) {
    const std::size_t d = degree_at(i);
    degree_count[d] += 1.0;
    if (d > 0) phi_bar += 1.0 / static_cast<double>(d);
  }
  phi_bar /= static_cast<double>(r);
  // A zero-edge crawl (every queried node isolated — hand-built lists
  // only) admits no re-weighting at all; fall back to the defined
  // small-sample statistics instead of dividing by zero.
  if (phi_bar <= 0.0) return SmallSampleEstimates(list);
  est.average_degree = 1.0 / phi_bar;

  std::vector<double> phi(max_degree + 1, 0.0);
  for (std::size_t k = 1; k <= max_degree; ++k) {
    phi[k] = degree_count[k] /
             (static_cast<double>(k) * static_cast<double>(r));
  }
  est.degree_dist.assign(max_degree + 1, 0.0);
  for (std::size_t k = 1; k <= max_degree; ++k) {
    est.degree_dist[k] = phi[k] / phi_bar;
  }

  // --- Number of nodes (fallback: number of distinct nodes seen, a lower
  //     bound available from the sampling list itself). ---
  est.num_nodes = EstimateNumNodes(
      list, static_cast<double>(crawl.DistinctSeen()), options);

  // --- Joint degree distribution: hybrid of IE and TE (Section III-E). ---
  // TE: traversed edges (consecutive walk pairs).
  SparseJointDist te;
  for (std::size_t i = 0; i + 1 < r; ++i) {
    const auto k = static_cast<std::uint32_t>(degree_at(i));
    const auto kp = static_cast<std::uint32_t>(degree_at(i + 1));
    // Both indicator terms of P̂TE fire for (k, k') and for (k', k); each
    // consecutive pair contributes 1/(2(r-1)) to each ordering (twice that
    // on the diagonal).
    const double w = 1.0 / (2.0 * static_cast<double>(r - 1));
    te.AddSymmetric(k, kp, (k == kp) ? 2.0 * w : w);
  }

  // IE: induced edges among far-apart walk positions. For each position i
  // and each neighbor w of x_i that occurs in the walk at lag >= M, count 1
  // (A_{x_i, x_j} = 1 exactly when x_j is a neighbor of x_i; originals are
  // simple). Grouped per (d(x_i), d(w)) class.
  //
  // Walk positions per compact node id (only walk nodes get entries; a
  // queried-but-never-visited node, as Metropolis-Hastings produces, has
  // an empty list).
  std::vector<std::vector<std::size_t>> positions(crawl.degree.size());
  for (std::size_t i = 0; i < r; ++i) {
    positions[walk_compact[i]].push_back(i);
  }
  std::unordered_map<std::uint64_t, double> ie_counts;
  for (std::size_t i = 0; i < r; ++i) {
    const std::uint32_t u = walk_compact[i];
    // Deduplicate neighbors that appear in the walk (each neighbor edge is
    // a single adjacency-matrix entry regardless of how often w occurs).
    for (std::size_t e = crawl.offsets[u]; e < crawl.offsets[u + 1]; ++e) {
      const std::uint32_t w = crawl.compact_neighbors[e];
      if (w == CrawlCsr::kNotQueried) continue;
      const std::vector<std::size_t>& pos = positions[w];
      if (pos.empty()) continue;
      const std::size_t within = CountWithinWindow(pos, i, m);
      const std::size_t far = pos.size() - within;
      if (far == 0) continue;
      const auto k = static_cast<std::uint32_t>(crawl.degree[u]);
      const auto kp = static_cast<std::uint32_t>(crawl.degree[w]);
      ie_counts[DegreePairKey(k, kp)] += static_cast<double>(far);
    }
  }
  const double num_pairs = CountOrderedPairs(r, m);
  SparseJointDist ie;
  for (const auto& [key, count] : ie_counts) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    const double phi_kkp = count / (static_cast<double>(k) *
                                    static_cast<double>(kp) * num_pairs);
    // ie_counts already contains both orderings (the i/w loop sees each
    // unordered far pair twice, once from each side), so set, not add.
    ie.SetSymmetric(k, kp,
                    est.num_nodes * est.average_degree * phi_kkp);
  }

  // Hybrid: IE for k + k' >= 2 k̂̄ (high-degree pairs, where induced edges
  // are plentiful), TE below the threshold (where the walk itself samples
  // edges without bias).
  const double threshold = 2.0 * est.average_degree;
  std::unordered_set<std::uint64_t> keys;
  for (const auto& [key, value] : te.values()) {
    (void)value;
    keys.insert(key);
  }
  for (const auto& [key, value] : ie.values()) {
    (void)value;
    keys.insert(key);
  }
  for (std::uint64_t key : keys) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    if (k > kp) continue;  // handle each unordered pair once
    double value = 0.0;
    switch (options.joint_mode) {
      case JointEstimatorMode::kHybrid:
        value = (static_cast<double>(k) + static_cast<double>(kp) >=
                 threshold)
                    ? ie.At(k, kp)
                    : te.At(k, kp);
        break;
      case JointEstimatorMode::kInducedEdgesOnly:
        value = ie.At(k, kp);
        break;
      case JointEstimatorMode::kTraversedEdgesOnly:
        value = te.At(k, kp);
        break;
    }
    if (value > 0.0) est.joint_dist.SetSymmetric(k, kp, value);
  }

  // --- Degree-dependent clustering ĉ̄(k) = Φ_c(k) / Φ(k). ---
  // Φ_c(k) = 1/((k-1)(r-2)) Σ_{i=2}^{r-1} 1{d(x_i)=k} A_{x_{i-1}, x_{i+1}}.
  std::vector<double> phi_c(max_degree + 1, 0.0);
  for (std::size_t i = 1; i + 1 < r; ++i) {
    const NodeId next = walk[i + 1];
    if (walk[i - 1] == next) continue;  // A_vv = 0 in a simple graph
    if (crawl.Adjacent(walk_compact[i - 1], next)) {
      phi_c[degree_at(i)] += 1.0;
    }
  }
  est.clustering.assign(max_degree + 1, 0.0);
  for (std::size_t k = 2; k <= max_degree; ++k) {
    if (phi[k] <= 0.0) continue;
    // Normalizer: k-1 for a simple walk (Hardiman & Katzir), k for a
    // non-backtracking walk, whose interior step is uniform over the k-1
    // non-returning neighbors (see WalkType).
    const double normalizer =
        options.walk_type == WalkType::kSimple
            ? static_cast<double>(k - 1)
            : static_cast<double>(k);
    const double phick =
        phi_c[k] / (normalizer * static_cast<double>(r - 2));
    est.clustering[k] = phick / phi[k];
  }
  return est;
}

}  // namespace sgr
