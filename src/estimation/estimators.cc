#include "estimation/estimators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "exp/parallel.h"
#include "graph/csr_graph.h"
#include "util/sorted_keys.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sgr {

namespace {

/// One lazily-created worker pool per estimator invocation, shared by
/// every chunked loop of that invocation (the whole point of PoolFor:
/// one pool construction, many loops). Null when one worker suffices —
/// the loops then run inline.
std::unique_ptr<ThreadPool> MakeEstimatorPool(std::size_t threads) {
  const std::size_t workers = ResolveThreadCount(threads);
  if (workers <= 1) return nullptr;
  return std::make_unique<ThreadPool>(workers);
}

/// Chunked execution of the estimator pass. Every accumulation below is
/// split over the fixed kEstimatorChunkSize grid: workers score chunks
/// concurrently (each writing only its own partial slot), and the caller
/// reduces the partials in ascending chunk order. The grid depends only
/// on the element count, so the reduction order — and therefore every
/// double — is independent of the worker count; integer-valued partials
/// (collision counts, induced-edge counts, the clustering indicator) are
/// exact under any order on top of that. Does not own the pool.
class ChunkRunner {
 public:
  ChunkRunner(std::size_t count, ThreadPool* pool)
      : count_(count), pool_(pool) {}

  std::size_t NumChunks() const {
    return count_ == 0 ? 0 : (count_ - 1) / kEstimatorChunkSize + 1;
  }

  /// Calls fn(chunk, begin, end) for every chunk of [0, count), in
  /// parallel. `fn` must only write state owned by its chunk index.
  void Run(const std::function<void(std::size_t, std::size_t, std::size_t)>&
               fn) const {
    const std::size_t chunks = NumChunks();
    const auto body = [&](std::size_t c) {
      obs::Span chunk_span("estimate_chunk", "estimate");
      const std::size_t begin = c * kEstimatorChunkSize;
      const std::size_t end =
          std::min(count_, begin + kEstimatorChunkSize);
      fn(c, begin, end);
    };
    obs::MetricAdd("estimate.chunks", chunks);
    if (pool_ == nullptr || chunks <= 1) {
      for (std::size_t c = 0; c < chunks; ++c) body(c);
    } else {
      PoolFor(*pool_, chunks, body);
    }
  }

 private:
  std::size_t count_;
  ThreadPool* pool_;
};

/// Compact CSR snapshot of the crawled neighborhood. The sampling list
/// stores neighbors in per-node hash maps — convenient to build during the
/// crawl, but the estimator's inner loops (induced-edge counting and the
/// clustering indicator) perform O(Σ_i d(x_i)) lookups, and hash probes
/// dominate their runtime. The snapshot renumbers the queried nodes
/// densely, flattens their neighbor lists into offset + neighbor arrays
/// (sorted by original id, so adjacency tests are binary searches), and
/// pre-resolves each neighbor entry to its compact id once, so the hot
/// loops below are pure array traversals. The per-node fill + sort +
/// resolve loop runs chunked on the caller's shared worker pool
/// (disjoint slices per node, no floating point — exact for every
/// thread count).
struct CrawlCsr {
  static constexpr std::uint32_t kNotQueried =
      static_cast<std::uint32_t>(-1);

  std::vector<NodeId> original_id;     ///< compact -> original
  std::vector<std::size_t> offsets;    ///< per compact node, size q+1
  std::vector<NodeId> neighbors;       ///< original ids, sorted per node
  std::vector<std::uint32_t> compact_neighbors;  ///< aligned with neighbors
  std::vector<std::uint32_t> degree;   ///< per compact node
  std::unordered_map<NodeId, std::uint32_t> to_compact;  ///< original -> compact

  explicit CrawlCsr(const SamplingList& list, ThreadPool* pool = nullptr) {
    const std::size_t q = list.neighbors.size();
    original_id.reserve(q);
    to_compact.reserve(q * 2);
    // Compact ids in ascending original-id order: the numbering (and the
    // chunk partition derived from it) is portable across hash layouts.
    for (const NodeId u : SortedKeys(list.neighbors)) {
      to_compact.emplace(u, static_cast<std::uint32_t>(original_id.size()));
      original_id.push_back(u);
    }
    offsets.assign(q + 1, 0);
    for (std::size_t c = 0; c < q; ++c) {
      offsets[c + 1] =
          offsets[c] + list.neighbors.at(original_id[c]).size();
    }
    neighbors.resize(offsets[q]);
    compact_neighbors.resize(offsets[q]);
    degree.resize(q);
    const ChunkRunner runner(q, pool);
    runner.Run([&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t c = begin; c < end; ++c) {
        const std::vector<NodeId>& nbrs = list.neighbors.at(original_id[c]);
        degree[c] = static_cast<std::uint32_t>(nbrs.size());
        std::copy(nbrs.begin(), nbrs.end(), neighbors.begin() + offsets[c]);
        std::sort(neighbors.begin() + offsets[c],
                  neighbors.begin() + offsets[c + 1]);
        for (std::size_t e = offsets[c]; e < offsets[c + 1]; ++e) {
          auto it = to_compact.find(neighbors[e]);
          compact_neighbors[e] =
              it == to_compact.end() ? kNotQueried : it->second;
        }
      }
    });
  }

  /// True if `original` (an original id) is adjacent to compact node `c`.
  bool Adjacent(std::uint32_t c, NodeId original) const {
    return std::binary_search(neighbors.begin() + offsets[c],
                              neighbors.begin() + offsets[c + 1], original);
  }

  /// Number of distinct nodes seen anywhere in the crawl (queried nodes
  /// plus their neighbors) — the lower-bound fallback for n̂.
  std::size_t DistinctSeen() const {
    std::vector<NodeId> all(neighbors);
    all.insert(all.end(), original_id.begin(), original_id.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all.size();
  }
};

/// Lag threshold M = max(1, round(fraction * r)).
std::size_t LagThreshold(std::size_t r, double fraction) {
  const auto rounded = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(r)));
  return std::max<std::size_t>(1, rounded);
}

/// Positions of each node in the walk, sorted ascending.
std::unordered_map<NodeId, std::vector<std::size_t>> PositionsByNode(
    const std::vector<NodeId>& walk) {
  std::unordered_map<NodeId, std::vector<std::size_t>> positions;
  for (std::size_t i = 0; i < walk.size(); ++i) {
    positions[walk[i]].push_back(i);
  }
  return positions;
}

/// Number of ordered index pairs (i, j), i != j, with |i - j| >= M.
double CountOrderedPairs(std::size_t r, std::size_t m) {
  // Ordered pairs with |i-j| >= M: for each lag d in [M, r-1] there are
  // (r - d) unordered pairs, times 2 orientations.
  double total = 0.0;
  for (std::size_t d = m; d < r; ++d) {
    total += 2.0 * static_cast<double>(r - d);
  }
  return total;
}

/// Number of positions of `positions` inside the open window
/// (center - M, center + M); `positions` must be sorted.
std::size_t CountWithinWindow(const std::vector<std::size_t>& positions,
                              std::size_t center, std::size_t m) {
  const std::size_t lo = center >= m - 1 ? center - (m - 1) : 0;
  const std::size_t hi = center + (m - 1);  // inclusive
  auto first = std::lower_bound(positions.begin(), positions.end(), lo);
  auto last = std::upper_bound(positions.begin(), positions.end(), hi);
  return static_cast<std::size_t>(last - first);
}

/// Defined fallback for walks too short for the re-weighted machinery
/// (r < 3; including the empty list): plain small-sample statistics. The
/// interesting estimators all need lagged pairs (n̂) or interior positions
/// (ĉ̄), so visit frequencies are the best defined answer.
LocalEstimates SmallSampleEstimates(const SamplingList& list) {
  LocalEstimates est;
  const std::size_t r = list.Length();
  std::vector<NodeId> seen;
  for (const NodeId node : SortedKeys(list.neighbors)) {
    const std::vector<NodeId>& nbrs = list.neighbors.at(node);
    seen.push_back(node);
    seen.insert(seen.end(), nbrs.begin(), nbrs.end());
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  est.num_nodes = static_cast<double>(seen.size());
  if (r == 0) return est;  // empty list: zero estimates, empty dists

  std::size_t max_degree = 0;
  double degree_sum = 0.0;
  for (NodeId v : list.visit_sequence) {
    const std::size_t d = list.DegreeOf(v);
    max_degree = std::max(max_degree, d);
    degree_sum += static_cast<double>(d);
  }
  est.average_degree = degree_sum / static_cast<double>(r);
  est.degree_dist.assign(max_degree + 1, 0.0);
  for (NodeId v : list.visit_sequence) {
    est.degree_dist[list.DegreeOf(v)] += 1.0 / static_cast<double>(r);
  }
  est.clustering.assign(max_degree + 1, 0.0);
  return est;
}

}  // namespace

double EstimateAverageDegree(const SamplingList& list, std::size_t threads) {
  if (!list.is_walk || list.Length() == 0) return 0.0;
  const std::size_t r = list.Length();
  const std::unique_ptr<ThreadPool> pool =
      r > kEstimatorChunkSize ? MakeEstimatorPool(threads) : nullptr;
  const ChunkRunner runner(r, pool.get());
  std::vector<double> partial(runner.NumChunks(), 0.0);
  runner.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto degree =
          static_cast<double>(list.DegreeOf(list.visit_sequence[i]));
      if (degree > 0.0) sum += 1.0 / degree;
    }
    partial[chunk] = sum;
  });
  double inv_sum = 0.0;
  for (double p : partial) inv_sum += p;
  // A walk pinned to zero-degree nodes (only possible for hand-built
  // lists) has no finite harmonic mean; 0 is the documented sentinel.
  if (inv_sum <= 0.0) return 0.0;
  return static_cast<double>(r) / inv_sum;
}

namespace {

/// Shared implementation of the collision estimator; `pool` is the
/// caller's worker pool (null = inline), so EstimateLocalProperties can
/// reuse one pool across every chunked loop of a single estimate.
double EstimateNumNodesImpl(const SamplingList& list, double fallback,
                            const EstimatorOptions& options,
                            ThreadPool* pool) {
  if (!list.is_walk) return fallback;
  const std::size_t r = list.Length();
  if (r < 3) return fallback;
  const std::size_t m = LagThreshold(r, options.collision_threshold_fraction);
  const std::vector<NodeId>& walk = list.visit_sequence;

  // Denominator: ordered collision pairs at lag >= M, computed per node via
  // two-pointer over the sorted position list. The per-node counts are
  // integer-valued, so the chunked partial sums are exact in any order.
  const auto positions = PositionsByNode(walk);
  std::vector<const std::vector<std::size_t>*> position_lists;
  position_lists.reserve(positions.size());
  for (const NodeId node : SortedKeys(positions)) {
    position_lists.push_back(&positions.at(node));
  }
  const ChunkRunner node_runner(position_lists.size(), pool);
  std::vector<double> collision_partial(node_runner.NumChunks(), 0.0);
  node_runner.Run([&](std::size_t chunk, std::size_t begin,
                      std::size_t end) {
    double sum = 0.0;
    for (std::size_t n = begin; n < end; ++n) {
      const std::vector<std::size_t>& pos = *position_lists[n];
      // For each a, count b > a with pos[b] - pos[a] >= M (then double).
      std::size_t b = 0;
      for (std::size_t a = 0; a < pos.size(); ++a) {
        if (b < a + 1) b = a + 1;
        while (b < pos.size() && pos[b] - pos[a] < m) ++b;
        sum += 2.0 * static_cast<double>(pos.size() - b);
      }
    }
    collision_partial[chunk] = sum;
  });
  double collisions = 0.0;
  for (double p : collision_partial) collisions += p;
  if (collisions == 0.0) return fallback;

  // Numerator: sum over ordered far pairs of d_{x_i} / d_{x_j}
  //   = Σ_i d_{x_i} * (Σ_j 1/d_{x_j} - Σ_{j in window(i)} 1/d_{x_j}),
  // with the window handled by a prefix-sum array (serial O(r): a prefix
  // sum is inherently order-dependent) and the outer sum chunked.
  std::vector<double> inv_prefix(r + 1, 0.0);
  for (std::size_t i = 0; i < r; ++i) {
    const auto degree = static_cast<double>(list.DegreeOf(walk[i]));
    // Zero-degree entries (hand-built lists only) contribute no weight —
    // an infinite term here would turn the window subtraction below into
    // inf - inf = NaN.
    inv_prefix[i + 1] = inv_prefix[i] + (degree > 0.0 ? 1.0 / degree : 0.0);
  }
  const double inv_total = inv_prefix[r];
  const ChunkRunner walk_runner(r, pool);
  std::vector<double> numerator_partial(walk_runner.NumChunks(), 0.0);
  walk_runner.Run([&](std::size_t chunk, std::size_t begin,
                      std::size_t end) {
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t lo = i >= m - 1 ? i - (m - 1) : 0;
      const std::size_t hi = std::min(r - 1, i + (m - 1));
      const double window = inv_prefix[hi + 1] - inv_prefix[lo];
      sum += static_cast<double>(list.DegreeOf(walk[i])) *
             (inv_total - window);
    }
    numerator_partial[chunk] = sum;
  });
  double numerator = 0.0;
  for (double p : numerator_partial) numerator += p;
  return numerator / collisions;
}

}  // namespace

double EstimateNumNodes(const SamplingList& list, double fallback,
                        const EstimatorOptions& options) {
  const std::unique_ptr<ThreadPool> pool =
      list.Length() > kEstimatorChunkSize ? MakeEstimatorPool(options.threads)
                                          : nullptr;
  return EstimateNumNodesImpl(list, fallback, options, pool.get());
}

LocalEstimates EstimateLocalProperties(const SamplingList& list,
                                       const EstimatorOptions& options) {
  if (!list.is_walk) {
    throw std::invalid_argument(
        "EstimateLocalProperties: re-weighted estimators require a walk "
        "sample (list.is_walk); BFS/snowball/forest-fire crawls would "
        "yield biased estimates");
  }
  const std::size_t r = list.Length();
  if (r < 3) return SmallSampleEstimates(list);
  const std::vector<NodeId>& walk = list.visit_sequence;
  const std::size_t m = LagThreshold(r, options.collision_threshold_fraction);

  // One worker pool for the whole estimate: the CrawlCsr build, every
  // chunked pass below, and the embedded collision estimator all share
  // it (null = single-worker, fully inline). A walk within one chunk
  // has nothing to fan out — skip the pool entirely.
  const std::unique_ptr<ThreadPool> pool =
      r > kEstimatorChunkSize ? MakeEstimatorPool(options.threads) : nullptr;

  // Immutable snapshot of the crawled neighborhood; every lookup below is
  // an array access instead of a hash probe.
  const CrawlCsr crawl(list, pool.get());
  const ChunkRunner runner(r, pool.get());
  const std::size_t num_chunks = runner.NumChunks();
  std::vector<std::uint32_t> walk_compact(r);
  runner.Run([&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      walk_compact[i] = crawl.to_compact.at(walk[i]);
    }
  });
  auto degree_at = [&](std::size_t i) {
    return static_cast<std::size_t>(crawl.degree[walk_compact[i]]);
  };

  LocalEstimates est;

  // --- Degrees, Φ̄, Φ(k). One chunked pass collects, per chunk, the
  //     local maximum degree, the local degree histogram, and the local
  //     Φ̄ partial; the reduction walks the chunks in ascending order so
  //     the Φ̄ summation order is canonical. ---
  struct DegreeChunk {
    std::size_t max_degree = 0;
    std::vector<double> count;
    double phi_bar = 0.0;
  };
  std::vector<DegreeChunk> degree_chunks(num_chunks);
  runner.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    DegreeChunk& local = degree_chunks[chunk];
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t d = degree_at(i);
      local.max_degree = std::max(local.max_degree, d);
      if (d >= local.count.size()) local.count.resize(d + 1, 0.0);
      local.count[d] += 1.0;
      if (d > 0) local.phi_bar += 1.0 / static_cast<double>(d);
    }
  });
  std::size_t max_degree = 0;
  for (const DegreeChunk& local : degree_chunks) {
    max_degree = std::max(max_degree, local.max_degree);
  }
  std::vector<double> degree_count(max_degree + 1, 0.0);
  double phi_bar = 0.0;
  for (const DegreeChunk& local : degree_chunks) {
    for (std::size_t d = 0; d < local.count.size(); ++d) {
      degree_count[d] += local.count[d];
    }
    phi_bar += local.phi_bar;
  }
  phi_bar /= static_cast<double>(r);
  // A zero-edge crawl (every queried node isolated — hand-built lists
  // only) admits no re-weighting at all; fall back to the defined
  // small-sample statistics instead of dividing by zero.
  if (phi_bar <= 0.0) return SmallSampleEstimates(list);
  est.average_degree = 1.0 / phi_bar;

  std::vector<double> phi(max_degree + 1, 0.0);
  for (std::size_t k = 1; k <= max_degree; ++k) {
    phi[k] = degree_count[k] /
             (static_cast<double>(k) * static_cast<double>(r));
  }
  est.degree_dist.assign(max_degree + 1, 0.0);
  for (std::size_t k = 1; k <= max_degree; ++k) {
    est.degree_dist[k] = phi[k] / phi_bar;
  }

  // --- Number of nodes (fallback: number of distinct nodes seen, a lower
  //     bound available from the sampling list itself). ---
  est.num_nodes = EstimateNumNodesImpl(
      list, static_cast<double>(crawl.DistinctSeen()), options, pool.get());

  // --- Joint degree distribution: hybrid of IE and TE (Section III-E). ---
  // TE: traversed edges (consecutive walk pairs, pair (i, i+1) owned by
  // the chunk of its left index). Per-chunk sparse accumulators are
  // merged in ascending chunk order, so each class's weight sum has a
  // canonical order.
  std::vector<std::unordered_map<std::uint64_t, double>> te_chunks(
      num_chunks);
  runner.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    std::unordered_map<std::uint64_t, double>& local = te_chunks[chunk];
    for (std::size_t i = begin; i < std::min(end, r - 1); ++i) {
      const auto k = static_cast<std::uint32_t>(degree_at(i));
      const auto kp = static_cast<std::uint32_t>(degree_at(i + 1));
      // Both indicator terms of P̂TE fire for (k, k') and for (k', k); each
      // consecutive pair contributes 1/(2(r-1)) to each ordering (twice
      // that on the diagonal).
      const double w = 1.0 / (2.0 * static_cast<double>(r - 1));
      if (k == kp) {
        local[DegreePairKey(k, kp)] += 2.0 * w;
      } else {
        local[DegreePairKey(k, kp)] += w;
        local[DegreePairKey(kp, k)] += w;
      }
    }
  });
  std::unordered_map<std::uint64_t, double> te;
  for (const auto& local : te_chunks) {
    for (const auto& [key, value] : local) te[key] += value;
  }

  // IE: induced edges among far-apart walk positions. For each position i
  // and each neighbor w of x_i that occurs in the walk at lag >= M, count 1
  // (A_{x_i, x_j} = 1 exactly when x_j is a neighbor of x_i; originals are
  // simple). Grouped per (d(x_i), d(w)) class. The counts are integers,
  // so the chunked merge is exact in any order.
  //
  // Walk positions per compact node id (only walk nodes get entries; a
  // queried-but-never-visited node, as Metropolis-Hastings produces, has
  // an empty list).
  std::vector<std::vector<std::size_t>> positions(crawl.degree.size());
  for (std::size_t i = 0; i < r; ++i) {
    positions[walk_compact[i]].push_back(i);
  }
  std::vector<std::unordered_map<std::uint64_t, double>> ie_chunks(
      num_chunks);
  runner.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    std::unordered_map<std::uint64_t, double>& local = ie_chunks[chunk];
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t u = walk_compact[i];
      for (std::size_t e = crawl.offsets[u]; e < crawl.offsets[u + 1];
           ++e) {
        const std::uint32_t w = crawl.compact_neighbors[e];
        if (w == CrawlCsr::kNotQueried) continue;
        const std::vector<std::size_t>& pos = positions[w];
        if (pos.empty()) continue;
        const std::size_t within = CountWithinWindow(pos, i, m);
        const std::size_t far = pos.size() - within;
        if (far == 0) continue;
        const auto k = static_cast<std::uint32_t>(crawl.degree[u]);
        const auto kp = static_cast<std::uint32_t>(crawl.degree[w]);
        local[DegreePairKey(k, kp)] += static_cast<double>(far);
      }
    }
  });
  std::unordered_map<std::uint64_t, double> ie_counts;
  for (const auto& local : ie_chunks) {
    for (const auto& [key, count] : local) ie_counts[key] += count;
  }
  const double num_pairs = CountOrderedPairs(r, m);
  SparseJointDist ie;
  for (const std::uint64_t key : SortedKeys(ie_counts)) {
    const double count = ie_counts.at(key);
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    const double phi_kkp = count / (static_cast<double>(k) *
                                    static_cast<double>(kp) * num_pairs);
    // ie_counts already contains both orderings (the i/w loop sees each
    // unordered far pair twice, once from each side), so set, not add.
    ie.SetSymmetric(k, kp,
                    est.num_nodes * est.average_degree * phi_kkp);
  }

  // Hybrid: IE for k + k' >= 2 k̂̄ (high-degree pairs, where induced edges
  // are plentiful), TE below the threshold (where the walk itself samples
  // edges without bias).
  const auto te_at = [&te](std::uint32_t k, std::uint32_t kp) {
    const auto it = te.find(DegreePairKey(k, kp));
    return it == te.end() ? 0.0 : it->second;
  };
  const double threshold = 2.0 * est.average_degree;
  std::vector<std::uint64_t> keys = SortedKeys(te);
  {
    const std::vector<std::uint64_t> ie_keys = SortedKeys(ie.values());
    keys.insert(keys.end(), ie_keys.begin(), ie_keys.end());
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  for (const std::uint64_t key : keys) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    if (k > kp) continue;  // handle each unordered pair once
    double value = 0.0;
    switch (options.joint_mode) {
      case JointEstimatorMode::kHybrid:
        value = (static_cast<double>(k) + static_cast<double>(kp) >=
                 threshold)
                    ? ie.At(k, kp)
                    : te_at(k, kp);
        break;
      case JointEstimatorMode::kInducedEdgesOnly:
        value = ie.At(k, kp);
        break;
      case JointEstimatorMode::kTraversedEdgesOnly:
        value = te_at(k, kp);
        break;
    }
    if (value > 0.0) est.joint_dist.SetSymmetric(k, kp, value);
  }

  // --- Degree-dependent clustering ĉ̄(k) = Φ_c(k) / Φ(k). ---
  // Φ_c(k) = 1/((k-1)(r-2)) Σ_{i=2}^{r-1} 1{d(x_i)=k} A_{x_{i-1}, x_{i+1}}.
  // The indicator sum is integer-valued per degree class, so the chunked
  // histogram merge is exact.
  std::vector<std::vector<double>> phi_c_chunks(num_chunks);
  runner.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    std::vector<double>& local = phi_c_chunks[chunk];
    for (std::size_t i = std::max<std::size_t>(begin, 1);
         i < std::min(end, r - 1); ++i) {
      const NodeId next = walk[i + 1];
      if (walk[i - 1] == next) continue;  // A_vv = 0 in a simple graph
      if (crawl.Adjacent(walk_compact[i - 1], next)) {
        const std::size_t d = degree_at(i);
        if (d >= local.size()) local.resize(d + 1, 0.0);
        local[d] += 1.0;
      }
    }
  });
  std::vector<double> phi_c(max_degree + 1, 0.0);
  for (const std::vector<double>& local : phi_c_chunks) {
    for (std::size_t d = 0; d < local.size(); ++d) phi_c[d] += local[d];
  }
  est.clustering.assign(max_degree + 1, 0.0);
  for (std::size_t k = 2; k <= max_degree; ++k) {
    if (phi[k] <= 0.0) continue;
    // Normalizer: k-1 for a simple walk (Hardiman & Katzir), k for a
    // non-backtracking walk, whose interior step is uniform over the k-1
    // non-returning neighbors (see WalkType).
    const double normalizer =
        options.walk_type == WalkType::kSimple
            ? static_cast<double>(k - 1)
            : static_cast<double>(k);
    const double phick =
        phi_c[k] / (normalizer * static_cast<double>(r - 2));
    est.clustering[k] = phick / phi[k];
  }
  return est;
}

}  // namespace sgr
