#ifndef SGR_ESTIMATION_ESTIMATES_H_
#define SGR_ESTIMATION_ESTIMATES_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/sorted_keys.h"

namespace sgr {

/// Packs an ordered degree pair (k, k') into a 64-bit map key.
inline std::uint64_t DegreePairKey(std::uint32_t k, std::uint32_t k_prime) {
  return (static_cast<std::uint64_t>(k) << 32) | k_prime;
}

/// Symmetric sparse matrix over degree pairs with double values, used for
/// the estimated joint degree distribution P̂(k, k'). Both (k, k') and
/// (k', k) orderings are stored so lookups are O(1) either way.
class SparseJointDist {
 public:
  /// Returns P̂(k, k') (0 when absent).
  double At(std::uint32_t k, std::uint32_t k_prime) const {
    auto it = values_.find(DegreePairKey(k, k_prime));
    return it == values_.end() ? 0.0 : it->second;
  }

  /// Sets P̂(k, k') = P̂(k', k) = value.
  void SetSymmetric(std::uint32_t k, std::uint32_t k_prime, double value) {
    values_[DegreePairKey(k, k_prime)] = value;
    values_[DegreePairKey(k_prime, k)] = value;
  }

  /// Adds `delta` to both orderings (single entry when k == k').
  void AddSymmetric(std::uint32_t k, std::uint32_t k_prime, double delta) {
    values_[DegreePairKey(k, k_prime)] += delta;
    if (k != k_prime) values_[DegreePairKey(k_prime, k)] += delta;
  }

  /// Raw storage: key -> value, both orderings present.
  const std::unordered_map<std::uint64_t, double>& values() const {
    return values_;
  }

  /// Σ_k Σ_k' P̂(k, k') over all ordered pairs: equals 1 for a normalized
  /// joint degree distribution (Eq. (3): the µ factor makes the full
  /// double sum — not the unordered one — normalize to 1). Summed in key
  /// order so the FP result does not depend on hash layout.
  double TotalMass() const {
    double total = 0.0;
    for (const std::uint64_t key : SortedKeys(values_)) {
      total += values_.at(key);
    }
    return total;
  }

 private:
  std::unordered_map<std::uint64_t, double> values_;
};

/// Estimates of the five local structural properties obtained by
/// re-weighted random walk (Section III-E). These are the inputs of both
/// the proposed method and the Gjoka et al. baseline.
struct LocalEstimates {
  /// Estimated number of nodes n̂ (collision estimator).
  double num_nodes = 0.0;

  /// Estimated average degree k̂̄ = 1 / Φ̄.
  double average_degree = 0.0;

  /// Estimated degree distribution: degree_dist[k] = P̂(k),
  /// k in [0, degree_dist.size()). Entry 0 is always 0 (graphs are
  /// connected, so no isolated nodes are sampled).
  std::vector<double> degree_dist;

  /// Estimated joint degree distribution P̂(k, k') (hybrid IE/TE).
  SparseJointDist joint_dist;

  /// Estimated degree-dependent clustering coefficient:
  /// clustering[k] = ĉ̄(k); ĉ̄(1) = 0 by definition.
  std::vector<double> clustering;

  /// Largest degree with P̂(k) > 0.
  std::uint32_t MaxDegreeWithMass() const {
    for (std::size_t k = degree_dist.size(); k > 0; --k) {
      if (degree_dist[k - 1] > 0.0) return static_cast<std::uint32_t>(k - 1);
    }
    return 0;
  }

  /// Immediate (pre-rounding) estimate n̂(k) = n̂ · P̂(k) of the number of
  /// nodes with degree k (Section IV-B).
  double EstimatedNodeCount(std::uint32_t k) const {
    if (k >= degree_dist.size()) return 0.0;
    return num_nodes * degree_dist[k];
  }

  /// Immediate estimate m̂(k, k') = n̂ k̂̄ P̂(k, k') / µ(k, k') of the number
  /// of edges between degree classes (Section IV-C).
  double EstimatedEdgeCount(std::uint32_t k, std::uint32_t k_prime) const {
    const double mu = (k == k_prime) ? 2.0 : 1.0;
    return num_nodes * average_degree * joint_dist.At(k, k_prime) / mu;
  }

  /// Estimated network clustering coefficient ĉ̄ = Σ_k P̂(k) ĉ̄(k): the
  /// degree-distribution-weighted mean of the per-class estimates, matching
  /// the definition c̄ = (1/n) Σ_i 2 t_i / (d_i (d_i − 1)) grouped by
  /// degree (property (5) of Section V-B).
  double EstimatedGlobalClustering() const {
    double total = 0.0;
    const std::size_t size =
        std::min(degree_dist.size(), clustering.size());
    for (std::size_t k = 2; k < size; ++k) {
      total += degree_dist[k] * clustering[k];
    }
    return total;
  }
};

}  // namespace sgr

#endif  // SGR_ESTIMATION_ESTIMATES_H_
