#ifndef SGR_UTIL_RNG_H_
#define SGR_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace sgr {

/// Deterministic pseudo-random number generator used throughout the library.
///
/// A thin wrapper around std::mt19937_64 with convenience draws for the
/// patterns the sampling and restoration algorithms need (uniform index,
/// uniform real, geometric burst size, reservoir-style choice). A fixed seed
/// makes every experiment in the benchmark harness reproducible run-to-run.
class Rng {
 public:
  /// Creates a generator seeded with `seed`.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) : engine_(seed) {}

  /// Returns a uniformly random integer in [0, bound). `bound` must be > 0.
  std::size_t NextIndex(std::size_t bound);

  /// Returns a uniformly random integer in [lo, hi] (inclusive).
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Returns a uniformly random real in [0, 1).
  double NextReal();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns a draw from a geometric distribution with success probability
  /// `p` (support {0, 1, 2, ...}, mean (1-p)/p). Used by forest-fire
  /// sampling where the paper draws a burst size with mean pf/(1-pf).
  std::size_t NextGeometric(double p);

  /// Returns a uniformly random element of `items`. `items` must be
  /// non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[NextIndex(items.size())];
  }

  /// Exposes the underlying engine for std::shuffle and distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sgr

#endif  // SGR_UTIL_RNG_H_
