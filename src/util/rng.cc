#include "util/rng.h"

#include <cassert>

namespace sgr {

std::size_t Rng::NextIndex(std::size_t bound) {
  assert(bound > 0 && "NextIndex requires a positive bound");
  std::uniform_int_distribution<std::size_t> dist(0, bound - 1);
  return dist(engine_);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextReal() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextReal() < p;
}

std::size_t Rng::NextGeometric(double p) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return 0;
  std::geometric_distribution<std::size_t> dist(p);
  return dist(engine_);
}

}  // namespace sgr
