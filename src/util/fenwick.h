#ifndef SGR_UTIL_FENWICK_H_
#define SGR_UTIL_FENWICK_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace sgr {

/// Fenwick (binary indexed) tree over non-negative integer counts.
///
/// Supports point updates, prefix sums, and O(log n) sampling of an index
/// proportional to its count. The restoration pipeline uses it to draw a
/// target degree uniformly from the multiset Dseq(i) in Algorithm 2 without
/// materializing the multiset (which would be O(k*_max) per visible node).
class FenwickTree {
 public:
  /// Creates a tree over indices [0, size).
  explicit FenwickTree(std::size_t size) : tree_(size + 1, 0), total_(0) {}

  /// Number of indices covered.
  std::size_t size() const { return tree_.size() - 1; }

  /// Adds `delta` to the count at `index`. The resulting count must remain
  /// non-negative (checked in debug builds via the running total).
  void Add(std::size_t index, std::int64_t delta) {
    assert(index < size());
    total_ += delta;
    assert(total_ >= 0);
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Returns the sum of counts over [0, index] (inclusive).
  std::int64_t PrefixSum(std::size_t index) const {
    if (tree_.empty()) return 0;
    if (index >= size()) index = size() - 1;
    std::int64_t sum = 0;
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  /// Returns the sum of counts over [lo, hi] (inclusive). Empty if lo > hi.
  std::int64_t RangeSum(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return 0;
    std::int64_t below = (lo == 0) ? 0 : PrefixSum(lo - 1);
    return PrefixSum(hi) - below;
  }

  /// Total of all counts.
  std::int64_t Total() const { return total_; }

  /// Returns the smallest index whose prefix sum is strictly greater than
  /// `target`. Requires 0 <= target < Total(). With counts c[i], passing a
  /// uniform target selects index i with probability c[i] / Total().
  std::size_t FindByPrefix(std::int64_t target) const {
    assert(target >= 0 && target < total_);
    std::size_t pos = 0;
    std::size_t mask = HighestPow2(tree_.size() - 1);
    std::int64_t remaining = target;
    while (mask > 0) {
      std::size_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= remaining) {
        pos = next;
        remaining -= tree_[next];
      }
      mask >>= 1;
    }
    return pos;  // pos is 0-based index (tree is 1-based internally).
  }

 private:
  static std::size_t HighestPow2(std::size_t n) {
    std::size_t p = 1;
    while (p * 2 <= n) p *= 2;
    return n == 0 ? 0 : p;
  }

  std::vector<std::int64_t> tree_;
  std::int64_t total_;
};

}  // namespace sgr

#endif  // SGR_UTIL_FENWICK_H_
