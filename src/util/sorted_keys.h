#ifndef SGR_UTIL_SORTED_KEYS_H_
#define SGR_UTIL_SORTED_KEYS_H_

#include <algorithm>
#include <utility>
#include <vector>

namespace sgr {

namespace internal {
// unordered_map yields a pair; unordered_set yields the key itself.
template <typename K, typename V>
const K& KeyOf(const std::pair<const K, V>& entry) {
  return entry.first;
}
template <typename K>
const K& KeyOf(const K& entry) {
  return entry;
}
}  // namespace internal

/// Keys of an associative container in ascending order — THE way to
/// iterate an unordered_map/unordered_set when anything order-dependent
/// (id assignment, emission, FP accumulation) hangs off the loop. Central
/// so the one sanctioned hash-order traversal lives in an audited place
/// whose output is order-free; a raw range-for over a hash map elsewhere
/// gets flagged by sgr-check's unordered-iter rule.
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& entry : map) keys.push_back(internal::KeyOf(entry));
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace sgr

#endif  // SGR_UTIL_SORTED_KEYS_H_
