#ifndef SGR_UTIL_TIMER_H_
#define SGR_UTIL_TIMER_H_

#include <chrono>

namespace sgr {

/// Wall-clock stopwatch used by the experiment runner to report generation
/// times (Table IV / Table V of the paper).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sgr

#endif  // SGR_UTIL_TIMER_H_
