#include "util/srccheck.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace sgr {

namespace {

// ---------------------------------------------------------------------------
// Lexer: C++ source to a token stream plus the sgr-check annotations found
// in comments. Strings, character literals, raw strings, comments, and
// preprocessor directives never produce tokens, so "rand()" in a string or
// a comment cannot trip a rule.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  std::size_t line = 0;
  std::size_t column = 0;
  bool is_ident = false;
};

/// An allow annotation as found by the lexer, before suppression matching.
struct RawAllow {
  std::size_t line = 0;
  std::string rule;
  std::string reason;
};

/// Multi-character punctuators the matchers care about. Order matters:
/// longest first so "::" never lexes as two ":".
const char* const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=", "|=", "^=", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  void Run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        Advance();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        LexLineComment();
      } else if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
      } else if (c == '#' && at_line_start_) {
        LexPreprocessor();
      } else if (c == '"') {
        LexString();
      } else if (c == '\'') {
        LexChar();
      } else if (c == 'R' && Peek(1) == '"') {
        LexRawString();
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexIdent();
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' &&
                  std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        LexNumber();
      } else {
        LexPunct();
      }
    }
  }

  std::vector<Token> tokens;
  std::vector<RawAllow> allows;

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
      at_line_start_ = true;
    } else {
      ++column_;
      if (!std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        at_line_start_ = false;
      }
    }
    ++pos_;
  }

  void Emit(std::size_t start, std::size_t start_col, bool is_ident) {
    tokens.push_back(Token{text_.substr(start, pos_ - start), line_,
                           start_col, is_ident});
  }

  void LexLineComment() {
    const std::size_t start = pos_;
    const std::size_t comment_line = line_;
    while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
    ParseAllow(text_.substr(start, pos_ - start), comment_line);
  }

  void LexBlockComment() {
    const std::size_t start = pos_;
    const std::size_t comment_line = line_;
    Advance();  // '/'
    Advance();  // '*'
    while (pos_ < text_.size() &&
           !(text_[pos_] == '*' && Peek(1) == '/')) {
      Advance();
    }
    if (pos_ < text_.size()) {
      Advance();
      Advance();
    }
    ParseAllow(text_.substr(start, pos_ - start), comment_line);
  }

  /// Extracts `sgr-check: allow(<rule>) <reason>` from a comment's text.
  /// The marker must be the first thing in the comment (after the
  /// `//`/`/*` lead-in), so prose that merely mentions the syntax — this
  /// doc comment, say — is not an annotation.
  void ParseAllow(const std::string& comment, std::size_t comment_line) {
    std::size_t at = 0;
    while (at < comment.size() &&
           (comment[at] == '/' || comment[at] == '*' ||
            comment[at] == '!')) {
      ++at;
    }
    while (at < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[at]))) {
      ++at;
    }
    const std::string marker = "sgr-check: allow(";
    if (comment.compare(at, marker.size(), marker) != 0) return;
    const std::size_t rule_begin = at + marker.size();
    const std::size_t rule_end = comment.find(')', rule_begin);
    if (rule_end == std::string::npos) return;
    std::string reason = comment.substr(rule_end + 1);
    const auto strip = [](std::string& s) {
      while (!s.empty() &&
             std::isspace(static_cast<unsigned char>(s.front()))) {
        s.erase(s.begin());
      }
      while (!s.empty() &&
             (std::isspace(static_cast<unsigned char>(s.back())) ||
              s.back() == '/' || s.back() == '*')) {
        s.pop_back();
      }
    };
    strip(reason);
    allows.push_back(RawAllow{comment_line,
                              comment.substr(rule_begin,
                                             rule_end - rule_begin),
                              reason});
  }

  /// Skips a preprocessor directive (with backslash continuations). An
  /// `#include` or `#define` body must not leak tokens into the rules.
  void LexPreprocessor() {
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\\' && Peek(1) == '\n') {
        Advance();
        Advance();
        continue;
      }
      if (text_[pos_] == '\n') break;
      Advance();
    }
  }

  void LexString() {
    Advance();  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) Advance();
      Advance();
    }
    if (pos_ < text_.size()) Advance();  // closing quote
  }

  void LexChar() {
    Advance();  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) Advance();
      Advance();
    }
    if (pos_ < text_.size()) Advance();
  }

  void LexRawString() {
    Advance();  // 'R'
    Advance();  // '"'
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') {
      delim += text_[pos_];
      Advance();
    }
    const std::string close = ")" + delim + "\"";
    while (pos_ < text_.size() &&
           text_.compare(pos_, close.size(), close) != 0) {
      Advance();
    }
    for (std::size_t i = 0; i < close.size() && pos_ < text_.size(); ++i) {
      Advance();
    }
  }

  void LexIdent() {
    const std::size_t start = pos_;
    const std::size_t start_col = column_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      Advance();
    }
    Emit(start, start_col, true);
  }

  void LexNumber() {
    const std::size_t start = pos_;
    const std::size_t start_col = column_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '\'') {
        Advance();
      } else if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          Advance();
        } else {
          break;
        }
      } else {
        break;
      }
    }
    Emit(start, start_col, false);
  }

  void LexPunct() {
    const std::size_t start = pos_;
    const std::size_t start_col = column_;
    for (const char* punct : kPuncts) {
      const std::size_t n = std::char_traits<char>::length(punct);
      if (text_.compare(pos_, n, punct) == 0) {
        for (std::size_t i = 0; i < n; ++i) Advance();
        Emit(start, start_col, false);
        return;
      }
    }
    Advance();
    Emit(start, start_col, false);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
  bool at_line_start_ = true;
};

// ---------------------------------------------------------------------------
// Path predicates: rule exemptions match on path components / suffixes so
// "src/obs/trace.cc" and "/abs/repo/src/obs/trace.cc" behave identically.
// ---------------------------------------------------------------------------

std::string NormalizePath(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool PathHasComponent(const std::string& path, const std::string& dir) {
  const std::string p = NormalizePath(path);
  std::size_t begin = 0;
  while (begin <= p.size()) {
    const std::size_t end = p.find('/', begin);
    const std::string component =
        p.substr(begin, end == std::string::npos ? std::string::npos
                                                 : end - begin);
    if (component == dir) return true;
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return false;
}

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  const std::string p = NormalizePath(path);
  if (p.size() < suffix.size()) return false;
  if (p.compare(p.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  // Suffix must start at a component boundary: "exp/runner.cc" must not
  // match "myexp/runner.cc".
  const std::size_t at = p.size() - suffix.size();
  return at == 0 || p[at - 1] == '/';
}

bool InObs(const std::string& path) { return PathHasComponent(path, "obs"); }

bool IsRunnerEntryPoint(const std::string& path) {
  return PathEndsWith(path, "exp/runner.cc") ||
         PathEndsWith(path, "exp/datasets.cc");
}

bool IsSanctionedRngHome(const std::string& path) {
  return PathEndsWith(path, "util/rng.h") ||
         PathEndsWith(path, "util/rng.cc") ||
         PathEndsWith(path, "exp/parallel.h") ||
         PathEndsWith(path, "exp/parallel.cc");
}

bool IsDoubleOnlyLayer(const std::string& path) {
  return PathHasComponent(path, "analysis") ||
         PathHasComponent(path, "estimation") ||
         PathHasComponent(path, "restore") ||
         PathHasComponent(path, "dk");
}

bool Contains(const std::vector<std::string>& names,
              const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

void AddUnique(std::vector<std::string>& names, const std::string& name) {
  if (!Contains(names, name)) names.push_back(name);
}

const std::unordered_set<std::string>& RawRngNames() {
  static const auto* names = new std::unordered_set<std::string>{
      "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
      "ranlux48_base", "knuth_b", "subtract_with_carry_engine",
      "linear_congruential_engine", "mersenne_twister_engine",
  };
  return *names;
}

const std::unordered_set<std::string>& UnorderedTypeNames() {
  static const auto* names = new std::unordered_set<std::string>{
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset",
  };
  return *names;
}

bool IsDeclKeyword(const std::string& text) {
  static const auto* keywords = new std::unordered_set<std::string>{
      "using",  "typedef", "template", "static_assert", "friend",
      "namespace", "class", "struct", "enum", "union", "extern",
      "public", "private", "protected",
  };
  return keywords->count(text) > 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// FileLinter: runs every rule over one file's token stream.
// ---------------------------------------------------------------------------

class FileLinter {
 public:
  FileLinter(SourceChecker& checker, std::string path,
             const std::string& content)
      : checker_(checker), path_(std::move(path)), lexer_(content) {
    lexer_.Run();
  }

  /// Pass 1: registers names declared with unordered container types.
  void CollectDeclarations() {
    const std::vector<Token>& t = lexer_.tokens;
    // Aliases first: `using NAME = ...unordered_...<...>...;`
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (t[i].text != "using" || !t[i + 1].is_ident ||
          t[i + 2].text != "=") {
        continue;
      }
      for (std::size_t j = i + 3;
           j < t.size() && t[j].text != ";"; ++j) {
        if (UnorderedTypeNames().count(t[j].text) > 0) {
          AddUnique(checker_.alias_unordered_, t[i + 1].text);
          break;
        }
      }
    }
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (UnorderedTypeNames().count(t[i].text) == 0 &&
          !Contains(checker_.alias_unordered_, t[i].text)) {
        continue;
      }
      // Skip the alias definition itself.
      if (i >= 2 && t[i - 2].text == "using" && t[i - 1].text == "=") {
        continue;
      }
      RegisterDeclarator(i);
    }
  }

  /// Pass 2: all rules.
  void Lint() {
    LintBannedIdentifiers();
    LintGlobalState();
    LintUnorderedLoops();
    ResolveAllows();
  }

 private:
  const std::vector<Token>& Tokens() const { return lexer_.tokens; }

  void Report(const Token& at, const std::string& rule,
              const std::string& message) {
    CheckDiagnostic diag;
    diag.file = path_;
    diag.line = at.line;
    diag.column = at.column;
    diag.rule = rule;
    diag.message = message;
    // Escape hatch: an allow for this rule on the same line or the line
    // directly above suppresses the finding (and is counted as used).
    for (RawAllow& allow : lexer_.allows) {
      if (allow.rule != rule) continue;
      if (allow.line != diag.line && allow.line + 1 != diag.line) continue;
      for (CheckAllow& recorded : checker_.pending_allows_) {
        if (recorded.file == path_ && recorded.line == allow.line &&
            recorded.rule == allow.rule) {
          ++recorded.suppressed;
          return;
        }
      }
      return;  // unreachable: every allow is pre-recorded below
    }
    // Baseline: `<path>:<rule>` entries grandfather existing findings.
    for (auto& entry : checker_.baseline_) {
      if (entry.rule == rule && PathEndsWith(path_, entry.path)) {
        entry.used = true;
        checker_.result_.grandfathered.push_back(std::move(diag));
        return;
      }
    }
    checker_.result_.violations.push_back(std::move(diag));
  }

  /// Records every annotation up front so unused ones can be reported.
  void ResolveAllows() {}

 public:
  void PreRecordAllows() {
    for (const RawAllow& allow : lexer_.allows) {
      CheckAllow recorded;
      recorded.file = path_;
      recorded.line = allow.line;
      recorded.rule = allow.rule;
      recorded.reason = allow.reason;
      checker_.pending_allows_.push_back(std::move(recorded));
    }
  }

 private:
  // -- Rule group 1/4/5: banned identifier matchers. ------------------------

  bool PrecededByMemberAccess(std::size_t i) const {
    const std::vector<Token>& t = Tokens();
    if (i == 0) return false;
    if (t[i - 1].text == "." || t[i - 1].text == "->") return true;
    // `foo::rand(` is someone else's rand; `std::rand(` is the banned one.
    if (t[i - 1].text == "::") {
      return !(i >= 2 && t[i - 2].text == "std");
    }
    return false;
  }

  void LintBannedIdentifiers() {
    const std::vector<Token>& t = Tokens();
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!t[i].is_ident) continue;
      const std::string& name = t[i].text;
      const bool called =
          i + 1 < t.size() && t[i + 1].text == "(";

      if ((name == "rand" || name == "srand") && called &&
          !PrecededByMemberAccess(i)) {
        Report(t[i], "nondet-random",
               name + "() seeds from process entropy; derive an Rng via "
                      "DeriveSeed/DeriveRoundSeed (util/rng, exp/parallel)");
      } else if (name == "random_device" && !PrecededByMemberAccess(i)) {
        Report(t[i], "nondet-random",
               "std::random_device is nondeterministic by design; all "
               "randomness must be a pure function of (seed, index)");
      } else if ((name == "time" || name == "clock") && called &&
                 !PrecededByMemberAccess(i) && !InObs(path_)) {
        Report(t[i], "nondet-clock",
               name + "() reads the wall clock; the single sanctioned "
                      "clock is obs/timer.h");
      } else if ((name == "system_clock" || name == "steady_clock" ||
                  name == "high_resolution_clock") &&
                 !InObs(path_)) {
        Report(t[i], "nondet-clock",
               "std::chrono::" + name +
                   " outside obs/; route timing through obs/timer.h "
                   "(Timer, SteadyNowMicros)");
      } else if (name == "getenv" && !PrecededByMemberAccess(i) &&
                 !IsRunnerEntryPoint(path_)) {
        Report(t[i], "nondet-env",
               "getenv outside the runner entry points (exp/runner.cc, "
               "exp/datasets.cc) makes library behavior depend on ambient "
               "state the report does not echo");
      } else if (RawRngNames().count(name) > 0 &&
                 !IsSanctionedRngHome(path_)) {
        Report(t[i], "raw-rng",
               "direct std::" + name +
                   " outside util/rng and exp/parallel bypasses the "
                   "DeriveSeed/DeriveRoundSeed scheme");
      } else if (name == "float" && IsDoubleOnlyLayer(path_)) {
        Report(t[i], "float-drift",
               "float in analysis/estimation/restore/dk code; the "
               "FP-summation-shape contract is double-only");
      }
    }
  }

  // -- Rule 3: hidden shared state. -----------------------------------------

  enum class ScopeKind { kNamespace, kClass, kFunction, kInit };

  /// Tracks scopes by classifying every `{`; flags non-const variables at
  /// namespace scope and non-const `static` locals at function scope.
  void LintGlobalState() {
    const std::vector<Token>& t = Tokens();
    std::vector<ScopeKind> scopes{ScopeKind::kNamespace};
    bool pending_class_head = false;
    std::size_t i = 0;
    while (i < t.size()) {
      const std::string& text = t[i].text;
      if (text == "class" || text == "struct" || text == "union" ||
          text == "enum") {
        // Not a class head inside template parameter lists (`template
        // <class T>`) — approximated by the preceding token.
        if (i == 0 || (t[i - 1].text != "<" && t[i - 1].text != "," &&
                       t[i - 1].text != "typename")) {
          pending_class_head = true;
        }
        ++i;
        continue;
      }
      if (text == ";" || text == ")") {
        pending_class_head = false;  // fwd declaration / parameter type
        ++i;
        continue;
      }
      if (text == "{") {
        scopes.push_back(ClassifyBrace(i, pending_class_head, scopes));
        pending_class_head = false;
        ++i;
        continue;
      }
      if (text == "}") {
        if (scopes.size() > 1) scopes.pop_back();
        ++i;
        continue;
      }
      if (scopes.back() == ScopeKind::kNamespace) {
        i = ClassifyNamespaceStatement(i);
        continue;
      }
      if (scopes.back() == ScopeKind::kFunction &&
          (text == "static" || text == "thread_local")) {
        i = ClassifyStaticLocal(i);
        continue;
      }
      ++i;
    }
  }

  ScopeKind ClassifyBrace(std::size_t brace, bool pending_class_head,
                          const std::vector<ScopeKind>& scopes) const {
    const std::vector<Token>& t = Tokens();
    // `namespace [A[::B]] {`
    std::size_t j = brace;
    while (j > 0 && (t[j - 1].is_ident || t[j - 1].text == "::")) --j;
    if (j > 0 && t[j - 1].text == "namespace") return ScopeKind::kNamespace;
    if (j > 1 && t[j - 1].is_ident == false) {
      // fallthrough — handled below
    }
    if (pending_class_head) return ScopeKind::kClass;
    if (brace > 0) {
      const std::string& prev = t[brace - 1].text;
      // Function bodies follow `)` (possibly through const/noexcept/
      // override/trailing-return) or a lambda introducer, or else/do/try.
      if (prev == ")" || prev == "]" || prev == "else" || prev == "do" ||
          prev == "try" || prev == "const" || prev == "noexcept" ||
          prev == "override" || prev == "final" || prev == "mutable") {
        return ScopeKind::kFunction;
      }
      if (prev == "=" || prev == "," || prev == "(" || prev == "{" ||
          prev == "return") {
        return ScopeKind::kInit;
      }
      // Trailing return type: `) -> Type {`.
      if (t[brace - 1].is_ident || prev == ">" || prev == "*" ||
          prev == "&") {
        std::size_t k = brace;
        while (k > 0 && (t[k - 1].is_ident || t[k - 1].text == "::" ||
                         t[k - 1].text == "<" || t[k - 1].text == ">" ||
                         t[k - 1].text == "*" || t[k - 1].text == "&" ||
                         t[k - 1].text == "->")) {
          if (t[k - 1].text == "->") {
            return ScopeKind::kFunction;
          }
          --k;
        }
      }
    }
    // Inside a function, an unexplained `{` is a plain block.
    if (scopes.back() == ScopeKind::kFunction) return ScopeKind::kFunction;
    return ScopeKind::kInit;
  }

  /// Classifies one namespace-scope statement starting at `i`; returns the
  /// index to resume scanning from (the terminator stays unconsumed so the
  /// scope machine sees `{`/`}`).
  std::size_t ClassifyNamespaceStatement(std::size_t i) {
    const std::vector<Token>& t = Tokens();
    if (IsDeclKeyword(t[i].text) || !(t[i].is_ident || t[i].text == "[")) {
      // `using`/`typedef`/... or stray punctuation: skip the statement.
      return SkipToStatementEnd(i);
    }
    bool saw_const = false;
    bool saw_eq = false;
    bool saw_paren_before_eq = false;
    std::size_t depth = 0;
    std::size_t j = i;
    for (; j < t.size(); ++j) {
      const std::string& text = t[j].text;
      if (text == "(") {
        ++depth;
        if (!saw_eq) saw_paren_before_eq = true;
        continue;
      }
      if (text == ")") {
        if (depth > 0) --depth;
        continue;
      }
      if (depth > 0) continue;
      if (text == "const" || text == "constexpr" || text == "constinit" ||
          text == "using" || text == "typedef" || text == "extern") {
        saw_const = saw_const || text != "using";
        if (text == "using" || text == "typedef" || text == "extern") {
          return SkipToStatementEnd(i);
        }
        continue;
      }
      if (text == "=") {
        saw_eq = true;
        continue;
      }
      if (text == ";" || text == "{") break;
    }
    if (j >= t.size()) return j;
    const bool is_variable =
        saw_eq || (t[j].text == ";" && !saw_paren_before_eq);
    if (is_variable && !saw_const) {
      Report(t[i], "global-state",
             "non-const namespace-scope variable '" + t[i].text +
                 "'; the only sanctioned globals are the obs registries");
    }
    // Leave `{` for the brace classifier (function body / init list);
    // consume through `;` otherwise.
    return t[j].text == ";" ? j + 1 : j;
  }

  std::size_t SkipToStatementEnd(std::size_t i) const {
    const std::vector<Token>& t = Tokens();
    std::size_t depth = 0;
    for (std::size_t j = i; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")" && depth > 0) --depth;
      if (depth == 0 && (t[j].text == ";")) return j + 1;
      if (depth == 0 && (t[j].text == "{" || t[j].text == "}")) return j;
    }
    return t.size();
  }

  /// `static` (or `thread_local`) at function scope: flag unless const.
  std::size_t ClassifyStaticLocal(std::size_t i) {
    const std::vector<Token>& t = Tokens();
    bool saw_const = false;
    bool saw_eq = false;
    bool saw_paren_before_eq = false;
    std::size_t depth = 0;
    std::size_t j = i + 1;
    for (; j < t.size(); ++j) {
      const std::string& text = t[j].text;
      if (text == "(") {
        ++depth;
        if (!saw_eq) saw_paren_before_eq = true;
        continue;
      }
      if (text == ")") {
        if (depth > 0) --depth;
        continue;
      }
      if (depth > 0) continue;
      if (text == "const" || text == "constexpr" || text == "constinit") {
        saw_const = true;
        continue;
      }
      if (text == "=") {
        saw_eq = true;
        continue;
      }
      if (text == ";" || text == "{") break;
    }
    const bool is_variable =
        saw_eq || (j < t.size() && t[j].text == ";" &&
                   !saw_paren_before_eq);
    if (is_variable && !saw_const && !InObs(path_)) {
      Report(t[i], "global-state",
             "non-const static local outside obs/ is hidden shared state "
             "across calls (and a data race under the thread pool)");
    }
    return j;
  }

  // -- Rule 2: unordered-iteration hazard. ----------------------------------

  /// Registers declarator names following an unordered type at token `at`.
  void RegisterDeclarator(std::size_t at) {
    const std::vector<Token>& t = Tokens();
    std::size_t i = at + 1;
    bool nested = false;
    if (i < t.size() && t[i].text == "<") {
      std::size_t depth = 0;
      for (; i < t.size(); ++i) {
        if (t[i].text == "<") ++depth;
        if (t[i].text == ">") {
          if (--depth == 0) {
            ++i;
            break;
          }
        }
        if (t[i].text == ">>") {
          depth = depth >= 2 ? depth - 2 : 0;
          if (depth == 0) {
            ++i;
            break;
          }
        }
        if (t[i].text == ";") return;  // unbalanced; bail
      }
    }
    // Stray closers mean the unordered type was an inner template
    // argument: the declared name holds a container OF unordered maps.
    while (i < t.size() &&
           (t[i].text == ">" || t[i].text == ">>")) {
      nested = true;
      ++i;
    }
    while (i < t.size() &&
           (t[i].text == "&" || t[i].text == "*" ||
            t[i].text == "const")) {
      ++i;
    }
    if (i >= t.size() || !t[i].is_ident) return;
    if (nested) {
      AddUnique(checker_.element_unordered_, t[i].text);
      return;
    }
    // `unordered_map<...> Foo(` declares an accessor returning the map
    // (counts(), values()) — matched only when called, so an unrelated
    // plain variable of the same name does not collide. A declarator NOT
    // followed by `(` is a variable — matched only when not called, so
    // the member `neighbors` does not taint the method `g.neighbors(v)`.
    const bool is_function = i + 1 < Tokens().size() &&
                             Tokens()[i + 1].text == "(";
    AddUnique(is_function ? checker_.accessor_unordered_
                          : checker_.direct_unordered_,
              t[i].text);
  }

  /// True when `name` occurring in a range expression denotes an
  /// unordered container (direct, element access of a container of
  /// unordered maps, or an accessor returning one).
  bool IsUnorderedUse(std::size_t i) const {
    const std::vector<Token>& t = Tokens();
    if (!t[i].is_ident) return false;
    const bool called = i + 1 < t.size() && t[i + 1].text == "(";
    if (Contains(checker_.direct_unordered_, t[i].text)) return !called;
    if (Contains(checker_.accessor_unordered_, t[i].text)) return called;
    if (Contains(checker_.element_unordered_, t[i].text)) {
      return i + 1 < t.size() && t[i + 1].text == "[";
    }
    return false;
  }

  void LintUnorderedLoops() {
    const std::vector<Token>& t = Tokens();
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!(t[i].text == "for" && t[i + 1].text == "(")) continue;
      // Find the matching ')' and a range-for ':' at paren depth 1.
      std::size_t depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      std::size_t first_semi = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        }
        if (depth == 1 && t[j].text == ":" && colon == 0) colon = j;
        if (depth == 1 && t[j].text == ";" && first_semi == 0) {
          first_semi = j;
        }
      }
      if (close == 0) continue;
      bool hazard = false;
      if (colon != 0 && (first_semi == 0 || colon < first_semi)) {
        // Range-for: hazard if the range expression names an unordered
        // container — unless the range IS a SortedKeys(...) call
        // (util/sorted_keys.h), the sanctioned way to canonicalize.
        if (colon + 1 < close && t[colon + 1].text == "SortedKeys") {
          continue;
        }
        for (std::size_t j = colon + 1; j < close && !hazard; ++j) {
          hazard = IsUnorderedUse(j);
        }
      } else if (first_semi != 0) {
        // Classic for: hazard when the init clause grabs NAME.begin().
        for (std::size_t j = i + 2; j + 2 < first_semi; ++j) {
          if (IsUnorderedUse(j) && t[j + 1].text == "." &&
              (t[j + 2].text == "begin" || t[j + 2].text == "cbegin")) {
            hazard = true;
            break;
          }
        }
      }
      if (!hazard) continue;
      if (BodyIsOrderIndependent(close + 1)) continue;
      Report(t[i], "unordered-iter",
             "iteration over an unordered container whose body is not "
             "provably order-independent; iterate a sorted copy, or "
             "annotate why hash order cannot leak");
    }
  }

  // -- Order-independence analysis of a loop body. --------------------------
  //
  // A body is order-independent when every statement is one of:
  //   * a compound accumulation `path (+=|-=|*=|/=|&=||=|^=) expr;`
  //   * an increment/decrement `++path;` / `path++;`
  //   * a max/min fold `path = std::max(...)` / `std::min(...)`
  //   * a `const`/`constexpr` local binding
  //   * `assert(...)`, `(void)name;`, `continue;`
  //   * `if (cond) stmt [else stmt]` with a side-effect-free condition
  //   * a nested loop / block of order-independent statements
  //   * `return <literal>;` — but only when the body accumulates nothing
  //     (a uniform predicate exit), since an early return after partial
  //     accumulation would expose iteration order.
  // Anything else (push_back, insert, plain assignment, stream output,
  // break, arbitrary calls) defeats the proof and flags the loop.

  struct BodyScan {
    bool safe = true;
    bool accumulates = false;
    bool returns = false;
  };

  bool BodyIsOrderIndependent(std::size_t body_begin) const {
    const std::vector<Token>& t = Tokens();
    if (body_begin >= t.size()) return false;
    BodyScan scan;
    if (t[body_begin].text == "{") {
      const std::size_t end = MatchBrace(body_begin);
      ScanBlock(body_begin + 1, end, scan);
    } else {
      ScanStatement(body_begin, StatementEnd(body_begin), scan);
    }
    return scan.safe && !(scan.accumulates && scan.returns);
  }

  std::size_t MatchBrace(std::size_t open) const {
    const std::vector<Token>& t = Tokens();
    std::size_t depth = 0;
    for (std::size_t j = open; j < t.size(); ++j) {
      if (t[j].text == "{") ++depth;
      if (t[j].text == "}" && --depth == 0) return j;
    }
    return t.size();
  }

  /// End (one past) of the statement starting at `i`: the `;` at paren
  /// depth 0, or the matching `}` of a block.
  std::size_t StatementEnd(std::size_t i) const {
    const std::vector<Token>& t = Tokens();
    std::size_t depth = 0;
    for (std::size_t j = i; j < t.size(); ++j) {
      if (t[j].text == "(" || t[j].text == "[") ++depth;
      if ((t[j].text == ")" || t[j].text == "]") && depth > 0) --depth;
      if (depth == 0 && t[j].text == "{") return MatchBrace(j) + 1;
      if (depth == 0 && t[j].text == ";") return j + 1;
    }
    return t.size();
  }

  void ScanBlock(std::size_t begin, std::size_t end, BodyScan& scan) const {
    std::size_t i = begin;
    while (i < end && scan.safe) {
      const std::size_t next = ScanStatement(i, end, scan);
      i = next > i ? next : i + 1;
    }
  }

  /// Scans one statement in [i, limit); returns one past its end.
  std::size_t ScanStatement(std::size_t i, std::size_t limit,
                            BodyScan& scan) const {
    const std::vector<Token>& t = Tokens();
    if (i >= limit) return limit;
    const std::string& head = t[i].text;
    const std::size_t end = std::min(StatementEnd(i), limit);

    if (head == ";") return i + 1;
    if (head == "{") {
      const std::size_t close = MatchBrace(i);
      ScanBlock(i + 1, std::min(close, limit), scan);
      return std::min(close + 1, limit);
    }
    if (head == "continue") return end;
    if (head == "if" || head == "while" || head == "for") {
      // Header: `(cond)` — for `if`/`while` the condition must be free of
      // side effects; a nested `for` header owns its induction variable,
      // so its writes are body-local and exempt.
      std::size_t depth = 0;
      std::size_t close_paren = i;
      for (std::size_t j = i + 1; j < limit; ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")" && --depth == 0) {
          close_paren = j;
          break;
        }
      }
      if (close_paren == i) {
        scan.safe = false;
        return end;
      }
      if (head != "for" &&
          !RangeIsSideEffectFree(i + 2, close_paren)) {
        scan.safe = false;
        return end;
      }
      std::size_t resume = ScanStatement(close_paren + 1, limit, scan);
      // Optional else branch.
      if (head == "if" && resume < limit && t[resume].text == "else") {
        resume = ScanStatement(resume + 1, limit, scan);
      }
      return resume;
    }
    if (head == "return") {
      scan.returns = true;
      // `return true;` / `return false;` / `return 0;` — a uniform exit.
      if (!(end == i + 3 && (t[i + 1].text == "true" ||
                             t[i + 1].text == "false" ||
                             !t[i + 1].is_ident))) {
        scan.safe = false;
      }
      return end;
    }
    if (head == "break" || head == "switch" || head == "do" ||
        head == "goto") {
      scan.safe = false;
      return end;
    }
    if (head == "assert") return end;
    if (head == "(" && i + 2 < limit && t[i + 1].text == "void") {
      return end;  // `(void)name;`
    }
    if (head == "const" || head == "constexpr") {
      // Local binding; the initializer only reads.
      return end;
    }
    // Expression statement: classify as accumulation or reject.
    if (IsAccumulation(i, end)) {
      scan.accumulates = true;
      return end;
    }
    scan.safe = false;
    return end;
  }

  /// True when [begin, end) contains no assignment/increment tokens.
  bool RangeIsSideEffectFree(std::size_t begin, std::size_t end) const {
    const std::vector<Token>& t = Tokens();
    static const auto* writes = new std::unordered_set<std::string>{
        "=", "++", "--", "+=", "-=", "*=", "/=", "%=",
        "&=", "|=", "^=", "<<=", ">>=", "<<",
    };
    for (std::size_t j = begin; j < end && j < t.size(); ++j) {
      if (writes->count(t[j].text) > 0) return false;
    }
    return true;
  }

  /// Matches `path OP= expr;`, `++path;`, `path++;`, and
  /// `path = std::max/min(...);` where path is ident(./->/::/[..])*.
  bool IsAccumulation(std::size_t i, std::size_t end) const {
    const std::vector<Token>& t = Tokens();
    static const auto* compound = new std::unordered_set<std::string>{
        "+=", "-=", "*=", "/=", "&=", "|=", "^=",
    };
    std::size_t j = i;
    if (t[j].text == "++" || t[j].text == "--") ++j;
    if (j >= end || !t[j].is_ident) return false;
    ++j;
    // Swallow the path: member access and subscripts.
    while (j < end) {
      const std::string& text = t[j].text;
      if (text == "." || text == "->" || text == "::") {
        j += 2;
        continue;
      }
      if (text == "[") {
        std::size_t depth = 0;
        for (; j < end; ++j) {
          if (t[j].text == "[") ++depth;
          if (t[j].text == "]" && --depth == 0) {
            ++j;
            break;
          }
        }
        continue;
      }
      break;
    }
    if (j >= end) return false;
    if (t[j].text == ";") return t[i].text == "++" || t[i].text == "--";
    if (t[j].text == "++" || t[j].text == "--") {
      return j + 2 == end;  // `path++;`
    }
    if (compound->count(t[j].text) > 0) {
      return RangeIsSideEffectFree(j + 1, end - 1);
    }
    if (t[j].text == "=") {
      // `path = std::max(...)` / `path = std::min(...)`.
      std::size_t k = j + 1;
      if (k < end && t[k].text == "std" && k + 1 < end &&
          t[k + 1].text == "::") {
        k += 2;
      }
      if (k < end && (t[k].text == "max" || t[k].text == "min")) {
        return RangeIsSideEffectFree(k + 1, end - 1);
      }
    }
    return false;
  }

  SourceChecker& checker_;
  std::string path_;
  Lexer lexer_;
};

// ---------------------------------------------------------------------------
// SourceChecker
// ---------------------------------------------------------------------------

void SourceChecker::SetBaseline(std::vector<std::string> entries) {
  baseline_.clear();
  for (std::string& entry : entries) {
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos) continue;
    BaselineEntry parsed;
    parsed.path = entry.substr(0, colon);
    parsed.rule = entry.substr(colon + 1);
    baseline_.push_back(std::move(parsed));
  }
}

void SourceChecker::Preload(const std::string& path,
                            const std::string& content) {
  FileLinter linter(*this, path, content);
  linter.CollectDeclarations();
}

void SourceChecker::Check(const std::string& path,
                          const std::string& content) {
  FileLinter linter(*this, path, content);
  linter.CollectDeclarations();
  linter.PreRecordAllows();
  linter.Lint();
}

CheckResult SourceChecker::TakeResult() {
  for (CheckAllow& allow : pending_allows_) {
    if (allow.suppressed == 0) {
      CheckDiagnostic diag;
      diag.file = allow.file;
      diag.line = allow.line;
      diag.column = 1;
      diag.rule = "unused-allow";
      diag.message = "allow(" + allow.rule +
                     ") annotation suppressed nothing; remove it or fix "
                     "the rule id";
      result_.violations.push_back(std::move(diag));
    }
    result_.allows.push_back(allow);
  }
  pending_allows_.clear();
  for (const BaselineEntry& entry : baseline_) {
    if (!entry.used) {
      result_.stale_baseline.push_back(entry.path + ":" + entry.rule);
    }
  }
  const auto by_position = [](const CheckDiagnostic& a,
                              const CheckDiagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.column < b.column;
  };
  std::sort(result_.violations.begin(), result_.violations.end(),
            by_position);
  std::sort(result_.grandfathered.begin(), result_.grandfathered.end(),
            by_position);
  return std::move(result_);
}

// ---------------------------------------------------------------------------
// Tree walking, baseline IO, report printing
// ---------------------------------------------------------------------------

namespace {

std::string ReadFileOrThrow(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("sgr-check: cannot read '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

bool IsSourceFile(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

CheckResult CheckSourceTree(const std::vector<std::string>& paths,
                            const std::vector<std::string>& baseline) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else if (std::filesystem::exists(path)) {
      files.push_back(path);
    } else {
      throw std::runtime_error("sgr-check: no such file or directory: '" +
                               path + "'");
    }
  }
  // Directory iteration order is platform-dependent; diagnostics must not
  // be.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  SourceChecker checker;
  checker.SetBaseline(baseline);
  std::vector<std::pair<std::string, std::string>> contents;
  contents.reserve(files.size());
  for (const std::string& file : files) {
    contents.emplace_back(file, ReadFileOrThrow(file));
  }
  for (const auto& [file, content] : contents) {
    checker.Preload(file, content);
  }
  for (const auto& [file, content] : contents) {
    checker.Check(file, content);
  }
  return checker.TakeResult();
}

std::vector<std::string> LoadCheckBaseline(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> entries;
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() &&
           std::isspace(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    entries.push_back(line);
  }
  return entries;
}

void PrintCheckReport(const CheckResult& result, std::ostream& out) {
  for (const CheckDiagnostic& diag : result.violations) {
    out << diag.file << ":" << diag.line << ":" << diag.column << ": "
        << diag.rule << ": " << diag.message << "\n";
  }
  if (!result.allows.empty()) {
    out << "\nsanctioned exceptions (sgr-check: allow):\n";
    for (const CheckAllow& allow : result.allows) {
      out << "  " << allow.file << ":" << allow.line << ": allow("
          << allow.rule << "): "
          << (allow.reason.empty() ? "<no reason given>" : allow.reason)
          << "\n";
    }
  }
  if (!result.grandfathered.empty()) {
    out << "\nbaselined (grandfathered, fix or annotate eventually):\n";
    for (const CheckDiagnostic& diag : result.grandfathered) {
      out << "  " << diag.file << ":" << diag.line << ":" << diag.column
          << ": " << diag.rule << "\n";
    }
  }
  for (const std::string& entry : result.stale_baseline) {
    out << "warning: stale baseline entry (matched nothing): " << entry
        << "\n";
  }
  out << "\nsgr-check: " << result.violations.size() << " violation(s), "
      << result.grandfathered.size() << " baselined, "
      << result.allows.size() << " sanctioned exception(s)\n";
}

}  // namespace sgr
