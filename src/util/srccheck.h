#ifndef SGR_UTIL_SRCCHECK_H_
#define SGR_UTIL_SRCCHECK_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sgr {

/// sgr-check: the project's own determinism/concurrency lint pass
/// (docs/ARCHITECTURE.md, "Static analysis & source contracts").
///
/// Every reproduced result rests on one contract: reports and restored
/// graphs are byte-identical for every thread count, with all randomness a
/// pure function of (seed, index). The rules below reject, at the source
/// level, the constructs that historically break that contract:
///
///   nondet-random   rand() / srand / std::random_device — wall-entropy
///                   randomness; everything must flow through util/rng
///                   seeded via DeriveSeed/DeriveRoundSeed.
///   nondet-clock    time( / clock() / std::chrono::{system,steady,
///                   high_resolution}_clock outside obs/ — the single
///                   sanctioned clock is obs/timer.h.
///   nondet-env      getenv outside the runner entry points
///                   (exp/runner.cc, exp/datasets.cc) — environment reads
///                   scattered through the library make runs depend on
///                   ambient state the report does not echo.
///   raw-rng         direct std::mt19937 (and friends) construction
///                   outside util/rng and exp/parallel — ad-hoc engines
///                   bypass the (seed, index) derivation scheme.
///   global-state    non-const namespace-scope variables and non-const
///                   static locals outside obs/ — hidden shared state
///                   breaks trial independence; the only sanctioned
///                   globals are the obs registries.
///   float-drift     `float` in analysis/estimation/restore/dk code — the
///                   FP-summation-shape contract is double-only.
///   unordered-iter  range-for / iterator loops over std::unordered_map /
///                   std::unordered_set, unless the loop body provably
///                   only accumulates order-independent state (integer
///                   and per-key accumulation, max/min folds, uniform
///                   early returns) or the range is a SortedKeys(...)
///                   call (util/sorted_keys.h), the sanctioned
///                   canonical-order traversal.
///   unused-allow    an escape-hatch annotation that suppressed nothing —
///                   stale annotations rot into misdocumentation.
///
/// Escape hatch: a construct the contract sanctions is annotated
///
///   // sgr-check: allow(<rule-id>) <reason>
///
/// on the offending line or the line directly above it. The tool records
/// every allow (file, line, rule, reason) and re-prints them in a summary,
/// so the annotations double as the catalogue of where and why the
/// contract bends.
///
/// The implementation is a dependency-free tokenizer plus per-rule token
/// matchers, in the style of util/json: no LLVM, no libclang, fast enough
/// to run on every build. It is deliberately heuristic — a lint, not a
/// proof — and the escape hatch exists precisely for its false positives.

/// One `file:line:col: rule-id: message` finding.
struct CheckDiagnostic {
  std::string file;
  std::size_t line = 0;
  std::size_t column = 0;
  std::string rule;
  std::string message;
};

/// One `// sgr-check: allow(rule) reason` annotation, with how many
/// diagnostics it suppressed (0 = stale, reported as unused-allow).
struct CheckAllow {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string reason;
  std::size_t suppressed = 0;
};

struct CheckResult {
  /// Unsuppressed, unbaselined findings: any entry fails the check.
  std::vector<CheckDiagnostic> violations;

  /// Findings downgraded by a baseline entry (grandfathered, non-fatal).
  std::vector<CheckDiagnostic> grandfathered;

  /// Every allow annotation seen, suppressing or not.
  std::vector<CheckAllow> allows;

  /// Baseline entries that matched no finding (stale; warned, non-fatal).
  std::vector<std::string> stale_baseline;

  bool Clean() const { return violations.empty(); }
};

/// The checker. Typical use:
///
///   SourceChecker checker;
///   checker.SetBaseline(LoadCheckBaseline("tools/sgr_check_baseline.txt"));
///   for (file : files) checker.Preload(file.path, file.content);
///   for (file : files) checker.Check(file.path, file.content);
///   PrintCheckReport(checker.TakeResult(), std::cout);
///
/// Preload registers the names (variables, members, accessor functions)
/// declared with unordered container types, so a loop in one file over an
/// accessor declared in another still resolves; Check lints. Rule path
/// exemptions key off the path given here, matched by component/suffix, so
/// absolute and repo-relative spellings behave identically.
class SourceChecker {
 public:
  /// Baseline entries, one per line: `<path>:<rule-id>` (path matched as a
  /// suffix). All findings of that rule in that file are grandfathered.
  void SetBaseline(std::vector<std::string> entries);

  /// Pass 1: collect unordered-container declarations from one file.
  void Preload(const std::string& path, const std::string& content);

  /// Pass 2: lint one file (Preload of the same content is implied and
  /// need not have happened first for same-file declarations).
  void Check(const std::string& path, const std::string& content);

  /// Finalizes (resolves baseline matches, flags unused allows) and
  /// returns the accumulated result. Call once, after the last Check.
  CheckResult TakeResult();

 private:
  struct BaselineEntry {
    std::string path;
    std::string rule;
    bool used = false;
  };
  std::vector<BaselineEntry> baseline_;
  std::vector<std::string> direct_unordered_;    // variables that ARE unordered
  std::vector<std::string> accessor_unordered_;  // functions RETURNING unordered
  std::vector<std::string> element_unordered_;   // containers OF unordered
  std::vector<std::string> alias_unordered_;     // type aliases of unordered
  CheckResult result_;
  std::vector<CheckAllow> pending_allows_;

  friend class FileLinter;
};

/// Expands each path (file, or directory walked recursively for .h/.cc
/// files in sorted order), preloads every file, then checks every file.
/// Throws std::runtime_error on an unreadable path.
CheckResult CheckSourceTree(const std::vector<std::string>& paths,
                            const std::vector<std::string>& baseline);

/// Reads a baseline file: one `<path>:<rule-id>` entry per line, `#`
/// comments and blank lines ignored. A missing file is an empty baseline.
std::vector<std::string> LoadCheckBaseline(const std::string& path);

/// Prints diagnostics (file:line:col: rule-id: message), the allow
/// summary, grandfathered counts, and stale-baseline warnings.
void PrintCheckReport(const CheckResult& result, std::ostream& out);

}  // namespace sgr

#endif  // SGR_UTIL_SRCCHECK_H_
