#ifndef SGR_UTIL_JSON_H_
#define SGR_UTIL_JSON_H_

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sgr {

/// Error thrown by Json::Parse on malformed input (with a line:column
/// location) and by the typed accessors on kind mismatch.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// A small dependency-free JSON document: value type, strict parser, and
/// deterministic writer. Built for the scenario engine's specs and
/// machine-readable benchmark reports (docs/ARCHITECTURE.md, "Scenario
/// layer"), not as a general-purpose library:
///
///   * Objects preserve insertion order and Parse rejects duplicate keys,
///     so Parse -> Dump round-trips byte-identically and two runs that
///     build the same document serialize to the same bytes (the engine's
///     determinism contract diffs reports textually).
///   * Numbers are doubles, written with up to 17 significant digits, so
///     every finite double survives a Dump -> Parse round trip exactly.
///   * Non-finite numbers serialize as the literals Infinity / -Infinity /
///     NaN (accepted by the parser too, and by Python's json module) —
///     normalized L1 distances are +inf when the original property mass is
///     zero, and silently nulling them would hide that.
///   * Strings are UTF-8 byte sequences; the parser decodes \uXXXX escapes
///     (including surrogate pairs) to UTF-8, the writer escapes the
///     mandatory set (quote, backslash, control characters) and emits
///     everything else verbatim.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Members = std::vector<std::pair<std::string, Json>>;

  /// A null value (also the default-constructed state).
  Json() = default;

  static Json Null() { return Json(); }
  static Json Bool(bool value);
  static Json Number(double value);
  static Json String(std::string value);
  static Json Array();
  static Json Object();

  /// Parses `text` as a single JSON document; trailing non-whitespace is
  /// an error. Throws JsonError with a line:column location on malformed
  /// input. Nesting deeper than 256 levels is rejected.
  static Json Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool IsBool() const { return kind_ == Kind::kBool; }
  bool IsNumber() const { return kind_ == Kind::kNumber; }
  bool IsString() const { return kind_ == Kind::kString; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  bool IsObject() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw JsonError on kind mismatch.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<Json>& Items() const;
  const Members& ObjectMembers() const;

  /// Mutable array access (throws unless this is an array) — the
  /// counterpart of the non-const Find, for tools that edit a parsed
  /// document in place (report surgery in tests, `sgr diff` fixtures).
  std::vector<Json>& Items();

  /// Array append (throws unless this is an array).
  void Push(Json value);

  /// Object member lookup: nullptr when absent (throws unless this is an
  /// object).
  const Json* Find(const std::string& key) const;
  Json* Find(const std::string& key);

  /// Object member write: replaces an existing key in place (keeping its
  /// position) or appends a new one.
  void Set(const std::string& key, Json value);

  /// Removes an object member; returns whether it existed.
  bool Remove(const std::string& key);

  /// Array / object element count, string length.
  std::size_t Size() const;

  /// Serializes the document. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact single-line form. Output is a
  /// pure function of the document (no pointers, no hashing), so equal
  /// documents dump to equal bytes.
  std::string Dump(int indent = 2) const;

  /// Structural equality. Object comparison is order-sensitive — two
  /// documents with the same members in different order are *not* equal —
  /// matching the writer's byte-level determinism contract.
  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  Members members_;
};

}  // namespace sgr

#endif  // SGR_UTIL_JSON_H_
