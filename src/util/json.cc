#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace sgr {

namespace {

constexpr int kMaxDepth = 256;

/// Recursive-descent parser over the whole input buffer. Tracks the
/// current offset and converts it to line:column only when building an
/// error message.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json ParseDocument() {
    Json value = ParseValue(0);
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError("JSON parse error at " + std::to_string(line) + ":" +
                    std::to_string(column) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool Consume(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json ParseValue(int depth) {
    if (depth > kMaxDepth) Fail("nesting deeper than 256 levels");
    SkipWhitespace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return Json::String(ParseString());
      case 't':
        if (Consume("true")) return Json::Bool(true);
        Fail("invalid literal (expected 'true')");
      case 'f':
        if (Consume("false")) return Json::Bool(false);
        Fail("invalid literal (expected 'false')");
      case 'n':
        if (Consume("null")) return Json::Null();
        Fail("invalid literal (expected 'null')");
      case 'I':
        if (Consume("Infinity")) {
          return Json::Number(std::numeric_limits<double>::infinity());
        }
        Fail("invalid literal (expected 'Infinity')");
      case 'N':
        if (Consume("NaN")) {
          return Json::Number(std::numeric_limits<double>::quiet_NaN());
        }
        Fail("invalid literal (expected 'NaN')");
      default:
        return ParseNumber();
    }
  }

  Json ParseObject(int depth) {
    ++pos_;  // '{'
    Json object = Json::Object();
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') Fail("expected object key string");
      std::string key = ParseString();
      if (object.Find(key) != nullptr) Fail("duplicate object key '" + key + "'");
      SkipWhitespace();
      if (Peek() != ':') Fail("expected ':' after object key");
      ++pos_;
      object.Set(key, ParseValue(depth + 1));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return object;
      }
      Fail("expected ',' or '}' in object");
    }
  }

  Json ParseArray(int depth) {
    ++pos_;  // '['
    Json array = Json::Array();
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.Push(ParseValue(depth + 1));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return array;
      }
      Fail("expected ',' or ']' in array");
    }
  }

  unsigned ParseHex4() {
    if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value += static_cast<unsigned>(c - 'A' + 10);
      } else {
        Fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  void AppendUtf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  std::string ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape sequence");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code_point = ParseHex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!Consume("\\u")) Fail("high surrogate not followed by \\u");
            const unsigned low = ParseHex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              Fail("invalid low surrogate");
            }
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            Fail("lone low surrogate");
          }
          AppendUtf8(out, code_point);
          break;
        }
        default:
          Fail("invalid escape character");
      }
    }
  }

  Json ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
      if (Consume("Infinity")) {
        return Json::Number(-std::numeric_limits<double>::infinity());
      }
    }
    // Integer part: 0, or a nonzero digit followed by digits (the JSON
    // grammar forbids leading zeros).
    if (Peek() == '0') {
      ++pos_;
    } else if (Peek() >= '1' && Peek() <= '9') {
      while (Peek() >= '0' && Peek() <= '9') ++pos_;
    } else {
      Fail("invalid number");
    }
    if (Peek() == '.') {
      ++pos_;
      if (Peek() < '0' || Peek() > '9') Fail("digit expected after '.'");
      while (Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (Peek() < '0' || Peek() > '9') Fail("digit expected in exponent");
      while (Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    return Json::Number(std::strtod(token.c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Deterministic number formatting: integral doubles print as integers;
/// everything else uses the shortest of 15/16/17 significant digits that
/// still parses back to exactly the same double (so 0.1 prints as "0.1",
/// not "0.10000000000000001", and every finite double round-trips);
/// non-finite values print as the extended literals the parser accepts.
std::string FormatNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Infinity" : "-Infinity";
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

void AppendEscaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Json Json::Bool(bool value) {
  Json json;
  json.kind_ = Kind::kBool;
  json.bool_ = value;
  return json;
}

Json Json::Number(double value) {
  Json json;
  json.kind_ = Kind::kNumber;
  json.number_ = value;
  return json;
}

Json Json::String(std::string value) {
  Json json;
  json.kind_ = Kind::kString;
  json.string_ = std::move(value);
  return json;
}

Json Json::Array() {
  Json json;
  json.kind_ = Kind::kArray;
  return json;
}

Json Json::Object() {
  Json json;
  json.kind_ = Kind::kObject;
  return json;
}

Json Json::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

bool Json::AsBool() const {
  if (kind_ != Kind::kBool) throw JsonError("JSON value is not a bool");
  return bool_;
}

double Json::AsNumber() const {
  if (kind_ != Kind::kNumber) throw JsonError("JSON value is not a number");
  return number_;
}

const std::string& Json::AsString() const {
  if (kind_ != Kind::kString) throw JsonError("JSON value is not a string");
  return string_;
}

const std::vector<Json>& Json::Items() const {
  if (kind_ != Kind::kArray) throw JsonError("JSON value is not an array");
  return items_;
}

std::vector<Json>& Json::Items() {
  if (kind_ != Kind::kArray) throw JsonError("JSON value is not an array");
  return items_;
}

const Json::Members& Json::ObjectMembers() const {
  if (kind_ != Kind::kObject) throw JsonError("JSON value is not an object");
  return members_;
}

void Json::Push(Json value) {
  if (kind_ != Kind::kArray) throw JsonError("JSON value is not an array");
  items_.push_back(std::move(value));
}

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) throw JsonError("JSON value is not an object");
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json* Json::Find(const std::string& key) {
  if (kind_ != Kind::kObject) throw JsonError("JSON value is not an object");
  for (auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void Json::Set(const std::string& key, Json value) {
  if (Json* existing = Find(key)) {
    *existing = std::move(value);
    return;
  }
  members_.emplace_back(key, std::move(value));
}

bool Json::Remove(const std::string& key) {
  if (kind_ != Kind::kObject) throw JsonError("JSON value is not an object");
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->first == key) {
      members_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t Json::Size() const {
  switch (kind_) {
    case Kind::kArray: return items_.size();
    case Kind::kObject: return members_.size();
    case Kind::kString: return string_.size();
    default:
      throw JsonError("JSON value has no size");
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const auto newline_and_pad = [&](int levels) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += FormatNumber(number_);
      break;
    case Kind::kString:
      AppendEscaped(out, string_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline_and_pad(depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      newline_and_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline_and_pad(depth + 1);
        AppendEscaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline_and_pad(depth);
      out += '}';
      break;
    }
  }
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::kNull: return true;
    case Json::Kind::kBool: return a.bool_ == b.bool_;
    case Json::Kind::kNumber:
      // NaN compares unequal (IEEE semantics); determinism tests compare
      // serialized bytes when NaN could appear.
      return a.number_ == b.number_;
    case Json::Kind::kString: return a.string_ == b.string_;
    case Json::Kind::kArray: return a.items_ == b.items_;
    case Json::Kind::kObject: return a.members_ == b.members_;
  }
  return false;
}

}  // namespace sgr
