#ifndef SGR_OBS_TRACE_SUMMARY_H_
#define SGR_OBS_TRACE_SUMMARY_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.h"

namespace sgr::obs {

/// Per-span-name aggregate of one trace file: how often the phase ran,
/// its total (inclusive) time, and its self time — total minus the time
/// spent inside child spans on the same thread. Self time is what "where
/// did the time go" actually asks: a cell span's total covers everything
/// under it, its self time only the aggregation glue.
struct PhaseSummary {
  std::string name;
  std::string category;
  std::size_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
};

/// Validates `trace` as a Chrome trace_event document (strictly: a
/// top-level object whose "traceEvents" member is an array of complete
/// events, each with string "name"/"cat", "ph" == "X", and finite
/// non-negative numeric "ts"/"dur"/"pid"/"tid") and aggregates it into
/// per-name summaries sorted by descending total time. Nesting is
/// derived per thread from interval containment, so merged multi-thread
/// traces attribute self time correctly. Throws std::runtime_error
/// naming the offending event on any schema violation — `sgr trace
/// summarize` doubles as the CI trace validator.
std::vector<PhaseSummary> SummarizeTrace(const Json& trace);

/// Renders the summary as the `sgr trace summarize` table
/// (name, category, count, total ms, self ms, self share).
void PrintTraceSummary(const std::vector<PhaseSummary>& summary,
                       std::ostream& out);

}  // namespace sgr::obs

#endif  // SGR_OBS_TRACE_SUMMARY_H_
