#include "obs/trace_summary.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <stdexcept>

#include "exp/table_printer.h"

namespace sgr::obs {

namespace {

struct ParsedEvent {
  std::string name;
  std::string category;
  double ts = 0.0;   ///< microseconds
  double dur = 0.0;  ///< microseconds
  double tid = 0.0;
  double self = 0.0;  ///< dur minus same-thread child durations
};

[[noreturn]] void Fail(std::size_t index, const std::string& what) {
  throw std::runtime_error("trace: traceEvents[" + std::to_string(index) +
                           "]: " + what);
}

double RequireFiniteNonNegative(const Json& event, const char* key,
                                std::size_t index) {
  const Json* member = event.Find(key);
  if (member == nullptr || !member->IsNumber()) {
    Fail(index, std::string("missing numeric '") + key + "'");
  }
  const double value = member->AsNumber();
  if (!std::isfinite(value) || value < 0.0) {
    Fail(index, std::string("'") + key + "' must be finite and >= 0");
  }
  return value;
}

std::string RequireString(const Json& event, const char* key,
                          std::size_t index) {
  const Json* member = event.Find(key);
  if (member == nullptr || !member->IsString()) {
    Fail(index, std::string("missing string '") + key + "'");
  }
  return member->AsString();
}

std::vector<ParsedEvent> ParseEvents(const Json& trace) {
  if (!trace.IsObject()) {
    throw std::runtime_error("trace: document must be a JSON object");
  }
  const Json* events = trace.Find("traceEvents");
  if (events == nullptr || !events->IsArray()) {
    throw std::runtime_error("trace: missing 'traceEvents' array");
  }
  std::vector<ParsedEvent> parsed;
  parsed.reserve(events->Items().size());
  std::size_t index = 0;
  for (const Json& event : events->Items()) {
    if (!event.IsObject()) Fail(index, "must be an object");
    const std::string ph = RequireString(event, "ph", index);
    if (ph != "X") {
      Fail(index, "unsupported phase '" + ph +
                      "' (this writer emits complete events only)");
    }
    ParsedEvent out;
    out.name = RequireString(event, "name", index);
    out.category = RequireString(event, "cat", index);
    out.ts = RequireFiniteNonNegative(event, "ts", index);
    out.dur = RequireFiniteNonNegative(event, "dur", index);
    (void)RequireFiniteNonNegative(event, "pid", index);
    out.tid = RequireFiniteNonNegative(event, "tid", index);
    out.self = out.dur;
    parsed.push_back(std::move(out));
    ++index;
  }
  return parsed;
}

/// Subtracts same-thread child durations from each event's self time.
/// Nesting is interval containment per tid: after sorting by (ts asc,
/// dur desc), a stack of open intervals identifies each event's
/// innermost enclosing parent.
void AttributeSelfTime(std::vector<ParsedEvent>& events) {
  std::map<double, std::vector<ParsedEvent*>> by_tid;
  for (ParsedEvent& event : events) {
    by_tid[event.tid].push_back(&event);
  }
  for (auto& [tid, thread_events] : by_tid) {
    (void)tid;
    std::stable_sort(thread_events.begin(), thread_events.end(),
                     [](const ParsedEvent* a, const ParsedEvent* b) {
                       if (a->ts != b->ts) return a->ts < b->ts;
                       return a->dur > b->dur;
                     });
    std::vector<ParsedEvent*> open;
    for (ParsedEvent* event : thread_events) {
      while (!open.empty() &&
             open.back()->ts + open.back()->dur <= event->ts) {
        open.pop_back();
      }
      if (!open.empty()) open.back()->self -= event->dur;
      open.push_back(event);
    }
  }
}

}  // namespace

std::vector<PhaseSummary> SummarizeTrace(const Json& trace) {
  std::vector<ParsedEvent> events = ParseEvents(trace);
  AttributeSelfTime(events);

  std::map<std::string, PhaseSummary> by_name;
  for (const ParsedEvent& event : events) {
    PhaseSummary& summary = by_name[event.name];
    if (summary.count == 0) {
      summary.name = event.name;
      summary.category = event.category;
    }
    ++summary.count;
    summary.total_ms += event.dur / 1000.0;
    summary.self_ms += event.self / 1000.0;
  }

  std::vector<PhaseSummary> result;
  result.reserve(by_name.size());
  for (auto& [name, summary] : by_name) {
    (void)name;
    result.push_back(std::move(summary));
  }
  std::stable_sort(result.begin(), result.end(),
                   [](const PhaseSummary& a, const PhaseSummary& b) {
                     return a.total_ms > b.total_ms;
                   });
  return result;
}

void PrintTraceSummary(const std::vector<PhaseSummary>& summary,
                       std::ostream& out) {
  double self_total_ms = 0.0;
  for (const PhaseSummary& phase : summary) self_total_ms += phase.self_ms;

  TablePrinter table(out, {"Span", "Category", "Count", "Total ms",
                           "Self ms", "Self %"});
  for (const PhaseSummary& phase : summary) {
    const double share =
        self_total_ms > 0.0 ? 100.0 * phase.self_ms / self_total_ms : 0.0;
    table.AddRow({phase.name, phase.category, std::to_string(phase.count),
                  TablePrinter::Fixed(phase.total_ms, 3),
                  TablePrinter::Fixed(phase.self_ms, 3),
                  TablePrinter::Fixed(share, 1)});
  }
  table.Print();
  out << summary.size() << " span name(s), " << self_total_ms
      << " ms total self time\n";
}

}  // namespace sgr::obs
