#include "obs/metrics.h"

#include <atomic>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace sgr::obs {

namespace {

struct MetricsState {
  std::atomic<bool> enabled{false};
  std::mutex mutex;
  MetricsSnapshot counters;
  MetricsSnapshot maxima;
};

MetricsState& State() {
  static MetricsState* state = new MetricsState();  // never destroyed
  return *state;
}

}  // namespace

bool MetricsEnabled() {
  return State().enabled.load(std::memory_order_relaxed);
}

void EnableMetrics(bool on) {
  State().enabled.store(on, std::memory_order_release);
}

void MetricAdd(const std::string& name, std::uint64_t delta) {
  if (!MetricsEnabled() || delta == 0) return;
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.counters[name] += delta;
}

void MetricMax(const std::string& name, std::uint64_t value) {
  if (!MetricsEnabled()) return;
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::uint64_t& current = state.maxima[name];
  if (value > current) current = value;
}

MetricsSnapshot SnapshotCounters() {
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.counters;
}

MetricsSnapshot SnapshotMaxMetrics() {
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.maxima;
}

void ResetMaxMetrics() {
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.maxima.clear();
}

void ResetMetrics() {
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.counters.clear();
  state.maxima.clear();
}

MetricsSnapshot CounterDelta(const MetricsSnapshot& before,
                             const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after) {
    const auto it = before.find(name);
    const std::uint64_t base = it == before.end() ? 0 : it->second;
    if (value > base) delta[name] = value - base;
  }
  return delta;
}

std::size_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace sgr::obs
