#ifndef SGR_OBS_TIMER_H_
#define SGR_OBS_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sgr {

/// Wall-clock stopwatch over the monotonic clock. This is the single
/// clock source of the observability layer: the report "timings" blocks,
/// the bench tables, and the trace spans (obs/trace.h reads
/// obs::SteadyNowMicros below) all derive from std::chrono::steady_clock,
/// so a span's duration and a report's wall_seconds for the same phase
/// are directly comparable.
class Timer {
 public:
  Timer() : start_(Clock::now()), lap_(start_) {}

  /// Restarts the stopwatch (and the lap point).
  void Reset() {
    start_ = Clock::now();
    lap_ = start_;
  }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Seconds elapsed since the last LapSeconds() call (or construction /
  /// Reset), and advances the lap point. Lets one timer attribute
  /// consecutive phases — total time stays Seconds() — instead of one
  /// Timer instance per phase.
  double LapSeconds() {
    const Clock::time_point now = Clock::now();
    const double seconds = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return seconds;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

namespace obs {

/// Monotonic microseconds since an arbitrary process-stable origin (the
/// first call). Shared timebase of every trace span; same clock as Timer.
inline std::uint64_t SteadyNowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            origin)
          .count());
}

}  // namespace obs

}  // namespace sgr

#endif  // SGR_OBS_TIMER_H_
