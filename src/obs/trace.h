#ifndef SGR_OBS_TRACE_H_
#define SGR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace sgr::obs {

/// One completed span, recorded by ~Span into the recording thread's
/// buffer. Timestamps are microseconds on the shared steady timebase
/// (obs::SteadyNowMicros), re-based to the StartTracing epoch at export
/// so traces start at ts 0.
struct TraceEvent {
  std::string name;        ///< span name ("crawl", "rewire_round", ...)
  const char* category;    ///< static taxonomy tag ("pipeline", "pool", ...)
  std::uint64_t start_us;  ///< begin, us on the SteadyNowMicros timebase
  std::uint64_t dur_us;    ///< duration in us
  std::uint32_t tid;       ///< stable per-thread buffer id (1-based)
};

/// Whether spans are currently being recorded. A single relaxed atomic
/// load — the null-sink fast path: with tracing off a Span costs this
/// load plus two stores, no allocation, no clock read.
bool TracingEnabled();

/// Clears every thread buffer, stamps the trace epoch, and enables
/// recording. Must not race active spans (call before the instrumented
/// work starts).
void StartTracing();

/// Disables recording. Events stay buffered until the next StartTracing,
/// so callers flush with CollectTraceEvents / TraceToJson afterwards.
/// Must not race active spans: every instrumented thread must have
/// finished (the scenario engine and thread pool join all workers before
/// their callers return, which is what makes the CLI's
/// run-then-stop-then-write sequence safe).
void StopTracing();

/// Merges every thread buffer into one list sorted by (start, -duration)
/// — parents before their children — without clearing the buffers.
/// Call only while tracing is stopped (or provably quiescent).
std::vector<TraceEvent> CollectTraceEvents();

/// The merged events as a Chrome trace_event JSON document:
///   {"displayTimeUnit": "ms",
///    "traceEvents": [{"name": ..., "cat": ..., "ph": "X", "ts": ...,
///                     "dur": ..., "pid": 1, "tid": ...}, ...]}
/// Complete events ("ph":"X") only; ts is re-based to the StartTracing
/// epoch. Loadable by chrome://tracing and Perfetto, and summarizable by
/// obs::SummarizeTrace (sgr trace summarize).
Json TraceToJson();

/// WriteJsonFile(TraceToJson(), path).
void WriteTrace(const std::string& path);

/// RAII span: records [construction, destruction) of the current thread
/// into its thread-local buffer. Appends are lock-free (a plain
/// std::vector push_back on thread-owned storage); the global registry
/// mutex is touched only on a thread's very first span. The name is
/// copied only when tracing is enabled at construction; pass a static
/// string or a cheap string_view.
///
/// Spans are pure observation: they draw no RNG, never branch the
/// instrumented algorithm, and cost one relaxed load when disabled —
/// which is why they can live inside the restoration hot paths without
/// perturbing the byte-identity determinism contract.
class Span {
 public:
  explicit Span(std::string_view name, const char* category = "pipeline")
      : active_(TracingEnabled()) {
    if (active_) {
      name_ = name;
      category_ = category;
      start_us_ = SteadyNowMicrosForTrace();
    }
  }

  ~Span() { End(); }

  /// Records the span now instead of at destruction, for consecutive
  /// phases that don't align with C++ scopes. Idempotent; the destructor
  /// then becomes a no-op.
  void End() {
    if (active_) {
      Record();
      active_ = false;
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static std::uint64_t SteadyNowMicrosForTrace();
  void Record();

  std::string name_;
  const char* category_ = "";
  std::uint64_t start_us_ = 0;
  bool active_;
};

}  // namespace sgr::obs

#endif  // SGR_OBS_TRACE_H_
