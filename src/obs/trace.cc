#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/timer.h"

namespace sgr::obs {

namespace {

/// Per-thread event buffer. Owned by the global registry (not the
/// thread), so events survive thread exit — the pool workers of a
/// finished ParallelFor are gone by flush time, their spans are not.
struct ThreadBuffer {
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> epoch_us{0};
  std::mutex registry_mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

TraceState& State() {
  static TraceState* state = new TraceState();  // never destroyed: spans
  return *state;                                // may outlive main's statics
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.registry_mutex);
    state.buffers.push_back(std::make_unique<ThreadBuffer>());
    state.buffers.back()->tid =
        static_cast<std::uint32_t>(state.buffers.size());
    return state.buffers.back().get();
  }();
  return *buffer;
}

}  // namespace

bool TracingEnabled() {
  return State().enabled.load(std::memory_order_relaxed);
}

void StartTracing() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.registry_mutex);
  for (auto& buffer : state.buffers) buffer->events.clear();
  state.epoch_us.store(SteadyNowMicros(), std::memory_order_relaxed);
  state.enabled.store(true, std::memory_order_release);
}

void StopTracing() {
  State().enabled.store(false, std::memory_order_release);
}

std::vector<TraceEvent> CollectTraceEvents() {
  TraceState& state = State();
  // Each event is tagged with its position in its thread's buffer —
  // recording order, i.e. completion order — to break full timestamp
  // ties below.
  std::vector<std::pair<TraceEvent, std::size_t>> tagged;
  {
    std::lock_guard<std::mutex> lock(state.registry_mutex);
    for (const auto& buffer : state.buffers) {
      for (std::size_t i = 0; i < buffer->events.size(); ++i) {
        tagged.emplace_back(buffer->events[i], i);
      }
    }
  }
  // Parents sort before their children: earlier start first; at equal
  // starts the longer (enclosing) span first; and when spans on one
  // thread tie completely — nested spans within one clock tick — the
  // later-recorded one first, because a parent destructs (records) after
  // its children.
  std::stable_sort(
      tagged.begin(), tagged.end(),
      [](const std::pair<TraceEvent, std::size_t>& a,
         const std::pair<TraceEvent, std::size_t>& b) {
        if (a.first.start_us != b.first.start_us) {
          return a.first.start_us < b.first.start_us;
        }
        if (a.first.dur_us != b.first.dur_us) {
          return a.first.dur_us > b.first.dur_us;
        }
        if (a.first.tid == b.first.tid) return a.second > b.second;
        return false;
      });
  std::vector<TraceEvent> merged;
  merged.reserve(tagged.size());
  for (auto& [event, pos] : tagged) {
    (void)pos;
    merged.push_back(std::move(event));
  }
  return merged;
}

Json TraceToJson() {
  const std::uint64_t epoch =
      State().epoch_us.load(std::memory_order_relaxed);
  Json events = Json::Array();
  for (const TraceEvent& event : CollectTraceEvents()) {
    Json entry = Json::Object();
    entry.Set("name", Json::String(event.name));
    entry.Set("cat", Json::String(event.category));
    entry.Set("ph", Json::String("X"));
    entry.Set("ts", Json::Number(static_cast<double>(
                        event.start_us >= epoch ? event.start_us - epoch
                                                : 0)));
    entry.Set("dur", Json::Number(static_cast<double>(event.dur_us)));
    entry.Set("pid", Json::Number(1.0));
    entry.Set("tid", Json::Number(static_cast<double>(event.tid)));
    events.Push(std::move(entry));
  }
  Json trace = Json::Object();
  trace.Set("displayTimeUnit", Json::String("ms"));
  trace.Set("traceEvents", std::move(events));
  return trace;
}

void WriteTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  out << TraceToJson().Dump(2) << "\n";
  if (!out) {
    throw std::runtime_error("failed writing '" + path + "'");
  }
}

std::uint64_t Span::SteadyNowMicrosForTrace() { return SteadyNowMicros(); }

void Span::Record() {
  const std::uint64_t end_us = SteadyNowMicros();
  ThreadBuffer& buffer = LocalBuffer();
  TraceEvent event;
  event.name = std::move(name_);
  event.category = category_;
  event.start_us = start_us_;
  event.dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

}  // namespace sgr::obs
