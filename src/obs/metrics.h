#ifndef SGR_OBS_METRICS_H_
#define SGR_OBS_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace sgr::obs {

/// Named-counter registry of the observability layer.
///
/// Two kinds of entries:
///   * counters — monotonically increasing (MetricAdd). Consumers take a
///     snapshot before and after a unit of work and report the delta,
///     which is how the scenario engine attributes counts to one cell
///     even though the registry is process-global (cells run strictly
///     sequentially; only trials inside a cell are concurrent).
///   * high-water gauges — MetricMax keeps the maximum observed value
///     (pool queue depth). Deltas make no sense for a maximum, so the
///     engine resets them (ResetMaxMetrics) at each cell boundary.
///
/// The engine feeds the registry at coarse aggregation points — once per
/// crawl, once per restoration, once per chunked estimator pass, once
/// per pool task — never per inner-loop iteration, so the cost is a
/// short mutex-guarded map update a few dozen times per trial. When
/// metrics are disabled every call returns after one relaxed atomic
/// load. Like tracing, metrics are pure observation: no RNG draws, no
/// algorithm branches, and the report block they feed is volatile
/// (StripVolatile removes it), so reports are byte-identical post-strip
/// with metrics on or off.
using MetricsSnapshot = std::map<std::string, std::uint64_t>;

/// Whether metric updates are being recorded (one relaxed atomic load).
bool MetricsEnabled();

/// Turns the registry on or off. Existing values are kept (snapshots
/// deltas are what consumers report); ResetMetrics clears.
void EnableMetrics(bool on);

/// Adds `delta` to counter `name`. No-op when disabled.
void MetricAdd(const std::string& name, std::uint64_t delta);

/// Raises high-water gauge `name` to at least `value`. No-op when
/// disabled.
void MetricMax(const std::string& name, std::uint64_t value);

/// Copies of the current counter / gauge tables (sorted by name).
MetricsSnapshot SnapshotCounters();
MetricsSnapshot SnapshotMaxMetrics();

/// Zeroes the high-water gauges (cell boundary; see above).
void ResetMaxMetrics();

/// Drops every counter and gauge (test isolation).
void ResetMetrics();

/// Counter deltas `after - before` for every counter in `after`
/// (counters are monotonic, so a key missing from `before` counts from
/// zero). Zero deltas are omitted — a cell only reports what it touched.
MetricsSnapshot CounterDelta(const MetricsSnapshot& before,
                             const MetricsSnapshot& after);

/// Peak resident-set size of this process in bytes (Linux: getrusage
/// ru_maxhwm; 0 where unsupported). A gauge read at emission time.
std::size_t PeakRssBytes();

}  // namespace sgr::obs

#endif  // SGR_OBS_METRICS_H_
