#include "dk/dk_extract.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

namespace sgr {

DegreeVector ExtractDegreeVector(const Graph& g) {
  DegreeVector dv(g.MaxDegree() + 1, 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) ++dv[g.Degree(v)];
  return dv;
}

JointDegreeMatrix ExtractJointDegreeMatrix(const Graph& g) {
  JointDegreeMatrix jdm;
  for (const Edge& e : g.edges()) {
    jdm.AddSymmetric(static_cast<std::uint32_t>(g.Degree(e.u)),
                     static_cast<std::uint32_t>(g.Degree(e.v)), 1);
  }
  return jdm;
}

namespace {

/// Degree-ordered triangle enumeration for simple graphs: orient each edge
/// from the lower-ranked endpoint (by degree, then id) to the higher-ranked
/// one; every triangle has exactly one node with two out-edges, found by
/// intersecting forward lists. O(m^{3/2}) overall.
std::vector<std::int64_t> SimpleTriangles(const Graph& g) {
  const std::size_t n = g.NumNodes();
  std::vector<std::int64_t> t(n, 0);
  auto rank_less = [&g](NodeId a, NodeId b) {
    return g.Degree(a) != g.Degree(b) ? g.Degree(a) < g.Degree(b) : a < b;
  };
  std::vector<std::vector<NodeId>> forward(n);
  for (const Edge& e : g.edges()) {
    if (rank_less(e.u, e.v)) {
      forward[e.u].push_back(e.v);
    } else {
      forward[e.v].push_back(e.u);
    }
  }
  for (auto& list : forward) std::sort(list.begin(), list.end());
  // Each triangle {a, b, c} with rank a < b < c is oriented a->b, a->c,
  // b->c and is found exactly once: at the directed edge (a, b), as the
  // intersection of forward[a] and forward[b].
  for (NodeId u = 0; u < n; ++u) {
    const auto& fu = forward[u];
    for (const NodeId v : fu) {
      const auto& fv = forward[v];
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < fu.size() && b < fv.size()) {
        if (fu[a] < fv[b]) {
          ++a;
        } else if (fu[a] > fv[b]) {
          ++b;
        } else {
          ++t[u];
          ++t[v];
          ++t[fu[a]];
          ++a;
          ++b;
        }
      }
    }
  }
  return t;
}

/// Multiplicity-aware fallback: t_i = 1/2 Σ_{j≠l, j,l≠i} A_ij A_il A_jl,
/// evaluated with per-node distinct-neighbor maps.
std::vector<std::int64_t> MultigraphTriangles(const Graph& g) {
  const std::size_t n = g.NumNodes();
  std::vector<std::int64_t> t(n, 0);
  // Global pair multiplicity for O(1) A_jl lookups.
  std::unordered_map<std::uint64_t, std::int64_t> pair_count;
  for (const Edge& e : g.edges()) {
    if (e.u == e.v) continue;  // loops form no triangles
    const NodeId lo = std::min(e.u, e.v);
    const NodeId hi = std::max(e.u, e.v);
    ++pair_count[(static_cast<std::uint64_t>(lo) << 32) | hi];
  }
  auto count = [&pair_count](NodeId a, NodeId b) -> std::int64_t {
    const NodeId lo = std::min(a, b);
    const NodeId hi = std::max(a, b);
    auto it = pair_count.find((static_cast<std::uint64_t>(lo) << 32) | hi);
    return it == pair_count.end() ? 0 : it->second;
  };
  for (NodeId i = 0; i < n; ++i) {
    // Distinct neighbors with multiplicities (excluding i itself).
    std::unordered_map<NodeId, std::int64_t> nbr;
    for (NodeId w : g.adjacency(i)) {
      if (w != i) ++nbr[w];
    }
    std::int64_t twice = 0;
    for (const auto& [j, aij] : nbr) {
      for (const auto& [l, ail] : nbr) {
        if (j == l) continue;
        twice += aij * ail * count(j, l);
      }
    }
    t[i] = twice / 2;
  }
  return t;
}

}  // namespace

std::vector<std::int64_t> CountTrianglesPerNode(const Graph& g) {
  if (g.IsSimple()) return SimpleTriangles(g);
  return MultigraphTriangles(g);
}

std::vector<double> ExtractDegreeDependentClustering(const Graph& g) {
  const DegreeVector dv = ExtractDegreeVector(g);
  const std::vector<std::int64_t> t = CountTrianglesPerNode(g);
  std::vector<double> c(dv.size(), 0.0);
  std::vector<double> sums(dv.size(), 0.0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const std::size_t k = g.Degree(v);
    if (k >= 2) {
      sums[k] += 2.0 * static_cast<double>(t[v]) /
                 (static_cast<double>(k) * static_cast<double>(k - 1));
    }
  }
  for (std::size_t k = 2; k < dv.size(); ++k) {
    if (dv[k] > 0) c[k] = sums[k] / static_cast<double>(dv[k]);
  }
  return c;
}

}  // namespace sgr
