#include "dk/dk_extract.h"

#include <algorithm>
#include <cstdint>

namespace sgr {

DegreeVector ExtractDegreeVector(const Graph& g) {
  DegreeVector dv(g.MaxDegree() + 1, 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) ++dv[g.Degree(v)];
  return dv;
}

DegreeVector ExtractDegreeVector(const CsrGraph& g) {
  DegreeVector dv(g.MaxDegree() + 1, 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) ++dv[g.Degree(v)];
  return dv;
}

JointDegreeMatrix ExtractJointDegreeMatrix(const Graph& g) {
  JointDegreeMatrix jdm;
  for (const Edge& e : g.edges()) {
    jdm.AddSymmetric(static_cast<std::uint32_t>(g.Degree(e.u)),
                     static_cast<std::uint32_t>(g.Degree(e.v)), 1);
  }
  return jdm;
}

std::vector<std::int64_t> CountTrianglesPerNode(const Graph& g) {
  return CountTrianglesPerNode(CsrGraph(g));
}

std::vector<std::int64_t> CountTrianglesPerNode(const CsrGraph& g) {
  const std::size_t n = g.NumNodes();
  std::vector<std::int64_t> t(n, 0);
  auto rank_less = [&g](NodeId a, NodeId b) {
    return g.Degree(a) != g.Degree(b) ? g.Degree(a) < g.Degree(b) : a < b;
  };

  // Forward lists: for each node, its distinct higher-ranked neighbors with
  // edge multiplicities, in ascending id order. The sorted CSR ranges make
  // distinct-neighbor extraction a run-length scan, and id order is
  // preserved, so intersections below are linear merges.
  std::vector<std::size_t> offsets(n + 1, 0);
  std::vector<NodeId> fwd_nbr;
  std::vector<std::int64_t> fwd_mult;
  fwd_nbr.reserve(g.NumEdges());
  fwd_mult.reserve(g.NumEdges());
  NeighborCursor cursor(g);
  for (NodeId v = 0; v < n; ++v) {
    const NeighborSpan nbrs = cursor.Load(v);
    std::size_t i = 0;
    while (i < nbrs.size()) {
      const NodeId w = nbrs[i];
      std::size_t run = 1;
      while (i + run < nbrs.size() && nbrs[i + run] == w) ++run;
      i += run;
      if (w == v) continue;  // loops form no triangles
      if (rank_less(v, w)) {
        fwd_nbr.push_back(w);
        fwd_mult.push_back(static_cast<std::int64_t>(run));
      }
    }
    offsets[v + 1] = fwd_nbr.size();
  }

  // Every triangle {a, b, c} with rank a < b < c is oriented a->b, a->c,
  // b->c and found exactly once: at the directed edge (a, b), as the
  // intersection of the forward lists of a and b. The multiplicity product
  // A_ab A_ac A_bc is what t_i = Σ_{j<l} A_ij A_il A_jl accumulates at
  // each corner, so the same pass is exact for multigraphs.
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      const NodeId v = fwd_nbr[e];
      const std::int64_t m_uv = fwd_mult[e];
      std::size_t a = offsets[u];
      std::size_t b = offsets[v];
      while (a < offsets[u + 1] && b < offsets[v + 1]) {
        if (fwd_nbr[a] < fwd_nbr[b]) {
          ++a;
        } else if (fwd_nbr[a] > fwd_nbr[b]) {
          ++b;
        } else {
          const NodeId w = fwd_nbr[a];
          const std::int64_t weight = m_uv * fwd_mult[a] * fwd_mult[b];
          t[u] += weight;
          t[v] += weight;
          t[w] += weight;
          ++a;
          ++b;
        }
      }
    }
  }
  return t;
}

std::vector<double> ExtractDegreeDependentClustering(const Graph& g) {
  return ExtractDegreeDependentClustering(CsrGraph(g));
}

std::vector<double> ExtractDegreeDependentClustering(const CsrGraph& g) {
  return ExtractDegreeDependentClustering(g, CountTrianglesPerNode(g));
}

std::vector<double> ExtractDegreeDependentClustering(
    const CsrGraph& g, const std::vector<std::int64_t>& triangles) {
  const DegreeVector dv = ExtractDegreeVector(g);
  std::vector<double> c(dv.size(), 0.0);
  std::vector<double> sums(dv.size(), 0.0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const std::size_t k = g.Degree(v);
    if (k >= 2) {
      sums[k] += 2.0 * static_cast<double>(triangles[v]) /
                 (static_cast<double>(k) * static_cast<double>(k - 1));
    }
  }
  for (std::size_t k = 2; k < dv.size(); ++k) {
    if (dv[k] > 0) c[k] = sums[k] / static_cast<double>(dv[k]);
  }
  return c;
}

}  // namespace sgr
