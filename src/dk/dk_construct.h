#ifndef SGR_DK_DK_CONSTRUCT_H_
#define SGR_DK_DK_CONSTRUCT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dk/degree_vector.h"
#include "dk/joint_degree_matrix.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace sgr {

/// Options of the parallel Algorithm 5 assembly engine
/// (ConstructPreservingTargetsParallel).
///
/// `enabled` is an algorithm knob: the parallel engine draws its stub
/// picks from per-class-pair RNG streams derived with DeriveRoundSeed
/// instead of the caller's single sequential stream, so it selects a
/// different (equally valid) realization of the same targets — exactly
/// like ParallelRewireOptions::batch_size selects a different rewiring
/// trajectory. `threads` is an execution knob only: for a fixed seed the
/// assembled graph is byte-identical for every worker count, because
/// every pair's draws are a pure function of (seed, pair index) and the
/// commit phase applies them sequentially in canonical class-pair order.
struct ParallelAssemblyOptions {
  /// Selects the engine: false (the default) runs the classic sequential
  /// stub-matching loop on the caller's RNG stream; true runs the
  /// draw/commit engine below.
  bool enabled = false;

  /// Worker threads for the per-pair draw phase (0 = hardware
  /// concurrency, 1 = fully inline). Never changes results.
  std::size_t threads = 1;
};

/// Constructs a graph that contains `base` as a subgraph and exactly
/// realizes the target degree vector {n*(k)} and target joint degree matrix
/// {m*(k,k')} (Algorithm 5 of the paper).
///
/// `base_target_degrees[i]` is the target degree d*_i assigned to base node
/// i during the first phase; it must be >= the degree of i in `base`.
/// The targets must satisfy the realization conditions DV-1..3 and
/// JDM-1..4 with respect to `base` (guaranteed by the target builders);
/// violations are detected and reported via std::logic_error.
///
/// With an empty base this is the classic 2K construction from scratch used
/// by the Gjoka et al. baseline (Appendix B) and by the standalone dK
/// toolkit. The generated graph may contain multi-edges and self-loops,
/// which the problem definition allows (Section III-A).
Graph ConstructPreservingTargets(
    const Graph& base, const std::vector<std::uint32_t>& base_target_degrees,
    const DegreeVector& n_star, const JointDegreeMatrix& m_star, Rng& rng);

/// Parallel variant of ConstructPreservingTargets — the same Algorithm 5
/// semantics (node addition, stub pooling, m*(k,k') target-copy wiring,
/// identical realization-condition checks) with the stub-matching draws
/// parallelized:
///
///   1. the added-node degree sequence is shuffled with a stream derived
///      from `seed` (DeriveRoundSeed — independent of everything else),
///   2. the class pairs (k, k') with m*(k,k') - m'(k,k') > 0 edges to copy
///      are enumerated in canonical (k, k') order and their stub-pool size
///      trajectories are pre-computed (pool sizes evolve deterministically,
///      so every NextIndex bound is known before any draw happens),
///   3. each pair draws its stub-candidate indices from its own RNG stream
///      (DeriveRoundSeed(seed, stream, pair)) — scored concurrently on up
///      to `threads` workers, each writing only its own pair's slots,
///   4. the commit phase replays the draws sequentially in canonical pair
///      order against the live stub pools and adds the edges.
///
/// The draws are a pure function of (seed, pair index), and the single
/// writer commits in a fixed order, so the assembled graph is
/// byte-identical for every `threads` value. The output differs from the
/// sequential ConstructPreservingTargets for any seed (different RNG
/// streams — an algorithm knob, see ParallelAssemblyOptions); both
/// realize the same (n*, m*) targets exactly.
Graph ConstructPreservingTargetsParallel(
    const Graph& base, const std::vector<std::uint32_t>& base_target_degrees,
    const DegreeVector& n_star, const JointDegreeMatrix& m_star,
    std::uint64_t seed, std::size_t threads = 1);

/// Classic 2K construction: a random graph realizing (n*, m*) from an empty
/// base.
Graph Construct2kGraph(const DegreeVector& n_star,
                       const JointDegreeMatrix& m_star, Rng& rng);

/// Parallel 2K construction from an empty base (the Gjoka et al. baseline
/// through the parallel assembly engine); see
/// ConstructPreservingTargetsParallel for the determinism contract.
Graph Construct2kGraphParallel(const DegreeVector& n_star,
                               const JointDegreeMatrix& m_star,
                               std::uint64_t seed, std::size_t threads = 1);

/// 1K construction (configuration model): a random multigraph realizing a
/// degree vector exactly — stubs are shuffled uniformly and paired. The
/// degree sum must be even (DV-2). Lower rung of the dK-series ladder
/// (Section III-C); used by the dK toolkit and ablations.
Graph Construct1kGraph(const DegreeVector& n_star, Rng& rng);

/// 0K construction: n nodes and m uniformly random edges (loops and
/// multi-edges allowed) — preserves only n and the average degree, the
/// bottom of the dK-series.
Graph Construct0kGraph(std::size_t num_nodes, std::size_t num_edges,
                       Rng& rng);

/// Number of edges between target-degree classes inside `base`:
/// m'(k,k') (Section IV-C, condition JDM-4).
JointDegreeMatrix SubgraphClassEdges(
    const Graph& base, const std::vector<std::uint32_t>& base_target_degrees);

}  // namespace sgr

#endif  // SGR_DK_DK_CONSTRUCT_H_
