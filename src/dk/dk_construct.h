#ifndef SGR_DK_DK_CONSTRUCT_H_
#define SGR_DK_DK_CONSTRUCT_H_

#include <cstdint>
#include <vector>

#include "dk/degree_vector.h"
#include "dk/joint_degree_matrix.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace sgr {

/// Constructs a graph that contains `base` as a subgraph and exactly
/// realizes the target degree vector {n*(k)} and target joint degree matrix
/// {m*(k,k')} (Algorithm 5 of the paper).
///
/// `base_target_degrees[i]` is the target degree d*_i assigned to base node
/// i during the first phase; it must be >= the degree of i in `base`.
/// The targets must satisfy the realization conditions DV-1..3 and
/// JDM-1..4 with respect to `base` (guaranteed by the target builders);
/// violations are detected and reported via std::logic_error.
///
/// With an empty base this is the classic 2K construction from scratch used
/// by the Gjoka et al. baseline (Appendix B) and by the standalone dK
/// toolkit. The generated graph may contain multi-edges and self-loops,
/// which the problem definition allows (Section III-A).
Graph ConstructPreservingTargets(
    const Graph& base, const std::vector<std::uint32_t>& base_target_degrees,
    const DegreeVector& n_star, const JointDegreeMatrix& m_star, Rng& rng);

/// Classic 2K construction: a random graph realizing (n*, m*) from an empty
/// base.
Graph Construct2kGraph(const DegreeVector& n_star,
                       const JointDegreeMatrix& m_star, Rng& rng);

/// 1K construction (configuration model): a random multigraph realizing a
/// degree vector exactly — stubs are shuffled uniformly and paired. The
/// degree sum must be even (DV-2). Lower rung of the dK-series ladder
/// (Section III-C); used by the dK toolkit and ablations.
Graph Construct1kGraph(const DegreeVector& n_star, Rng& rng);

/// 0K construction: n nodes and m uniformly random edges (loops and
/// multi-edges allowed) — preserves only n and the average degree, the
/// bottom of the dK-series.
Graph Construct0kGraph(std::size_t num_nodes, std::size_t num_edges,
                       Rng& rng);

/// Number of edges between target-degree classes inside `base`:
/// m'(k,k') (Section IV-C, condition JDM-4).
JointDegreeMatrix SubgraphClassEdges(
    const Graph& base, const std::vector<std::uint32_t>& base_target_degrees);

}  // namespace sgr

#endif  // SGR_DK_DK_CONSTRUCT_H_
