#ifndef SGR_DK_DK_EXTRACT_H_
#define SGR_DK_DK_EXTRACT_H_

#include <vector>

#include "dk/degree_vector.h"
#include "dk/joint_degree_matrix.h"
#include "graph/csr_graph.h"
#include "graph/graph.h"

namespace sgr {

/// Extraction of dK-series statistics from a complete graph (Section III-C).
/// These are ground-truth counterparts of the re-weighted estimates, used by
/// the analysis module, the test suite, and the dK generation toolkit.
/// The CsrGraph overloads are the hot paths; the Graph overloads snapshot
/// and delegate, so both stay exactly equivalent.

/// Degree vector {n(k)}: ExtractDegreeVector(g)[k] counts nodes of degree k.
DegreeVector ExtractDegreeVector(const Graph& g);
DegreeVector ExtractDegreeVector(const CsrGraph& g);

/// Joint degree matrix {m(k,k')}: number of edges between degree classes.
/// A self-loop at a degree-k node contributes 1 to m(k,k) (it is one edge
/// whose both endpoints have degree k).
JointDegreeMatrix ExtractJointDegreeMatrix(const Graph& g);

/// Per-node triangle counts t_i = Σ_{j<l} A_ij A_il A_jl (multiplicity
/// aware; self-loops form no triangles). One degree-ordered node-iterator
/// algorithm over the sorted CSR arrays covers simple graphs and
/// multigraphs alike: distinct-neighbor lists with multiplicities come
/// from run-length scanning the sorted ranges, and every triangle is found
/// exactly once at its lowest-ranked oriented edge. O(m^{3/2}) in the
/// number of distinct edges.
std::vector<std::int64_t> CountTrianglesPerNode(const Graph& g);
std::vector<std::int64_t> CountTrianglesPerNode(const CsrGraph& g);

/// Degree-dependent clustering coefficient {c̄(k)}: c̄(k) is the mean of
/// 2 t_i / (k (k-1)) over nodes of degree k; c̄(0) = c̄(1) = 0. The result
/// has size MaxDegree()+1. The `triangles` overload reuses a
/// CountTrianglesPerNode result the caller already has (the property
/// analyzer computes several clustering statistics from one triangle
/// pass).
std::vector<double> ExtractDegreeDependentClustering(const Graph& g);
std::vector<double> ExtractDegreeDependentClustering(const CsrGraph& g);
std::vector<double> ExtractDegreeDependentClustering(
    const CsrGraph& g, const std::vector<std::int64_t>& triangles);

}  // namespace sgr

#endif  // SGR_DK_DK_EXTRACT_H_
