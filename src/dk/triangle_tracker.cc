#include "dk/triangle_tracker.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <utility>

#include "dk/dk_extract.h"

namespace sgr {

TriangleTracker::TriangleTracker(const Graph& g,
                                 std::vector<double> target_clustering)
    : adj_(g.NumNodes()),
      t_(CountTrianglesPerNode(g)),
      degree_(g.NumNodes(), 0),
      target_(std::move(target_clustering)) {
  std::uint32_t k_max = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    degree_[v] = static_cast<std::uint32_t>(g.Degree(v));
    k_max = std::max(k_max, degree_[v]);
  }
  const std::size_t classes =
      std::max<std::size_t>(k_max + 1, target_.size());
  target_.resize(classes, 0.0);
  class_n_.assign(classes, 0);
  class_t_.assign(classes, 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ++class_n_[degree_[v]];
    class_t_[degree_[v]] += t_[v];
  }
  for (const Edge& e : g.edges()) {
    if (e.u == e.v) {
      adj_[e.u][e.u] += 2;  // A_vv = twice the loop count
    } else {
      ++adj_[e.u][e.v];
      ++adj_[e.v][e.u];
    }
  }
  for (double c : target_) target_mass_ += c;
  RecomputeObjective();
}

double TriangleTracker::ClassTerm(std::uint32_t k) const {
  return std::abs(PresentClustering(k) - target_[k]);
}

double TriangleTracker::ClassTermWithDelta(std::uint32_t k,
                                           std::int64_t dt) const {
  if (k < 2 || k >= class_n_.size() || class_n_[k] == 0) {
    // c̄(k) is identically 0 for these classes, with or without dt.
    return std::abs(target_[k]);
  }
  const double clustering =
      2.0 * static_cast<double>(class_t_[k] + dt) /
      (static_cast<double>(k) * static_cast<double>(k - 1) *
       static_cast<double>(class_n_[k]));
  return std::abs(clustering - target_[k]);
}

double TriangleTracker::PresentClustering(std::uint32_t k) const {
  if (k < 2 || k >= class_n_.size() || class_n_[k] == 0) return 0.0;
  return 2.0 * static_cast<double>(class_t_[k]) /
         (static_cast<double>(k) * static_cast<double>(k - 1) *
          static_cast<double>(class_n_[k]));
}

void TriangleTracker::RecomputeObjective() {
  objective_num_ = 0.0;
  for (std::uint32_t k = 0; k < target_.size(); ++k) {
    objective_num_ += ClassTerm(k);
  }
}

void TriangleTracker::BumpClassTriangles(std::uint32_t k,
                                         std::int64_t delta) {
  if (delta == 0) return;
  objective_num_ -= ClassTerm(k);
  class_t_[k] += delta;
  objective_num_ += ClassTerm(k);
  if (touched_sink_ != nullptr) touched_sink_->push_back(k);
}

std::int64_t TriangleTracker::Multiplicity(NodeId u, NodeId v) const {
  const auto& map = adj_[u];
  auto it = map.find(v);
  return it == map.end() ? 0 : it->second;
}

void TriangleTracker::ApplyTriangleDelta(NodeId u, NodeId v,
                                         std::int64_t sign) {
  // Iterate the endpoint with the smaller distinct-neighbor map.
  const NodeId a = adj_[u].size() <= adj_[v].size() ? u : v;
  const NodeId b = (a == u) ? v : u;
  std::int64_t common = 0;
  // sgr-check: allow(unordered-iter) integer triangle-count deltas; per-w updates commute
  for (const auto& [w, a_aw] : adj_[a]) {
    if (w == u || w == v) continue;
    auto it = adj_[b].find(w);
    if (it == adj_[b].end()) continue;
    const std::int64_t weight =
        static_cast<std::int64_t>(a_aw) * it->second;
    common += weight;
    t_[w] += sign * weight;
    BumpClassTriangles(degree_[w], sign * weight);
  }
  t_[u] += sign * common;
  BumpClassTriangles(degree_[u], sign * common);
  t_[v] += sign * common;
  BumpClassTriangles(degree_[v], sign * common);
}

void TriangleTracker::RemoveEdge(NodeId u, NodeId v) {
  if (u == v) {
    auto it = adj_[u].find(u);
    assert(it != adj_[u].end() && it->second >= 2);
    it->second -= 2;
    if (it->second == 0) adj_[u].erase(it);
    return;
  }
  ApplyTriangleDelta(u, v, -1);
  auto drop = [this](NodeId from, NodeId to) {
    auto it = adj_[from].find(to);
    assert(it != adj_[from].end() && it->second >= 1);
    if (--it->second == 0) adj_[from].erase(it);
  };
  drop(u, v);
  drop(v, u);
}

void TriangleTracker::AddEdge(NodeId u, NodeId v) {
  if (u == v) {
    adj_[u][u] += 2;
    return;
  }
  ApplyTriangleDelta(u, v, +1);
  ++adj_[u][v];
  ++adj_[v][u];
}

double TriangleTracker::EvaluateSwapDelta(
    NodeId i, NodeId j, NodeId a, NodeId b,
    std::vector<std::uint32_t>* touched_classes) const {
  // The four operations of the swap are scored in sequence against the
  // frozen tracker state plus a tiny overlay of the multiplicity changes
  // the preceding operations made. Operations only ever modify pairs
  // among the four endpoints, so the overlay holds at most 4 entries
  // (pairs normalized u <= v; a loop at v stores the A_vv convention of
  // twice the loop count).
  struct PairDelta {
    NodeId u, v;
    std::int64_t d;
  };
  std::array<PairDelta, 4> overlay;
  std::size_t overlay_size = 0;
  const auto bump_pair = [&](NodeId u, NodeId v, std::int64_t d) {
    if (u > v) std::swap(u, v);
    for (std::size_t k = 0; k < overlay_size; ++k) {
      if (overlay[k].u == u && overlay[k].v == v) {
        overlay[k].d += d;
        return;
      }
    }
    overlay[overlay_size++] = {u, v, d};
  };
  // A'_uv: base multiplicity plus whatever the preceding operations did.
  const auto overlaid = [&](NodeId u, NodeId v) -> std::int64_t {
    const std::int64_t base = Multiplicity(u, v);
    const NodeId lo = u <= v ? u : v;
    const NodeId hi = u <= v ? v : u;
    for (std::size_t k = 0; k < overlay_size; ++k) {
      if (overlay[k].u == lo && overlay[k].v == hi) {
        return base + overlay[k].d;
      }
    }
    return base;
  };

  // Net T(k) deltas across the four operations. Linear scan: the distinct
  // degree classes among two nodes' common neighbors are few.
  std::vector<std::pair<std::uint32_t, std::int64_t>> class_delta;
  class_delta.reserve(8);
  const auto add_class = [&](std::uint32_t k, std::int64_t d) {
    if (d == 0) return;
    for (auto& [cls, sum] : class_delta) {
      if (cls == k) {
        sum += d;
        return;
      }
    }
    class_delta.emplace_back(k, d);
  };

  const std::array<NodeId, 4> endpoints = {i, j, a, b};
  const auto is_endpoint = [&](NodeId w) {
    return w == i || w == j || w == a || w == b;
  };

  struct Op {
    NodeId u, v;
    std::int64_t sign;
  };
  const std::array<Op, 4> ops = {Op{i, j, -1}, Op{a, b, -1}, Op{i, b, +1},
                                 Op{a, j, +1}};
  for (const Op& op : ops) {
    if (op.u == op.v) {
      bump_pair(op.u, op.u, 2 * op.sign);  // loops form no triangles
      continue;
    }
    // Base pass over the frozen maps: a non-endpoint common neighbor w is
    // never touched by the overlay (operations only modify endpoint
    // pairs), so its weight reads straight from the base state.
    const NodeId p = adj_[op.u].size() <= adj_[op.v].size() ? op.u : op.v;
    const NodeId q = (p == op.u) ? op.v : op.u;
    std::int64_t common = 0;
    // sgr-check: allow(unordered-iter) integer triangle-count deltas; per-w updates commute
    for (const auto& [w, m_pw] : adj_[p]) {
      if (w == op.u || w == op.v || is_endpoint(w)) continue;
      const auto it = adj_[q].find(w);
      if (it == adj_[q].end()) continue;
      const std::int64_t weight =
          static_cast<std::int64_t>(m_pw) * it->second;
      common += weight;
      add_class(degree_[w], op.sign * weight);
    }
    // Correction pass: endpoint common neighbors read through the
    // overlay (deduplicated — endpoints may coincide, e.g. j == a).
    for (std::size_t e = 0; e < endpoints.size(); ++e) {
      const NodeId w = endpoints[e];
      if (w == op.u || w == op.v) continue;
      bool duplicate = false;
      for (std::size_t f = 0; f < e; ++f) {
        if (endpoints[f] == w) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      const std::int64_t weight = overlaid(op.u, w) * overlaid(op.v, w);
      if (weight == 0) continue;
      common += weight;
      add_class(degree_[w], op.sign * weight);
    }
    add_class(degree_[op.u], op.sign * common);
    add_class(degree_[op.v], op.sign * common);
    bump_pair(op.u, op.v, op.sign);
  }

  double delta = 0.0;
  for (const auto& [k, d] : class_delta) {
    if (d == 0) continue;
    delta += ClassTermWithDelta(k, d) - ClassTerm(k);
    if (touched_classes != nullptr) touched_classes->push_back(k);
  }
  return delta;
}

void TriangleTracker::ApplySwap(NodeId i, NodeId j, NodeId a, NodeId b,
                                std::vector<std::uint32_t>* touched_classes) {
  touched_sink_ = touched_classes;
  RemoveEdge(i, j);
  RemoveEdge(a, b);
  AddEdge(i, b);
  AddEdge(a, j);
  touched_sink_ = nullptr;
}

}  // namespace sgr
