#include "dk/triangle_tracker.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dk/dk_extract.h"

namespace sgr {

TriangleTracker::TriangleTracker(const Graph& g,
                                 std::vector<double> target_clustering)
    : adj_(g.NumNodes()),
      t_(CountTrianglesPerNode(g)),
      degree_(g.NumNodes(), 0),
      target_(std::move(target_clustering)) {
  std::uint32_t k_max = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    degree_[v] = static_cast<std::uint32_t>(g.Degree(v));
    k_max = std::max(k_max, degree_[v]);
  }
  const std::size_t classes =
      std::max<std::size_t>(k_max + 1, target_.size());
  target_.resize(classes, 0.0);
  class_n_.assign(classes, 0);
  class_t_.assign(classes, 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ++class_n_[degree_[v]];
    class_t_[degree_[v]] += t_[v];
  }
  for (const Edge& e : g.edges()) {
    if (e.u == e.v) {
      adj_[e.u][e.u] += 2;  // A_vv = twice the loop count
    } else {
      ++adj_[e.u][e.v];
      ++adj_[e.v][e.u];
    }
  }
  for (double c : target_) target_mass_ += c;
  RecomputeObjective();
}

double TriangleTracker::ClassTerm(std::uint32_t k) const {
  return std::abs(PresentClustering(k) - target_[k]);
}

double TriangleTracker::PresentClustering(std::uint32_t k) const {
  if (k < 2 || k >= class_n_.size() || class_n_[k] == 0) return 0.0;
  return 2.0 * static_cast<double>(class_t_[k]) /
         (static_cast<double>(k) * static_cast<double>(k - 1) *
          static_cast<double>(class_n_[k]));
}

void TriangleTracker::RecomputeObjective() {
  objective_num_ = 0.0;
  for (std::uint32_t k = 0; k < target_.size(); ++k) {
    objective_num_ += ClassTerm(k);
  }
}

void TriangleTracker::BumpClassTriangles(std::uint32_t k,
                                         std::int64_t delta) {
  if (delta == 0) return;
  objective_num_ -= ClassTerm(k);
  class_t_[k] += delta;
  objective_num_ += ClassTerm(k);
}

std::int64_t TriangleTracker::Multiplicity(NodeId u, NodeId v) const {
  const auto& map = adj_[u];
  auto it = map.find(v);
  return it == map.end() ? 0 : it->second;
}

void TriangleTracker::ApplyTriangleDelta(NodeId u, NodeId v,
                                         std::int64_t sign) {
  // Iterate the endpoint with the smaller distinct-neighbor map.
  const NodeId a = adj_[u].size() <= adj_[v].size() ? u : v;
  const NodeId b = (a == u) ? v : u;
  std::int64_t common = 0;
  for (const auto& [w, a_aw] : adj_[a]) {
    if (w == u || w == v) continue;
    auto it = adj_[b].find(w);
    if (it == adj_[b].end()) continue;
    const std::int64_t weight =
        static_cast<std::int64_t>(a_aw) * it->second;
    common += weight;
    t_[w] += sign * weight;
    BumpClassTriangles(degree_[w], sign * weight);
  }
  t_[u] += sign * common;
  BumpClassTriangles(degree_[u], sign * common);
  t_[v] += sign * common;
  BumpClassTriangles(degree_[v], sign * common);
}

void TriangleTracker::RemoveEdge(NodeId u, NodeId v) {
  if (u == v) {
    auto it = adj_[u].find(u);
    assert(it != adj_[u].end() && it->second >= 2);
    it->second -= 2;
    if (it->second == 0) adj_[u].erase(it);
    return;
  }
  ApplyTriangleDelta(u, v, -1);
  auto drop = [this](NodeId from, NodeId to) {
    auto it = adj_[from].find(to);
    assert(it != adj_[from].end() && it->second >= 1);
    if (--it->second == 0) adj_[from].erase(it);
  };
  drop(u, v);
  drop(v, u);
}

void TriangleTracker::AddEdge(NodeId u, NodeId v) {
  if (u == v) {
    adj_[u][u] += 2;
    return;
  }
  ApplyTriangleDelta(u, v, +1);
  ++adj_[u][v];
  ++adj_[v][u];
}

}  // namespace sgr
