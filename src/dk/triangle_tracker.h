#ifndef SGR_DK_TRIANGLE_TRACKER_H_
#define SGR_DK_TRIANGLE_TRACKER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace sgr {

/// Incremental maintenance of per-node triangle counts, per-degree-class
/// clustering sums, and the rewiring objective of Algorithm 6.
///
/// The rewiring phase performs millions of trial edge swaps; recomputing the
/// degree-dependent clustering coefficient from scratch per attempt would be
/// O(m^{3/2}) each. This tracker maintains:
///   * t_v — triangles through node v (multiplicity-aware),
///   * T(k) = Σ_{deg v = k} t_v per degree class,
///   * the normalized L1 objective
///       D = Σ_k |c̄(k) − ĉ̄(k)| / Σ_k ĉ̄(k),   c̄(k) = 2 T(k) / (k(k−1) n(k)),
/// under edge insertions/removals in O(min-degree) hash work per operation —
/// the O(k̄²) average the paper cites for one rewiring attempt.
///
/// Degrees are frozen at construction: Algorithm 6 only performs
/// degree-preserving swaps, so degree classes never change. The tracker owns
/// its own adjacency-multiplicity structure; callers must mirror every
/// AddEdge/RemoveEdge on the actual Graph (or revert the tracker) to stay in
/// sync.
class TriangleTracker {
 public:
  /// Builds the tracker from `g` with rewiring target ĉ̄(k) =
  /// `target_clustering[k]` (shorter vectors are zero-padded).
  TriangleTracker(const Graph& g, std::vector<double> target_clustering);

  /// Notifies the tracker that edge (u, v) was removed. u == v (loop) only
  /// updates multiplicities (loops form no triangles).
  void RemoveEdge(NodeId u, NodeId v);

  /// Notifies the tracker that edge (u, v) was added.
  void AddEdge(NodeId u, NodeId v);

  /// Objective-numerator change of the 2-swap that removes (i, j) and
  /// (a, b) and adds (i, b) and (a, j), WITHOUT mutating the tracker.
  /// Negative means the swap strictly improves the objective. The four
  /// edge operations are scored in the same order ApplySwap performs
  /// them, so the value equals the objective change an actual
  /// apply-and-recompute would observe (up to summation order).
  ///
  /// `touched_classes`, when non-null, receives every degree class whose
  /// T(k) the swap would modify — exactly the classes this score reads
  /// from mutable state. Together with the four endpoint adjacencies
  /// (the only other mutable reads) that set defines the swap's conflict
  /// footprint: the value stays exact as long as no committed swap
  /// touches one of these nodes or classes.
  ///
  /// Const and data-race-free against concurrent EvaluateSwapDelta calls:
  /// the batched rewiring engine scores whole proposal batches in
  /// parallel against one frozen tracker state.
  double EvaluateSwapDelta(NodeId i, NodeId j, NodeId a, NodeId b,
                           std::vector<std::uint32_t>* touched_classes =
                               nullptr) const;

  /// Applies the 2-swap (remove (i, j), remove (a, b), add (i, b),
  /// add (a, j)) through the incremental update path — the cheap commit
  /// primitive of the batched rewiring engine. `touched_classes`, when
  /// non-null, receives every degree class whose T(k) actually changed
  /// (the dirty set later proposals in the same round are checked
  /// against).
  void ApplySwap(NodeId i, NodeId j, NodeId a, NodeId b,
                 std::vector<std::uint32_t>* touched_classes = nullptr);

  /// Triangles through `v`.
  std::int64_t triangles(NodeId v) const { return t_[v]; }

  /// T(k): summed triangles of degree class k (0 for out-of-range k).
  std::int64_t ClassTriangles(std::uint32_t k) const {
    return k < class_t_.size() ? class_t_[k] : 0;
  }

  /// Present degree-dependent clustering c̄(k) of the tracked graph.
  double PresentClustering(std::uint32_t k) const;

  /// Normalized L1 distance between present and target clustering
  /// (the objective D of Algorithm 6). Maintained incrementally; see
  /// RecomputeObjective for drift control. Returns 0 when the target has no
  /// mass (Σ ĉ̄ = 0: nothing to optimize).
  double Objective() const { return target_mass_ > 0.0 ? objective_num_ / target_mass_ : 0.0; }

  /// Recomputes the objective numerator from T(k) to cancel accumulated
  /// floating-point drift. Called periodically by the rewirer.
  void RecomputeObjective();

  /// Multiplicity A_uv currently tracked (A_vv = 2 × loops).
  std::int64_t Multiplicity(NodeId u, NodeId v) const;

 private:
  double ClassTerm(std::uint32_t k) const;
  /// |c̄(k) − ĉ̄(k)| as it would read with T(k) shifted by `dt`.
  double ClassTermWithDelta(std::uint32_t k, std::int64_t dt) const;
  void BumpClassTriangles(std::uint32_t k, std::int64_t delta);
  /// Applies the triangle delta of inserting (sign=+1) or deleting
  /// (sign=-1) one (u,v) edge, u != v.
  void ApplyTriangleDelta(NodeId u, NodeId v, std::int64_t sign);

  std::vector<std::unordered_map<NodeId, std::int32_t>> adj_;
  std::vector<std::int64_t> t_;
  std::vector<std::uint32_t> degree_;   // frozen degree classes
  std::vector<std::int64_t> class_n_;   // n(k), frozen
  std::vector<std::int64_t> class_t_;   // T(k)
  std::vector<double> target_;          // ĉ̄(k), padded
  double target_mass_ = 0.0;            // Σ_k ĉ̄(k)
  double objective_num_ = 0.0;          // Σ_k |c̄(k) − ĉ̄(k)|
  // Sink for the classes BumpClassTriangles touches during ApplySwap
  // (null outside of an ApplySwap call).
  std::vector<std::uint32_t>* touched_sink_ = nullptr;
};

}  // namespace sgr

#endif  // SGR_DK_TRIANGLE_TRACKER_H_
