#include "dk/dk_construct.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "exp/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sgr {

namespace {

/// Stream tags of the parallel assembly engine's derived RNG streams
/// (see DeriveRoundSeed): one for the added-node degree shuffle, one per
/// class pair for the stub draws.
constexpr std::uint64_t kAssemblyShuffleStream = 0xA5E0ULL;
constexpr std::uint64_t kAssemblyPairStream = 0xA5E1ULL;

/// Shared prologue of both assembly engines (Algorithm 5, lines 1-12):
/// validates the targets against the base, adds the missing nodes (their
/// degree sequence shuffled by `shuffle_rng`), and pools the free
/// half-edges by target degree class.
struct AssemblyState {
  Graph result;
  std::vector<std::vector<NodeId>> stubs;
  std::size_t k_max = 0;
};

AssemblyState BuildAssemblyState(
    const Graph& base, const std::vector<std::uint32_t>& base_target_degrees,
    const DegreeVector& n_star, Rng& shuffle_rng) {
  if (base_target_degrees.size() != base.NumNodes()) {
    throw std::logic_error(
        "ConstructPreservingTargets: one target degree per base node "
        "required");
  }
  AssemblyState state;
  state.k_max = n_star.empty() ? 0 : n_star.size() - 1;

  // n'(k): base nodes per target-degree class.
  DegreeVector n_prime(n_star.size(), 0);
  for (std::uint32_t d : base_target_degrees) {
    if (d > state.k_max) {
      throw std::logic_error(
          "ConstructPreservingTargets: base target degree exceeds k*_max");
    }
    ++n_prime[d];
  }

  state.result = base;
  const std::int64_t total_nodes = DegreeVectorNodes(n_star);
  const auto base_nodes = static_cast<std::int64_t>(base.NumNodes());
  if (total_nodes < base_nodes) {
    throw std::logic_error(
        "ConstructPreservingTargets: target node count below subgraph size "
        "(DV-3 violated)");
  }

  // Degree sequence for the added nodes: degree k appears n*(k) - n'(k)
  // times (Algorithm 5, lines 2-8).
  std::vector<std::uint32_t> added_degrees;
  added_degrees.reserve(static_cast<std::size_t>(total_nodes - base_nodes));
  for (std::size_t k = 0; k < n_star.size(); ++k) {
    const std::int64_t need = n_star[k] - n_prime[k];
    if (need < 0) {
      throw std::logic_error(
          "ConstructPreservingTargets: DV-3 violated at degree " +
          std::to_string(k));
    }
    for (std::int64_t c = 0; c < need; ++c) {
      added_degrees.push_back(static_cast<std::uint32_t>(k));
    }
  }
  std::shuffle(added_degrees.begin(), added_degrees.end(),
               shuffle_rng.engine());

  // Attach half-edges (stubs): d*_i - d'_i per base node, d*_i per added
  // node, pooled by target degree (lines 9-12).
  state.stubs.assign(n_star.size(), {});
  for (NodeId v = 0; v < base.NumNodes(); ++v) {
    const std::uint32_t target = base_target_degrees[v];
    const std::size_t have = base.Degree(v);
    if (have > target) {
      throw std::logic_error(
          "ConstructPreservingTargets: base degree exceeds target degree");
    }
    for (std::size_t s = have; s < target; ++s) {
      state.stubs[target].push_back(v);
    }
  }
  for (std::uint32_t d : added_degrees) {
    const NodeId v = state.result.AddNode();
    for (std::uint32_t s = 0; s < d; ++s) state.stubs[d].push_back(v);
  }
  return state;
}

void CheckNoLeftoverStubs(const AssemblyState& state) {
  // Iterate the pools that exist: an empty n_star ({} targets — a legal
  // degenerate input that must yield an empty graph) has no pools at
  // all, while k_max is still 0.
  for (std::size_t k = 0; k < state.stubs.size(); ++k) {
    if (!state.stubs[k].empty()) {
      throw std::logic_error(
          "ConstructPreservingTargets: leftover free half-edges at degree " +
          std::to_string(k) + " (JDM-3 violated)");
    }
  }
}

[[noreturn]] void ThrowStubExhausted() {
  throw std::logic_error(
      "ConstructPreservingTargets: stub pool exhausted (JDM-3 violated)");
}

/// Swap-with-back pop at a pre-drawn index — the commit-phase half of
/// pop_random, with the random index supplied by the draw phase.
NodeId PopAt(std::vector<NodeId>& pool, std::size_t idx) {
  const NodeId v = pool[idx];
  pool[idx] = pool.back();
  pool.pop_back();
  return v;
}

/// One class pair (k, k') of the parallel engine's wiring schedule, with
/// its pre-computed stub-pool starting sizes and its pre-drawn pick
/// indices (filled by the draw phase).
struct PairSchedule {
  std::uint32_t k = 0;
  std::uint32_t kp = 0;
  std::int64_t need = 0;
  std::size_t size_k_start = 0;   ///< stubs[k] size when this pair commits
  std::size_t size_kp_start = 0;  ///< stubs[kp] size (== size_k for k==kp)
  std::vector<std::size_t> picks; ///< 2 * need indices, draw order
};

}  // namespace

JointDegreeMatrix SubgraphClassEdges(
    const Graph& base,
    const std::vector<std::uint32_t>& base_target_degrees) {
  JointDegreeMatrix m_prime;
  for (const Edge& e : base.edges()) {
    m_prime.AddSymmetric(base_target_degrees[e.u], base_target_degrees[e.v],
                         1);
  }
  return m_prime;
}

Graph ConstructPreservingTargets(
    const Graph& base, const std::vector<std::uint32_t>& base_target_degrees,
    const DegreeVector& n_star, const JointDegreeMatrix& m_star, Rng& rng) {
  AssemblyState state =
      BuildAssemblyState(base, base_target_degrees, n_star, rng);

  // Wire free half-edges class pair by class pair (lines 13-16).
  const JointDegreeMatrix m_prime =
      SubgraphClassEdges(base, base_target_degrees);
  auto pop_random = [&rng](std::vector<NodeId>& pool) {
    return PopAt(pool, rng.NextIndex(pool.size()));
  };
  for (std::uint32_t k = 1; k <= state.k_max; ++k) {
    for (std::uint32_t kp = k; kp <= state.k_max; ++kp) {
      const std::int64_t need = m_star.At(k, kp) - m_prime.At(k, kp);
      if (need < 0) {
        throw std::logic_error(
            "ConstructPreservingTargets: JDM-4 violated at (" +
            std::to_string(k) + "," + std::to_string(kp) + ")");
      }
      if (need == 0) continue;
      obs::Span pair_span("assemble_pair", "assemble");
      obs::MetricAdd("assemble.pairs", 1);
      for (std::int64_t c = 0; c < need; ++c) {
        if (state.stubs[k].empty() || state.stubs[kp].empty() ||
            (k == kp && state.stubs[k].size() < 2)) {
          ThrowStubExhausted();
        }
        const NodeId a = pop_random(state.stubs[k]);
        const NodeId b = pop_random(state.stubs[kp]);
        state.result.AddEdge(a, b);
      }
    }
  }
  CheckNoLeftoverStubs(state);
  return state.result;
}

Graph ConstructPreservingTargetsParallel(
    const Graph& base, const std::vector<std::uint32_t>& base_target_degrees,
    const DegreeVector& n_star, const JointDegreeMatrix& m_star,
    std::uint64_t seed, std::size_t threads) {
  Rng shuffle_rng(DeriveRoundSeed(seed, kAssemblyShuffleStream, 0));
  AssemblyState state =
      BuildAssemblyState(base, base_target_degrees, n_star, shuffle_rng);
  const JointDegreeMatrix m_prime =
      SubgraphClassEdges(base, base_target_degrees);

  // Schedule: the class pairs with edges to copy, in the canonical
  // (k, k') order the sequential loop uses. Pool sizes evolve
  // deterministically — pair p starts from the sizes left by pairs
  // 0..p-1 — so feasibility (JDM-3) is checked here, before any draw,
  // with the same outcome the sequential engine's per-edge checks give.
  std::vector<PairSchedule> schedule;
  {
    std::vector<std::size_t> size(state.stubs.size());
    for (std::size_t k = 0; k < state.stubs.size(); ++k) {
      size[k] = state.stubs[k].size();
    }
    for (std::uint32_t k = 1; k <= state.k_max; ++k) {
      for (std::uint32_t kp = k; kp <= state.k_max; ++kp) {
        const std::int64_t need = m_star.At(k, kp) - m_prime.At(k, kp);
        if (need < 0) {
          throw std::logic_error(
              "ConstructPreservingTargets: JDM-4 violated at (" +
              std::to_string(k) + "," + std::to_string(kp) + ")");
        }
        if (need == 0) continue;
        PairSchedule pair;
        pair.k = k;
        pair.kp = kp;
        pair.need = need;
        pair.size_k_start = size[k];
        pair.size_kp_start = size[kp];
        const auto draws = static_cast<std::size_t>(2 * need);
        if (k == kp) {
          if (size[k] < draws) ThrowStubExhausted();
          size[k] -= draws;
        } else {
          if (size[k] < static_cast<std::size_t>(need) ||
              size[kp] < static_cast<std::size_t>(need)) {
            ThrowStubExhausted();
          }
          size[k] -= static_cast<std::size_t>(need);
          size[kp] -= static_cast<std::size_t>(need);
        }
        schedule.push_back(std::move(pair));
      }
    }
  }

  // Draw phase: every pair generates its pick indices from its own
  // derived stream against the pre-computed pool-size trajectory —
  // concurrent, each worker writing only its own pair's slots.
  ParallelFor(schedule.size(), threads, [&](std::size_t p) {
    obs::Span pair_span("assemble_pair", "assemble");
    obs::MetricAdd("assemble.pairs", 1);
    PairSchedule& pair = schedule[p];
    Rng pair_rng(DeriveRoundSeed(seed, kAssemblyPairStream, p));
    pair.picks.reserve(static_cast<std::size_t>(2 * pair.need));
    std::size_t size_k = pair.size_k_start;
    std::size_t size_kp = pair.size_kp_start;
    for (std::int64_t c = 0; c < pair.need; ++c) {
      if (pair.k == pair.kp) {
        pair.picks.push_back(pair_rng.NextIndex(size_k));
        --size_k;
        pair.picks.push_back(pair_rng.NextIndex(size_k));
        --size_k;
      } else {
        pair.picks.push_back(pair_rng.NextIndex(size_k));
        --size_k;
        pair.picks.push_back(pair_rng.NextIndex(size_kp));
        --size_kp;
      }
    }
  });

  // Commit phase: the single writer replays the draws in canonical pair
  // order — identical for every thread count.
  for (const PairSchedule& pair : schedule) {
    std::size_t d = 0;
    for (std::int64_t c = 0; c < pair.need; ++c) {
      const NodeId a = PopAt(state.stubs[pair.k], pair.picks[d++]);
      const NodeId b = PopAt(state.stubs[pair.kp], pair.picks[d++]);
      state.result.AddEdge(a, b);
    }
  }
  CheckNoLeftoverStubs(state);
  return state.result;
}

Graph Construct2kGraph(const DegreeVector& n_star,
                       const JointDegreeMatrix& m_star, Rng& rng) {
  return ConstructPreservingTargets(Graph(), {}, n_star, m_star, rng);
}

Graph Construct2kGraphParallel(const DegreeVector& n_star,
                               const JointDegreeMatrix& m_star,
                               std::uint64_t seed, std::size_t threads) {
  return ConstructPreservingTargetsParallel(Graph(), {}, n_star, m_star,
                                            seed, threads);
}

Graph Construct1kGraph(const DegreeVector& n_star, Rng& rng) {
  if (DegreeVectorTotalDegree(n_star) % 2 != 0) {
    throw std::logic_error("Construct1kGraph: odd degree sum (DV-2)");
  }
  Graph g(static_cast<std::size_t>(DegreeVectorNodes(n_star)));
  std::vector<NodeId> stubs;
  stubs.reserve(
      static_cast<std::size_t>(DegreeVectorTotalDegree(n_star)));
  NodeId next = 0;
  for (std::size_t k = 0; k < n_star.size(); ++k) {
    for (std::int64_t c = 0; c < n_star[k]; ++c) {
      for (std::size_t s = 0; s < k; ++s) stubs.push_back(next);
      ++next;
    }
  }
  std::shuffle(stubs.begin(), stubs.end(), rng.engine());
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    g.AddEdge(stubs[i], stubs[i + 1]);
  }
  return g;
}

Graph Construct0kGraph(std::size_t num_nodes, std::size_t num_edges,
                       Rng& rng) {
  Graph g(num_nodes);
  for (std::size_t e = 0; e < num_edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.NextIndex(num_nodes)),
              static_cast<NodeId>(rng.NextIndex(num_nodes)));
  }
  return g;
}

}  // namespace sgr
