#include "dk/dk_construct.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sgr {

JointDegreeMatrix SubgraphClassEdges(
    const Graph& base,
    const std::vector<std::uint32_t>& base_target_degrees) {
  JointDegreeMatrix m_prime;
  for (const Edge& e : base.edges()) {
    m_prime.AddSymmetric(base_target_degrees[e.u], base_target_degrees[e.v],
                         1);
  }
  return m_prime;
}

Graph ConstructPreservingTargets(
    const Graph& base, const std::vector<std::uint32_t>& base_target_degrees,
    const DegreeVector& n_star, const JointDegreeMatrix& m_star, Rng& rng) {
  if (base_target_degrees.size() != base.NumNodes()) {
    throw std::logic_error(
        "ConstructPreservingTargets: one target degree per base node "
        "required");
  }
  const std::size_t k_max = n_star.empty() ? 0 : n_star.size() - 1;

  // n'(k): base nodes per target-degree class.
  DegreeVector n_prime(n_star.size(), 0);
  for (std::uint32_t d : base_target_degrees) {
    if (d > k_max) {
      throw std::logic_error(
          "ConstructPreservingTargets: base target degree exceeds k*_max");
    }
    ++n_prime[d];
  }

  Graph result = base;
  const std::int64_t total_nodes = DegreeVectorNodes(n_star);
  const auto base_nodes = static_cast<std::int64_t>(base.NumNodes());
  if (total_nodes < base_nodes) {
    throw std::logic_error(
        "ConstructPreservingTargets: target node count below subgraph size "
        "(DV-3 violated)");
  }

  // Degree sequence for the added nodes: degree k appears n*(k) - n'(k)
  // times (Algorithm 5, lines 2-8).
  std::vector<std::uint32_t> added_degrees;
  added_degrees.reserve(static_cast<std::size_t>(total_nodes - base_nodes));
  for (std::size_t k = 0; k < n_star.size(); ++k) {
    const std::int64_t need = n_star[k] - n_prime[k];
    if (need < 0) {
      throw std::logic_error(
          "ConstructPreservingTargets: DV-3 violated at degree " +
          std::to_string(k));
    }
    for (std::int64_t c = 0; c < need; ++c) {
      added_degrees.push_back(static_cast<std::uint32_t>(k));
    }
  }
  std::shuffle(added_degrees.begin(), added_degrees.end(), rng.engine());

  // Attach half-edges (stubs): d*_i - d'_i per base node, d*_i per added
  // node, pooled by target degree (lines 9-12).
  std::vector<std::vector<NodeId>> stubs(n_star.size());
  for (NodeId v = 0; v < base.NumNodes(); ++v) {
    const std::uint32_t target = base_target_degrees[v];
    const std::size_t have = base.Degree(v);
    if (have > target) {
      throw std::logic_error(
          "ConstructPreservingTargets: base degree exceeds target degree");
    }
    for (std::size_t s = have; s < target; ++s) stubs[target].push_back(v);
  }
  for (std::uint32_t d : added_degrees) {
    const NodeId v = result.AddNode();
    for (std::uint32_t s = 0; s < d; ++s) stubs[d].push_back(v);
  }

  // Wire free half-edges class pair by class pair (lines 13-16).
  const JointDegreeMatrix m_prime =
      SubgraphClassEdges(base, base_target_degrees);
  auto pop_random = [&rng](std::vector<NodeId>& pool) {
    const std::size_t idx = rng.NextIndex(pool.size());
    const NodeId v = pool[idx];
    pool[idx] = pool.back();
    pool.pop_back();
    return v;
  };
  for (std::uint32_t k = 1; k <= k_max; ++k) {
    for (std::uint32_t kp = k; kp <= k_max; ++kp) {
      const std::int64_t need = m_star.At(k, kp) - m_prime.At(k, kp);
      if (need < 0) {
        throw std::logic_error(
            "ConstructPreservingTargets: JDM-4 violated at (" +
            std::to_string(k) + "," + std::to_string(kp) + ")");
      }
      for (std::int64_t c = 0; c < need; ++c) {
        if (stubs[k].empty() || stubs[kp].empty() ||
            (k == kp && stubs[k].size() < 2)) {
          throw std::logic_error(
              "ConstructPreservingTargets: stub pool exhausted (JDM-3 "
              "violated)");
        }
        const NodeId a = pop_random(stubs[k]);
        const NodeId b = pop_random(stubs[kp]);
        result.AddEdge(a, b);
      }
    }
  }
  for (std::uint32_t k = 0; k <= k_max; ++k) {
    if (!stubs[k].empty()) {
      throw std::logic_error(
          "ConstructPreservingTargets: leftover free half-edges at degree " +
          std::to_string(k) + " (JDM-3 violated)");
    }
  }
  return result;
}

Graph Construct2kGraph(const DegreeVector& n_star,
                       const JointDegreeMatrix& m_star, Rng& rng) {
  return ConstructPreservingTargets(Graph(), {}, n_star, m_star, rng);
}

Graph Construct1kGraph(const DegreeVector& n_star, Rng& rng) {
  if (DegreeVectorTotalDegree(n_star) % 2 != 0) {
    throw std::logic_error("Construct1kGraph: odd degree sum (DV-2)");
  }
  Graph g(static_cast<std::size_t>(DegreeVectorNodes(n_star)));
  std::vector<NodeId> stubs;
  stubs.reserve(
      static_cast<std::size_t>(DegreeVectorTotalDegree(n_star)));
  NodeId next = 0;
  for (std::size_t k = 0; k < n_star.size(); ++k) {
    for (std::int64_t c = 0; c < n_star[k]; ++c) {
      for (std::size_t s = 0; s < k; ++s) stubs.push_back(next);
      ++next;
    }
  }
  std::shuffle(stubs.begin(), stubs.end(), rng.engine());
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    g.AddEdge(stubs[i], stubs[i + 1]);
  }
  return g;
}

Graph Construct0kGraph(std::size_t num_nodes, std::size_t num_edges,
                       Rng& rng) {
  Graph g(num_nodes);
  for (std::size_t e = 0; e < num_edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.NextIndex(num_nodes)),
              static_cast<NodeId>(rng.NextIndex(num_nodes)));
  }
  return g;
}

}  // namespace sgr
