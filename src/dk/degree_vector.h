#ifndef SGR_DK_DEGREE_VECTOR_H_
#define SGR_DK_DEGREE_VECTOR_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace sgr {

/// Degree vector {n(k)}_k: entry k holds the number of nodes with degree k
/// (index 0 unused for connected graphs). This is the 1K statistic of the
/// dK-series (Section III-C); preserving n, k̄ and {P(k)}_k is equivalent to
/// preserving this vector.
using DegreeVector = std::vector<std::int64_t>;

/// Σ_k n(k): total number of nodes described by the vector.
inline std::int64_t DegreeVectorNodes(const DegreeVector& dv) {
  return std::accumulate(dv.begin(), dv.end(), std::int64_t{0});
}

/// Σ_k k·n(k): total degree (twice the edge count for a realizable vector).
inline std::int64_t DegreeVectorTotalDegree(const DegreeVector& dv) {
  std::int64_t total = 0;
  for (std::size_t k = 0; k < dv.size(); ++k) {
    total += static_cast<std::int64_t>(k) * dv[k];
  }
  return total;
}

/// Realization condition DV-1: every entry non-negative.
inline bool SatisfiesDv1(const DegreeVector& dv) {
  for (std::int64_t c : dv) {
    if (c < 0) return false;
  }
  return true;
}

/// Realization condition DV-2: the degree sum is even.
inline bool SatisfiesDv2(const DegreeVector& dv) {
  return DegreeVectorTotalDegree(dv) % 2 == 0;
}

}  // namespace sgr

#endif  // SGR_DK_DEGREE_VECTOR_H_
