#include "dk/joint_degree_matrix.h"

#include <algorithm>
#include <cassert>

namespace sgr {

void JointDegreeMatrix::AddSymmetric(std::uint32_t k, std::uint32_t k_prime,
                                     std::int64_t delta) {
  if (delta == 0) return;
  auto apply = [this](std::uint64_t key, std::int64_t d) {
    auto [it, inserted] = counts_.try_emplace(key, 0);
    it->second += d;
    assert(it->second >= 0 && "joint degree matrix entry went negative");
    if (it->second == 0) counts_.erase(it);
  };
  apply(DegreePairKey(k, k_prime), delta);
  if (k != k_prime) apply(DegreePairKey(k_prime, k), delta);
}

void JointDegreeMatrix::SetSymmetric(std::uint32_t k, std::uint32_t k_prime,
                                     std::int64_t value) {
  assert(value >= 0);
  auto apply = [this](std::uint64_t key, std::int64_t v) {
    if (v == 0) {
      counts_.erase(key);
    } else {
      counts_[key] = v;
    }
  };
  apply(DegreePairKey(k, k_prime), value);
  if (k != k_prime) apply(DegreePairKey(k_prime, k), value);
}

std::int64_t JointDegreeMatrix::RowSum(std::uint32_t k) const {
  std::int64_t sum = 0;
  for (const auto& [key, count] : counts_) {
    if (static_cast<std::uint32_t>(key >> 32) != k) continue;
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    sum += (kp == k ? 2 : 1) * count;
  }
  return sum;
}

std::int64_t JointDegreeMatrix::TotalEdges() const {
  std::int64_t total = 0;
  for (const auto& [key, count] : counts_) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    if (k <= kp) total += count;
  }
  return total;
}

std::uint32_t JointDegreeMatrix::MaxDegree() const {
  std::uint32_t best = 0;
  for (const auto& [key, count] : counts_) {
    if (count <= 0) continue;
    best = std::max(best, static_cast<std::uint32_t>(key >> 32));
  }
  return best;
}

bool JointDegreeMatrix::SatisfiesJdm1() const {
  return std::all_of(counts_.begin(), counts_.end(),
                     [](const auto& kv) { return kv.second >= 0; });
}

bool JointDegreeMatrix::SatisfiesJdm2() const {
  for (const auto& [key, count] : counts_) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    if (At(kp, k) != count) return false;
  }
  return true;
}

bool JointDegreeMatrix::SatisfiesJdm3(const DegreeVector& dv) const {
  const std::uint32_t k_max =
      std::max(MaxDegree(), static_cast<std::uint32_t>(
                                dv.empty() ? 0 : dv.size() - 1));
  for (std::uint32_t k = 1; k <= k_max; ++k) {
    const std::int64_t target =
        k < dv.size() ? static_cast<std::int64_t>(k) * dv[k] : 0;
    if (RowSum(k) != target) return false;
  }
  return true;
}

bool JointDegreeMatrix::Dominates(const JointDegreeMatrix& lower) const {
  for (const auto& [key, count] : lower.counts()) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    if (At(k, kp) < count) return false;
  }
  return true;
}

}  // namespace sgr
