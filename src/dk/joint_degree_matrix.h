#ifndef SGR_DK_JOINT_DEGREE_MATRIX_H_
#define SGR_DK_JOINT_DEGREE_MATRIX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dk/degree_vector.h"
#include "estimation/estimates.h"  // DegreePairKey

namespace sgr {

/// Joint degree matrix {m(k,k')}: entry (k,k') holds the number of edges
/// between nodes of degree k and nodes of degree k'. This is the 2K
/// statistic of the dK-series; the matrix is symmetric, and the row sum
/// s(k) = Σ_k' µ(k,k') m(k,k') equals k·n(k) for a realizable pair
/// (degree vector, matrix), where µ(k,k) = 2 and µ = 1 otherwise.
///
/// Storage is sparse and symmetric: both (k,k') and (k',k) orderings map to
/// the same logical entry (a single physical entry on the diagonal).
class JointDegreeMatrix {
 public:
  /// m(k, k'); 0 when absent.
  std::int64_t At(std::uint32_t k, std::uint32_t k_prime) const {
    auto it = counts_.find(DegreePairKey(k, k_prime));
    return it == counts_.end() ? 0 : it->second;
  }

  /// Adds `delta` to m(k,k') and m(k',k) (one entry when k == k').
  /// Entries dropping to zero are erased so iteration stays sparse.
  void AddSymmetric(std::uint32_t k, std::uint32_t k_prime,
                    std::int64_t delta);

  /// Sets m(k,k') = m(k',k) = value.
  void SetSymmetric(std::uint32_t k, std::uint32_t k_prime,
                    std::int64_t value);

  /// Row sum s(k) = Σ_k' µ(k,k') m(k,k') (recomputed; the target-JDM
  /// builder maintains its own incremental copy).
  std::int64_t RowSum(std::uint32_t k) const;

  /// Σ_{k<=k'} m(k,k'): total number of edges described.
  std::int64_t TotalEdges() const;

  /// Raw storage: key -> count; both orderings present for k != k'.
  const std::unordered_map<std::uint64_t, std::int64_t>& counts() const {
    return counts_;
  }

  /// Largest degree appearing with a positive count.
  std::uint32_t MaxDegree() const;

  /// JDM-1: all entries non-negative.
  bool SatisfiesJdm1() const;

  /// JDM-2: symmetry (holds by construction; verified for tests).
  bool SatisfiesJdm2() const;

  /// JDM-3: s(k) == k * n(k) for every degree k <= k_max.
  bool SatisfiesJdm3(const DegreeVector& dv) const;

  /// JDM-4 relative to a lower-limit matrix: m(k,k') >= other(k,k').
  bool Dominates(const JointDegreeMatrix& lower) const;

 private:
  std::unordered_map<std::uint64_t, std::int64_t> counts_;
};

}  // namespace sgr

#endif  // SGR_DK_JOINT_DEGREE_MATRIX_H_
