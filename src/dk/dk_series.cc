#include "dk/dk_series.h"

#include "dk/dk_construct.h"
#include "dk/dk_extract.h"
#include "restore/rewirer.h"

namespace sgr {

Graph GenerateDkGraph(const Graph& original, DkOrder order, Rng& rng,
                      double rewiring_coefficient) {
  switch (order) {
    case DkOrder::k0:
      return Construct0kGraph(original.NumNodes(), original.NumEdges(),
                              rng);
    case DkOrder::k1:
      return Construct1kGraph(ExtractDegreeVector(original), rng);
    case DkOrder::k2:
      return Construct2kGraph(ExtractDegreeVector(original),
                              ExtractJointDegreeMatrix(original), rng);
    case DkOrder::k2_5: {
      Graph g = Construct2kGraph(ExtractDegreeVector(original),
                                 ExtractJointDegreeMatrix(original), rng);
      RewireOptions options;
      options.rewiring_coefficient = rewiring_coefficient;
      RewireToClustering(g, /*num_protected_edges=*/0,
                         ExtractDegreeDependentClustering(original),
                         options, rng);
      return g;
    }
  }
  return Graph();
}

}  // namespace sgr
