#include "exp/table_printer.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sgr {

TablePrinter::TablePrinter(std::ostream& out,
                           std::vector<std::string> headers)
    : out_(&out), headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      *out_ << std::left << std::setw(static_cast<int>(widths[c]) + 2)
            << row[c];
    }
    *out_ << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  *out_ << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv() const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) *out_ << ",";
      *out_ << row[c];
    }
    *out_ << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::Fixed(double value, int precision) {
  std::ostringstream s;
  s << std::fixed << std::setprecision(precision) << value;
  return s.str();
}

std::string TablePrinter::PlusMinus(double mean, double sd, int precision) {
  return Fixed(mean, precision) + " +- " + Fixed(sd, precision);
}

}  // namespace sgr
