#ifndef SGR_EXP_RUNNER_H_
#define SGR_EXP_RUNNER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/l1.h"
#include "analysis/properties.h"
#include "graph/graph.h"
#include "restore/method.h"
#include "util/rng.h"

namespace sgr {

/// Configuration of one experimental run matrix (Section V-D/E).
struct ExperimentConfig {
  /// Fraction of nodes to query (the paper sweeps 1%-10%, uses 10% for the
  /// tables and 1% for YouTube).
  double query_fraction = 0.1;

  /// Methods to run. Default: all six, in the paper's column order.
  std::vector<MethodKind> methods = {
      MethodKind::kBfs,      MethodKind::kSnowball,
      MethodKind::kForestFire, MethodKind::kRandomWalk,
      MethodKind::kGjoka,    MethodKind::kProposed};

  /// Snowball neighbor cap (paper: k = 50).
  std::size_t snowball_k = 50;

  /// Forest-fire forward probability (paper: pf = 0.7).
  double forest_fire_pf = 0.7;

  /// Options forwarded to the generative methods (RC = 500 by default).
  RestorationOptions restoration;

  /// Options for the property analyzers applied to original and generated
  /// graphs alike.
  PropertyOptions property_options;
};

/// Result of applying one method in one run.
struct MethodRunResult {
  MethodKind kind = MethodKind::kProposed;
  RestorationResult restoration;
  std::array<double, kNumProperties> distances{};
  double average_distance = 0.0;
  double sd_distance = 0.0;
};

/// Executes one run: draws a uniformly random seed node, starts BFS,
/// snowball, FF, and RW from that same seed (Section V-D), applies subgraph
/// sampling to each crawl, and applies Gjoka et al.'s method and the
/// proposed method to the *same* random walk for a fair comparison. Then
/// evaluates the 12-property L1 distances against `original_properties`.
///
/// `run_seed` drives all randomness of the run (crawler RNG + generation
/// RNG), so runs are reproducible.
std::vector<MethodRunResult> RunExperiment(
    const Graph& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t run_seed);

/// Reads a double from environment variable `name`, or `fallback` if the
/// variable is unset/invalid. Used by benches for RC / runs / fraction
/// overrides (e.g. SGR_RC, SGR_RUNS).
double EnvOr(const char* name, double fallback);

}  // namespace sgr

#endif  // SGR_EXP_RUNNER_H_
