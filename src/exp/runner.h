#ifndef SGR_EXP_RUNNER_H_
#define SGR_EXP_RUNNER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/l1.h"
#include "analysis/properties.h"
#include "graph/csr_graph.h"
#include "graph/graph.h"
#include "restore/method.h"
#include "sampling/perturbed_oracle.h"
#include "util/rng.h"

namespace sgr {

/// Walk discipline of the shared sample consumed by the RW / Gjoka /
/// Proposed trio (only meaningful when `ExperimentConfig::crawler` is
/// kRw). The estimator's clustering normalizer is derived from this value
/// inside the runner — kNonBacktracking selects
/// WalkType::kNonBacktracking, everything else the simple-walk law.
enum class WalkKind {
  kSimple,              ///< simple random walk (the paper's setting)
  kNonBacktracking,     ///< Lee et al.'s NBRW (Section II extension)
  kMetropolisHastings,  ///< MH walk; uniform stationary law, so the
                        ///  re-weighted estimators are deliberately
                        ///  mismatched — an ablation axis, not a
                        ///  recommended configuration
};

/// Crawler producing the shared sample of the walk-based trio (the
/// subgraph-RW method plus the two generative methods). The non-walk
/// crawlers (kBfs / kSnowball / kFf) yield samples without the Markov
/// property, so they are only valid when the method list contains no
/// generative method — ScenarioSpec::Validate enforces this, and
/// RunExperiment throws std::invalid_argument if bypassed.
enum class CrawlerKind {
  kRw,        ///< single walker; honors ExperimentConfig::walk
  kFrontier,  ///< Ribeiro & Towsley's multi-walker frontier sampling.
              ///  Feeding it to the generative methods is a deliberate
              ///  ablation combination, not a recommended configuration:
              ///  the clustering estimator's interior term mixes
              ///  independent walkers (see sampling/frontier.h), so the
              ///  rewiring target it produces quantifies exactly that
              ///  bias
  kMhrw,      ///< Metropolis-Hastings walk (≡ kRw + kMetropolisHastings)
  kBfs,       ///< breadth-first crawl (subgraph methods only)
  kSnowball,  ///< snowball crawl (subgraph methods only)
  kFf,        ///< forest-fire crawl (subgraph methods only)
};

/// Configuration of one experimental run matrix (Section V-D/E).
struct ExperimentConfig {
  /// Fraction of nodes to query (the paper sweeps 1%-10%, uses 10% for the
  /// tables and 1% for YouTube).
  double query_fraction = 0.1;

  /// Walk discipline of the shared sample (see WalkKind). Only consulted
  /// when `crawler` is kRw; the runner also derives the clustering
  /// estimator's normalizer from it, overriding
  /// `restoration.estimator.walk_type`.
  WalkKind walk = WalkKind::kSimple;

  /// Crawler of the shared sample (see CrawlerKind).
  CrawlerKind crawler = CrawlerKind::kRw;

  /// Number of coupled walkers when `crawler` is kFrontier.
  std::size_t frontier_walkers = 10;

  /// Methods to run. Default: all six, in the paper's column order.
  std::vector<MethodKind> methods = {
      MethodKind::kBfs,      MethodKind::kSnowball,
      MethodKind::kForestFire, MethodKind::kRandomWalk,
      MethodKind::kGjoka,    MethodKind::kProposed};

  /// Snowball neighbor cap (paper: k = 50).
  std::size_t snowball_k = 50;

  /// Forest-fire forward probability (paper: pf = 0.7).
  double forest_fire_pf = 0.7;

  /// Crawl-time fault injection (see CrawlNoise). Default-off reproduces
  /// the cooperative oracle byte for byte; when active, every crawl runs
  /// through a PerturbedOracle whose seed is derived from the run seed, so
  /// a given (config, seed) pair sees identical faults at any thread
  /// count. When the failure knob is on, the runner redraws the seed node
  /// (extra RNG draws happen only on this path) so a run is not voided by
  /// starting on a suspended account, and walk crawlers get a
  /// deterministic step cap so hidden edges cannot trap a walker forever.
  CrawlNoise noise;

  /// Options forwarded to the generative methods (RC = 500 by default).
  RestorationOptions restoration;

  /// Options for the property analyzers applied to original and generated
  /// graphs alike.
  PropertyOptions property_options;
};

/// Result of applying one method in one run.
struct MethodRunResult {
  MethodKind kind = MethodKind::kProposed;
  RestorationResult restoration;
  std::array<double, kNumProperties> distances{};
  double average_distance = 0.0;
  double sd_distance = 0.0;
  /// Length of the sampling list the method consumed: walk steps r for the
  /// walk-based trio (the same value for all three, they share one
  /// sample), queried-node count for BFS / snowball / forest fire. A
  /// deterministic function of (config, seed) — reports emit it outside
  /// the "timings" blocks (the walk ablation's query-efficiency metric).
  double sample_steps = 0.0;
  /// Distinct nodes the crawl queried from the oracle — the method's true
  /// query cost, ≤ the node budget by the QueryOracle contract and ≤
  /// sample_steps for revisiting walks. Like sample_steps it is a
  /// deterministic function of (config, seed), so reports emit it outside
  /// the volatile blocks.
  std::size_t oracle_queries = 0;
};

/// Executes one run: draws a uniformly random seed node, starts BFS,
/// snowball, FF, and RW from that same seed (Section V-D), applies subgraph
/// sampling to each crawl, and applies Gjoka et al.'s method and the
/// proposed method to the *same* random walk for a fair comparison. Then
/// evaluates the 12-property L1 distances against `original_properties`.
///
/// `run_seed` drives all randomness of the run (crawler RNG + generation
/// RNG), so runs are reproducible. The CsrGraph overload runs against an
/// immutable snapshot of the original graph, safe to share across
/// concurrent trials. Note the snapshot stores neighbor lists sorted, so
/// for the same seed a walk's index-based neighbor picks can differ from
/// the Graph overload's trajectory — an equally distributed sample, just
/// a different draw; each overload is individually deterministic.
std::vector<MethodRunResult> RunExperiment(
    const Graph& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t run_seed);
std::vector<MethodRunResult> RunExperiment(
    const CsrGraph& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t run_seed);

/// Executes `num_trials` independent runs concurrently on up to `threads`
/// workers (0 = hardware concurrency; 1 = inline, no threading overhead).
///
/// The original graph is snapshotted into one immutable CsrGraph shared
/// read-only by every worker; trial i uses run_seed = seed_base + i — the
/// same seed derivation RunDataset (bench_common.h) has always used — so
/// the result set is identical for every thread count, and identical to
/// calling the *CsrGraph overload* of RunExperiment sequentially with
/// seed_base + i. (The Graph overload draws a different walk for the same
/// seed — see RunExperiment above.) Returned trials are indexed by trial
/// number, not completion order.
std::vector<std::vector<MethodRunResult>> RunExperiments(
    const Graph& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t seed_base,
    std::size_t num_trials, std::size_t threads = 1);

/// Same, against a caller-provided snapshot (possibly compressed): the
/// scenario engine materializes datasets as CsrGraph directly — no
/// intermediate Graph at paper scale — and the Graph overload above
/// produces byte-identical trials by delegating here after snapshotting.
std::vector<std::vector<MethodRunResult>> RunExperiments(
    const CsrGraph& snapshot, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t seed_base,
    std::size_t num_trials, std::size_t threads = 1);

/// Reads a double from environment variable `name`, or `fallback` if the
/// variable is unset/invalid. Used by benches for RC / runs / fraction
/// overrides (e.g. SGR_RC, SGR_RUNS).
double EnvOr(const char* name, double fallback);

}  // namespace sgr

#endif  // SGR_EXP_RUNNER_H_
