#include "exp/parallel.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace sgr {

std::size_t ResolveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::uint64_t DeriveSeed(std::uint64_t base_seed, std::uint64_t index) {
  // SplitMix64 (Steele, Lea & Flood): one round over base + index * phi.
  std::uint64_t z = base_seed + index * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t DeriveRoundSeed(std::uint64_t base_seed, std::uint64_t stream,
                              std::uint64_t round) {
  return DeriveSeed(DeriveSeed(base_seed, stream), round);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = ResolveThreadCount(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    depth = queue_.size();
  }
  obs::MetricMax("pool.queue_peak", depth);
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Worker utilization: busy time needs a clock read on both sides of
    // the task, so it is gated rather than left to MetricAdd's own check.
    const bool metered = obs::MetricsEnabled();
    const std::uint64_t begin_us = metered ? obs::SteadyNowMicros() : 0;
    {
      obs::Span task_span("task", "pool");
      task();
    }
    if (metered) {
      obs::MetricAdd("pool.tasks", 1);
      obs::MetricAdd("pool.busy_us", obs::SteadyNowMicros() - begin_us);
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& fn) {
  const std::size_t workers =
      std::min(ResolveThreadCount(threads), count == 0 ? std::size_t{1}
                                                       : count);
  if (count == 0) return;
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(workers);
  PoolFor(pool, count, fn);
}

void PoolFor(ThreadPool& pool, std::size_t count,
             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (pool.size() <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(pool.size(), count);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.Submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace sgr
