#include "exp/datasets.h"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>

#include "graph/components.h"
#include "graph/edge_list_reader.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/rng.h"

namespace sgr {

namespace {

/// Resolves the effective synthetic scale: a nonzero override wins,
/// otherwise $SGR_DATASET_SCALE. The env value is validated strictly —
/// strtod with an unchecked end pointer used to accept "1.x5" as 1.0 and
/// "nan" as NaN, silently running a differently-sized experiment than the
/// user asked for.
double ResolveScale(double scale_override) {
  if (scale_override > 0.0) return scale_override;
  const char* env = std::getenv("SGR_DATASET_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  char* end = nullptr;
  const double scale = std::strtod(env, &end);
  if (end == env || *end != '\0' || !std::isfinite(scale) || scale <= 0.0) {
    throw std::runtime_error(
        "SGR_DATASET_SCALE='" + std::string(env) +
        "' is not a finite positive number");
  }
  return scale;
}

/// Scaled synthetic node count; rejects a scale small enough to round the
/// graph away entirely (the generator would otherwise emit an empty graph
/// and downstream property code would divide by zero).
std::size_t ScaledNodeCount(const DatasetSpec& spec, double scale) {
  const auto n = static_cast<std::size_t>(
      static_cast<double>(spec.num_nodes) * scale);
  if (n == 0) {
    throw std::runtime_error(
        "dataset '" + spec.name + "': scale " + std::to_string(scale) +
        " rounds the node count to zero");
  }
  return n;
}

/// Path of the dataset's edge list if $SGR_DATASET_DIR is set. The file
/// must then exist: a missing file is a hard error naming the resolved
/// path — never a silent fall-back to the synthetic generator.
std::optional<std::string> ResolveDatasetFile(const DatasetSpec& spec) {
  const char* dir = std::getenv("SGR_DATASET_DIR");
  if (dir == nullptr) return std::nullopt;
  const std::filesystem::path path =
      std::filesystem::path(dir) / (spec.name + ".txt");
  if (!std::filesystem::exists(path)) {
    throw std::runtime_error(
        "SGR_DATASET_DIR is set but '" + path.string() +
        "' does not exist; refusing to silently substitute a synthetic "
        "graph for dataset '" + spec.name + "'");
  }
  return path.string();
}

Graph GenerateDataset(const DatasetSpec& spec, double scale) {
  Rng rng(spec.seed);
  return GenerateSocialGraph(ScaledNodeCount(spec, scale),
                             spec.edges_per_node, spec.triad_probability,
                             spec.fringe_fraction, rng);
}

IngestOptions IngestOptionsFromEnv() {
  IngestOptions options;
  if (const char* cache = std::getenv("SGR_SNAPSHOT_CACHE")) {
    options.cache_dir = cache;
  }
  if (const char* threads = std::getenv("SGR_INGEST_THREADS")) {
    options.threads = static_cast<std::size_t>(
        std::strtoull(threads, nullptr, 10));
  }
  if (const char* compress = std::getenv("SGR_CSR_COMPRESS")) {
    const std::string value(compress);
    if (value == "0") {
      options.compress = IngestOptions::Compress::kOff;
    } else if (value == "1") {
      options.compress = IngestOptions::Compress::kOn;
    }
  }
  return options;
}

}  // namespace

std::vector<DatasetSpec> StandardDatasets() {
  // Synthetic sizes are scaled-down echoes of Table I: the relative order
  // of sizes and densities is preserved (Livemocha densest, Anybeat
  // smallest) while keeping the full benchmark suite laptop-friendly.
  return {
      {"anybeat", 3000, 5, 0.30, 0.45, 0xA11B3A70ULL, 12645, 49132},
      {"brightkite", 5000, 5, 0.40, 0.40, 0xB216D217ULL, 56739, 212945},
      {"epinions", 6000, 7, 0.30, 0.40, 0xE9141015ULL, 75877, 405739},
      {"slashdot", 6500, 8, 0.20, 0.40, 0x51A51D07ULL, 77360, 469180},
      {"gowalla", 8000, 7, 0.35, 0.40, 0x60A77A11ULL, 196591, 950327},
      {"livemocha", 7000, 15, 0.10, 0.30, 0x11FE30C4ULL, 104103, 2193083},
  };
}

DatasetSpec YoutubeDataset() {
  // Table V queries just 1% of the nodes. At laptop scale that is a few
  // hundred queried nodes — far below the ~11k the paper's 1% of 1.13M
  // yields — so the re-weighted estimates are markedly noisier here than
  // in the paper (EXPERIMENTS.md discusses the effect). Users with hours
  // of compute can raise SGR_DATASET_SCALE (or drop in the real edge
  // list) to recover the paper's sample regime.
  return {"youtube", 30000, 4, 0.15, 0.50, 0x704707BEULL, 1134890,
          2987624};
}

DatasetSpec DatasetByName(const std::string& name) {
  for (const DatasetSpec& spec : StandardDatasets()) {
    if (spec.name == name) return spec;
  }
  if (name == "youtube") return YoutubeDataset();
  throw std::out_of_range("unknown dataset: " + name);
}

Graph LoadDataset(const DatasetSpec& spec, double scale_override) {
  if (const std::optional<std::string> file = ResolveDatasetFile(spec)) {
    return PreprocessDataset(ReadEdgeListFile(*file));
  }
  return PreprocessDataset(
      GenerateDataset(spec, ResolveScale(scale_override)));
}

CsrGraph LoadDatasetCsr(const DatasetSpec& spec, double scale_override,
                        DatasetProvenance* provenance) {
  if (const std::optional<std::string> file = ResolveDatasetFile(spec)) {
    IngestResult ingested = IngestEdgeListFile(*file, IngestOptionsFromEnv());
    if (provenance != nullptr) {
      provenance->name = spec.name;
      provenance->source = "file";
      provenance->path = *file;
      provenance->content_hash = HashToHex(ingested.content_hash);
      provenance->scale = 1.0;
    }
    return std::move(ingested.graph);
  }
  const double scale = ResolveScale(scale_override);
  if (provenance != nullptr) {
    provenance->name = spec.name;
    provenance->source = "generator";
    provenance->path.clear();
    provenance->content_hash.clear();
    provenance->scale = scale;
  }
  return CsrGraph(PreprocessDataset(GenerateDataset(spec, scale)));
}

}  // namespace sgr
