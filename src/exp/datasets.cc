#include "exp/datasets.h"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "graph/components.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/rng.h"

namespace sgr {

std::vector<DatasetSpec> StandardDatasets() {
  // Synthetic sizes are scaled-down echoes of Table I: the relative order
  // of sizes and densities is preserved (Livemocha densest, Anybeat
  // smallest) while keeping the full benchmark suite laptop-friendly.
  return {
      {"anybeat", 3000, 5, 0.30, 0.45, 0xA11B3A70ULL, 12645, 49132},
      {"brightkite", 5000, 5, 0.40, 0.40, 0xB216D217ULL, 56739, 212945},
      {"epinions", 6000, 7, 0.30, 0.40, 0xE9141015ULL, 75877, 405739},
      {"slashdot", 6500, 8, 0.20, 0.40, 0x51A51D07ULL, 77360, 469180},
      {"gowalla", 8000, 7, 0.35, 0.40, 0x60A77A11ULL, 196591, 950327},
      {"livemocha", 7000, 15, 0.10, 0.30, 0x11FE30C4ULL, 104103, 2193083},
  };
}

DatasetSpec YoutubeDataset() {
  // Table V queries just 1% of the nodes. At laptop scale that is a few
  // hundred queried nodes — far below the ~11k the paper's 1% of 1.13M
  // yields — so the re-weighted estimates are markedly noisier here than
  // in the paper (EXPERIMENTS.md discusses the effect). Users with hours
  // of compute can raise SGR_DATASET_SCALE (or drop in the real edge
  // list) to recover the paper's sample regime.
  return {"youtube", 30000, 4, 0.15, 0.50, 0x704707BEULL, 1134890,
          2987624};
}

DatasetSpec DatasetByName(const std::string& name) {
  for (const DatasetSpec& spec : StandardDatasets()) {
    if (spec.name == name) return spec;
  }
  if (name == "youtube") return YoutubeDataset();
  throw std::out_of_range("unknown dataset: " + name);
}

Graph LoadDataset(const DatasetSpec& spec, double scale_override) {
  if (const char* dir = std::getenv("SGR_DATASET_DIR")) {
    const std::filesystem::path path =
        std::filesystem::path(dir) / (spec.name + ".txt");
    if (std::filesystem::exists(path)) {
      return PreprocessDataset(ReadEdgeListFile(path.string()));
    }
  }
  double scale = scale_override;
  if (scale <= 0.0) {
    scale = 1.0;
    if (const char* env = std::getenv("SGR_DATASET_SCALE")) {
      scale = std::strtod(env, nullptr);
      if (scale <= 0.0) scale = 1.0;
    }
  }
  const auto n = static_cast<std::size_t>(
      static_cast<double>(spec.num_nodes) * scale);
  Rng rng(spec.seed);
  Graph g = GenerateSocialGraph(n, spec.edges_per_node,
                                spec.triad_probability,
                                spec.fringe_fraction, rng);
  return PreprocessDataset(g);
}

}  // namespace sgr
