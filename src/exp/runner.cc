#include "exp/runner.h"

#include <cstdlib>

#include "exp/parallel.h"
#include "restore/gjoka.h"
#include "restore/proposed.h"
#include "restore/subgraph_method.h"
#include "sampling/bfs.h"
#include "sampling/forest_fire.h"
#include "sampling/random_walk.h"
#include "sampling/snowball.h"
#include "sampling/subgraph.h"

namespace sgr {

namespace {

bool Wants(const ExperimentConfig& config, MethodKind kind) {
  for (MethodKind m : config.methods) {
    if (m == kind) return true;
  }
  return false;
}

MethodRunResult Evaluate(MethodKind kind, RestorationResult restoration,
                         const GraphProperties& original_properties,
                         const PropertyOptions& property_options) {
  MethodRunResult result;
  result.kind = kind;
  const GraphProperties generated =
      ComputeProperties(restoration.graph, property_options);
  result.distances = PropertyDistances(original_properties, generated);
  result.average_distance = AverageDistance(result.distances);
  result.sd_distance = DistanceStandardDeviation(result.distances);
  result.restoration = std::move(restoration);
  return result;
}

/// Shared implementation: `GraphT` is Graph or CsrGraph; QueryOracle
/// accepts either, so the sampling/restoration pipeline is unchanged.
template <typename GraphT>
std::vector<MethodRunResult> RunExperimentImpl(
    const GraphT& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t run_seed) {
  std::vector<MethodRunResult> results;
  Rng rng(run_seed);
  const auto budget = static_cast<std::size_t>(std::max<double>(
      1.0, config.query_fraction * static_cast<double>(original.NumNodes())));
  const NodeId seed_node =
      static_cast<NodeId>(rng.NextIndex(original.NumNodes()));

  if (Wants(config, MethodKind::kBfs)) {
    QueryOracle oracle(original);
    results.push_back(Evaluate(
        MethodKind::kBfs,
        RestoreBySubgraphSampling(BfsSample(oracle, seed_node, budget)),
        original_properties, config.property_options));
  }
  if (Wants(config, MethodKind::kSnowball)) {
    QueryOracle oracle(original);
    results.push_back(Evaluate(
        MethodKind::kSnowball,
        RestoreBySubgraphSampling(SnowballSample(
            oracle, seed_node, budget, config.snowball_k, rng)),
        original_properties, config.property_options));
  }
  if (Wants(config, MethodKind::kForestFire)) {
    QueryOracle oracle(original);
    results.push_back(Evaluate(
        MethodKind::kForestFire,
        RestoreBySubgraphSampling(ForestFireSample(
            oracle, seed_node, budget, config.forest_fire_pf, rng)),
        original_properties, config.property_options));
  }

  const bool needs_walk = Wants(config, MethodKind::kRandomWalk) ||
                          Wants(config, MethodKind::kGjoka) ||
                          Wants(config, MethodKind::kProposed);
  if (needs_walk) {
    // One walk shared by subgraph-RW, Gjoka et al., and the proposed
    // method (Section V-D: "we perform these methods for the same RW to
    // achieve a fair comparison").
    QueryOracle oracle(original);
    const SamplingList walk =
        RandomWalkSample(oracle, seed_node, budget, rng);
    if (Wants(config, MethodKind::kRandomWalk)) {
      results.push_back(Evaluate(MethodKind::kRandomWalk,
                                 RestoreBySubgraphSampling(walk),
                                 original_properties,
                                 config.property_options));
    }
    if (Wants(config, MethodKind::kGjoka)) {
      results.push_back(Evaluate(
          MethodKind::kGjoka, RestoreGjoka(walk, config.restoration, rng),
          original_properties, config.property_options));
    }
    if (Wants(config, MethodKind::kProposed)) {
      results.push_back(Evaluate(
          MethodKind::kProposed,
          RestoreProposed(walk, config.restoration, rng),
          original_properties, config.property_options));
    }
  }
  return results;
}

}  // namespace

double EnvOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end == value ? fallback : parsed;
}

std::vector<MethodRunResult> RunExperiment(
    const Graph& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t run_seed) {
  return RunExperimentImpl(original, original_properties, config, run_seed);
}

std::vector<MethodRunResult> RunExperiment(
    const CsrGraph& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t run_seed) {
  return RunExperimentImpl(original, original_properties, config, run_seed);
}

std::vector<std::vector<MethodRunResult>> RunExperiments(
    const Graph& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t seed_base,
    std::size_t num_trials, std::size_t threads) {
  const CsrGraph snapshot(original);
  std::vector<std::vector<MethodRunResult>> trials(num_trials);
  ParallelFor(num_trials, threads, [&](std::size_t i) {
    trials[i] = RunExperimentImpl(snapshot, original_properties, config,
                                  seed_base + i);
  });
  return trials;
}

}  // namespace sgr
