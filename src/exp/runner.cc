#include "exp/runner.h"

#include <cstdlib>
#include <stdexcept>

#include "exp/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "restore/gjoka.h"
#include "restore/proposed.h"
#include "restore/subgraph_method.h"
#include "sampling/bfs.h"
#include "sampling/forest_fire.h"
#include "sampling/frontier.h"
#include "sampling/metropolis_hastings.h"
#include "sampling/non_backtracking.h"
#include "sampling/random_walk.h"
#include "sampling/snowball.h"
#include "sampling/subgraph.h"

namespace sgr {

namespace {

bool Wants(const ExperimentConfig& config, MethodKind kind) {
  for (MethodKind m : config.methods) {
    if (m == kind) return true;
  }
  return false;
}

MethodRunResult Evaluate(MethodKind kind, RestorationResult restoration,
                         const GraphProperties& original_properties,
                         const PropertyOptions& property_options,
                         std::size_t sample_steps,
                         std::size_t oracle_queries) {
  MethodRunResult result;
  result.kind = kind;
  obs::Span evaluate_span("evaluate");
  const GraphProperties generated =
      ComputeProperties(restoration.graph, property_options);
  result.distances = PropertyDistances(original_properties, generated);
  result.average_distance = AverageDistance(result.distances);
  result.sd_distance = DistanceStandardDeviation(result.distances);
  evaluate_span.End();
  result.restoration = std::move(restoration);
  result.sample_steps = static_cast<double>(sample_steps);
  result.oracle_queries = oracle_queries;
  return result;
}

/// Collects the shared sample of the walk-based trio according to the
/// crawler / walk axes. Every branch consumes RNG draws only through
/// `rng`, so the default (kRw + kSimple) reproduces the historical
/// RandomWalkSample stream exactly. `max_steps` caps walk trajectories
/// (0 = uncapped; the runner sets it only under noise, where hidden edges
/// can trap a walker inside a small visible component that can never meet
/// the queried-node target).
SamplingList SharedSample(QueryOracle& oracle, NodeId seed_node,
                          std::size_t budget,
                          const ExperimentConfig& config, Rng& rng,
                          std::size_t max_steps) {
  switch (config.crawler) {
    case CrawlerKind::kRw:
      switch (config.walk) {
        case WalkKind::kSimple:
          return RandomWalkSample(oracle, seed_node, budget, rng,
                                  max_steps);
        case WalkKind::kNonBacktracking:
          return NonBacktrackingWalkSample(oracle, seed_node, budget, rng,
                                           max_steps);
        case WalkKind::kMetropolisHastings:
          return MetropolisHastingsWalkSample(oracle, seed_node, budget,
                                              rng, max_steps);
      }
      break;
    case CrawlerKind::kFrontier: {
      std::vector<NodeId> seeds;
      seeds.reserve(config.frontier_walkers);
      seeds.push_back(seed_node);  // keep the shared seed node in play
      for (std::size_t i = 1; i < config.frontier_walkers; ++i) {
        seeds.push_back(
            static_cast<NodeId>(rng.NextIndex(oracle.HiddenNumNodes())));
      }
      return FrontierSample(oracle, seeds, budget, rng, max_steps);
    }
    case CrawlerKind::kMhrw:
      return MetropolisHastingsWalkSample(oracle, seed_node, budget, rng,
                                          max_steps);
    case CrawlerKind::kBfs:
      return BfsSample(oracle, seed_node, budget);
    case CrawlerKind::kSnowball:
      return SnowballSample(oracle, seed_node, budget, config.snowball_k,
                            rng);
    case CrawlerKind::kFf:
      return ForestFireSample(oracle, seed_node, budget,
                              config.forest_fire_pf, rng);
  }
  throw std::invalid_argument("unknown crawler kind");
}

/// Stream tag separating the perturbation seed from every other stream
/// derived from the run seed (rewire rounds, estimator bootstrap, ...).
constexpr std::uint64_t kNoiseStream = 0x6E6F6973;  // "nois"

/// Emits the perturbation counters of one crawl into the metrics
/// registry. Called only when noise is active, so noise-off cells carry
/// exactly the metric keys they always did.
void RecordNoiseMetrics(const PerturbedOracle& oracle) {
  obs::MetricAdd("oracle.api_calls",
                 static_cast<std::size_t>(oracle.api_calls()));
  obs::MetricAdd("oracle.failed_queries",
                 static_cast<std::size_t>(oracle.failed_queries()));
  obs::MetricAdd("oracle.suppressed_edges",
                 static_cast<std::size_t>(oracle.suppressed_edges()));
}

/// Shared implementation: `GraphT` is Graph or CsrGraph; QueryOracle
/// accepts either, so the sampling/restoration pipeline is unchanged.
template <typename GraphT>
std::vector<MethodRunResult> RunExperimentImpl(
    const GraphT& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t run_seed) {
  obs::Span trial_span("trial");
  std::vector<MethodRunResult> results;
  Rng rng(run_seed);
  const auto budget = static_cast<std::size_t>(std::max<double>(
      1.0, config.query_fraction * static_cast<double>(original.NumNodes())));
  // The perturbation seed is a pure function of the run seed (itself
  // seed_base + cell * trials + trial), never of scheduling, so the fault
  // pattern is identical at every thread count.
  const std::uint64_t noise_seed = DeriveSeed(run_seed, kNoiseStream);
  NodeId seed_node =
      static_cast<NodeId>(rng.NextIndex(original.NumNodes()));
  if (config.noise.failure > 0.0) {
    // A researcher does not start a crawl from an account the platform
    // rejects outright — redraw (bounded) until the seed answers. The
    // extra draws happen only on the noise path, so noise-off runs
    // consume the historical RNG stream exactly.
    for (int tries = 0;
         tries < 128 && NoiseFailsNode(config.noise, noise_seed, seed_node);
         ++tries) {
      seed_node = static_cast<NodeId>(rng.NextIndex(original.NumNodes()));
    }
  }
  // Hidden edges / failures can strand a walker inside a small visible
  // component where the queried-node target is unreachable; the cap turns
  // that into a graceful short sample. Deterministic in (config, budget).
  const std::size_t walk_cap =
      config.noise.Active() ? 200 * budget + 10000 : 0;

  if (Wants(config, MethodKind::kBfs)) {
    PerturbedOracle oracle(original, config.noise, noise_seed);
    obs::Span crawl_span("crawl");
    const SamplingList sample = BfsSample(oracle, seed_node, budget);
    crawl_span.End();
    obs::MetricAdd("oracle.queries", oracle.unique_queries());
    if (config.noise.Active()) RecordNoiseMetrics(oracle);
    const std::size_t steps = sample.Length();
    results.push_back(Evaluate(
        MethodKind::kBfs, RestoreBySubgraphSampling(sample),
        original_properties, config.property_options, steps,
        oracle.unique_queries()));
  }
  if (Wants(config, MethodKind::kSnowball)) {
    PerturbedOracle oracle(original, config.noise, noise_seed);
    obs::Span crawl_span("crawl");
    const SamplingList sample = SnowballSample(oracle, seed_node, budget,
                                               config.snowball_k, rng);
    crawl_span.End();
    obs::MetricAdd("oracle.queries", oracle.unique_queries());
    if (config.noise.Active()) RecordNoiseMetrics(oracle);
    const std::size_t steps = sample.Length();
    results.push_back(Evaluate(
        MethodKind::kSnowball, RestoreBySubgraphSampling(sample),
        original_properties, config.property_options, steps,
        oracle.unique_queries()));
  }
  if (Wants(config, MethodKind::kForestFire)) {
    PerturbedOracle oracle(original, config.noise, noise_seed);
    obs::Span crawl_span("crawl");
    const SamplingList sample = ForestFireSample(
        oracle, seed_node, budget, config.forest_fire_pf, rng);
    crawl_span.End();
    obs::MetricAdd("oracle.queries", oracle.unique_queries());
    if (config.noise.Active()) RecordNoiseMetrics(oracle);
    const std::size_t steps = sample.Length();
    results.push_back(Evaluate(
        MethodKind::kForestFire, RestoreBySubgraphSampling(sample),
        original_properties, config.property_options, steps,
        oracle.unique_queries()));
  }

  const bool wants_generative = Wants(config, MethodKind::kGjoka) ||
                                Wants(config, MethodKind::kProposed);
  const bool needs_walk =
      Wants(config, MethodKind::kRandomWalk) || wants_generative;
  if (needs_walk) {
    // One sample shared by subgraph-RW, Gjoka et al., and the proposed
    // method (Section V-D: "we perform these methods for the same RW to
    // achieve a fair comparison"). The crawler / walk axes select how it
    // is collected; the default reproduces the paper's simple random walk.
    PerturbedOracle oracle(original, config.noise, noise_seed);
    obs::Span crawl_span("crawl");
    const SamplingList walk =
        SharedSample(oracle, seed_node, budget, config, rng, walk_cap);
    crawl_span.End();
    obs::MetricAdd("oracle.queries", oracle.unique_queries());
    if (config.noise.Active()) RecordNoiseMetrics(oracle);
    if (wants_generative && !walk.is_walk) {
      throw std::invalid_argument(
          "generative methods (gjoka/proposed) require a walk crawler "
          "(rw|frontier|mhrw), not a bfs/snowball/ff crawl");
    }
    // The clustering estimator's normalizer is a property of the walk
    // that produced the sample — derive it here so the two can never
    // disagree (see WalkKind).
    RestorationOptions restoration = config.restoration;
    restoration.estimator.walk_type =
        (config.crawler == CrawlerKind::kRw &&
         config.walk == WalkKind::kNonBacktracking)
            ? WalkType::kNonBacktracking
            : WalkType::kSimple;
    if (Wants(config, MethodKind::kRandomWalk)) {
      results.push_back(Evaluate(
          MethodKind::kRandomWalk, RestoreBySubgraphSampling(walk),
          original_properties, config.property_options, walk.Length(),
          oracle.unique_queries()));
    }
    if (Wants(config, MethodKind::kGjoka)) {
      results.push_back(Evaluate(
          MethodKind::kGjoka, RestoreGjoka(walk, restoration, rng),
          original_properties, config.property_options, walk.Length(),
          oracle.unique_queries()));
    }
    if (Wants(config, MethodKind::kProposed)) {
      results.push_back(Evaluate(
          MethodKind::kProposed, RestoreProposed(walk, restoration, rng),
          original_properties, config.property_options, walk.Length(),
          oracle.unique_queries()));
    }
  }
  return results;
}

}  // namespace

double EnvOr(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end == value ? fallback : parsed;
}

std::vector<MethodRunResult> RunExperiment(
    const Graph& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t run_seed) {
  return RunExperimentImpl(original, original_properties, config, run_seed);
}

std::vector<MethodRunResult> RunExperiment(
    const CsrGraph& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t run_seed) {
  return RunExperimentImpl(original, original_properties, config, run_seed);
}

std::vector<std::vector<MethodRunResult>> RunExperiments(
    const Graph& original, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t seed_base,
    std::size_t num_trials, std::size_t threads) {
  const CsrGraph snapshot(original);
  return RunExperiments(snapshot, original_properties, config, seed_base,
                        num_trials, threads);
}

std::vector<std::vector<MethodRunResult>> RunExperiments(
    const CsrGraph& snapshot, const GraphProperties& original_properties,
    const ExperimentConfig& config, std::uint64_t seed_base,
    std::size_t num_trials, std::size_t threads) {
  std::vector<std::vector<MethodRunResult>> trials(num_trials);
  ParallelFor(num_trials, threads, [&](std::size_t i) {
    trials[i] = RunExperimentImpl(snapshot, original_properties, config,
                                  seed_base + i);
  });
  return trials;
}

}  // namespace sgr
