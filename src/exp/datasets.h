#ifndef SGR_EXP_DATASETS_H_
#define SGR_EXP_DATASETS_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/graph.h"

namespace sgr {

/// One evaluation dataset. The paper evaluates on seven public social
/// graphs (Table I). This registry provides synthetic stand-ins of each —
/// Holme–Kim power-law-cluster graphs with per-dataset size/density/
/// clustering knobs, preprocessed exactly as Section V-A prescribes — plus
/// a loader for the real edge lists when they are available on disk (drop
/// SNAP/networkrepository files into $SGR_DATASET_DIR to reproduce the
/// paper verbatim; see DESIGN.md "Substitutions").
struct DatasetSpec {
  std::string name;             ///< paper dataset name (lowercase)
  std::size_t num_nodes;        ///< synthetic stand-in size (scaled down)
  std::size_t edges_per_node;   ///< Holme–Kim attachment parameter (core)
  double triad_probability;     ///< Holme–Kim triad-closure probability
  double fringe_fraction;       ///< low-degree periphery share (see
                                ///  GenerateSocialGraph)
  std::uint64_t seed;           ///< generation seed (deterministic graphs)
  std::size_t paper_nodes;      ///< Table I node count (reference)
  std::size_t paper_edges;      ///< Table I edge count (reference)
};

/// The six datasets of Tables II-IV / Fig. 3 (everything except YouTube).
std::vector<DatasetSpec> StandardDatasets();

/// The YouTube stand-in of Table V (largest graph, 1% queried).
DatasetSpec YoutubeDataset();

/// Spec by name (any of the seven); throws std::out_of_range if unknown.
DatasetSpec DatasetByName(const std::string& name);

/// Where a materialized dataset actually came from — echoed into the
/// sgr-report/1 environment block so a report records whether it ran on
/// real data or the synthetic stand-in (and which exact file bytes).
struct DatasetProvenance {
  std::string name;          ///< dataset name (registry key)
  std::string source;        ///< "file" or "generator"
  std::string path;          ///< resolved file path ("" for generator)
  std::string content_hash;  ///< 16-hex FNV-1a-64 of the file bytes ("" for
                             ///  generator)
  double scale = 1.0;        ///< effective synthetic scale (1.0 for file)
};

/// Materializes a dataset: if $SGR_DATASET_DIR is set, the edge list
/// $SGR_DATASET_DIR/<name>.txt is REQUIRED — a missing file is a hard
/// error naming the resolved path, never a silent fall-back to the
/// synthetic generator (running "real-data" experiments on an
/// accidentally-synthetic graph is the failure mode this guards). With
/// the variable unset, the synthetic stand-in is generated. Either way
/// the result is preprocessed (simplified + largest connected component).
///
/// The environment variable SGR_DATASET_SCALE (default 1.0) multiplies
/// the synthetic node count, letting users run closer to paper scale on
/// bigger machines; a malformed or non-positive value is rejected, and a
/// scale that rounds the node count to zero is an error. A nonzero
/// `scale_override` takes precedence over the environment — the scenario
/// engine uses it so a scenario.json with an explicit `dataset_scale` is
/// reproducible regardless of the caller's environment.
Graph LoadDataset(const DatasetSpec& spec, double scale_override = 0.0);

/// CSR-direct variant of LoadDataset — the scenario engine's entry point.
/// File-backed datasets go through the out-of-core ingester
/// (graph/edge_list_reader.h): no intermediate Graph, optional
/// content-hash snapshot cache ($SGR_SNAPSHOT_CACHE names the directory),
/// ingest worker count from $SGR_INGEST_THREADS (default 1; 0 = hardware
/// concurrency), and neighbor compression policy from $SGR_CSR_COMPRESS
/// ("1" always, "0" never, unset = automatic by edge count). Generator
/// datasets produce the identical snapshot a CsrGraph(LoadDataset(...))
/// would. If `provenance` is non-null it receives the data-source record
/// for the report environment block.
CsrGraph LoadDatasetCsr(const DatasetSpec& spec, double scale_override = 0.0,
                        DatasetProvenance* provenance = nullptr);

}  // namespace sgr

#endif  // SGR_EXP_DATASETS_H_
