#ifndef SGR_EXP_DATASETS_H_
#define SGR_EXP_DATASETS_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace sgr {

/// One evaluation dataset. The paper evaluates on seven public social
/// graphs (Table I). This registry provides synthetic stand-ins of each —
/// Holme–Kim power-law-cluster graphs with per-dataset size/density/
/// clustering knobs, preprocessed exactly as Section V-A prescribes — plus
/// a loader for the real edge lists when they are available on disk (drop
/// SNAP/networkrepository files into $SGR_DATASET_DIR to reproduce the
/// paper verbatim; see DESIGN.md "Substitutions").
struct DatasetSpec {
  std::string name;             ///< paper dataset name (lowercase)
  std::size_t num_nodes;        ///< synthetic stand-in size (scaled down)
  std::size_t edges_per_node;   ///< Holme–Kim attachment parameter (core)
  double triad_probability;     ///< Holme–Kim triad-closure probability
  double fringe_fraction;       ///< low-degree periphery share (see
                                ///  GenerateSocialGraph)
  std::uint64_t seed;           ///< generation seed (deterministic graphs)
  std::size_t paper_nodes;      ///< Table I node count (reference)
  std::size_t paper_edges;      ///< Table I edge count (reference)
};

/// The six datasets of Tables II-IV / Fig. 3 (everything except YouTube).
std::vector<DatasetSpec> StandardDatasets();

/// The YouTube stand-in of Table V (largest graph, 1% queried).
DatasetSpec YoutubeDataset();

/// Spec by name (any of the seven); throws std::out_of_range if unknown.
DatasetSpec DatasetByName(const std::string& name);

/// Materializes a dataset: if $SGR_DATASET_DIR/<name>.txt exists it is read
/// as an edge list, otherwise the synthetic stand-in is generated. Either
/// way the result is preprocessed (simplified + largest connected
/// component). The environment variable SGR_DATASET_SCALE (default 1.0)
/// multiplies the synthetic node count, letting users run closer to paper
/// scale on bigger machines. A nonzero `scale_override` takes precedence
/// over the environment — the scenario engine uses it so a scenario.json
/// with an explicit `dataset_scale` is reproducible regardless of the
/// caller's environment.
Graph LoadDataset(const DatasetSpec& spec, double scale_override = 0.0);

}  // namespace sgr

#endif  // SGR_EXP_DATASETS_H_
