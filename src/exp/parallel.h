#ifndef SGR_EXP_PARALLEL_H_
#define SGR_EXP_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sgr {

/// Number of worker threads to use for `requested`: 0 means "all hardware
/// threads" (never less than 1).
std::size_t ResolveThreadCount(std::size_t requested);

/// Utility for callers that need decorrelated per-task seed streams:
/// mixes `base_seed` and `index` through one SplitMix64 round, so
/// adjacent indices map to statistically independent generator states.
/// Note the trial runner (RunExperiments) deliberately does NOT use it —
/// it seeds trial i with `seed_base + i` to stay byte-compatible with
/// sequential RunExperiment calls (mt19937_64's constructor already
/// scrambles consecutive seeds adequately).
std::uint64_t DeriveSeed(std::uint64_t base_seed, std::uint64_t index);

/// Two-level seed derivation for round-scoped RNG streams inside one
/// task: chains DeriveSeed over a stream tag and a round index, so
/// every (stream, round) pair of the same base seed gets a decorrelated
/// generator state. The batched rewiring engine derives round r of its
/// proposal stream this way — the stream is a pure function of
/// (base_seed, round), never of the worker count, which is what makes
/// its output byte-identical for every thread count.
std::uint64_t DeriveRoundSeed(std::uint64_t base_seed, std::uint64_t stream,
                              std::uint64_t round);

/// Fixed-size pool of worker threads with a shared FIFO task queue.
///
/// The restoration experiments are embarrassingly parallel: every Monte
/// Carlo trial reads the same immutable CsrGraph snapshot and writes only
/// its own result slot. The pool exists so the trial runner (and the
/// benches behind `--threads N`) can keep all cores busy without spawning
/// a thread per trial.
class ThreadPool {
 public:
  /// Starts `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Tasks must not
  /// Submit() new work concurrently with Wait().
  void Wait();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs `fn(i)` for every i in [0, count) on up to `threads` workers
/// (0 = hardware concurrency). Iterations are claimed dynamically, so
/// uneven per-trial costs still balance; `fn` must be safe to call
/// concurrently from different threads. When `threads` resolves to 1 (or
/// count <= 1) the loop runs inline with no thread or pool overhead.
void ParallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& fn);

/// ParallelFor over an existing pool: runs `fn(i)` for every i in
/// [0, count) on `pool`'s workers (dynamic claiming) and blocks until all
/// iterations finish. For callers that fan out many small loops in a row
/// (the chunked estimator pass, the batched rewiring rounds) and must not
/// pay a pool construction per loop. The caller must not Submit() other
/// work concurrently.
void PoolFor(ThreadPool& pool, std::size_t count,
             const std::function<void(std::size_t)>& fn);

}  // namespace sgr

#endif  // SGR_EXP_PARALLEL_H_
