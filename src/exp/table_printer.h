#ifndef SGR_EXP_TABLE_PRINTER_H_
#define SGR_EXP_TABLE_PRINTER_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sgr {

/// Minimal fixed-width table printer used by the benchmark harness to emit
/// the paper's tables on stdout (and optionally as CSV for plotting).
class TablePrinter {
 public:
  /// Creates a printer writing to `out` with the given column headers.
  TablePrinter(std::ostream& out, std::vector<std::string> headers);

  /// Adds a data row (must match the header count).
  void AddRow(std::vector<std::string> row);

  /// Renders the header + all rows with aligned columns.
  void Print() const;

  /// Renders as comma-separated values (headers first).
  void PrintCsv() const;

  /// Formats a double with `precision` significant decimals (fixed).
  static std::string Fixed(double value, int precision = 3);

  /// Formats "mean ± sd".
  static std::string PlusMinus(double mean, double sd, int precision = 3);

 private:
  std::ostream* out_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sgr

#endif  // SGR_EXP_TABLE_PRINTER_H_
