#ifndef SGR_RESTORE_GJOKA_H_
#define SGR_RESTORE_GJOKA_H_

#include "restore/method.h"
#include "sampling/sampling_list.h"
#include "util/rng.h"

namespace sgr {

/// Reproducible version of Gjoka et al.'s 2.5K-from-sample generation
/// (INFOCOM 2013), implemented exactly as the paper's Appendix B describes:
/// the same re-weighted estimates and target-construction machinery as the
/// proposed method, but
///   * no subgraph modification steps (the method ignores the structure of
///     the sampled subgraph entirely),
///   * construction from an empty graph rather than from G',
///   * rewiring over all edges (E~rew = E~).
///
/// This is the main generative baseline of the evaluation section.
RestorationResult RestoreGjoka(const SamplingList& list,
                               const RestorationOptions& options, Rng& rng);

}  // namespace sgr

#endif  // SGR_RESTORE_GJOKA_H_
