#ifndef SGR_RESTORE_ASSEMBLER_H_
#define SGR_RESTORE_ASSEMBLER_H_

#include "dk/dk_construct.h"
#include "dk/joint_degree_matrix.h"
#include "restore/target_degree_vector.h"
#include "sampling/subgraph.h"
#include "util/rng.h"

namespace sgr {

/// Third phase of the proposed method (Section IV-D, Algorithm 5): adds
/// nodes and edges to the sampled subgraph so that the result contains G'
/// and exactly realizes the target degree vector and target joint degree
/// matrix. Thin, documented wrapper over the generic dK construction engine
/// (dk/dk_construct.h), which also serves the Gjoka baseline with an empty
/// base graph.
Graph AssembleFromSubgraph(const Subgraph& sub,
                           const TargetDegreeVectorResult& targets,
                           const DegreeVector& n_star,
                           const JointDegreeMatrix& m_star, Rng& rng);

}  // namespace sgr

#endif  // SGR_RESTORE_ASSEMBLER_H_
