#ifndef SGR_RESTORE_ASSEMBLER_H_
#define SGR_RESTORE_ASSEMBLER_H_

#include <cstdint>

#include "dk/dk_construct.h"
#include "dk/joint_degree_matrix.h"
#include "restore/target_degree_vector.h"
#include "sampling/subgraph.h"
#include "util/rng.h"

namespace sgr {

/// Third phase of the proposed method (Section IV-D, Algorithm 5): adds
/// nodes and edges to the sampled subgraph so that the result contains G'
/// and exactly realizes the target degree vector and target joint degree
/// matrix. Thin, documented wrapper over the generic dK construction engine
/// (dk/dk_construct.h), which also serves the Gjoka baseline with an empty
/// base graph.
Graph AssembleFromSubgraph(const Subgraph& sub,
                           const TargetDegreeVectorResult& targets,
                           const DegreeVector& n_star,
                           const JointDegreeMatrix& m_star, Rng& rng);

/// Parallel Algorithm 5 assembly: the stub-matching candidate draws are
/// scored concurrently per class pair (each pair on its own RNG stream
/// derived from `seed`) and committed sequentially in canonical (k, k')
/// order, so the assembled graph is byte-identical for every `threads`
/// value. Selects a different — equally valid — realization of the same
/// targets than the sequential wrapper above (different RNG streams); see
/// ConstructPreservingTargetsParallel for the full contract. Callers
/// holding an Rng should pass one engine draw (rng.engine()()).
Graph AssembleFromSubgraphParallel(const Subgraph& sub,
                                   const TargetDegreeVectorResult& targets,
                                   const DegreeVector& n_star,
                                   const JointDegreeMatrix& m_star,
                                   std::uint64_t seed,
                                   std::size_t threads = 1);

}  // namespace sgr

#endif  // SGR_RESTORE_ASSEMBLER_H_
