#include "restore/target_jdm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/sorted_keys.h"

namespace sgr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Initialization step of Section IV-C: for every degree pair with
/// P̂(k,k') > 0, m*(k,k') = max(NearInt(n̂ k̂̄ P̂(k,k')/µ(k,k')), 1).
JointDegreeMatrix InitializeJdm(const LocalEstimates& est) {
  JointDegreeMatrix m_star;
  for (const std::uint64_t key : SortedKeys(est.joint_dist.values())) {
    const double p = est.joint_dist.values().at(key);
    if (p <= 0.0) continue;
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    if (k > kp) continue;  // handle each unordered pair once
    const std::int64_t value = std::max<std::int64_t>(
        std::llround(est.EstimatedEdgeCount(k, kp)), 1);
    m_star.SetSymmetric(k, kp, value);
  }
  return m_star;
}

/// Row sums s(k) = Σ_k' µ(k,k') m(k,k') for all k <= k_max.
std::vector<std::int64_t> RowSums(const JointDegreeMatrix& m,
                                  std::uint32_t k_max) {
  std::vector<std::int64_t> s(k_max + 1, 0);
  for (const auto& [key, count] : m.counts()) {
    const auto k = static_cast<std::uint32_t>(key >> 32);
    const auto kp = static_cast<std::uint32_t>(key & 0xffffffffu);
    assert(k <= k_max && kp <= k_max);
    s[k] += (k == kp ? 2 : 1) * count;
  }
  return s;
}

/// Uniformly random element of `candidates` (non-empty).
std::uint32_t PickRandom(const std::vector<std::uint32_t>& candidates,
                         Rng& rng) {
  return candidates[rng.NextIndex(candidates.size())];
}

/// Adjustment step (Algorithm 3): drive every row sum s(k) to its target
/// s*(k) = k n*(k), processing the frozen set D in decreasing degree order
/// and respecting the lower limits {m_min(k,k')}. May grow `n_star`.
void AdjustJdm(const LocalEstimates& est, DegreeVector& n_star,
               JointDegreeMatrix& m_star, const JointDegreeMatrix& m_min,
               Rng& rng) {
  const auto k_max = static_cast<std::uint32_t>(n_star.size() - 1);
  std::vector<std::int64_t> s = RowSums(m_star, k_max);
  std::vector<std::int64_t> s_star(k_max + 1, 0);
  for (std::uint32_t k = 1; k <= k_max; ++k) {
    s_star[k] = static_cast<std::int64_t>(k) * n_star[k];
  }

  // D = {k : s(k) != s*(k)} ∪ {1}, frozen now; degrees outside D are never
  // touched, which is exactly the paper's third constraint.
  std::vector<std::uint32_t> d_set;
  std::vector<bool> in_d(k_max + 1, false);
  for (std::uint32_t k = 1; k <= k_max; ++k) {
    if (s[k] != s_star[k] || k == 1) {
      d_set.push_back(k);
      in_d[k] = true;
    }
  }
  // Members of D not exceeding k, ascending (for candidate scans).
  // d_set is ascending by construction; process in decreasing order.
  for (auto it = d_set.rbegin(); it != d_set.rend(); ++it) {
    const std::uint32_t k = *it;
    if (k == 1 && (std::llabs(s[1] - s_star[1]) % 2) == 1) {
      // Lines 2-3: make the gap even; only m(1,1) can move s(1), in steps
      // of 2.
      ++n_star[1];
      s_star[1] += 1;
    }
    while (s[k] != s_star[k]) {
      if (s[k] < s_star[k]) {
        // Lines 5-9: increase m*(k,k') for the candidate with the smallest
        // Δ+(k,k'); exclude k' = k when one unit short (µ(k,k) = 2 would
        // overshoot).
        const bool exclude_self = (s[k] == s_star[k] - 1);
        double best = kInf;
        std::vector<std::uint32_t> best_set;
        for (std::uint32_t kp : d_set) {
          if (kp > k) break;
          if (exclude_self && kp == k) continue;
          const double delta = JdmDelta(est, k, kp, m_star.At(k, kp), +1);
          if (delta < best - 1e-15) {
            best = delta;
            best_set.assign(1, kp);
          } else if (delta <= best + 1e-15) {
            best_set.push_back(kp);
          }
        }
        assert(!best_set.empty() &&
               "D'+(k) is provably non-empty (contains degree 1)");
        const std::uint32_t kp = PickRandom(best_set, rng);
        m_star.AddSymmetric(k, kp, +1);
        s[k] += (kp == k) ? 2 : 1;
        if (kp != k) s[kp] += 1;
      } else {
        // Lines 10-20: decrease m*(k,k') respecting the lower limits, or
        // grow the target sum when no entry can be decreased.
        const bool exclude_self = (s[k] == s_star[k] + 1);
        double best = kInf;
        std::vector<std::uint32_t> best_set;
        for (std::uint32_t kp : d_set) {
          if (kp > k) break;
          if (exclude_self && kp == k) continue;
          if (m_star.At(k, kp) <= m_min.At(k, kp)) continue;
          const double delta = JdmDelta(est, k, kp, m_star.At(k, kp), -1);
          if (delta < best - 1e-15) {
            best = delta;
            best_set.assign(1, kp);
          } else if (delta <= best + 1e-15) {
            best_set.push_back(kp);
          }
        }
        if (!best_set.empty()) {
          const std::uint32_t kp = PickRandom(best_set, rng);
          m_star.AddSymmetric(k, kp, -1);
          s[k] -= (kp == k) ? 2 : 1;
          if (kp != k) s[kp] -= 1;
        } else if (k > 1) {
          ++n_star[k];
          s_star[k] += k;
        } else {
          n_star[1] += 2;
          s_star[1] += 2;
        }
      }
    }
  }
}

/// Modification step (Algorithm 4): raise m*(k1,k2) to at least m'(k1,k2)
/// for every pair, compensating through decrements elsewhere in rows k1 and
/// k2 so that row sums and the total edge count are preserved whenever
/// possible.
void ModifyJdm(const LocalEstimates& est, std::uint32_t k_max,
               JointDegreeMatrix& m_star, const JointDegreeMatrix& m_prime,
               Rng& rng) {
  // D''_-(k): degrees k' != k with m*(k,k') > m'(k,k'), minimizing
  // Δ-(k,k'); ties uniformly random. Returns true and sets `out` when
  // non-empty.
  auto pick_decrement = [&](std::uint32_t k, std::uint32_t& out) {
    double best = kInf;
    std::vector<std::uint32_t> best_set;
    for (std::uint32_t kp = 1; kp <= k_max; ++kp) {
      if (kp == k) continue;
      if (m_star.At(k, kp) <= m_prime.At(k, kp)) continue;
      const double delta = JdmDelta(est, k, kp, m_star.At(k, kp), -1);
      if (delta < best - 1e-15) {
        best = delta;
        best_set.assign(1, kp);
      } else if (delta <= best + 1e-15) {
        best_set.push_back(kp);
      }
    }
    if (best_set.empty()) return false;
    out = PickRandom(best_set, rng);
    return true;
  };

  for (std::uint32_t k1 = 1; k1 <= k_max; ++k1) {
    for (std::uint32_t k2 = k1; k2 <= k_max; ++k2) {
      while (m_star.At(k1, k2) < m_prime.At(k1, k2)) {
        m_star.AddSymmetric(k1, k2, +1);
        std::uint32_t k3 = 0;
        std::uint32_t k4 = 0;
        const bool found3 = pick_decrement(k1, k3);
        if (found3) m_star.AddSymmetric(k1, k3, -1);
        const bool found4 = pick_decrement(k2, k4);
        if (found4) m_star.AddSymmetric(k2, k4, -1);
        if (found3 && found4) m_star.AddSymmetric(k3, k4, +1);
      }
    }
  }
}

}  // namespace

double JdmDelta(const LocalEstimates& est, std::uint32_t k,
                std::uint32_t k_prime, std::int64_t current, int direction) {
  if (est.joint_dist.At(k, k_prime) <= 0.0) return kInf;
  const double estimate = est.EstimatedEdgeCount(k, k_prime);
  if (estimate <= 0.0) return kInf;
  const double cur = static_cast<double>(current);
  const double next = cur + static_cast<double>(direction);
  return (std::abs(estimate - next) - std::abs(estimate - cur)) / estimate;
}

JointDegreeMatrix BuildTargetJdmFromEstimates(const LocalEstimates& est,
                                              DegreeVector& n_star,
                                              Rng& rng) {
  JointDegreeMatrix m_star = InitializeJdm(est);
  AdjustJdm(est, n_star, m_star, JointDegreeMatrix(), rng);
  return m_star;
}

JointDegreeMatrix BuildTargetJdm(const LocalEstimates& est,
                                 DegreeVector& n_star,
                                 const JointDegreeMatrix& m_prime, Rng& rng) {
  JointDegreeMatrix m_star = InitializeJdm(est);
  AdjustJdm(est, n_star, m_star, JointDegreeMatrix(), rng);
  ModifyJdm(est, static_cast<std::uint32_t>(n_star.size() - 1), m_star,
            m_prime, rng);
  if (!m_star.SatisfiesJdm3(n_star)) {
    // The modification broke some row sums; re-adjust with the subgraph
    // class edges as hard lower limits so JDM-4 survives (Section IV-C).
    AdjustJdm(est, n_star, m_star, m_prime, rng);
  }
  assert(m_star.SatisfiesJdm1());
  assert(m_star.SatisfiesJdm2());
  assert(m_star.SatisfiesJdm3(n_star));
  assert(m_star.Dominates(m_prime));
  return m_star;
}

}  // namespace sgr
