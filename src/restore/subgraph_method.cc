#include "restore/subgraph_method.h"

#include "sampling/subgraph.h"
#include "obs/timer.h"

namespace sgr {

RestorationResult RestoreBySubgraphSampling(const SamplingList& list) {
  Timer total;
  RestorationResult result;
  Subgraph sub = BuildSubgraph(list);
  result.subgraph_queried = sub.NumQueried();
  result.subgraph_nodes = sub.graph.NumNodes();
  result.subgraph_edges = sub.graph.NumEdges();
  result.graph = std::move(sub.graph);
  result.total_seconds = total.Seconds();
  return result;
}

std::string MethodName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kBfs:
      return "BFS";
    case MethodKind::kSnowball:
      return "Snowball";
    case MethodKind::kForestFire:
      return "FF";
    case MethodKind::kRandomWalk:
      return "RW";
    case MethodKind::kGjoka:
      return "Gjoka et al.";
    case MethodKind::kProposed:
      return "Proposed";
  }
  return "unknown";
}

}  // namespace sgr
