#include "restore/proposed.h"

#include "dk/dk_construct.h"
#include "estimation/estimators.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "restore/assembler.h"
#include "restore/simplify.h"
#include "restore/target_degree_vector.h"
#include "restore/target_jdm.h"
#include "sampling/subgraph.h"

namespace sgr {

RestorationResult RestoreProposed(const SamplingList& list,
                                  const RestorationOptions& options,
                                  Rng& rng) {
  Timer total;
  RestorationResult result;

  // Preliminary phase: subgraph + re-weighted estimates.
  obs::Span estimate_span("estimate");
  const Subgraph sub = BuildSubgraph(list);
  result.estimates = EstimateLocalProperties(list, options.estimator);
  result.subgraph_queried = sub.NumQueried();
  result.subgraph_nodes = sub.graph.NumNodes();
  result.subgraph_edges = sub.graph.NumEdges();
  estimate_span.End();

  // First phase: target degree vector + per-node target degrees.
  obs::Span extract_span("dk_extract");
  TargetDegreeVectorResult targets =
      BuildTargetDegreeVector(sub, result.estimates, rng);

  // Second phase: target joint degree matrix (may grow the degree vector).
  const JointDegreeMatrix m_prime =
      SubgraphClassEdges(sub.graph, targets.subgraph_target_degrees);
  const JointDegreeMatrix m_star =
      BuildTargetJdm(result.estimates, targets.n_star, m_prime, rng);
  extract_span.End();

  // Third phase: extend the subgraph to realize both targets. The
  // parallel engine takes one engine draw as its seed (like the batched
  // rewirer below), so the sequential path's RNG stream is untouched
  // when it is off.
  obs::Span assemble_span("assemble");
  if (options.parallel_assembly.enabled) {
    result.graph = AssembleFromSubgraphParallel(
        sub, targets, targets.n_star, m_star, rng.engine()(),
        options.parallel_assembly.threads);
  } else {
    result.graph =
        AssembleFromSubgraph(sub, targets, targets.n_star, m_star, rng);
  }
  assemble_span.End();

  // Fourth phase: rewire non-subgraph edges toward ĉ̄(k). Protecting the
  // first |E'| edge ids (the subgraph edges copied first by Algorithm 5)
  // realizes E~rew = E~ \ E'; `protect_subgraph = false` widens the
  // candidate set to all of E~ (Gjoka et al.'s choice — the candidate-set
  // ablation). A nonzero batch size selects the batched speculative
  // engine; its seed is one engine draw, so the sequential path's RNG
  // stream is untouched when the engine is off.
  const std::size_t protected_edges =
      options.protect_subgraph ? sub.graph.NumEdges() : 0;
  RewireOptions rewire_options = options.rewire;
  rewire_options.track_properties = options.track_properties;
  rewire_options.stop_epsilon = options.stop_epsilon;
  obs::Span rewire_span("rewire");
  total.LapSeconds();  // open the rewiring lap
  if (options.parallel_rewire.batch_size > 0) {
    result.rewire_stats = RewireToClusteringParallel(
        result.graph, protected_edges, result.estimates.clustering,
        rewire_options, options.parallel_rewire, rng.engine()());
  } else {
    result.rewire_stats =
        RewireToClustering(result.graph, protected_edges,
                           result.estimates.clustering, rewire_options, rng);
  }
  result.rewiring_seconds = total.LapSeconds();
  rewire_span.End();

  if (options.simplify_output) {
    SimplifyByRewiring(result.graph, protected_edges, rng,
                       options.parallel_rewire.threads);
  }
  result.total_seconds = total.Seconds();
  return result;
}

}  // namespace sgr
