#ifndef SGR_RESTORE_TARGET_DEGREE_VECTOR_H_
#define SGR_RESTORE_TARGET_DEGREE_VECTOR_H_

#include <cstdint>
#include <vector>

#include "dk/degree_vector.h"
#include "estimation/estimates.h"
#include "sampling/subgraph.h"
#include "util/rng.h"

namespace sgr {

/// Output of the first phase (Section IV-B).
struct TargetDegreeVectorResult {
  /// Target degree vector {n*(k)}, size k*_max + 1. Satisfies DV-1..DV-3.
  DegreeVector n_star;

  /// Target degree d*_i of every subgraph node (indexed by subgraph id):
  /// the subgraph degree for queried nodes, an assigned degree >= the
  /// subgraph degree for visible nodes (Lemma 1). Empty for the
  /// estimates-only variant.
  std::vector<std::uint32_t> subgraph_target_degrees;

  /// Target maximum degree k*_max.
  std::uint32_t k_star_max = 0;
};

/// Builds the target degree vector of the proposed method: initialization
/// from (n̂, {P̂(k)}), parity adjustment (Algorithm 1), subgraph-aware
/// modification with per-node target-degree assignment (Algorithm 2), and a
/// final parity re-adjustment if the modification broke DV-2.
TargetDegreeVectorResult BuildTargetDegreeVector(const Subgraph& sub,
                                                 const LocalEstimates& est,
                                                 Rng& rng);

/// Estimates-only variant used by the Gjoka et al. baseline (Appendix B):
/// initialization + parity adjustment, no subgraph modification.
TargetDegreeVectorResult BuildTargetDegreeVectorFromEstimates(
    const LocalEstimates& est);

/// Error increase Δ+(k) of bumping n*(k) by one relative to the immediate
/// estimate n̂(k) = n̂ P̂(k); +infinity when P̂(k) = 0 (Section IV-B).
/// Exposed for tests.
double DegreeDeltaPlus(const LocalEstimates& est, std::uint32_t k,
                       std::int64_t current);

}  // namespace sgr

#endif  // SGR_RESTORE_TARGET_DEGREE_VECTOR_H_
