#include "restore/assembler.h"

namespace sgr {

Graph AssembleFromSubgraph(const Subgraph& sub,
                           const TargetDegreeVectorResult& targets,
                           const DegreeVector& n_star,
                           const JointDegreeMatrix& m_star, Rng& rng) {
  return ConstructPreservingTargets(
      sub.graph, targets.subgraph_target_degrees, n_star, m_star, rng);
}

Graph AssembleFromSubgraphParallel(const Subgraph& sub,
                                   const TargetDegreeVectorResult& targets,
                                   const DegreeVector& n_star,
                                   const JointDegreeMatrix& m_star,
                                   std::uint64_t seed, std::size_t threads) {
  return ConstructPreservingTargetsParallel(
      sub.graph, targets.subgraph_target_degrees, n_star, m_star, seed,
      threads);
}

}  // namespace sgr
