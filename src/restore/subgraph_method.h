#ifndef SGR_RESTORE_SUBGRAPH_METHOD_H_
#define SGR_RESTORE_SUBGRAPH_METHOD_H_

#include "restore/method.h"
#include "sampling/sampling_list.h"

namespace sgr {

/// Subgraph sampling (Section V-D): the baseline that simply returns the
/// subgraph induced from the set of edges obtained by a crawling method
/// (BFS, snowball, forest fire, or random walk) as its "restored" graph.
RestorationResult RestoreBySubgraphSampling(const SamplingList& list);

}  // namespace sgr

#endif  // SGR_RESTORE_SUBGRAPH_METHOD_H_
