#include "restore/target_degree_vector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/fenwick.h"

namespace sgr {

namespace {

/// Nearest integer to `a` (round half away from zero), as NearInt in the
/// paper.
std::int64_t NearInt(double a) { return std::llround(a); }

/// Initialization step of Section IV-B: n*(k) = max(NearInt(n̂ P̂(k)), 1)
/// where P̂(k) > 0, else 0.
DegreeVector InitializeDegreeVector(const LocalEstimates& est,
                                    std::uint32_t k_star_max) {
  DegreeVector n_star(k_star_max + 1, 0);
  for (std::uint32_t k = 1; k <= k_star_max; ++k) {
    const double p = k < est.degree_dist.size() ? est.degree_dist[k] : 0.0;
    if (p > 0.0) {
      n_star[k] = std::max<std::int64_t>(NearInt(est.num_nodes * p), 1);
    }
  }
  return n_star;
}

/// Adjustment step (Algorithm 1): if the degree sum is odd, bump n*(k) for
/// the odd degree k with the smallest error increase Δ+(k) (ties: smallest
/// k; all-infinite ties: smallest odd degree, i.e. k = 1).
void AdjustParity(const LocalEstimates& est, DegreeVector& n_star) {
  if (DegreeVectorTotalDegree(n_star) % 2 == 0) return;
  const std::uint32_t k_star_max =
      static_cast<std::uint32_t>(n_star.size() - 1);
  std::uint32_t best_k = 1;
  double best_delta = std::numeric_limits<double>::infinity();
  for (std::uint32_t k = 1; k <= k_star_max; k += 2) {
    const double delta = DegreeDeltaPlus(est, k, n_star[k]);
    if (delta < best_delta) {
      best_delta = delta;
      best_k = k;
    }
  }
  if (best_k >= n_star.size()) n_star.resize(best_k + 1, 0);
  ++n_star[best_k];
}

}  // namespace

double DegreeDeltaPlus(const LocalEstimates& est, std::uint32_t k,
                       std::int64_t current) {
  const double estimate = est.EstimatedNodeCount(k);
  if (estimate <= 0.0) return std::numeric_limits<double>::infinity();
  const double cur = static_cast<double>(current);
  return (std::abs(estimate - (cur + 1.0)) - std::abs(estimate - cur)) /
         estimate;
}

TargetDegreeVectorResult BuildTargetDegreeVectorFromEstimates(
    const LocalEstimates& est) {
  TargetDegreeVectorResult result;
  result.k_star_max = est.MaxDegreeWithMass();
  result.n_star = InitializeDegreeVector(est, result.k_star_max);
  AdjustParity(est, result.n_star);
  result.k_star_max = static_cast<std::uint32_t>(result.n_star.size() - 1);
  return result;
}

TargetDegreeVectorResult BuildTargetDegreeVector(const Subgraph& sub,
                                                 const LocalEstimates& est,
                                                 Rng& rng) {
  TargetDegreeVectorResult result;
  const Graph& g_sub = sub.graph;

  // Target maximum degree: the larger of the estimated maximum and the
  // subgraph maximum (queried-node degrees are exact; Lemma 1).
  result.k_star_max = std::max(
      est.MaxDegreeWithMass(), static_cast<std::uint32_t>(g_sub.MaxDegree()));

  // Initialization + first parity adjustment.
  result.n_star = InitializeDegreeVector(est, result.k_star_max);
  AdjustParity(est, result.n_star);

  // --- Modification step (Algorithm 2). ---
  DegreeVector& n_star = result.n_star;
  const std::uint32_t k_max = result.k_star_max;
  std::vector<std::uint32_t>& d_star = result.subgraph_target_degrees;
  d_star.assign(g_sub.NumNodes(), 0);

  // Queried nodes: the subgraph degree is the true degree (lines 2-3).
  DegreeVector n_prime(k_max + 1, 0);
  for (NodeId v = 0; v < g_sub.NumNodes(); ++v) {
    if (sub.is_queried[v]) {
      d_star[v] = static_cast<std::uint32_t>(g_sub.Degree(v));
      ++n_prime[d_star[v]];
    }
  }
  // Raise n*(k) to n'(k) where needed (lines 5-6, condition DV-3).
  for (std::uint32_t k = 0; k <= k_max; ++k) {
    n_star[k] = std::max(n_star[k], n_prime[k]);
  }

  // Free capacity per degree class, kept in a Fenwick tree so that a
  // uniform draw from the multiset Dseq(i) (degree k repeated
  // n*(k) - n'(k) times over k in [d'_i, k*_max]) costs O(log k*_max).
  FenwickTree capacity(k_max + 1);
  for (std::uint32_t k = 0; k <= k_max; ++k) {
    capacity.Add(k, n_star[k] - n_prime[k]);
  }

  // Visible nodes in decreasing order of subgraph degree (lines 7-15).
  std::vector<NodeId> visible;
  for (NodeId v = 0; v < g_sub.NumNodes(); ++v) {
    if (!sub.is_queried[v]) visible.push_back(v);
  }
  std::sort(visible.begin(), visible.end(), [&g_sub](NodeId a, NodeId b) {
    if (g_sub.Degree(a) != g_sub.Degree(b)) {
      return g_sub.Degree(a) > g_sub.Degree(b);
    }
    return a < b;
  });

  for (NodeId v : visible) {
    const auto d_sub = static_cast<std::uint32_t>(g_sub.Degree(v));
    std::uint32_t chosen = 0;
    const std::int64_t available = capacity.RangeSum(d_sub, k_max);
    if (available > 0) {
      // Uniform draw from Dseq(i).
      const std::int64_t below =
          d_sub == 0 ? 0 : capacity.PrefixSum(d_sub - 1);
      const std::int64_t target =
          below + static_cast<std::int64_t>(
                      rng.NextIndex(static_cast<std::size_t>(available)));
      chosen = static_cast<std::uint32_t>(capacity.FindByPrefix(target));
      assert(chosen >= d_sub && chosen <= k_max);
      // Assign: n'(k)++ consumes one capacity slot.
      capacity.Add(chosen, -1);
      ++n_prime[chosen];
    } else {
      // Dseq empty: choose k in [d'_i, k*_max] minimizing Δ+(k), smallest
      // on ties (lines 11-12); n*(k) grows together with n'(k).
      double best_delta = std::numeric_limits<double>::infinity();
      std::uint32_t best_k = d_sub;
      for (std::uint32_t k = d_sub; k <= k_max; ++k) {
        const double delta = DegreeDeltaPlus(est, k, n_star[k]);
        if (delta < best_delta) {
          best_delta = delta;
          best_k = k;
        }
      }
      chosen = best_k;
      ++n_prime[chosen];
      ++n_star[chosen];  // capacity stays zero: both n' and n* grew
    }
    d_star[v] = chosen;
  }

  // The modification may have broken DV-2; re-adjust (Section IV-B notes
  // the re-run preserves DV-1 and DV-3 since it only increases entries).
  AdjustParity(est, n_star);

  assert(SatisfiesDv1(n_star));
  assert(SatisfiesDv2(n_star));
  return result;
}

}  // namespace sgr
