#include "restore/simplify.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sgr {

namespace {

/// Offense of the two node pairs touched by a swap (loops count 1,
/// parallel bundles count size - 1).
std::size_t PairOffense(const Graph& g, NodeId a, NodeId b, NodeId c,
                        NodeId d) {
  std::size_t offense = 0;
  if (a == b) {
    offense += 1;
  } else if (g.CountEdges(a, b) > 1) {
    offense += g.CountEdges(a, b) - 1;
  }
  if (c == d) {
    offense += 1;
  } else if (g.CountEdges(c, d) > 1) {
    offense += g.CountEdges(c, d) - 1;
  }
  return offense;
}

}  // namespace

SimplifyStats SimplifyByRewiring(Graph& g,
                                 std::size_t num_protected_edges, Rng& rng,
                                 std::size_t max_rounds,
                                 std::size_t attempts_per_edge) {
  SimplifyStats stats;
  auto count_offending = [&g] {
    // Exact offense: loops, plus parallel surplus (bundle size - 1 per
    // distinct node pair).
    std::size_t loops = 0;
    std::size_t non_loop_edges = 0;
    std::set<std::pair<NodeId, NodeId>> distinct;
    for (const Edge& e : g.edges()) {
      if (e.u == e.v) {
        ++loops;
      } else {
        ++non_loop_edges;
        auto key = std::minmax(e.u, e.v);
        distinct.insert({key.first, key.second});
      }
    }
    return loops + (non_loop_edges - distinct.size());
  };
  stats.offending_before = count_offending();
  stats.offending_after = stats.offending_before;
  if (stats.offending_before == 0) return stats;
  if (g.NumEdges() - num_protected_edges < 2) return stats;

  for (std::size_t round = 0; round < max_rounds; ++round) {
    // Partner index: candidate edge ids bucketed by endpoint degree, so a
    // degree-matched partner is found directly instead of hoped for by
    // uniform sampling (hub degrees are rare; uniform draws would almost
    // never hit them).
    std::unordered_map<std::uint32_t, std::vector<EdgeId>> by_degree;
    for (EdgeId f = num_protected_edges; f < g.NumEdges(); ++f) {
      const Edge edge = g.edge(f);
      by_degree[static_cast<std::uint32_t>(g.Degree(edge.u))].push_back(f);
      if (edge.u != edge.v) {
        by_degree[static_cast<std::uint32_t>(g.Degree(edge.v))].push_back(
            f);
      }
    }

    bool progressed = false;
    for (EdgeId e = num_protected_edges; e < g.NumEdges(); ++e) {
      const Edge bad = g.edge(e);
      const bool is_loop = bad.u == bad.v;
      const bool is_parallel =
          !is_loop && g.CountEdges(bad.u, bad.v) > 1;
      if (!is_loop && !is_parallel) continue;

      // Degrees whose buckets can host a JDM-preserving partner.
      const std::array<std::uint32_t, 2> pivot_degrees = {
          static_cast<std::uint32_t>(g.Degree(bad.u)),
          static_cast<std::uint32_t>(g.Degree(bad.v))};

      bool fixed = false;
      for (std::size_t attempt = 0;
           attempt < attempts_per_edge && !fixed; ++attempt) {
        const std::uint32_t degree =
            pivot_degrees[rng.NextIndex(pivot_degrees.size())];
        auto bucket_it = by_degree.find(degree);
        if (bucket_it == by_degree.end() || bucket_it->second.empty()) {
          continue;
        }
        const EdgeId f =
            bucket_it->second[rng.NextIndex(bucket_it->second.size())];
        if (f == e) continue;
        const Edge other = g.edge(f);

        struct Orientation {
          NodeId i, j, a, b;
        };
        const std::array<Orientation, 4> all = {
            Orientation{bad.u, bad.v, other.u, other.v},
            Orientation{bad.u, bad.v, other.v, other.u},
            Orientation{bad.v, bad.u, other.u, other.v},
            Orientation{bad.v, bad.u, other.v, other.u}};
        for (const Orientation& o : all) {
          if (g.Degree(o.i) != g.Degree(o.a)) continue;
          if (o.i == o.a || o.j == o.b) continue;  // no-op swap
          const std::size_t before = PairOffense(g, o.i, o.j, o.a, o.b);
          // Apply, measure, revert if not a strict improvement.
          g.ReplaceEdge(e, o.i, o.b);
          g.ReplaceEdge(f, o.a, o.j);
          const std::size_t after = PairOffense(g, o.i, o.b, o.a, o.j);
          if (after < before) {
            ++stats.swaps;
            progressed = true;
            fixed = true;
            break;
          }
          g.ReplaceEdge(e, o.i, o.j);
          g.ReplaceEdge(f, o.a, o.b);
        }
      }
    }
    stats.offending_after = count_offending();
    if (stats.offending_after == 0 || !progressed) break;
  }
  return stats;
}

}  // namespace sgr
