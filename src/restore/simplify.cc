#include "restore/simplify.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exp/parallel.h"

namespace sgr {

namespace {

/// Sentinel key for self-loops in the offense census (sorts last).
constexpr std::uint64_t kLoopKey = ~std::uint64_t{0};

/// Exact offense census: loops, plus parallel surplus (bundle size - 1
/// per distinct node pair). The edge scan is keyed and parallelized over
/// chunks; the result is a pure integer count of the edge multiset, so it
/// is identical for every thread count.
std::size_t CountOffense(const Graph& g, std::size_t threads) {
  const std::size_t m = g.NumEdges();
  std::vector<std::uint64_t> keys(m);
  const std::size_t workers = ResolveThreadCount(threads);
  const std::size_t chunk = 1 << 14;
  const std::size_t num_chunks = (m + chunk - 1) / chunk;
  ParallelFor(num_chunks, workers, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(m, begin + chunk);
    for (std::size_t e = begin; e < end; ++e) {
      const Edge& edge = g.edge(e);
      if (edge.u == edge.v) {
        keys[e] = kLoopKey;
      } else {
        const auto [lo, hi] = std::minmax(edge.u, edge.v);
        keys[e] = (static_cast<std::uint64_t>(lo) << 32) | hi;
      }
    }
  });
  std::sort(keys.begin(), keys.end());
  std::size_t loops = 0;
  std::size_t surplus = 0;
  for (std::size_t e = 0; e < m; ++e) {
    if (keys[e] == kLoopKey) {
      ++loops;
    } else if (e > 0 && keys[e] == keys[e - 1]) {
      ++surplus;
    }
  }
  return loops + surplus;
}

/// Offense of the two node pairs touched by a swap (loops count 1,
/// parallel bundles count size - 1).
std::size_t PairOffense(const Graph& g, NodeId a, NodeId b, NodeId c,
                        NodeId d) {
  std::size_t offense = 0;
  if (a == b) {
    offense += 1;
  } else if (g.CountEdges(a, b) > 1) {
    offense += g.CountEdges(a, b) - 1;
  }
  if (c == d) {
    offense += 1;
  } else if (g.CountEdges(c, d) > 1) {
    offense += g.CountEdges(c, d) - 1;
  }
  return offense;
}

}  // namespace

SimplifyStats SimplifyByRewiring(Graph& g,
                                 std::size_t num_protected_edges, Rng& rng,
                                 std::size_t threads,
                                 std::size_t max_rounds,
                                 std::size_t attempts_per_edge) {
  SimplifyStats stats;
  const auto count_offending = [&g, threads] {
    return CountOffense(g, threads);
  };
  stats.offending_before = count_offending();
  stats.offending_after = stats.offending_before;
  if (stats.offending_before == 0) return stats;
  if (g.NumEdges() - num_protected_edges < 2) return stats;

  for (std::size_t round = 0; round < max_rounds; ++round) {
    // Partner index: candidate edge ids bucketed by endpoint degree, so a
    // degree-matched partner is found directly instead of hoped for by
    // uniform sampling (hub degrees are rare; uniform draws would almost
    // never hit them).
    std::unordered_map<std::uint32_t, std::vector<EdgeId>> by_degree;
    for (EdgeId f = num_protected_edges; f < g.NumEdges(); ++f) {
      const Edge edge = g.edge(f);
      by_degree[static_cast<std::uint32_t>(g.Degree(edge.u))].push_back(f);
      if (edge.u != edge.v) {
        by_degree[static_cast<std::uint32_t>(g.Degree(edge.v))].push_back(
            f);
      }
    }

    bool progressed = false;
    for (EdgeId e = num_protected_edges; e < g.NumEdges(); ++e) {
      const Edge bad = g.edge(e);
      const bool is_loop = bad.u == bad.v;
      const bool is_parallel =
          !is_loop && g.CountEdges(bad.u, bad.v) > 1;
      if (!is_loop && !is_parallel) continue;

      // Degrees whose buckets can host a JDM-preserving partner.
      const std::array<std::uint32_t, 2> pivot_degrees = {
          static_cast<std::uint32_t>(g.Degree(bad.u)),
          static_cast<std::uint32_t>(g.Degree(bad.v))};

      bool fixed = false;
      for (std::size_t attempt = 0;
           attempt < attempts_per_edge && !fixed; ++attempt) {
        const std::uint32_t degree =
            pivot_degrees[rng.NextIndex(pivot_degrees.size())];
        auto bucket_it = by_degree.find(degree);
        if (bucket_it == by_degree.end() || bucket_it->second.empty()) {
          continue;
        }
        const EdgeId f =
            bucket_it->second[rng.NextIndex(bucket_it->second.size())];
        if (f == e) continue;
        const Edge other = g.edge(f);

        struct Orientation {
          NodeId i, j, a, b;
        };
        const std::array<Orientation, 4> all = {
            Orientation{bad.u, bad.v, other.u, other.v},
            Orientation{bad.u, bad.v, other.v, other.u},
            Orientation{bad.v, bad.u, other.u, other.v},
            Orientation{bad.v, bad.u, other.v, other.u}};
        for (const Orientation& o : all) {
          if (g.Degree(o.i) != g.Degree(o.a)) continue;
          if (o.i == o.a || o.j == o.b) continue;  // no-op swap
          const std::size_t before = PairOffense(g, o.i, o.j, o.a, o.b);
          // Apply, measure, revert if not a strict improvement.
          g.ReplaceEdge(e, o.i, o.b);
          g.ReplaceEdge(f, o.a, o.j);
          const std::size_t after = PairOffense(g, o.i, o.b, o.a, o.j);
          if (after < before) {
            ++stats.swaps;
            progressed = true;
            fixed = true;
            break;
          }
          g.ReplaceEdge(e, o.i, o.j);
          g.ReplaceEdge(f, o.a, o.b);
        }
      }
    }
    stats.offending_after = count_offending();
    if (stats.offending_after == 0 || !progressed) break;
  }
  return stats;
}

}  // namespace sgr
