#ifndef SGR_RESTORE_REWIRER_H_
#define SGR_RESTORE_REWIRER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace sgr {

/// Options for the rewiring phase (Algorithm 6).
struct RewireOptions {
  /// Coefficient RC of the number of rewiring attempts: R = RC * |E~rew|.
  /// The paper uses RC = 500 (following Orsini et al.).
  double rewiring_coefficient = 500.0;

  /// Attempts between full objective recomputations (floating-point drift
  /// control for the incrementally maintained L1 distance).
  std::size_t resync_interval = 1 << 20;
};

/// Outcome statistics of a rewiring run.
struct RewireStats {
  std::size_t attempts = 0;          ///< R, total trial swaps
  std::size_t accepted = 0;          ///< swaps that reduced the objective
  double initial_distance = 0.0;     ///< normalized L1 before rewiring
  double final_distance = 0.0;       ///< normalized L1 after rewiring
};

/// Rewires edges of `g` so that its degree-dependent clustering coefficient
/// approaches `target_clustering` (Algorithm 6).
///
/// Edge ids below `num_protected_edges` form E' and are never rewired: the
/// proposed method protects the sampled subgraph (E~rew = E~ \ E'), which is
/// both what preserves the subgraph structure and the source of its speedup
/// over Gjoka et al.'s variant (which passes 0 and rewires everything).
///
/// Each attempt draws an ordered pair of distinct candidate edges, picks a
/// uniformly random endpoint orientation ((i,j),(a,b)) with deg(i) = deg(a)
/// (attempt fails if none exists), and replaces the pair with
/// ((i,b),(a,j)) iff the normalized L1 distance between the present and
/// target degree-dependent clustering strictly decreases. Degree-matched
/// swaps preserve the degree vector and joint degree matrix exactly.
RewireStats RewireToClustering(Graph& g, std::size_t num_protected_edges,
                               const std::vector<double>& target_clustering,
                               const RewireOptions& options, Rng& rng);

}  // namespace sgr

#endif  // SGR_RESTORE_REWIRER_H_
