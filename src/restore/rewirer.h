#ifndef SGR_RESTORE_REWIRER_H_
#define SGR_RESTORE_REWIRER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace sgr {

/// Options for the rewiring phase (Algorithm 6).
struct RewireOptions {
  /// Coefficient RC of the number of rewiring attempts: R = RC * |E~rew|.
  /// The paper uses RC = 500 (following Orsini et al.).
  double rewiring_coefficient = 500.0;

  /// Attempts between full objective recomputations (floating-point drift
  /// control for the incrementally maintained L1 distance). 0 means
  /// "never resync" (the final distance is always recomputed from
  /// scratch regardless).
  std::size_t resync_interval = 1 << 20;

  /// When true, the engine maintains a PropertyTracker over the committed
  /// swaps (never over speculative proposals) and fills
  /// RewireStats::curve with kConvergenceSamples evenly spaced
  /// convergence samples. Pure observation: the proposal stream, the
  /// acceptance decisions, and the rewired graph are byte-identical with
  /// tracking on or off (no extra RNG draws, no objective perturbation).
  bool track_properties = false;

  /// Adaptive stop: when `track_properties` is set and `stop_epsilon` is
  /// positive, the engine halts as soon as the tracked normalized L1
  /// distance to the target clustering is <= stop_epsilon
  /// (RewireStats::stopped_early records that it fired, and
  /// RewireStats::attempts then reports the attempts actually made).
  /// 0 disables the stop.
  double stop_epsilon = 0.0;
};

/// Options of the batched speculative rewiring engine
/// (RewireToClusteringParallel).
///
/// `threads` is an execution knob only: for a fixed `batch_size` the
/// engine's output — the rewired graph, every RewireStats field, and the
/// rewiring objective trajectory — is byte-identical for every thread
/// count, because the proposal stream is drawn from a per-round RNG
/// derived purely from (seed, round) and commits happen sequentially in
/// canonical batch order. `batch_size` IS an algorithm knob: changing it
/// changes which proposals are scored against which tracker state, so it
/// selects a different (equally valid) optimization trajectory.
struct ParallelRewireOptions {
  /// Proposals drawn and speculatively scored per round. 0 lets the
  /// engine pick its default (kDefaultRewireBatch).
  std::size_t batch_size = 0;

  /// Worker threads for the speculative scoring phase (0 = hardware
  /// concurrency, 1 = fully inline). Never changes results.
  std::size_t threads = 1;
};

/// Default proposals-per-round of the batched engine when
/// ParallelRewireOptions::batch_size is 0. Large enough to amortize the
/// per-round fan-out, small enough that intra-round conflicts stay rare.
inline constexpr std::size_t kDefaultRewireBatch = 256;

/// One point of the rewiring convergence curve recorded when
/// RewireOptions::track_properties is on: the incrementally tracked
/// swap-sensitive properties after `attempts` trial swaps.
struct ConvergenceSample {
  std::size_t attempts = 0;        ///< attempts completed at this sample
  double objective = 0.0;          ///< normalized L1 clustering distance
  double clustering_global = 0.0;  ///< c̄ of the working graph
  std::size_t components = 0;      ///< connected components
  std::size_t lcc = 0;             ///< largest-component size
};

/// Number of evenly spaced convergence samples a tracked run records.
/// Fixed so per-sample aggregation across trials lines up index-by-index.
inline constexpr std::size_t kConvergenceSamples = 16;

/// Outcome statistics of a rewiring run.
struct RewireStats {
  std::size_t attempts = 0;          ///< R, total trial swaps (actual count
                                     ///  when the adaptive stop fires)
  std::size_t accepted = 0;          ///< swaps that reduced the objective
  double initial_distance = 0.0;     ///< normalized L1 before rewiring
  double final_distance = 0.0;       ///< normalized L1 after rewiring

  // Batched-engine round accounting (all zero on the sequential path).
  std::size_t rounds = 0;        ///< proposal batches drawn
  std::size_t evaluated = 0;     ///< well-formed proposals scored speculatively
  std::size_t conflicts = 0;     ///< proposals dropped: edge re-rewired earlier in the round
  std::size_t reevaluated = 0;   ///< stale scores re-derived at commit time

  // Property tracking (RewireOptions::track_properties). `curve` holds
  // exactly kConvergenceSamples points for a tracked run that rewired
  // anything, padded with the final state when the adaptive stop fired;
  // empty when tracking is off or the guard paths returned early.
  std::vector<ConvergenceSample> curve;
  bool stopped_early = false;    ///< the stop_epsilon halt fired
};

/// Rewires edges of `g` so that its degree-dependent clustering coefficient
/// approaches `target_clustering` (Algorithm 6).
///
/// Edge ids below `num_protected_edges` form E' and are never rewired: the
/// proposed method protects the sampled subgraph (E~rew = E~ \ E'), which is
/// both what preserves the subgraph structure and the source of its speedup
/// over Gjoka et al.'s variant (which passes 0 and rewires everything).
/// `num_protected_edges > g.NumEdges()` leaves nothing to rewire and
/// returns empty stats (as does any candidate set smaller than 2).
///
/// Each attempt draws an ordered pair of distinct candidate edges, picks a
/// uniformly random endpoint orientation ((i,j),(a,b)) with deg(i) = deg(a)
/// (attempt fails if none exists), and replaces the pair with
/// ((i,b),(a,j)) iff the normalized L1 distance between the present and
/// target degree-dependent clustering strictly decreases. Degree-matched
/// swaps preserve the degree vector and joint degree matrix exactly.
RewireStats RewireToClustering(Graph& g, std::size_t num_protected_edges,
                               const std::vector<double>& target_clustering,
                               const RewireOptions& options, Rng& rng);

/// Batched speculative variant of RewireToClustering: the same swap
/// family, candidate protection, and strict-improvement acceptance, run
/// as rounds of `parallel.batch_size` proposals.
///
/// Every round:
///   1. draws its proposal batch from a deterministic per-round RNG
///      stream (DeriveRoundSeed(seed, ..., round) — independent of the
///      worker count),
///   2. scores each proposal's objective delta speculatively against the
///      frozen round-start tracker state, in parallel on up to
///      `parallel.threads` workers (TriangleTracker::EvaluateSwapDelta is
///      const and race-free),
///   3. commits in canonical batch order: speculatively non-improving
///      proposals are rejected; improving ones whose conflict footprint
///      (four endpoints + touched degree classes) overlaps an earlier
///      commit of the same round are re-scored against the live state
///      first; proposals whose edge ids were already rewired this round
///      are dropped.
///
/// The commit step is the only writer, so the rewired graph and every
/// RewireStats field are byte-identical for every `parallel.threads`
/// value — the intra-trial extension of the trial-level determinism
/// contract RunExperiments locks. Note the trajectory differs from the
/// sequential RewireToClustering for the same seed (proposals are scored
/// against round-start state, not the post-previous-attempt state): both
/// are valid runs of Algorithm 6, each individually deterministic.
///
/// `options.resync_interval` is ignored: acceptance always scores fresh
/// from the exact integer triangle state and the final distance is
/// recomputed from scratch, so this engine has no floating-point drift
/// to control.
///
/// `seed` drives all randomness; callers holding an Rng should pass one
/// engine draw (rng.engine()()).
RewireStats RewireToClusteringParallel(
    Graph& g, std::size_t num_protected_edges,
    const std::vector<double>& target_clustering,
    const RewireOptions& options, const ParallelRewireOptions& parallel,
    std::uint64_t seed);

}  // namespace sgr

#endif  // SGR_RESTORE_REWIRER_H_
