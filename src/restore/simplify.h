#ifndef SGR_RESTORE_SIMPLIFY_H_
#define SGR_RESTORE_SIMPLIFY_H_

#include <cstddef>

#include "graph/graph.h"
#include "util/rng.h"

namespace sgr {

/// Statistics of a simplification pass.
struct SimplifyStats {
  std::size_t offending_before = 0;  ///< loops + parallel-edge surplus
  std::size_t offending_after = 0;
  std::size_t swaps = 0;             ///< accepted repair swaps
};

/// Removes self-loops and parallel edges by degree-matched double-edge
/// swaps, preserving the degree vector and the joint degree matrix
/// exactly (the same swap family as Algorithm 6, targeting simplicity
/// instead of clustering).
///
/// The problem definition allows multi-edges and loops, and the paper's
/// generated graphs may contain a few of them; downstream consumers often
/// require simple graphs. Each offending edge is repaired by swapping
/// with a random degree-matched partner when the swap strictly reduces
/// the total offense (loop count + parallel surplus), so the pass never
/// makes the graph less simple. Edge ids below `num_protected_edges`
/// (the sampled subgraph, which is always simple) are never touched.
///
/// Returns the before/after offense counts; `offending_after` can stay
/// positive when the joint degree matrix admits no simple realization in
/// the neighborhood explored (`max_rounds` bounds the work).
///
/// `threads` (0 = hardware concurrency) parallelizes the per-round
/// offense census — an edge-list scan plus a distinct-pair count, the
/// pass's read-only bottleneck on large graphs. The repair loop itself
/// stays sequential, so results are identical for every thread count
/// (the census is a pure integer count, independent of scan order).
/// `threads` precedes the tuning knobs so the restoration methods can
/// plumb their worker count without restating the knob defaults.
SimplifyStats SimplifyByRewiring(Graph& g,
                                 std::size_t num_protected_edges, Rng& rng,
                                 std::size_t threads = 1,
                                 std::size_t max_rounds = 20,
                                 std::size_t attempts_per_edge = 64);

}  // namespace sgr

#endif  // SGR_RESTORE_SIMPLIFY_H_
