#ifndef SGR_RESTORE_TARGET_JDM_H_
#define SGR_RESTORE_TARGET_JDM_H_

#include <cstdint>
#include <vector>

#include "dk/degree_vector.h"
#include "dk/joint_degree_matrix.h"
#include "estimation/estimates.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace sgr {

/// Second phase of the proposed method (Section IV-C): constructs the
/// target joint degree matrix {m*(k,k')} from the estimates, the target
/// degree vector, and (for the proposed method) the sampled subgraph.
///
/// The returned matrix satisfies JDM-1..JDM-3 with respect to the (possibly
/// grown) degree vector, and JDM-4 with respect to `m_prime` when provided.
/// `n_star` is taken by reference: Algorithm 3 may increase entries when a
/// row sum cannot otherwise reach its target (lines 2-3 and 16-20).

/// Builds m* for the proposed method. `m_prime` must be the class-edge
/// matrix of the subgraph under the target-degree assignment
/// (SubgraphClassEdges). Pipeline: initialization, adjustment with zero
/// lower limits (Algorithm 3), subgraph modification (Algorithm 4), and a
/// re-adjustment with lower limits m'(k,k') if the modification broke
/// JDM-3.
JointDegreeMatrix BuildTargetJdm(const LocalEstimates& est,
                                 DegreeVector& n_star,
                                 const JointDegreeMatrix& m_prime, Rng& rng);

/// Estimates-only variant for the Gjoka et al. baseline (Appendix B):
/// initialization + adjustment, no subgraph modification.
JointDegreeMatrix BuildTargetJdmFromEstimates(const LocalEstimates& est,
                                              DegreeVector& n_star, Rng& rng);

/// Error increase Δ±(k,k') of changing m*(k,k') by one relative to the
/// immediate estimate m̂(k,k') = n̂ k̂̄ P̂(k,k')/µ(k,k'); +infinity when
/// P̂(k,k') = 0. `direction` is +1 or -1. Exposed for tests.
double JdmDelta(const LocalEstimates& est, std::uint32_t k,
                std::uint32_t k_prime, std::int64_t current, int direction);

}  // namespace sgr

#endif  // SGR_RESTORE_TARGET_JDM_H_
