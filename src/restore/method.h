#ifndef SGR_RESTORE_METHOD_H_
#define SGR_RESTORE_METHOD_H_

#include <cstddef>
#include <string>

#include "dk/dk_construct.h"
#include "estimation/estimates.h"
#include "estimation/estimators.h"
#include "graph/graph.h"
#include "restore/rewirer.h"

namespace sgr {

/// Options shared by the generative restoration methods (proposed and
/// Gjoka et al.).
struct RestorationOptions {
  /// Rewiring-phase options (RC = 500 reproduces the paper's setting).
  RewireOptions rewire;

  /// Batched speculative rewiring engine. `parallel_rewire.batch_size`
  /// selects the engine: 0 (the default) runs the classic sequential
  /// attempt loop; nonzero runs RewireToClusteringParallel with that
  /// round size on `parallel_rewire.threads` workers. The thread count
  /// never changes results — see restore/rewirer.h.
  ParallelRewireOptions parallel_rewire;

  /// Parallel Algorithm 5 assembly. `parallel_assembly.enabled` selects
  /// the engine: false (the default) runs the classic sequential
  /// stub-matching loop on the method's RNG stream; true runs
  /// ConstructPreservingTargetsParallel with per-class-pair derived RNG
  /// streams on `parallel_assembly.threads` workers. The thread count
  /// never changes results — see dk/dk_construct.h.
  ParallelAssemblyOptions parallel_assembly;

  /// Estimator options (collision-lag fraction, joint-estimator mode,
  /// walk type, chunk-scoring worker threads). Set
  /// `estimator.walk_type = WalkType::kNonBacktracking` when the sampling
  /// list came from NonBacktrackingWalkSample (the experiment runner
  /// derives this automatically from its walk axis). `estimator.threads`
  /// is an execution knob only: estimates are bit-identical for every
  /// value (see estimation/estimators.h).
  EstimatorOptions estimator;

  /// Whether the proposed method's rewiring phase protects the sampled
  /// subgraph edges E' — i.e. rewires over E~ \ E' (Section IV-E, the
  /// paper's choice). `false` exposes Gjoka et al.'s all-edges candidate
  /// set inside the proposed pipeline: the rewiring pass may then destroy
  /// subgraph edges (the `ablation-rewire` scenario measures the effect).
  /// Ignored by RestoreGjoka, which never protects edges.
  bool protect_subgraph = true;

  /// If true, a degree-matched simplification pass (restore/simplify.h)
  /// runs after rewiring, removing most self-loops and parallel edges
  /// while preserving the degree vector, the joint degree matrix, and the
  /// sampled subgraph. Off by default: the paper's generated graphs keep
  /// them (Section III-A allows both).
  bool simplify_output = false;

  /// When true, the rewiring phase maintains an incremental
  /// PropertyTracker over committed swaps and reports a convergence
  /// curve (RewireStats::curve). Observation only — results are
  /// byte-identical with tracking on or off (see restore/rewirer.h).
  bool track_properties = false;

  /// Adaptive rewiring stop (requires `track_properties`): halt the
  /// rewiring phase once the tracked L1 clustering distance is within
  /// this epsilon of the target. 0 disables the stop.
  double stop_epsilon = 0.0;
};

/// Result of applying a restoration method to a sample.
struct RestorationResult {
  /// The generated graph G~ (for subgraph sampling: the subgraph G').
  Graph graph;

  /// Wall-clock generation time in seconds (excludes crawling, as in
  /// Table IV: generation starts from the sampling list).
  double total_seconds = 0.0;

  /// Seconds spent in the rewiring phase (Table IV reports it separately).
  double rewiring_seconds = 0.0;

  /// Rewiring statistics (attempts, acceptances, objective trajectory).
  RewireStats rewire_stats;

  /// Local-property estimates the generation used (empty for subgraph
  /// sampling).
  LocalEstimates estimates;

  /// |V'qry|, |V'| and |E'| of the sampled subgraph (diagnostics).
  std::size_t subgraph_queried = 0;
  std::size_t subgraph_nodes = 0;
  std::size_t subgraph_edges = 0;
};

/// Identifiers for the six methods compared in the paper's evaluation.
enum class MethodKind {
  kBfs,        ///< subgraph sampling via breadth-first search
  kSnowball,   ///< subgraph sampling via snowball (k = 50)
  kForestFire, ///< subgraph sampling via forest fire (pf = 0.7)
  kRandomWalk, ///< subgraph sampling via random walk
  kGjoka,      ///< Gjoka et al.'s 2.5K generation (Appendix B)
  kProposed,   ///< the paper's proposed restoration method
};

/// Display name used by the table printers ("BFS", "Snowball", "FF", "RW",
/// "Gjoka et al.", "Proposed").
std::string MethodName(MethodKind kind);

}  // namespace sgr

#endif  // SGR_RESTORE_METHOD_H_
