#ifndef SGR_RESTORE_PROPOSED_H_
#define SGR_RESTORE_PROPOSED_H_

#include "restore/method.h"
#include "sampling/sampling_list.h"
#include "util/rng.h"

namespace sgr {

/// The paper's proposed social-graph restoration method (Section IV).
///
/// Given the sampling list of a simple random walk, the method
///   1. builds the induced subgraph G' (Section III-D),
///   2. estimates the five local properties by re-weighted random walk
///      (Section III-E),
///   3. constructs the target degree vector, assigning a target degree to
///      every subgraph node (Section IV-B, Algorithms 1-2),
///   4. constructs the target joint degree matrix (Section IV-C,
///      Algorithms 3-4),
///   5. adds nodes and edges to G' realizing both targets (Section IV-D,
///      Algorithm 5),
///   6. rewires the non-subgraph edges toward the estimated
///      degree-dependent clustering coefficient (Section IV-E,
///      Algorithm 6).
///
/// The generated graph contains G' as a subgraph, exactly realizes
/// {n*(k)} and {m*(k,k')}, and approximately realizes {ĉ̄(k)}.
///
/// `list.is_walk` must be true (the estimators require a Markov chain).
RestorationResult RestoreProposed(const SamplingList& list,
                                  const RestorationOptions& options,
                                  Rng& rng);

}  // namespace sgr

#endif  // SGR_RESTORE_PROPOSED_H_
