#include "restore/rewirer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>

#include "analysis/property_tracker.h"
#include "dk/triangle_tracker.h"
#include "exp/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sgr {

namespace {

/// One candidate 2-swap: replace edges e1 = (i, j) and e2 = (a, b) with
/// (i, b) and (a, j). `valid` is false for the attempts the sequential
/// loop `continue`s over (identical edge draw, no degree-matched
/// orientation, no-op swap).
struct SwapProposal {
  EdgeId e1 = 0;
  EdgeId e2 = 0;
  NodeId i = 0, j = 0, a = 0, b = 0;
  bool valid = false;
  double delta = 0.0;                   // speculative objective delta
  std::vector<std::uint32_t> touched;   // degree classes the score read
};

/// Draws one attempt exactly the way the sequential loop always has:
/// ordered pair of candidate edge ids, then a uniform pick among the
/// degree-matched endpoint orientations. Consumes the same RNG draws in
/// the same order for both the sequential and the batched path. Fills
/// `p` in place (leaving p.touched alone, so the batched engine's
/// proposal slots keep their vector capacity across rounds).
void DrawProposal(const Graph& g, std::size_t num_protected_edges,
                  std::size_t num_candidates, Rng& rng, SwapProposal& p) {
  p.valid = false;
  p.e1 = num_protected_edges + rng.NextIndex(num_candidates);
  p.e2 = num_protected_edges + rng.NextIndex(num_candidates);
  if (p.e1 == p.e2) return;
  const Edge edge1 = g.edge(p.e1);
  const Edge edge2 = g.edge(p.e2);

  // Orientations ((i,j),(a,b)) with deg(i) == deg(a); pick uniformly
  // among the valid ones.
  struct Orientation {
    NodeId i, j, a, b;
  };
  std::array<Orientation, 4> all = {
      Orientation{edge1.u, edge1.v, edge2.u, edge2.v},
      Orientation{edge1.u, edge1.v, edge2.v, edge2.u},
      Orientation{edge1.v, edge1.u, edge2.u, edge2.v},
      Orientation{edge1.v, edge1.u, edge2.v, edge2.u}};
  std::array<Orientation, 4> valid;
  std::size_t num_valid = 0;
  for (const Orientation& o : all) {
    if (g.Degree(o.i) == g.Degree(o.a)) valid[num_valid++] = o;
  }
  if (num_valid == 0) return;
  const Orientation o = valid[rng.NextIndex(num_valid)];

  // Swaps that leave the edge multiset unchanged cannot improve.
  if (o.i == o.a || o.j == o.b) return;

  p.i = o.i;
  p.j = o.j;
  p.a = o.a;
  p.b = o.b;
  p.valid = true;
}

/// Number of rewiring attempts R = RC * |E~rew| shared by both engines.
std::size_t TotalAttempts(const RewireOptions& options,
                          std::size_t num_candidates) {
  return static_cast<std::size_t>(
      std::llround(options.rewiring_coefficient *
                   static_cast<double>(num_candidates)));
}

/// Stream tag of the per-round proposal RNG (see DeriveRoundSeed).
constexpr std::uint64_t kRewireProposalStream = 0x5e71ULL;

/// Attempt count at which convergence sample `index` (0-based) is due:
/// the samples split the attempt budget into kConvergenceSamples even
/// slices, the last one landing exactly on `total`.
std::size_t SampleThreshold(std::size_t total, std::size_t index) {
  return total * (index + 1) / kConvergenceSamples;
}

/// Records every convergence sample that became due at `attempts_done`
/// trial swaps. All reads — no RecomputeObjective, no RNG draws — so a
/// tracked run's trajectory is identical to an untracked one.
void RecordDueSamples(RewireStats& stats, std::size_t total_attempts,
                      std::size_t attempts_done, double objective,
                      const PropertyTracker& props,
                      std::size_t& next_sample) {
  while (next_sample < kConvergenceSamples &&
         attempts_done >= SampleThreshold(total_attempts, next_sample)) {
    ConvergenceSample sample;
    sample.attempts = attempts_done;
    sample.objective = objective;
    sample.clustering_global = props.ClusteringGlobal();
    sample.components = props.NumComponents();
    sample.lcc = props.LccSize();
    stats.curve.push_back(sample);
    ++next_sample;
  }
}

/// Pads the curve to its fixed length with the final state — the shape an
/// adaptive-stop run leaves behind, so per-index aggregation across
/// trials stays aligned.
void PadCurve(RewireStats& stats, std::size_t attempts_done,
              double objective, const PropertyTracker& props) {
  ConvergenceSample sample;
  sample.attempts = attempts_done;
  sample.objective = objective;
  sample.clustering_global = props.ClusteringGlobal();
  sample.components = props.NumComponents();
  sample.lcc = props.LccSize();
  while (stats.curve.size() < kConvergenceSamples) {
    stats.curve.push_back(sample);
  }
}

/// Feeds the metrics registry once per rewiring run — never per attempt.
/// The round counters are zero on the sequential path, so only the
/// batched engine reports them; tracker.delta_ops counts the incremental
/// tracker updates a tracked run performed (one per accepted swap).
void RecordRewireMetrics(const RewireStats& stats) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricAdd("rewire.attempts", stats.attempts);
  obs::MetricAdd("rewire.accepted", stats.accepted);
  obs::MetricAdd("rewire.rounds", stats.rounds);
  obs::MetricAdd("rewire.evaluated", stats.evaluated);
  obs::MetricAdd("rewire.conflicts", stats.conflicts);
  obs::MetricAdd("rewire.reevaluated", stats.reevaluated);
  if (!stats.curve.empty()) {
    obs::MetricAdd("tracker.delta_ops", stats.accepted);
  }
}

}  // namespace

RewireStats RewireToClustering(Graph& g, std::size_t num_protected_edges,
                               const std::vector<double>& target_clustering,
                               const RewireOptions& options, Rng& rng) {
  RewireStats stats;
  // Guard the underflow of |E~| - |E'| when callers protect more edges
  // than exist: nothing is rewirable, so the phase is a no-op.
  if (num_protected_edges >= g.NumEdges()) return stats;
  const std::size_t num_candidates = g.NumEdges() - num_protected_edges;
  if (num_candidates < 2) return stats;

  TriangleTracker tracker(g, target_clustering);
  double current = tracker.Objective();
  stats.initial_distance = current;
  stats.final_distance = current;

  const std::size_t total_attempts = TotalAttempts(options, num_candidates);
  stats.attempts = total_attempts;

  // Property tracking observes committed swaps only; with tracking off
  // this engine's control flow and RNG stream are untouched.
  const bool tracking = options.track_properties;
  std::unique_ptr<PropertyTracker> props;
  if (tracking) props = std::make_unique<PropertyTracker>(g);
  std::size_t next_sample = 0;
  std::size_t attempts_done = 0;

  const bool stop_at_start = tracking && options.stop_epsilon > 0.0 &&
                             current <= options.stop_epsilon;
  if (stop_at_start) {
    stats.stopped_early = true;
    stats.attempts = 0;
  }
  for (std::size_t attempt = 0;
       !stop_at_start && attempt < total_attempts; ++attempt) {
    // resync_interval == 0 means "never resync" (a modulo by zero here
    // used to be undefined behavior).
    if (options.resync_interval != 0 &&
        (attempt + 1) % options.resync_interval == 0) {
      tracker.RecomputeObjective();
      current = tracker.Objective();
    }
    SwapProposal p;
    DrawProposal(g, num_protected_edges, num_candidates, rng, p);
    if (p.valid) {
      // Trial: apply on the tracker, accept iff the distance strictly
      // drops.
      tracker.RemoveEdge(p.i, p.j);
      tracker.RemoveEdge(p.a, p.b);
      tracker.AddEdge(p.i, p.b);
      tracker.AddEdge(p.a, p.j);
      const double proposed = tracker.Objective();
      if (proposed < current) {
        g.ReplaceEdge(p.e1, p.i, p.b);
        g.ReplaceEdge(p.e2, p.a, p.j);
        current = proposed;
        ++stats.accepted;
        if (tracking) props->ApplySwap(p.i, p.j, p.a, p.b);
      } else {
        tracker.RemoveEdge(p.i, p.b);
        tracker.RemoveEdge(p.a, p.j);
        tracker.AddEdge(p.i, p.j);
        tracker.AddEdge(p.a, p.b);
      }
    }
    attempts_done = attempt + 1;
    if (tracking) {
      RecordDueSamples(stats, total_attempts, attempts_done, current,
                       *props, next_sample);
      if (options.stop_epsilon > 0.0 && current <= options.stop_epsilon) {
        stats.stopped_early = true;
        stats.attempts = attempts_done;
        break;
      }
    }
  }
  if (tracking) PadCurve(stats, attempts_done, current, *props);
  tracker.RecomputeObjective();
  stats.final_distance = tracker.Objective();
  RecordRewireMetrics(stats);
  return stats;
}

RewireStats RewireToClusteringParallel(
    Graph& g, std::size_t num_protected_edges,
    const std::vector<double>& target_clustering,
    const RewireOptions& options, const ParallelRewireOptions& parallel,
    std::uint64_t seed) {
  RewireStats stats;
  if (num_protected_edges >= g.NumEdges()) return stats;
  const std::size_t num_candidates = g.NumEdges() - num_protected_edges;
  if (num_candidates < 2) return stats;

  TriangleTracker tracker(g, target_clustering);
  stats.initial_distance = tracker.Objective();
  stats.final_distance = stats.initial_distance;

  const std::size_t total_attempts = TotalAttempts(options, num_candidates);
  stats.attempts = total_attempts;
  if (total_attempts == 0) return stats;

  // Property tracking observes the commit phase only (the single-writer
  // step), so it is race-free and cannot perturb the byte-identical
  // determinism across thread counts.
  const bool tracking = options.track_properties;
  std::unique_ptr<PropertyTracker> props;
  if (tracking) props = std::make_unique<PropertyTracker>(g);
  std::size_t next_sample = 0;

  const std::size_t batch_size =
      parallel.batch_size == 0 ? kDefaultRewireBatch : parallel.batch_size;
  const std::size_t threads = ResolveThreadCount(parallel.threads);

  // One pool for the whole run; rounds reuse it. threads == 1 stays fully
  // inline — the scoring loop below never touches the pool.
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  std::vector<SwapProposal> proposals(batch_size);

  // Dirty footprint of the commits of the current round, stamped by round
  // number (stamp 0 = clean; rounds are 1-based below).
  std::vector<std::uint64_t> node_stamp(g.NumNodes(), 0);
  std::vector<std::uint64_t> class_stamp;
  std::vector<EdgeId> committed_edges;
  std::vector<std::uint32_t> commit_classes;

  // Note: the sequential loop's resync_interval drift control has no
  // analogue here. Acceptance never reads the incrementally maintained
  // objective — every score derives fresh from the exact integer T(k)
  // state — and the reported final distance is recomputed from scratch
  // below, so a mid-run RecomputeObjective could not change any output.
  std::size_t attempts_done = 0;
  std::uint64_t round = 0;
  bool stopped = tracking && options.stop_epsilon > 0.0 &&
                 tracker.Objective() <= options.stop_epsilon;
  if (stopped) {
    stats.stopped_early = true;
    stats.attempts = 0;
  }
  while (!stopped && attempts_done < total_attempts) {
    obs::Span round_span("rewire_round", "rewire");
    ++round;
    ++stats.rounds;
    const std::size_t this_batch =
        std::min(batch_size, total_attempts - attempts_done);

    // 1. Draw the round's proposals from a deterministic per-round
    //    stream: a pure function of (seed, round), never of the worker
    //    count or of scheduling.
    Rng round_rng(DeriveRoundSeed(seed, kRewireProposalStream, round));
    for (std::size_t p = 0; p < this_batch; ++p) {
      DrawProposal(g, num_protected_edges, num_candidates, round_rng,
                   proposals[p]);
      if (proposals[p].valid) ++stats.evaluated;
    }

    // 2. Score every well-formed proposal against the frozen round-start
    //    tracker state, in parallel. Each worker writes only its own
    //    proposal slots; the tracker is read-only here.
    const auto score = [&](std::size_t p) {
      SwapProposal& prop = proposals[p];
      if (!prop.valid) return;
      prop.touched.clear();
      prop.delta = tracker.EvaluateSwapDelta(prop.i, prop.j, prop.a,
                                             prop.b, &prop.touched);
    };
    if (pool == nullptr) {
      for (std::size_t p = 0; p < this_batch; ++p) score(p);
    } else {
      std::atomic<std::size_t> next{0};
      for (std::size_t w = 0; w < threads; ++w) {
        pool->Submit([&] {
          for (;;) {
            const std::size_t p =
                next.fetch_add(1, std::memory_order_relaxed);
            if (p >= this_batch) return;
            score(p);
          }
        });
      }
      pool->Wait();
    }

    // 3. Commit in canonical batch order — the single writer, identical
    //    for every thread count.
    committed_edges.clear();
    for (std::size_t p = 0; p < this_batch; ++p) {
      SwapProposal& prop = proposals[p];
      if (!prop.valid) continue;
      // Speculative filter: not improving against round-start state.
      if (!(prop.delta < 0.0)) continue;
      // An earlier commit of this round already rewired one of the
      // proposal's edges: its recorded endpoints are stale, drop it.
      if (std::find(committed_edges.begin(), committed_edges.end(),
                    prop.e1) != committed_edges.end() ||
          std::find(committed_edges.begin(), committed_edges.end(),
                    prop.e2) != committed_edges.end()) {
        ++stats.conflicts;
        continue;
      }
      // The score read the four endpoint adjacencies and the touched
      // degree classes; if an earlier commit wrote any of them the value
      // is stale and must be re-derived against the live state.
      bool dirty = node_stamp[prop.i] == round ||
                   node_stamp[prop.j] == round ||
                   node_stamp[prop.a] == round ||
                   node_stamp[prop.b] == round;
      for (std::size_t t = 0; !dirty && t < prop.touched.size(); ++t) {
        const std::uint32_t k = prop.touched[t];
        dirty = k < class_stamp.size() && class_stamp[k] == round;
      }
      double delta = prop.delta;
      if (dirty) {
        ++stats.reevaluated;
        delta = tracker.EvaluateSwapDelta(prop.i, prop.j, prop.a, prop.b);
        if (!(delta < 0.0)) continue;
      }
      commit_classes.clear();
      tracker.ApplySwap(prop.i, prop.j, prop.a, prop.b, &commit_classes);
      g.ReplaceEdge(prop.e1, prop.i, prop.b);
      g.ReplaceEdge(prop.e2, prop.a, prop.j);
      if (tracking) props->ApplySwap(prop.i, prop.j, prop.a, prop.b);
      ++stats.accepted;
      committed_edges.push_back(prop.e1);
      committed_edges.push_back(prop.e2);
      node_stamp[prop.i] = round;
      node_stamp[prop.j] = round;
      node_stamp[prop.a] = round;
      node_stamp[prop.b] = round;
      for (const std::uint32_t k : commit_classes) {
        if (k >= class_stamp.size()) class_stamp.resize(k + 1, 0);
        class_stamp[k] = round;
      }
    }

    attempts_done += this_batch;
    if (tracking) {
      // The round objective is the incrementally maintained one — the
      // value acceptance already derives from — so sampling reads state,
      // never recomputes or perturbs it.
      RecordDueSamples(stats, total_attempts, attempts_done,
                       tracker.Objective(), *props, next_sample);
      if (options.stop_epsilon > 0.0 &&
          tracker.Objective() <= options.stop_epsilon) {
        stopped = true;
        stats.stopped_early = true;
        stats.attempts = attempts_done;
      }
    }
  }
  if (tracking) PadCurve(stats, attempts_done, tracker.Objective(), *props);
  tracker.RecomputeObjective();
  stats.final_distance = tracker.Objective();
  RecordRewireMetrics(stats);
  return stats;
}

}  // namespace sgr
