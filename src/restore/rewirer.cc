#include "restore/rewirer.h"

#include <array>
#include <cmath>

#include "dk/triangle_tracker.h"

namespace sgr {

RewireStats RewireToClustering(Graph& g, std::size_t num_protected_edges,
                               const std::vector<double>& target_clustering,
                               const RewireOptions& options, Rng& rng) {
  RewireStats stats;
  const std::size_t num_candidates = g.NumEdges() - num_protected_edges;
  if (num_candidates < 2) return stats;

  TriangleTracker tracker(g, target_clustering);
  double current = tracker.Objective();
  stats.initial_distance = current;
  stats.final_distance = current;

  const auto total_attempts = static_cast<std::size_t>(
      std::llround(options.rewiring_coefficient *
                   static_cast<double>(num_candidates)));
  stats.attempts = total_attempts;

  for (std::size_t attempt = 0; attempt < total_attempts; ++attempt) {
    if ((attempt + 1) % options.resync_interval == 0) {
      tracker.RecomputeObjective();
      current = tracker.Objective();
    }
    const EdgeId e1 =
        num_protected_edges + rng.NextIndex(num_candidates);
    const EdgeId e2 =
        num_protected_edges + rng.NextIndex(num_candidates);
    if (e1 == e2) continue;
    const Edge edge1 = g.edge(e1);
    const Edge edge2 = g.edge(e2);

    // Orientations ((i,j),(a,b)) with deg(i) == deg(a); pick uniformly
    // among the valid ones.
    struct Orientation {
      NodeId i, j, a, b;
    };
    std::array<Orientation, 4> all = {
        Orientation{edge1.u, edge1.v, edge2.u, edge2.v},
        Orientation{edge1.u, edge1.v, edge2.v, edge2.u},
        Orientation{edge1.v, edge1.u, edge2.u, edge2.v},
        Orientation{edge1.v, edge1.u, edge2.v, edge2.u}};
    std::array<Orientation, 4> valid;
    std::size_t num_valid = 0;
    for (const Orientation& o : all) {
      if (g.Degree(o.i) == g.Degree(o.a)) valid[num_valid++] = o;
    }
    if (num_valid == 0) continue;
    const Orientation o = valid[rng.NextIndex(num_valid)];

    // Swaps that leave the edge multiset unchanged cannot improve.
    if (o.i == o.a || o.j == o.b) continue;

    // Trial: apply on the tracker, accept iff the distance strictly drops.
    tracker.RemoveEdge(o.i, o.j);
    tracker.RemoveEdge(o.a, o.b);
    tracker.AddEdge(o.i, o.b);
    tracker.AddEdge(o.a, o.j);
    const double proposed = tracker.Objective();
    if (proposed < current) {
      g.ReplaceEdge(e1, o.i, o.b);
      g.ReplaceEdge(e2, o.a, o.j);
      current = proposed;
      ++stats.accepted;
    } else {
      tracker.RemoveEdge(o.i, o.b);
      tracker.RemoveEdge(o.a, o.j);
      tracker.AddEdge(o.i, o.j);
      tracker.AddEdge(o.a, o.b);
    }
  }
  tracker.RecomputeObjective();
  stats.final_distance = tracker.Objective();
  return stats;
}

}  // namespace sgr
