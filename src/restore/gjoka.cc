#include "restore/gjoka.h"

#include "dk/dk_construct.h"
#include "estimation/estimators.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "restore/simplify.h"
#include "restore/target_degree_vector.h"
#include "restore/target_jdm.h"
#include "sampling/subgraph.h"

namespace sgr {

RestorationResult RestoreGjoka(const SamplingList& list,
                               const RestorationOptions& options, Rng& rng) {
  Timer total;
  RestorationResult result;

  obs::Span estimate_span("estimate");
  result.estimates = EstimateLocalProperties(list, options.estimator);
  {
    // Subgraph sizes recorded for diagnostics only; the method itself never
    // looks at the subgraph structure.
    const Subgraph sub = BuildSubgraph(list);
    result.subgraph_queried = sub.NumQueried();
    result.subgraph_nodes = sub.graph.NumNodes();
    result.subgraph_edges = sub.graph.NumEdges();
  }
  estimate_span.End();

  obs::Span extract_span("dk_extract");
  TargetDegreeVectorResult targets =
      BuildTargetDegreeVectorFromEstimates(result.estimates);
  const JointDegreeMatrix m_star =
      BuildTargetJdmFromEstimates(result.estimates, targets.n_star, rng);
  extract_span.End();

  obs::Span assemble_span("assemble");
  if (options.parallel_assembly.enabled) {
    result.graph = Construct2kGraphParallel(
        targets.n_star, m_star, rng.engine()(),
        options.parallel_assembly.threads);
  } else {
    result.graph = Construct2kGraph(targets.n_star, m_star, rng);
  }
  assemble_span.End();

  RewireOptions rewire_options = options.rewire;
  rewire_options.track_properties = options.track_properties;
  rewire_options.stop_epsilon = options.stop_epsilon;
  obs::Span rewire_span("rewire");
  total.LapSeconds();  // open the rewiring lap
  if (options.parallel_rewire.batch_size > 0) {
    result.rewire_stats = RewireToClusteringParallel(
        result.graph, /*num_protected_edges=*/0,
        result.estimates.clustering, rewire_options,
        options.parallel_rewire, rng.engine()());
  } else {
    result.rewire_stats = RewireToClustering(
        result.graph, /*num_protected_edges=*/0,
        result.estimates.clustering, rewire_options, rng);
  }
  result.rewiring_seconds = total.LapSeconds();
  rewire_span.End();

  if (options.simplify_output) {
    SimplifyByRewiring(result.graph, /*num_protected_edges=*/0, rng,
                       options.parallel_rewire.threads);
  }
  result.total_seconds = total.Seconds();
  return result;
}

}  // namespace sgr
