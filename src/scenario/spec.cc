#include "scenario/spec.h"

#include <cmath>
#include <set>

#include "exp/datasets.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace sgr {

namespace {

/// Typed field extraction. Every helper names the key in its error so a
/// malformed scenario.json is diagnosable from the message alone.

double RequireNumber(const Json& value, const std::string& key) {
  if (!value.IsNumber()) {
    throw ScenarioError("'" + key + "' must be a number");
  }
  const double number = value.AsNumber();
  if (!std::isfinite(number)) {
    throw ScenarioError("'" + key + "' must be finite");
  }
  return number;
}

std::uint64_t RequireUint(const Json& value, const std::string& key) {
  const double number = RequireNumber(value, key);
  if (number < 0.0 || number != std::floor(number) || number > 9.0e15) {
    throw ScenarioError("'" + key + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(number);
}

bool RequireBool(const Json& value, const std::string& key) {
  if (!value.IsBool()) {
    throw ScenarioError("'" + key + "' must be a boolean");
  }
  return value.AsBool();
}

std::string RequireString(const Json& value, const std::string& key) {
  if (!value.IsString()) {
    throw ScenarioError("'" + key + "' must be a string");
  }
  return value.AsString();
}

const std::vector<Json>& RequireArray(const Json& value,
                                      const std::string& key) {
  if (!value.IsArray()) {
    throw ScenarioError("'" + key + "' must be an array");
  }
  return value.Items();
}

void ValidateRegistryDataset(const std::string& name) {
  try {
    (void)DatasetByName(name);
  } catch (const std::out_of_range&) {
    throw ScenarioError("unknown dataset '" + name +
                        "' (anybeat|brightkite|epinions|slashdot|gowalla|"
                        "livemocha|youtube, or a generator object)");
  }
}

GeneratorSpec ParseGenerator(const Json& json) {
  GeneratorSpec gen;
  for (const auto& [key, value] : json.ObjectMembers()) {
    if (key == "name") {
      continue;  // consumed by the caller as the dataset label
    } else if (key == "model") {
      gen.model = RequireString(value, "datasets[].model");
    } else if (key == "nodes") {
      gen.nodes = static_cast<std::size_t>(RequireUint(value, "datasets[].nodes"));
    } else if (key == "edges_per_node") {
      gen.edges_per_node =
          static_cast<std::size_t>(RequireUint(value, "datasets[].edges_per_node"));
    } else if (key == "triad_p") {
      gen.triad_p = RequireNumber(value, "datasets[].triad_p");
    } else if (key == "fringe_fraction") {
      gen.fringe_fraction = RequireNumber(value, "datasets[].fringe_fraction");
    } else if (key == "edges") {
      gen.edges = static_cast<std::size_t>(RequireUint(value, "datasets[].edges"));
    } else if (key == "communities") {
      gen.communities =
          static_cast<std::size_t>(RequireUint(value, "datasets[].communities"));
    } else if (key == "bridges") {
      gen.bridges = static_cast<std::size_t>(RequireUint(value, "datasets[].bridges"));
    } else if (key == "seed") {
      gen.seed = RequireUint(value, "datasets[].seed");
    } else {
      throw ScenarioError("unknown generator key '" + key + "'");
    }
  }
  if (gen.model != "powerlaw" && gen.model != "ba" && gen.model != "er" &&
      gen.model != "community" && gen.model != "social") {
    throw ScenarioError("unknown generator model '" + gen.model +
                        "' (powerlaw|ba|er|community|social)");
  }
  if (gen.nodes < 10) {
    throw ScenarioError("'datasets[].nodes' must be >= 10");
  }
  if (gen.triad_p < 0.0 || gen.triad_p > 1.0) {
    throw ScenarioError("'datasets[].triad_p' must be in [0, 1]");
  }
  if (gen.fringe_fraction < 0.0 || gen.fringe_fraction >= 1.0) {
    throw ScenarioError("'datasets[].fringe_fraction' must be in [0, 1)");
  }
  return gen;
}

std::vector<ScenarioDataset> ParseDatasets(const Json& value) {
  std::vector<ScenarioDataset> datasets;
  std::set<std::string> seen;
  for (const Json& entry : RequireArray(value, "datasets")) {
    ScenarioDataset dataset;
    if (entry.IsString()) {
      dataset.name = entry.AsString();
      ValidateRegistryDataset(dataset.name);
    } else if (entry.IsObject()) {
      dataset.name = "generated";
      if (const Json* label = entry.Find("name")) {
        dataset.name = RequireString(*label, "datasets[].name");
      }
      dataset.generator = ParseGenerator(entry);
    } else {
      throw ScenarioError(
          "'datasets' entries must be registry names or generator objects");
    }
    if (!seen.insert(dataset.name).second) {
      throw ScenarioError("duplicate dataset '" + dataset.name + "'");
    }
    datasets.push_back(std::move(dataset));
  }
  if (datasets.empty()) {
    throw ScenarioError("'datasets' must name at least one dataset");
  }
  return datasets;
}

}  // namespace

Graph BuildGeneratorGraph(const GeneratorSpec& gen) {
  // Enforce the generators' hard preconditions (asserts in
  // graph/generators.cc, compiled out under NDEBUG) as proper errors, so
  // a schema-valid but infeasible spec fails cleanly in Release instead
  // of crashing or hanging.
  const auto require = [](bool ok, const std::string& message) {
    if (!ok) throw ScenarioError("generator: " + message);
  };
  if (gen.model == "powerlaw" || gen.model == "ba" ||
      gen.model == "community" || gen.model == "social") {
    require(gen.edges_per_node >= 1, "'edges_per_node' must be >= 1");
  }
  if (gen.model == "powerlaw" || gen.model == "ba") {
    require(gen.nodes > gen.edges_per_node,
            "'nodes' must exceed 'edges_per_node'");
  } else if (gen.model == "er") {
    const std::size_t edges = gen.edges > 0 ? gen.edges : 4 * gen.nodes;
    const double max_edges = 0.5 * static_cast<double>(gen.nodes) *
                             static_cast<double>(gen.nodes - 1);
    require(static_cast<double>(edges) <= max_edges,
            "'edges' exceeds the simple-graph maximum n(n-1)/2");
  } else if (gen.model == "community") {
    require(gen.communities >= 1, "'communities' must be >= 1");
    require(gen.communities <= gen.nodes &&
                gen.nodes / gen.communities > gen.edges_per_node,
            "community size (nodes / communities) must exceed "
            "'edges_per_node'");
  } else if (gen.model == "social") {
    require(gen.fringe_fraction >= 0.0 && gen.fringe_fraction < 1.0,
            "'fringe_fraction' must be in [0, 1)");
    const auto core_nodes = static_cast<std::size_t>(
        static_cast<double>(gen.nodes) * (1.0 - gen.fringe_fraction));
    require(core_nodes > gen.edges_per_node,
            "core size ((1 - fringe_fraction) * nodes) must exceed "
            "'edges_per_node'");
  }

  Rng rng(gen.seed);
  Graph g;
  if (gen.model == "powerlaw") {
    g = GeneratePowerlawCluster(gen.nodes, gen.edges_per_node, gen.triad_p,
                                rng);
  } else if (gen.model == "ba") {
    g = GenerateBarabasiAlbert(gen.nodes, gen.edges_per_node, rng);
  } else if (gen.model == "er") {
    const std::size_t edges = gen.edges > 0 ? gen.edges : 4 * gen.nodes;
    g = GenerateErdosRenyiGnm(gen.nodes, edges, rng);
  } else if (gen.model == "community") {
    const std::size_t bridges =
        gen.bridges > 0 ? gen.bridges : gen.nodes / 50 + 1;
    g = GenerateCommunityGraph(gen.nodes, gen.communities,
                               gen.edges_per_node, gen.triad_p, bridges,
                               rng);
  } else if (gen.model == "social") {
    g = GenerateSocialGraph(gen.nodes, gen.edges_per_node, gen.triad_p,
                            gen.fringe_fraction, rng);
  } else {
    throw ScenarioError("unknown generator model '" + gen.model +
                        "' (powerlaw|ba|er|community|social)");
  }
  return PreprocessDataset(g);
}

MethodKind MethodKindFromToken(const std::string& token) {
  if (token == "bfs") return MethodKind::kBfs;
  if (token == "snowball") return MethodKind::kSnowball;
  if (token == "ff") return MethodKind::kForestFire;
  if (token == "rw") return MethodKind::kRandomWalk;
  if (token == "gjoka") return MethodKind::kGjoka;
  if (token == "proposed") return MethodKind::kProposed;
  throw ScenarioError("unknown method '" + token +
                      "' (bfs|snowball|ff|rw|gjoka|proposed)");
}

std::string MethodToken(MethodKind kind) {
  switch (kind) {
    case MethodKind::kBfs: return "bfs";
    case MethodKind::kSnowball: return "snowball";
    case MethodKind::kForestFire: return "ff";
    case MethodKind::kRandomWalk: return "rw";
    case MethodKind::kGjoka: return "gjoka";
    case MethodKind::kProposed: return "proposed";
  }
  return "unknown";
}

ScenarioSpec ScenarioSpec::FromJson(const Json& json) {
  if (!json.IsObject()) {
    throw ScenarioError("scenario document must be a JSON object");
  }
  ScenarioSpec spec;
  bool saw_datasets = false;
  for (const auto& [key, value] : json.ObjectMembers()) {
    if (key == "name") {
      spec.name = RequireString(value, key);
    } else if (key == "datasets") {
      spec.datasets = ParseDatasets(value);
      saw_datasets = true;
    } else if (key == "fractions") {
      spec.fractions.clear();
      for (const Json& f : RequireArray(value, key)) {
        const double fraction = RequireNumber(f, "fractions[]");
        if (fraction <= 0.0 || fraction > 1.0) {
          throw ScenarioError("'fractions' entries must be in (0, 1]");
        }
        spec.fractions.push_back(fraction);
      }
      if (spec.fractions.empty()) {
        throw ScenarioError("'fractions' must contain at least one value");
      }
    } else if (key == "methods") {
      spec.methods.clear();
      std::set<std::string> seen;
      for (const Json& m : RequireArray(value, key)) {
        const std::string token = RequireString(m, "methods[]");
        if (!seen.insert(token).second) {
          throw ScenarioError("duplicate method '" + token + "'");
        }
        spec.methods.push_back(MethodKindFromToken(token));
      }
      if (spec.methods.empty()) {
        throw ScenarioError("'methods' must name at least one method");
      }
    } else if (key == "trials") {
      spec.trials = static_cast<std::size_t>(RequireUint(value, key));
      if (spec.trials == 0) throw ScenarioError("'trials' must be >= 1");
    } else if (key == "threads") {
      spec.threads = static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "seed_base") {
      spec.seed_base = RequireUint(value, key);
    } else if (key == "rc") {
      spec.rc = RequireNumber(value, key);
      if (spec.rc < 0.0) throw ScenarioError("'rc' must be >= 0");
    } else if (key == "rewire_batch") {
      spec.rewire_batch = static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "rewire_threads") {
      spec.rewire_threads =
          static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "path_sources") {
      spec.path_sources = static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "snowball_k") {
      spec.snowball_k = static_cast<std::size_t>(RequireUint(value, key));
      if (spec.snowball_k == 0) {
        throw ScenarioError("'snowball_k' must be >= 1");
      }
    } else if (key == "forest_fire_pf") {
      spec.forest_fire_pf = RequireNumber(value, key);
      if (spec.forest_fire_pf <= 0.0 || spec.forest_fire_pf >= 1.0) {
        throw ScenarioError("'forest_fire_pf' must be in (0, 1)");
      }
    } else if (key == "simplify_output") {
      spec.simplify_output = RequireBool(value, key);
    } else if (key == "dataset_scale") {
      spec.dataset_scale = RequireNumber(value, key);
      if (spec.dataset_scale < 0.0) {
        throw ScenarioError("'dataset_scale' must be >= 0");
      }
    } else {
      throw ScenarioError("unknown key '" + key + "'");
    }
  }
  if (!saw_datasets) {
    throw ScenarioError("'datasets' is required");
  }
  return spec;
}

Json ScenarioSpec::ToJson() const {
  Json json = Json::Object();
  json.Set("name", Json::String(name));
  Json dataset_array = Json::Array();
  for (const ScenarioDataset& dataset : datasets) {
    if (!dataset.generator) {
      dataset_array.Push(Json::String(dataset.name));
      continue;
    }
    const GeneratorSpec& gen = *dataset.generator;
    Json entry = Json::Object();
    entry.Set("name", Json::String(dataset.name));
    entry.Set("model", Json::String(gen.model));
    entry.Set("nodes", Json::Number(static_cast<double>(gen.nodes)));
    entry.Set("edges_per_node",
              Json::Number(static_cast<double>(gen.edges_per_node)));
    entry.Set("triad_p", Json::Number(gen.triad_p));
    entry.Set("fringe_fraction", Json::Number(gen.fringe_fraction));
    entry.Set("edges", Json::Number(static_cast<double>(gen.edges)));
    entry.Set("communities",
              Json::Number(static_cast<double>(gen.communities)));
    entry.Set("bridges", Json::Number(static_cast<double>(gen.bridges)));
    entry.Set("seed", Json::Number(static_cast<double>(gen.seed)));
    dataset_array.Push(std::move(entry));
  }
  json.Set("datasets", std::move(dataset_array));
  Json fraction_array = Json::Array();
  for (double fraction : fractions) {
    fraction_array.Push(Json::Number(fraction));
  }
  json.Set("fractions", std::move(fraction_array));
  Json method_array = Json::Array();
  for (MethodKind kind : methods) {
    method_array.Push(Json::String(MethodToken(kind)));
  }
  json.Set("methods", std::move(method_array));
  json.Set("trials", Json::Number(static_cast<double>(trials)));
  json.Set("threads", Json::Number(static_cast<double>(threads)));
  json.Set("seed_base", Json::Number(static_cast<double>(seed_base)));
  json.Set("rc", Json::Number(rc));
  json.Set("rewire_batch", Json::Number(static_cast<double>(rewire_batch)));
  json.Set("rewire_threads",
           Json::Number(static_cast<double>(rewire_threads)));
  json.Set("path_sources", Json::Number(static_cast<double>(path_sources)));
  json.Set("snowball_k", Json::Number(static_cast<double>(snowball_k)));
  json.Set("forest_fire_pf", Json::Number(forest_fire_pf));
  json.Set("simplify_output", Json::Bool(simplify_output));
  json.Set("dataset_scale", Json::Number(dataset_scale));
  return json;
}

ExperimentConfig ScenarioSpec::ToExperimentConfig(double fraction) const {
  ExperimentConfig config;
  config.query_fraction = fraction;
  config.methods = methods;
  config.snowball_k = snowball_k;
  config.forest_fire_pf = forest_fire_pf;
  config.restoration.rewire.rewiring_coefficient = rc;
  config.restoration.parallel_rewire.batch_size = rewire_batch;
  config.restoration.parallel_rewire.threads = rewire_threads;
  config.restoration.simplify_output = simplify_output;
  config.property_options.max_path_sources = path_sources;
  // Trial-level parallelism is the engine's scaling axis; per-trial
  // property evaluation stays single-threaded so the report is
  // byte-identical for every thread count (FP summation order fixed).
  config.property_options.threads = 1;
  return config;
}

std::vector<std::string> BuiltinScenarioNames() {
  return {"tables-smoke", "table2",         "table3",
          "table4-time",  "table5-youtube", "fig3-sweep"};
}

bool IsBuiltinScenario(const std::string& name) {
  for (const std::string& builtin : BuiltinScenarioNames()) {
    if (builtin == name) return true;
  }
  return false;
}

std::string BuiltinScenarioDescription(const std::string& name) {
  if (name == "tables-smoke") {
    return "CI-sized smoke matrix: 2 small stand-ins, 2 trials, RC 10 "
           "(seconds; the recorded BENCH_scenarios.json baseline)";
  }
  if (name == "table2") {
    return "Table II protocol: per-property L1 on Slashdot/Gowalla/"
           "Livemocha, 10% queried";
  }
  if (name == "table3") {
    return "Table III protocol: avg +- SD of L1 on the six standard "
           "datasets, 10% queried";
  }
  if (name == "table4-time") {
    return "Table IV protocol: generation times at RC = 500 (read timings "
           "with --threads 1)";
  }
  if (name == "table5-youtube") {
    return "Table V protocol: the YouTube stand-in at 1% queried";
  }
  if (name == "fig3-sweep") {
    return "Figure 3 protocol: query-fraction sweep 2%-10% on Anybeat/"
           "Brightkite/Epinions";
  }
  throw ScenarioError("unknown built-in scenario '" + name + "'");
}

ScenarioSpec BuiltinScenario(const std::string& name) {
  const auto registry = [](std::initializer_list<const char*> names) {
    std::vector<ScenarioDataset> datasets;
    for (const char* dataset : names) datasets.push_back({dataset, {}});
    return datasets;
  };
  const std::vector<ScenarioDataset> standard = registry(
      {"anybeat", "brightkite", "epinions", "slashdot", "gowalla",
       "livemocha"});

  ScenarioSpec spec;
  spec.name = name;
  if (name == "tables-smoke") {
    spec.datasets = registry({"anybeat", "brightkite"});
    spec.trials = 2;
    spec.rc = 10.0;
    spec.path_sources = 40;
    spec.dataset_scale = 0.1;
    spec.seed_base = 0x5A0E;
  } else if (name == "table2") {
    spec.datasets = registry({"slashdot", "gowalla", "livemocha"});
    spec.trials = 3;
    spec.rc = 100.0;
    spec.path_sources = 600;
    spec.seed_base = 0x7AB'2000;
  } else if (name == "table3") {
    spec.datasets = standard;
    spec.trials = 3;
    spec.rc = 100.0;
    spec.path_sources = 600;
    spec.seed_base = 0x7AB'3000;
  } else if (name == "table4-time") {
    spec.datasets = standard;
    spec.trials = 2;
    spec.rc = 500.0;
    spec.path_sources = 64;
    spec.seed_base = 0x7AB'4000;
  } else if (name == "table5-youtube") {
    spec.datasets = registry({"youtube"});
    spec.fractions = {0.01};
    spec.trials = 2;
    spec.rc = 50.0;
    spec.path_sources = 300;
    spec.seed_base = 0x7AB'5000;
  } else if (name == "fig3-sweep") {
    spec.datasets = registry({"anybeat", "brightkite", "epinions"});
    spec.fractions = {0.02, 0.04, 0.06, 0.08, 0.10};
    spec.trials = 3;
    spec.rc = 100.0;
    spec.path_sources = 600;
    spec.seed_base = 0xF16'3000;
  } else {
    throw ScenarioError("unknown built-in scenario '" + name + "'");
  }
  return spec;
}

}  // namespace sgr
