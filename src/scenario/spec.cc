#include "scenario/spec.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "exp/datasets.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace sgr {

namespace {

/// Typed field extraction. Every helper names the key in its error so a
/// malformed scenario.json is diagnosable from the message alone.

double RequireNumber(const Json& value, const std::string& key) {
  if (!value.IsNumber()) {
    throw ScenarioError("'" + key + "' must be a number");
  }
  const double number = value.AsNumber();
  if (!std::isfinite(number)) {
    throw ScenarioError("'" + key + "' must be finite");
  }
  return number;
}

std::uint64_t RequireUint(const Json& value, const std::string& key) {
  const double number = RequireNumber(value, key);
  if (number < 0.0 || number != std::floor(number) || number > 9.0e15) {
    throw ScenarioError("'" + key + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(number);
}

bool RequireBool(const Json& value, const std::string& key) {
  if (!value.IsBool()) {
    throw ScenarioError("'" + key + "' must be a boolean");
  }
  return value.AsBool();
}

std::string RequireString(const Json& value, const std::string& key) {
  if (!value.IsString()) {
    throw ScenarioError("'" + key + "' must be a string");
  }
  return value.AsString();
}

const std::vector<Json>& RequireArray(const Json& value,
                                      const std::string& key) {
  if (!value.IsArray()) {
    throw ScenarioError("'" + key + "' must be an array");
  }
  return value.Items();
}

void ValidateRegistryDataset(const std::string& name) {
  try {
    (void)DatasetByName(name);
  } catch (const std::out_of_range&) {
    throw ScenarioError("unknown dataset '" + name +
                        "' (anybeat|brightkite|epinions|slashdot|gowalla|"
                        "livemocha|youtube, or a generator object)");
  }
}

GeneratorSpec ParseGenerator(const Json& json) {
  GeneratorSpec gen;
  for (const auto& [key, value] : json.ObjectMembers()) {
    if (key == "name") {
      continue;  // consumed by the caller as the dataset label
    } else if (key == "model") {
      gen.model = RequireString(value, "datasets[].model");
    } else if (key == "nodes") {
      gen.nodes = static_cast<std::size_t>(RequireUint(value, "datasets[].nodes"));
    } else if (key == "edges_per_node") {
      gen.edges_per_node =
          static_cast<std::size_t>(RequireUint(value, "datasets[].edges_per_node"));
    } else if (key == "triad_p") {
      gen.triad_p = RequireNumber(value, "datasets[].triad_p");
    } else if (key == "fringe_fraction") {
      gen.fringe_fraction = RequireNumber(value, "datasets[].fringe_fraction");
    } else if (key == "edges") {
      gen.edges = static_cast<std::size_t>(RequireUint(value, "datasets[].edges"));
    } else if (key == "communities") {
      gen.communities =
          static_cast<std::size_t>(RequireUint(value, "datasets[].communities"));
    } else if (key == "bridges") {
      gen.bridges = static_cast<std::size_t>(RequireUint(value, "datasets[].bridges"));
    } else if (key == "seed") {
      gen.seed = RequireUint(value, "datasets[].seed");
    } else {
      throw ScenarioError("unknown generator key '" + key + "'");
    }
  }
  if (gen.model != "powerlaw" && gen.model != "ba" && gen.model != "er" &&
      gen.model != "community" && gen.model != "social") {
    throw ScenarioError("unknown generator model '" + gen.model +
                        "' (powerlaw|ba|er|community|social)");
  }
  if (gen.nodes < 10) {
    throw ScenarioError("'datasets[].nodes' must be >= 10");
  }
  if (gen.triad_p < 0.0 || gen.triad_p > 1.0) {
    throw ScenarioError("'datasets[].triad_p' must be in [0, 1]");
  }
  if (gen.fringe_fraction < 0.0 || gen.fringe_fraction >= 1.0) {
    throw ScenarioError("'datasets[].fringe_fraction' must be in [0, 1)");
  }
  return gen;
}

/// Parses an axis given as either one scalar or an array of scalars
/// (the document forms `"walk": "simple"` and `"walk": ["simple",
/// "non-backtracking"]` are both valid). `parse_one` maps one Json
/// element to the axis value type.
template <typename T, typename ParseOne>
std::vector<T> ParseScalarOrArray(const Json& value, const std::string& key,
                                  ParseOne parse_one) {
  std::vector<T> axis;
  if (value.IsArray()) {
    for (const Json& entry : value.Items()) {
      axis.push_back(parse_one(entry, key + "[]"));
    }
    if (axis.empty()) {
      throw ScenarioError("'" + key + "' must contain at least one value");
    }
  } else {
    axis.push_back(parse_one(value, key));
  }
  return axis;
}

EstimatorSpec ParseEstimator(const Json& value, const std::string& key) {
  if (!value.IsObject()) {
    throw ScenarioError("'" + key + "' must be an object");
  }
  EstimatorSpec estimator;
  for (const auto& [member, member_value] : value.ObjectMembers()) {
    if (member == "joint_mode") {
      estimator.joint_mode = JointModeFromToken(
          RequireString(member_value, key + ".joint_mode"));
    } else if (member == "collision_fraction") {
      estimator.collision_fraction =
          RequireNumber(member_value, key + ".collision_fraction");
    } else {
      throw ScenarioError("unknown estimator key '" + member + "'");
    }
  }
  return estimator;
}

CrawlNoise ParseNoise(const Json& value, const std::string& key) {
  if (!value.IsObject()) {
    throw ScenarioError("'" + key + "' must be an object");
  }
  CrawlNoise noise;
  for (const auto& [member, member_value] : value.ObjectMembers()) {
    if (member == "failure") {
      noise.failure = RequireNumber(member_value, key + ".failure");
    } else if (member == "hidden_edges") {
      noise.hidden_edges =
          RequireNumber(member_value, key + ".hidden_edges");
    } else if (member == "churn") {
      noise.churn = RequireNumber(member_value, key + ".churn");
    } else if (member == "api_budget") {
      noise.api_budget = RequireUint(member_value, key + ".api_budget");
    } else {
      throw ScenarioError("unknown noise key '" + member + "'");
    }
  }
  return noise;
}

std::vector<ScenarioDataset> ParseDatasets(const Json& value) {
  std::vector<ScenarioDataset> datasets;
  std::set<std::string> seen;
  for (const Json& entry : RequireArray(value, "datasets")) {
    ScenarioDataset dataset;
    if (entry.IsString()) {
      dataset.name = entry.AsString();
      ValidateRegistryDataset(dataset.name);
    } else if (entry.IsObject()) {
      dataset.name = "generated";
      if (const Json* label = entry.Find("name")) {
        dataset.name = RequireString(*label, "datasets[].name");
      }
      dataset.generator = ParseGenerator(entry);
    } else {
      throw ScenarioError(
          "'datasets' entries must be registry names or generator objects");
    }
    if (!seen.insert(dataset.name).second) {
      throw ScenarioError("duplicate dataset '" + dataset.name + "'");
    }
    datasets.push_back(std::move(dataset));
  }
  if (datasets.empty()) {
    throw ScenarioError("'datasets' must name at least one dataset");
  }
  return datasets;
}

}  // namespace

Graph BuildGeneratorGraph(const GeneratorSpec& gen) {
  // Enforce the generators' hard preconditions (asserts in
  // graph/generators.cc, compiled out under NDEBUG) as proper errors, so
  // a schema-valid but infeasible spec fails cleanly in Release instead
  // of crashing or hanging.
  const auto require = [](bool ok, const std::string& message) {
    if (!ok) throw ScenarioError("generator: " + message);
  };
  if (gen.model == "powerlaw" || gen.model == "ba" ||
      gen.model == "community" || gen.model == "social") {
    require(gen.edges_per_node >= 1, "'edges_per_node' must be >= 1");
  }
  if (gen.model == "powerlaw" || gen.model == "ba") {
    require(gen.nodes > gen.edges_per_node,
            "'nodes' must exceed 'edges_per_node'");
  } else if (gen.model == "er") {
    const std::size_t edges = gen.edges > 0 ? gen.edges : 4 * gen.nodes;
    const double max_edges = 0.5 * static_cast<double>(gen.nodes) *
                             static_cast<double>(gen.nodes - 1);
    require(static_cast<double>(edges) <= max_edges,
            "'edges' exceeds the simple-graph maximum n(n-1)/2");
  } else if (gen.model == "community") {
    require(gen.communities >= 1, "'communities' must be >= 1");
    require(gen.communities <= gen.nodes &&
                gen.nodes / gen.communities > gen.edges_per_node,
            "community size (nodes / communities) must exceed "
            "'edges_per_node'");
  } else if (gen.model == "social") {
    require(gen.fringe_fraction >= 0.0 && gen.fringe_fraction < 1.0,
            "'fringe_fraction' must be in [0, 1)");
    const auto core_nodes = static_cast<std::size_t>(
        static_cast<double>(gen.nodes) * (1.0 - gen.fringe_fraction));
    require(core_nodes > gen.edges_per_node,
            "core size ((1 - fringe_fraction) * nodes) must exceed "
            "'edges_per_node'");
  }

  Rng rng(gen.seed);
  Graph g;
  if (gen.model == "powerlaw") {
    g = GeneratePowerlawCluster(gen.nodes, gen.edges_per_node, gen.triad_p,
                                rng);
  } else if (gen.model == "ba") {
    g = GenerateBarabasiAlbert(gen.nodes, gen.edges_per_node, rng);
  } else if (gen.model == "er") {
    const std::size_t edges = gen.edges > 0 ? gen.edges : 4 * gen.nodes;
    g = GenerateErdosRenyiGnm(gen.nodes, edges, rng);
  } else if (gen.model == "community") {
    const std::size_t bridges =
        gen.bridges > 0 ? gen.bridges : gen.nodes / 50 + 1;
    g = GenerateCommunityGraph(gen.nodes, gen.communities,
                               gen.edges_per_node, gen.triad_p, bridges,
                               rng);
  } else if (gen.model == "social") {
    g = GenerateSocialGraph(gen.nodes, gen.edges_per_node, gen.triad_p,
                            gen.fringe_fraction, rng);
  } else {
    throw ScenarioError("unknown generator model '" + gen.model +
                        "' (powerlaw|ba|er|community|social)");
  }
  return PreprocessDataset(g);
}

MethodKind MethodKindFromToken(const std::string& token) {
  if (token == "bfs") return MethodKind::kBfs;
  if (token == "snowball") return MethodKind::kSnowball;
  if (token == "ff") return MethodKind::kForestFire;
  if (token == "rw") return MethodKind::kRandomWalk;
  if (token == "gjoka") return MethodKind::kGjoka;
  if (token == "proposed") return MethodKind::kProposed;
  throw ScenarioError("unknown method '" + token +
                      "' (bfs|snowball|ff|rw|gjoka|proposed)");
}

std::string MethodToken(MethodKind kind) {
  switch (kind) {
    case MethodKind::kBfs: return "bfs";
    case MethodKind::kSnowball: return "snowball";
    case MethodKind::kForestFire: return "ff";
    case MethodKind::kRandomWalk: return "rw";
    case MethodKind::kGjoka: return "gjoka";
    case MethodKind::kProposed: return "proposed";
  }
  return "unknown";
}

WalkKind WalkKindFromToken(const std::string& token) {
  if (token == "simple") return WalkKind::kSimple;
  if (token == "non-backtracking") return WalkKind::kNonBacktracking;
  if (token == "metropolis-hastings") return WalkKind::kMetropolisHastings;
  throw ScenarioError("unknown walk '" + token +
                      "' (simple|non-backtracking|metropolis-hastings)");
}

std::string WalkToken(WalkKind kind) {
  switch (kind) {
    case WalkKind::kSimple: return "simple";
    case WalkKind::kNonBacktracking: return "non-backtracking";
    case WalkKind::kMetropolisHastings: return "metropolis-hastings";
  }
  return "unknown";
}

CrawlerKind CrawlerKindFromToken(const std::string& token) {
  if (token == "rw") return CrawlerKind::kRw;
  if (token == "frontier") return CrawlerKind::kFrontier;
  if (token == "mhrw") return CrawlerKind::kMhrw;
  if (token == "bfs") return CrawlerKind::kBfs;
  if (token == "snowball") return CrawlerKind::kSnowball;
  if (token == "ff") return CrawlerKind::kFf;
  throw ScenarioError("unknown crawler '" + token +
                      "' (rw|frontier|mhrw|bfs|snowball|ff)");
}

std::string CrawlerToken(CrawlerKind kind) {
  switch (kind) {
    case CrawlerKind::kRw: return "rw";
    case CrawlerKind::kFrontier: return "frontier";
    case CrawlerKind::kMhrw: return "mhrw";
    case CrawlerKind::kBfs: return "bfs";
    case CrawlerKind::kSnowball: return "snowball";
    case CrawlerKind::kFf: return "ff";
  }
  return "unknown";
}

JointEstimatorMode JointModeFromToken(const std::string& token) {
  if (token == "hybrid") return JointEstimatorMode::kHybrid;
  if (token == "ie") return JointEstimatorMode::kInducedEdgesOnly;
  if (token == "te") return JointEstimatorMode::kTraversedEdgesOnly;
  throw ScenarioError("unknown joint_mode '" + token + "' (hybrid|ie|te)");
}

std::string JointModeToken(JointEstimatorMode mode) {
  switch (mode) {
    case JointEstimatorMode::kHybrid: return "hybrid";
    case JointEstimatorMode::kInducedEdgesOnly: return "ie";
    case JointEstimatorMode::kTraversedEdgesOnly: return "te";
  }
  return "unknown";
}

ScenarioSpec ScenarioSpec::FromJson(const Json& json) {
  if (!json.IsObject()) {
    throw ScenarioError("scenario document must be a JSON object");
  }
  ScenarioSpec spec;
  bool saw_datasets = false;
  for (const auto& [key, value] : json.ObjectMembers()) {
    if (key == "name") {
      spec.name = RequireString(value, key);
    } else if (key == "datasets") {
      spec.datasets = ParseDatasets(value);
      saw_datasets = true;
    } else if (key == "fractions") {
      spec.fractions.clear();
      for (const Json& f : RequireArray(value, key)) {
        spec.fractions.push_back(RequireNumber(f, "fractions[]"));
      }
    } else if (key == "methods") {
      spec.methods.clear();
      for (const Json& m : RequireArray(value, key)) {
        spec.methods.push_back(
            MethodKindFromToken(RequireString(m, "methods[]")));
      }
    } else if (key == "trials") {
      spec.trials = static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "threads") {
      spec.threads = static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "seed_base") {
      spec.seed_base = RequireUint(value, key);
    } else if (key == "walk") {
      spec.walks = ParseScalarOrArray<WalkKind>(
          value, key, [](const Json& v, const std::string& k) {
            return WalkKindFromToken(RequireString(v, k));
          });
    } else if (key == "crawler") {
      spec.crawlers = ParseScalarOrArray<CrawlerKind>(
          value, key, [](const Json& v, const std::string& k) {
            return CrawlerKindFromToken(RequireString(v, k));
          });
    } else if (key == "estimator") {
      spec.estimators = ParseScalarOrArray<EstimatorSpec>(
          value, key, [](const Json& v, const std::string& k) {
            return ParseEstimator(v, k);
          });
    } else if (key == "rc") {
      spec.rcs = ParseScalarOrArray<double>(
          value, key, [](const Json& v, const std::string& k) {
            return RequireNumber(v, k);
          });
    } else if (key == "protect_subgraph") {
      spec.protects = ParseScalarOrArray<bool>(
          value, key, [](const Json& v, const std::string& k) {
            return RequireBool(v, k);
          });
    } else if (key == "frontier_walkers") {
      spec.frontier_walkers = ParseScalarOrArray<std::size_t>(
          value, key, [](const Json& v, const std::string& k) {
            return static_cast<std::size_t>(RequireUint(v, k));
          });
    } else if (key == "rewire_batch") {
      spec.rewire_batches = ParseScalarOrArray<std::size_t>(
          value, key, [](const Json& v, const std::string& k) {
            return static_cast<std::size_t>(RequireUint(v, k));
          });
    } else if (key == "noise") {
      spec.noises = ParseScalarOrArray<CrawlNoise>(
          value, key, [](const Json& v, const std::string& k) {
            return ParseNoise(v, k);
          });
    } else if (key == "rewire_threads") {
      spec.rewire_threads =
          static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "parallel_assembly") {
      spec.parallel_assembly = RequireBool(value, key);
    } else if (key == "assembly_threads") {
      spec.assembly_threads =
          static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "estimator_threads") {
      spec.estimator_threads =
          static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "path_sources") {
      spec.path_sources = static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "snowball_k") {
      spec.snowball_k = static_cast<std::size_t>(RequireUint(value, key));
    } else if (key == "forest_fire_pf") {
      spec.forest_fire_pf = RequireNumber(value, key);
    } else if (key == "simplify_output") {
      spec.simplify_output = RequireBool(value, key);
    } else if (key == "dataset_scale") {
      spec.dataset_scale = RequireNumber(value, key);
    } else if (key == "track_properties") {
      spec.track_properties = RequireBool(value, key);
    } else if (key == "stop_epsilon") {
      spec.stop_epsilon = RequireNumber(value, key);
    } else {
      throw ScenarioError("unknown key '" + key + "'");
    }
  }
  if (!saw_datasets) {
    throw ScenarioError("'datasets' is required");
  }
  spec.Validate();
  return spec;
}

void ScenarioSpec::Validate() const {
  // Every numeric knob is checked for finiteness here even though the
  // typed JSON readers already reject Infinity/NaN — a spec built in
  // C++ (or mutated after parsing) reaches the engine through this
  // method alone.
  const auto require_finite = [](double value, const char* key) {
    if (!std::isfinite(value)) {
      throw ScenarioError(std::string("'") + key + "' must be finite");
    }
  };

  if (datasets.empty()) {
    throw ScenarioError("'datasets' must name at least one dataset");
  }
  {
    std::set<std::string> seen;
    for (const ScenarioDataset& dataset : datasets) {
      if (dataset.name.empty()) {
        throw ScenarioError("'datasets[].name' must be non-empty");
      }
      if (!seen.insert(dataset.name).second) {
        throw ScenarioError("duplicate dataset '" + dataset.name + "'");
      }
      if (dataset.generator) {
        const GeneratorSpec& gen = *dataset.generator;
        require_finite(gen.triad_p, "datasets[].triad_p");
        require_finite(gen.fringe_fraction, "datasets[].fringe_fraction");
        if (gen.nodes < 10) {
          throw ScenarioError("'datasets[].nodes' must be >= 10");
        }
        if (gen.triad_p < 0.0 || gen.triad_p > 1.0) {
          throw ScenarioError("'datasets[].triad_p' must be in [0, 1]");
        }
        if (gen.fringe_fraction < 0.0 || gen.fringe_fraction >= 1.0) {
          throw ScenarioError(
              "'datasets[].fringe_fraction' must be in [0, 1)");
        }
      }
    }
  }

  if (fractions.empty()) {
    throw ScenarioError("'fractions' must contain at least one value");
  }
  for (double fraction : fractions) {
    require_finite(fraction, "fractions");
    if (fraction <= 0.0 || fraction > 1.0) {
      throw ScenarioError("'fractions' entries must be in (0, 1]");
    }
  }

  if (methods.empty()) {
    throw ScenarioError("'methods' must name at least one method");
  }
  {
    std::set<std::string> seen;
    for (MethodKind kind : methods) {
      if (!seen.insert(MethodToken(kind)).second) {
        throw ScenarioError("duplicate method '" + MethodToken(kind) + "'");
      }
    }
  }

  if (trials == 0) throw ScenarioError("'trials' must be >= 1");

  const auto require_axis_unique =
      [](const std::vector<std::string>& tokens, const char* key) {
        std::set<std::string> seen;
        for (const std::string& token : tokens) {
          if (!seen.insert(token).second) {
            throw ScenarioError(std::string("duplicate ") + key + " '" +
                                token + "'");
          }
        }
      };
  if (walks.empty()) {
    throw ScenarioError("'walk' must contain at least one value");
  }
  {
    std::vector<std::string> tokens;
    for (WalkKind walk : walks) tokens.push_back(WalkToken(walk));
    require_axis_unique(tokens, "walk");
  }
  if (crawlers.empty()) {
    throw ScenarioError("'crawler' must contain at least one value");
  }
  {
    std::vector<std::string> tokens;
    for (CrawlerKind crawler : crawlers) {
      tokens.push_back(CrawlerToken(crawler));
    }
    require_axis_unique(tokens, "crawler");
  }

  if (estimators.empty()) {
    throw ScenarioError("'estimator' must contain at least one variant");
  }
  for (std::size_t i = 0; i < estimators.size(); ++i) {
    require_finite(estimators[i].collision_fraction,
                   "estimator.collision_fraction");
    if (estimators[i].collision_fraction <= 0.0 ||
        estimators[i].collision_fraction >= 1.0) {
      throw ScenarioError(
          "'estimator.collision_fraction' must be in (0, 1)");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (estimators[j] == estimators[i]) {
        throw ScenarioError("duplicate estimator variant");
      }
    }
  }

  if (rcs.empty()) {
    throw ScenarioError("'rc' must contain at least one value");
  }
  {
    std::set<double> seen;
    for (double rc : rcs) {
      require_finite(rc, "rc");
      if (rc < 0.0) throw ScenarioError("'rc' must be >= 0");
      if (!seen.insert(rc).second) {
        throw ScenarioError("duplicate rc value");
      }
    }
  }

  if (protects.empty()) {
    throw ScenarioError(
        "'protect_subgraph' must contain at least one value");
  }
  if (protects.size() > 2) {
    throw ScenarioError("duplicate protect_subgraph value");
  }
  if (protects.size() == 2 && protects[0] == protects[1]) {
    throw ScenarioError("duplicate protect_subgraph value");
  }

  // Cross-axis rules. A non-walk crawl cannot feed the re-weighted
  // estimators, and a walk discipline other than "simple" only means
  // something for the single-walker rw crawler.
  const bool has_generative =
      std::count(methods.begin(), methods.end(), MethodKind::kGjoka) > 0 ||
      std::count(methods.begin(), methods.end(), MethodKind::kProposed) > 0;
  for (CrawlerKind crawler : crawlers) {
    const bool non_walk = crawler == CrawlerKind::kBfs ||
                          crawler == CrawlerKind::kSnowball ||
                          crawler == CrawlerKind::kFf;
    if (non_walk && has_generative) {
      throw ScenarioError(
          "crawler '" + CrawlerToken(crawler) +
          "' produces a non-walk sample; the generative methods "
          "(gjoka|proposed) require a walk crawler (rw|frontier|mhrw)");
    }
  }
  for (WalkKind walk : walks) {
    if (walk == WalkKind::kSimple) continue;
    for (CrawlerKind crawler : crawlers) {
      if (crawler != CrawlerKind::kRw) {
        throw ScenarioError(
            "walk '" + WalkToken(walk) +
            "' only applies to the rw crawler (crawler '" +
            CrawlerToken(crawler) + "' fixes its own walk discipline)");
      }
    }
  }

  if (frontier_walkers.empty()) {
    throw ScenarioError(
        "'frontier_walkers' must contain at least one value");
  }
  {
    std::set<std::size_t> seen;
    for (std::size_t walkers : frontier_walkers) {
      if (walkers == 0) {
        throw ScenarioError("'frontier_walkers' must be >= 1");
      }
      if (!seen.insert(walkers).second) {
        throw ScenarioError("duplicate frontier_walkers value");
      }
    }
  }
  if (frontier_walkers.size() > 1 &&
      !(crawlers.size() == 1 && crawlers[0] == CrawlerKind::kFrontier)) {
    throw ScenarioError(
        "a 'frontier_walkers' sweep requires the crawler axis to be "
        "exactly [\"frontier\"] (every other crawler ignores the knob, so "
        "its cells would be duplicated once per walker value)");
  }
  if (rewire_batches.empty()) {
    throw ScenarioError("'rewire_batch' must contain at least one value");
  }
  {
    std::set<std::size_t> seen;
    for (std::size_t batch : rewire_batches) {
      if (!seen.insert(batch).second) {
        throw ScenarioError("duplicate rewire_batch value");
      }
    }
  }
  if (noises.empty()) {
    throw ScenarioError("'noise' must contain at least one variant");
  }
  for (std::size_t i = 0; i < noises.size(); ++i) {
    const CrawlNoise& noise = noises[i];
    const auto require_noise_prob = [&require_finite](double p,
                                                      const char* key) {
      require_finite(p, key);
      if (p < 0.0 || p > 0.9) {
        // The oracle itself accepts [0, 1]; the spec stops at 0.9 because
        // a cell where (almost) every query fails measures nothing.
        throw ScenarioError(std::string("'") + key +
                            "' must be in [0, 0.9]");
      }
    };
    require_noise_prob(noise.failure, "noise.failure");
    require_noise_prob(noise.hidden_edges, "noise.hidden_edges");
    require_noise_prob(noise.churn, "noise.churn");
    for (std::size_t j = 0; j < i; ++j) {
      if (noises[j] == noises[i]) {
        throw ScenarioError("duplicate noise variant");
      }
    }
  }
  if (snowball_k == 0) throw ScenarioError("'snowball_k' must be >= 1");
  require_finite(forest_fire_pf, "forest_fire_pf");
  if (forest_fire_pf <= 0.0 || forest_fire_pf >= 1.0) {
    throw ScenarioError("'forest_fire_pf' must be in (0, 1)");
  }
  require_finite(dataset_scale, "dataset_scale");
  if (dataset_scale < 0.0) {
    throw ScenarioError("'dataset_scale' must be >= 0");
  }
  require_finite(stop_epsilon, "stop_epsilon");
  if (stop_epsilon < 0.0) {
    throw ScenarioError("'stop_epsilon' must be >= 0");
  }
  if (stop_epsilon > 0.0 && !track_properties) {
    throw ScenarioError(
        "'stop_epsilon' requires 'track_properties': true (the adaptive "
        "stop reads the tracked clustering distance)");
  }
}

Json ScenarioSpec::ToJson() const {
  Json json = Json::Object();
  json.Set("name", Json::String(name));
  Json dataset_array = Json::Array();
  for (const ScenarioDataset& dataset : datasets) {
    if (!dataset.generator) {
      dataset_array.Push(Json::String(dataset.name));
      continue;
    }
    const GeneratorSpec& gen = *dataset.generator;
    Json entry = Json::Object();
    entry.Set("name", Json::String(dataset.name));
    entry.Set("model", Json::String(gen.model));
    entry.Set("nodes", Json::Number(static_cast<double>(gen.nodes)));
    entry.Set("edges_per_node",
              Json::Number(static_cast<double>(gen.edges_per_node)));
    entry.Set("triad_p", Json::Number(gen.triad_p));
    entry.Set("fringe_fraction", Json::Number(gen.fringe_fraction));
    entry.Set("edges", Json::Number(static_cast<double>(gen.edges)));
    entry.Set("communities",
              Json::Number(static_cast<double>(gen.communities)));
    entry.Set("bridges", Json::Number(static_cast<double>(gen.bridges)));
    entry.Set("seed", Json::Number(static_cast<double>(gen.seed)));
    dataset_array.Push(std::move(entry));
  }
  json.Set("datasets", std::move(dataset_array));
  Json fraction_array = Json::Array();
  for (double fraction : fractions) {
    fraction_array.Push(Json::Number(fraction));
  }
  json.Set("fractions", std::move(fraction_array));
  Json method_array = Json::Array();
  for (MethodKind kind : methods) {
    method_array.Push(Json::String(MethodToken(kind)));
  }
  json.Set("methods", std::move(method_array));
  json.Set("trials", Json::Number(static_cast<double>(trials)));
  json.Set("threads", Json::Number(static_cast<double>(threads)));
  json.Set("seed_base", Json::Number(static_cast<double>(seed_base)));

  // Axes serialize as a scalar when they hold one value and as an array
  // otherwise, mirroring the two accepted document forms.
  const auto scalar_or_array = [](std::vector<Json> items) {
    if (items.size() == 1) return std::move(items.front());
    Json array = Json::Array();
    for (Json& item : items) array.Push(std::move(item));
    return array;
  };
  {
    std::vector<Json> items;
    for (WalkKind walk : walks) items.push_back(Json::String(WalkToken(walk)));
    json.Set("walk", scalar_or_array(std::move(items)));
  }
  {
    std::vector<Json> items;
    for (CrawlerKind crawler : crawlers) {
      items.push_back(Json::String(CrawlerToken(crawler)));
    }
    json.Set("crawler", scalar_or_array(std::move(items)));
  }
  {
    std::vector<Json> items;
    for (const EstimatorSpec& estimator : estimators) {
      Json entry = Json::Object();
      entry.Set("joint_mode",
                Json::String(JointModeToken(estimator.joint_mode)));
      entry.Set("collision_fraction",
                Json::Number(estimator.collision_fraction));
      items.push_back(std::move(entry));
    }
    json.Set("estimator", scalar_or_array(std::move(items)));
  }
  {
    std::vector<Json> items;
    for (double rc : rcs) items.push_back(Json::Number(rc));
    json.Set("rc", scalar_or_array(std::move(items)));
  }
  {
    std::vector<Json> items;
    for (bool protect : protects) items.push_back(Json::Bool(protect));
    json.Set("protect_subgraph", scalar_or_array(std::move(items)));
  }
  {
    std::vector<Json> items;
    for (std::size_t walkers : frontier_walkers) {
      items.push_back(Json::Number(static_cast<double>(walkers)));
    }
    json.Set("frontier_walkers", scalar_or_array(std::move(items)));
  }
  {
    std::vector<Json> items;
    for (std::size_t batch : rewire_batches) {
      items.push_back(Json::Number(static_cast<double>(batch)));
    }
    json.Set("rewire_batch", scalar_or_array(std::move(items)));
  }
  // The noise axis is emitted only when it departs from the default
  // single cooperative-oracle entry, so pre-existing reports (which embed
  // this document verbatim) stay byte-identical; the omitted form parses
  // back to the same default, preserving the round-trip.
  if (!(noises.size() == 1 && !noises.front().Active())) {
    std::vector<Json> items;
    for (const CrawlNoise& noise : noises) {
      Json entry = Json::Object();
      entry.Set("failure", Json::Number(noise.failure));
      entry.Set("hidden_edges", Json::Number(noise.hidden_edges));
      entry.Set("churn", Json::Number(noise.churn));
      entry.Set("api_budget",
                Json::Number(static_cast<double>(noise.api_budget)));
      items.push_back(std::move(entry));
    }
    json.Set("noise", scalar_or_array(std::move(items)));
  }
  json.Set("rewire_threads",
           Json::Number(static_cast<double>(rewire_threads)));
  json.Set("parallel_assembly", Json::Bool(parallel_assembly));
  json.Set("assembly_threads",
           Json::Number(static_cast<double>(assembly_threads)));
  json.Set("estimator_threads",
           Json::Number(static_cast<double>(estimator_threads)));
  json.Set("path_sources", Json::Number(static_cast<double>(path_sources)));
  json.Set("snowball_k", Json::Number(static_cast<double>(snowball_k)));
  json.Set("forest_fire_pf", Json::Number(forest_fire_pf));
  json.Set("simplify_output", Json::Bool(simplify_output));
  json.Set("dataset_scale", Json::Number(dataset_scale));
  json.Set("track_properties", Json::Bool(track_properties));
  json.Set("stop_epsilon", Json::Number(stop_epsilon));
  return json;
}

ExperimentConfig ScenarioSpec::ToExperimentConfig(
    const CellKnobs& knobs) const {
  ExperimentConfig config;
  config.query_fraction = knobs.fraction;
  config.methods = methods;
  config.snowball_k = snowball_k;
  config.forest_fire_pf = forest_fire_pf;
  config.walk = knobs.walk;
  config.crawler = knobs.crawler;
  config.frontier_walkers = knobs.frontier_walkers;
  config.restoration.rewire.rewiring_coefficient = knobs.rc;
  config.restoration.parallel_rewire.batch_size = knobs.rewire_batch;
  config.restoration.parallel_rewire.threads = rewire_threads;
  config.restoration.parallel_assembly.enabled = parallel_assembly;
  config.restoration.parallel_assembly.threads = assembly_threads;
  config.restoration.estimator.threads = estimator_threads;
  config.restoration.simplify_output = simplify_output;
  config.restoration.track_properties = track_properties;
  config.restoration.stop_epsilon = stop_epsilon;
  config.restoration.protect_subgraph = knobs.protect_subgraph;
  config.noise = knobs.noise;
  config.restoration.estimator.joint_mode = knobs.estimator.joint_mode;
  config.restoration.estimator.collision_threshold_fraction =
      knobs.estimator.collision_fraction;
  // The clustering normalizer is derived from the walk axis inside the
  // runner; setting it here too keeps direct ExperimentConfig consumers
  // (RestoreProposed callers) consistent.
  config.restoration.estimator.walk_type =
      (knobs.crawler == CrawlerKind::kRw &&
       knobs.walk == WalkKind::kNonBacktracking)
          ? WalkType::kNonBacktracking
          : WalkType::kSimple;
  config.property_options.max_path_sources = path_sources;
  // Trial-level parallelism is the engine's scaling axis; per-trial
  // property evaluation stays single-threaded so the report is
  // byte-identical for every thread count (FP summation order fixed).
  config.property_options.threads = 1;
  return config;
}

ExperimentConfig ScenarioSpec::ToExperimentConfig(double fraction) const {
  CellKnobs knobs;
  knobs.fraction = fraction;
  knobs.walk = walks.front();
  knobs.crawler = crawlers.front();
  knobs.estimator = estimators.front();
  knobs.rc = rcs.front();
  knobs.protect_subgraph = protects.front();
  knobs.rewire_batch = rewire_batches.front();
  knobs.frontier_walkers = frontier_walkers.front();
  knobs.noise = noises.front();
  return ToExperimentConfig(knobs);
}

std::vector<CellKnobs> ScenarioSpec::ExpandKnobs() const {
  std::vector<CellKnobs> expanded;
  for (double fraction : fractions) {
    for (WalkKind walk : walks) {
      for (CrawlerKind crawler : crawlers) {
        for (const EstimatorSpec& estimator : estimators) {
          for (double rc : rcs) {
            for (bool protect : protects) {
              for (std::size_t batch : rewire_batches) {
                for (std::size_t walkers : frontier_walkers) {
                  for (const CrawlNoise& noise : noises) {
                    CellKnobs knobs;
                    knobs.fraction = fraction;
                    knobs.walk = walk;
                    knobs.crawler = crawler;
                    knobs.estimator = estimator;
                    knobs.rc = rc;
                    knobs.protect_subgraph = protect;
                    knobs.rewire_batch = batch;
                    knobs.frontier_walkers = walkers;
                    knobs.noise = noise;
                    expanded.push_back(knobs);
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return expanded;
}

std::vector<std::string> BuiltinScenarioNames() {
  return {"tables-smoke",  "table2",        "table3",
          "table4-time",   "table5-youtube", "fig3-sweep",
          "ablation-walk", "ablation-rc",   "ablation-jdm",
          "ablation-rewire", "ablation-batch", "ablation-frontier",
          "ablation-noise"};
}

bool IsBuiltinScenario(const std::string& name) {
  for (const std::string& builtin : BuiltinScenarioNames()) {
    if (builtin == name) return true;
  }
  return false;
}

std::string BuiltinScenarioDescription(const std::string& name) {
  if (name == "tables-smoke") {
    return "CI-sized smoke matrix: 2 small stand-ins, 2 trials, RC 10 "
           "(seconds; the recorded BENCH_scenarios.json baseline)";
  }
  if (name == "table2") {
    return "Table II protocol: per-property L1 on Slashdot/Gowalla/"
           "Livemocha, 10% queried";
  }
  if (name == "table3") {
    return "Table III protocol: avg +- SD of L1 on the six standard "
           "datasets, 10% queried";
  }
  if (name == "table4-time") {
    return "Table IV protocol: generation times at RC = 500 (read timings "
           "with --threads 1)";
  }
  if (name == "table5-youtube") {
    return "Table V protocol: the YouTube stand-in at 1% queried";
  }
  if (name == "fig3-sweep") {
    return "Figure 3 protocol: query-fraction sweep 2%-10% on Anybeat/"
           "Brightkite/Epinions";
  }
  if (name == "ablation-walk") {
    return "Walk ablation: simple vs non-backtracking walk through the "
           "proposed pipeline (Section II extension)";
  }
  if (name == "ablation-rc") {
    return "Rewiring-budget ablation: RC sweep 0-500 on the Brightkite "
           "stand-in (Section IV-E)";
  }
  if (name == "ablation-jdm") {
    return "Joint-degree-estimator ablation: hybrid vs IE-only vs "
           "TE-only (Section III-E)";
  }
  if (name == "ablation-rewire") {
    return "Candidate-set ablation: protected (E~ \\ E') vs all-edges "
           "rewiring inside the proposed pipeline (Section IV-E)";
  }
  if (name == "ablation-batch") {
    return "Batched-engine ablation: sequential attempt loop vs "
           "speculative rounds (rewire_batch sweep) through the parallel "
           "Algorithm 5 assembly";
  }
  if (name == "ablation-frontier") {
    return "Frontier walker-count sweep: coupled-walker budget vs "
           "restoration accuracy (frontier_walkers axis)";
  }
  if (name == "ablation-noise") {
    return "Adversarial-oracle sweep: cooperative oracle vs private "
           "accounts vs hidden edges vs churn vs an API-call budget "
           "(noise axis), all six methods";
  }
  throw ScenarioError("unknown built-in scenario '" + name + "'");
}

ScenarioSpec BuiltinScenario(const std::string& name) {
  const auto registry = [](std::initializer_list<const char*> names) {
    std::vector<ScenarioDataset> datasets;
    for (const char* dataset : names) datasets.push_back({dataset, {}});
    return datasets;
  };
  const std::vector<ScenarioDataset> standard = registry(
      {"anybeat", "brightkite", "epinions", "slashdot", "gowalla",
       "livemocha"});

  ScenarioSpec spec;
  spec.name = name;
  if (name == "tables-smoke") {
    spec.datasets = registry({"anybeat", "brightkite"});
    spec.trials = 2;
    spec.rcs = {10.0};
    spec.path_sources = 40;
    spec.dataset_scale = 0.1;
    spec.seed_base = 0x5A0E;
  } else if (name == "table2") {
    spec.datasets = registry({"slashdot", "gowalla", "livemocha"});
    spec.trials = 3;
    spec.rcs = {100.0};
    spec.path_sources = 600;
    spec.seed_base = 0x7AB'2000;
  } else if (name == "table3") {
    spec.datasets = standard;
    spec.trials = 3;
    spec.rcs = {100.0};
    spec.path_sources = 600;
    spec.seed_base = 0x7AB'3000;
  } else if (name == "table4-time") {
    spec.datasets = standard;
    spec.trials = 2;
    spec.rcs = {500.0};
    spec.path_sources = 64;
    spec.seed_base = 0x7AB'4000;
  } else if (name == "table5-youtube") {
    spec.datasets = registry({"youtube"});
    spec.fractions = {0.01};
    spec.trials = 2;
    spec.rcs = {50.0};
    spec.path_sources = 300;
    spec.seed_base = 0x7AB'5000;
  } else if (name == "fig3-sweep") {
    spec.datasets = registry({"anybeat", "brightkite", "epinions"});
    spec.fractions = {0.02, 0.04, 0.06, 0.08, 0.10};
    spec.trials = 3;
    spec.rcs = {100.0};
    spec.path_sources = 600;
    spec.seed_base = 0xF16'3000;
  } else if (name == "ablation-walk") {
    // SRW vs NBRW through the full proposed pipeline. The sample_steps
    // field of each cell carries the walk-length comparison (NBRW needs
    // fewer steps for the same query budget); the distances carry the
    // restoration-accuracy comparison. Recording-friendly scale — raise
    // dataset_scale toward 1 for the paper-sized protocol.
    spec.datasets = standard;
    spec.methods = {MethodKind::kProposed};
    spec.walks = {WalkKind::kSimple, WalkKind::kNonBacktracking};
    spec.trials = 3;
    spec.rcs = {100.0};
    spec.path_sources = 40;
    spec.dataset_scale = 0.15;
    spec.seed_base = 0xAB4'0000;
  } else if (name == "ablation-rc") {
    // The accuracy/time trade-off of the rewiring budget: final D falls
    // with RC while rewiring time grows linearly (read timings with
    // --threads 1). The per-method "rewire" stats block carries
    // initial/final D and the acceptance counters.
    spec.datasets = registry({"brightkite"});
    spec.methods = {MethodKind::kProposed};
    spec.rcs = {0.0, 10.0, 50.0, 100.0, 250.0, 500.0};
    spec.trials = 2;
    spec.path_sources = 40;
    spec.dataset_scale = 0.1;
    spec.seed_base = 0xAB3'0000;
  } else if (name == "ablation-jdm") {
    // Hybrid vs pure IE vs pure TE joint-degree estimation, end to end:
    // the estimator variant shapes the target JDM and therefore the
    // restored graph's distances.
    spec.datasets = standard;
    spec.methods = {MethodKind::kProposed};
    spec.estimators = {
        {JointEstimatorMode::kHybrid, 0.025},
        {JointEstimatorMode::kInducedEdgesOnly, 0.025},
        {JointEstimatorMode::kTraversedEdgesOnly, 0.025}};
    spec.trials = 3;
    spec.rcs = {50.0};
    spec.path_sources = 40;
    spec.dataset_scale = 0.15;
    spec.seed_base = 0xAB1'0000;
  } else if (name == "ablation-rewire") {
    // Candidate set E~ \ E' (protect_subgraph = true, the paper) vs all
    // of E~ (false, Gjoka et al.'s choice) inside the proposed pipeline.
    spec.datasets = standard;
    spec.methods = {MethodKind::kProposed};
    spec.protects = {true, false};
    spec.trials = 2;
    spec.rcs = {200.0};
    spec.path_sources = 40;
    spec.dataset_scale = 0.15;
    spec.seed_base = 0xAB2'0000;
  } else if (name == "ablation-batch") {
    // Sequential attempt loop (batch 0) vs speculative rounds at two
    // batch sizes, with the parallel Algorithm 5 assembly engine on —
    // the declarative face of bench_parallel_assembly /
    // bench_parallel_rewire. Batch size is an algorithm knob (each value
    // is its own equally valid trajectory); worker counts stay execution
    // knobs overridable from the CLI.
    spec.datasets = registry({"brightkite"});
    spec.methods = {MethodKind::kProposed};
    spec.rewire_batches = {0, 64, 256};
    spec.parallel_assembly = true;
    spec.trials = 2;
    spec.rcs = {100.0};
    spec.path_sources = 40;
    spec.dataset_scale = 0.1;
    spec.seed_base = 0xAB6'0000;
  } else if (name == "ablation-frontier") {
    // Walker-count sweep of Ribeiro & Towsley's frontier crawler through
    // the proposed pipeline: more coupled walkers dilute the per-walker
    // trajectory the clustering estimator's interior term reads.
    spec.datasets = registry({"brightkite"});
    spec.methods = {MethodKind::kProposed};
    spec.crawlers = {CrawlerKind::kFrontier};
    spec.frontier_walkers = {2, 10, 50};
    spec.trials = 2;
    spec.rcs = {50.0};
    spec.path_sources = 40;
    spec.dataset_scale = 0.1;
    spec.seed_base = 0xAB7'0000;
  } else if (name == "ablation-noise") {
    // Robustness sweep of the adversarial oracle: the same protocol under
    // the cooperative oracle, then with each fault family on its own —
    // private/suspended accounts, hidden edges, transient churn, and a
    // hard API-call budget. All six methods run so the cells compare how
    // gracefully each restoration method degrades (the BENCHMARKS.md
    // robustness table).
    spec.datasets = registry({"brightkite"});
    // The API budget is in calls, not nodes: at dataset_scale 0.1 the
    // node budget is ~50, and a walk spends ~65-70 calls reaching it, so
    // a 40-call budget genuinely truncates every crawl.
    spec.noises = {{},
                   {0.2, 0.0, 0.0, 0},
                   {0.0, 0.3, 0.0, 0},
                   {0.0, 0.0, 0.2, 0},
                   {0.0, 0.0, 0.0, 40}};
    spec.trials = 2;
    spec.rcs = {10.0};
    spec.path_sources = 40;
    spec.dataset_scale = 0.1;
    spec.seed_base = 0xAB8'0000;
  } else {
    throw ScenarioError("unknown built-in scenario '" + name + "'");
  }
  return spec;
}

}  // namespace sgr
