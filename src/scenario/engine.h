#ifndef SGR_SCENARIO_ENGINE_H_
#define SGR_SCENARIO_ENGINE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "exp/runner.h"
#include "scenario/report.h"
#include "scenario/spec.h"

namespace sgr {

/// Sentinel for RunScenario's `threads_override`: use the spec's own
/// thread count.
inline constexpr std::size_t kThreadsFromSpec =
    static_cast<std::size_t>(-1);

/// Runs one cell of a scenario matrix — `trials` Monte Carlo repetitions
/// of `config` on `dataset` over up to `threads` workers — and aggregates
/// per-method distance and timing statistics. Trial i is seeded with
/// `seed_base + i` (the convention every bench has always used), so the
/// distance aggregates are identical for every thread count; the timing
/// fields are wall-clock measured inside the trials and inflate under
/// core contention — read them at --threads 1, or trust the ratios.
///
/// This is the single trial-matrix implementation behind both the
/// scenario engine and the benches (bench_common.h delegates here), so a
/// bench's --json output and an `sgr run` report share one schema and one
/// aggregation path. Note the benches keep their historical per-table
/// seed schedules (one fixed seed base for every dataset), while the
/// engine gives each cell a distinct base — so the two agree numerically
/// only where the seed bases happen to line up, by design.
ScenarioCell RunScenarioCell(const std::string& dataset_name,
                             const Graph& dataset,
                             const GraphProperties& properties,
                             const ExperimentConfig& config,
                             std::size_t trials, std::uint64_t seed_base,
                             std::size_t threads);

/// Same, against an existing (possibly compressed) CSR snapshot — the
/// engine's own path: datasets are materialized as CsrGraph directly, so
/// file-ingested paper-scale graphs never exist in Graph form. The Graph
/// overload above delegates here after snapshotting, byte-identically.
ScenarioCell RunScenarioCell(const std::string& dataset_name,
                             const CsrGraph& dataset,
                             const GraphProperties& properties,
                             const ExperimentConfig& config,
                             std::size_t trials, std::uint64_t seed_base,
                             std::size_t threads);

/// Result of running a whole scenario: the spec as executed, the resolved
/// worker thread count, and one cell per (dataset, fraction) pair in
/// spec order.
struct ScenarioRunResult {
  ScenarioSpec spec;
  std::size_t threads = 1;
  /// Resolved rewire-engine worker count the trials ran with (only
  /// meaningful when the rewire_batch axis has a nonzero value).
  /// Volatile: recorded in the report's environment block, never in its
  /// deterministic content.
  std::size_t rewire_threads = 1;
  /// Resolved parallel-assembly worker count (only meaningful when
  /// spec.parallel_assembly). Volatile, like rewire_threads.
  std::size_t assembly_threads = 1;
  /// Resolved estimator-pass worker count. Volatile, like rewire_threads.
  std::size_t estimator_threads = 1;
  /// Where each dataset actually came from (file vs generator), in spec
  /// order. Echoed into the report's environment block — volatile, since
  /// the same spec legitimately runs on real data on one machine and the
  /// synthetic stand-in on another.
  std::vector<DatasetProvenance> datasets;
  std::vector<ScenarioCell> cells;
};

/// Expands `spec` into its {dataset x fraction x walk x crawler x
/// estimator x rc x protect x rewire_batch x frontier_walkers} matrix
/// (ScenarioSpec::ExpandKnobs order) and
/// executes every cell through RunExperiments over a shared immutable
/// CsrGraph snapshot per dataset. Registry datasets load through
/// LoadDataset (honoring $SGR_DATASET_DIR; `spec.dataset_scale` overrides
/// $SGR_DATASET_SCALE when nonzero); generator datasets are built from
/// their GeneratorSpec, so a spec can be fully hermetic. Properties of
/// each original dataset are computed once and shared by all of its
/// knob coordinates. Throws ScenarioError (via ScenarioSpec::Validate)
/// before touching any dataset if the spec is semantically invalid —
/// including specs built programmatically that never saw FromJson.
///
/// Seeding contract: cell c (0-based, datasets-major / knobs-minor in
/// ExpandKnobs order) runs trials with run seeds
///   spec.seed_base + c * spec.trials + i,   i in [0, trials),
/// evaluated in uint64 arithmetic. All three terms deliberately wrap
/// modulo 2^64: the schedule is a pure function of (seed_base, c, i) on
/// every platform, reports are reproducible even for seed_base near
/// UINT64_MAX, and two trials only ever collide if the matrix spans more
/// than 2^64 total trials. Wrap-around is therefore part of the contract,
/// not an overflow bug — locked by a boundary test.
///
/// `threads_override` replaces spec.threads when not kThreadsFromSpec
/// (the CLI's --threads / $SGR_THREADS plumbing); 0 means hardware
/// concurrency either way. `rewire_threads_override`,
/// `assembly_threads_override`, and `estimator_threads_override` do the
/// same for the spec's intra-trial worker counts (the CLI's
/// --rewire-threads / --assembly-threads / --estimator-threads plumbing
/// and their SGR_* environment twins) — like the trial thread count they
/// are execution knobs that never change the report's deterministic
/// content, so overriding them leaves the spec echo untouched.
/// `progress`, when non-null, receives one line per completed cell.
ScenarioRunResult RunScenario(
    const ScenarioSpec& spec,
    std::size_t threads_override = kThreadsFromSpec,
    std::ostream* progress = nullptr,
    std::size_t rewire_threads_override = kThreadsFromSpec,
    std::size_t assembly_threads_override = kThreadsFromSpec,
    std::size_t estimator_threads_override = kThreadsFromSpec);

/// Serializes a scenario run as the standard report document
/// (scenario/report.h): the spec echoed under "config", the environment,
/// and one cell object per matrix cell. StripVolatile of this document is
/// byte-identical across thread counts.
Json ScenarioReportToJson(const ScenarioRunResult& result);

}  // namespace sgr

#endif  // SGR_SCENARIO_ENGINE_H_
