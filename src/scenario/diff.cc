#include "scenario/diff.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sgr {

namespace {

/// Member access that names the offending location, so a malformed or
/// truncated report is diagnosable from the error alone.
const Json& RequireMember(const Json& object, const char* key,
                          const std::string& where) {
  const Json* member = object.Find(key);
  if (member == nullptr) {
    throw std::runtime_error("report " + where + ": missing '" + key + "'");
  }
  return *member;
}

double RequireNumber(const Json& object, const char* key,
                     const std::string& where) {
  const Json& member = RequireMember(object, key, where);
  if (!member.IsNumber()) {
    throw std::runtime_error("report " + where + ": '" + key +
                             "' must be a number");
  }
  return member.AsNumber();
}

std::string RequireString(const Json& object, const char* key,
                          const std::string& where) {
  const Json& member = RequireMember(object, key, where);
  if (!member.IsString()) {
    throw std::runtime_error("report " + where + ": '" + key +
                             "' must be a string");
  }
  return member.AsString();
}

std::string StringOr(const Json& object, const char* key,
                     const std::string& fallback) {
  const Json* member = object.Find(key);
  return member != nullptr && member->IsString() ? member->AsString()
                                                 : fallback;
}

double NumberOr(const Json& object, const char* key, double fallback) {
  const Json* member = object.Find(key);
  return member != nullptr && member->IsNumber() ? member->AsNumber()
                                                 : fallback;
}

bool BoolOr(const Json& object, const char* key, bool fallback) {
  const Json* member = object.Find(key);
  return member != nullptr && member->IsBool() ? member->AsBool()
                                               : fallback;
}

/// Default knob values for cells recorded before their axis existed:
/// the paper-faithful axis defaults, overridden by the report's config
/// echo where the old schema carried the knob only there (RC before the
/// axis schema; rewire_batch / frontier_walkers while they were scalar
/// spec knobs). A config echo that already holds an array (the knob
/// became an axis) keeps the default — such reports echo per cell.
struct KnobDefaults {
  double rc = 500.0;
  double rewire_batch = 0.0;
  double frontier_walkers = 10.0;
};

KnobDefaults DefaultsFromConfig(const Json& report) {
  KnobDefaults defaults;
  const Json* config = report.Find("config");
  if (config != nullptr && config->IsObject()) {
    defaults.rc = NumberOr(*config, "rc", defaults.rc);
    defaults.rewire_batch =
        NumberOr(*config, "rewire_batch", defaults.rewire_batch);
    defaults.frontier_walkers =
        NumberOr(*config, "frontier_walkers", defaults.frontier_walkers);
  }
  return defaults;
}

/// Pairing identity of one cell: every knob axis plus the dataset. The
/// canonical form is a dumped JSON array, so number formatting is the
/// writer's shortest-round-trip form on both sides.
std::string CellKey(const Json& cell, const KnobDefaults& defaults) {
  Json key = Json::Array();
  key.Push(Json::String(StringOr(cell, "dataset", "?")));
  key.Push(Json::Number(NumberOr(cell, "query_fraction", 0.0)));
  key.Push(Json::String(StringOr(cell, "walk", "simple")));
  key.Push(Json::String(StringOr(cell, "crawler", "rw")));
  const Json* estimator = cell.Find("estimator");
  key.Push(Json::String(
      estimator != nullptr && estimator->IsObject()
          ? StringOr(*estimator, "joint_mode", "hybrid")
          : "hybrid"));
  key.Push(Json::Number(
      estimator != nullptr && estimator->IsObject()
          ? NumberOr(*estimator, "collision_fraction", 0.025)
          : 0.025));
  key.Push(Json::Number(NumberOr(cell, "rc", defaults.rc)));
  key.Push(Json::Bool(BoolOr(cell, "protect_subgraph", true)));
  key.Push(Json::Number(
      NumberOr(cell, "rewire_batch", defaults.rewire_batch)));
  key.Push(Json::Number(
      NumberOr(cell, "frontier_walkers", defaults.frontier_walkers)));
  // Noise-off cells omit the block entirely (and pre-noise reports never
  // had it), so all four coordinates default to zero — off.
  const Json* noise = cell.Find("noise");
  const bool has_noise = noise != nullptr && noise->IsObject();
  key.Push(Json::Number(has_noise ? NumberOr(*noise, "failure", 0.0) : 0.0));
  key.Push(Json::Number(
      has_noise ? NumberOr(*noise, "hidden_edges", 0.0) : 0.0));
  key.Push(Json::Number(has_noise ? NumberOr(*noise, "churn", 0.0) : 0.0));
  key.Push(Json::Number(
      has_noise ? NumberOr(*noise, "api_budget", 0.0) : 0.0));
  return key.Dump(0);
}

/// Human-readable cell label for findings: dataset @ fraction plus the
/// knobs that differ from the defaults.
std::string CellLabel(const Json& cell, const KnobDefaults& defaults) {
  std::ostringstream label;
  label << StringOr(cell, "dataset", "?") << " @ "
        << 100.0 * NumberOr(cell, "query_fraction", 0.0) << "%";
  const std::string walk = StringOr(cell, "walk", "simple");
  if (walk != "simple") label << " walk=" << walk;
  const std::string crawler = StringOr(cell, "crawler", "rw");
  if (crawler != "rw") label << " crawler=" << crawler;
  if (const Json* estimator = cell.Find("estimator")) {
    const std::string joint = StringOr(*estimator, "joint_mode", "hybrid");
    if (joint != "hybrid") label << " joint=" << joint;
  }
  if (const Json* rc = cell.Find("rc")) {
    if (rc->IsNumber() && rc->AsNumber() != defaults.rc) {
      label << " rc=" << rc->AsNumber();
    }
  }
  if (!BoolOr(cell, "protect_subgraph", true)) label << " unprotected";
  const double batch =
      NumberOr(cell, "rewire_batch", defaults.rewire_batch);
  if (batch != 0.0) label << " batch=" << batch;
  const double walkers =
      NumberOr(cell, "frontier_walkers", defaults.frontier_walkers);
  if (walkers != 10.0) label << " walkers=" << walkers;
  if (const Json* noise = cell.Find("noise")) {
    if (noise->IsObject()) {
      const double failure = NumberOr(*noise, "failure", 0.0);
      const double hidden = NumberOr(*noise, "hidden_edges", 0.0);
      const double churn = NumberOr(*noise, "churn", 0.0);
      const double api_budget = NumberOr(*noise, "api_budget", 0.0);
      if (failure != 0.0) label << " fail=" << failure;
      if (hidden != 0.0) label << " hidden=" << hidden;
      if (churn != 0.0) label << " churn=" << churn;
      if (api_budget != 0.0) label << " api_budget=" << api_budget;
    }
  }
  return label.str();
}

std::map<std::string, const Json*> IndexCells(const Json& report,
                                              const KnobDefaults& defaults) {
  std::map<std::string, const Json*> index;
  for (const Json& cell : report.Find("cells")->Items()) {
    std::string key = CellKey(cell, defaults);
    // Distinct cells never share a key (axes are duplicate-free), but a
    // hand-edited report might; disambiguate rather than drop data.
    while (index.count(key) > 0) key += "#";
    index.emplace(std::move(key), &cell);
  }
  return index;
}

struct Comparator {
  const DiffOptions& options;
  DiffResult& result;

  void Finding(bool regression, std::string message) {
    result.findings.push_back({regression, std::move(message)});
  }

  /// Deterministic values must agree to within l1_tolerance (optionally
  /// scaled for count-like fields); drift in either direction means the
  /// pipeline changed and the baseline no longer describes it.
  void CompareDeterministic(const std::string& what, double old_value,
                            double new_value, double scale = 1.0) {
    // NaN needs explicit handling: every comparison below is false for a
    // NaN drift, which would wave a NaN-corrupted report through the
    // gate. Two NaNs agree (the report writer emits NaN literals for
    // legitimately non-finite distances); a NaN appearing on one side
    // only is a regression.
    if (std::isnan(old_value) || std::isnan(new_value)) {
      if (std::isnan(old_value) != std::isnan(new_value)) {
        std::ostringstream message;
        message << what << ": " << old_value << " -> " << new_value
                << " (NaN on one side only)";
        Finding(true, message.str());
      }
      return;
    }
    const double drift = std::abs(new_value - old_value);
    result.max_l1_drift = std::max(result.max_l1_drift, drift / scale);
    if (drift > options.l1_tolerance * scale) {
      std::ostringstream message;
      message << what << ": " << old_value << " -> " << new_value
              << " (drift " << drift << ", tolerance "
              << options.l1_tolerance * scale << ")";
      Finding(true, message.str());
    }
  }

  /// Timing fields are compared as ratios. A new value that is itself
  /// sub-millisecond cannot be a slowdown worth flagging (scheduler
  /// noise at CI scale), but a sub-millisecond *old* value must not
  /// blind the gate — a 1 ms baseline blowing up to 10 s is exactly what
  /// this tool exists to catch — so the ratio denominator is clamped to
  /// the noise floor instead of skipping the comparison.
  void CompareTiming(const std::string& what, double old_value,
                     double new_value) {
    if (!options.compare_timings) return;
    constexpr double kMinMeaningfulSeconds = 1e-3;
    if (!std::isfinite(old_value) || !std::isfinite(new_value) ||
        new_value < kMinMeaningfulSeconds) {
      return;
    }
    const double ratio =
        new_value / std::max(old_value, kMinMeaningfulSeconds);
    result.max_time_ratio = std::max(result.max_time_ratio, ratio);
    if (ratio > 1.0 + options.time_tolerance) {
      std::ostringstream message;
      message << what << ": " << old_value << "s -> " << new_value
              << "s (" << ratio << "x, tolerance "
              << 1.0 + options.time_tolerance << "x)";
      Finding(true, message.str());
    } else if (ratio < 1.0 / (1.0 + options.time_tolerance)) {
      std::ostringstream message;
      message << what << ": " << old_value << "s -> " << new_value
              << "s (" << ratio << "x faster)";
      Finding(false, message.str());
    }
  }

  void CompareMethods(const std::string& label, const Json& old_cell,
                      const Json& new_cell) {
    std::map<std::string, const Json*> new_methods;
    for (const Json& method : new_cell.Find("methods")->Items()) {
      new_methods[method.Find("method")->AsString()] = &method;
    }
    for (const Json& old_method : old_cell.Find("methods")->Items()) {
      const std::string name = old_method.Find("method")->AsString();
      const auto it = new_methods.find(name);
      if (it == new_methods.end()) {
        Finding(true, label + " / " + name +
                          ": method missing from the new report");
        continue;
      }
      const Json& new_method = *it->second;
      ++result.methods_compared;
      const std::string where = label + " / " + name;

      const Json& old_distances = *old_method.Find("distances");
      const Json& new_distances = *new_method.Find("distances");
      CompareDeterministic(where + " avg L1",
                           old_distances.Find("average")->AsNumber(),
                           new_distances.Find("average")->AsNumber());
      const Json* new_props = new_distances.Find("per_property");
      for (const auto& [property, old_value] :
           old_distances.Find("per_property")->ObjectMembers()) {
        const Json* new_value =
            new_props == nullptr ? nullptr : new_props->Find(property);
        if (new_value == nullptr || !new_value->IsNumber()) {
          Finding(true, where + ": property '" + property +
                            "' missing from the new report");
          continue;
        }
        CompareDeterministic(where + " " + property, old_value.AsNumber(),
                             new_value->AsNumber());
      }

      // sample_steps is deterministic but count-scaled; compare relative
      // to the old magnitude. Pre-axis reports lack the field.
      const Json* old_steps = old_method.Find("sample_steps");
      const Json* new_steps = new_method.Find("sample_steps");
      if (old_steps != nullptr && new_steps != nullptr) {
        CompareDeterministic(
            where + " sample_steps", old_steps->AsNumber(),
            new_steps->AsNumber(),
            std::max(1.0, std::abs(old_steps->AsNumber())));
      }

      // oracle_queries follows the sample_steps convention (deterministic,
      // count-scaled); pre-observability reports lack the field.
      const Json* old_queries = old_method.Find("oracle_queries");
      const Json* new_queries = new_method.Find("oracle_queries");
      if (old_queries != nullptr && new_queries != nullptr) {
        CompareDeterministic(
            where + " oracle_queries", old_queries->AsNumber(),
            new_queries->AsNumber(),
            std::max(1.0, std::abs(old_queries->AsNumber())));
      }

      CompareConvergence(where, old_method.Find("convergence"),
                         new_method.Find("convergence"));

      const Json* old_timings = old_method.Find("timings");
      const Json* new_timings = new_method.Find("timings");
      if (old_timings != nullptr && new_timings != nullptr) {
        CompareTiming(where + " restore_seconds",
                      NumberOr(*old_timings, "restore_seconds", 0.0),
                      NumberOr(*new_timings, "restore_seconds", 0.0));
        CompareTiming(where + " rewiring_seconds",
                      NumberOr(*old_timings, "rewiring_seconds", 0.0),
                      NumberOr(*new_timings, "rewiring_seconds", 0.0));
      }
    }
  }

  /// The property tracker's convergence curve is deterministic content
  /// like the rewire counters. A curve the old report recorded must
  /// still be there and agree point by point; a curve appearing only in
  /// the new report is a note (the baseline predates the tracker knob),
  /// not a regression.
  void CompareConvergence(const std::string& where, const Json* old_block,
                          const Json* new_block) {
    const bool old_has = old_block != nullptr && old_block->IsObject();
    const bool new_has = new_block != nullptr && new_block->IsObject();
    if (!old_has && !new_has) return;
    if (old_has && !new_has) {
      Finding(true, where +
                        ": convergence curve missing from the new report");
      return;
    }
    if (!old_has) {
      Finding(false, where +
                         ": convergence curve is new (not in the old "
                         "report)");
      return;
    }
    CompareDeterministic(where + " convergence stopped_early",
                         NumberOr(*old_block, "stopped_early", 0.0),
                         NumberOr(*new_block, "stopped_early", 0.0));
    const Json* old_samples = old_block->Find("samples");
    const Json* new_samples = new_block->Find("samples");
    if (old_samples == nullptr || !old_samples->IsArray() ||
        new_samples == nullptr || !new_samples->IsArray()) {
      return;
    }
    if (old_samples->Items().size() != new_samples->Items().size()) {
      std::ostringstream message;
      message << where << ": convergence curve length changed ("
              << old_samples->Items().size() << " -> "
              << new_samples->Items().size() << ")";
      Finding(true, message.str());
      return;
    }
    for (std::size_t i = 0; i < old_samples->Items().size(); ++i) {
      const Json& old_point = old_samples->Items()[i];
      const Json& new_point = new_samples->Items()[i];
      const std::string point_where =
          where + " convergence[" + std::to_string(i) + "]";
      // Count-like fields compare relative to the old magnitude (the
      // sample_steps convention); the distance fields compare absolutely.
      for (const char* field : {"attempts", "components", "lcc"}) {
        const double old_value = NumberOr(old_point, field, 0.0);
        CompareDeterministic(point_where + " " + field, old_value,
                             NumberOr(new_point, field, 0.0),
                             std::max(1.0, std::abs(old_value)));
      }
      for (const char* field : {"objective", "clustering_global"}) {
        CompareDeterministic(point_where + " " + field,
                             NumberOr(old_point, field, 0.0),
                             NumberOr(new_point, field, 0.0));
      }
    }
  }
};

}  // namespace

void ValidateReportSchema(const Json& document) {
  if (!document.IsObject()) {
    throw std::runtime_error("report: document must be a JSON object");
  }
  const std::string schema = RequireString(document, "schema", "top level");
  if (schema != "sgr-report/1") {
    throw std::runtime_error("report: unsupported schema '" + schema +
                             "' (expected sgr-report/1)");
  }
  const Json& cells = RequireMember(document, "cells", "top level");
  if (!cells.IsArray()) {
    throw std::runtime_error("report: 'cells' must be an array");
  }
  std::size_t cell_index = 0;
  for (const Json& cell : cells.Items()) {
    const std::string where = "cells[" + std::to_string(cell_index) + "]";
    if (!cell.IsObject()) {
      throw std::runtime_error("report " + where + ": must be an object");
    }
    (void)RequireString(cell, "dataset", where);
    (void)RequireNumber(cell, "query_fraction", where);
    const Json& methods = RequireMember(cell, "methods", where);
    if (!methods.IsArray()) {
      throw std::runtime_error("report " + where +
                               ": 'methods' must be an array");
    }
    std::size_t method_index = 0;
    for (const Json& method : methods.Items()) {
      const std::string method_where =
          where + ".methods[" + std::to_string(method_index) + "]";
      if (!method.IsObject()) {
        throw std::runtime_error("report " + method_where +
                                 ": must be an object");
      }
      (void)RequireString(method, "method", method_where);
      const Json& distances =
          RequireMember(method, "distances", method_where);
      if (!distances.IsObject()) {
        throw std::runtime_error("report " + method_where +
                                 ": 'distances' must be an object");
      }
      (void)RequireNumber(distances, "average", method_where);
      const Json& per_property =
          RequireMember(distances, "per_property", method_where);
      if (!per_property.IsObject()) {
        throw std::runtime_error("report " + method_where +
                                 ": 'per_property' must be an object");
      }
      for (const auto& [property, value] : per_property.ObjectMembers()) {
        if (!value.IsNumber()) {
          throw std::runtime_error("report " + method_where +
                                   ": property '" + property +
                                   "' must be a number");
        }
      }
      ++method_index;
    }
    ++cell_index;
  }
}

DiffResult DiffReports(const Json& old_report, const Json& new_report,
                       const DiffOptions& options) {
  ValidateReportSchema(old_report);
  ValidateReportSchema(new_report);

  DiffResult result;
  result.timings_compared = options.compare_timings;
  Comparator compare{options, result};

  const KnobDefaults old_defaults = DefaultsFromConfig(old_report);
  const KnobDefaults new_defaults = DefaultsFromConfig(new_report);
  const auto old_cells = IndexCells(old_report, old_defaults);
  const auto new_cells = IndexCells(new_report, new_defaults);

  for (const auto& [key, old_cell] : old_cells) {
    const auto it = new_cells.find(key);
    const std::string label = CellLabel(*old_cell, old_defaults);
    if (it == new_cells.end()) {
      compare.Finding(true,
                      label + ": cell missing from the new report");
      continue;
    }
    const Json& new_cell = *it->second;
    ++result.cells_compared;

    // Protocol fields: a changed trial count or seed base makes the
    // numbers legitimately different — surface it so a drift finding
    // below is attributable.
    const double old_trials = NumberOr(*old_cell, "trials", 0.0);
    const double new_trials = NumberOr(new_cell, "trials", 0.0);
    if (old_trials != new_trials) {
      std::ostringstream message;
      message << label << ": trials changed (" << old_trials << " -> "
              << new_trials << ")";
      compare.Finding(false, message.str());
    }
    const double old_seed = NumberOr(*old_cell, "seed_base", 0.0);
    const double new_seed = NumberOr(new_cell, "seed_base", 0.0);
    if (old_seed != new_seed) {
      std::ostringstream message;
      message << label << ": seed_base changed (" << old_seed << " -> "
              << new_seed << ")";
      compare.Finding(false, message.str());
    }

    compare.CompareMethods(label, *old_cell, new_cell);

    const Json* old_timings = old_cell->Find("timings");
    const Json* new_timings = new_cell.Find("timings");
    if (old_timings != nullptr && new_timings != nullptr) {
      compare.CompareTiming(label + " wall_seconds",
                            NumberOr(*old_timings, "wall_seconds", 0.0),
                            NumberOr(*new_timings, "wall_seconds", 0.0));
    }
  }
  for (const auto& [key, new_cell] : new_cells) {
    if (old_cells.count(key) == 0) {
      compare.Finding(false, CellLabel(*new_cell, new_defaults) +
                                 ": new cell (not in the old report)");
    }
  }
  return result;
}

void PrintDiffMarkdown(const DiffResult& result,
                       const std::string& old_label,
                       const std::string& new_label, std::ostream& out) {
  out << "## `sgr diff`: `" << old_label << "` → `" << new_label
      << "`\n\n"
      << "| | |\n"
      << "| --- | --- |\n"
      << "| Result | "
      << (result.HasRegression() ? "**REGRESSION**" : "OK") << " |\n"
      << "| Cells compared | " << result.cells_compared << " |\n"
      << "| Method aggregates | " << result.methods_compared << " |\n"
      << "| Max deterministic drift | " << result.max_l1_drift << " |\n"
      << "| Max timing ratio | ";
  if (result.timings_compared) {
    out << result.max_time_ratio << "x";
  } else {
    out << "n/a (timings not compared)";
  }
  out << " |\n";
  out << "\n### Regressions\n\n";
  bool any = false;
  for (const DiffFinding& finding : result.findings) {
    if (!finding.regression) continue;
    out << "- " << finding.message << "\n";
    any = true;
  }
  if (!any) out << "None.\n";
  out << "\n### Notes\n\n";
  any = false;
  for (const DiffFinding& finding : result.findings) {
    if (finding.regression) continue;
    out << "- " << finding.message << "\n";
    any = true;
  }
  if (!any) out << "None.\n";
}

void PrintDiff(const DiffResult& result, std::ostream& out) {
  for (const DiffFinding& finding : result.findings) {
    if (finding.regression) out << "REGRESSION  " << finding.message << "\n";
  }
  for (const DiffFinding& finding : result.findings) {
    if (!finding.regression) out << "note        " << finding.message << "\n";
  }
  out << "compared " << result.cells_compared << " cell(s), "
      << result.methods_compared << " method aggregate(s); max "
      << "deterministic drift " << result.max_l1_drift
      << ", max timing ratio " << result.max_time_ratio << "x\n"
      << (result.HasRegression() ? "RESULT: REGRESSION" : "RESULT: OK")
      << "\n";
}

}  // namespace sgr
