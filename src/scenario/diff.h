#ifndef SGR_SCENARIO_DIFF_H_
#define SGR_SCENARIO_DIFF_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.h"

namespace sgr {

/// Thresholds of the report comparison. The deterministic content of an
/// sgr-report/1 file is a pure function of (spec, seed), so the L1
/// tolerance defaults to a hair above FP noise — any real change to the
/// pipeline moves the distances by orders of magnitude more. Timings are
/// wall-clock and machine-dependent; their tolerance is relative and
/// should stay generous (CI compares runs from different hardware).
struct DiffOptions {
  /// Allowed drift of deterministic values (per-method average L1, the
  /// per-property distances, sample_steps — the latter relative to the
  /// old value). Exceeding it in either direction is a regression: same
  /// spec + seed must reproduce the same numbers, and an intentional
  /// change means re-recording the baseline.
  double l1_tolerance = 1e-9;

  /// Allowed relative slowdown of timing fields: new > old * (1 +
  /// time_tolerance) is a regression. Speedups are reported as info.
  double time_tolerance = 0.5;

  /// When false, timing fields are ignored entirely (the StripVolatile
  /// view of the comparison).
  bool compare_timings = true;
};

/// One comparison outcome. `regression` findings drive the nonzero exit
/// of `sgr diff`; the rest are informational.
struct DiffFinding {
  bool regression = false;
  std::string message;
};

/// Result of comparing two reports.
struct DiffResult {
  std::vector<DiffFinding> findings;
  std::size_t cells_compared = 0;
  std::size_t methods_compared = 0;
  double max_l1_drift = 0.0;   ///< worst deterministic drift seen
  double max_time_ratio = 0.0; ///< worst new/old timing ratio seen
  /// Whether timing fields participated (DiffOptions::compare_timings):
  /// when false, max_time_ratio is meaningless and the renderers say so.
  bool timings_compared = true;

  bool HasRegression() const {
    for (const DiffFinding& finding : findings) {
      if (finding.regression) return true;
    }
    return false;
  }
};

/// Validates that `document` is a structurally sound sgr-report/1 file:
/// top-level object with schema == "sgr-report/1" and a "cells" array
/// whose entries carry a dataset, a query fraction, and a methods array
/// of {method, distances{average, per_property}} objects. Throws
/// std::runtime_error naming the first offending element. (The knob keys
/// introduced with the axis schema — walk, crawler, estimator, rc,
/// protect_subgraph — are optional and default to the paper-faithful
/// values, so reports recorded before the axes existed still validate
/// and pair correctly.)
void ValidateReportSchema(const Json& document);

/// Compares two sgr-report/1 documents. Cells are paired by
/// (dataset, query_fraction, walk, crawler, estimator, rc,
/// protect_subgraph, rewire_batch, frontier_walkers, noise); methods
/// inside a paired cell by name. The noise coordinate defaults to
/// all-zero when a cell has no "noise" block, so pre-axis baselines pair
/// with new noise-off cells. Produces a
/// regression finding for every deterministic drift beyond
/// `options.l1_tolerance`, every timing slowdown beyond
/// `options.time_tolerance`, and every cell or method present in `old`
/// but missing from `fresh` (coverage loss); new-only cells and
/// speedups are informational. Validates both schemas first.
DiffResult DiffReports(const Json& old_report, const Json& new_report,
                       const DiffOptions& options = {});

/// Renders the findings (one line each, regressions first) plus a
/// summary line to `out`.
void PrintDiff(const DiffResult& result, std::ostream& out);

/// Renders the diff as a GitHub-flavored-markdown fragment suitable for
/// pasting straight into BENCHMARKS.md: a summary table (result, cell and
/// method-aggregate counts, worst drift and timing ratio) followed by a
/// "Regressions" and a "Notes" section listing the findings verbatim.
/// `old_label` / `new_label` name the two reports in the heading (the CLI
/// passes the file paths). The output is a pure function of the inputs —
/// locked by golden tests.
void PrintDiffMarkdown(const DiffResult& result,
                       const std::string& old_label,
                       const std::string& new_label, std::ostream& out);

}  // namespace sgr

#endif  // SGR_SCENARIO_DIFF_H_
