#include "scenario/engine.h"

#include <ostream>

#include "exp/datasets.h"
#include "exp/parallel.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace sgr {

namespace {

/// Materializes a scenario dataset as an immutable CSR snapshot — the
/// form every trial consumes. Registry datasets route through
/// LoadDatasetCsr: file-backed ones use the out-of-core ingester and
/// never build an intermediate Graph (the paper-scale path), generator
/// ones produce the identical snapshot the old Graph path did.
CsrGraph Materialize(const ScenarioDataset& dataset, double dataset_scale,
                     DatasetProvenance* provenance) {
  if (dataset.generator) {
    provenance->name = dataset.name;
    provenance->source = "generator";
    provenance->scale = 1.0;  // generator specs carry explicit sizes
    return CsrGraph(BuildGeneratorGraph(*dataset.generator));
  }
  return LoadDatasetCsr(DatasetByName(dataset.name), dataset_scale,
                        provenance);
}

}  // namespace

ScenarioCell RunScenarioCell(const std::string& dataset_name,
                             const Graph& dataset,
                             const GraphProperties& properties,
                             const ExperimentConfig& config,
                             std::size_t trials, std::uint64_t seed_base,
                             std::size_t threads) {
  // Snapshot once and delegate: byte-identical to the historical inline
  // body, which also snapshotted per RunExperiments call.
  const CsrGraph snapshot(dataset);
  return RunScenarioCell(dataset_name, snapshot, properties, config, trials,
                         seed_base, threads);
}

ScenarioCell RunScenarioCell(const std::string& dataset_name,
                             const CsrGraph& dataset,
                             const GraphProperties& properties,
                             const ExperimentConfig& config,
                             std::size_t trials, std::uint64_t seed_base,
                             std::size_t threads) {
  ScenarioCell cell;
  cell.dataset = dataset_name;
  cell.nodes = dataset.NumNodes();
  cell.edges = dataset.NumEdges();
  cell.query_fraction = config.query_fraction;
  // The knob echo comes straight from the config actually executed, so a
  // cell is attributable to its axis coordinates no matter who built the
  // config (engine or bench).
  cell.walk = config.walk;
  cell.crawler = config.crawler;
  cell.joint_mode = config.restoration.estimator.joint_mode;
  cell.collision_fraction =
      config.restoration.estimator.collision_threshold_fraction;
  cell.rc = config.restoration.rewire.rewiring_coefficient;
  cell.protect_subgraph = config.restoration.protect_subgraph;
  cell.rewire_batch = config.restoration.parallel_rewire.batch_size;
  cell.frontier_walkers = config.frontier_walkers;
  cell.noise = config.noise;
  cell.seed_base = seed_base;
  cell.trials = trials;

  // Counters are attributed to this cell by snapshot delta: cells run
  // strictly sequentially (only trials inside one are concurrent), so
  // whatever the registry gained between the two snapshots is this
  // cell's. High-water gauges can't be differenced, so they reset here,
  // at the cell boundary.
  const bool metered = obs::MetricsEnabled();
  obs::MetricsSnapshot counters_before;
  if (metered) {
    obs::ResetMaxMetrics();
    counters_before = obs::SnapshotCounters();
  }

  obs::Span cell_span("cell");
  Timer timer;
  const auto all_trials =
      RunExperiments(dataset, properties, config, seed_base, trials,
                     threads);
  cell.wall_seconds = timer.Seconds();
  cell_span.End();

  if (metered) {
    for (const auto& [name, delta] :
         obs::CounterDelta(counters_before, obs::SnapshotCounters())) {
      cell.metrics[name] = static_cast<double>(delta);
    }
    for (const auto& [name, value] : obs::SnapshotMaxMetrics()) {
      cell.metrics[name] = static_cast<double>(value);
    }
    cell.metrics["peak_rss_bytes"] =
        static_cast<double>(obs::PeakRssBytes());
  }

  // Trials come back indexed by trial number, so this reduction order —
  // and therefore every accumulated double — is thread-count independent.
  for (const auto& results : all_trials) {
    for (const MethodRunResult& r : results) {
      MethodAggregate& aggregate = cell.methods[r.kind];
      aggregate.distances.Add(r.distances);
      aggregate.total_seconds += r.restoration.total_seconds;
      aggregate.rewiring_seconds += r.restoration.rewiring_seconds;
      aggregate.sample_steps += r.sample_steps;
      aggregate.oracle_queries += static_cast<double>(r.oracle_queries);
      const RewireStats& rw = r.restoration.rewire_stats;
      aggregate.rewire.attempts += static_cast<double>(rw.attempts);
      aggregate.rewire.accepted += static_cast<double>(rw.accepted);
      aggregate.rewire.rounds += static_cast<double>(rw.rounds);
      aggregate.rewire.evaluated += static_cast<double>(rw.evaluated);
      aggregate.rewire.conflicts += static_cast<double>(rw.conflicts);
      aggregate.rewire.reevaluated += static_cast<double>(rw.reevaluated);
      aggregate.rewire.initial_distance += rw.initial_distance;
      aggregate.rewire.final_distance += rw.final_distance;
      if (rw.stopped_early) aggregate.stopped_early += 1.0;
      if (!rw.curve.empty()) {
        if (aggregate.convergence.size() < rw.curve.size()) {
          aggregate.convergence.resize(rw.curve.size());
        }
        for (std::size_t i = 0; i < rw.curve.size(); ++i) {
          const ConvergenceSample& sample = rw.curve[i];
          ConvergencePoint& point = aggregate.convergence[i];
          point.attempts += static_cast<double>(sample.attempts);
          point.objective += sample.objective;
          point.clustering_global += sample.clustering_global;
          point.components += static_cast<double>(sample.components);
          point.lcc += static_cast<double>(sample.lcc);
        }
      }
    }
  }
  for (auto& [kind, aggregate] : cell.methods) {
    (void)kind;
    const double inv = 1.0 / static_cast<double>(trials);
    aggregate.total_seconds *= inv;
    aggregate.rewiring_seconds *= inv;
    aggregate.sample_steps *= inv;
    aggregate.oracle_queries *= inv;
    aggregate.rewire.attempts *= inv;
    aggregate.rewire.accepted *= inv;
    aggregate.rewire.rounds *= inv;
    aggregate.rewire.evaluated *= inv;
    aggregate.rewire.conflicts *= inv;
    aggregate.rewire.reevaluated *= inv;
    aggregate.rewire.initial_distance *= inv;
    aggregate.rewire.final_distance *= inv;
    aggregate.stopped_early *= inv;
    for (ConvergencePoint& point : aggregate.convergence) {
      point.attempts *= inv;
      point.objective *= inv;
      point.clustering_global *= inv;
      point.components *= inv;
      point.lcc *= inv;
    }
  }
  return cell;
}

ScenarioRunResult RunScenario(const ScenarioSpec& spec,
                              std::size_t threads_override,
                              std::ostream* progress,
                              std::size_t rewire_threads_override,
                              std::size_t assembly_threads_override,
                              std::size_t estimator_threads_override) {
  // Programmatically built specs never pass through FromJson — gate the
  // engine on the same semantic validation (finite numbers, non-empty
  // axes, cross-axis rules) so an invalid spec cannot reach a dataset
  // loader or an ExperimentConfig.
  spec.Validate();
  ScenarioRunResult result;
  result.spec = spec;
  result.threads = ResolveThreadCount(
      threads_override == kThreadsFromSpec ? spec.threads
                                           : threads_override);
  result.rewire_threads = ResolveThreadCount(
      rewire_threads_override == kThreadsFromSpec
          ? spec.rewire_threads
          : rewire_threads_override);
  result.assembly_threads = ResolveThreadCount(
      assembly_threads_override == kThreadsFromSpec
          ? spec.assembly_threads
          : assembly_threads_override);
  result.estimator_threads = ResolveThreadCount(
      estimator_threads_override == kThreadsFromSpec
          ? spec.estimator_threads
          : estimator_threads_override);

  const std::vector<CellKnobs> knob_matrix = spec.ExpandKnobs();
  std::size_t cell_index = 0;
  for (const ScenarioDataset& dataset_spec : spec.datasets) {
    DatasetProvenance provenance;
    const CsrGraph dataset =
        Materialize(dataset_spec, spec.dataset_scale, &provenance);
    result.datasets.push_back(provenance);
    // Properties of the original depend on the dataset and the evaluation
    // options only — compute once, share across the knob sweep.
    const GraphProperties properties = ComputeProperties(
        dataset, spec.ToExperimentConfig(spec.fractions.front())
                     .property_options);
    for (const CellKnobs& knobs : knob_matrix) {
      // uint64 arithmetic wraps modulo 2^64 by design — see the seeding
      // contract in engine.h.
      const std::uint64_t cell_seed =
          spec.seed_base +
          static_cast<std::uint64_t>(cell_index) *
              static_cast<std::uint64_t>(spec.trials);
      ExperimentConfig config = spec.ToExperimentConfig(knobs);
      // The intra-trial worker counts are execution knobs — overriding
      // them (or resolving 0 to the hardware) must not leak into the
      // spec echo.
      config.restoration.parallel_rewire.threads = result.rewire_threads;
      config.restoration.parallel_assembly.threads =
          result.assembly_threads;
      config.restoration.estimator.threads = result.estimator_threads;
      ScenarioCell cell = RunScenarioCell(
          dataset_spec.name, dataset, properties, config, spec.trials,
          cell_seed, result.threads);
      if (progress != nullptr) {
        *progress << "cell " << cell.dataset << " @ "
                  << 100.0 * knobs.fraction << "% queried ["
                  << WalkToken(knobs.walk) << "/"
                  << CrawlerToken(knobs.crawler) << "/"
                  << JointModeToken(knobs.estimator.joint_mode)
                  << "/rc " << knobs.rc
                  << (knobs.protect_subgraph ? "" : "/unprotected");
        if (knobs.rewire_batch != 0) {
          *progress << "/batch " << knobs.rewire_batch;
        }
        if (knobs.crawler == CrawlerKind::kFrontier) {
          *progress << "/walkers " << knobs.frontier_walkers;
        }
        if (knobs.noise.Active()) {
          *progress << "/noise f" << knobs.noise.failure << " h"
                    << knobs.noise.hidden_edges << " c"
                    << knobs.noise.churn << " b" << knobs.noise.api_budget;
        }
        *progress << "]: n = " << cell.nodes << ", m = " << cell.edges
                  << ", " << spec.trials << " trials in "
                  << cell.wall_seconds << " s\n";
      }
      result.cells.push_back(std::move(cell));
      ++cell_index;
    }
  }
  return result;
}

Json ScenarioReportToJson(const ScenarioRunResult& result) {
  Json cells = Json::Array();
  for (const ScenarioCell& cell : result.cells) {
    cells.Push(ScenarioCellToJson(cell));
  }
  RunEnvironment environment =
      CaptureEnvironment(result.threads, result.rewire_threads,
                         result.assembly_threads, result.estimator_threads);
  environment.datasets = result.datasets;
  return MakeReport("sgr run", result.spec.ToJson(), std::move(cells),
                    environment);
}

}  // namespace sgr
