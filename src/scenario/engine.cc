#include "scenario/engine.h"

#include <ostream>

#include "exp/datasets.h"
#include "exp/parallel.h"
#include "util/timer.h"

namespace sgr {

namespace {

Graph Materialize(const ScenarioDataset& dataset, double dataset_scale) {
  if (dataset.generator) return BuildGeneratorGraph(*dataset.generator);
  return LoadDataset(DatasetByName(dataset.name), dataset_scale);
}

}  // namespace

ScenarioCell RunScenarioCell(const std::string& dataset_name,
                             const Graph& dataset,
                             const GraphProperties& properties,
                             const ExperimentConfig& config,
                             std::size_t trials, std::uint64_t seed_base,
                             std::size_t threads) {
  ScenarioCell cell;
  cell.dataset = dataset_name;
  cell.nodes = dataset.NumNodes();
  cell.edges = dataset.NumEdges();
  cell.query_fraction = config.query_fraction;
  cell.seed_base = seed_base;
  cell.trials = trials;

  Timer timer;
  const auto all_trials =
      RunExperiments(dataset, properties, config, seed_base, trials,
                     threads);
  cell.wall_seconds = timer.Seconds();

  // Trials come back indexed by trial number, so this reduction order —
  // and therefore every accumulated double — is thread-count independent.
  for (const auto& results : all_trials) {
    for (const MethodRunResult& r : results) {
      MethodAggregate& aggregate = cell.methods[r.kind];
      aggregate.distances.Add(r.distances);
      aggregate.total_seconds += r.restoration.total_seconds;
      aggregate.rewiring_seconds += r.restoration.rewiring_seconds;
    }
  }
  for (auto& [kind, aggregate] : cell.methods) {
    (void)kind;
    aggregate.total_seconds /= static_cast<double>(trials);
    aggregate.rewiring_seconds /= static_cast<double>(trials);
  }
  return cell;
}

ScenarioRunResult RunScenario(const ScenarioSpec& spec,
                              std::size_t threads_override,
                              std::ostream* progress) {
  ScenarioRunResult result;
  result.spec = spec;
  result.threads = ResolveThreadCount(
      threads_override == kThreadsFromSpec ? spec.threads
                                           : threads_override);

  std::size_t cell_index = 0;
  for (const ScenarioDataset& dataset_spec : spec.datasets) {
    const Graph dataset = Materialize(dataset_spec, spec.dataset_scale);
    // Properties of the original depend on the dataset and the evaluation
    // options only — compute once, share across the fraction sweep.
    const GraphProperties properties = ComputeProperties(
        dataset, spec.ToExperimentConfig(spec.fractions.front())
                     .property_options);
    for (double fraction : spec.fractions) {
      const std::uint64_t cell_seed =
          spec.seed_base +
          static_cast<std::uint64_t>(cell_index) * spec.trials;
      ScenarioCell cell = RunScenarioCell(
          dataset_spec.name, dataset, properties,
          spec.ToExperimentConfig(fraction), spec.trials, cell_seed,
          result.threads);
      if (progress != nullptr) {
        *progress << "cell " << cell.dataset << " @ " << 100.0 * fraction
                  << "% queried: n = " << cell.nodes << ", m = "
                  << cell.edges << ", " << spec.trials << " trials in "
                  << cell.wall_seconds << " s\n";
      }
      result.cells.push_back(std::move(cell));
      ++cell_index;
    }
  }
  return result;
}

Json ScenarioReportToJson(const ScenarioRunResult& result) {
  Json cells = Json::Array();
  for (const ScenarioCell& cell : result.cells) {
    cells.Push(ScenarioCellToJson(cell));
  }
  return MakeReport("sgr run", result.spec.ToJson(), std::move(cells),
                    CaptureEnvironment(result.threads));
}

}  // namespace sgr
