#ifndef SGR_SCENARIO_REPORT_H_
#define SGR_SCENARIO_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/summary.h"
#include "estimation/estimators.h"
#include "exp/datasets.h"
#include "exp/runner.h"
#include "restore/method.h"
#include "util/json.h"

namespace sgr {

/// Mean rewiring-phase statistics of one cell's trials (attempt /
/// acceptance counters and the objective trajectory, plus the batched
/// engine's round accounting). All values are deterministic functions of
/// (spec, seed) — they are emitted under the report's "rewire" keys, NOT
/// under "timings", so they are part of the determinism contract
/// StripVolatile preserves.
struct RewireAggregate {
  double attempts = 0.0;
  double accepted = 0.0;
  double rounds = 0.0;
  double evaluated = 0.0;
  double conflicts = 0.0;
  double reevaluated = 0.0;
  double initial_distance = 0.0;
  double final_distance = 0.0;
};

/// One point of the mean convergence curve recorded by the incremental
/// property tracker (RewireStats::curve averaged across a cell's trials).
/// Deterministic content like the rewire counters: it survives
/// StripVolatile and `sgr diff` compares it point by point.
struct ConvergencePoint {
  double attempts = 0.0;           ///< mean attempts consumed at sample
  double objective = 0.0;          ///< mean tracked L1 clustering distance
  double clustering_global = 0.0;  ///< mean tracked global clustering
  double components = 0.0;         ///< mean connected-component count
  double lcc = 0.0;                ///< mean largest-component size
};

/// Aggregate of one (dataset, fraction, method) cell across trials:
/// distance statistics plus mean generation timings. Shared by the
/// scenario engine and the benches (bench_common.h used to own this
/// type; it moved here so both report identically).
struct MethodAggregate {
  DistanceAccumulator distances;
  double total_seconds = 0.0;     ///< mean restoration seconds per trial
  double rewiring_seconds = 0.0;  ///< mean rewiring seconds per trial
  double sample_steps = 0.0;      ///< mean sampling-list length per trial
                                  ///  (deterministic: emitted outside
                                  ///  "timings")
  double oracle_queries = 0.0;    ///< mean distinct queried nodes per
                                  ///  trial — the crawl's true query cost
                                  ///  (deterministic, like sample_steps)
  RewireAggregate rewire;         ///< mean rewiring stats per trial
  std::vector<ConvergencePoint> convergence;  ///< mean tracker curve per
                                              ///  trial (empty when
                                              ///  tracking is off)
  double stopped_early = 0.0;     ///< fraction of trials that hit the
                                  ///  adaptive stop epsilon
};

/// One cell of a scenario matrix: a dataset at one coordinate of the
/// knob axes (query fraction, walk, crawler, estimator variant, RC,
/// candidate-set choice), with the per-method aggregates over the cell's
/// trials. `methods` is keyed by MethodKind, so iteration (and the JSON
/// emission) follows the paper's column order. The knob fields are
/// echoed in the cell JSON — `sgr diff` pairs cells across reports by
/// (dataset, knobs).
struct ScenarioCell {
  std::string dataset;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double query_fraction = 0.0;
  WalkKind walk = WalkKind::kSimple;
  CrawlerKind crawler = CrawlerKind::kRw;
  JointEstimatorMode joint_mode = JointEstimatorMode::kHybrid;
  double collision_fraction = 0.025;
  double rc = 500.0;
  bool protect_subgraph = true;
  std::size_t rewire_batch = 0;
  std::size_t frontier_walkers = 10;
  /// Adversarial-oracle coordinates (perturbed_oracle.h). Echoed in the
  /// cell JSON only when active — noise-off reports keep their historical
  /// byte layout — with zero defaults on the diff side, so old and new
  /// reports pair correctly.
  CrawlNoise noise;
  std::uint64_t seed_base = 0;
  std::size_t trials = 0;
  double wall_seconds = 0.0;  ///< whole trial matrix of this cell
  std::map<MethodKind, MethodAggregate> methods;
  /// Counter deltas and high-water gauges the obs registry attributed to
  /// this cell (empty when metrics are off). Values depend on thread
  /// counts and scheduling, so the block is volatile: it is emitted under
  /// the cell's "metrics" key and removed by StripVolatile.
  std::map<std::string, double> metrics;
};

/// Execution environment recorded in every report. Everything here is
/// volatile across machines and thread counts, which is why the whole
/// block lives under the report's "environment" key and is removed by
/// StripVolatile together with the "timings" objects.
struct RunEnvironment {
  std::size_t threads = 1;               ///< resolved worker thread count
  std::size_t rewire_threads = 1;        ///< resolved rewire-engine workers
  std::size_t assembly_threads = 1;      ///< resolved assembly workers
  std::size_t estimator_threads = 1;     ///< resolved estimator workers
  std::size_t hardware_concurrency = 0;
  std::string compiler;                  ///< __VERSION__
  std::string build;                     ///< "Release" / "Debug" (NDEBUG)
  /// Data-source record of every dataset the run materialized (file vs
  /// generator, resolved path, content hash) — see DatasetProvenance.
  /// Lives in the environment block because the source can legitimately
  /// differ between machines ($SGR_DATASET_DIR) without changing the
  /// deterministic report content; an empty vector emits nothing, so
  /// reports from callers that never load datasets keep their layout.
  std::vector<DatasetProvenance> datasets;
};

/// Captures the current process environment; `threads` is the resolved
/// worker count the caller is about to run with, the rest the resolved
/// intra-trial worker counts of the rewiring / assembly / estimator
/// engines (all default to 1, the inline path).
RunEnvironment CaptureEnvironment(std::size_t threads,
                                  std::size_t rewire_threads = 1,
                                  std::size_t assembly_threads = 1,
                                  std::size_t estimator_threads = 1);

Json EnvironmentToJson(const RunEnvironment& environment);

/// Emits one cell:
///   {"dataset": ..., "nodes": ..., "edges": ..., "query_fraction": ...,
///    "walk": "simple", "crawler": "rw",
///    "estimator": {"joint_mode": "hybrid", "collision_fraction": ...},
///    "rc": ..., "protect_subgraph": ...,
///    "rewire_batch": ..., "frontier_walkers": ...,
///    "noise": {"failure": ..., "hidden_edges": ..., "churn": ...,
///              "api_budget": ...},  // only when the cell ran with noise
///    "seed_base": ..., "trials": ...,
///    "methods": [{"method": "Proposed", "sample_steps": ...,
///                 "oracle_queries": ...,
///                 "distances": {"per_property": {"n": ..., ...12...},
///                               "average": ..., "sd": ...},
///                 "rewire": {"attempts": ..., "accepted": ...,
///                            "rounds": ..., "evaluated": ...,
///                            "conflicts": ..., "reevaluated": ...,
///                            "initial_distance": ...,
///                            "final_distance": ...},
///                 "timings": {"restore_seconds": ...,
///                             "rewiring_seconds": ...}}, ...],
///    "metrics": {...},  // only when the cell captured any
///    "timings": {"wall_seconds": ...}}
/// All timing data sits under "timings" keys so StripVolatile can remove
/// it mechanically, and the "metrics" block is likewise volatile; the
/// "rewire" block is deterministic content and survives the strip (the
/// subgraph-sampling methods report all zeros).
Json ScenarioCellToJson(const ScenarioCell& cell);

/// Assembles the top-level report document shared by `sgr run` and the
/// benches' --json flag:
///   {"schema": "sgr-report/1", "tool": ..., "config": <echo>,
///    "environment": {...}, "cells": [...]}
Json MakeReport(const std::string& tool, Json config_echo, Json cells,
                const RunEnvironment& environment);

/// Returns a copy of `document` with the volatile content removed: the
/// top-level "environment" object and every "timings" and "metrics"
/// member anywhere in the tree. What remains is a pure function of
/// (spec, seed), so two runs of the same scenario — at any thread count,
/// with observability on or off — dump to identical bytes. This is the
/// engine's determinism contract, and what the tests diff.
Json StripVolatile(const Json& document);

/// Writes `Dump(2)` plus a trailing newline to `path`; throws
/// std::runtime_error if the file cannot be written.
void WriteJsonFile(const Json& document, const std::string& path);

}  // namespace sgr

#endif  // SGR_SCENARIO_REPORT_H_
