#include "scenario/report.h"

#include <fstream>
#include <thread>

#include "analysis/l1.h"
#include "scenario/spec.h"

namespace sgr {

RunEnvironment CaptureEnvironment(std::size_t threads,
                                  std::size_t rewire_threads,
                                  std::size_t assembly_threads,
                                  std::size_t estimator_threads) {
  RunEnvironment environment;
  environment.threads = threads;
  environment.rewire_threads = rewire_threads;
  environment.assembly_threads = assembly_threads;
  environment.estimator_threads = estimator_threads;
  environment.hardware_concurrency = std::thread::hardware_concurrency();
#if defined(__VERSION__)
  environment.compiler = __VERSION__;
#endif
#if defined(NDEBUG)
  environment.build = "Release";
#else
  environment.build = "Debug";
#endif
  return environment;
}

Json EnvironmentToJson(const RunEnvironment& environment) {
  Json json = Json::Object();
  json.Set("threads",
           Json::Number(static_cast<double>(environment.threads)));
  json.Set("rewire_threads",
           Json::Number(static_cast<double>(environment.rewire_threads)));
  json.Set("assembly_threads",
           Json::Number(static_cast<double>(environment.assembly_threads)));
  json.Set("estimator_threads",
           Json::Number(
               static_cast<double>(environment.estimator_threads)));
  json.Set("hardware_concurrency",
           Json::Number(
               static_cast<double>(environment.hardware_concurrency)));
  json.Set("compiler", Json::String(environment.compiler));
  json.Set("build", Json::String(environment.build));
  if (!environment.datasets.empty()) {
    Json datasets = Json::Array();
    for (const DatasetProvenance& p : environment.datasets) {
      Json entry = Json::Object();
      entry.Set("name", Json::String(p.name));
      entry.Set("source", Json::String(p.source));
      if (!p.path.empty()) entry.Set("path", Json::String(p.path));
      if (!p.content_hash.empty()) {
        entry.Set("content_hash", Json::String(p.content_hash));
      }
      entry.Set("scale", Json::Number(p.scale));
      datasets.Push(std::move(entry));
    }
    json.Set("datasets", std::move(datasets));
  }
  return json;
}

Json ScenarioCellToJson(const ScenarioCell& cell) {
  Json json = Json::Object();
  json.Set("dataset", Json::String(cell.dataset));
  json.Set("nodes", Json::Number(static_cast<double>(cell.nodes)));
  json.Set("edges", Json::Number(static_cast<double>(cell.edges)));
  json.Set("query_fraction", Json::Number(cell.query_fraction));
  json.Set("walk", Json::String(WalkToken(cell.walk)));
  json.Set("crawler", Json::String(CrawlerToken(cell.crawler)));
  Json estimator = Json::Object();
  estimator.Set("joint_mode",
                Json::String(JointModeToken(cell.joint_mode)));
  estimator.Set("collision_fraction",
                Json::Number(cell.collision_fraction));
  json.Set("estimator", std::move(estimator));
  json.Set("rc", Json::Number(cell.rc));
  json.Set("protect_subgraph", Json::Bool(cell.protect_subgraph));
  json.Set("rewire_batch",
           Json::Number(static_cast<double>(cell.rewire_batch)));
  json.Set("frontier_walkers",
           Json::Number(static_cast<double>(cell.frontier_walkers)));
  // Emitted only when the cell ran against the adversarial oracle, the
  // same conditional-emission contract as the convergence block:
  // noise-off reports keep their historical byte layout.
  if (cell.noise.Active()) {
    Json noise = Json::Object();
    noise.Set("failure", Json::Number(cell.noise.failure));
    noise.Set("hidden_edges", Json::Number(cell.noise.hidden_edges));
    noise.Set("churn", Json::Number(cell.noise.churn));
    noise.Set("api_budget",
              Json::Number(static_cast<double>(cell.noise.api_budget)));
    json.Set("noise", std::move(noise));
  }
  json.Set("seed_base", Json::Number(static_cast<double>(cell.seed_base)));
  json.Set("trials", Json::Number(static_cast<double>(cell.trials)));

  Json methods = Json::Array();
  for (const auto& [kind, aggregate] : cell.methods) {
    const DistanceSummary summary = aggregate.distances.Summarize();
    Json entry = Json::Object();
    entry.Set("method", Json::String(MethodName(kind)));
    entry.Set("sample_steps", Json::Number(aggregate.sample_steps));
    entry.Set("oracle_queries", Json::Number(aggregate.oracle_queries));
    Json per_property = Json::Object();
    for (std::size_t i = 0; i < kNumProperties; ++i) {
      per_property.Set(PropertyNames()[i],
                       Json::Number(summary.mean_per_property[i]));
    }
    Json distances = Json::Object();
    distances.Set("per_property", std::move(per_property));
    distances.Set("average", Json::Number(summary.mean_average));
    distances.Set("sd", Json::Number(summary.mean_sd));
    entry.Set("distances", std::move(distances));
    Json rewire = Json::Object();
    rewire.Set("attempts", Json::Number(aggregate.rewire.attempts));
    rewire.Set("accepted", Json::Number(aggregate.rewire.accepted));
    rewire.Set("rounds", Json::Number(aggregate.rewire.rounds));
    rewire.Set("evaluated", Json::Number(aggregate.rewire.evaluated));
    rewire.Set("conflicts", Json::Number(aggregate.rewire.conflicts));
    rewire.Set("reevaluated", Json::Number(aggregate.rewire.reevaluated));
    rewire.Set("initial_distance",
               Json::Number(aggregate.rewire.initial_distance));
    rewire.Set("final_distance",
               Json::Number(aggregate.rewire.final_distance));
    entry.Set("rewire", std::move(rewire));
    if (!aggregate.convergence.empty()) {
      // Emitted only when the tracker ran, so tracking-off reports keep
      // their exact historical byte layout. Deterministic content: the
      // block survives StripVolatile and `sgr diff` pairs it.
      Json convergence = Json::Object();
      convergence.Set("stopped_early",
                      Json::Number(aggregate.stopped_early));
      Json samples = Json::Array();
      for (const ConvergencePoint& point : aggregate.convergence) {
        Json sample = Json::Object();
        sample.Set("attempts", Json::Number(point.attempts));
        sample.Set("objective", Json::Number(point.objective));
        sample.Set("clustering_global",
                   Json::Number(point.clustering_global));
        sample.Set("components", Json::Number(point.components));
        sample.Set("lcc", Json::Number(point.lcc));
        samples.Push(std::move(sample));
      }
      convergence.Set("samples", std::move(samples));
      entry.Set("convergence", std::move(convergence));
    }
    Json timings = Json::Object();
    timings.Set("restore_seconds", Json::Number(aggregate.total_seconds));
    timings.Set("rewiring_seconds",
                Json::Number(aggregate.rewiring_seconds));
    entry.Set("timings", std::move(timings));
    methods.Push(std::move(entry));
  }
  json.Set("methods", std::move(methods));

  if (!cell.metrics.empty()) {
    // Volatile by the same rule as "timings": present only when metrics
    // were captured, removed by StripVolatile, so metrics-off reports
    // keep their exact historical byte layout.
    Json metrics = Json::Object();
    for (const auto& [name, value] : cell.metrics) {
      metrics.Set(name, Json::Number(value));
    }
    json.Set("metrics", std::move(metrics));
  }

  Json timings = Json::Object();
  timings.Set("wall_seconds", Json::Number(cell.wall_seconds));
  json.Set("timings", std::move(timings));
  return json;
}

Json MakeReport(const std::string& tool, Json config_echo, Json cells,
                const RunEnvironment& environment) {
  Json report = Json::Object();
  report.Set("schema", Json::String("sgr-report/1"));
  report.Set("tool", Json::String(tool));
  report.Set("config", std::move(config_echo));
  report.Set("environment", EnvironmentToJson(environment));
  report.Set("cells", std::move(cells));
  return report;
}

namespace {

Json StripVolatileImpl(const Json& value, bool top_level) {
  switch (value.kind()) {
    case Json::Kind::kObject: {
      Json out = Json::Object();
      for (const auto& [key, member] : value.ObjectMembers()) {
        if (key == "timings" || key == "metrics") continue;
        if (top_level && key == "environment") continue;
        out.Set(key, StripVolatileImpl(member, /*top_level=*/false));
      }
      return out;
    }
    case Json::Kind::kArray: {
      Json out = Json::Array();
      for (const Json& item : value.Items()) {
        out.Push(StripVolatileImpl(item, /*top_level=*/false));
      }
      return out;
    }
    default:
      return value;
  }
}

}  // namespace

Json StripVolatile(const Json& document) {
  return StripVolatileImpl(document, /*top_level=*/true);
}

void WriteJsonFile(const Json& document, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  out << document.Dump(2) << "\n";
  if (!out) {
    throw std::runtime_error("failed writing '" + path + "'");
  }
}

}  // namespace sgr
