#ifndef SGR_SCENARIO_SPEC_H_
#define SGR_SCENARIO_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "restore/method.h"
#include "util/json.h"

namespace sgr {

/// Error thrown when a scenario document fails validation. Messages name
/// the offending key so a typo in a hand-written scenario.json is
/// diagnosable from the CLI error alone.
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& what)
      : std::runtime_error("scenario: " + what) {}
};

/// Parameters of an ad-hoc synthetic dataset (the alternative to naming a
/// registry dataset from exp/datasets.h). Mirrors the `sgr generate`
/// subcommand's models.
struct GeneratorSpec {
  std::string model = "powerlaw";  ///< powerlaw | ba | er | community | social
  std::size_t nodes = 1000;
  std::size_t edges_per_node = 4;  ///< powerlaw / ba / community / social
  double triad_p = 0.4;            ///< powerlaw / community / social
  double fringe_fraction = 0.4;    ///< social
  std::size_t edges = 0;           ///< er (0 = 4 * nodes)
  std::size_t communities = 4;     ///< community
  std::size_t bridges = 0;         ///< community (0 = nodes / 50 + 1)
  std::uint64_t seed = 1;
};

/// Materializes a GeneratorSpec: builds the model's graph (applying the
/// 0-means-default rules for `edges` and `bridges`) and preprocesses it
/// (simplify + largest connected component), exactly as LoadDataset does
/// for registry datasets. The single model-dispatch implementation shared
/// by the scenario engine and `sgr generate`; throws ScenarioError on an
/// unknown model.
Graph BuildGeneratorGraph(const GeneratorSpec& gen);

/// One dataset of a scenario: either a registry name ("anybeat", ...,
/// "youtube"; see exp/datasets.h) or a labelled generator.
struct ScenarioDataset {
  std::string name;
  std::optional<GeneratorSpec> generator;
};

/// One estimator ablation variant of a scenario: the knobs of
/// EstimatorOptions that are spec-expressible (the walk-type normalizer is
/// derived from the `walk` axis by the runner and is deliberately not a
/// free knob here — the two can never disagree).
struct EstimatorSpec {
  JointEstimatorMode joint_mode = JointEstimatorMode::kHybrid;
  /// Collision-pair lag threshold as a fraction of the walk length
  /// (paper: 0.025). Must be finite and in (0, 1).
  double collision_fraction = 0.025;

  friend bool operator==(const EstimatorSpec& a, const EstimatorSpec& b) {
    return a.joint_mode == b.joint_mode &&
           a.collision_fraction == b.collision_fraction;
  }
};

/// Coordinates of one cell of the expanded scenario matrix — everything
/// that varies between cells besides the dataset. RunScenario enumerates
/// these axes fractions-major through noise-minor (see engine.h) and
/// each cell's report echoes them, so `sgr diff` can pair cells across
/// reports by (dataset, knobs).
struct CellKnobs {
  double fraction = 0.1;
  WalkKind walk = WalkKind::kSimple;
  CrawlerKind crawler = CrawlerKind::kRw;
  EstimatorSpec estimator;
  double rc = 500.0;
  bool protect_subgraph = true;
  /// Batched speculative rewiring: 0 = the classic sequential attempt
  /// loop, nonzero = proposals per round of RewireToClusteringParallel.
  std::size_t rewire_batch = 0;
  /// Walker count of the frontier crawler (ignored by the others, but
  /// echoed regardless so cells pair canonically).
  std::size_t frontier_walkers = 10;
  /// Crawl-time fault injection (default: the cooperative oracle).
  CrawlNoise noise;
};

/// Declarative description of one crawl -> restore -> evaluate matrix:
/// {datasets x fractions x walks x crawlers x estimators x rcs x
/// protects} x methods x trials, with the knobs the hand-rolled benches
/// used to take from the environment. Defaults match a
/// default-constructed ExperimentConfig (RC = 500, 10% queried, all six
/// methods, simple random walk, exact path evaluation), so an empty
/// scenario runs the paper's Table III protocol on whatever datasets it
/// names; every new axis defaults to a single paper-faithful value, so
/// pre-existing scenario documents expand to exactly the cells they
/// always did.
struct ScenarioSpec {
  std::string name = "custom";
  std::vector<ScenarioDataset> datasets;
  std::vector<double> fractions = {0.1};
  std::vector<MethodKind> methods = {
      MethodKind::kBfs,        MethodKind::kSnowball,
      MethodKind::kForestFire, MethodKind::kRandomWalk,
      MethodKind::kGjoka,      MethodKind::kProposed};
  std::size_t trials = 3;
  std::size_t threads = 1;        ///< 0 = hardware concurrency
  std::uint64_t seed_base = 0x5EED;
  /// Walk-discipline axis of the shared sample (JSON key "walk": one
  /// token or an array; simple | non-backtracking | metropolis-hastings).
  std::vector<WalkKind> walks = {WalkKind::kSimple};
  /// Crawler axis of the shared sample (JSON key "crawler": one token or
  /// an array; rw | frontier | mhrw | bfs | snowball | ff). Non-walk
  /// crawlers require a method list without gjoka/proposed; non-simple
  /// walks require the rw crawler. frontier/mhrw with the generative
  /// methods are deliberate ablation combinations (their stationary laws
  /// violate the estimators' simple-walk assumptions — running them
  /// measures that bias; see CrawlerKind / WalkKind).
  std::vector<CrawlerKind> crawlers = {CrawlerKind::kRw};
  /// Estimator-ablation axis (JSON key "estimator": one object or an
  /// array of objects with "joint_mode" and "collision_fraction").
  std::vector<EstimatorSpec> estimators = {{}};
  /// Rewiring-coefficient axis (JSON key "rc": one number or an array;
  /// paper: 500).
  std::vector<double> rcs = {500.0};
  /// Rewiring candidate-set axis (JSON key "protect_subgraph": one bool
  /// or an array): true rewires over E~ \ E' (the paper's choice), false
  /// over all of E~ (Gjoka et al.'s choice inside the proposed pipeline).
  std::vector<bool> protects = {true};
  /// Walker-count axis of the frontier crawler (JSON key
  /// "frontier_walkers": one number or an array). Sweeping it with more
  /// than one value requires the crawler axis to be exactly [frontier]:
  /// every other crawler ignores the knob, so its cells would be
  /// duplicated once per walker value.
  std::vector<std::size_t> frontier_walkers = {10};
  /// Batched-speculative-rewiring axis (restore/rewirer.h; JSON key
  /// "rewire_batch": one number or an array): 0 = the classic sequential
  /// attempt loop, nonzero = proposals per round of
  /// RewireToClusteringParallel. An algorithm knob — changing it changes
  /// the (equally valid) rewiring trajectory, so it is a sweepable axis
  /// and every cell echoes its value.
  std::vector<std::size_t> rewire_batches = {0};
  /// Worker threads of the batched rewiring engine inside each trial
  /// (0 = hardware concurrency). Execution knob only: reports are
  /// byte-identical for every value (and the CLI can override it per run
  /// without touching the spec).
  std::size_t rewire_threads = 1;
  /// Parallel Algorithm 5 assembly (dk/dk_construct.h). An algorithm
  /// knob like rewire_batch: true routes the generative methods through
  /// ConstructPreservingTargetsParallel's per-class-pair RNG streams —
  /// a different (equally valid) realization of the same targets.
  bool parallel_assembly = false;
  /// Worker threads of the parallel assembly engine inside each trial
  /// (0 = hardware concurrency; only active when `parallel_assembly`).
  /// Execution knob only: reports are byte-identical for every value.
  std::size_t assembly_threads = 1;
  /// Worker threads of the chunked estimator pass inside each trial
  /// (0 = hardware concurrency). Execution knob only: the chunk grid is
  /// fixed by the walk length, so estimates — and therefore reports —
  /// are bit-identical for every value (estimation/estimators.h).
  std::size_t estimator_threads = 1;
  std::size_t path_sources = 0;   ///< 0 = exact all-pairs evaluation
  std::size_t snowball_k = 50;
  double forest_fire_pf = 0.7;
  bool simplify_output = false;
  double dataset_scale = 0.0;     ///< 0 = honor $SGR_DATASET_SCALE / 1.0
  /// Incremental property tracking during the rewiring phase (JSON key
  /// "track_properties"): when true, every generative method's rewiring
  /// run records a convergence curve that the report emits as a
  /// deterministic "convergence" block. Observation only — cells are
  /// byte-identical with tracking on or off.
  bool track_properties = false;
  /// Adaptive rewiring stop epsilon (JSON key "stop_epsilon"; requires
  /// `track_properties`): halt rewiring once the tracked L1 clustering
  /// distance is within this value. 0 disables the stop.
  double stop_epsilon = 0.0;
  /// Adversarial-oracle axis (JSON key "noise": one object or an array of
  /// objects with "failure", "hidden_edges", "churn", "api_budget"; see
  /// CrawlNoise). The probabilities are capped at 0.9 at the spec level —
  /// a cell where (almost) every query fails measures nothing; the
  /// degenerate extremes stay reachable through the PerturbedOracle API
  /// directly. Default: one all-off entry, the cooperative oracle, which
  /// keeps pre-existing documents and reports byte-identical.
  std::vector<CrawlNoise> noises = {{}};

  /// Parses and validates a scenario document. Unknown keys, wrong types,
  /// out-of-range values, unknown dataset/method names, and empty
  /// dataset/fraction/method lists all throw ScenarioError.
  static ScenarioSpec FromJson(const Json& json);

  /// Serializes the spec back to its document form; FromJson(ToJson(s))
  /// round-trips to an equal document (axes with a single value serialize
  /// as scalars, larger axes as arrays). Embedded verbatim in every
  /// report so a result file names the matrix that produced it.
  Json ToJson() const;

  /// Full semantic validation of the spec *values*, independent of how
  /// they were produced: non-empty axes, finite numbers for every numeric
  /// knob (the JSON layer admits Infinity/NaN literals by design, and a
  /// programmatically built spec never passes through FromJson at all),
  /// in-range values, no duplicate axis entries, and the cross-axis rules
  /// (non-walk crawlers forbid generative methods; non-simple walks
  /// require the rw crawler). FromJson calls this after parsing, and
  /// RunScenario calls it before executing, so an invalid spec can reach
  /// neither ExperimentConfig nor the engine. Throws ScenarioError.
  void Validate() const;

  /// The experiment configuration of one cell of the matrix: this spec's
  /// method list and options at the given axis coordinates. Per-trial
  /// property evaluation is pinned to one thread, so reports are
  /// byte-identical for every engine thread count (the benches'
  /// long-standing determinism contract).
  ExperimentConfig ToExperimentConfig(const CellKnobs& knobs) const;

  /// Convenience overload: the given query fraction with every other axis
  /// at its first value (exactly what single-axis callers — the table
  /// benches — mean).
  ExperimentConfig ToExperimentConfig(double fraction) const;

  /// Enumerates the knob coordinates of the non-dataset axes in cell
  /// order: fractions-major, then walks, crawlers, estimators, rcs,
  /// protects, rewire_batches, frontier_walkers, noises (minor). The
  /// newest axes sit innermost so single-valued specs expand to exactly
  /// the cell list — and therefore the seed schedule — they always did.
  /// RunScenario visits datasets-major over this list.
  std::vector<CellKnobs> ExpandKnobs() const;
};

/// Maps a scenario document's method token (bfs | snowball | ff | rw |
/// gjoka | proposed) to its MethodKind; throws ScenarioError on an
/// unknown token. MethodToken inverts it.
MethodKind MethodKindFromToken(const std::string& token);
std::string MethodToken(MethodKind kind);

/// Token maps of the new axes, same contract as MethodKindFromToken:
///   walk      simple | non-backtracking | metropolis-hastings
///   crawler   rw | frontier | mhrw | bfs | snowball | ff
///   joint     hybrid | ie | te
WalkKind WalkKindFromToken(const std::string& token);
std::string WalkToken(WalkKind kind);
CrawlerKind CrawlerKindFromToken(const std::string& token);
std::string CrawlerToken(CrawlerKind kind);
JointEstimatorMode JointModeFromToken(const std::string& token);
std::string JointModeToken(JointEstimatorMode mode);

/// Built-in named scenarios, runnable as `sgr run <name>`:
///   tables-smoke     2 small dataset stand-ins, CI-sized (seconds)
///   table2           per-property distances, Slashdot/Gowalla/Livemocha
///   table3           avg +- SD on the six standard datasets
///   table4-time      generation-time protocol (RC = 500)
///   table5-youtube   the largest stand-in at 1% queried
///   fig3-sweep       query-fraction sweep, 2%-10%
///   ablation-walk    simple vs non-backtracking walk (Section II)
///   ablation-rc      rewiring-budget sweep RC in {0..500} (Section IV-E)
///   ablation-jdm     hybrid vs IE-only vs TE-only estimator (Sec. III-E)
///   ablation-rewire  protected vs all-edges rewiring set (Section IV-E)
///   ablation-batch   sequential loop vs speculative rounds (rewire_batch
///                    sweep) through the parallel assembly engine
///   ablation-frontier  frontier walker-count sweep (frontier_walkers)
///   ablation-noise   adversarial-oracle sweep: cooperative vs private
///                    accounts vs hidden edges vs churn (noise axis)
std::vector<std::string> BuiltinScenarioNames();
bool IsBuiltinScenario(const std::string& name);
ScenarioSpec BuiltinScenario(const std::string& name);

/// One-line description of a built-in (for `sgr scenarios list`).
std::string BuiltinScenarioDescription(const std::string& name);

}  // namespace sgr

#endif  // SGR_SCENARIO_SPEC_H_
